// Bridge tests: the 6-transistor switch model (Fig. 9), lattice netlist
// generation with the §V bench topology, and series chains (Fig. 12).
#include <gtest/gtest.h>

#include <memory>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/bridge/switch_model.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/spice/mosfet.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;
using namespace ftl::bridge;
using namespace ftl::spice;

double node_v(const Circuit& c, const OpResult& op, const std::string& name) {
  const int n = c.find_node(name);
  return n < 0 ? 0.0 : op.solution[static_cast<std::size_t>(n)];
}

TEST(SwitchModel, SixTransistorsFourCaps) {
  Circuit c;
  add_four_terminal_switch(c, "x", {"n", "e", "s", "w"}, "g",
                           paper_switch_model());
  int mosfets = 0;
  int caps = 0;
  for (const auto& d : c.devices()) {
    if (dynamic_cast<const Mosfet*>(d.get()) != nullptr) ++mosfets;
    if (dynamic_cast<const Capacitor*>(d.get()) != nullptr) ++caps;
  }
  EXPECT_EQ(mosfets, 6);  // C(4,2) terminal pairs
  EXPECT_EQ(caps, 4);     // 1 fF per terminal
}

TEST(SwitchModel, TypeAAndTypeBLengths) {
  Circuit c;
  const SwitchModelParams params = paper_switch_model();
  add_four_terminal_switch(c, "x", {"n", "e", "s", "w"}, "g", params);
  int type_a = 0;
  int type_b = 0;
  for (const auto& d : c.devices()) {
    const auto* m = dynamic_cast<const Mosfet*>(d.get());
    if (m == nullptr) continue;
    if (m->params().length == params.length_adjacent) ++type_a;
    if (m->params().length == params.length_opposite) ++type_b;
    EXPECT_DOUBLE_EQ(m->params().width, params.width);
  }
  EXPECT_EQ(type_a, 4);  // adjacent pairs
  EXPECT_EQ(type_b, 2);  // opposite pairs
}

TEST(SwitchModel, ConductsWhenGateHighBlocksWhenLow) {
  for (const double vg : {0.0, 1.2}) {
    Circuit c;
    add_four_terminal_switch(c, "x", {"n", "e", "s", "w"}, "g",
                             paper_switch_model());
    c.add(std::make_unique<VoltageSource>("VG", c.find_node("g"),
                                          Circuit::kGround, Waveform::dc(vg)));
    auto& vn = static_cast<VoltageSource&>(
        c.add(std::make_unique<VoltageSource>("VN", c.find_node("n"),
                                              Circuit::kGround, Waveform::dc(1.2))));
    c.add(std::make_unique<VoltageSource>("VS", c.find_node("s"),
                                          Circuit::kGround, Waveform::dc(0.0)));
    const OpResult op = dc_operating_point(c);
    ASSERT_TRUE(op.converged);
    const double current = -vn.current(op.solution);
    if (vg > 0.5) {
      EXPECT_GT(current, 1e-6) << "ON switch should conduct";
    } else {
      EXPECT_LT(current, 1e-9) << "OFF switch should block";
    }
  }
}

TEST(SwitchModel, AllTerminalPairsConnectWhenOn) {
  // Drive each terminal pair in turn; every pair must conduct (the
  // four-terminal property of Fig. 2a).
  static constexpr const char* kNames[4] = {"n", "e", "s", "w"};
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      Circuit c;
      add_four_terminal_switch(c, "x", {"n", "e", "s", "w"}, "g",
                               paper_switch_model());
      c.add(std::make_unique<VoltageSource>("VG", c.find_node("g"),
                                            Circuit::kGround, Waveform::dc(1.2)));
      auto& va = static_cast<VoltageSource&>(c.add(std::make_unique<VoltageSource>(
          "VA", c.find_node(kNames[a]), Circuit::kGround, Waveform::dc(1.2))));
      c.add(std::make_unique<VoltageSource>("VB", c.find_node(kNames[b]),
                                            Circuit::kGround, Waveform::dc(0.0)));
      const OpResult op = dc_operating_point(c);
      EXPECT_GT(-va.current(op.solution), 1e-6)
          << "pair " << kNames[a] << "-" << kNames[b];
    }
  }
}

TEST(SwitchModel, OppositePairsSlowerThanAdjacent) {
  // Type B transistors are longer, so N-S conduction (one opposite-pair
  // transistor plus two-series adjacent paths) is below N-E conduction.
  const auto current_between = [](const char* hi, const char* lo) {
    Circuit c;
    add_four_terminal_switch(c, "x", {"n", "e", "s", "w"}, "g",
                             paper_switch_model());
    c.add(std::make_unique<VoltageSource>("VG", c.find_node("g"),
                                          Circuit::kGround, Waveform::dc(1.2)));
    auto& va = static_cast<VoltageSource&>(c.add(std::make_unique<VoltageSource>(
        "VA", c.find_node(hi), Circuit::kGround, Waveform::dc(0.1))));
    c.add(std::make_unique<VoltageSource>("VB", c.find_node(lo),
                                          Circuit::kGround, Waveform::dc(0.0)));
    const OpResult op = dc_operating_point(c);
    return -va.current(op.solution);
  };
  EXPECT_GT(current_between("n", "e"), current_between("n", "s"));
}

TEST(SwitchModel, FromFitCopiesParameters) {
  fit::FitResult fit;
  fit.params.kp = 4e-5;
  fit.params.vth = 0.3;
  fit.params.lambda = 0.05;
  const SwitchModelParams p = switch_model_from_fit(fit);
  EXPECT_DOUBLE_EQ(p.kp, 4e-5);
  EXPECT_DOUBLE_EQ(p.vth, 0.3);
  EXPECT_DOUBLE_EQ(p.lambda, 0.05);
  EXPECT_DOUBLE_EQ(p.width, 0.7e-6);           // paper geometry preserved
  EXPECT_DOUBLE_EQ(p.length_adjacent, 0.35e-6);
  EXPECT_DOUBLE_EQ(p.length_opposite, 0.50e-6);
}

class Xor3DcTruth : public ::testing::TestWithParam<int> {};

TEST_P(Xor3DcTruth, LatticeOutputIsInvertedXor3) {
  const int code = GetParam();
  const auto lat = lattice::xor3_lattice_3x3();
  std::map<int, Waveform> drives;
  for (int v = 0; v < 3; ++v) {
    drives[v] = Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
  }
  LatticeCircuit lc = build_lattice_circuit(lat, drives);
  const OpResult op = dc_operating_point(lc.circuit);
  ASSERT_TRUE(op.converged);
  const double out = node_v(lc.circuit, op, lc.output_node);
  const bool xor3 = (((code >> 0) ^ (code >> 1) ^ (code >> 2)) & 1) != 0;
  if (xor3) {
    // Lattice conducts: pulled low through the switch network (§V: the
    // output is negated; the paper reports a 0.22 V zero state).
    EXPECT_LT(out, 0.35) << "code " << code;
  } else {
    EXPECT_GT(out, 1.1) << "code " << code;
  }
}

INSTANTIATE_TEST_SUITE_P(AllInputCodes, Xor3DcTruth, ::testing::Range(0, 8));

TEST(LatticeNetlist, SwitchCountMatchesLattice) {
  const auto lat = lattice::xor3_lattice_3x4();
  LatticeCircuit lc = build_lattice_circuit(lat, {});
  int mosfets = 0;
  for (const auto& d : lc.circuit.devices()) {
    if (dynamic_cast<const Mosfet*>(d.get()) != nullptr) ++mosfets;
  }
  EXPECT_EQ(mosfets, 6 * lat.cell_count());
}

TEST(LatticeNetlist, ComplementDriversOnlyWhenNeeded) {
  // A lattice using only positive literals creates no _n sources.
  lattice::Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, lattice::CellValue::of(0));
  lat.set(1, 0, lattice::CellValue::of(0));
  LatticeCircuit lc = build_lattice_circuit(lat, {});
  EXPECT_TRUE(lc.circuit.has_device("Vin_a"));
  EXPECT_FALSE(lc.circuit.has_device("Vin_a_n"));
}

TEST(Chain, BuildsRequestedLength) {
  ChainCircuit chain = build_switch_chain(3, 1.2, 1.2);
  int mosfets = 0;
  for (const auto& d : chain.circuit.devices()) {
    if (dynamic_cast<const Mosfet*>(d.get()) != nullptr) ++mosfets;
  }
  EXPECT_EQ(mosfets, 18);
}

TEST(Chain, CurrentDecreasesWithLength) {
  double prev = 1e9;
  for (int n : {1, 2, 5, 9}) {
    const double i = chain_current(n, 1.2, 1.2);
    EXPECT_GT(i, 0.0);
    EXPECT_LT(i, prev) << n;
    prev = i;
  }
}

TEST(Chain, CurrentScalesRoughlyAsOneOverN) {
  // The paper's Fig. 12a trend: I(1)/I(21) ≈ 21.
  const double i1 = chain_current(1, 1.2, 1.2);
  const double i21 = chain_current(21, 1.2, 1.2);
  EXPECT_GT(i1 / i21, 10.0);
  EXPECT_LT(i1 / i21, 45.0);
}

TEST(Chain, OffChainCarriesOnlyLeakage) {
  EXPECT_LT(chain_current(3, 1.2, 0.0), 1e-9);
}

TEST(Chain, VoltageForCurrentInvertsChainCurrent) {
  const double target = chain_current(2, 1.2, 1.2);
  const double v5 = voltage_for_current(5, target);
  EXPECT_NEAR(chain_current(5, v5, v5), target, 0.01 * target);
  // More switches need more voltage.
  const double v9 = voltage_for_current(9, target);
  EXPECT_GT(v9, v5);
  EXPECT_GT(v5, 1.2 * 0.8);
}

TEST(Chain, UnreachableTargetThrows) {
  EXPECT_THROW(voltage_for_current(5, 1.0 /* 1 A */, 2.0), ftl::Error);
}

}  // namespace
