// Convergence-rescue tests: circuits engineered to defeat plain Newton so
// the gmin-stepping and adaptive source-stepping ladders must engage, plus
// transient step-halving.
#include <gtest/gtest.h>

#include <memory>

#include "ftl/spice/dcop.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/spice/mosfet.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::spice;

ftl::fit::Level1Params sharp_device() {
  // Very steep device: large Kp makes the Newton landscape stiff.
  ftl::fit::Level1Params p;
  p.kp = 5e-2;
  p.vth = 0.2;
  p.lambda = 0.0;
  p.width = 1e-6;
  p.length = 1e-6;
  return p;
}

TEST(Rescue, LongPassGateLadderConverges) {
  // 24 pass transistors in series between 5 V and ground, all gates at a
  // separate rail: interior nodes start far from their solution, which is
  // exactly the shape that needs the rescue ladders.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VS", c.node("n0"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  const int stages = 24;
  for (int i = 0; i < stages; ++i) {
    const std::string d = "n" + std::to_string(i);
    const std::string s = (i == stages - 1) ? "0" : "n" + std::to_string(i + 1);
    c.add(std::make_unique<Mosfet>("M" + std::to_string(i), c.node(d),
                                   c.node("g"), c.node(s), Circuit::kGround,
                                   sharp_device()));
  }
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  // The interior node voltages must be a monotone ladder from 5 V to 0.
  double prev = 5.0 + 1e-9;
  for (int i = 0; i < stages; ++i) {
    const double v =
        op.solution[static_cast<std::size_t>(c.find_node("n" + std::to_string(i)))];
    EXPECT_LE(v, prev + 1e-9) << i;
    EXPECT_GE(v, -1e-6);
    prev = v;
  }
}

TEST(Rescue, StiffFeedbackPairConverges) {
  // Diode-connected stack with a huge-Kp device: plain Newton from zero
  // overshoots; the clamp plus ladders must still land it.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("vdd"), c.node("a"), 100.0));
  c.add(std::make_unique<Mosfet>("M1", c.node("a"), c.node("a"), c.node("b"),
                                 Circuit::kGround, sharp_device()));
  c.add(std::make_unique<Mosfet>("M2", c.node("b"), c.node("b"),
                                 Circuit::kGround, Circuit::kGround,
                                 sharp_device()));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  const double va = op.solution[static_cast<std::size_t>(c.find_node("a"))];
  const double vb = op.solution[static_cast<std::size_t>(c.find_node("b"))];
  EXPECT_GT(va, vb);
  EXPECT_GT(vb, 0.0);
  EXPECT_LT(va, 5.0);
}

TEST(Rescue, SourceSteppingIsOrderIndependentOfDeviceInsertion) {
  // The same circuit built in two different device orders must land on the
  // same operating point (the ladders must not depend on stamp order).
  const auto build = [](bool reversed) {
    auto c = std::make_unique<Circuit>();
    c->add(std::make_unique<VoltageSource>("VDD", c->node("vdd"),
                                           Circuit::kGround, Waveform::dc(3.0)));
    std::vector<std::unique_ptr<Device>> devices;
    devices.push_back(std::make_unique<Resistor>("R1", c->node("vdd"),
                                                 c->node("x"), 1000.0));
    devices.push_back(std::make_unique<Mosfet>("M1", c->node("x"), c->node("x"),
                                               Circuit::kGround, Circuit::kGround,
                                               sharp_device()));
    if (reversed) std::swap(devices[0], devices[1]);
    for (auto& d : devices) c->add(std::move(d));
    return c;
  };
  auto c1 = build(false);
  auto c2 = build(true);
  const OpResult op1 = dc_operating_point(*c1);
  const OpResult op2 = dc_operating_point(*c2);
  EXPECT_NEAR(op1.solution[static_cast<std::size_t>(c1->find_node("x"))],
              op2.solution[static_cast<std::size_t>(c2->find_node("x"))], 1e-6);
}

TEST(Rescue, TransientStepHalvingSurvivesFastEdges) {
  // A pulse edge much faster than dt forces the engine to land exactly on
  // the breakpoints and halve steps; the final value must still be right.
  Circuit c;
  c.add(std::make_unique<VoltageSource>(
      "V1", c.node("in"), Circuit::kGround,
      Waveform::pulse(0.0, 2.0, 50e-9, 1e-12, 1e-12, 1.0, 0.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("in"), c.node("out"), 100.0));
  c.add(std::make_unique<Capacitor>("C1", c.node("out"), Circuit::kGround, 1e-12));
  TransientOptions options;
  options.tstop = 200e-9;
  options.dt = 10e-9;  // 10^4 times the edge duration
  options.record_nodes = {"out"};
  // Backward Euler (L-stable) settles the stiff edge exactly.
  options.integrator = Integrator::kBackwardEuler;
  const TransientResult be = transient(c, options);
  EXPECT_NEAR(be.signal("out").back(), 2.0, 1e-6);
  EXPECT_NEAR(be.signal("out").front(), 0.0, 1e-9);
  // Trapezoidal is only A-stable: with dt = 100 tau it rings with decay
  // ratio ~0.96 per step, so after 15 steps ~1% residual remains — the
  // documented reason SPICE defaults pair trap with LTE control.
  options.integrator = Integrator::kTrapezoidal;
  const TransientResult trap = transient(c, options);
  EXPECT_NEAR(trap.signal("out").back(), 2.0, 0.05);
}

}  // namespace
