// ftl::serve async transport — the behaviors the epoll event loop adds on
// top of the blocking protocol tests in test_serve.cpp: request pipelining
// (many requests in one send, responses in request order), graceful drain
// with pipelined requests still in flight, slow consumers that force the
// server through its partial-write path, the consistent-hash ring, the
// sharded-cache counters, and the multi-endpoint loadgen. Everything runs
// in-process on ephemeral ports.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ftl/serve/client.hpp"
#include "ftl/serve/hashring.hpp"
#include "ftl/serve/json.hpp"
#include "ftl/serve/loadgen.hpp"
#include "ftl/serve/server.hpp"
#include "ftl/serve/service.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::serve::Client;
using ftl::serve::HashRing;
using ftl::serve::JsonValue;
using ftl::serve::Server;
using ftl::serve::ServerOptions;
using ftl::serve::Service;

// The request mix used across these tests: cheap pure ops with distinct
// responses, so in-order delivery is distinguishable from any shuffle.
std::vector<std::string> pipelined_mix(int count) {
  std::vector<std::string> lines;
  const char* exprs[] = {"a b + b c + a c", "a b", "a + b", "a b' + a' b"};
  for (int i = 0; i < count; ++i) {
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::str(i % 2 == 0 ? "eval" : "synth"));
    req.set("expr", JsonValue::str(exprs[i % 4]));
    req.set("id", JsonValue::number(i));
    lines.push_back(req.dump());
  }
  return lines;
}

// --- pipelining -----------------------------------------------------------

TEST(ServePipeline, BatchedRequestsAnswerInOrderByteIdentically) {
  Service service({.workers = 2, .queue_depth = 256});
  Server server(service, ServerOptions{.port = 0, .event_loops = 2});
  server.start();

  const std::vector<std::string> lines = pipelined_mix(32);

  // Serial reference: one request per round trip.
  std::vector<std::string> expected;
  {
    Client serial("127.0.0.1", server.port());
    for (const std::string& line : lines) {
      expected.push_back(serial.call_line(line));
    }
  }

  // Pipelined: all 32 in a single send(2), then 32 reads. The server must
  // answer in request order even though workers race on the middle ones.
  Client client("127.0.0.1", server.port());
  client.send_lines(lines);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(client.recv_line(), expected[i]) << "request " << i;
  }
  server.stop();
}

TEST(ServePipeline, InterleavedBatchesKeepPerConnectionOrder) {
  Service service({.workers = 4, .queue_depth = 256});
  Server server(service, ServerOptions{.port = 0, .event_loops = 2});
  server.start();

  const std::vector<std::string> lines = pipelined_mix(16);
  std::vector<std::string> expected;
  {
    Client serial("127.0.0.1", server.port());
    for (const std::string& line : lines) {
      expected.push_back(serial.call_line(line));
    }
  }

  // Two connections pipelining the same batch concurrently: each sees its
  // own responses in its own request order.
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      Client client("127.0.0.1", server.port());
      client.send_lines(lines);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(client.recv_line(), expected[i]) << "request " << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.stop();
}

// --- graceful drain with pipelined requests in flight ---------------------

TEST(ServeDrain, StopCompletesPipelinedInFlightRequests) {
  Service service({.workers = 2, .queue_depth = 64});
  Server server(service, ServerOptions{.port = 0, .event_loops = 1});
  server.start();

  // Pipeline a burst of slow-ish requests, then stop the server while they
  // are still in flight. Every queued request must still get its response,
  // in order, before the connection closes.
  const int kInFlight = 8;
  std::vector<std::string> lines;
  for (int i = 0; i < kInFlight; ++i) {
    lines.push_back(R"({"op":"sleep","ms":20,"id":)" + std::to_string(i) +
                    "}");
  }
  Client client("127.0.0.1", server.port());
  client.send_lines(lines);

  // The burst is one coalesced write and the edge-triggered read drains the
  // socket buffer whole, so once response 0 arrives every request in the
  // burst has been parsed and is in flight. Stopping before that first read
  // is a different (also valid) outcome — SHUT_RD drops never-read bytes and
  // the client just sees a close — so pin the race to the in-flight side.
  {
    const JsonValue r0 = JsonValue::parse(client.recv_line());
    EXPECT_TRUE(r0.bool_or("ok", false)) << r0.dump();
    EXPECT_DOUBLE_EQ(r0.find("id")->as_number(), 0);
  }

  std::thread stopper([&] { server.stop(); });
  // Collect before asserting: recv_line throws on a dropped response, and an
  // exception past a joinable stopper would terminate instead of failing.
  std::vector<std::string> rest;
  bool closed_after = false;
  try {
    for (int i = 1; i < kInFlight; ++i) rest.push_back(client.recv_line());
    client.recv_line();  // after the drain the server closes the connection
  } catch (const ftl::Error&) {
    closed_after = true;
  }
  stopper.join();
  ASSERT_EQ(rest.size(), static_cast<std::size_t>(kInFlight - 1));
  EXPECT_TRUE(closed_after);  // the close came after the responses, not instead
  for (int i = 1; i < kInFlight; ++i) {
    const JsonValue r = JsonValue::parse(rest[static_cast<std::size_t>(i - 1)]);
    EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
    EXPECT_DOUBLE_EQ(r.find("id")->as_number(), i);
  }
  EXPECT_TRUE(service.draining());
}

// --- slow client / partial writes -----------------------------------------

TEST(ServeSlowClient, TinyReceiveBufferStillGetsEveryByte) {
  Service service({.workers = 2, .queue_depth = 256});
  Server server(service, ServerOptions{.port = 0, .event_loops = 1});
  server.start();

  // paths with a list is the largest response in the protocol — thousands
  // of bytes — so a tiny client receive buffer forces the server through
  // EAGAIN and partial sendmsg() returns while the pipeline keeps feeding.
  const std::string big = R"({"op":"paths","rows":6,"cols":6,"list_limit":200})";
  std::string expected;
  {
    Client reference("127.0.0.1", server.port());
    expected = reference.call_line(big);
  }
  ASSERT_GT(expected.size(), 4096u);

  Client slow("127.0.0.1", server.port());
  slow.set_receive_buffer(1024);  // kernel clamps, but stays tiny
  const int kRepeats = 8;
  slow.send_lines(std::vector<std::string>(kRepeats, big));
  for (int i = 0; i < kRepeats; ++i) {
    // The ~2 KB receive window holds back megabytes of queued responses, so
    // the server's writes return short or EAGAIN throughout; every byte must
    // still arrive exactly once, in order.
    EXPECT_EQ(slow.recv_line(), expected) << "response " << i;
  }
  server.stop();
}

// --- cache counters -------------------------------------------------------

TEST(ServeCacheCounters, StatsReportsShardAndLineCacheActivity) {
  Service service({.workers = 1});
  const auto counters = [&service] {
    const JsonValue r =
        JsonValue::parse(service.handle_now(R"({"op":"stats"})"));
    const JsonValue* cc = r.find("cache_core");
    EXPECT_NE(cc, nullptr) << r.dump();
    struct Snapshot {
      double memory_hits, memory_misses, line_hits, stores;
    };
    return Snapshot{cc->find("memory_hits")->as_number(),
                    cc->find("memory_misses")->as_number(),
                    cc->find("line_hits")->as_number(),
                    cc->find("stores")->as_number()};
  };
  const JsonValue stats0 =
      JsonValue::parse(service.handle_now(R"({"op":"stats"})"));
  EXPECT_DOUBLE_EQ(stats0.find("cache_core")->find("shards")->as_number(),
                   16.0);

  const auto before = counters();
  const std::string line = R"({"op":"eval","expr":"a b + b c + a c"})";
  service.handle_now(line);  // cold: memory miss + store
  const auto after_miss = counters();
  EXPECT_DOUBLE_EQ(after_miss.memory_misses, before.memory_misses + 1.0);
  EXPECT_DOUBLE_EQ(after_miss.stores, before.stores + 1.0);

  service.handle_now(line);  // verbatim repeat: line-cache hit, no parse
  const auto after_line = counters();
  EXPECT_DOUBLE_EQ(after_line.line_hits, after_miss.line_hits + 1.0);

  // Same request, different spelling: misses the line cache but hits the
  // canonical memo (same content-addressed key).
  service.handle_now(R"({"op":"eval", "expr":"a b + b c + a c"})");
  const auto after_memo = counters();
  EXPECT_DOUBLE_EQ(after_memo.memory_hits, after_line.memory_hits + 1.0);
}

TEST(ServeCacheCounters, PerOpHitAndMissCountsInStats) {
  Service service({.workers = 1});
  const std::string line = R"({"op":"eval","expr":"a b"})";
  service.handle_now(line);
  service.handle_now(line);
  service.handle_now(line);
  const JsonValue snap = service.stats().snapshot();
  const JsonValue* eval = snap.find("ops")->find("eval");
  ASSERT_NE(eval, nullptr);
  EXPECT_DOUBLE_EQ(eval->find("cache_misses")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(eval->find("cache_hits")->as_number(), 2.0);
}

// --- consistent-hash ring -------------------------------------------------

TEST(ServeHashRing, MappingIsDeterministicAndOrderIndependent) {
  const std::vector<std::string> nodes = {"h1:1", "h2:2", "h3:3"};
  const std::vector<std::string> reversed = {"h3:3", "h2:2", "h1:1"};
  const HashRing a(nodes);
  const HashRing b(reversed);
  std::set<std::string> owners;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.node_for(key), b.node_for(key)) << key;
    owners.insert(a.node_for(key));
  }
  // 200 keys over 3 nodes with 64 vnodes each: every node owns some keys.
  EXPECT_EQ(owners.size(), nodes.size());
}

TEST(ServeHashRing, RemovingANodeOnlyRemapsItsOwnKeys) {
  const HashRing full({"h1:1", "h2:2", "h3:3"});
  const HashRing reduced({"h1:1", "h2:2"});
  int moved = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string& before = full.node_for(key);
    const std::string& after = reduced.node_for(key);
    if (before == "h3:3") {
      ++moved;
      EXPECT_NE(after, "h3:3");
    } else {
      // The consistency property: keys not owned by the removed node
      // must not move at all.
      EXPECT_EQ(after, before) << key;
    }
  }
  EXPECT_GT(moved, 0);  // h3 owned a share before removal
}

TEST(ServeHashRing, RejectsEmptyAndBadConfigs) {
  EXPECT_THROW(HashRing({}), ftl::Error);
  EXPECT_THROW(HashRing({"h1:1"}, 0), ftl::Error);
}

// --- multi-endpoint loadgen ----------------------------------------------

TEST(ServeLoadgen, PipelinedMultiEndpointRunReportsHitRate) {
  Service service_a({.workers = 1, .queue_depth = 64});
  Service service_b({.workers = 1, .queue_depth = 64});
  Server server_a(service_a, ServerOptions{.port = 0, .event_loops = 1});
  Server server_b(service_b, ServerOptions{.port = 0, .event_loops = 1});
  server_a.start();
  server_b.start();

  ftl::serve::LoadgenOptions options;
  options.endpoints = {"127.0.0.1:" + std::to_string(server_a.port()),
                       "127.0.0.1:" + std::to_string(server_b.port())};
  options.connections = 2;
  options.requests = 800;
  options.pipeline = 16;
  // 32 distinct pure (cacheable) lines: the ring mapping depends on the
  // ephemeral port numbers, so a handful of lines could all land on one
  // endpoint by chance — 32 across 2 nodes makes an empty side a ~2^-31
  // event.
  for (int r = 1; r <= 8; ++r) {
    for (int c = 1; c <= 4; ++c) {
      options.mix.push_back(R"({"op":"paths","rows":)" + std::to_string(r) +
                            R"(,"cols":)" + std::to_string(c) + "}");
    }
  }

  const ftl::serve::LoadgenReport report = ftl::serve::run_loadgen(options);
  EXPECT_EQ(report.sent, options.requests);
  EXPECT_EQ(report.ok, options.requests);
  EXPECT_EQ(report.errors, 0u);
  // Every line repeats ~25x, so nearly all requests are cache hits and the
  // delta-based rate must be known and high (first touch of each of the 32
  // lines is the only miss: >= 768/800).
  EXPECT_GE(report.cache_hit_rate, 0.9);
  EXPECT_LE(report.cache_hit_rate, 1.0);
  // The hash ring routed traffic to both endpoints.
  EXPECT_GT(service_a.stats().total_requests(), 0u);
  EXPECT_GT(service_b.stats().total_requests(), 0u);

  server_a.stop();
  server_b.stop();
}

}  // namespace
