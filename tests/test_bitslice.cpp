// The bitsliced evaluation core: 64-lane connectivity against the scalar
// BFS and the memoized-LUT engine, block-parallel truth tables against
// serial ones (bitwise), deterministic sharded exhaustive search, and the
// process-wide evaluation counters.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "ftl/lattice/bitslice.hpp"
#include "ftl/lattice/connectivity.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::lattice::BitsliceEvaluator;
using ftl::lattice::CellValue;
using ftl::lattice::cell_lane_word;
using ftl::lattice::connected_lanes;
using ftl::lattice::connectivity_lut_cached;
using ftl::lattice::eval_counters;
using ftl::lattice::Lattice;
using ftl::lattice::realized_truth_table;
using ftl::lattice::realized_truth_table_lut;
using ftl::lattice::realizes;
using ftl::logic::TruthTable;

Lattice random_lattice(int rows, int cols, int num_vars, unsigned seed,
                       bool with_constants = true) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> choice(
      0, 2 * num_vars + (with_constants ? 1 : -1));
  Lattice lat(rows, cols, num_vars);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int pick = choice(rng);
      if (pick < 2 * num_vars) {
        lat.set(r, c, CellValue::of(pick / 2, pick % 2 == 0));
      } else if (pick == 2 * num_vars) {
        lat.set(r, c, CellValue::zero());
      } else {
        lat.set(r, c, CellValue::one());
      }
    }
  }
  return lat;
}

/// The scalar ground truth: one BFS per assignment.
TruthTable scalar_truth_table(const Lattice& lat) {
  return TruthTable::from_function(
      lat.num_vars(), [&lat](std::uint64_t m) { return lat.evaluate(m); });
}

// --- lane-word construction ------------------------------------------------

TEST(Bitslice, LaneWordsMatchScalarCellEvaluation) {
  for (const std::uint64_t base : {std::uint64_t{0}, std::uint64_t{64},
                                   std::uint64_t{1} << 10}) {
    for (int var = 0; var < 12; ++var) {
      for (const bool positive : {true, false}) {
        const CellValue v = CellValue::of(var, positive);
        const std::uint64_t lanes = cell_lane_word(v, base);
        for (int k = 0; k < 64; ++k) {
          EXPECT_EQ(((lanes >> k) & 1) != 0, v.evaluate(base + k))
              << "var=" << var << " positive=" << positive << " base=" << base
              << " lane=" << k;
        }
      }
    }
    EXPECT_EQ(cell_lane_word(CellValue::zero(), base), 0u);
    EXPECT_EQ(cell_lane_word(CellValue::one(), base), ~std::uint64_t{0});
  }
}

// --- kernel vs scalar BFS --------------------------------------------------

TEST(Bitslice, ConnectedLanesAgreeWithScalarBfsOnRandomStates) {
  std::mt19937_64 rng(7);
  for (const auto [rows, cols] :
       {std::pair{1, 1}, {1, 5}, {5, 1}, {2, 2}, {3, 4}, {4, 3}, {5, 5},
        {2, 9}, {9, 2}, {6, 4}}) {
    const int n = rows * cols;
    std::vector<std::uint64_t> states(static_cast<std::size_t>(n));
    for (int trial = 0; trial < 8; ++trial) {
      for (auto& w : states) w = rng();
      const std::uint64_t out = connected_lanes(states.data(), rows, cols);
      for (int lane = 0; lane < 64; ++lane) {
        std::vector<bool> grid(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          grid[static_cast<std::size_t>(i)] =
              ((states[static_cast<std::size_t>(i)] >> lane) & 1) != 0;
        }
        EXPECT_EQ(((out >> lane) & 1) != 0,
                  ftl::lattice::top_bottom_connected(grid, rows, cols))
            << rows << "x" << cols << " lane " << lane;
      }
    }
  }
}

TEST(Bitslice, AbortMaskOnlyEverAddsMaskedBits) {
  // With an abort mask the kernel may stop early, but any lane it reports
  // as connected really is (monotone growth), and it must report at least
  // one masked lane when the exact result intersects the mask.
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> states(12);
  for (int trial = 0; trial < 64; ++trial) {
    for (auto& w : states) w = rng();
    const std::uint64_t exact = connected_lanes(states.data(), 3, 4);
    const std::uint64_t mask = rng();
    std::vector<std::uint64_t> scratch;
    const std::uint64_t partial =
        connected_lanes(states.data(), 3, 4, mask, scratch);
    EXPECT_EQ(partial & ~exact, 0u);  // never over-reports
    if ((exact & mask) != 0) {
      EXPECT_NE(partial & mask, 0u);  // the refutation is visible
    } else {
      EXPECT_EQ(partial, exact);  // no abort: exact fixpoint
    }
  }
}

// --- three engines, one truth table ----------------------------------------

TEST(Bitslice, TruthTableAgreesWithScalarAndLutOnRandomLattices) {
  unsigned seed = 100;
  for (const auto [rows, cols] :
       {std::pair{1, 1}, {1, 4}, {4, 1}, {2, 3}, {3, 3}, {4, 4}, {2, 8}}) {
    for (int num_vars : {1, 3, 5, 7}) {
      const Lattice lat = random_lattice(rows, cols, num_vars, ++seed);
      const TruthTable expected = scalar_truth_table(lat);
      EXPECT_EQ(realized_truth_table(lat), expected)
          << rows << "x" << cols << " nv=" << num_vars << " seed=" << seed;
      if (rows * cols <= 20) {
        EXPECT_EQ(realized_truth_table_lut(lat), expected)
            << rows << "x" << cols << " nv=" << num_vars << " seed=" << seed;
      }
      EXPECT_TRUE(realizes(lat, expected));
    }
  }
}

TEST(Bitslice, RealizesRejectsEveryScalarMismatch) {
  unsigned seed = 500;
  for (int trial = 0; trial < 10; ++trial) {
    const Lattice lat = random_lattice(3, 4, 6, ++seed);
    const TruthTable expected = scalar_truth_table(lat);
    EXPECT_TRUE(realizes(lat, expected));
    // Flipping any single minterm must be caught.
    std::mt19937 rng(seed);
    for (int flip = 0; flip < 4; ++flip) {
      TruthTable mutated = expected;
      const std::uint64_t m = rng() % mutated.num_minterms();
      mutated.set(m, !mutated.get(m));
      EXPECT_FALSE(realizes(lat, mutated)) << "flip at minterm " << m;
    }
  }
}

// --- deterministic parallelism ---------------------------------------------

TEST(Bitslice, ParallelTruthTablesAreBitwiseIdenticalToSerial) {
  // 10+ variables => 16+ blocks => the parallel path actually shards.
  unsigned seed = 900;
  for (const auto [rows, cols] : {std::pair{3, 4}, {4, 4}, {5, 3}}) {
    const Lattice lat = random_lattice(rows, cols, 11, ++seed);
    const TruthTable serial = realized_truth_table(lat, 1);
    const TruthTable pooled = realized_truth_table(lat);  // global pool
    const TruthTable capped = realized_truth_table(lat, 4);
    EXPECT_EQ(serial, pooled);
    EXPECT_EQ(serial, capped);
    EXPECT_EQ(serial, scalar_truth_table(lat));
  }
}

TEST(Bitslice, ParallelExhaustiveSearchFindsTheSerialLattice) {
  // XOR2 on 2x2 with constants: a known-found case. The first-found
  // lattice must be identical for serial and parallel runs.
  const TruthTable xor2 = TruthTable::from_bits(2, 0b0110);
  ftl::lattice::SearchOptions serial_opts;
  serial_opts.max_threads = 1;
  ftl::lattice::SearchOptions parallel_opts;
  parallel_opts.max_threads = 0;
  const auto serial =
      ftl::lattice::exhaustive_synthesis(xor2, 2, 2, serial_opts);
  const auto parallel =
      ftl::lattice::exhaustive_synthesis(xor2, 2, 2, parallel_opts);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(serial->at(r, c), parallel->at(r, c)) << r << "," << c;
    }
  }
  // And a known-unfindable case must be nullopt under both.
  ftl::lattice::SearchOptions no_consts_serial = serial_opts;
  no_consts_serial.allow_constants = false;
  ftl::lattice::SearchOptions no_consts_parallel = parallel_opts;
  no_consts_parallel.allow_constants = false;
  const TruthTable xor3 = TruthTable::from_function(3, [](std::uint64_t m) {
    return (std::popcount(m & 7u) % 2) == 1;
  });
  EXPECT_FALSE(
      ftl::lattice::exhaustive_synthesis(xor3, 2, 2, no_consts_serial));
  EXPECT_FALSE(
      ftl::lattice::exhaustive_synthesis(xor3, 2, 2, no_consts_parallel));
}

// --- the memoized LUT and the counters -------------------------------------

TEST(Bitslice, CachedLutMatchesDirectBuildAndCountsHits) {
  const auto before = eval_counters();
  const std::vector<bool>& cached = connectivity_lut_cached(3, 3);
  const std::vector<bool>& again = connectivity_lut_cached(3, 3);
  EXPECT_EQ(&cached, &again);  // one table per shape, stable address
  EXPECT_EQ(cached, ftl::lattice::connectivity_lut(3, 3));
  const auto after = eval_counters();
  // First call may build or hit (other tests share the process-wide cache);
  // the second call is necessarily a hit.
  EXPECT_GE(after.lut_hits, before.lut_hits + 1);
  EXPECT_THROW(connectivity_lut_cached(5, 5), ftl::ContractViolation);
}

TEST(Bitslice, CountersAdvanceWithEvaluatedBlocks) {
  const auto before = eval_counters();
  const Lattice lat = random_lattice(3, 3, 8, 4242);
  realized_truth_table(lat, 1);  // 2^8 assignments = 4 blocks
  const auto after = eval_counters();
  EXPECT_GE(after.blocks, before.blocks + 4);
  EXPECT_GE(after.assignments, before.assignments + 256);
}

TEST(Bitslice, EvaluatorBlockMatchesTruthTableWords) {
  const Lattice lat = random_lattice(4, 3, 8, 77);
  const BitsliceEvaluator eval(lat);
  const TruthTable table = realized_truth_table(lat);
  for (std::size_t b = 0; b < TruthTable::word_count(8); ++b) {
    EXPECT_EQ(eval.evaluate_block(b << 6), table.word(b)) << "block " << b;
  }
  EXPECT_THROW(eval.evaluate_block(17), ftl::ContractViolation);
}

}  // namespace
