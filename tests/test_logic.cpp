// Tests for cubes, SOP covers and truth tables — the Boolean substrate of
// lattice synthesis.
#include <gtest/gtest.h>

#include <random>

#include "ftl/logic/cube.hpp"
#include "ftl/logic/sop.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::logic::Cube;
using ftl::logic::Literal;
using ftl::logic::Sop;
using ftl::logic::TruthTable;

TEST(Cube, EmptyCubeIsConstantOne) {
  const Cube c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0);
  EXPECT_TRUE(c.evaluate(0));
  EXPECT_TRUE(c.evaluate(0b1011));
  EXPECT_EQ(c.to_string(), "1");
}

TEST(Cube, LiteralEvaluation) {
  const Cube c = Cube::from_literals({{0, true}, {2, false}});
  EXPECT_TRUE(c.evaluate(0b001));   // x0=1, x2=0
  EXPECT_FALSE(c.evaluate(0b000));  // x0=0
  EXPECT_FALSE(c.evaluate(0b101));  // x2=1
  EXPECT_EQ(c.size(), 2);
  EXPECT_TRUE(c.mentions(0));
  EXPECT_TRUE(c.mentions(2));
  EXPECT_FALSE(c.mentions(1));
  EXPECT_EQ(c.polarity(0), std::optional<bool>(true));
  EXPECT_EQ(c.polarity(2), std::optional<bool>(false));
  EXPECT_FALSE(c.polarity(1).has_value());
}

TEST(Cube, ContradictionThrows) {
  Cube c;
  c.add({3, true});
  EXPECT_THROW(c.add({3, false}), ftl::Error);
  EXPECT_THROW(c.add({-1, true}), ftl::Error);
  EXPECT_THROW(c.add({64, true}), ftl::Error);
}

TEST(Cube, CoversIsLiteralSubset) {
  const Cube x = Cube::from_literals({{0, true}});
  const Cube xy = Cube::from_literals({{0, true}, {1, true}});
  const Cube xny = Cube::from_literals({{0, true}, {1, false}});
  EXPECT_TRUE(x.covers(xy));   // x absorbs x y
  EXPECT_TRUE(x.covers(xny));  // x absorbs x y'
  EXPECT_FALSE(xy.covers(x));
  EXPECT_FALSE(xy.covers(xny));  // different polarity on y
  EXPECT_TRUE(Cube().covers(x));  // constant 1 covers everything
}

TEST(Cube, SharedLiterals) {
  const Cube a = Cube::from_literals({{0, true}, {1, false}, {2, true}});
  const Cube b = Cube::from_literals({{0, true}, {1, true}, {2, true}});
  const auto shared = a.shared_literals(b);
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_EQ(shared[0], (Literal{0, true}));
  EXPECT_EQ(shared[1], (Literal{2, true}));
}

TEST(Cube, ToStringWithNames) {
  const Cube c = Cube::from_literals({{0, true}, {1, false}});
  EXPECT_EQ(c.to_string({"a", "b"}), "a b'");
  EXPECT_EQ(c.to_string(), "x0 x1'");
}

TEST(Sop, AbsorptionLaw) {
  // x + x y + x y z -> x
  Sop sop(3);
  sop.add(Cube::from_literals({{0, true}}));
  sop.add(Cube::from_literals({{0, true}, {1, true}}));
  sop.add(Cube::from_literals({{0, true}, {1, true}, {2, true}}));
  sop.absorb();
  EXPECT_EQ(sop.size(), 1);
  EXPECT_EQ(sop.to_string({"x", "y", "z"}), "x");
}

TEST(Sop, DuplicatesCollapseToOne) {
  Sop sop(2);
  sop.add(Cube::from_literals({{0, true}}));
  sop.add(Cube::from_literals({{0, true}}));
  sop.absorb();
  EXPECT_EQ(sop.size(), 1);
}

TEST(Sop, AbsorptionPreservesFunction) {
  std::mt19937 rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    Sop sop(4);
    std::uniform_int_distribution<int> ncubes(1, 6);
    std::uniform_int_distribution<int> pol(0, 2);
    const int k = ncubes(rng);
    for (int i = 0; i < k; ++i) {
      Cube c;
      for (int v = 0; v < 4; ++v) {
        const int p = pol(rng);
        if (p != 2) c.add({v, p == 1});
      }
      sop.add(std::move(c));
    }
    const TruthTable before = TruthTable::from_sop(sop);
    sop.absorb();
    EXPECT_EQ(TruthTable::from_sop(sop), before) << "trial " << trial;
  }
}

TEST(Sop, EmptyIsConstantZeroAndConstantOneDetected) {
  Sop sop(2);
  EXPECT_FALSE(sop.evaluate(0));
  EXPECT_EQ(sop.to_string(), "0");
  sop.add(Cube{});
  EXPECT_TRUE(sop.has_constant_one());
  EXPECT_TRUE(sop.evaluate(3));
}

TEST(Sop, RejectsOutOfRangeVariables) {
  Sop sop(2);
  EXPECT_THROW(sop.add(Cube::from_literals({{5, true}})), ftl::Error);
}

TEST(TruthTable, FromBitsAndGet) {
  // XOR2: table 0110.
  const TruthTable t = TruthTable::from_bits(2, 0b0110);
  EXPECT_FALSE(t.get(0));
  EXPECT_TRUE(t.get(1));
  EXPECT_TRUE(t.get(2));
  EXPECT_FALSE(t.get(3));
  EXPECT_EQ(t.count_ones(), 2u);
}

TEST(TruthTable, ConstantsAndVariables) {
  EXPECT_TRUE(TruthTable::constant(3, false).is_zero());
  EXPECT_TRUE(TruthTable::constant(3, true).is_one());
  const TruthTable x1 = TruthTable::variable(3, 1);
  EXPECT_EQ(x1.count_ones(), 4u);
  EXPECT_TRUE(x1.get(0b010));
  EXPECT_FALSE(x1.get(0b101));
}

TEST(TruthTable, BooleanOperators) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).count_ones(), 1u);
  EXPECT_EQ((a | b).count_ones(), 3u);
  EXPECT_EQ((a ^ b), TruthTable::from_bits(2, 0b0110));
  EXPECT_EQ((~a).count_ones(), 2u);
  EXPECT_TRUE((a & b).implies(a));
  EXPECT_FALSE(a.implies(a & b));
}

class TruthTableVars : public ::testing::TestWithParam<int> {};

TEST_P(TruthTableVars, CofactorMatchesDefinition) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) * 5 + 2);
  std::uniform_int_distribution<int> bit(0, 1);
  TruthTable f(n);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) f.set(m, bit(rng) == 1);

  for (int v = 0; v < n; ++v) {
    for (bool value : {false, true}) {
      const TruthTable cof = f.cofactor(v, value);
      for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
        std::uint64_t probe = m;
        if (value) probe |= (std::uint64_t{1} << v);
        else probe &= ~(std::uint64_t{1} << v);
        EXPECT_EQ(cof.get(m), f.get(probe))
            << "n=" << n << " v=" << v << " val=" << value << " m=" << m;
      }
      EXPECT_FALSE(cof.depends_on(v));
    }
  }
}

TEST_P(TruthTableVars, DualIsAnInvolution) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) * 7 + 3);
  std::uniform_int_distribution<int> bit(0, 1);
  TruthTable f(n);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) f.set(m, bit(rng) == 1);
  EXPECT_EQ(f.dual().dual(), f);
}

TEST_P(TruthTableVars, DualOfAndIsOr) {
  const int n = GetParam();
  if (n < 2) return;
  const TruthTable a = TruthTable::variable(n, 0);
  const TruthTable b = TruthTable::variable(n, 1);
  EXPECT_EQ((a & b).dual(), (a | b));
  EXPECT_EQ((a | b).dual(), (a & b));
}

INSTANTIATE_TEST_SUITE_P(VarCounts, TruthTableVars,
                         ::testing::Values(1, 2, 3, 4, 6, 7, 8, 10));

TEST(TruthTable, Xor3IsSelfDual) {
  const TruthTable xor3 = TruthTable::from_function(3, [](std::uint64_t m) {
    return (((m >> 0) ^ (m >> 1) ^ (m >> 2)) & 1) != 0;
  });
  EXPECT_EQ(xor3.dual(), xor3);
}

TEST(TruthTable, FromSopAgreesWithSopEvaluate) {
  Sop sop(3);
  sop.add(Cube::from_literals({{0, true}, {1, false}}));
  sop.add(Cube::from_literals({{2, true}}));
  const TruthTable t = TruthTable::from_sop(sop);
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(t.get(m), sop.evaluate(m)) << m;
  }
}

}  // namespace
