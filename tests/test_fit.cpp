// Parameter-extraction tests: the level-1 equations themselves, recovery of
// known parameters from synthetic data, weighting behaviour, and the full
// TCAD -> fit pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ftl/fit/extract.hpp"
#include "ftl/fit/mosfet_level1.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::fit;

Level1Params reference_params() {
  Level1Params p;
  p.kp = 3e-5;
  p.vth = 0.4;
  p.lambda = 0.03;
  p.width = 0.7e-6;
  p.length = 0.35e-6;
  return p;
}

TEST(Level1, CutoffRegion) {
  const Level1Params p = reference_params();
  EXPECT_DOUBLE_EQ(level1_ids(p, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(level1_ids(p, 0.4, 1.0), 0.0);  // exactly at Vth
  EXPECT_DOUBLE_EQ(level1_ids(p, -1.0, 5.0), 0.0);
}

TEST(Level1, TriodeMatchesFormula) {
  const Level1Params p = reference_params();
  const double vgs = 2.0;
  const double vds = 0.5;  // vds < vov = 1.6
  const double expected = p.beta() * ((vgs - p.vth) * vds - 0.5 * vds * vds) *
                          (1.0 + p.lambda * vds);
  EXPECT_DOUBLE_EQ(level1_ids(p, vgs, vds), expected);
}

TEST(Level1, SaturationMatchesFormula) {
  const Level1Params p = reference_params();
  const double vgs = 2.0;
  const double vds = 3.0;  // vds > vov
  const double vov = vgs - p.vth;
  const double expected = 0.5 * p.beta() * vov * vov * (1.0 + p.lambda * vds);
  EXPECT_DOUBLE_EQ(level1_ids(p, vgs, vds), expected);
}

TEST(Level1, ContinuousAcrossRegionBoundary) {
  const Level1Params p = reference_params();
  for (double vgs = 0.5; vgs <= 5.0; vgs += 0.5) {
    const double vov = vgs - p.vth;
    if (vov <= 0) continue;
    const double below = level1_ids(p, vgs, vov - 1e-9);
    const double above = level1_ids(p, vgs, vov + 1e-9);
    EXPECT_NEAR(below, above, 1e-9 * std::max(below, 1e-12)) << vgs;
  }
}

TEST(Level1, NegativeVdsRejected) {
  EXPECT_THROW(level1_ids(reference_params(), 1.0, -0.1),
               ftl::ContractViolation);
}

class Level1Derivative : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Level1Derivative, MatchesFiniteDifferences) {
  const Level1Params p = reference_params();
  const auto [vgs, vds] = GetParam();
  const Level1Derivatives d = level1_derivatives(p, vgs, vds);
  const double h = 1e-7;
  EXPECT_NEAR(d.ids, level1_ids(p, vgs, vds), 1e-15);
  const double gm_fd = (level1_ids(p, vgs + h, vds) - level1_ids(p, vgs - h, vds)) / (2 * h);
  const double gds_fd = (level1_ids(p, vgs, vds + h) - level1_ids(p, vgs, std::max(vds - h, 0.0))) /
                        (vds - h >= 0.0 ? 2 * h : h);
  EXPECT_NEAR(d.gm, gm_fd, 1e-6 * std::max(std::fabs(gm_fd), 1e-9));
  EXPECT_NEAR(d.gds, gds_fd, 1e-5 * std::max(std::fabs(gds_fd), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, Level1Derivative,
    ::testing::Values(std::pair{2.0, 0.5}, std::pair{2.0, 3.0},
                      std::pair{1.0, 0.1}, std::pair{5.0, 5.0},
                      std::pair{0.2, 1.0},   // cutoff
                      std::pair{3.0, 2.0}));

std::vector<IvSample> synthesize_samples(const Level1Params& truth,
                                         double noise_fraction, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<IvSample> samples;
  for (double vg = 0.0; vg <= 5.0; vg += 0.25) {
    const double i = level1_ids(truth, vg, 5.0);
    samples.push_back({vg, 5.0, i * (1.0 + noise_fraction * noise(rng))});
  }
  for (double vd = 0.0; vd <= 5.0; vd += 0.25) {
    const double i = level1_ids(truth, 5.0, vd);
    samples.push_back({5.0, vd, i * (1.0 + noise_fraction * noise(rng))});
  }
  return samples;
}

struct RecoveryCase {
  double kp;
  double vth;
  double lambda;
  double noise;
};

class FitRecovery : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(FitRecovery, RecoversKnownParameters) {
  const auto c = GetParam();
  Level1Params truth;
  truth.kp = c.kp;
  truth.vth = c.vth;
  truth.lambda = c.lambda;
  truth.width = 0.7e-6;
  truth.length = 0.35e-6;
  const auto samples = synthesize_samples(truth, c.noise, 42);
  const FitResult fit =
      fit_level1(samples, initial_guess(samples, truth.width, truth.length));
  const double tol = c.noise > 0.0 ? 0.08 : 0.01;
  EXPECT_NEAR(fit.params.kp, truth.kp, tol * truth.kp);
  EXPECT_NEAR(fit.params.vth, truth.vth, 0.05 + tol);
  EXPECT_NEAR(fit.params.lambda, truth.lambda, 0.02 + tol * truth.lambda);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSets, FitRecovery,
    ::testing::Values(RecoveryCase{3e-5, 0.4, 0.03, 0.0},
                      RecoveryCase{1e-4, 1.0, 0.0, 0.0},
                      RecoveryCase{5e-6, 0.16, 0.1, 0.0},
                      RecoveryCase{2e-5, 1.4, 0.05, 0.0},
                      RecoveryCase{3e-5, 0.4, 0.03, 0.01},
                      RecoveryCase{1e-4, 0.8, 0.02, 0.02}));

TEST(Fit, EmptySampleSetThrows) {
  EXPECT_THROW(fit_level1({}, Level1Params{}), ftl::Error);
}

TEST(Fit, ReportsUnweightedRms) {
  Level1Params truth = reference_params();
  const auto samples = synthesize_samples(truth, 0.0, 1);
  const FitResult fit =
      fit_level1(samples, initial_guess(samples, truth.width, truth.length));
  EXPECT_LT(fit.rms, 1e-8);
  EXPECT_TRUE(fit.converged);
}

TEST(Fit, InitialGuessLandsNearTruth) {
  const Level1Params truth = reference_params();
  const auto samples = synthesize_samples(truth, 0.0, 2);
  const Level1Params guess = initial_guess(samples, truth.width, truth.length);
  // The sqrt regression on ideal square-law data is nearly exact (lambda
  // adds a small upward bias).
  EXPECT_NEAR(guess.vth, truth.vth, 0.3);
  EXPECT_NEAR(guess.kp, truth.kp, 0.3 * truth.kp);
}

TEST(Fit, SamplesFromCurvesStitchesBothScenarios) {
  ftl::tcad::IvCurve idvg;
  idvg.sweep_values = {0.0, 1.0};
  idvg.terminal_currents = {{1e-9, 0, 0, 0}, {2e-6, 0, 0, 0}};
  ftl::tcad::IvCurve idvd;
  idvd.sweep_values = {0.0, 5.0};
  idvd.terminal_currents = {{0.0, 0, 0, 0}, {5e-6, 0, 0, 0}};
  const auto samples = samples_from_curves(idvg, 5.0, idvd, 5.0, 0);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples[0].vds, 5.0);
  EXPECT_DOUBLE_EQ(samples[1].vgs, 1.0);
  EXPECT_DOUBLE_EQ(samples[2].vgs, 5.0);
  EXPECT_DOUBLE_EQ(samples[3].ids, 5e-6);
}

TEST(FitPipeline, ExtractsPositiveThresholdFromSquareDevice) {
  // Full §IV pipeline on a coarse mesh (kept small for test speed).
  const auto spec = ftl::tcad::make_device(ftl::tcad::DeviceShape::kSquare,
                                           ftl::tcad::GateDielectric::kHfO2);
  const ftl::tcad::NetworkSolver solver(ftl::tcad::build_mesh(spec, 24),
                                        ftl::tcad::ChargeSheetModel(spec));
  const FitResult fit = extract_from_device(
      solver, ftl::tcad::parse_bias_case("DSFF"), 0.7e-6, 0.35e-6);
  EXPECT_TRUE(fit.converged);
  EXPECT_GT(fit.params.kp, 1e-6);
  EXPECT_LT(fit.params.kp, 1e-3);
  EXPECT_GE(fit.params.vth, 0.0);  // the switch must turn off at Vgs = 0
  EXPECT_LT(fit.params.vth, 1.0);
  EXPECT_GE(fit.params.lambda, 0.0);
}

}  // namespace
