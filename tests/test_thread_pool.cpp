// Thread pool: full index coverage, exception propagation, nested calls,
// and the serial escape hatch.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "ftl/util/thread_pool.hpp"

namespace {

using namespace ftl;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  const std::size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  util::parallel_for(count, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ResultSlotsAreScheduleIndependent) {
  const std::size_t count = 257;
  std::vector<double> out(count, 0.0);
  util::parallel_for(count, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 3.0 + 1.0;
  });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 3.0 + 1.0);
  }
}

TEST(ThreadPool, SerialWhenMaxThreadsIsOne) {
  // max_threads = 1 must run inline on the caller, in index order.
  std::vector<std::size_t> order;
  util::parallel_for(
      10, [&](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesFirstException) {
  EXPECT_THROW(
      util::parallel_for(64,
                         [&](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> total{0};
  util::parallel_for(8, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, NestedCallsRunInline) {
  // A task that itself calls parallel_for must not deadlock waiting for
  // pool workers it is occupying; the inner loop runs inline.
  std::vector<std::atomic<int>> hits(64);
  util::parallel_for(8, [&](std::size_t outer) {
    util::parallel_for(8, [&](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  bool touched = false;
  util::parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolSubmit, ReturnsResultThroughFuture) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolSubmit, ManyTasksAllComplete) {
  util::ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolSubmit, ExceptionIsCapturedInFuture) {
  util::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool must still be usable afterwards.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolSubmit, NestedSubmitDoesNotDeadlock) {
  // A task that submits and waits on the same pool must not deadlock even
  // when every worker is busy: the nested submit runs inline.
  util::ThreadPool pool(2);
  std::vector<std::future<int>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back(pool.submit([&pool, i] {
      auto inner = pool.submit([i] { return i * 10; });
      return inner.get() + 1;
    }));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(outer[static_cast<std::size_t>(i)].get(), i * 10 + 1);
  }
}

TEST(ThreadPoolSubmit, NestedParallelForInsideSubmitRunsInline) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] {
    std::atomic<int> total{0};
    util::parallel_for(16, [&](std::size_t) { ++total; });
    return total.load();
  });
  EXPECT_EQ(f.get(), 16);
}

TEST(ThreadPoolSubmit, WorkerlessPoolRunsInline) {
  // threads = 1 means "the caller participates": no dedicated workers, so
  // submit degrades to inline execution with an already-ready future.
  util::ThreadPool pool(1);
  auto f = pool.submit([] { return std::string("inline"); });
  EXPECT_EQ(f.get(), "inline");
}

TEST(ThreadPoolSubmit, GlobalPoolAcceptsSubmit) {
  auto f = util::ThreadPool::global().submit([] { return 3.5; });
  EXPECT_DOUBLE_EQ(f.get(), 3.5);
}

TEST(ThreadPoolCounters, IdlePoolReportsZero) {
  util::ThreadPool pool(3);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.active_tasks(), 0u);
}

TEST(ThreadPoolCounters, QueueDepthAndActiveTasksTrackSubmits) {
  // 2 dedicated workers: block both behind a gate, then stack more tasks so
  // the backlog is observable through queue_depth().
  util::ThreadPool pool(3);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> started{0};

  std::vector<std::future<void>> futures;
  for (int i = 0; i < 2; ++i) {
    futures.push_back(pool.submit([&, open] {
      ++started;
      open.wait();
    }));
  }
  // Wait until both workers are inside a task.
  while (started.load() < 2) std::this_thread::yield();
  EXPECT_EQ(pool.active_tasks(), 2u);

  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&, open] { open.wait(); }));
  }
  EXPECT_EQ(pool.queue_depth(), 4u);

  gate.set_value();
  for (std::future<void>& f : futures) f.get();
  // Workers may still be between task() and the counter decrement for an
  // instant after the future resolves; settle before asserting zero.
  while (pool.active_tasks() != 0) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolCounters, InlineSubmitCountsAsActiveDuringExecution) {
  util::ThreadPool pool(1);  // workerless: submit runs inline
  std::size_t seen = 0;
  pool.submit([&] { seen = pool.active_tasks(); }).get();
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(pool.active_tasks(), 0u);
}

}  // namespace
