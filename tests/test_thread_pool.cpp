// Thread pool: full index coverage, exception propagation, nested calls,
// and the serial escape hatch.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "ftl/util/thread_pool.hpp"

namespace {

using namespace ftl;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  const std::size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  util::parallel_for(count, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ResultSlotsAreScheduleIndependent) {
  const std::size_t count = 257;
  std::vector<double> out(count, 0.0);
  util::parallel_for(count, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 3.0 + 1.0;
  });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 3.0 + 1.0);
  }
}

TEST(ThreadPool, SerialWhenMaxThreadsIsOne) {
  // max_threads = 1 must run inline on the caller, in index order.
  std::vector<std::size_t> order;
  util::parallel_for(
      10, [&](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PropagatesFirstException) {
  EXPECT_THROW(
      util::parallel_for(64,
                         [&](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> total{0};
  util::parallel_for(8, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, NestedCallsRunInline) {
  // A task that itself calls parallel_for must not deadlock waiting for
  // pool workers it is occupying; the inner loop runs inline.
  std::vector<std::atomic<int>> hits(64);
  util::parallel_for(8, [&](std::size_t outer) {
    util::parallel_for(8, [&](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  bool touched = false;
  util::parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

}  // namespace
