// ROBDD engine tests: canonicity, Boolean algebra, conversions against the
// truth-table layer, dual, sat counting, and BDD-based ISOP — all cross-
// checked against the (independently tested) truth-table implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ftl/logic/bdd.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::logic;

TruthTable random_table(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> bit(0, 1);
  TruthTable f(n);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) f.set(m, bit(rng) == 1);
  return f;
}

TEST(Bdd, TerminalsAndVariables) {
  BddManager mgr(3);
  EXPECT_TRUE(mgr.is_zero(mgr.zero()));
  EXPECT_TRUE(mgr.is_one(mgr.one()));
  const BddRef x1 = mgr.variable(1);
  EXPECT_FALSE(mgr.evaluate(x1, 0b000));
  EXPECT_TRUE(mgr.evaluate(x1, 0b010));
  EXPECT_THROW(mgr.variable(3), ftl::ContractViolation);
}

TEST(Bdd, CanonicityGivesPointerEquality) {
  BddManager mgr(4);
  const BddRef a = mgr.variable(0);
  const BddRef b = mgr.variable(1);
  // (a & b) | a  ==  a  must reach the same node.
  EXPECT_EQ(mgr.lor(mgr.land(a, b), a), a);
  // De Morgan: !(a & b) == !a | !b.
  EXPECT_EQ(mgr.lnot(mgr.land(a, b)), mgr.lor(mgr.lnot(a), mgr.lnot(b)));
  // Double negation.
  EXPECT_EQ(mgr.lnot(mgr.lnot(b)), b);
  // xor via two routes.
  EXPECT_EQ(mgr.lxor(a, b),
            mgr.lor(mgr.land(a, mgr.lnot(b)), mgr.land(mgr.lnot(a), b)));
}

class BddVsTruthTable : public ::testing::TestWithParam<int> {};

TEST_P(BddVsTruthTable, RoundTripAndOperators) {
  const int n = GetParam();
  BddManager mgr(n);
  const TruthTable f = random_table(n, static_cast<unsigned>(n) * 11 + 1);
  const TruthTable g = random_table(n, static_cast<unsigned>(n) * 11 + 2);
  const BddRef bf = mgr.from_truth_table(f);
  const BddRef bg = mgr.from_truth_table(g);

  EXPECT_EQ(mgr.to_truth_table(bf), f);
  EXPECT_EQ(mgr.to_truth_table(mgr.land(bf, bg)), f & g);
  EXPECT_EQ(mgr.to_truth_table(mgr.lor(bf, bg)), f | g);
  EXPECT_EQ(mgr.to_truth_table(mgr.lxor(bf, bg)), f ^ g);
  EXPECT_EQ(mgr.to_truth_table(mgr.lnot(bf)), ~f);
  // Canonicity: equal functions, equal refs.
  EXPECT_EQ(mgr.from_truth_table(f), bf);
}

TEST_P(BddVsTruthTable, CofactorDualAndCount) {
  const int n = GetParam();
  BddManager mgr(n);
  const TruthTable f = random_table(n, static_cast<unsigned>(n) * 13 + 5);
  const BddRef bf = mgr.from_truth_table(f);

  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(mgr.to_truth_table(mgr.cofactor(bf, v, false)),
              f.cofactor(v, false));
    EXPECT_EQ(mgr.to_truth_table(mgr.cofactor(bf, v, true)),
              f.cofactor(v, true));
    EXPECT_EQ(mgr.depends_on(bf, v), f.depends_on(v));
  }
  EXPECT_EQ(mgr.to_truth_table(mgr.dual(bf)), f.dual());
  EXPECT_DOUBLE_EQ(mgr.sat_count(bf), static_cast<double>(f.count_ones()));
}

TEST_P(BddVsTruthTable, IsopMatchesTruthTableIsop) {
  const int n = GetParam();
  BddManager mgr(n);
  const TruthTable f = random_table(n, static_cast<unsigned>(n) * 17 + 9);
  const BddRef bf = mgr.from_truth_table(f);
  const Sop cover = mgr.isop(bf);
  // The BDD cover must realize exactly f...
  EXPECT_EQ(TruthTable::from_sop(cover), f);
  // ...and be irredundant.
  for (int skip = 0; skip < cover.size(); ++skip) {
    Sop reduced(n);
    for (int i = 0; i < cover.size(); ++i) {
      if (i != skip) reduced.add(cover.cubes()[static_cast<std::size_t>(i)]);
    }
    EXPECT_NE(TruthTable::from_sop(reduced), f);
  }
}

INSTANTIATE_TEST_SUITE_P(VarCounts, BddVsTruthTable,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

TEST(Bdd, FromSopAgreesWithTruthTableRoute) {
  BddManager mgr(4);
  Sop sop(4);
  sop.add(Cube::from_literals({{0, true}, {2, false}}));
  sop.add(Cube::from_literals({{1, true}, {3, true}}));
  const BddRef via_sop = mgr.from_sop(sop);
  const BddRef via_tt = mgr.from_truth_table(TruthTable::from_sop(sop));
  EXPECT_EQ(via_sop, via_tt);
}

TEST(Bdd, IsopWithDontCaresStaysInInterval) {
  BddManager mgr(4);
  const TruthTable on = random_table(4, 100);
  const TruthTable dc_raw = random_table(4, 101);
  const TruthTable dc = dc_raw & ~on;
  const BddRef bon = mgr.from_truth_table(on);
  const BddRef bdc = mgr.from_truth_table(dc);
  const Sop cover = mgr.isop(bon, bdc);
  const TruthTable realized = TruthTable::from_sop(cover);
  EXPECT_TRUE(on.implies(realized));
  EXPECT_TRUE(realized.implies(on | dc));
}

TEST(Bdd, ScalesBeyondTruthTables) {
  // A 40-variable function — far beyond the 26-var truth-table ceiling:
  // a chain of ANDed XOR pairs. The BDD stays linear in size.
  const int n = 40;
  BddManager mgr(n);
  BddRef f = mgr.one();
  for (int v = 0; v + 1 < n; v += 2) {
    f = mgr.land(f, mgr.lxor(mgr.variable(v), mgr.variable(v + 1)));
  }
  EXPECT_LT(mgr.node_count(f), 150u);
  // Each of the 20 pairs halves the satisfying fraction.
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), std::pow(2.0, n - 20));
  // Spot-check evaluation: alternating bits satisfy every pair.
  std::uint64_t alternating = 0;
  for (int v = 0; v < n; v += 2) alternating |= std::uint64_t{1} << v;
  EXPECT_TRUE(mgr.evaluate(f, alternating));
  EXPECT_FALSE(mgr.evaluate(f, 0));
  // The dual of a self-complementary structure still round-trips.
  EXPECT_EQ(mgr.dual(mgr.dual(f)), f);
}

TEST(Bdd, IsopOnWideFunction) {
  // ISOP on a 30-variable function: x0 x1 + x10 x11 + x20 x21.
  const int n = 30;
  BddManager mgr(n);
  BddRef f = mgr.zero();
  for (int base : {0, 10, 20}) {
    f = mgr.lor(f, mgr.land(mgr.variable(base), mgr.variable(base + 1)));
  }
  const Sop cover = mgr.isop(f);
  EXPECT_EQ(cover.size(), 3);
  // Verify the cover reproduces f by rebuilding it.
  EXPECT_EQ(mgr.from_sop(cover), f);
}

TEST(Bdd, Xor3IsSelfDualOnBdds) {
  BddManager mgr(3);
  const BddRef f = mgr.lxor(mgr.lxor(mgr.variable(0), mgr.variable(1)),
                            mgr.variable(2));
  EXPECT_EQ(mgr.dual(f), f);
}

}  // namespace
