// ftl::library: NPN canonicalization is exact for <= 4 variables (222
// classes at 4 vars) and class-invariant for 5-6; transforms invert and
// round-trip; lattice relabeling tracks the table transform; the store
// round-trips through disk with a fewer-cells-wins policy; and
// lookup-first synthesis answers NPN-equivalent requests from the library
// with lattices that realize exactly the requested function.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <filesystem>
#include <numeric>
#include <random>
#include <vector>

#include "ftl/lattice/function.hpp"
#include "ftl/library/npn.hpp"
#include "ftl/library/precompute.hpp"
#include "ftl/library/store.hpp"
#include "ftl/library/synthesize.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/logic/truth_table.hpp"

namespace {

using namespace ftl;
using library::NpnTransform;
using logic::TruthTable;

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / ("ftl_library_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

NpnTransform random_transform(int num_vars, std::mt19937_64& rng) {
  NpnTransform t;
  t.num_vars = num_vars;
  std::vector<int> perm(static_cast<std::size_t>(num_vars));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (int j = 0; j < num_vars; ++j) {
    t.perm[static_cast<std::size_t>(j)] =
        static_cast<std::uint8_t>(perm[static_cast<std::size_t>(j)]);
  }
  t.input_negations =
      static_cast<std::uint32_t>(rng()) & ((1u << num_vars) - 1);
  t.output_negation = (rng() & 1) != 0;
  return t;
}

TruthTable random_table(int num_vars, std::mt19937_64& rng) {
  const int minterms = 1 << num_vars;
  const std::uint64_t mask =
      minterms == 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << minterms) - 1;
  return TruthTable::from_bits(num_vars, rng() & mask);
}

TEST(Npn, ClassCountsMatchTheKnownSequence) {
  // NPN classes of n-variable functions: 1, 2, 4, 14, 222 (abc's Npn4).
  EXPECT_EQ(library::npn_class_representatives(0).size(), 1u);
  EXPECT_EQ(library::npn_class_representatives(1).size(), 2u);
  EXPECT_EQ(library::npn_class_representatives(2).size(), 4u);
  EXPECT_EQ(library::npn_class_representatives(3).size(), 14u);
  EXPECT_EQ(library::npn_class_representatives(4).size(), 222u);
}

TEST(Npn, ApplyMatchesTheTruthTableReference) {
  std::mt19937_64 rng(7);
  for (int num_vars = 1; num_vars <= 6; ++num_vars) {
    for (int trial = 0; trial < 20; ++trial) {
      const TruthTable t = random_table(num_vars, rng);
      const NpnTransform tr = random_transform(num_vars, rng);
      std::vector<int> perm(tr.perm.begin(), tr.perm.begin() + num_vars);
      EXPECT_EQ(library::apply_npn(t, tr),
                t.transformed(perm, tr.input_negations, tr.output_negation));
    }
  }
}

TEST(Npn, InverseUndoesTheTransform) {
  std::mt19937_64 rng(11);
  for (int num_vars = 1; num_vars <= 6; ++num_vars) {
    for (int trial = 0; trial < 30; ++trial) {
      const TruthTable t = random_table(num_vars, rng);
      const NpnTransform tr = random_transform(num_vars, rng);
      EXPECT_EQ(
          library::apply_npn(library::apply_npn(t, tr), library::inverse(tr)),
          t);
    }
  }
}

TEST(Npn, CanonicalizeReturnsTheTransformItApplied) {
  std::mt19937_64 rng(13);
  for (int num_vars = 0; num_vars <= 6; ++num_vars) {
    for (int trial = 0; trial < 20; ++trial) {
      const TruthTable t = random_table(num_vars, rng);
      const library::NpnCanonical canon = library::canonicalize(t);
      EXPECT_EQ(library::apply_npn(t, canon.transform), canon.canonical);
      EXPECT_EQ(library::apply_npn(canon.canonical,
                                   library::inverse(canon.transform)),
                t);
    }
  }
}

TEST(Npn, CanonicalIsInvariantAcrossAll4VarClasses) {
  std::mt19937_64 rng(17);
  for (const TruthTable& rep : library::npn_class_representatives(4)) {
    // The representative is its own canonical form (it is the orbit min).
    EXPECT_EQ(library::canonicalize(rep).canonical, rep);
    for (int trial = 0; trial < 10; ++trial) {
      const NpnTransform tr = random_transform(4, rng);
      const TruthTable moved = library::apply_npn(rep, tr);
      EXPECT_EQ(library::canonicalize(moved).canonical, rep)
          << "class " << rep.to_hex();
    }
  }
}

TEST(Npn, SemiCanonicalIsInvariantFor5And6Vars) {
  std::mt19937_64 rng(19);
  for (const int num_vars : {5, 6}) {
    std::vector<TruthTable> tables;
    for (int i = 0; i < 25; ++i) tables.push_back(random_table(num_vars, rng));
    // Parity maximizes tie branching (every count balanced) — the worst
    // case for the semi-canonical search must stay invariant too.
    tables.push_back(TruthTable::from_function(num_vars, [](std::uint64_t m) {
      return (std::popcount(m) & 1) != 0;
    }));
    for (const TruthTable& t : tables) {
      const TruthTable canonical = library::canonicalize(t).canonical;
      for (int trial = 0; trial < 8; ++trial) {
        const TruthTable moved =
            library::apply_npn(t, random_transform(num_vars, rng));
        EXPECT_EQ(library::canonicalize(moved).canonical, canonical);
      }
    }
  }
}

TEST(Npn, RelabelLatticeTracksTheTableTransform) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 15; ++trial) {
    const TruthTable target = random_table(4, rng);
    const lattice::Lattice lat = lattice::altun_riedel_synthesis(target);
    NpnTransform tr = random_transform(4, rng);
    tr.output_negation = false;  // relabeling cannot express it
    const lattice::Lattice moved = library::relabel_lattice(lat, tr);
    EXPECT_TRUE(lattice::realizes(moved, library::apply_npn(target, tr)));
  }
}

TEST(Npn, KeySeparatesVariableCounts) {
  // Same word, different arity: constant-0 of 3 vs 4 vars must not collide.
  EXPECT_NE(library::npn_key(TruthTable::constant(3, false)),
            library::npn_key(TruthTable::constant(4, false)));
}

TEST(Library, PadLatticePreservesTheFunction) {
  const auto parsed = logic::parse_expression("a b + b c + a c");
  const TruthTable target = parsed.table;
  const lattice::Lattice lat = lattice::altun_riedel_synthesis(target);
  const lattice::Lattice padded =
      library::pad_lattice(lat, lat.rows() + 2, lat.cols() + 3);
  EXPECT_EQ(padded.rows(), lat.rows() + 2);
  EXPECT_EQ(padded.cols(), lat.cols() + 3);
  EXPECT_TRUE(lattice::realizes(padded, target));
}

TEST(Library, StoreRoundTripsThroughDisk) {
  const std::string dir = fresh_dir("roundtrip");
  const TruthTable target = logic::parse_expression("a b + c d").table;
  const library::NpnCanonical canon = library::canonicalize(target);
  const std::uint64_t key = library::npn_key(canon.canonical);

  {
    library::LatticeLibrary lib(dir);
    library::LibraryEntry entry;
    entry.lattice = lattice::altun_riedel_synthesis(canon.canonical);
    entry.engine = "altun";
    entry.seed = 42;
    entry.cost_ms = 1.5;
    EXPECT_TRUE(lib.insert(key, canon.canonical, false, entry));
    EXPECT_EQ(lib.num_classes(), 1u);
    EXPECT_EQ(lib.num_entries(), 1u);
  }

  library::LatticeLibrary reopened(dir);
  EXPECT_EQ(reopened.load_all(), 1u);
  const std::optional<library::LibraryEntry> entry = reopened.find(key, false);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->engine, "altun");
  EXPECT_EQ(entry->seed, 42u);
  EXPECT_TRUE(lattice::realizes(entry->lattice, canon.canonical));
  EXPECT_FALSE(reopened.find(key, true).has_value());
}

TEST(Library, CertifiedBitPersistsAndResetsOnReplacement) {
  const std::string dir = fresh_dir("certified");
  const TruthTable target = TruthTable::variable(2, 0);
  const library::NpnCanonical canon = library::canonicalize(target);
  const std::uint64_t key = library::npn_key(canon.canonical);

  {
    library::LatticeLibrary lib(dir);
    library::LibraryEntry big;
    big.lattice = library::pad_lattice(
        lattice::altun_riedel_synthesis(canon.canonical), 3, 3);
    big.engine = "altun";
    ASSERT_TRUE(lib.insert(key, canon.canonical, false, big));

    // Entries start unstamped; stamping an absent slot is a miss.
    EXPECT_FALSE(lib.find(key, false)->certified);
    EXPECT_FALSE(lib.stamp_certified(key, true, true));
    EXPECT_TRUE(lib.stamp_certified(key, false, true));
    EXPECT_TRUE(lib.find(key, false)->certified);
  }

  // The stamp survives a reopen from disk.
  library::LatticeLibrary reopened(dir);
  reopened.load_all();
  EXPECT_TRUE(reopened.find(key, false)->certified);

  // A strictly smaller replacement is a new, unproven lattice: the bit
  // resets and must be re-earned.
  library::LibraryEntry small;
  small.lattice = lattice::altun_riedel_synthesis(canon.canonical);
  small.engine = "exhaustive";
  ASSERT_TRUE(reopened.insert(key, canon.canonical, false, small));
  EXPECT_FALSE(reopened.find(key, false)->certified);
}

TEST(Library, InsertKeepsTheSmallerLattice) {
  library::LatticeLibrary lib;  // memory-only
  const TruthTable target = TruthTable::variable(2, 0);
  const library::NpnCanonical canon = library::canonicalize(target);
  const std::uint64_t key = library::npn_key(canon.canonical);

  library::LibraryEntry big;
  big.lattice = library::pad_lattice(
      lattice::altun_riedel_synthesis(canon.canonical), 3, 3);
  big.engine = "altun";
  EXPECT_TRUE(lib.insert(key, canon.canonical, false, big));

  library::LibraryEntry small;
  small.lattice = lattice::altun_riedel_synthesis(canon.canonical);
  small.engine = "exhaustive";
  ASSERT_LT(small.lattice.cell_count(), big.lattice.cell_count());
  EXPECT_TRUE(lib.insert(key, canon.canonical, false, small));
  EXPECT_FALSE(lib.insert(key, canon.canonical, false, big));  // worse again

  const auto entry = lib.find(key, false);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->engine, "exhaustive");
  EXPECT_EQ(lib.stats().populates, 1u);
  EXPECT_EQ(lib.stats().improvements, 1u);
}

TEST(Library, SynthesizeMissesThenHitsViaTheLibrary) {
  library::LatticeLibrary lib;
  const auto maj = logic::parse_expression("a b + b c + a c");
  const TruthTable& target = maj.table;

  library::SynthesisRequest request;
  request.var_names = maj.var_names;
  const library::SynthesisResult cold =
      library::synthesize(target, request, &lib);
  ASSERT_TRUE(cold.found);
  EXPECT_FALSE(cold.from_library);
  EXPECT_EQ(cold.engine, "altun");
  EXPECT_TRUE(cold.populated);
  EXPECT_TRUE(lattice::realizes(cold.lattice, target));

  // NPN relabelings of the target answer from the library. The first
  // request whose transform lands on the complement phase may still miss
  // (majority is self-complementary, and only the direct slot is filled so
  // far) — but it populates that slot, so the second pass over the same
  // functions must be hits across the board.
  std::mt19937_64 rng(29);
  std::vector<TruthTable> moved_list;
  for (int trial = 0; trial < 12; ++trial) {
    moved_list.push_back(library::apply_npn(target, random_transform(3, rng)));
  }
  std::uint64_t first_pass_hits = 0;
  for (const TruthTable& moved : moved_list) {
    const library::SynthesisResult result =
        library::synthesize(moved, {}, &lib);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(lattice::realizes(result.lattice, moved));
    if (result.from_library) ++first_pass_hits;
  }
  EXPECT_GE(first_pass_hits, 11u);  // at most one complement-slot cold miss
  for (const TruthTable& moved : moved_list) {
    const library::SynthesisResult warm =
        library::synthesize(moved, {}, &lib);
    ASSERT_TRUE(warm.found);
    EXPECT_TRUE(warm.from_library);
    EXPECT_EQ(warm.engine, "library");
    EXPECT_TRUE(lattice::realizes(warm.lattice, moved));
  }
  const library::LibraryStats stats = lib.stats();
  EXPECT_EQ(stats.class_hits, first_pass_hits + 12u);
  EXPECT_EQ(stats.unapplies, stats.class_hits + stats.verify_rejects);
  EXPECT_EQ(stats.verify_rejects, 0u);
}

TEST(Library, LookupHonorsDimensionBoundsByPadding) {
  library::LatticeLibrary lib;
  const TruthTable target =
      logic::parse_expression("a b + b c + a c").table;
  library::SynthesisRequest request;
  (void)library::synthesize(target, request, &lib);  // populate (3x3 altun)

  const auto fits = library::lookup_only(lib, target, {}, 4, 5);
  ASSERT_TRUE(fits.has_value());
  EXPECT_EQ(fits->rows(), 4);
  EXPECT_EQ(fits->cols(), 5);
  EXPECT_TRUE(lattice::realizes(*fits, target));

  // A 2x2 request cannot be served by the stored 3x3 lattice.
  EXPECT_FALSE(library::lookup_only(lib, target, {}, 2, 2).has_value());
}

TEST(Library, PrecomputeCoversEvery4VarRequest) {
  library::LatticeLibrary lib;
  library::PrecomputeOptions options;
  options.curated = false;  // 4-var-and-below classes only
  const library::PrecomputeReport report = library::precompute(lib, options);
  // Both phases of every class of 0..4 vars: 2 * (1 + 2 + 4 + 14 + 222).
  EXPECT_EQ(report.targets, 486u);
  EXPECT_EQ(report.populated, 486u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(lib.num_classes(), 243u);
  EXPECT_EQ(lib.num_entries(), 486u);

  // Every 4-var function — canonical or not — must now answer from the
  // library without touching an engine.
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const TruthTable target = random_table(4, rng);
    const library::SynthesisResult result =
        library::synthesize(target, {}, &lib);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.from_library) << target.to_hex();
    EXPECT_TRUE(lattice::realizes(result.lattice, target));
  }
  EXPECT_EQ(lib.stats().verify_rejects, 0u);
  EXPECT_EQ(lib.stats().misses, 0u);
}

TEST(Library, CuratedTargetsAreCanonicalAndDeduplicated) {
  const std::vector<TruthTable> targets = library::curated_targets(1);
  EXPECT_GE(targets.size(), 10u);
  std::vector<std::uint64_t> keys;
  for (const TruthTable& t : targets) {
    EXPECT_TRUE(t.num_vars() == 5 || t.num_vars() == 6);
    EXPECT_EQ(library::canonicalize(t).canonical, t);
    keys.push_back(library::npn_key(t));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

}  // namespace
