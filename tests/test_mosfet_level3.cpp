// Level-3 model tests: equations, limits, the SPICE device, and parameter
// recovery through the level-3 fitting path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ftl/fit/extract.hpp"
#include "ftl/fit/mosfet_level3.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/spice/mosfet3.hpp"
#include "ftl/spice/sources.hpp"

namespace {

using namespace ftl::fit;

Level3Params base_params() {
  Level3Params p;
  p.kp = 1e-4;
  p.vth = 0.5;
  p.lambda = 0.02;
  p.theta = 0.2;
  p.vc = 3.0;
  p.width = 1e-6;
  p.length = 1e-6;
  return p;
}

TEST(Level3, CutoffIsZero) {
  const Level3Params p = base_params();
  EXPECT_DOUBLE_EQ(level3_ids(p, 0.4, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(level3_ids(p, 0.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(level3_vdsat(p, 0.3), 0.0);
}

TEST(Level3, DegeneratesToLevel1) {
  // theta = 0, vc -> infinity and lambda = 0 recovers the level-1 square
  // law exactly. (With lambda != 0 the two saturation CLM factorizations
  // differ at O(lambda^2 Vov Vds) by design — level-1 applies
  // (1 + lambda Vds) to the Vdsat current directly, level-3 compounds
  // (1 + lambda Vdsat)(1 + lambda (Vds - Vdsat)).)
  Level3Params p3 = base_params();
  p3.theta = 0.0;
  p3.vc = 1e12;
  p3.lambda = 0.0;
  Level1Params p1;
  p1.kp = p3.kp;
  p1.vth = p3.vth;
  p1.lambda = 0.0;
  p1.width = p3.width;
  p1.length = p3.length;
  for (double vgs = 0.0; vgs <= 5.0; vgs += 0.5) {
    for (double vds = 0.0; vds <= 5.0; vds += 0.5) {
      EXPECT_NEAR(level3_ids(p3, vgs, vds), level1_ids(p1, vgs, vds),
                  1e-9 * std::max(level1_ids(p1, vgs, vds), 1e-9))
          << vgs << "," << vds;
    }
  }
  // And with lambda on, the discrepancy stays at the documented O(lambda^2).
  p3.lambda = 0.02;
  p1.lambda = 0.02;
  for (double vds = 0.0; vds <= 5.0; vds += 1.0) {
    const double i3 = level3_ids(p3, 2.0, vds);
    const double i1 = level1_ids(p1, 2.0, vds);
    EXPECT_NEAR(i3, i1, 0.02 * 0.02 * 2.0 * 5.0 * std::max(i1, 1e-12));
  }
}

TEST(Level3, VdsatBelowOverdrive) {
  const Level3Params p = base_params();
  for (double vgs = 1.0; vgs <= 5.0; vgs += 0.5) {
    const double vov = vgs - p.vth;
    const double vdsat = level3_vdsat(p, vgs);
    EXPECT_GT(vdsat, 0.0);
    EXPECT_LT(vdsat, vov);  // velocity saturation pulls Vdsat in
  }
}

TEST(Level3, ContinuousAtVdsat) {
  const Level3Params p = base_params();
  for (double vgs = 1.0; vgs <= 5.0; vgs += 1.0) {
    const double vdsat = level3_vdsat(p, vgs);
    const double below = level3_ids(p, vgs, vdsat * (1.0 - 1e-9));
    const double above = level3_ids(p, vgs, vdsat * (1.0 + 1e-9));
    EXPECT_NEAR(below, above, 1e-6 * below);
  }
}

TEST(Level3, MobilityDegradationReducesCurrent) {
  Level3Params lo = base_params();
  Level3Params hi = base_params();
  hi.theta = 1.0;
  EXPECT_LT(level3_ids(hi, 5.0, 5.0), level3_ids(lo, 5.0, 5.0));
}

TEST(Level3, VelocitySaturationReducesCurrent) {
  Level3Params fast = base_params();
  fast.vc = 100.0;
  Level3Params slow = base_params();
  slow.vc = 1.0;
  EXPECT_LT(level3_ids(slow, 5.0, 5.0), level3_ids(fast, 5.0, 5.0));
}

TEST(Level3, MonotoneInBias) {
  const Level3Params p = base_params();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 5.0; vgs += 0.25) {
    const double i = level3_ids(p, vgs, 5.0);
    EXPECT_GE(i, prev);
    prev = i;
  }
  prev = -1.0;
  for (double vds = 0.0; vds <= 5.0; vds += 0.25) {
    const double i = level3_ids(p, 5.0, vds);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(Level3, DerivativesArePhysical) {
  const Level3Params p = base_params();
  for (double vgs : {1.0, 2.0, 5.0}) {
    for (double vds : {0.2, 1.0, 4.0}) {
      const Level3Derivatives d = level3_derivatives(p, vgs, vds);
      EXPECT_GE(d.gm, 0.0);
      EXPECT_GE(d.gds, 0.0);
      EXPECT_NEAR(d.ids, level3_ids(p, vgs, vds), 1e-15);
    }
  }
}

TEST(Mosfet3Device, OperatingPointMatchesEquation) {
  using namespace ftl::spice;
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VD", c.node("d"), Circuit::kGround,
                                        Waveform::dc(3.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(2.0)));
  auto& m = static_cast<Mosfet3&>(c.add(std::make_unique<Mosfet3>(
      "M1", c.node("d"), c.node("g"), Circuit::kGround, Circuit::kGround,
      base_params())));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(m.drain_current(op.solution),
              level3_ids(base_params(), 2.0, 3.0), 1e-12);
}

TEST(Mosfet3Device, ResistorLoadCircuitSolves) {
  using namespace ftl::spice;
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(3.0)));
  c.add(std::make_unique<Resistor>("RD", c.node("vdd"), c.node("d"), 10000.0));
  c.add(std::make_unique<Mosfet3>("M1", c.node("d"), c.node("g"),
                                  Circuit::kGround, Circuit::kGround,
                                  base_params()));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  // KCL at the drain must balance to numerical tolerance.
  const double vd = op.solution[static_cast<std::size_t>(c.find_node("d"))];
  const double i_r = (5.0 - vd) / 10000.0;
  EXPECT_NEAR(i_r, level3_ids(base_params(), 3.0, vd), 1e-7);
}

TEST(Fit3, RecoversSyntheticLevel3Parameters) {
  const Level3Params truth = base_params();
  std::vector<IvSample> samples;
  for (double vg = 0.0; vg <= 5.0; vg += 0.25) {
    samples.push_back({vg, 5.0, level3_ids(truth, vg, 5.0)});
  }
  for (double vd = 0.0; vd <= 5.0; vd += 0.25) {
    samples.push_back({5.0, vd, level3_ids(truth, 5.0, vd)});
  }
  Level1Params seed;
  seed.kp = 5e-5;
  seed.vth = 0.3;
  seed.width = truth.width;
  seed.length = truth.length;
  const Fit3Result fit = fit_level3(samples, seed);
  EXPECT_LT(fit.rms, 0.02 * level3_ids(truth, 5.0, 5.0));
  EXPECT_NEAR(fit.params.vth, truth.vth, 0.15);
  EXPECT_NEAR(fit.params.kp, truth.kp, 0.3 * truth.kp);
}

TEST(Fit3, BeatsLevel1OnDegradedData) {
  // Data with strong mobility degradation: the extra parameters must help.
  Level3Params truth = base_params();
  truth.theta = 0.6;
  std::vector<IvSample> samples;
  for (double vg = 0.0; vg <= 5.0; vg += 0.2) {
    samples.push_back({vg, 5.0, level3_ids(truth, vg, 5.0)});
  }
  for (double vd = 0.0; vd <= 5.0; vd += 0.2) {
    samples.push_back({5.0, vd, level3_ids(truth, 5.0, vd)});
  }
  Level1Params seed = initial_guess(samples, truth.width, truth.length);
  const FitResult l1 = fit_level1(samples, seed);
  const Fit3Result l3 = fit_level3(samples, seed);
  EXPECT_LT(l3.rms, 0.5 * l1.rms);
}

}  // namespace
