// Lattice model and connectivity tests: cell semantics, top-bottom
// connectivity, and the monotonicity property of the switching model.
#include <gtest/gtest.h>

#include <random>

#include "ftl/lattice/connectivity.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::lattice::CellValue;
using ftl::lattice::connectivity_lut;
using ftl::lattice::Lattice;
using ftl::lattice::top_bottom_connected;
using ftl::lattice::top_bottom_connected_bits;

TEST(CellValue, Semantics) {
  EXPECT_FALSE(CellValue::zero().evaluate(0b111));
  EXPECT_TRUE(CellValue::one().evaluate(0));
  EXPECT_TRUE(CellValue::of(1).evaluate(0b010));
  EXPECT_FALSE(CellValue::of(1).evaluate(0b101));
  EXPECT_TRUE(CellValue::of(1, false).evaluate(0b101));
  EXPECT_EQ(CellValue::of(0, false).to_string({"a"}), "a'");
  EXPECT_EQ(CellValue::one().to_string(), "1");
}

TEST(Lattice, ConstructionAndDefaultNames) {
  Lattice lat(2, 3, 2);
  EXPECT_EQ(lat.rows(), 2);
  EXPECT_EQ(lat.cols(), 3);
  EXPECT_EQ(lat.cell_count(), 6);
  EXPECT_EQ(lat.var_names()[1], "x1");
  EXPECT_EQ(lat.at(0, 0).kind, CellValue::Kind::kConst0);
}

TEST(Lattice, SetRejectsOutOfRange) {
  Lattice lat(2, 2, 1);
  EXPECT_THROW(lat.set(2, 0, CellValue::one()), ftl::ContractViolation);
  EXPECT_THROW(lat.set(0, 0, CellValue::of(3)), ftl::ContractViolation);
}

TEST(Lattice, EvaluateSingleColumn) {
  // 2x1 lattice [a; b]: f = a AND b.
  Lattice lat(2, 1, 2, {"a", "b"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(1, 0, CellValue::of(1));
  EXPECT_FALSE(lat.evaluate(0b00));
  EXPECT_FALSE(lat.evaluate(0b01));
  EXPECT_FALSE(lat.evaluate(0b10));
  EXPECT_TRUE(lat.evaluate(0b11));
}

TEST(Lattice, EvaluateSingleRow) {
  // 1x2 lattice [a b]: each cell touches both plates: f = a OR b.
  Lattice lat(1, 2, 2, {"a", "b"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(0, 1, CellValue::of(1));
  EXPECT_FALSE(lat.evaluate(0b00));
  EXPECT_TRUE(lat.evaluate(0b01));
  EXPECT_TRUE(lat.evaluate(0b10));
  EXPECT_TRUE(lat.evaluate(0b11));
}

TEST(Connectivity, StraightColumn) {
  // 3x3, only middle column ON.
  std::vector<bool> s(9, false);
  s[1] = s[4] = s[7] = true;
  EXPECT_TRUE(top_bottom_connected(s, 3, 3));
  s[4] = false;  // break the column
  EXPECT_FALSE(top_bottom_connected(s, 3, 3));
}

TEST(Connectivity, SnakePath) {
  // Fig. 2c's x1 x4 x5 x6 x9 path: (0,0),(1,0),(1,1),(1,2),(2,2).
  std::vector<bool> s(9, false);
  s[0] = s[3] = s[4] = s[5] = s[8] = true;
  EXPECT_TRUE(top_bottom_connected(s, 3, 3));
}

TEST(Connectivity, DiagonalDoesNotConduct) {
  // Diagonal adjacency is not connectivity in a 4-neighbour lattice.
  std::vector<bool> s(4, false);
  s[0] = s[3] = true;  // (0,0) and (1,1)
  EXPECT_FALSE(top_bottom_connected(s, 2, 2));
}

TEST(Connectivity, AllOffAndAllOn) {
  EXPECT_FALSE(top_bottom_connected(std::vector<bool>(12, false), 3, 4));
  EXPECT_TRUE(top_bottom_connected(std::vector<bool>(12, true), 3, 4));
}

TEST(Connectivity, BitsVariantAgreesWithVectorVariant) {
  std::mt19937 rng(17);
  std::uniform_int_distribution<std::uint64_t> dist(0, (1u << 12) - 1);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t pattern = dist(rng);
    std::vector<bool> s(12);
    for (int i = 0; i < 12; ++i) s[static_cast<std::size_t>(i)] = ((pattern >> i) & 1) != 0;
    EXPECT_EQ(top_bottom_connected(s, 3, 4),
              top_bottom_connected_bits(pattern, 3, 4))
        << pattern;
  }
}

TEST(Connectivity, LutMatchesDirectEvaluation) {
  const auto lut = connectivity_lut(2, 3);
  ASSERT_EQ(lut.size(), 64u);
  for (std::uint64_t p = 0; p < 64; ++p) {
    EXPECT_EQ(lut[static_cast<std::size_t>(p)], top_bottom_connected_bits(p, 2, 3)) << p;
  }
}

TEST(Connectivity, MonotoneInSwitchStates) {
  // Turning ON one more switch can never disconnect the plates.
  std::mt19937 rng(23);
  std::uniform_int_distribution<std::uint64_t> dist(0, (1u << 12) - 1);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t p = dist(rng);
    if (!top_bottom_connected_bits(p, 4, 3)) continue;
    for (int extra = 0; extra < 12; ++extra) {
      EXPECT_TRUE(top_bottom_connected_bits(p | (std::uint64_t{1} << extra), 4, 3));
    }
  }
}

TEST(Connectivity, ContractViolations) {
  EXPECT_THROW(top_bottom_connected(std::vector<bool>(5, true), 2, 3),
               ftl::ContractViolation);
  EXPECT_THROW(connectivity_lut(5, 5), ftl::ContractViolation);
}

TEST(Lattice, ToStringShowsGrid) {
  Lattice lat(2, 2, 2, {"a", "b"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(0, 1, CellValue::of(1));
  lat.set(1, 0, CellValue::of(1, false));
  lat.set(1, 1, CellValue::one());
  const std::string s = lat.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("b'"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

}  // namespace
