// Transient analysis tests: RC networks against closed-form solutions,
// integrator accuracy ordering, source waveforms, and measurements.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ftl/spice/devices.hpp"
#include "ftl/spice/measure.hpp"
#include "ftl/spice/mosfet.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::spice;

TEST(Waveforms, DcIsConstant) {
  const Waveform w = Waveform::dc(3.3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.value(1e-3), 3.3);
}

TEST(Waveforms, PulseShape) {
  const Waveform w = Waveform::pulse(0.0, 1.2, 10e-9, 2e-9, 4e-9, 20e-9, 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);          // before delay
  EXPECT_DOUBLE_EQ(w.value(10e-9), 0.0);        // at delay, rise starts
  EXPECT_NEAR(w.value(11e-9), 0.6, 1e-12);      // mid-rise
  EXPECT_DOUBLE_EQ(w.value(12e-9), 1.2);        // top
  EXPECT_DOUBLE_EQ(w.value(30e-9), 1.2);        // still on (width 20n)
  EXPECT_NEAR(w.value(34e-9), 0.6, 1e-12);      // mid-fall
  EXPECT_DOUBLE_EQ(w.value(40e-9), 0.0);        // back low
}

TEST(Waveforms, PulsePeriodRepeats) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 3e-9, 10e-9);
  EXPECT_DOUBLE_EQ(w.value(2e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.value(12e-9), 1.0);   // one period later
  EXPECT_DOUBLE_EQ(w.value(8e-9), 0.0);
  EXPECT_DOUBLE_EQ(w.value(18e-9), 0.0);
}

TEST(Waveforms, PwlInterpolatesAndClamps) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(9.0), 2.0);
  EXPECT_THROW(Waveform::pwl({{1.0, 0.0}, {0.5, 1.0}}), ftl::ContractViolation);
}

TEST(Waveforms, SinShape) {
  const Waveform w = Waveform::sin(1.0, 0.5, 1e6);
  EXPECT_NEAR(w.value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(w.value(0.25e-6), 1.5, 1e-9);  // quarter period: peak
  EXPECT_NEAR(w.value(0.75e-6), 0.5, 1e-9);
}

TEST(Waveforms, ComplementIsExactForAllKinds) {
  const double vdd = 1.2;
  const std::vector<Waveform> waves = {
      Waveform::dc(0.3),
      Waveform::pulse(0.0, 1.2, 5e-9, 1e-9, 2e-9, 10e-9, 40e-9),
      Waveform::pwl({{0.0, 0.0}, {1e-9, 1.2}, {5e-9, 0.6}}),
      Waveform::sin(0.6, 0.4, 1e7, 1e-9, 1e5),
  };
  for (const Waveform& w : waves) {
    const Waveform comp = w.complemented(vdd);
    for (double t = 0.0; t <= 50e-9; t += 0.5e-9) {
      EXPECT_NEAR(w.value(t) + comp.value(t), vdd, 1e-12) << t;
    }
  }
}

Circuit rc_circuit(double r, double cap, double vstep) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>(
      "V1", c.node("in"), Circuit::kGround,
      Waveform::pulse(0.0, vstep, 0.0, 1e-15, 1e-15, 1.0, 0.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("in"), c.node("out"), r));
  c.add(std::make_unique<Capacitor>("C1", c.node("out"), Circuit::kGround, cap));
  return c;
}

struct IntegratorCase {
  Integrator method;
  double expected_error;  // tolerated max deviation from the exponential
};

class RcCharging : public ::testing::TestWithParam<IntegratorCase> {};

TEST_P(RcCharging, MatchesClosedForm) {
  const auto p = GetParam();
  const double r = 1000.0;
  const double cap = 1e-9;  // tau = 1 us
  Circuit c = rc_circuit(r, cap, 1.0);
  TransientOptions options;
  options.tstop = 5e-6;
  options.dt = 2e-8;  // tau / 50
  options.integrator = p.method;
  options.record_nodes = {"out"};
  const TransientResult result = transient(c, options);
  const auto& t = result.time();
  const auto& v = result.signal("out");
  double max_err = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double expected = 1.0 - std::exp(-t[i] / (r * cap));
    max_err = std::max(max_err, std::fabs(v[i] - expected));
  }
  EXPECT_LT(max_err, p.expected_error);
}

INSTANTIATE_TEST_SUITE_P(
    Integrators, RcCharging,
    ::testing::Values(IntegratorCase{Integrator::kBackwardEuler, 6e-3},
                      IntegratorCase{Integrator::kTrapezoidal, 5e-4}));

TEST(Transient, TrapezoidalBeatsBackwardEuler) {
  const double r = 1000.0;
  const double cap = 1e-9;
  const auto max_error = [&](Integrator method) {
    Circuit c = rc_circuit(r, cap, 1.0);
    TransientOptions options;
    options.tstop = 3e-6;
    options.dt = 5e-8;
    options.integrator = method;
    options.record_nodes = {"out"};
    const TransientResult result = transient(c, options);
    double err = 0.0;
    for (std::size_t i = 0; i < result.time().size(); ++i) {
      const double expected = 1.0 - std::exp(-result.time()[i] / (r * cap));
      err = std::max(err, std::fabs(result.signal("out")[i] - expected));
    }
    return err;
  };
  EXPECT_LT(max_error(Integrator::kTrapezoidal),
            0.2 * max_error(Integrator::kBackwardEuler));
}

TEST(Transient, InitialConditionFromDcOperatingPoint) {
  // The source starts at 1 V DC (pulse v1=1): the cap must start charged,
  // so the waveform is flat.
  Circuit c;
  c.add(std::make_unique<VoltageSource>(
      "V1", c.node("in"), Circuit::kGround,
      Waveform::pulse(1.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("in"), c.node("out"), 1000.0));
  c.add(std::make_unique<Capacitor>("C1", c.node("out"), Circuit::kGround, 1e-9));
  TransientOptions options;
  options.tstop = 1e-6;
  options.dt = 1e-8;
  options.record_nodes = {"out"};
  const TransientResult result = transient(c, options);
  for (double v : result.signal("out")) EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(Transient, RecordsSourceCurrent) {
  Circuit c = rc_circuit(1000.0, 1e-9, 1.0);
  TransientOptions options;
  options.tstop = 2e-6;
  options.dt = 2e-8;
  options.record_nodes = {"out"};
  options.record_source_currents = {"V1"};
  const TransientResult result = transient(c, options);
  ASSERT_TRUE(result.has_signal("I(V1)"));
  // Charging current starts near -1 mA (into the RC) and decays as
  // -exp(-t/tau); at tstop = 2 tau that is -135 uA.
  const auto& i = result.signal("I(V1)");
  EXPECT_NEAR(i[1], -1e-3, 1.5e-4);
  EXPECT_NEAR(i.back(), -1e-3 * std::exp(-2.0), 5e-6);
}

TEST(Transient, MosfetInverterSwitches) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>(
      "VIN", c.node("in"), Circuit::kGround,
      Waveform::pulse(0.0, 5.0, 1e-7, 1e-9, 1e-9, 1e-7, 0.0)));
  c.add(std::make_unique<Resistor>("RD", c.node("vdd"), c.node("out"), 10000.0));
  c.add(std::make_unique<Capacitor>("CL", c.node("out"), Circuit::kGround, 1e-12));
  ftl::fit::Level1Params params;
  params.kp = 1e-4;
  params.vth = 1.0;
  c.add(std::make_unique<Mosfet>("M1", c.node("out"), c.node("in"),
                                 Circuit::kGround, Circuit::kGround, params));
  TransientOptions options;
  options.tstop = 3e-7;
  options.dt = 1e-9;
  options.record_nodes = {"out"};
  const TransientResult result = transient(c, options);
  const auto& t = result.time();
  const auto& out = result.signal("out");
  // High before the input step; after it, the ON level is the hand-solved
  // triode point 5 - sqrt(15) ≈ 1.127 V (weak 10k pull-down).
  const double v_on = 5.0 - std::sqrt(15.0);
  EXPECT_NEAR(ftl::spice::settled_value(t, out, 0.5e-7, 0.9e-7), 5.0, 0.01);
  EXPECT_NEAR(ftl::spice::settled_value(t, out, 1.8e-7, 2.0e-7), v_on, 0.02);
  const auto fall = fall_time(t, out, v_on, 5.0);
  ASSERT_TRUE(fall.has_value());
  EXPECT_GT(*fall, 0.0);
  EXPECT_LT(*fall, 1e-7);
}

TEST(Transient, RequiresPositiveTimes) {
  Circuit c = rc_circuit(1.0, 1e-9, 1.0);
  TransientOptions options;
  EXPECT_THROW(transient(c, options), ftl::ContractViolation);
}

TEST(Measure, RiseFallOnSyntheticRamp) {
  // 0->1 ramp between t=1 and t=2, then 1->0 between t=3 and t=4.
  ftl::linalg::Vector t{0, 1, 2, 3, 4, 5};
  ftl::linalg::Vector v{0, 0, 1, 1, 0, 0};
  const auto rise = rise_time(t, v, 0.0, 1.0);
  ASSERT_TRUE(rise.has_value());
  EXPECT_NEAR(*rise, 0.8, 1e-9);  // 10% to 90% of a unit ramp
  const auto fall = fall_time(t, v, 0.0, 1.0);
  ASSERT_TRUE(fall.has_value());
  EXPECT_NEAR(*fall, 0.8, 1e-9);
  EXPECT_FALSE(rise_time(t, v, 0.0, 1.0, 4.5).has_value());
}

TEST(Measure, SettledValueAverages) {
  ftl::linalg::Vector t{0, 1, 2, 3};
  ftl::linalg::Vector v{0, 2, 2, 2};
  EXPECT_NEAR(settled_value(t, v, 1.0, 3.0), 2.0, 1e-12);
  EXPECT_NEAR(settled_value(t, v, 0.0, 1.0), 1.0, 1e-12);  // ramp average
  EXPECT_THROW(settled_value(t, v, 5.0, 6.0), ftl::ContractViolation);
}

TEST(Measure, CrossingTime) {
  ftl::linalg::Vector t{0, 1, 2};
  ftl::linalg::Vector v{0, 1, 0};
  const auto up = crossing_time(t, v, 0.5, true);
  ASSERT_TRUE(up.has_value());
  EXPECT_NEAR(*up, 0.5, 1e-12);
  const auto down = crossing_time(t, v, 0.5, false, 1.0);
  ASSERT_TRUE(down.has_value());
  EXPECT_NEAR(*down, 1.5, 1e-12);
}

}  // namespace
