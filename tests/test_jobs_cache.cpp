// Content-addressed result cache: artifact serialization round trips
// bit-exactly, identical keys hit with identical bytes, perturbed parameter
// or dependency digests miss, and an upstream recompute that reproduces the
// same bytes keeps every downstream job a cache hit.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "ftl/jobs/artifact.hpp"
#include "ftl/jobs/cache.hpp"
#include "ftl/jobs/digest.hpp"
#include "ftl/jobs/graph.hpp"
#include "ftl/jobs/scheduler.hpp"
#include "ftl/jobs/telemetry.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / ("ftl_jobs_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

jobs::Artifact sample_artifact() {
  jobs::Artifact a;
  a.set_columns({"v", "i"});
  a.add_row({0.1, 1.0 / 3.0});
  a.add_row({0.2, 6.02214076e23});
  a.add_row({-5.5, -1.7e-308});
  a.scalars["vth"] = 0.123456789012345678;
  a.notes["device"] = "square HfO2";
  return a;
}

TEST(Digest, IsOrderAndTypeSensitive) {
  jobs::Digest a;
  a.str("ab");
  jobs::Digest b;
  b.str("a");
  b.str("b");
  // Length-prefixed hashing: "ab" != "a" + "b".
  EXPECT_NE(a.value(), b.value());
  jobs::Digest c;
  c.f64(1.0);
  jobs::Digest d;
  d.f64(-1.0);
  EXPECT_NE(c.value(), d.value());
  EXPECT_EQ(jobs::digest_hex(0).size(), 16u);
}

TEST(Artifact, SerializationRoundTripsBitExactly) {
  const jobs::Artifact a = sample_artifact();
  const jobs::Artifact b = jobs::Artifact::deserialize(a.serialize());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.content_digest(), b.content_digest());
}

TEST(Artifact, RejectsMalformedInput) {
  EXPECT_THROW(jobs::Artifact::deserialize("not an artifact"), ftl::Error);
  jobs::Artifact a;
  a.set_columns({"x"});
  EXPECT_THROW(a.add_row({1.0, 2.0}), ftl::Error);  // width mismatch
  EXPECT_THROW(a.scalar("absent"), ftl::Error);
}

TEST(CacheKey, SensitiveToEveryComponent) {
  const std::uint64_t base = jobs::cache_key("job", 1, {10, 20});
  EXPECT_NE(base, jobs::cache_key("other", 1, {10, 20}));   // name
  EXPECT_NE(base, jobs::cache_key("job", 2, {10, 20}));     // params
  EXPECT_NE(base, jobs::cache_key("job", 1, {20, 10}));     // dep order
  EXPECT_NE(base, jobs::cache_key("job", 1, {10}));         // dep count
  EXPECT_EQ(base, jobs::cache_key("job", 1, {10, 20}));     // deterministic
}

TEST(ResultCache, StoreThenLoadIsBitIdentical) {
  jobs::ResultCache cache(fresh_dir("roundtrip"));
  const jobs::Artifact a = sample_artifact();
  const std::uint64_t key = jobs::cache_key("j", 7, {});
  EXPECT_FALSE(cache.load("j", key).has_value());
  cache.store("j", key, a);
  const std::optional<jobs::Artifact> hit = cache.load("j", key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->serialize(), a.serialize());
  // A different key does not alias onto the same entry.
  EXPECT_FALSE(cache.load("j", key + 1).has_value());
}

TEST(ResultCache, CorruptEntryIsAMiss) {
  jobs::ResultCache cache(fresh_dir("corrupt"));
  const std::uint64_t key = jobs::cache_key("j", 1, {});
  cache.store("j", key, sample_artifact());
  {
    std::ofstream out(cache.path_for("j", key), std::ios::trunc);
    out << "garbage bytes\n";
  }
  EXPECT_FALSE(cache.load("j", key).has_value());
}

// ---- scheduler-level cache behavior ---------------------------------------

struct CountingGraph {
  jobs::JobGraph graph;
  std::shared_ptr<int> src_runs = std::make_shared<int>(0);
  std::shared_ptr<int> sink_runs = std::make_shared<int>(0);
};

/// src -> sink, where src's output bytes and both jobs' param digests are
/// injectable. `src_value` flows into src's artifact; `src_param` models a
/// calibration constant folded into src's parameter digest.
CountingGraph make_counting_graph(double src_value, std::uint64_t src_param) {
  CountingGraph cg;
  jobs::JobDesc src;
  src.name = "src";
  src.param_digest = src_param;
  auto src_runs = cg.src_runs;
  src.fn = [src_value, src_runs](jobs::JobContext&) {
    ++*src_runs;
    jobs::Artifact a;
    a.scalars["x"] = src_value;
    return a;
  };
  const jobs::JobId src_id = cg.graph.add(std::move(src));

  jobs::JobDesc sink;
  sink.name = "sink";
  sink.param_digest = 99;
  sink.deps = {src_id};
  auto sink_runs = cg.sink_runs;
  sink.fn = [sink_runs](jobs::JobContext& ctx) {
    ++*sink_runs;
    jobs::Artifact a;
    a.scalars["doubled"] = 2.0 * ctx.input(0).scalar("x");
    return a;
  };
  cg.graph.add(std::move(sink));
  return cg;
}

TEST(SchedulerCache, SecondRunHitsWithBitIdenticalArtifacts) {
  const std::string dir = fresh_dir("warm");
  jobs::RunOptions options;
  options.cache_dir = dir;

  const CountingGraph cold = make_counting_graph(1.5, 42);
  const jobs::RunResult r1 = jobs::run_graph(cold.graph, options);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*cold.src_runs, 1);
  EXPECT_EQ(r1.cache_hits, 0);

  const CountingGraph warm = make_counting_graph(1.5, 42);
  jobs::CaptureSink sink;
  options.sink = &sink;
  const jobs::RunResult r2 = jobs::run_graph(warm.graph, options);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*warm.src_runs, 0);
  EXPECT_EQ(*warm.sink_runs, 0);
  EXPECT_EQ(r2.cache_hits, 2);
  EXPECT_EQ(sink.count("cache_hit"), 2);
  EXPECT_EQ(sink.count("job_start"), 0);
  for (std::size_t i = 0; i < r1.reports.size(); ++i) {
    EXPECT_EQ(r1.reports[i].artifact->serialize(),
              r2.reports[i].artifact->serialize());
  }
}

TEST(SchedulerCache, PerturbedParamDigestMissesAndRecomputes) {
  const std::string dir = fresh_dir("perturb_param");
  jobs::RunOptions options;
  options.cache_dir = dir;
  const CountingGraph first = make_counting_graph(1.5, 42);
  ASSERT_TRUE(jobs::run_graph(first.graph, options).ok());

  // Same output value, different parameter digest (a touched calibration
  // constant): src must recompute. Its artifact bytes come out identical,
  // so the downstream job still hits — content addressing at work.
  const CountingGraph touched = make_counting_graph(1.5, 43);
  jobs::CaptureSink sink;
  options.sink = &sink;
  const jobs::RunResult r = jobs::run_graph(touched.graph, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*touched.src_runs, 1);
  EXPECT_EQ(*touched.sink_runs, 0);
  EXPECT_EQ(r.cache_hits, 1);
  EXPECT_EQ(sink.count("cache_hit"), 1);
}

TEST(SchedulerCache, ChangedDependencyBytesInvalidateDownstream) {
  const std::string dir = fresh_dir("perturb_dep");
  jobs::RunOptions options;
  options.cache_dir = dir;
  const CountingGraph first = make_counting_graph(1.5, 42);
  ASSERT_TRUE(jobs::run_graph(first.graph, options).ok());

  // src's parameters AND bytes change: both jobs recompute (sink's key
  // folds in src's content digest).
  const CountingGraph changed = make_counting_graph(2.5, 43);
  const jobs::RunResult r = jobs::run_graph(changed.graph, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*changed.src_runs, 1);
  EXPECT_EQ(*changed.sink_runs, 1);
  EXPECT_EQ(r.cache_hits, 0);
  EXPECT_DOUBLE_EQ(r.reports.back().artifact->scalar("doubled"), 5.0);
}

TEST(SchedulerCache, UseCacheFalseForcesColdRun) {
  const std::string dir = fresh_dir("nocache");
  jobs::RunOptions options;
  options.cache_dir = dir;
  const CountingGraph first = make_counting_graph(1.0, 1);
  ASSERT_TRUE(jobs::run_graph(first.graph, options).ok());

  options.use_cache = false;
  const CountingGraph again = make_counting_graph(1.0, 1);
  const jobs::RunResult r = jobs::run_graph(again.graph, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*again.src_runs, 1);
  EXPECT_EQ(*again.sink_runs, 1);
  EXPECT_EQ(r.cache_hits, 0);
}

TEST(SchedulerCache, NonCacheableJobAlwaysRecomputes) {
  const std::string dir = fresh_dir("noncacheable");
  const auto build = [](std::shared_ptr<int> runs) {
    jobs::JobGraph g;
    jobs::JobDesc d;
    d.name = "report";
    d.cacheable = false;
    d.fn = [runs](jobs::JobContext&) {
      ++*runs;
      return jobs::Artifact{};
    };
    g.add(std::move(d));
    return g;
  };
  jobs::RunOptions options;
  options.cache_dir = dir;
  auto runs = std::make_shared<int>(0);
  ASSERT_TRUE(jobs::run_graph(build(runs), options).ok());
  ASSERT_TRUE(jobs::run_graph(build(runs), options).ok());
  EXPECT_EQ(*runs, 2);
}

}  // namespace
