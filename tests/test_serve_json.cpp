// serve/json: strict parsing, positioned errors, canonical dumps, and the
// round-trip guarantees the protocol relies on.
#include <gtest/gtest.h>

#include <string>

#include "ftl/serve/json.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::serve::JsonValue;
using ftl::serve::json_quote;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1.25e2").as_number(), 125.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, Containers) {
  const JsonValue v = JsonValue::parse(R"({"a":[1,2,3],"b":{"c":true}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.0);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->find("c")->as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  // BMP escape, and a surrogate pair (U+1F600).
  EXPECT_EQ(JsonValue::parse(R"("\u00e9")").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), ftl::Error);
  EXPECT_THROW(JsonValue::parse("{"), ftl::Error);
  EXPECT_THROW(JsonValue::parse("[1,]"), ftl::Error);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), ftl::Error);
  EXPECT_THROW(JsonValue::parse("{'a':1}"), ftl::Error);
  EXPECT_THROW(JsonValue::parse("nul"), ftl::Error);
  EXPECT_THROW(JsonValue::parse("01"), ftl::Error);
  EXPECT_THROW(JsonValue::parse("1 2"), ftl::Error);  // trailing garbage
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ftl::Error);
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\""), ftl::Error);  // lone surrogate
  EXPECT_THROW(JsonValue::parse("\"\x01\""), ftl::Error);  // raw control char
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  try {
    JsonValue::parse("{\"a\": nope}");
    FAIL() << "should have thrown";
  } catch (const ftl::Error& e) {
    EXPECT_NE(std::string(e.what()).find("at byte 6"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParse, DepthLimitStopsRecursion) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  for (int i = 0; i < 80; ++i) deep += ']';
  EXPECT_THROW(JsonValue::parse(deep), ftl::Error);
  // 32 levels is comfortably inside the 64-level budget.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_NO_THROW(JsonValue::parse(ok));
}

TEST(JsonDump, CanonicalForms) {
  EXPECT_EQ(JsonValue::null().dump(), "null");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::number(3).dump(), "3");  // integral: no exponent
  EXPECT_EQ(JsonValue::number(-17).dump(), "-17");
  EXPECT_EQ(JsonValue::str("x\ny").dump(), "\"x\\ny\"");
  EXPECT_EQ(JsonValue::array().push(JsonValue::number(1)).dump(), "[1]");
  JsonValue obj = JsonValue::object();
  obj.set("z", JsonValue::number(1)).set("a", JsonValue::number(2));
  EXPECT_EQ(obj.dump(), R"({"z":1,"a":2})");  // insertion order kept
  obj.set("z", JsonValue::number(9));  // replace keeps position
  EXPECT_EQ(obj.dump(), R"({"z":9,"a":2})");
}

TEST(JsonDump, RoundTripsBitExactly) {
  const char* cases[] = {
      R"({"op":"eval","expr":"a b + c'","id":7})",
      R"([0.5,1e-300,123456789012345,"\u00e9"])",
      R"({"nested":{"deep":[[],{}],"f":-0.0078125}})",
  };
  for (const char* text : cases) {
    const JsonValue v = JsonValue::parse(text);
    EXPECT_EQ(JsonValue::parse(v.dump()).dump(), v.dump()) << text;
  }
}

TEST(JsonDump, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonValue::number(1.0 / 0.0).dump(), "null");
  EXPECT_EQ(JsonValue::number(0.0 / 0.0).dump(), "null");
}

TEST(JsonAccessors, TypedLookupsWithFallbacks) {
  const JsonValue v = JsonValue::parse(R"({"n":4,"s":"hi","b":true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1), 4.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1), -1.0);
  EXPECT_EQ(v.string_or("s", "x"), "hi");
  EXPECT_TRUE(v.bool_or("b", false));
  // Present-but-wrong-type is an error, not a silent fallback.
  EXPECT_THROW(v.number_or("s", 0), ftl::Error);
  EXPECT_THROW(v.string_or("n", ""), ftl::Error);
  EXPECT_THROW(JsonValue::parse("[1]").as_string(), ftl::Error);
}

TEST(JsonQuote, EscapesControlAndSpecials) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote(std::string_view("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
}

TEST(JsonEquality, StructuralComparison) {
  EXPECT_EQ(JsonValue::parse("[1,2]"), JsonValue::parse("[1, 2]"));
  EXPECT_FALSE(JsonValue::parse("[1,2]") == JsonValue::parse("[2,1]"));
  EXPECT_EQ(JsonValue::parse(R"({"a":1})"), JsonValue::parse(R"({ "a" : 1 })"));
}

}  // namespace
