// Nonlinear DC tests: MOSFET operating points against hand-solved circuits,
// Newton convergence, symmetric channel operation, and DC sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ftl/spice/dcsweep.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/spice/mosfet.hpp"
#include "ftl/spice/sources.hpp"

namespace {

using namespace ftl::spice;

ftl::fit::Level1Params test_params() {
  ftl::fit::Level1Params p;
  p.kp = 1e-4;
  p.vth = 1.0;
  p.lambda = 0.0;
  p.width = 1e-6;
  p.length = 1e-6;
  return p;
}

double node_voltage(const Circuit& c, const OpResult& op, const std::string& name) {
  const int n = c.find_node(name);
  return n < 0 ? 0.0 : op.solution[static_cast<std::size_t>(n)];
}

TEST(MosfetDc, SaturationOperatingPointByHand) {
  // VDD=5, Rd=10k from VDD to drain, gate at 3 V, source grounded.
  // Saturation: Id = 0.5*1e-4*(3-1)^2 = 200 uA -> Vd = 5 - 2 = 3 V.
  // Check consistency: Vds=3 > Vov=2 ✓ saturation.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(3.0)));
  c.add(std::make_unique<Resistor>("RD", c.node("vdd"), c.node("d"), 10000.0));
  c.add(std::make_unique<Mosfet>("M1", c.node("d"), c.node("g"),
                                 Circuit::kGround, Circuit::kGround,
                                 test_params()));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(node_voltage(c, op, "d"), 3.0, 1e-5);
}

TEST(MosfetDc, TriodeOperatingPointByHand) {
  // Same circuit, gate at 5 V: Vov = 4. Guess triode:
  // Id = 1e-4 (4 Vd - Vd^2/2); KCL: (5-Vd)/10k = Id.
  // -> 5 - Vd = 4 Vd - Vd^2/2 -> Vd^2/2 - 5Vd + 5 = 0 -> Vd ≈ 1.0557.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<Resistor>("RD", c.node("vdd"), c.node("d"), 10000.0));
  c.add(std::make_unique<Mosfet>("M1", c.node("d"), c.node("g"),
                                 Circuit::kGround, Circuit::kGround,
                                 test_params()));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  const double expected = 5.0 - std::sqrt(15.0);  // root of the quadratic
  EXPECT_NEAR(node_voltage(c, op, "d"), expected, 1e-5);
}

TEST(MosfetDc, DiodeConnectedDevice) {
  // Diode-connected (gate = drain) through 10k from 5 V:
  // Id = 0.5e-4 (V-1)^2 = (5-V)/1e4 -> solve: V ≈ 2.1010.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<Resistor>("RD", c.node("vdd"), c.node("d"), 10000.0));
  c.add(std::make_unique<Mosfet>("M1", c.node("d"), c.node("d"),
                                 Circuit::kGround, Circuit::kGround,
                                 test_params()));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  const double v = node_voltage(c, op, "d");
  EXPECT_NEAR(0.5e-4 * (v - 1.0) * (v - 1.0), (5.0 - v) / 1e4, 1e-8);
}

TEST(MosfetDc, CutoffLeavesDrainPulledUp) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(0.5)));  // below Vth=1
  c.add(std::make_unique<Resistor>("RD", c.node("vdd"), c.node("d"), 10000.0));
  c.add(std::make_unique<Mosfet>("M1", c.node("d"), c.node("g"),
                                 Circuit::kGround, Circuit::kGround,
                                 test_params()));
  const OpResult op = dc_operating_point(c);
  EXPECT_NEAR(node_voltage(c, op, "d"), 5.0, 1e-3);
}

TEST(MosfetDc, ChannelIsSymmetric) {
  // Swap drain and source connections; the pass-gate still conducts.
  // Source follower topology: drain at VDD, source through resistor to gnd.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(3.0)));
  c.add(std::make_unique<Resistor>("RS", c.node("s"), Circuit::kGround, 10000.0));
  // Deliberately instantiate with drain/source textually swapped: node "s"
  // as the model's drain. The device must still operate (internal swap).
  c.add(std::make_unique<Mosfet>("M1", c.node("s"), c.node("g"), c.node("vdd"),
                                 Circuit::kGround, test_params()));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  // Source follower: Vs = Vg - Vth - sqrt(2 Id / beta), Id = Vs/RS.
  const double vs = node_voltage(c, op, "s");
  const double id = vs / 10000.0;
  EXPECT_NEAR(vs, 3.0 - 1.0 - std::sqrt(2.0 * id / 1e-4), 1e-3);
}

TEST(MosfetDc, DrainCurrentHelperMatchesKcl) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(3.0)));
  auto& rd = static_cast<Resistor&>(c.add(
      std::make_unique<Resistor>("RD", c.node("vdd"), c.node("d"), 10000.0)));
  auto& m = static_cast<Mosfet&>(c.add(std::make_unique<Mosfet>(
      "M1", c.node("d"), c.node("g"), Circuit::kGround, Circuit::kGround,
      test_params())));
  const OpResult op = dc_operating_point(c);
  EXPECT_NEAR(m.drain_current(op.solution), rd.current(op.solution), 1e-9);
}

TEST(MosfetDc, LambdaTiltsSaturation) {
  ftl::fit::Level1Params with_lambda = test_params();
  with_lambda.lambda = 0.1;
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VD", c.node("d"), Circuit::kGround,
                                        Waveform::dc(4.0)));
  c.add(std::make_unique<VoltageSource>("VG", c.node("g"), Circuit::kGround,
                                        Waveform::dc(2.0)));
  auto& m = static_cast<Mosfet&>(c.add(std::make_unique<Mosfet>(
      "M1", c.node("d"), c.node("g"), Circuit::kGround, Circuit::kGround,
      with_lambda)));
  const OpResult op = dc_operating_point(c);
  // Id = 0.5e-4 * 1 * (1 + 0.1*4) = 70 uA.
  EXPECT_NEAR(m.drain_current(op.solution), 7e-5, 1e-9);
}

TEST(DcSweep, InverterTransferCurve) {
  // Resistor-load inverter: output falls monotonically as input rises.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VDD", c.node("vdd"), Circuit::kGround,
                                        Waveform::dc(5.0)));
  c.add(std::make_unique<VoltageSource>("VIN", c.node("in"), Circuit::kGround,
                                        Waveform::dc(0.0)));
  c.add(std::make_unique<Resistor>("RD", c.node("vdd"), c.node("out"), 20000.0));
  c.add(std::make_unique<Mosfet>("M1", c.node("out"), c.node("in"),
                                 Circuit::kGround, Circuit::kGround,
                                 test_params()));
  const auto values = ftl::linalg::linspace(0.0, 5.0, 26);
  const DcSweepResult sweep = dc_sweep(c, "VIN", values);
  ASSERT_TRUE(sweep.converged);
  ASSERT_EQ(sweep.solutions.size(), values.size());
  const int out = c.find_node("out");
  double prev = 1e9;
  for (const auto& sol : sweep.solutions) {
    const double v = sol[static_cast<std::size_t>(out)];
    EXPECT_LE(v, prev + 1e-9);
    prev = v;
  }
  // Ends: high at Vin=0; at Vin=5 the hand-solved triode point is
  // Vout^2 - 9 Vout + 5 = 0 -> (9 - sqrt(61)) / 2 ≈ 0.5949.
  EXPECT_NEAR(sweep.solutions.front()[static_cast<std::size_t>(out)], 5.0, 1e-3);
  EXPECT_NEAR(sweep.solutions.back()[static_cast<std::size_t>(out)],
              (9.0 - std::sqrt(61.0)) / 2.0, 1e-3);
}

TEST(DcSweep, RestoresSourceWaveform) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>("VIN", c.node("in"), Circuit::kGround,
                                        Waveform::dc(2.5)));
  c.add(std::make_unique<Resistor>("R1", c.node("in"), Circuit::kGround, 1000.0));
  dc_sweep(c, "VIN", {0.0, 1.0});
  const auto& src = static_cast<const VoltageSource&>(c.device("VIN"));
  EXPECT_DOUBLE_EQ(src.waveform().dc_value(), 2.5);
}

}  // namespace
