// Gilbert-Peierls sparse LU: agreement with the dense kernel (and CG on
// SPD systems), numeric-only refactorization, pivot-degradation rejection,
// the pattern-cached MNA assembly, and dense-vs-sparse Newton on real
// lattice circuits.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/linalg/cg.hpp"
#include "ftl/linalg/lu.hpp"
#include "ftl/linalg/sparse_lu.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;

double rel_error(const linalg::Vector& a, const linalg::Vector& b) {
  EXPECT_EQ(a.size(), b.size());
  double diff = 0.0;
  double norm = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff, std::fabs(a[i] - b[i]));
    norm = std::max(norm, std::fabs(a[i]));
  }
  return diff / std::max(norm, 1e-300);
}

linalg::Vector dense_solve(const linalg::SparseMatrix& a, const linalg::Vector& b) {
  return linalg::solve(a.to_dense(), b);
}

/// Random sparse diagonally-dominant SPD matrix (graph-Laplacian + identity).
linalg::SparseMatrix random_spd(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> weight(0.1, 2.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  linalg::TripletList trip(n, n);
  std::vector<double> diag(n, 1.0);
  for (std::size_t e = 0; e < 4 * n; ++e) {
    const std::size_t r = pick(rng);
    const std::size_t c = pick(rng);
    if (r == c) continue;
    const double w = weight(rng);
    trip.add(r, c, -w);
    trip.add(c, r, -w);
    diag[r] += w;
    diag[c] += w;
  }
  for (std::size_t i = 0; i < n; ++i) trip.add(i, i, diag[i]);
  return linalg::SparseMatrix(trip);
}

/// Random sparse unsymmetric diagonally-dominant matrix.
linalg::SparseMatrix random_unsymmetric(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> weight(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  linalg::TripletList trip(n, n);
  std::vector<double> rowsum(n, 0.0);
  for (std::size_t e = 0; e < 5 * n; ++e) {
    const std::size_t r = pick(rng);
    const std::size_t c = pick(rng);
    if (r == c) continue;
    const double w = weight(rng);
    trip.add(r, c, w);
    rowsum[r] += std::fabs(w);
  }
  for (std::size_t i = 0; i < n; ++i) trip.add(i, i, rowsum[i] + 1.0);
  return linalg::SparseMatrix(trip);
}

linalg::Vector random_vector(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = dist(rng);
  return b;
}

TEST(SparseLu, MatchesDenseAndCgOnRandomSpd) {
  std::mt19937 rng(7);
  for (const std::size_t n : {10u, 40u, 120u}) {
    const linalg::SparseMatrix a = random_spd(n, rng);
    const linalg::Vector b = random_vector(n, rng);

    linalg::SparseLu lu;
    lu.factor(a);
    const linalg::Vector x_sparse = lu.solve(b);
    const linalg::Vector x_dense = dense_solve(a, b);
    const linalg::CgResult cg = linalg::conjugate_gradient(a, b);

    EXPECT_TRUE(cg.converged);
    EXPECT_LT(rel_error(x_sparse, x_dense), 1e-10) << "n=" << n;
    EXPECT_LT(rel_error(x_sparse, cg.x), 1e-9) << "n=" << n;
  }
}

TEST(SparseLu, MatchesDenseOnRandomUnsymmetric) {
  std::mt19937 rng(21);
  for (const std::size_t n : {10u, 50u, 150u}) {
    const linalg::SparseMatrix a = random_unsymmetric(n, rng);
    const linalg::Vector b = random_vector(n, rng);
    linalg::SparseLu lu;
    lu.factor(a);
    EXPECT_LT(rel_error(lu.solve(b), dense_solve(a, b)), 1e-10) << "n=" << n;
  }
}

TEST(SparseLu, RefactorReusesSymbolicAnalysis) {
  std::mt19937 rng(3);
  const std::size_t n = 60;
  linalg::SparseMatrix a = random_unsymmetric(n, rng);
  linalg::SparseLu lu;
  lu.factor(a);
  const std::size_t nnz_after_factor = lu.factor_nonzeros();

  // Same pattern, gently perturbed values: the numeric-only path must
  // accept and match a from-scratch factorization.
  std::uniform_real_distribution<double> jitter(0.9, 1.1);
  for (double& v : a.values()) v *= jitter(rng);
  const linalg::Vector b = random_vector(n, rng);
  ASSERT_TRUE(lu.refactor(a));
  EXPECT_EQ(lu.factor_nonzeros(), nnz_after_factor);
  EXPECT_LT(rel_error(lu.solve(b), dense_solve(a, b)), 1e-10);
}

TEST(SparseLu, RefactorRejectsDegradedPivotsAndDifferentPatterns) {
  std::mt19937 rng(11);
  const std::size_t n = 30;
  linalg::SparseMatrix a = random_unsymmetric(n, rng);
  linalg::SparseLu lu;
  lu.factor(a);

  // Collapse one pivot's magnitude: the recorded pivot order is no longer
  // numerically safe and refactor must hand control back to factor().
  linalg::SparseMatrix degraded = a;
  for (double& v : degraded.values()) v *= 1e-9;
  // (Uniform scaling keeps relative pivots fine — so instead zero out most
  // of one row to starve its recorded pivot.)
  degraded = a;
  const std::size_t row = n / 2;
  const auto& rs = degraded.row_start();
  for (std::size_t p = rs[row]; p < rs[row + 1]; ++p) {
    degraded.values()[p] *= 1e-12;
  }
  if (!lu.refactor(degraded)) {
    lu.factor(degraded);
  }
  const linalg::Vector b = random_vector(n, rng);
  EXPECT_LT(rel_error(lu.solve(b), dense_solve(degraded, b)), 1e-8);

  // A different pattern is always rejected.
  linalg::SparseMatrix other = random_spd(n, rng);
  linalg::SparseLu lu2;
  lu2.factor(a);
  EXPECT_FALSE(lu2.refactor(other));
}

TEST(SparseLu, AcceptedRefactorIsBitwiseIdenticalToFreshFactor) {
  // The contract the batched corner engine rests on: an accepted replay is
  // not merely close to factor(a), it IS factor(a), bit for bit. Solve both
  // and compare with EXPECT_EQ (exact double equality, no tolerance).
  std::mt19937 rng(17);
  const std::size_t n = 60;
  linalg::SparseMatrix a = random_unsymmetric(n, rng);
  linalg::SparseLu replayed;
  replayed.factor(a);

  std::uniform_real_distribution<double> jitter(0.9, 1.1);
  for (int round = 0; round < 3; ++round) {
    for (double& v : a.values()) v *= jitter(rng);
    ASSERT_TRUE(replayed.refactor(a)) << "round=" << round;
    linalg::SparseLu fresh;
    fresh.factor(a);
    const linalg::Vector b = random_vector(n, rng);
    const linalg::Vector x_replayed = replayed.solve(b);
    const linalg::Vector x_fresh = fresh.solve(b);
    ASSERT_EQ(x_replayed.size(), x_fresh.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x_replayed[i], x_fresh[i]) << "round=" << round << " i=" << i;
    }
  }
}

TEST(SparseLu, MidSweepDegradationFallsBackBitwise) {
  // A value sweep that progressively starves one row's entries until the
  // recorded pivot order stops being what a fresh factor() would choose.
  // Engine A reuses one SparseLu with the refactor-else-factor idiom; engine
  // B factors from scratch at every step. They must agree bitwise at EVERY
  // step — including the steps where A rejected the replay — and the sweep
  // must actually cross the rejection threshold at least once.
  std::mt19937 rng(29);
  const std::size_t n = 40;
  const linalg::SparseMatrix base = random_unsymmetric(n, rng);
  const linalg::Vector b = random_vector(n, rng);
  const std::size_t row = n / 2;

  linalg::SparseLu engine_a;
  engine_a.factor(base);
  int rejections = 0;
  for (int t = 0; t <= 6; ++t) {
    linalg::SparseMatrix at = base;
    const double scale = std::pow(10.0, -2.0 * t);
    const auto& rs = at.row_start();
    for (std::size_t p = rs[row]; p < rs[row + 1]; ++p) {
      at.values()[p] *= scale;
    }
    if (!engine_a.refactor(at)) {
      ++rejections;
      engine_a.factor(at);
    }
    linalg::SparseLu engine_b;
    engine_b.factor(at);
    const linalg::Vector xa = engine_a.solve(b);
    const linalg::Vector xb = engine_b.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(xa[i], xb[i]) << "t=" << t << " i=" << i;
    }
  }
  EXPECT_GE(rejections, 1) << "sweep never stressed the rejection path";
}

TEST(SparseLu, RefactorRelThresholdRejectsWeakenedDiagonalPivot) {
  // Deterministic 2x2 where the crossing is exactly the refactor_rel branch:
  // [[d, 1], [1, 2]]. The diagonal preference keeps row 0 pivotal while
  // d >= diag_preference * 1, so as d shrinks the reused pivot first fails
  // the refactor_rel fraction (same pivot row, weakened magnitude) and only
  // later drifts to row 1 outright.
  const auto make = [](double d) {
    linalg::TripletList trip(2, 2);
    trip.add(0, 0, d);
    trip.add(0, 1, 1.0);
    trip.add(1, 0, 1.0);
    trip.add(1, 1, 2.0);
    return linalg::SparseMatrix(trip);
  };
  linalg::SparseLuOptions strict;
  strict.refactor_rel = 0.5;

  linalg::SparseLu lu;
  lu.factor(make(1.0), strict);
  // d = 0.8: pivot row 0 keeps 0.8 of the column max — accepted.
  EXPECT_TRUE(lu.refactor(make(0.8), strict));
  // d = 0.3: row 0 still wins the diagonal preference (0.3 >= 0.1 * 1) so
  // there is no pivot drift, but 0.3 < refactor_rel * 1.0 — rejected.
  EXPECT_FALSE(lu.refactor(make(0.3), strict));
  lu.factor(make(0.3), strict);
  // d = 0.05: below the diagonal preference, a fresh factor() would now
  // pivot on row 1 — rejected as pivot-order drift.
  EXPECT_FALSE(lu.refactor(make(0.05), strict));
  lu.factor(make(0.05), strict);
  const linalg::Vector b{2.0, 3.0};
  EXPECT_LT(rel_error(lu.solve(b), dense_solve(make(0.05), b)), 1e-12);
}

TEST(SparseLuBatch, LanesShareOneSymbolicAnalysis) {
  std::mt19937 rng(41);
  const std::size_t n = 50;
  const std::size_t lanes = 4;
  const linalg::SparseMatrix base = random_unsymmetric(n, rng);

  std::vector<linalg::SparseMatrix> mats;
  std::uniform_real_distribution<double> jitter(0.9, 1.1);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    linalg::SparseMatrix m = base;
    if (lane > 0) {
      for (double& v : m.values()) v *= jitter(rng);
    }
    mats.push_back(std::move(m));
  }
  std::vector<linalg::CsrView> views;
  for (const auto& m : mats) views.push_back(m.view());

  linalg::SparseLuBatch batch;
  batch.reset(lanes);
  batch.refactor_batch(views);
  EXPECT_EQ(batch.counters().symbolic_factors, 1u);
  EXPECT_EQ(batch.counters().symbolic_reuses, lanes - 1);
  EXPECT_EQ(batch.counters().numeric_refactors, lanes - 1);
  EXPECT_EQ(batch.counters().lane_fallbacks, 0u);

  // Every lane must match a standalone factorization of its matrix bitwise.
  const linalg::Vector b = random_vector(n, rng);
  std::vector<linalg::Vector> xs;
  batch.solve_batch(std::vector<linalg::Vector>(lanes, b), xs);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    linalg::SparseLu standalone;
    standalone.factor(mats[lane]);
    const linalg::Vector expect = standalone.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(xs[lane][i], expect[i]) << "lane=" << lane << " i=" << i;
    }
  }
}

TEST(SparseLuBatch, DegradedLaneFallsBackPrivatelyAndStaysBitwise) {
  std::mt19937 rng(53);
  const std::size_t n = 40;
  const std::size_t lanes = 3;
  const linalg::SparseMatrix base = random_unsymmetric(n, rng);

  // Lane 1 starves a row hard enough to break the recorded pivot order.
  std::vector<linalg::SparseMatrix> mats(lanes, base);
  {
    const std::size_t row = n / 2;
    const auto& rs = mats[1].row_start();
    for (std::size_t p = rs[row]; p < rs[row + 1]; ++p) {
      mats[1].values()[p] *= 1e-12;
    }
  }
  std::vector<linalg::CsrView> views;
  for (const auto& m : mats) views.push_back(m.view());

  linalg::SparseLuBatch batch;
  batch.reset(lanes);
  batch.refactor_batch(views);
  EXPECT_GE(batch.counters().lane_fallbacks, 1u);

  const linalg::Vector b = random_vector(n, rng);
  std::vector<linalg::Vector> xs;
  batch.solve_batch(std::vector<linalg::Vector>(lanes, b), xs);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    linalg::SparseLu standalone;
    standalone.factor(mats[lane]);
    const linalg::Vector expect = standalone.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(xs[lane][i], expect[i]) << "lane=" << lane << " i=" << i;
    }
  }

  // A later round with healthy values: the fallback lane retries the shared
  // replay first (acceptance is a property of the values, not history).
  const auto reuses_before = batch.counters().symbolic_reuses;
  std::vector<linalg::CsrView> healthy;
  for (std::size_t lane = 0; lane < lanes; ++lane) healthy.push_back(base.view());
  batch.refactor_batch(healthy);
  EXPECT_EQ(batch.counters().symbolic_reuses, reuses_before + lanes);
}

TEST(SparseLuBatch, InvalidateDropsTheAnalysisButKeepsLaneCount) {
  std::mt19937 rng(67);
  const std::size_t n = 20;
  const linalg::SparseMatrix a = random_unsymmetric(n, rng);
  linalg::SparseLuBatch batch;
  batch.reset(2);
  EXPECT_FALSE(batch.analyzed());
  batch.factor_lane(0, a.view());
  batch.factor_lane(1, a.view());
  EXPECT_TRUE(batch.analyzed());
  EXPECT_EQ(batch.lanes(), 2u);

  batch.invalidate();
  EXPECT_FALSE(batch.analyzed());
  EXPECT_EQ(batch.lanes(), 2u);

  // Refactoring after invalidate re-runs the full analysis.
  batch.factor_lane(0, a.view());
  EXPECT_TRUE(batch.analyzed());
  EXPECT_EQ(batch.counters().symbolic_factors, 2u);

  const linalg::Vector b = random_vector(n, rng);
  linalg::Vector x;
  batch.solve_lane(0, b, x);
  EXPECT_LT(rel_error(x, dense_solve(a, b)), 1e-10);
}

TEST(SparseLuBatch, SingularLaneThrowsLikeStandaloneFactor) {
  linalg::TripletList trip(3, 3);
  trip.add(0, 0, 1.0);
  trip.add(0, 1, 2.0);
  trip.add(1, 0, 2.0);
  trip.add(1, 1, 4.0);  // row 1 = 2 * row 0, column 2 empty
  trip.add(2, 2, 1.0);
  const linalg::SparseMatrix singular(trip,
                                      linalg::SparseMatrix::ZeroPolicy::kKeep);
  linalg::SparseLuBatch batch;
  batch.reset(2);
  EXPECT_THROW(batch.factor_lane(0, singular.view()), ftl::Error);
  EXPECT_FALSE(batch.analyzed());

  // The failed first lane must not leave half-built shared state behind: a
  // healthy lane afterwards analyses from scratch and solves correctly.
  std::mt19937 rng(71);
  const linalg::SparseMatrix a = random_unsymmetric(12, rng);
  batch.factor_lane(1, a.view());
  const linalg::Vector b = random_vector(12, rng);
  linalg::Vector x;
  batch.solve_lane(1, b, x);
  EXPECT_LT(rel_error(x, dense_solve(a, b)), 1e-10);
}

TEST(SparseLu, ThrowsOnSingularMatrix) {
  linalg::TripletList trip(3, 3);
  trip.add(0, 0, 1.0);
  trip.add(0, 1, 2.0);
  trip.add(1, 0, 2.0);
  trip.add(1, 1, 4.0);  // row 1 = 2 * row 0, column 2 empty
  trip.add(2, 2, 1.0);
  const linalg::SparseMatrix a(trip, linalg::SparseMatrix::ZeroPolicy::kKeep);
  linalg::SparseLu lu;
  EXPECT_THROW(lu.factor(a), ftl::Error);
}

// ---- Pattern-cached MNA assembly on real lattice circuits ----------------

/// Assembles the MNA system of `circuit` at a zero iterate with both
/// backends and returns (dense A, dense z, sparse assembly).
struct AssembledSystem {
  linalg::Matrix a_dense{0, 0};
  linalg::Vector z;
  spice::SparseAssembly sparse;
};

AssembledSystem assemble_both(spice::Circuit& circuit) {
  const int n = circuit.prepare_unknowns();
  linalg::Vector zero(static_cast<std::size_t>(n), 0.0);
  spice::EvalContext ctx;
  ctx.solution = &zero;

  AssembledSystem sys;
  spice::DenseAssembly dense;
  dense.reset(static_cast<std::size_t>(n));
  spice::Stamper ds(dense);
  for (const auto& dev : circuit.devices()) dev->stamp(ds, ctx);
  sys.a_dense = dense.matrix();
  sys.z = dense.rhs();

  sys.sparse.reset(static_cast<std::size_t>(n));
  spice::Stamper ss(sys.sparse);
  for (const auto& dev : circuit.devices()) dev->stamp(ss, ctx);
  EXPECT_TRUE(sys.sparse.finalize());  // first pass defines the pattern
  return sys;
}

std::vector<lattice::Lattice> test_lattices() {
  std::vector<lattice::Lattice> lats;
  lats.push_back(lattice::altun_riedel_synthesis(
      logic::parse_expression("a b").table, {"a", "b"}));
  lats.push_back(lattice::altun_riedel_synthesis(
      logic::parse_expression("a b + c").table, {"a", "b", "c"}));
  lats.push_back(lattice::xor3_lattice_3x3());
  lats.push_back(lattice::altun_riedel_synthesis(
      logic::parse_expression("a b + b c + c d").table, {"a", "b", "c", "d"}));
  return lats;
}

TEST(SparseLu, SolvesLatticeMnaMatricesLikeDense) {
  for (const auto& lat : test_lattices()) {
    std::map<int, spice::Waveform> drives;
    drives[0] = spice::Waveform::dc(1.2);
    bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
    AssembledSystem sys = assemble_both(lc.circuit);

    // The cached pattern must reproduce the dense matrix entry-for-entry.
    const linalg::CsrView a = sys.sparse.matrix();
    linalg::Matrix from_sparse(a.n, a.n);
    for (std::size_t r = 0; r < a.n; ++r) {
      for (std::size_t p = a.row_start[r]; p < a.row_start[r + 1]; ++p) {
        from_sparse(r, a.col_index[p]) += a.values[p];
      }
    }
    // Duplicate stamps merge in a different order than the dense +=
    // accumulation, so entries agree to rounding, not bit-for-bit.
    double max_entry_diff = 0.0;
    double max_entry = 0.0;
    for (std::size_t r = 0; r < a.n; ++r) {
      for (std::size_t c = 0; c < a.n; ++c) {
        max_entry_diff = std::max(
            max_entry_diff, std::fabs(from_sparse(r, c) - sys.a_dense(r, c)));
        max_entry = std::max(max_entry, std::fabs(sys.a_dense(r, c)));
      }
    }
    EXPECT_LT(max_entry_diff, 1e-14 * max_entry)
        << lat.rows() << "x" << lat.cols() << " lattice";

    linalg::SparseLu sparse_lu;
    sparse_lu.factor(a);
    const linalg::Vector x_sparse = sparse_lu.solve(sys.z);
    const linalg::Vector x_dense = linalg::solve(sys.a_dense, sys.z);
    EXPECT_LT(rel_error(x_sparse, x_dense), 1e-10)
        << lat.rows() << "x" << lat.cols() << " lattice";
  }
}

TEST(SparseAssembly, SecondPassKeepsPattern) {
  const auto lat = lattice::xor3_lattice_3x3();
  std::map<int, spice::Waveform> drives;
  drives[0] = spice::Waveform::dc(1.2);
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
  const int n = lc.circuit.prepare_unknowns();
  linalg::Vector iterate(static_cast<std::size_t>(n), 0.0);
  spice::EvalContext ctx;
  ctx.solution = &iterate;

  spice::SparseAssembly assembly;
  assembly.reset(static_cast<std::size_t>(n));
  {
    spice::Stamper s(assembly);
    for (const auto& dev : lc.circuit.devices()) dev->stamp(s, ctx);
  }
  EXPECT_TRUE(assembly.finalize());
  const std::size_t nnz = assembly.matrix().nonzeros();

  // A different iterate swaps MOSFET drain/source stamp ORDER but not the
  // stamped position set: the cached pattern must absorb it unchanged.
  for (std::size_t i = 0; i < iterate.size(); ++i) {
    iterate[i] = 0.1 * static_cast<double>(i % 7) - 0.3;
  }
  assembly.reset(static_cast<std::size_t>(n));
  {
    spice::Stamper s(assembly);
    for (const auto& dev : lc.circuit.devices()) dev->stamp(s, ctx);
  }
  EXPECT_FALSE(assembly.finalize());
  EXPECT_EQ(assembly.matrix().nonzeros(), nnz);
}

TEST(NewtonModes, DenseAndSparseAgreeOnXor3) {
  const auto lat = lattice::xor3_lattice_3x3();
  for (std::uint64_t code = 0; code < 8; ++code) {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < 3; ++v) {
      drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
    }
    bridge::LatticeCircuit dense_lc = bridge::build_lattice_circuit(lat, drives);
    bridge::LatticeCircuit sparse_lc = bridge::build_lattice_circuit(lat, drives);

    spice::NewtonOptions dense_opts;
    dense_opts.matrix_mode = spice::MatrixMode::kDense;
    spice::NewtonOptions sparse_opts;
    sparse_opts.matrix_mode = spice::MatrixMode::kSparse;

    const spice::OpResult rd = spice::dc_operating_point(dense_lc.circuit, dense_opts);
    const spice::OpResult rs = spice::dc_operating_point(sparse_lc.circuit, sparse_opts);
    ASSERT_TRUE(rd.converged);
    ASSERT_TRUE(rs.converged);
    EXPECT_LT(rel_error(rs.solution, rd.solution), 1e-9) << "code=" << code;
  }
}

}  // namespace
