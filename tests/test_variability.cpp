// Monte-Carlo variability tests: determinism, degenerate spreads, yield
// monotonicity, and the per-switch override hook itself.
#include <gtest/gtest.h>

#include "ftl/bridge/variability.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;

TEST(Variability, ZeroSpreadYieldsEveryDie) {
  const auto lat = lattice::xor3_lattice_3x3();
  bridge::VariabilityOptions options;
  options.trials = 5;
  const auto r = bridge::monte_carlo_yield(lat, lattice::xor3_truth_table(), options);
  EXPECT_EQ(r.passing, r.trials);
  EXPECT_DOUBLE_EQ(r.yield(), 1.0);
  EXPECT_LT(r.worst_low, 0.4);
  EXPECT_GT(r.worst_high, 1.1);
}

TEST(Variability, DeterministicForFixedSeed) {
  const auto f = logic::parse_expression("a b + c").table;
  const auto lat = lattice::altun_riedel_synthesis(f, {"a", "b", "c"});
  bridge::VariabilityOptions options;
  options.sigma_vth = 0.15;
  options.trials = 30;
  options.seed = 42;
  const auto a = bridge::monte_carlo_yield(lat, f, options);
  const auto b = bridge::monte_carlo_yield(lat, f, options);
  EXPECT_EQ(a.passing, b.passing);
  EXPECT_DOUBLE_EQ(a.worst_low, b.worst_low);
  EXPECT_DOUBLE_EQ(a.worst_high, b.worst_high);
}

TEST(Variability, ParallelMatchesSerialForFixedSeed) {
  // The per-trial RNG derivation makes the result a pure function of the
  // options: fanning trials across the pool must change nothing, bit for
  // bit, relative to a serial run.
  const auto f = logic::parse_expression("a b + c").table;
  const auto lat = lattice::altun_riedel_synthesis(f, {"a", "b", "c"});
  bridge::VariabilityOptions serial;
  serial.sigma_vth = 0.2;
  serial.sigma_kp_rel = 0.1;
  serial.trials = 24;
  serial.seed = 7;
  serial.max_threads = 1;
  bridge::VariabilityOptions parallel = serial;
  parallel.max_threads = 4;
  const auto a = bridge::monte_carlo_yield(lat, f, serial);
  const auto b = bridge::monte_carlo_yield(lat, f, parallel);
  EXPECT_EQ(a.passing, b.passing);
  EXPECT_DOUBLE_EQ(a.worst_low, b.worst_low);
  EXPECT_DOUBLE_EQ(a.worst_high, b.worst_high);
}

TEST(Variability, BatchedEngineMatchesPerTrialBitwise) {
  // The batched engine shares one circuit and one symbolic LU analysis per
  // worker chunk; the per-trial engine builds a fresh circuit per (trial,
  // code). Same dice, same stamps, bitwise-identical LU replays — so the
  // whole result must match byte for byte, not merely statistically.
  const auto f = logic::parse_expression("a b + c").table;
  const auto lat = lattice::altun_riedel_synthesis(f, {"a", "b", "c"});
  bridge::VariabilityOptions batched;
  batched.sigma_vth = 0.25;  // large enough that some dies actually fail
  batched.sigma_kp_rel = 0.1;
  batched.trials = 20;
  batched.seed = 19;
  batched.max_threads = 1;
  batched.engine = bridge::VariabilityEngine::kBatched;
  bridge::VariabilityOptions per_trial = batched;
  per_trial.engine = bridge::VariabilityEngine::kPerTrial;

  const auto a = bridge::monte_carlo_yield(lat, f, batched);
  const auto b = bridge::monte_carlo_yield(lat, f, per_trial);
  EXPECT_LT(a.passing, a.trials);  // the spread must exercise the fail path
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.passing, b.passing);
  EXPECT_EQ(a.worst_low, b.worst_low);    // exact, not EXPECT_DOUBLE_EQ
  EXPECT_EQ(a.worst_high, b.worst_high);
}

TEST(Variability, BatchedParallelMatchesBatchedSerialBitwise) {
  // Threads split the batch into contiguous trial chunks, never a trial;
  // chunk boundaries only move which BatchSolver instance serves a lane,
  // and every lane is bitwise-deterministic, so the reduction over trial
  // order cannot see the thread count.
  const auto f = logic::parse_expression("a b + c").table;
  const auto lat = lattice::altun_riedel_synthesis(f, {"a", "b", "c"});
  bridge::VariabilityOptions serial;
  serial.sigma_vth = 0.2;
  serial.sigma_kp_rel = 0.1;
  serial.trials = 18;
  serial.seed = 23;
  serial.max_threads = 1;
  serial.engine = bridge::VariabilityEngine::kBatched;
  bridge::VariabilityOptions parallel = serial;
  parallel.max_threads = 3;

  const auto a = bridge::monte_carlo_yield(lat, f, serial);
  const auto b = bridge::monte_carlo_yield(lat, f, parallel);
  EXPECT_EQ(a.passing, b.passing);
  EXPECT_EQ(a.worst_low, b.worst_low);
  EXPECT_EQ(a.worst_high, b.worst_high);
}

TEST(Variability, LargeSpreadCostsYield) {
  const auto lat = lattice::xor3_lattice_3x3();
  const auto xor3 = lattice::xor3_truth_table();
  bridge::VariabilityOptions mild;
  mild.sigma_vth = 0.01;
  mild.trials = 25;
  mild.seed = 3;
  bridge::VariabilityOptions harsh = mild;
  harsh.sigma_vth = 0.4;
  const auto r_mild = bridge::monte_carlo_yield(lat, xor3, mild);
  const auto r_harsh = bridge::monte_carlo_yield(lat, xor3, harsh);
  EXPECT_GE(r_mild.passing, r_harsh.passing);
  EXPECT_LT(r_harsh.yield(), 1.0);
}

TEST(Variability, RejectsBadOptions) {
  const auto lat = lattice::xor3_lattice_3x3();
  const auto xor3 = lattice::xor3_truth_table();
  bridge::VariabilityOptions options;
  options.trials = 0;
  EXPECT_THROW(bridge::monte_carlo_yield(lat, xor3, options),
               ftl::ContractViolation);
  options.trials = 1;
  options.sigma_vth = -0.1;
  EXPECT_THROW(bridge::monte_carlo_yield(lat, xor3, options),
               ftl::ContractViolation);
}

TEST(Variability, PerSwitchOverrideHookIsApplied) {
  // Cripple one specific switch via the hook and observe the function break:
  // proves the override reaches the right instance.
  const auto lat = lattice::xor3_lattice_3x3();
  bridge::LatticeCircuitOptions options;
  options.switch_param_fn = [](int row, int col,
                               const bridge::SwitchModelParams& nominal) {
    bridge::SwitchModelParams p = nominal;
    if (row == 1 && col == 1) p.vth = 10.0;  // never turns on
    return p;
  };
  // abc = 100 -> xor3 = 1 -> out should be LOW, and the only conducting
  // path of the 3x3 mapping runs through the centre constant-1 cell (1,1);
  // with that switch dead the pull-down path vanishes.
  std::map<int, spice::Waveform> drives;
  drives[0] = spice::Waveform::dc(1.2);
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives, options);
  const spice::OpResult op = spice::dc_operating_point(lc.circuit);
  const double out =
      op.solution[static_cast<std::size_t>(lc.circuit.find_node("out"))];
  // The fault-free gate pulls low here (~0.09 V); with the (0,0) switch
  // dead the pull-down path must weaken or vanish.
  EXPECT_GT(out, 0.2);
}

}  // namespace
