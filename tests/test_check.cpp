// ftl::check tests: the diagnostics framework, every netlist/lattice rule
// (one triggering and one clean case each), BDD equivalence with
// counterexamples, the pre-solve gate, and the golden JSON rendering.
//
// Netlist fixtures live in tests/fixtures/lint (FTL_LINT_FIXTURES); the
// same files drive the ftl_lint CLI exit-code tests in CMake.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

#include "ftl/check/diagnostics.hpp"
#include "ftl/check/equivalence.hpp"
#include "ftl/check/lattice.hpp"
#include "ftl/check/lattice_sat.hpp"
#include "ftl/check/netlist.hpp"
#include "ftl/jobs/pipeline.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/spice/sources.hpp"

namespace {

using namespace ftl;
using check::Diagnostic;
using check::Report;
using check::Severity;

std::string fixture(const std::string& name) {
  const std::string path = std::string(FTL_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool has_rule(const Report& report, const std::string& rule) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

const Diagnostic& first_of(const Report& report, const std::string& rule) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) return d;
  }
  throw ftl::Error("no diagnostic with rule " + rule);
}

// ---------------------------------------------------------------------------
// Diagnostics framework

TEST(Diagnostics, SeverityCountsAndThresholds) {
  Report report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.clean());
  report.add("FTL-L004", Severity::kNote, "row 1", "removable");
  EXPECT_TRUE(report.clean()) << "notes must not affect clean()";
  report.add("FTL-N001", Severity::kWarning, "x", "dangling");
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.clean());
  report.add("FTL-N002", Severity::kError, "y", "floating");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.errors(), 1);
  EXPECT_EQ(report.warnings(), 1);
  EXPECT_EQ(report.notes(), 1);
  EXPECT_TRUE(report.has_at_least(Severity::kError));
}

TEST(Diagnostics, TextRenderingIsCompilerStyle) {
  Report report;
  report.add("FTL-N002", Severity::kError, "mid", "node 'mid' floats",
             {3, 1});
  const std::string text = report.render_text();
  EXPECT_NE(text.find("3:1: error [FTL-N002] node 'mid' floats"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 error, 0 warnings, 0 notes"), std::string::npos);
}

TEST(Diagnostics, JsonRenderingIsCanonical) {
  Report report;
  report.add("FTL-N005", Severity::kError, "R1", "bad \"value\"\n", {2, 4});
  EXPECT_EQ(report.render_json(),
            "{\"clean\":false,\"errors\":1,\"warnings\":0,\"notes\":0,"
            "\"diagnostics\":[{\"rule\":\"FTL-N005\",\"severity\":\"error\","
            "\"object\":\"R1\",\"message\":\"bad \\\"value\\\"\\n\","
            "\"line\":2,\"column\":4}]}");
}

TEST(Diagnostics, JsonEscapesControlCharacters) {
  EXPECT_EQ(check::json_escape(std::string("a\x01") + "\\"), "a\\u0001\\\\");
}

// ---------------------------------------------------------------------------
// Netlist rules, one fixture each

TEST(NetlistLint, CleanDeckIsClean) {
  const auto result = check::lint_netlist(fixture("clean.cir"));
  EXPECT_TRUE(result.report.clean()) << result.report.render_text();
  ASSERT_TRUE(result.parsed.has_value());
  EXPECT_TRUE(result.parsed->tran.has_value());
}

TEST(NetlistLint, DanglingNodeWarns) {
  const auto result = check::lint_netlist(fixture("dangling.cir"));
  EXPECT_TRUE(has_rule(result.report, "FTL-N001"));
  EXPECT_TRUE(result.report.ok()) << "a stub is a warning, not an error";
  const Diagnostic& d = first_of(result.report, "FTL-N001");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.object, "probe");
  EXPECT_EQ(d.loc.line, 5) << "location of the only touching device (R3)";
}

TEST(NetlistLint, NoDcPathIsError) {
  const auto result = check::lint_netlist(fixture("no_dc_path.cir"));
  EXPECT_FALSE(result.report.ok());
  const Diagnostic& d = first_of(result.report, "FTL-N002");
  EXPECT_EQ(d.object, "mid");
  EXPECT_FALSE(has_rule(result.report, "FTL-N007"))
      << "N007 must not double-report the node N002 already explained";
}

TEST(NetlistLint, VoltageSourceLoop) {
  const auto result = check::lint_netlist(fixture("vloop.cir"));
  const Diagnostic& d = first_of(result.report, "FTL-N003");
  EXPECT_EQ(d.object, "V2");
  // The loop also leaves one branch equation structurally unpivotable.
  EXPECT_TRUE(has_rule(result.report, "FTL-N007"));
}

TEST(NetlistLint, DuplicateComponentName) {
  const auto result = check::lint_netlist(fixture("dup_name.cir"));
  const Diagnostic& d = first_of(result.report, "FTL-N004");
  EXPECT_EQ(d.object, "R1");
  EXPECT_EQ(d.loc.line, 4) << "reported at the second definition";
  EXPECT_FALSE(result.parsed.has_value())
      << "pre-pass errors skip the parse (the parser would throw anyway)";
}

TEST(NetlistLint, ZeroValueIsError) {
  const auto result = check::lint_netlist(fixture("bad_value.cir"));
  const Diagnostic& d = first_of(result.report, "FTL-N005");
  EXPECT_EQ(d.object, "R1");
  EXPECT_EQ(d.severity, Severity::kError);
}

TEST(NetlistLint, UnitSuspectValueWarns) {
  const auto result = check::lint_netlist(fixture("unit_suspect.cir"));
  const Diagnostic& d = first_of(result.report, "FTL-N006");
  EXPECT_EQ(d.object, "C1");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_TRUE(result.report.ok());
  EXPECT_FALSE(result.report.clean());
}

TEST(NetlistLint, CaseAliasedNodes) {
  const auto result = check::lint_netlist(fixture("alias.cir"));
  const Diagnostic& d = first_of(result.report, "FTL-N008");
  EXPECT_EQ(d.object, "Out");
  EXPECT_EQ(d.loc.line, 4);
}

TEST(NetlistLint, ParseErrorBecomesP001) {
  const auto result = check::lint_netlist(fixture("parse_error.cir"));
  const Diagnostic& d = first_of(result.report, "FTL-P001");
  EXPECT_EQ(d.loc.line, 4);
  EXPECT_NE(d.message.find("X1"), std::string::npos);
  EXPECT_FALSE(result.parsed.has_value());
}

TEST(NetlistLint, GoldenJsonOutput) {
  const auto result = check::lint_netlist(fixture("no_dc_path.cir"));
  std::string golden = fixture("no_dc_path.expected.json");
  while (!golden.empty() && (golden.back() == '\n' || golden.back() == '\r')) {
    golden.pop_back();
  }
  EXPECT_EQ(result.report.render_json(), golden);
}

TEST(NetlistLint, WidenedBandsSilenceN006) {
  check::NetlistCheckOptions options;
  options.capacitor_max = 100.0;  // ten farads are fine today
  const auto result = check::lint_netlist(fixture("unit_suspect.cir"), options);
  EXPECT_TRUE(result.report.clean()) << result.report.render_text();
}

// ---------------------------------------------------------------------------
// check_circuit on programmatic circuits

spice::Circuit divider() {
  spice::Circuit c;
  const int in = c.node("in");
  const int mid = c.node("mid");
  c.add(std::make_unique<spice::VoltageSource>("V1", in, spice::Circuit::kGround,
                                               spice::Waveform::dc(10.0)));
  c.add(std::make_unique<spice::Resistor>("R1", in, mid, 1e3));
  c.add(std::make_unique<spice::Resistor>("R2", mid, spice::Circuit::kGround,
                                          3e3));
  return c;
}

TEST(CheckCircuit, DividerIsClean) {
  const spice::Circuit c = divider();
  EXPECT_TRUE(check::check_circuit(c).clean());
}

TEST(CheckCircuit, CurrentSourceOnlyNodeIsFlagged) {
  spice::Circuit c;
  const int a = c.node("a");
  c.add(std::make_unique<spice::CurrentSource>("I1", a, spice::Circuit::kGround,
                                               spice::Waveform::dc(1e-3)));
  const Report report = check::check_circuit(c);
  EXPECT_TRUE(has_rule(report, "FTL-N002"))
      << "a current source has infinite output impedance at DC";
  EXPECT_TRUE(has_rule(report, "FTL-N001"));
}

TEST(CheckCircuit, OpaqueDeviceSkipsSingularityPass) {
  // A device that keeps the default (opaque) view must not let N007 claim
  // its nodes are unmatchable — absence of pattern info proves nothing.
  class Mystery : public spice::Device {
   public:
    Mystery(std::string name, int a) : Device(std::move(name)), a_(a) {}
    void stamp(spice::Stamper& s, const spice::EvalContext&) const override {
      s.conductance(a_, spice::Circuit::kGround, 1e-3);
    }

   private:
    int a_;
  };
  spice::Circuit c;
  const int a = c.node("a");
  c.add(std::make_unique<Mystery>("U1", a));
  c.add(std::make_unique<spice::Resistor>("R1", a, spice::Circuit::kGround, 1e3));
  const Report report = check::check_circuit(c);
  EXPECT_FALSE(has_rule(report, "FTL-N007")) << report.render_text();
}

TEST(CheckCircuit, DuplicateNamesOnAssembledCircuit) {
  spice::Circuit c;
  const int a = c.node("a");
  c.add(std::make_unique<spice::Resistor>("R1", a, spice::Circuit::kGround, 1e3));
  c.add(std::make_unique<spice::Resistor>("r1", a, spice::Circuit::kGround, 2e3));
  EXPECT_TRUE(has_rule(check::check_circuit(c), "FTL-N004"));
}

// ---------------------------------------------------------------------------
// Pre-solve gate

TEST(PresolveGate, AbortsSolveWithReport) {
  spice::Circuit c = divider();
  const int mid = c.find_node("mid");
  c.add(std::make_unique<spice::Capacitor>("C1", mid, c.node("float"), 1e-12));
  check::install_presolve_gate(c);
  try {
    spice::dc_operating_point(c);
    FAIL() << "expected CheckError";
  } catch (const check::CheckError& e) {
    EXPECT_FALSE(e.report().ok());
    EXPECT_TRUE(has_rule(e.report(), "FTL-N002"));
    EXPECT_NE(std::string(e.what()).find("FTL-N002"), std::string::npos);
  }
}

TEST(PresolveGate, AddingDeviceRearmsGate) {
  spice::Circuit c = divider();
  const int mid = c.find_node("mid");
  c.add(std::make_unique<spice::Capacitor>("C1", mid, c.node("float"), 1e-12));
  check::install_presolve_gate(c);
  EXPECT_THROW(spice::dc_operating_point(c), check::CheckError);
  // Fix the topology; the gate re-runs and now passes.
  c.add(std::make_unique<spice::Resistor>("RF", c.find_node("float"),
                                          spice::Circuit::kGround, 1e6));
  const spice::OpResult op = spice::dc_operating_point(c);
  EXPECT_TRUE(op.converged);
}

TEST(PresolveGate, DisabledGateReportsNothing) {
  spice::Circuit c = divider();
  check::GateOptions options;
  options.enabled = false;
  check::install_presolve_gate(c, options);
  EXPECT_TRUE(spice::dc_operating_point(c).converged);
}

TEST(PresolveGate, RunsOncePerTopology) {
  spice::Circuit c = divider();
  int runs = 0;
  c.set_presolve_hook([&runs](const spice::Circuit&) { ++runs; });
  (void)spice::dc_operating_point(c);
  (void)spice::dc_operating_point(c);
  EXPECT_EQ(runs, 1);
}

// ---------------------------------------------------------------------------
// Lattice rules

TEST(LatticeCheck, PaperMappingsPassWithoutErrorsOrWarnings) {
  for (const lattice::Lattice& lat :
       {lattice::xor3_lattice_3x3(), lattice::xor3_lattice_3x4()}) {
    const Report report = check::check_lattice(lat);
    EXPECT_EQ(report.errors(), 0) << report.render_text();
    EXPECT_EQ(report.warnings(), 0) << report.render_text();
  }
}

TEST(LatticeCheck, UnreachableSwitch) {
  // (1,2) is walled off by constant-0 neighbours.
  lattice::Lattice lat(3, 3, 3, {"a", "b", "c"});
  lat.set(0, 0, lattice::CellValue::of(0));
  lat.set(0, 1, lattice::CellValue::of(1));
  lat.set(1, 0, lattice::CellValue::of(0, false));
  lat.set(1, 2, lattice::CellValue::of(2));
  lat.set(2, 0, lattice::CellValue::of(1, false));
  lat.set(2, 1, lattice::CellValue::of(2, false));
  const Report report = check::check_lattice(lat);
  const Diagnostic& d = first_of(report, "FTL-L001");
  EXPECT_EQ(d.object, "(1,2)");
}

TEST(LatticeCheck, UnusedVariable) {
  lattice::Lattice lat(2, 2, 3, {"a", "b", "c"});
  lat.set(0, 0, lattice::CellValue::of(0));
  lat.set(1, 0, lattice::CellValue::of(1));
  lat.set(0, 1, lattice::CellValue::of(0));
  lat.set(1, 1, lattice::CellValue::of(1));
  const Report report = check::check_lattice(lat);
  const Diagnostic& d = first_of(report, "FTL-L002");
  EXPECT_EQ(d.object, "c");
  EXPECT_EQ(d.severity, Severity::kWarning);
}

TEST(LatticeCheck, OutOfRangeLiteral) {
  // Lattice::set enforces the literal-range invariant itself, so FTL-L003 is
  // a defensive backstop: it can only fire on a Lattice whose invariants were
  // bypassed (e.g. a future deserializer). Verify both halves of the
  // contract — construction rejects the bad literal, and a well-formed
  // lattice never produces L003.
  lattice::Lattice lat(1, 1, 2, {"a", "b"});
  EXPECT_THROW(lat.set(0, 0, lattice::CellValue::of(5)),
               ftl::ContractViolation);
  lat.set(0, 0, lattice::CellValue::of(1));
  EXPECT_FALSE(has_rule(check::check_lattice(lat), "FTL-L003"));
}

TEST(LatticeCheck, RedundantRowIsNote) {
  // Two identical rows of 'a': either one can go.
  lattice::Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, lattice::CellValue::of(0));
  lat.set(1, 0, lattice::CellValue::of(0));
  const Report report = check::check_lattice(lat);
  EXPECT_TRUE(has_rule(report, "FTL-L004"));
  EXPECT_TRUE(report.clean()) << "redundancy is a note, not a warning";
}

TEST(LatticeCheck, ConstantFunctionIsNote) {
  lattice::Lattice lat(1, 1, 1, {"a"});
  lat.set(0, 0, lattice::CellValue::one());
  const Report report = check::check_lattice(lat);
  EXPECT_TRUE(has_rule(report, "FTL-L005"));
  // 'a' is also unused; the note itself must not break clean().
  EXPECT_TRUE(report.ok());
}

TEST(LatticeCheck, SemanticSkipPastBudgetIsL009) {
  // 13 variables exceed the 12-variable re-realization budget: the semantic
  // passes must announce they were skipped instead of staying silent.
  lattice::Lattice lat(2, 1, 13);
  lat.set(0, 0, lattice::CellValue::of(0));
  lat.set(1, 0, lattice::CellValue::of(12));
  const Report report = check::check_lattice(lat);
  const Diagnostic& d = first_of(report, "FTL-L009");
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_NE(d.message.find("--certify"), std::string::npos) << d.message;
  EXPECT_FALSE(has_rule(report, "FTL-L004"));

  // Under the budget, or with semantic off, no L009.
  lattice::Lattice small(1, 1, 1);
  small.set(0, 0, lattice::CellValue::of(0));
  EXPECT_FALSE(has_rule(check::check_lattice(small), "FTL-L009"));
  check::LatticeCheckOptions structural_only;
  structural_only.semantic = false;
  EXPECT_FALSE(has_rule(check::check_lattice(lat, structural_only),
                        "FTL-L009"));
}

// ---------------------------------------------------------------------------
// SAT-backed audits (FTL-L006/L007/L008)

TEST(SatAudit, CertifiedRedundantRowAndSmallerLattice) {
  // Two identical rows of 'a': either row is removable (L006, the certified
  // sibling of L004), and a 1×1 lattice realizes the same function (L008).
  lattice::Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, lattice::CellValue::of(0));
  lat.set(1, 0, lattice::CellValue::of(0));
  check::LatticeSatAuditOptions options;
  options.certify = true;
  const check::LatticeSatAudit audit = check::audit_lattice_sat(lat, options);
  EXPECT_TRUE(has_rule(audit.report, "FTL-L006"));
  EXPECT_EQ(first_of(audit.report, "FTL-L006").severity, Severity::kNote);
  EXPECT_TRUE(has_rule(audit.report, "FTL-L008"));
  EXPECT_FALSE(has_rule(audit.report, "FTL-L007"));
  EXPECT_FALSE(has_rule(audit.report, "FTL-E003"));
  // Every UNSAT consumed by the audit came back checker-approved.
  EXPECT_GT(audit.unsat_verdicts, 0);
  EXPECT_EQ(audit.certified_unsat, audit.unsat_verdicts);
  EXPECT_EQ(audit.proof_failures, 0);
  EXPECT_GT(audit.queries, 0);
}

TEST(SatAudit, NeverConductingSwitchIsL007WithCore) {
  // Column [a; !a; a]: every top-to-bottom path demands a AND !a, so no
  // switch ever conducts — invisible to the flood fill (FTL-L001 stays
  // quiet; no constant-0 cells), certified by the SAT pass.
  lattice::Lattice lat(3, 1, 1, {"a"});
  lat.set(0, 0, lattice::CellValue::of(0));
  lat.set(1, 0, lattice::CellValue::of(0, false));
  lat.set(2, 0, lattice::CellValue::of(0));
  EXPECT_FALSE(has_rule(check::check_lattice(lat), "FTL-L001"));

  check::LatticeSatAuditOptions options;
  options.certify = true;
  options.suboptimal = false;  // focus on the L007 pass
  const check::LatticeSatAudit audit = check::audit_lattice_sat(lat, options);
  for (const char* cell : {"(0,0)", "(1,0)", "(2,0)"}) {
    bool found = false;
    for (const Diagnostic& d : audit.report.diagnostics()) {
      if (d.rule == "FTL-L007" && d.object == cell) found = true;
    }
    EXPECT_TRUE(found) << "no FTL-L007 at " << cell;
  }
  const Diagnostic& d = first_of(audit.report, "FTL-L007");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("UNSAT core: cells"), std::string::npos)
      << d.message;
  EXPECT_EQ(audit.certified_unsat, audit.unsat_verdicts);
  EXPECT_EQ(audit.proof_failures, 0);
}

TEST(SatAudit, CoreMinimizedFindingsPastTheTwelveVarWall) {
  // A 13-variable lattice: check_lattice's semantic passes bail (L009
  // above), but the SAT audit still proves findings at this size — and the
  // greedy deletion pass shrinks each UNSAT core to a handful of cells
  // instead of citing the whole 3×3 array.
  lattice::Lattice lat(3, 3, 13);
  for (int c = 0; c < 3; ++c) {
    lat.set(0, c, lattice::CellValue::of(0));          // top row: x0
    lat.set(2, c, lattice::CellValue::of(0, false));   // bottom row: !x0
    lat.set(1, c, lattice::CellValue::of(1 + c));      // middle: x1..x3
  }
  check::LatticeSatAuditOptions options;
  options.certify = true;
  options.suboptimal = false;
  const check::LatticeSatAudit audit = check::audit_lattice_sat(lat, options);
  ASSERT_TRUE(has_rule(audit.report, "FTL-L007"));
  // Core minimization: refuting "some path through (1,1) conducts" needs
  // every boundary escape blocked — the six x0/!x0 cells — but never the
  // middle row's x1..x3 guards, which the deletion pass must have dropped.
  for (const Diagnostic& d : audit.report.diagnostics()) {
    if (d.rule != "FTL-L007" || d.object != "(1,1)") continue;
    const std::size_t at = d.message.find("UNSAT core: ");
    ASSERT_NE(at, std::string::npos) << d.message;
    int cells = 0;
    for (std::size_t i = at; i < d.message.size(); ++i) {
      if (d.message[i] == '(') ++cells;
    }
    EXPECT_LE(cells, 6) << "core not minimized: " << d.message;
    EXPECT_GE(cells, 2) << "a clash needs two cells: " << d.message;
    EXPECT_EQ(d.message.find("(1,0)", at), std::string::npos) << d.message;
    EXPECT_EQ(d.message.find("(1,2)", at), std::string::npos) << d.message;
  }
  EXPECT_EQ(audit.certified_unsat, audit.unsat_verdicts);
  EXPECT_EQ(audit.proof_failures, 0);
  EXPECT_GT(audit.unsat_verdicts, 0);
}

TEST(SatAudit, MinimalLatticeAuditsCleanWithCertifiedNegatives) {
  // The paper's 3×3 XOR3 mapping: nothing removable, nothing dead, and no
  // smaller shape realizes XOR3 — the L008 infeasibility answers are UNSAT
  // verdicts too, and must come back certified.
  check::LatticeSatAuditOptions options;
  options.certify = true;
  const check::LatticeSatAudit audit =
      check::audit_lattice_sat(lattice::xor3_lattice_3x3(), options);
  EXPECT_FALSE(has_rule(audit.report, "FTL-L006")) << audit.report.render_text();
  EXPECT_FALSE(has_rule(audit.report, "FTL-L007")) << audit.report.render_text();
  EXPECT_FALSE(has_rule(audit.report, "FTL-L008")) << audit.report.render_text();
  EXPECT_FALSE(has_rule(audit.report, "FTL-E003"));
  EXPECT_GE(audit.unsat_verdicts, 2) << "both smaller shapes are infeasible";
  EXPECT_EQ(audit.certified_unsat, audit.unsat_verdicts);
  EXPECT_EQ(audit.proof_failures, 0);
}

TEST(SatAudit, DegenerateLatticesReturnEmptyAudits) {
  // Zero declared variables: nothing to audit semantically (constant cells
  // only); the audit declines instead of encoding an empty input space.
  lattice::Lattice no_vars(2, 2, 0);
  const check::LatticeSatAudit audit = check::audit_lattice_sat(no_vars);
  EXPECT_TRUE(audit.report.diagnostics().empty());
  EXPECT_EQ(audit.queries, 0);
}

TEST(Equivalence, CertifiedEquivalenceChecksTheMiterProofs) {
  check::EquivalenceOptions options;
  options.certify = true;
  const auto verdict = check::verify_equivalence(
      lattice::xor3_lattice_3x3(), lattice::xor3_truth_table(), options);
  EXPECT_TRUE(verdict.realizes);
  EXPECT_TRUE(verdict.certified);
  EXPECT_GE(verdict.proof_check_ms, 0.0);
  EXPECT_TRUE(check::check_equivalence(lattice::xor3_lattice_3x3(),
                                       lattice::xor3_truth_table(), options)
                  .clean());

  // Non-equivalence yields a counterexample, never a certificate.
  lattice::Lattice broken = lattice::xor3_lattice_3x3();
  broken.set(1, 1, lattice::CellValue::zero());
  const auto refuted = check::verify_equivalence(
      broken, lattice::xor3_truth_table(), options);
  EXPECT_FALSE(refuted.realizes);
  EXPECT_FALSE(refuted.certified);
  ASSERT_TRUE(refuted.counterexample.has_value());
}

// ---------------------------------------------------------------------------
// Equivalence

TEST(Equivalence, PaperXor3MappingRealizesXor3) {
  const auto verdict = check::verify_equivalence(lattice::xor3_lattice_3x3(),
                                                lattice::xor3_truth_table());
  EXPECT_TRUE(verdict.realizes);
  EXPECT_FALSE(verdict.counterexample.has_value());
  EXPECT_TRUE(check::check_equivalence(lattice::xor3_lattice_3x3(),
                                       lattice::xor3_truth_table())
                  .clean());
}

TEST(Equivalence, MutatedMappingYieldsRealCounterexample) {
  lattice::Lattice lat = lattice::xor3_lattice_3x3();
  lat.set(1, 1, lattice::CellValue::zero());  // kill the constant-1 cell
  const logic::TruthTable target = lattice::xor3_truth_table();
  const auto verdict = check::verify_equivalence(lat, target);
  ASSERT_FALSE(verdict.realizes);
  ASSERT_TRUE(verdict.counterexample.has_value());
  const std::uint64_t m = *verdict.counterexample;
  EXPECT_NE(lat.evaluate(m), target.get(m))
      << "counterexample must actually distinguish lattice and target";
  EXPECT_EQ(verdict.lattice_value, lat.evaluate(m));

  const Report report = check::check_equivalence(lat, target);
  const Diagnostic& d = first_of(report, "FTL-E001");
  EXPECT_NE(d.message.find("="), std::string::npos)
      << "message should spell out the assignment: " << d.message;
}

TEST(Equivalence, TruthTableFallbackAgreesWithPathConstruction) {
  // Forcing max_products = 0 exercises the realized_truth_table fallback;
  // both routes must agree on the same mapping.
  lattice::Lattice lat = lattice::xor3_lattice_3x3();
  lat.set(0, 1, lattice::CellValue::of(1));  // b' -> b, breaks equivalence
  const logic::TruthTable target = lattice::xor3_truth_table();
  check::EquivalenceOptions fallback;
  fallback.max_products = 0;
  const auto via_paths = check::verify_equivalence(lat, target);
  const auto via_table = check::verify_equivalence(lat, target, fallback);
  EXPECT_EQ(via_paths.realizes, via_table.realizes);
  ASSERT_TRUE(via_table.counterexample.has_value());
  const std::uint64_t m = *via_table.counterexample;
  EXPECT_NE(lat.evaluate(m), target.get(m));
}

TEST(Equivalence, VariableCountMismatchIsE002) {
  const Report report = check::check_equivalence(
      lattice::xor3_lattice_3x3(), logic::TruthTable::from_bits(2, 0b0110));
  EXPECT_TRUE(has_rule(report, "FTL-E002"));
  EXPECT_FALSE(has_rule(report, "FTL-E001"));
}

// ---------------------------------------------------------------------------
// Pipeline-generated circuits (acceptance: everything we ship lints clean)

TEST(PipelineLint, GeneratedBenchCircuitsAreClean) {
  jobs::PipelineOptions options;
  options.chain_max = 5;  // keep the long-chain build quick
  for (const jobs::BenchCircuit& bench : jobs::pipeline_bench_circuits(options)) {
    const Report report = check::check_circuit(bench.circuit);
    EXPECT_TRUE(report.clean()) << bench.name << ":\n" << report.render_text();
  }
}

}  // namespace
