// The paper pipeline as a job graph: DAG shape, target resolution, and a
// reduced-size end-to-end run (cold compute, then a fully warm rerun).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "ftl/jobs/pipeline.hpp"
#include "ftl/jobs/scheduler.hpp"
#include "ftl/jobs/telemetry.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;

jobs::PipelineOptions quick_options() {
  jobs::PipelineOptions o;
  o.mesh = 12;  // the junctionless terminal pads vanish on coarser meshes
  o.sweep_points = 7;
  o.chain_max = 4;
  o.transient_dt = 1e-9;
  o.transient_periods = 2;
  return o;
}

TEST(PaperPipeline, GraphShapeMatchesThePaper) {
  const jobs::PaperPipeline p = jobs::build_paper_pipeline(quick_options());
  EXPECT_EQ(p.graph.size(), 21u);  // 20 paper stages + the sweep_batch stage
  // Spot-check the §III -> §IV -> §V dependency spine.
  const jobs::JobId fig5 = p.graph.find("fig5");
  ASSERT_GE(fig5, 0);
  EXPECT_EQ(p.graph.job(fig5).deps.size(), 2u);
  const jobs::JobId fit_a = p.graph.find("fit_type_a");
  ASSERT_GE(fit_a, 0);
  EXPECT_EQ(p.graph.job(fit_a).deps,
            std::vector<jobs::JobId>{p.graph.find("tcad_fit_dsff")});
  const jobs::JobId fig11t = p.graph.find("fig11_transient");
  ASSERT_GE(fig11t, 0);
  EXPECT_EQ(p.graph.job(fig11t).deps,
            (std::vector<jobs::JobId>{fit_a, p.graph.find("fig11_dc")}));
  // Deps-first insertion: every dependency id precedes its consumer.
  for (const jobs::JobId id : p.all) {
    for (const jobs::JobId dep : p.graph.job(id).deps) EXPECT_LT(dep, id);
  }
  // Changing a pipeline knob changes the affected jobs' cache identity.
  jobs::PipelineOptions finer = quick_options();
  finer.mesh = 16;
  const jobs::PaperPipeline q = jobs::build_paper_pipeline(finer);
  EXPECT_NE(p.graph.job(p.graph.find("tcad_square_hfo2")).param_digest,
            q.graph.job(q.graph.find("tcad_square_hfo2")).param_digest);
}

TEST(PaperPipeline, ResolveTargetsHandlesNamesPrefixesAndErrors) {
  const jobs::PaperPipeline p = jobs::build_paper_pipeline(quick_options());
  EXPECT_TRUE(jobs::resolve_targets(p, {"all"}).empty());  // empty = whole DAG
  EXPECT_TRUE(jobs::resolve_targets(p, {}).empty());
  const std::vector<jobs::JobId> one = jobs::resolve_targets(p, {"fig10"});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(p.graph.job(one[0]).name, "fig10");
  // "fig11" is a prefix group: fig11_dc + fig11_transient.
  EXPECT_EQ(jobs::resolve_targets(p, {"fig11"}).size(), 2u);
  EXPECT_EQ(jobs::resolve_targets(p, {"fig12"}).size(), 2u);
  EXPECT_THROW(jobs::resolve_targets(p, {"fig99"}), ftl::Error);
}

TEST(PaperPipeline, Fig12BranchRunsColdThenFullyWarm) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "ftl_pipeline_fig12";
  std::filesystem::remove_all(dir);

  const jobs::PaperPipeline p = jobs::build_paper_pipeline(quick_options());
  jobs::RunOptions options;
  options.cache_dir = dir.string();
  options.targets = jobs::resolve_targets(p, {"fig12"});

  const jobs::RunResult cold = jobs::run_graph(p.graph, options);
  ASSERT_TRUE(cold.ok());
  // Closure: tcad_fit_dsff -> fit_type_a -> fig12a -> fig12b.
  EXPECT_EQ(cold.succeeded, 4);
  EXPECT_EQ(cold.reports[static_cast<std::size_t>(p.graph.find("fig5"))].status,
            jobs::JobStatus::kNotRun);
  const jobs::JobId fig12b = p.graph.find("fig12b");
  const auto& artifact = cold.reports[static_cast<std::size_t>(fig12b)].artifact;
  ASSERT_TRUE(artifact);
  // Longer chains need at least the two-switch supply voltage.
  EXPECT_DOUBLE_EQ(artifact->scalar("monotone"), 1.0);
  EXPECT_GE(artifact->scalar("growth"), 1.0);

  jobs::CaptureSink sink;
  options.sink = &sink;
  const jobs::RunResult warm = jobs::run_graph(p.graph, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cache_hits, 4);
  EXPECT_EQ(warm.succeeded, 0);
  EXPECT_EQ(sink.count("cache_hit"), 4);
  EXPECT_EQ(warm.reports[static_cast<std::size_t>(fig12b)].artifact->serialize(),
            artifact->serialize());
}

TEST(PaperPipeline, CalibrationDigestIsStableWithinAProcess) {
  EXPECT_EQ(jobs::calibration_digest(), jobs::calibration_digest());
  EXPECT_NE(jobs::calibration_digest(), 0u);
}

}  // namespace
