// ftl::serve — protocol round-trips for every op, admission control
// (overloaded / shutting_down), deadline propagation, graceful drain,
// response caching, the stats registry, concurrent-vs-serial byte equality,
// and the TCP server/client pair. Everything runs in-process on ephemeral
// ports; no external daemon is involved.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "ftl/jobs/telemetry.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/serve/client.hpp"
#include "ftl/serve/json.hpp"
#include "ftl/serve/server.hpp"
#include "ftl/serve/service.hpp"
#include "ftl/serve/stats.hpp"

namespace {

using ftl::serve::Client;
using ftl::serve::JsonValue;
using ftl::serve::Server;
using ftl::serve::ServerOptions;
using ftl::serve::Service;
using ftl::serve::ServiceOptions;
using ftl::serve::StatsRegistry;

JsonValue reply(Service& service, const std::string& line) {
  return JsonValue::parse(service.handle_now(line));
}

void expect_error(const JsonValue& r, const std::string& code) {
  EXPECT_FALSE(r.bool_or("ok", true)) << r.dump();
  const JsonValue* error = r.find("error");
  ASSERT_NE(error, nullptr) << r.dump();
  EXPECT_EQ(error->as_string(), code) << r.dump();
  ASSERT_NE(r.find("message"), nullptr) << r.dump();
}

// --- stats registry -------------------------------------------------------

TEST(ServeStats, HistogramPercentilesBracketTheData) {
  ftl::serve::LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min_us(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);
  EXPECT_NEAR(h.mean_us(), 500.5, 1e-9);
  // Log buckets have ~14% resolution; accept that band around the truth.
  EXPECT_NEAR(h.percentile(50.0), 500.0, 500.0 * 0.2);
  EXPECT_NEAR(h.percentile(95.0), 950.0, 950.0 * 0.2);
  EXPECT_NEAR(h.percentile(99.0), 990.0, 990.0 * 0.2);
  EXPECT_LE(h.percentile(50.0), h.percentile(95.0));
  EXPECT_LE(h.percentile(95.0), h.percentile(99.0));
}

TEST(ServeStats, RegistryRollsUpPerOpAndTotal) {
  StatsRegistry reg;
  reg.record("eval", "ok", 100.0, false);
  reg.record("eval", "ok", 200.0, true);
  reg.record("synth", "bad_request", 50.0, false);
  EXPECT_EQ(reg.total_requests(), 3u);

  const JsonValue snap = reg.snapshot();
  const JsonValue* total = snap.find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->find("requests")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(total->find("cache_hits")->as_number(), 1.0);

  const JsonValue* ops = snap.find("ops");
  ASSERT_NE(ops, nullptr);
  const JsonValue* eval = ops->find("eval");
  ASSERT_NE(eval, nullptr);
  EXPECT_DOUBLE_EQ(eval->find("requests")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(eval->find("outcomes")->find("ok")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(
      ops->find("synth")->find("outcomes")->find("bad_request")->as_number(),
      1.0);
  const JsonValue* latency = eval->find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->find("mean_us")->as_number(), 150.0);
}

// --- protocol round-trips, one per op -------------------------------------

TEST(ServeProtocol, PingEchoesIdVerbatim) {
  Service service({.workers = 1});
  const JsonValue r =
      reply(service, R"({"op":"ping","id":{"seq":7,"tag":"x"}})");
  EXPECT_TRUE(r.bool_or("ok", false));
  EXPECT_TRUE(r.find("pong")->as_bool());
  ASSERT_NE(r.find("id"), nullptr);
  EXPECT_EQ(r.find("id")->dump(), R"({"seq":7,"tag":"x"})");
}

TEST(ServeProtocol, SynthAltunRealizesTheTarget) {
  Service service({.workers = 1});
  const JsonValue r =
      reply(service, R"({"op":"synth","expr":"a b + b c + a c"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_TRUE(r.find("found")->as_bool());
  EXPECT_TRUE(r.find("realizes")->as_bool());
  const JsonValue* lat = r.find("lattice");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("rows")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(lat->find("cols")->as_number(), 3.0);
  EXPECT_EQ(lat->find("cells")->items().size(), 9u);
}

TEST(ServeProtocol, SynthExhaustiveFindsMinimalAnd) {
  Service service({.workers = 1});
  // A 2x1 series pair is the minimal AND lattice.
  const JsonValue r = reply(
      service,
      R"({"op":"synth","expr":"a b","method":"exhaustive","rows":2,"cols":1})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_TRUE(r.find("found")->as_bool());
  EXPECT_DOUBLE_EQ(r.find("switch_count")->as_number(), 2.0);
  EXPECT_TRUE(r.find("realizes")->as_bool());
}

TEST(ServeProtocol, SynthSearchEchoesTheDecisionSeed) {
  Service service({.workers = 1});
  const JsonValue r = reply(
      service,
      R"({"op":"synth","expr":"a b","method":"exhaustive","rows":2,"cols":1,"seed":9})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  ASSERT_NE(r.find("seed"), nullptr) << r.dump();
  EXPECT_DOUBLE_EQ(r.find("seed")->as_number(), 9.0);
  // The closed-form method takes no seed and reports none.
  const JsonValue altun = reply(service, R"({"op":"synth","expr":"a b"})");
  EXPECT_EQ(altun.find("seed"), nullptr) << altun.dump();
}

TEST(ServeProtocol, SynthExhaustiveBoundExceededIsTyped) {
  Service service({.workers = 1});
  // 14 candidate values on 20 cells is ~8e22 >> the 4e12 default budget;
  // the refusal must be machine-readable, not a generic bad_request.
  const JsonValue r = reply(
      service,
      R"({"op":"synth","expr":"a b c d e f","method":"exhaustive","rows":4,"cols":5})");
  expect_error(r, "bound_exceeded");
  ASSERT_NE(r.find("candidates"), nullptr) << r.dump();
  ASSERT_NE(r.find("budget"), nullptr) << r.dump();
  EXPECT_GT(r.find("candidates")->as_number(), r.find("budget")->as_number());
}

TEST(ServeProtocol, SynthSatSolvesAndReportsSolverWork) {
  Service service({.workers = 1});
  const JsonValue r = reply(
      service,
      R"({"op":"synth_sat","expr":"a b + c d","rows":3,"cols":3,"seed":5})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_TRUE(r.find("found")->as_bool()) << r.dump();
  EXPECT_FALSE(r.find("proven_infeasible")->as_bool());
  EXPECT_FALSE(r.find("budget_exhausted")->as_bool());
  EXPECT_DOUBLE_EQ(r.find("seed")->as_number(), 5.0);
  EXPECT_GE(r.find("cegar_rounds")->as_number(), 1.0);
  EXPECT_GE(r.find("care_minterms")->as_number(), 1.0);
  const JsonValue* lat = r.find("lattice");
  ASSERT_NE(lat, nullptr) << r.dump();
  EXPECT_EQ(lat->find("cells")->items().size(), 9u);
  const JsonValue* solver = r.find("solver");
  ASSERT_NE(solver, nullptr) << r.dump();
  EXPECT_GE(solver->find("solves")->as_number(), 1.0);
  EXPECT_GE(solver->find("propagations")->as_number(), 1.0);
}

TEST(ServeProtocol, SynthSatReportsInfeasibilityAsAResult) {
  Service service({.workers = 1});
  // XOR3 needs 3x3; on 2x2 the SAT core proves there is no mapping.
  const JsonValue r = reply(
      service,
      R"({"op":"synth_sat","expr":"a' b' c + a' b c' + a b' c' + a b c","rows":2,"cols":2})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_FALSE(r.find("found")->as_bool());
  EXPECT_TRUE(r.find("proven_infeasible")->as_bool()) << r.dump();
  EXPECT_EQ(r.find("lattice"), nullptr);
}

TEST(ServeProtocol, SynthSatCertifyChecksTheInfeasibilityProof) {
  Service service({.workers = 1});
  const JsonValue r = reply(
      service,
      R"({"op":"synth_sat","expr":"a' b' c + a' b c' + a b' c' + a b c",)"
      R"("rows":2,"cols":2,"certify":true})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_TRUE(r.find("proven_infeasible")->as_bool()) << r.dump();
  ASSERT_NE(r.find("proof"), nullptr) << r.dump();
  EXPECT_EQ(r.find("proof")->as_string(), "checked");

  // Feasible and uncertified runs carry no proof field at all.
  const JsonValue feasible = reply(
      service,
      R"({"op":"synth_sat","expr":"a b","rows":2,"cols":1,"certify":true})");
  EXPECT_TRUE(feasible.find("found")->as_bool()) << feasible.dump();
  EXPECT_EQ(feasible.find("proof"), nullptr) << feasible.dump();
}

TEST(ServeProtocol, SynthSatBudgetExhaustionIsExplicit) {
  Service service({.workers = 1});
  const JsonValue r = reply(
      service,
      R"({"op":"synth_sat","expr":"a b + c d","rows":3,"cols":3,"max_conflicts":0})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_FALSE(r.find("found")->as_bool());
  EXPECT_TRUE(r.find("budget_exhausted")->as_bool()) << r.dump();
}

TEST(ServeCache, SynthSatIsPureAndCached) {
  Service service({.workers = 1});
  const std::string line =
      R"({"op":"synth_sat","expr":"a b + a c","rows":2,"cols":2})";
  const std::string first = service.handle_now(line);
  EXPECT_EQ(service.handle_now(line), first);
  const JsonValue snap = service.stats().snapshot();
  EXPECT_DOUBLE_EQ(
      snap.find("ops")->find("synth_sat")->find("cache_hits")->as_number(),
      1.0);
}

// --- NPN lattice library ---------------------------------------------------

TEST(ServeLibrary, PermutedSynthSatAnswersFromTheLibraryWithZeroSolverWork) {
  Service service({.workers = 1});
  // Cold: the SAT engine runs and the result populates the library.
  const JsonValue cold = reply(
      service,
      R"({"op":"synth_sat","expr":"a b + c d","rows":2,"cols":2,"vars":["a","b","c","d"]})");
  EXPECT_TRUE(cold.find("found")->as_bool()) << cold.dump();
  EXPECT_EQ(cold.find("source")->as_string(), "engine") << cold.dump();

  const JsonValue before = reply(service, R"({"op":"stats"})");
  const double conflicts_before =
      before.find("sat_core")->find("conflicts")->as_number();
  const double solves_before =
      before.find("sat_core")->find("solves")->as_number();

  // Warm: the variable permutation (a b c d) -> (c d a b) is a different
  // request line AND a different truth table, so neither response cache can
  // help — only NPN canonicalization maps it to the stored class.
  const JsonValue warm = reply(
      service,
      R"({"op":"synth_sat","expr":"c d + a b","rows":2,"cols":2,"vars":["a","b","c","d"]})");
  EXPECT_TRUE(warm.find("found")->as_bool()) << warm.dump();
  EXPECT_EQ(warm.find("source")->as_string(), "library") << warm.dump();
  EXPECT_DOUBLE_EQ(warm.find("cegar_rounds")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(warm.find("solver")->find("solves")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(warm.find("solver")->find("conflicts")->as_number(), 0.0);
  // Same NPN class either way.
  ASSERT_NE(cold.find("npn_class"), nullptr) << cold.dump();
  ASSERT_NE(warm.find("npn_class"), nullptr) << warm.dump();
  EXPECT_EQ(cold.find("npn_class")->as_string(),
            warm.find("npn_class")->as_string());

  // The process-wide SAT core did not move: the hit really ran no solver.
  const JsonValue after = reply(service, R"({"op":"stats"})");
  EXPECT_DOUBLE_EQ(after.find("sat_core")->find("conflicts")->as_number(),
                   conflicts_before);
  EXPECT_DOUBLE_EQ(after.find("sat_core")->find("solves")->as_number(),
                   solves_before);
  const JsonValue* lib = after.find("library_core");
  ASSERT_NE(lib, nullptr);
  EXPECT_TRUE(lib->find("enabled")->as_bool());
  EXPECT_GE(lib->find("class_hits")->as_number(), 1.0);
  EXPECT_GE(lib->find("populates")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(lib->find("verify_rejects")->as_number(), 0.0);
}

TEST(ServeLibrary, SynthDefaultsToAutoAndReusesTheClassAcrossNegations) {
  Service service({.workers = 1});
  const JsonValue cold = reply(
      service, R"({"op":"synth","expr":"a b + b c","vars":["a","b","c"]})");
  EXPECT_TRUE(cold.bool_or("ok", false)) << cold.dump();
  EXPECT_EQ(cold.find("method")->as_string(), "auto");
  EXPECT_EQ(cold.find("source")->as_string(), "engine");
  EXPECT_TRUE(cold.find("realizes")->as_bool());
  // No seed for the closed-form/auto route (same contract as altun).
  EXPECT_EQ(cold.find("seed"), nullptr) << cold.dump();

  // Input negation of the same class: b(a + c) vs b'(a + c') etc.
  const JsonValue warm = reply(
      service, R"({"op":"synth","expr":"a b' + b' c","vars":["a","b","c"]})");
  EXPECT_TRUE(warm.bool_or("ok", false)) << warm.dump();
  EXPECT_EQ(warm.find("source")->as_string(), "library") << warm.dump();
  EXPECT_TRUE(warm.find("realizes")->as_bool()) << warm.dump();
  EXPECT_EQ(cold.find("npn_class")->as_string(),
            warm.find("npn_class")->as_string());
}

TEST(ServeLibrary, DisabledLibraryStillServesSynthFromTheEngines) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.library = false;
  Service service(opts);
  const JsonValue r = reply(
      service, R"({"op":"synth","expr":"a b + b c","vars":["a","b","c"]})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_EQ(r.find("source")->as_string(), "engine");
  EXPECT_EQ(r.find("npn_class"), nullptr) << r.dump();
  const JsonValue stats = reply(service, R"({"op":"stats"})");
  EXPECT_FALSE(stats.find("library_core")->find("enabled")->as_bool());
}

TEST(ServeLibrary, ExploreIncludesTheLibraryCandidateOnceWarm) {
  Service service({.workers = 1});
  // Warm the class with an exhaustive 2x2 mapping (4 cells) — strictly
  // smaller than anything the baseline would propose for this function.
  const JsonValue synth = reply(
      service,
      R"({"op":"synth","expr":"a b + c d","method":"exhaustive","rows":2,"cols":2,"vars":["a","b","c","d"]})");
  ASSERT_TRUE(synth.find("found")->as_bool()) << synth.dump();
  const JsonValue r = reply(
      service,
      R"({"op":"explore","expr":"c d + a b","vars":["a","b","c","d"],"try_smaller":false})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  bool has_library_candidate = false;
  for (const JsonValue& cand : r.find("candidates")->items()) {
    if (cand.find("method")->as_string() == "library") {
      has_library_candidate = true;
      EXPECT_DOUBLE_EQ(cand.find("rows")->as_number() *
                           cand.find("cols")->as_number(),
                       4.0);
    }
  }
  EXPECT_TRUE(has_library_candidate) << r.dump();
}

TEST(ServeProtocol, EvalFromExpressionReportsOnSet) {
  Service service({.workers = 1});
  const JsonValue r = reply(service, R"({"op":"eval","expr":"a b + b c + a c"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_DOUBLE_EQ(r.find("ones")->as_number(), 4.0);  // majority-of-3
  const JsonValue* on_set = r.find("on_set");
  ASSERT_NE(on_set, nullptr);
  EXPECT_EQ(on_set->dump(), "[3,5,6,7]");
}

TEST(ServeProtocol, EvalExplicitCellsWithAssignments) {
  Service service({.workers = 1});
  // 2x1 series lattice [a; b] realizes AND(a,b).
  const JsonValue r = reply(service,
                            R"({"op":"eval","rows":2,"cols":1,)"
                            R"("vars":["a","b"],"cells":["a","b"],)"
                            R"("assignments":[0,1,2,3],"sop":true})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_EQ(r.find("outputs")->dump(), "[0,0,0,1]");
  ASSERT_NE(r.find("sop"), nullptr);
  EXPECT_NE(r.find("sop")->as_string().find("a"), std::string::npos);
}

TEST(ServeProtocol, PathsCountsAndLists) {
  Service service({.workers = 1});
  const JsonValue r =
      reply(service, R"({"op":"paths","rows":2,"cols":2,"list_limit":10})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const double count =
      static_cast<double>(ftl::lattice::count_products(2, 2));
  EXPECT_DOUBLE_EQ(r.find("count")->as_number(), count);
  EXPECT_EQ(r.find("paths")->items().size(), static_cast<std::size_t>(count));
}

TEST(ServeProtocol, MetricsCharacterizesAndGate) {
  Service service({.workers = 1});
  const JsonValue r = reply(
      service, R"({"op":"metrics","expr":"a b","phase_ns":20,"dt_ns":0.5})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const JsonValue* metrics = r.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->find("functional")->as_bool());
  EXPECT_GT(metrics->find("propagation_delay_s")->as_number(), 0.0);
  EXPECT_GT(metrics->find("max_frequency_hz")->as_number(), 0.0);
}

TEST(ServeProtocol, ExploreRanksCandidates) {
  Service service({.workers = 1});
  const JsonValue r = reply(service,
                            R"({"op":"explore","expr":"a b","max_cells":4,)"
                            R"("complementary":false,"phase_ns":20,"dt_ns":0.5})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const JsonValue* candidates = r.find("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_FALSE(candidates->items().empty());
  const double best = r.find("best")->as_number();
  ASSERT_GE(best, 0.0);
  EXPECT_TRUE(candidates->items()[static_cast<std::size_t>(best)]
                  .find("metrics")
                  ->find("functional")
                  ->as_bool());
}

TEST(ServeProtocol, StatsReportsServiceGauges) {
  Service service({.workers = 2, .queue_depth = 8});
  reply(service, R"({"op":"ping"})");
  const JsonValue r = reply(service, R"({"op":"stats"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const JsonValue* svc = r.find("service");
  ASSERT_NE(svc, nullptr);
  EXPECT_DOUBLE_EQ(svc->find("workers")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(svc->find("queue_depth_limit")->as_number(), 8.0);
  EXPECT_FALSE(svc->find("draining")->as_bool());
  const JsonValue* ops = r.find("stats")->find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_NE(ops->find("ping"), nullptr);
  EXPECT_DOUBLE_EQ(ops->find("ping")->find("requests")->as_number(), 1.0);
}

TEST(ServeProtocol, StatsReportsEvalCoreCounters) {
  Service service({.workers = 1});
  const auto counters = [&service]() {
    const JsonValue r = reply(service, R"({"op":"stats"})");
    const JsonValue* ec = r.find("eval_core");
    EXPECT_NE(ec, nullptr) << r.dump();
    struct Snapshot {
      double assignments, blocks, lut_hits, lut_builds;
    };
    return Snapshot{ec->find("assignments")->as_number(),
                    ec->find("blocks")->as_number(),
                    ec->find("lut_hits")->as_number(),
                    ec->find("lut_builds")->as_number()};
  };
  const auto before = counters();
  EXPECT_GE(before.assignments, 0.0);
  // A full truth-table eval runs through the bitsliced kernel, so the
  // process-wide counters must advance (>= one 64-assignment block).
  const JsonValue r = reply(service, R"({"op":"eval","expr":"a b + b c + a c"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const auto after = counters();
  EXPECT_GE(after.blocks, before.blocks + 1.0);
  EXPECT_GE(after.assignments, before.assignments + 64.0);
  EXPECT_GE(after.lut_hits, before.lut_hits);
  EXPECT_GE(after.lut_builds, before.lut_builds);
}

TEST(ServeProtocol, StatsReportsSatCoreCounters) {
  Service service({.workers = 1});
  const auto sat_core = [&service]() {
    const JsonValue r = reply(service, R"({"op":"stats"})");
    const JsonValue* sc = r.find("sat_core");
    EXPECT_NE(sc, nullptr) << r.dump();
    struct Snapshot {
      double solves, sat, cegar_rounds, propagations;
    };
    return Snapshot{sc->find("solves")->as_number(),
                    sc->find("sat")->as_number(),
                    sc->find("cegar_rounds")->as_number(),
                    sc->find("propagations")->as_number()};
  };
  const auto before = sat_core();
  const JsonValue r = reply(
      service, R"({"op":"synth_sat","expr":"a b + a c","rows":2,"cols":2})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const auto after = sat_core();
  EXPECT_GE(after.solves, before.solves + 1.0);
  EXPECT_GE(after.sat, before.sat + 1.0);
  EXPECT_GE(after.cegar_rounds, before.cegar_rounds + 1.0);
  EXPECT_GE(after.propagations, before.propagations + 1.0);
}

TEST(ServeProtocol, SweepBatchRunsTheBatchedYieldSweep) {
  Service service({.workers = 1});
  const JsonValue r = reply(
      service, R"({"op":"sweep_batch","expr":"a b","trials":6,"seed":5})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_DOUBLE_EQ(r.find("trials")->as_number(), 6.0);
  EXPECT_EQ(r.find("engine")->as_string(), "batched");
  const double passing = r.find("passing")->as_number();
  EXPECT_GE(passing, 0.0);
  EXPECT_LE(passing, 6.0);
  const double yield = r.find("yield")->as_number();
  EXPECT_GE(yield, 0.0);
  EXPECT_LE(yield, 1.0);
  ASSERT_NE(r.find("worst_low"), nullptr);
  ASSERT_NE(r.find("worst_high"), nullptr);
}

TEST(ServeProtocol, SweepBatchPerTrialEngineMatchesBatchedBitwise) {
  // The per_trial engine is the differential baseline: same dice, fresh
  // netlist per (trial, code), standalone solves. The two engines must
  // agree byte for byte through the service too.
  Service service({.workers = 1});
  const JsonValue a = reply(
      service,
      R"({"op":"sweep_batch","expr":"a b + c","trials":8,"seed":11,)"
      R"("sigma_vth":0.2,"engine":"batched"})");
  const JsonValue b = reply(
      service,
      R"({"op":"sweep_batch","expr":"a b + c","trials":8,"seed":11,)"
      R"("sigma_vth":0.2,"engine":"per_trial"})");
  EXPECT_TRUE(a.bool_or("ok", false)) << a.dump();
  EXPECT_TRUE(b.bool_or("ok", false)) << b.dump();
  EXPECT_EQ(a.find("engine")->as_string(), "batched");
  EXPECT_EQ(b.find("engine")->as_string(), "per_trial");
  EXPECT_EQ(a.find("passing")->as_number(), b.find("passing")->as_number());
  EXPECT_EQ(a.find("worst_low")->as_number(),
            b.find("worst_low")->as_number());
  EXPECT_EQ(a.find("worst_high")->as_number(),
            b.find("worst_high")->as_number());
}

TEST(ServeProtocol, SweepBatchRejectsBadParameters) {
  Service service({.workers = 1});
  expect_error(reply(service, R"({"op":"sweep_batch","expr":"a b",)"
                              R"("engine":"magic"})"),
               "bad_request");
  expect_error(reply(service, R"({"op":"sweep_batch","expr":"a b",)"
                              R"("trials":0})"),
               "bad_request");
  expect_error(reply(service, R"({"op":"sweep_batch","expr":"a b",)"
                              R"("sigma_vth":-1})"),
               "bad_request");
}

TEST(ServeProtocol, StatsReportsSpiceAndBatchCoreCounters) {
  Service service({.workers = 1});
  const auto counters = [&service]() {
    const JsonValue r = reply(service, R"({"op":"stats"})");
    const JsonValue* spc = r.find("spice_core");
    const JsonValue* bc = r.find("batch_core");
    EXPECT_NE(spc, nullptr) << r.dump();
    EXPECT_NE(bc, nullptr) << r.dump();
    EXPECT_NE(spc->find("factors"), nullptr);
    EXPECT_NE(spc->find("dense_solves"), nullptr);
    EXPECT_NE(bc->find("symbolic_factors"), nullptr);
    EXPECT_NE(bc->find("lane_fallbacks"), nullptr);
    // The learnt-clause minimizer's counter rides in sat_core.
    EXPECT_NE(r.find("sat_core")->find("minimized_literals"), nullptr);
    struct Snapshot {
      double batches, lanes, newton;
    };
    return Snapshot{bc->find("batches")->as_number(),
                    bc->find("lanes")->as_number(),
                    bc->find("newton_iterations")->as_number()};
  };
  const auto before = counters();
  const JsonValue r = reply(
      service, R"({"op":"sweep_batch","expr":"a b","trials":5,"seed":2})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const auto after = counters();
  // One batch per worker chunk, one lane per Monte-Carlo trial.
  EXPECT_GE(after.batches, before.batches + 1.0);
  EXPECT_GE(after.lanes, before.lanes + 5.0);
  EXPECT_GT(after.newton, before.newton);
}

TEST(ServeProtocol, SleepRunsAndReportsDuration) {
  Service service({.workers = 1});
  const JsonValue r = reply(service, R"({"op":"sleep","ms":5})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_DOUBLE_EQ(r.find("slept_ms")->as_number(), 5.0);
}

TEST(ServeProtocol, ShutdownFlagsTheService) {
  Service service({.workers = 1});
  EXPECT_FALSE(service.shutdown_requested());
  const JsonValue r = reply(service, R"({"op":"shutdown"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_TRUE(service.shutdown_requested());
}

// --- protocol errors ------------------------------------------------------

TEST(ServeProtocol, MalformedRequestsAreBadRequests) {
  Service service({.workers = 1});
  expect_error(reply(service, "this is not json"), "bad_request");
  expect_error(reply(service, "[1,2,3]"), "bad_request");  // not an object
  expect_error(reply(service, R"({"op":"no_such_op"})"), "bad_request");
  expect_error(reply(service, R"({"op":"synth"})"), "bad_request");  // no expr
  expect_error(reply(service, R"({"op":"paths","rows":99,"cols":2})"),
               "bad_request");
  expect_error(reply(service, R"({"op":"eval","expr":"a b","assignments":[9]})"),
               "bad_request");
  // The id still comes back on errors so clients can correlate.
  const JsonValue r = reply(service, R"({"op":"nope","id":42})");
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 42.0);
}

TEST(ServeProtocol, LintNetlistReportsFindings) {
  Service service({.workers = 1});
  // "ok" means the lint ran; the findings live inside "report".
  const JsonValue r = reply(
      service,
      R"({"op":"lint","netlist":"* t\nV1 in 0 1.2\nR1 in out 1k\nC1 out mid 1p\nC2 mid 0 1p\n.end\n"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const JsonValue* report = r.find("report");
  ASSERT_NE(report, nullptr) << r.dump();
  EXPECT_FALSE(report->find("clean")->as_bool());
  EXPECT_DOUBLE_EQ(report->find("errors")->as_number(), 1.0);
  const auto& diags = report->find("diagnostics")->items();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].find("rule")->as_string(), "FTL-N002");
  EXPECT_EQ(diags[0].find("object")->as_string(), "mid");
  EXPECT_DOUBLE_EQ(diags[0].find("line")->as_number(), 4.0);
}

TEST(ServeProtocol, LintLatticeWithTargetRunsEquivalence) {
  Service service({.workers = 1});
  // The paper's 3x3 XOR3 mapping with the centre cell broken: the lattice
  // passes stay quiet but equivalence must produce FTL-E001.
  const JsonValue r = reply(
      service,
      R"({"op":"lint","rows":3,"cols":3,"vars":["a","b","c"],)"
      R"("cells":["a","b'","a'","c","0","c'","a'","b","a"],)"
      R"("target":"a' b' c + a' b c' + a b' c' + a b c"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  const JsonValue* report = r.find("report");
  ASSERT_NE(report, nullptr) << r.dump();
  EXPECT_FALSE(report->find("clean")->as_bool());
  bool saw_e001 = false;
  for (const JsonValue& d : report->find("diagnostics")->items()) {
    if (d.find("rule")->as_string() == "FTL-E001") saw_e001 = true;
  }
  EXPECT_TRUE(saw_e001) << r.dump();
}

TEST(ServeProtocol, LintEquivBackendIsSelectable) {
  Service service({.workers = 1});
  // The same broken mapping as above must be caught by the SAT miter too,
  // and a bogus backend name is a bad request, not a silent default.
  const std::string broken =
      R"({"op":"lint","rows":3,"cols":3,"vars":["a","b","c"],)"
      R"("cells":["a","b'","a'","c","0","c'","a'","b","a"],)"
      R"("target":"a' b' c + a' b c' + a b' c' + a b c")";
  const JsonValue r = reply(service, broken + R"(,"equiv":"sat"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  bool saw_e001 = false;
  for (const JsonValue& d : r.find("report")->find("diagnostics")->items()) {
    if (d.find("rule")->as_string() == "FTL-E001") saw_e001 = true;
  }
  EXPECT_TRUE(saw_e001) << r.dump();
  expect_error(reply(service, broken + R"(,"equiv":"nope"})"), "bad_request");
}

TEST(ServeProtocol, LintLatticeCleanMapping) {
  Service service({.workers = 1});
  const JsonValue r = reply(
      service,
      R"({"op":"lint","rows":3,"cols":3,"vars":["a","b","c"],)"
      R"("cells":["a","b'","a'","c","1","c'","a'","b","a"],)"
      R"("target":"a' b' c + a' b c' + a b' c' + a b c"})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  EXPECT_TRUE(r.find("report")->find("clean")->as_bool()) << r.dump();
}

TEST(ServeProtocol, LintCertifyAuditsTheLatticeAndReportsProofStatus) {
  Service service({.workers = 1});
  // A 2x1 column [a; a]: row 1 is certifiably removable (FTL-L006) and the
  // 1x1 lattice realizing the same function is found (FTL-L008). Every
  // UNSAT behind those findings passes the DRAT checker -> "checked".
  const JsonValue r = reply(
      service,
      R"({"op":"lint","rows":2,"cols":1,"vars":["a"],"cells":["a","a"],)"
      R"("certify":true})");
  EXPECT_TRUE(r.bool_or("ok", false)) << r.dump();
  ASSERT_NE(r.find("proof"), nullptr) << r.dump();
  EXPECT_EQ(r.find("proof")->as_string(), "checked");
  bool saw_l006 = false;
  bool saw_e003 = false;
  for (const JsonValue& d : r.find("report")->find("diagnostics")->items()) {
    if (d.find("rule")->as_string() == "FTL-L006") saw_l006 = true;
    if (d.find("rule")->as_string() == "FTL-E003") saw_e003 = true;
  }
  EXPECT_TRUE(saw_l006) << r.dump();
  EXPECT_FALSE(saw_e003) << r.dump();

  // Without certify the audits stay off and there is no proof field.
  const JsonValue plain = reply(
      service,
      R"({"op":"lint","rows":2,"cols":1,"vars":["a"],"cells":["a","a"]})");
  EXPECT_EQ(plain.find("proof"), nullptr) << plain.dump();
}

TEST(ServeStats, SatCoreExposesProofCounters) {
  Service service({.workers = 1});
  const JsonValue before = reply(service, R"({"op":"stats"})");
  const double checks_before =
      before.find("sat_core")->find("proof_checks")->as_number();
  const JsonValue r = reply(
      service,
      R"({"op":"synth_sat","expr":"a' b' c + a' b c' + a b' c' + a b c",)"
      R"("rows":2,"cols":2,"certify":true})");
  EXPECT_TRUE(r.find("proven_infeasible")->as_bool()) << r.dump();
  const JsonValue after = reply(service, R"({"op":"stats"})");
  const JsonValue* sc = after.find("sat_core");
  ASSERT_NE(sc, nullptr);
  EXPECT_GT(sc->find("proof_checks")->as_number(), checks_before);
  EXPECT_GE(sc->find("proof_clauses")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(sc->find("proof_failures")->as_number(), 0.0);
  EXPECT_GE(sc->find("proof_check_us")->as_number(), 0.0);
}

TEST(ServeCache, LintIsPureAndCached) {
  Service service({.workers = 1});
  const std::string line = R"({"op":"lint","netlist":"* t\nR1 a 0 0\n.end\n"})";
  const std::string first = service.handle_now(line);
  EXPECT_EQ(service.handle_now(line), first);
  const JsonValue snap = service.stats().snapshot();
  EXPECT_DOUBLE_EQ(
      snap.find("ops")->find("lint")->find("cache_hits")->as_number(), 1.0);
}

TEST(ServeProtocol, DeadlineExpiresMidRequest) {
  Service service({.workers = 1});
  const auto start = std::chrono::steady_clock::now();
  const JsonValue r =
      reply(service, R"({"op":"sleep","ms":2000,"deadline_ms":30})");
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  expect_error(r, "deadline_exceeded");
  EXPECT_LT(elapsed_ms, 1000.0);  // aborted long before the full sleep
}

// --- admission control ----------------------------------------------------

// Polls the stats op until the pool reports an executing task, so tests can
// tell "worker busy" apart from "request still queued".
void wait_for_active(Service& service, double want) {
  for (int i = 0; i < 2000; ++i) {
    const JsonValue r = reply(service, R"({"op":"stats"})");
    if (r.find("service")->find("pool_active")->as_number() >= want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "worker never started executing";
}

TEST(ServeAdmission, QueuePastHighWaterMarkIsRejectedOverloaded) {
  Service service({.workers = 1, .queue_depth = 2});
  auto blocker = service.submit(R"({"op":"sleep","ms":400})");
  wait_for_active(service, 1.0);

  // The single worker is busy: these two occupy the whole admission queue.
  auto q1 = service.submit(R"({"op":"sleep","ms":0})");
  auto q2 = service.submit(R"({"op":"sleep","ms":0})");

  auto rejected = service.submit(R"({"op":"ping","id":"over"})");
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // rejected synchronously
  const JsonValue r = JsonValue::parse(rejected.get());
  expect_error(r, "overloaded");
  EXPECT_EQ(r.find("id")->as_string(), "over");

  EXPECT_TRUE(JsonValue::parse(blocker.get()).bool_or("ok", false));
  EXPECT_TRUE(JsonValue::parse(q1.get()).bool_or("ok", false));
  EXPECT_TRUE(JsonValue::parse(q2.get()).bool_or("ok", false));
}

TEST(ServeAdmission, DeadlineCheckedAtDequeue) {
  Service service({.workers = 1, .queue_depth = 8});
  auto blocker = service.submit(R"({"op":"sleep","ms":300})");
  wait_for_active(service, 1.0);

  // Queued behind a 300 ms blocker with a 20 ms budget: by the time a worker
  // picks it up the deadline is gone, and it must not run at all.
  auto doomed = service.submit(R"({"op":"sleep","ms":0,"deadline_ms":20})");
  expect_error(JsonValue::parse(doomed.get()), "deadline_exceeded");
  EXPECT_TRUE(JsonValue::parse(blocker.get()).bool_or("ok", false));
}

TEST(ServeAdmission, DrainCompletesInFlightThenRejects) {
  Service service({.workers = 2, .queue_depth = 8});
  auto slow = service.submit(R"({"op":"sleep","ms":200,"id":"slow"})");
  wait_for_active(service, 1.0);

  service.drain();  // blocks until the in-flight sleep finishes
  EXPECT_TRUE(service.draining());
  EXPECT_EQ(service.in_flight(), 0u);
  const JsonValue done = JsonValue::parse(slow.get());
  EXPECT_TRUE(done.bool_or("ok", false)) << done.dump();
  EXPECT_DOUBLE_EQ(done.find("slept_ms")->as_number(), 200.0);

  auto late = service.submit(R"({"op":"ping"})");
  expect_error(JsonValue::parse(late.get()), "shutting_down");
  service.drain();  // idempotent
}

// --- caching and determinism ----------------------------------------------

TEST(ServeCache, RepeatedPureOpsHitTheCache) {
  Service service({.workers = 1});
  const std::string line = R"({"op":"eval","expr":"a b + b c + a c"})";
  const std::string first = service.handle_now(line);
  const std::string second = service.handle_now(line);
  EXPECT_EQ(first, second);  // byte-identical, no cache markers in the body

  const JsonValue snap = service.stats().snapshot();
  EXPECT_DOUBLE_EQ(
      snap.find("ops")->find("eval")->find("cache_hits")->as_number(), 1.0);
}

TEST(ServeCache, DiskCacheSurvivesServiceRestart) {
  const std::string dir = ::testing::TempDir() + "/ftl_serve_cache_test";
  const std::string line = R"({"op":"synth","expr":"a b + c d"})";
  std::string first;
  {
    Service service({.workers = 1, .cache_dir = dir});
    first = service.handle_now(line);
  }
  {
    Service service({.workers = 1, .cache_dir = dir});
    EXPECT_EQ(service.handle_now(line), first);
    EXPECT_DOUBLE_EQ(service.stats()
                         .snapshot()
                         .find("ops")
                         ->find("synth")
                         ->find("cache_hits")
                         ->as_number(),
                     1.0);
  }
}

namespace {

// The NPN library warms up as requests complete, so when the same class
// appears twice in a concurrent mix, which submission seeds the library
// (source:"engine") and which hits it (source:"library") is a benign
// scheduling race. The realized lattice is identical either way; mask the
// provenance tag so the determinism gate binds to the payload.
std::string mask_synth_source(std::string line) {
  for (const char* tag : {"\"source\":\"library\",", "\"source\":\"engine\","}) {
    const std::size_t pos = line.find(tag);
    if (pos != std::string::npos) {
      line.erase(pos, std::string(tag).size());
      break;
    }
  }
  return line;
}

}  // namespace

TEST(ServeDeterminism, ConcurrentSubmissionsMatchSerialByteForByte) {
  // The acceptance gate: the same request list must produce byte-identical
  // responses whether handled one at a time or racing across the pool.
  std::vector<std::string> requests;
  const char* exprs[] = {"a b + b c + a c", "a b", "a + b", "a b' + a' b",
                         "a b c + a' b' c'"};
  for (int i = 0; i < 40; ++i) {
    JsonValue req = JsonValue::object();
    switch (i % 4) {
      case 0:
        req.set("op", JsonValue::str("eval"));
        req.set("expr", JsonValue::str(exprs[i % 5]));
        break;
      case 1:
        req.set("op", JsonValue::str("synth"));
        req.set("expr", JsonValue::str(exprs[i % 5]));
        break;
      case 2:
        req.set("op", JsonValue::str("paths"));
        req.set("rows", JsonValue::number(1 + i % 4));
        req.set("cols", JsonValue::number(1 + (i / 4) % 4));
        break;
      case 3:  // deliberate bad_request in the mix
        req.set("op", JsonValue::str("synth"));
        break;
    }
    req.set("id", JsonValue::number(i));
    requests.push_back(req.dump());
  }

  Service serial({.workers = 1, .cache = false});
  std::vector<std::string> expected;
  for (const std::string& line : requests) {
    expected.push_back(serial.handle_now(line));
  }

  Service concurrent({.workers = 8, .queue_depth = 64, .cache = false});
  std::vector<std::future<std::string>> futures;
  for (const std::string& line : requests) {
    futures.push_back(concurrent.submit(line));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(mask_synth_source(futures[i].get()),
              mask_synth_source(expected[i]))
        << requests[i];
  }
}

// --- access log and the JSONL sink under contention -----------------------

TEST(ServeAccessLog, EmitsOneWellFormedEventPerRequest) {
  const std::string path = ::testing::TempDir() + "/ftl_serve_access.jsonl";
  std::remove(path.c_str());
  {
    ftl::jobs::JsonlSink sink(path);
    ServiceOptions options{.workers = 2};
    options.access_log = &sink;
    Service service(options);
    service.handle_now(R"({"op":"ping"})");
    service.handle_now(R"({"op":"eval","expr":"a b"})");
    service.handle_now(R"({"op":"eval","expr":"a b"})");  // cache hit
    service.handle_now(R"({"op":"nope"})");
    service.drain();
  }
  std::ifstream in(path);
  std::vector<JsonValue> events;
  std::string line;
  while (std::getline(in, line)) events.push_back(JsonValue::parse(line));
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].find("job")->as_string(), "ping");
  EXPECT_EQ(events[1].find("job")->as_string(), "eval");
  EXPECT_EQ(events[3].find("detail")->as_string(), "bad_request");
  // The cache hit is visible in the log (never in the response body).
  EXPECT_DOUBLE_EQ(
      events[2].find("counters")->find("cache_hit")->as_number(), 1.0);
  std::remove(path.c_str());
}

TEST(JobsTelemetry, ConcurrentJsonlEmitKeepsLinesIntact) {
  const std::string path = ::testing::TempDir() + "/ftl_jsonl_race.jsonl";
  std::remove(path.c_str());
  const int kThreads = 8;
  const int kEvents = 200;
  {
    ftl::jobs::JsonlSink sink(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kEvents; ++i) {
          ftl::jobs::Event ev;
          ev.type = "job_finish";
          ev.job = "writer-" + std::to_string(t);
          ev.detail = "succeeded";
          ev.attempt = i;
          ev.counters["i"] = static_cast<double>(i);
          sink.emit(ev);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  int per_thread[kThreads] = {};
  while (std::getline(in, line)) {
    ++lines;
    // Interleaved writes would corrupt a line; every one must parse whole.
    const JsonValue ev = JsonValue::parse(line);
    ASSERT_TRUE(ev.is_object()) << line;
    const std::string job = ev.find("job")->as_string();
    ++per_thread[std::stoi(job.substr(job.find('-') + 1))];
  }
  EXPECT_EQ(lines, kThreads * kEvents);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[t], kEvents);
  std::remove(path.c_str());
}

// --- TCP server and client ------------------------------------------------

TEST(ServeTcp, RoundTripOverARealSocket) {
  Service service({.workers = 2});
  Server server(service, ServerOptions{.port = 0});
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client("127.0.0.1", server.port());
  JsonValue ping = JsonValue::object();
  ping.set("op", JsonValue::str("ping"));
  ping.set("id", JsonValue::number(1));
  const JsonValue pong = client.call(ping);
  EXPECT_TRUE(pong.bool_or("ok", false)) << pong.dump();
  EXPECT_TRUE(pong.find("pong")->as_bool());

  // Several requests down one connection, answered in order.
  const std::string synth_line = R"({"op":"synth","expr":"a b + b c + a c"})";
  const std::string first = client.call_line(synth_line);
  EXPECT_EQ(client.call_line(synth_line), first);
  const JsonValue synth = JsonValue::parse(first);
  EXPECT_TRUE(synth.find("realizes")->as_bool());

  server.stop();
}

TEST(ServeTcp, ConcurrentClientsAllSucceed) {
  Service service({.workers = 4, .queue_depth = 256});
  Server server(service, ServerOptions{.port = 0});
  server.start();

  const int kClients = 4;
  const int kRequests = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      for (int i = 0; i < kRequests; ++i) {
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::str("eval"));
        req.set("expr", JsonValue::str("a b + b c + a c"));
        req.set("id", JsonValue::number(c * 1000 + i));
        const JsonValue r = client.call(req);
        if (r.bool_or("ok", false) &&
            r.find("id")->as_number() == c * 1000 + i) {
          ++ok;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_GE(service.stats().total_requests(),
            static_cast<std::uint64_t>(kClients * kRequests));
  server.stop();
}

TEST(ServeTcp, ShutdownOpStopsTheServer) {
  Service service({.workers = 1});
  Server server(service, ServerOptions{.port = 0});
  server.start();
  EXPECT_FALSE(server.stop_requested());

  Client client("127.0.0.1", server.port());
  const std::string r = client.call_line(R"({"op":"shutdown"})");
  EXPECT_TRUE(JsonValue::parse(r).bool_or("ok", false));
  EXPECT_TRUE(server.stop_requested());
  server.wait();  // returns because stop was requested
  server.stop();
  EXPECT_TRUE(service.draining());
}

TEST(ServeTcp, OverlongLineGetsAnErrorThenClose) {
  Service service({.workers = 1});
  Server server(service, ServerOptions{.port = 0, .max_line = 256});
  server.start();

  Client client("127.0.0.1", server.port());
  const std::string r =
      client.call_line(R"({"op":"ping","pad":")" + std::string(1024, 'x') +
                       R"("})");
  expect_error(JsonValue::parse(r), "bad_request");
  server.stop();
}

}  // namespace
