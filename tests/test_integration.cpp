// End-to-end integration: the complete paper pipeline — TCAD sweeps on the
// square+HfO2 device, level-1 extraction, 6-transistor switch model, and a
// lattice circuit that computes a synthesized function — all in one flow.
#include <gtest/gtest.h>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/fit/extract.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/measure.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/sweep.hpp"

namespace {

using namespace ftl;

TEST(Integration, TcadToFitToLatticeCircuit) {
  // 1. TCAD: square + HfO2 device on a coarse mesh (test-speed tradeoff).
  const auto spec = tcad::make_device(tcad::DeviceShape::kSquare,
                                      tcad::GateDielectric::kHfO2);
  const tcad::NetworkSolver solver(tcad::build_mesh(spec, 24),
                                   tcad::ChargeSheetModel(spec));

  // 2. Fit the level-1 model on the adjacent terminal pair.
  const fit::FitResult fitted = fit::extract_from_device(
      solver, tcad::parse_bias_case("DSFF"), 0.7e-6, 0.35e-6);
  ASSERT_TRUE(fitted.converged);
  ASSERT_GE(fitted.params.vth, 0.0);

  // 3. Synthesize a function onto a lattice.
  const auto parsed = logic::parse_expression("a b + a' c");
  const lattice::Lattice lat =
      lattice::altun_riedel_synthesis(parsed.table, parsed.var_names);
  ASSERT_TRUE(lattice::realizes(lat, parsed.table));

  // 4. Build the circuit with the freshly fitted switch model and check the
  // full truth table electrically.
  bridge::LatticeCircuitOptions options;
  options.switch_model = bridge::switch_model_from_fit(fitted);
  for (std::uint64_t code = 0; code < parsed.table.num_minterms(); ++code) {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < parsed.table.num_vars(); ++v) {
      drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
    }
    bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives, options);
    const spice::OpResult op = spice::dc_operating_point(lc.circuit);
    ASSERT_TRUE(op.converged) << "code " << code;
    const double out =
        op.solution[static_cast<std::size_t>(lc.circuit.find_node("out"))];
    if (parsed.table.get(code)) {
      EXPECT_LT(out, 0.4) << "code " << code;  // pulled low (inverted logic)
    } else {
      EXPECT_GT(out, 1.0) << "code " << code;
    }
  }
}

TEST(Integration, Xor3TransientTraversesAllCodesCorrectly) {
  // The Fig. 11 experiment in miniature: gray-code style pulse drivers walk
  // the lattice through input codes; sampled mid-phase outputs must match
  // the inverted XOR3 truth table.
  const auto lat = lattice::xor3_lattice_3x3();
  const double period = 40e-9;
  std::map<int, spice::Waveform> drives;
  // Variable v toggles with period 2^(v+1) * period.
  for (int v = 0; v < 3; ++v) {
    const double p = period * static_cast<double>(2 << v);
    drives[v] = spice::Waveform::pulse(0.0, 1.2, p / 2.0, 0.5e-9, 0.5e-9,
                                       p / 2.0 - 0.5e-9, p);
  }
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
  spice::TransientOptions topt;
  topt.tstop = 8.0 * period;
  topt.dt = 0.5e-9;
  topt.record_nodes = {"out"};
  const spice::TransientResult result = spice::transient(lc.circuit, topt);

  for (int phase = 0; phase < 8; ++phase) {
    // Sample the settled tail of each phase window.
    const double t0 = (phase + 0.7) * period;
    const double t1 = (phase + 0.95) * period;
    const double out = spice::settled_value(result.time(), result.signal("out"), t0, t1);
    int code = 0;
    for (int v = 0; v < 3; ++v) {
      if (drives[v].value((t0 + t1) / 2.0) > 0.6) code |= 1 << v;
    }
    const bool xor3 = (((code >> 0) ^ (code >> 1) ^ (code >> 2)) & 1) != 0;
    if (xor3) {
      EXPECT_LT(out, 0.4) << "phase " << phase << " code " << code;
    } else {
      EXPECT_GT(out, 1.0) << "phase " << phase << " code " << code;
    }
  }
}

TEST(Integration, FourVariableLatticeGateScales) {
  // A larger end-to-end instance: a 4-variable function synthesized to a
  // lattice of a few dozen switches (hundreds of MOSFETs once expanded),
  // checked electrically on all 16 input codes.
  // 4-input parity: its ISOP has 8 products and so does its dual's, giving
  // an 8x8 lattice — 64 switches, 384 MOSFETs once expanded.
  const auto parsed = logic::parse_expression(
      "a b c d + a b' c' d + a' b c' d + a' b' c d +"
      "a b c' d' + a b' c d' + a' b c d' + a' b' c' d'");
  const lattice::Lattice lat =
      lattice::altun_riedel_synthesis(parsed.table, parsed.var_names);
  ASSERT_TRUE(lattice::realizes(lat, parsed.table));
  ASSERT_GE(lat.cell_count(), 32);  // meaningfully bigger than XOR3

  for (std::uint64_t code = 0; code < 16; ++code) {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < 4; ++v) {
      drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
    }
    bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
    const spice::OpResult op = spice::dc_operating_point(lc.circuit);
    ASSERT_TRUE(op.converged) << "code " << code;
    const double out =
        op.solution[static_cast<std::size_t>(lc.circuit.find_node("out"))];
    if (parsed.table.get(code)) {
      EXPECT_LT(out, 0.4) << "code " << code;
    } else {
      EXPECT_GT(out, 1.0) << "code " << code;
    }
  }
}

TEST(Integration, SeriesChainMatchesSingleSwitchScaling) {
  // Cross-check the two §V experiments against each other: the voltage the
  // bisection finds for the single-switch current of a 1-chain is ~1.2 V.
  const double i1 = bridge::chain_current(1, 1.2, 1.2);
  const double v = bridge::voltage_for_current(1, i1);
  EXPECT_NEAR(v, 1.2, 0.02);
}

}  // namespace
