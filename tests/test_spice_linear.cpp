// Linear-circuit DC tests against hand-solved networks: dividers, ladders,
// bridges, multiple sources, and branch-current bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "ftl/spice/circuit.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::spice;

double node_voltage(const Circuit& c, const OpResult& op, const std::string& name) {
  const int n = c.find_node(name);
  return n < 0 ? 0.0 : op.solution[static_cast<std::size_t>(n)];
}

TEST(LinearDc, VoltageDivider) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>("V1", c.node("in"), Circuit::kGround,
                                        Waveform::dc(10.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("in"), c.node("mid"), 1000.0));
  c.add(std::make_unique<Resistor>("R2", c.node("mid"), Circuit::kGround, 3000.0));
  const OpResult op = dc_operating_point(c);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(node_voltage(c, op, "mid"), 7.5, 1e-9);
}

TEST(LinearDc, SourceBranchCurrent) {
  Circuit c;
  auto& v1 = static_cast<VoltageSource&>(c.add(std::make_unique<VoltageSource>(
      "V1", c.node("a"), Circuit::kGround, Waveform::dc(5.0))));
  c.add(std::make_unique<Resistor>("R1", c.node("a"), Circuit::kGround, 500.0));
  const OpResult op = dc_operating_point(c);
  // 10 mA flows out of + through the external resistor, so the through-
  // source branch current is -10 mA.
  EXPECT_NEAR(v1.current(op.solution), -0.01, 1e-12);
}

TEST(LinearDc, ResistorLadder) {
  // 1 V across five series 1k resistors: taps at 0.8, 0.6, 0.4, 0.2 V.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("V1", c.node("n0"), Circuit::kGround,
                                        Waveform::dc(1.0)));
  for (int i = 0; i < 5; ++i) {
    const std::string from = "n" + std::to_string(i);
    const std::string to = (i == 4) ? "0" : "n" + std::to_string(i + 1);
    c.add(std::make_unique<Resistor>("R" + std::to_string(i), c.node(from),
                                     c.node(to), 1000.0));
  }
  const OpResult op = dc_operating_point(c);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_NEAR(node_voltage(c, op, "n" + std::to_string(i)),
                1.0 - 0.2 * i, 1e-9);
  }
}

TEST(LinearDc, WheatstoneBridgeBalanced) {
  // Balanced bridge: no voltage across the detector resistor.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("V1", c.node("top"), Circuit::kGround,
                                        Waveform::dc(10.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("top"), c.node("l"), 1000.0));
  c.add(std::make_unique<Resistor>("R2", c.node("top"), c.node("r"), 2000.0));
  c.add(std::make_unique<Resistor>("R3", c.node("l"), Circuit::kGround, 1000.0));
  c.add(std::make_unique<Resistor>("R4", c.node("r"), Circuit::kGround, 2000.0));
  c.add(std::make_unique<Resistor>("Rdet", c.node("l"), c.node("r"), 50.0));
  const OpResult op = dc_operating_point(c);
  EXPECT_NEAR(node_voltage(c, op, "l"), node_voltage(c, op, "r"), 1e-9);
  EXPECT_NEAR(node_voltage(c, op, "l"), 5.0, 1e-9);
}

TEST(LinearDc, CurrentSourceIntoResistor) {
  Circuit c;
  // 1 mA pushed into node "a" through a 2k resistor to ground: +2 V.
  c.add(std::make_unique<CurrentSource>("I1", Circuit::kGround, c.node("a"),
                                        Waveform::dc(1e-3)));
  c.add(std::make_unique<Resistor>("R1", c.node("a"), Circuit::kGround, 2000.0));
  const OpResult op = dc_operating_point(c);
  EXPECT_NEAR(node_voltage(c, op, "a"), 2.0, 1e-9);
}

TEST(LinearDc, SuperpositionOfTwoSources) {
  // Two sources, one resistive T network; solved by hand: with V1=6 on the
  // left, V2=3 on the right and 1k/1k/1k star, the middle sits at 3 V.
  Circuit c;
  c.add(std::make_unique<VoltageSource>("V1", c.node("a"), Circuit::kGround,
                                        Waveform::dc(6.0)));
  c.add(std::make_unique<VoltageSource>("V2", c.node("b"), Circuit::kGround,
                                        Waveform::dc(3.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("a"), c.node("m"), 1000.0));
  c.add(std::make_unique<Resistor>("R2", c.node("b"), c.node("m"), 1000.0));
  c.add(std::make_unique<Resistor>("R3", c.node("m"), Circuit::kGround, 1000.0));
  const OpResult op = dc_operating_point(c);
  EXPECT_NEAR(node_voltage(c, op, "m"), 3.0, 1e-9);
}

TEST(LinearDc, FloatingNodeIsReportedAsError) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>("V1", c.node("a"), Circuit::kGround,
                                        Waveform::dc(1.0)));
  c.add(std::make_unique<Resistor>("R1", c.node("a"), c.node("b"), 1000.0));
  // Node "b2" touches nothing but one resistor end left dangling via "b".
  c.add(std::make_unique<Resistor>("R2", c.node("b"), c.node("b"), 1000.0));
  // R2 connects b to itself — node b still has a path; but node "c" below
  // is genuinely floating.
  c.node("cfloat");
  EXPECT_THROW(dc_operating_point(c), ftl::Error);
}

TEST(Circuit, NodeManagement) {
  Circuit c;
  EXPECT_EQ(c.node("0"), Circuit::kGround);
  EXPECT_EQ(c.node("GND"), Circuit::kGround);
  const int a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  EXPECT_NE(c.node("b"), a);
  EXPECT_EQ(c.node_count(), 2);
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_THROW(c.find_node("zz"), ftl::Error);
}

TEST(Circuit, DuplicateDeviceNamesRejected) {
  Circuit c;
  c.add(std::make_unique<Resistor>("R1", c.node("a"), Circuit::kGround, 1.0));
  EXPECT_THROW(
      c.add(std::make_unique<Resistor>("R1", c.node("b"), Circuit::kGround, 1.0)),
      ftl::Error);
  EXPECT_TRUE(c.has_device("R1"));
  EXPECT_FALSE(c.has_device("R2"));
  EXPECT_THROW(c.device("R9"), ftl::Error);
}

TEST(Devices, InvalidValuesRejected) {
  Circuit c;
  EXPECT_THROW(Resistor("R1", 0, 1, -5.0), ftl::ContractViolation);
  EXPECT_THROW(Resistor("R1", 0, 1, 0.0), ftl::ContractViolation);
  EXPECT_THROW(Capacitor("C1", 0, 1, 0.0), ftl::ContractViolation);
}

TEST(LinearDc, ResistorCurrentHelper) {
  Circuit c;
  c.add(std::make_unique<VoltageSource>("V1", c.node("a"), Circuit::kGround,
                                        Waveform::dc(2.0)));
  auto& r = static_cast<Resistor&>(c.add(
      std::make_unique<Resistor>("R1", c.node("a"), Circuit::kGround, 100.0)));
  const OpResult op = dc_operating_point(c);
  EXPECT_NEAR(r.current(op.solution), 0.02, 1e-12);
}

}  // namespace
