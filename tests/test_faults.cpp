// Switch-fault analysis tests: fault injection semantics, criticality
// classification, masking by redundancy, and greedy test-set generation.
#include <gtest/gtest.h>

#include <set>

#include "ftl/lattice/faults.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::lattice;
using ftl::logic::TruthTable;

TEST(Faults, InjectionForcesConstants) {
  Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(1, 0, CellValue::of(0));

  const Lattice open = inject_fault(lat, {0, 0, FaultType::kStuckOpen});
  EXPECT_EQ(open.at(0, 0).kind, CellValue::Kind::kConst0);
  EXPECT_TRUE(realized_truth_table(open).is_zero());

  const Lattice closed = inject_fault(lat, {0, 0, FaultType::kStuckClosed});
  EXPECT_EQ(closed.at(0, 0).kind, CellValue::Kind::kConst1);
  // [1; a] still computes a.
  EXPECT_EQ(realized_truth_table(closed), TruthTable::variable(1, 0));
}

TEST(Faults, SingleColumnIsFullyCritical) {
  // A 2x1 AND column has zero redundancy: every fault changes the function.
  Lattice lat(2, 1, 2, {"a", "b"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(1, 0, CellValue::of(1));
  const TruthTable f = TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  const FaultAnalysis analysis = analyze_single_faults(lat, f);
  EXPECT_EQ(analysis.total_faults, 4);
  EXPECT_EQ(analysis.critical.size(), 4u);
  EXPECT_TRUE(analysis.masked.empty());
  EXPECT_DOUBLE_EQ(analysis.masking_ratio(), 0.0);
}

TEST(Faults, ParallelColumnsMaskStuckOpen) {
  // Two identical columns [a; b] in parallel: losing one column (stuck-open)
  // is masked; a stuck-closed fault can still change the function.
  Lattice lat(2, 2, 2, {"a", "b"});
  for (int c = 0; c < 2; ++c) {
    lat.set(0, c, CellValue::of(0));
    lat.set(1, c, CellValue::of(1));
  }
  const TruthTable f = TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  ASSERT_TRUE(realizes(lat, f));
  const FaultAnalysis analysis = analyze_single_faults(lat, f);
  // All four stuck-open faults are masked by the twin column.
  int open_masked = 0;
  for (const Fault& fault : analysis.masked) {
    if (fault.type == FaultType::kStuckOpen) ++open_masked;
  }
  EXPECT_EQ(open_masked, 4);
}

TEST(Faults, CountsAreConsistent) {
  const Lattice lat = xor3_lattice_3x3();
  const TruthTable f = xor3_truth_table();
  const FaultAnalysis analysis = analyze_single_faults(lat, f);
  EXPECT_EQ(analysis.total_faults, 2 * lat.cell_count());
  EXPECT_EQ(analysis.critical.size() + analysis.masked.size(),
            static_cast<std::size_t>(analysis.total_faults));
}

TEST(Faults, MaskedFaultsReallyPreserveTheFunction) {
  const Lattice lat = xor3_lattice_3x4();
  const TruthTable f = xor3_truth_table();
  const FaultAnalysis analysis = analyze_single_faults(lat, f);
  for (const Fault& fault : analysis.masked) {
    EXPECT_TRUE(realizes(inject_fault(lat, fault), f));
  }
  for (const Fault& fault : analysis.critical) {
    EXPECT_FALSE(realizes(inject_fault(lat, fault), f));
  }
}

TEST(Faults, GreedyTestSetDetectsEveryCriticalFault) {
  for (const Lattice& lat : {xor3_lattice_3x3(), xor3_lattice_3x4()}) {
    const TruthTable f = xor3_truth_table();
    const std::vector<std::uint64_t> tests = greedy_test_set(lat, f);
    const FaultAnalysis analysis = analyze_single_faults(lat, f);
    for (const Fault& fault : analysis.critical) {
      const Lattice faulty = inject_fault(lat, fault);
      bool detected = false;
      for (std::uint64_t code : tests) {
        detected = detected || faulty.evaluate(code) != f.get(code);
      }
      EXPECT_TRUE(detected) << "fault at (" << fault.row << "," << fault.col
                            << ") " << to_string(fault.type);
    }
    // The test set is no larger than the input space (and usually tiny).
    EXPECT_LE(tests.size(), f.num_minterms());
    EXPECT_FALSE(tests.empty());
  }
}

TEST(Faults, TestSetIsEmptyWhenNothingIsCritical) {
  // A 1x2 lattice [a a] realizing a: one cell stuck-open is masked by the
  // twin; stuck-closed turns the function into constant 1 -> critical.
  // Construct instead a fully redundant case: both cells constant 1,
  // realizing constant 1; stuck-closed faults are no-ops, stuck-open is
  // masked by the parallel cell.
  Lattice lat(1, 2, 1, {"a"});
  lat.set(0, 0, CellValue::one());
  lat.set(0, 1, CellValue::one());
  const TruthTable one = TruthTable::constant(1, true);
  ASSERT_TRUE(realizes(lat, one));
  const FaultAnalysis analysis = analyze_single_faults(lat, one);
  EXPECT_TRUE(analysis.critical.empty());
  EXPECT_TRUE(greedy_test_set(lat, one).empty());
}

TEST(Faults, MismatchedVariableCountThrows) {
  const Lattice lat = xor3_lattice_3x3();
  EXPECT_THROW(analyze_single_faults(lat, TruthTable(2)),
               ftl::ContractViolation);
}

}  // namespace
