// Netlist parser tests: full decks, element cards, models, directives,
// continuations, comments, and error reporting with line numbers.
#include <gtest/gtest.h>

#include "ftl/spice/dcop.hpp"
#include "ftl/spice/mosfet.hpp"
#include "ftl/spice/mosfet3.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/spice/netlist_parser.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::spice;

TEST(NetlistParser, DividerDeckSolves) {
  auto parsed = parse_netlist(R"(simple divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.end
)");
  EXPECT_EQ(parsed.title, "simple divider");
  const OpResult op = dc_operating_point(parsed.circuit);
  ASSERT_TRUE(op.converged);
  const int mid = parsed.circuit.find_node("mid");
  EXPECT_NEAR(op.solution[static_cast<std::size_t>(mid)], 7.5, 1e-9);
}

TEST(NetlistParser, EngineeringSuffixesInValues) {
  auto parsed = parse_netlist(R"(*units
V1 a 0 1.2
R1 a b 500k
C1 b 0 10f
)");
  const auto& r = dynamic_cast<const Resistor&>(parsed.circuit.device("R1"));
  EXPECT_DOUBLE_EQ(r.resistance(), 500e3);
  const auto& c = dynamic_cast<const Capacitor&>(parsed.circuit.device("C1"));
  EXPECT_DOUBLE_EQ(c.capacitance(), 10e-15);
}

TEST(NetlistParser, PulseSourceAndTranDirective) {
  auto parsed = parse_netlist(R"(*pulse deck
VIN g 0 PULSE(0 1.2 10n 1n 1n 40n 100n)
R1 g 0 1meg
.tran 0.1n 100n
)");
  ASSERT_TRUE(parsed.tran.has_value());
  EXPECT_DOUBLE_EQ(parsed.tran->dt, 0.1e-9);
  EXPECT_DOUBLE_EQ(parsed.tran->tstop, 100e-9);
  const auto& src = dynamic_cast<const VoltageSource&>(parsed.circuit.device("VIN"));
  EXPECT_DOUBLE_EQ(src.waveform().value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(src.waveform().value(30e-9), 1.2);
}

TEST(NetlistParser, MosfetWithModelCard) {
  auto parsed = parse_netlist(R"(*switch
VD d 0 5
VG g 0 5
M1 d g 0 0 FTSW W=0.7u L=0.35u
.model FTSW NMOS (KP=30u VTO=0.35 LAMBDA=0.02)
)");
  const auto& m = dynamic_cast<const Mosfet&>(parsed.circuit.device("M1"));
  EXPECT_DOUBLE_EQ(m.params().kp, 30e-6);
  EXPECT_DOUBLE_EQ(m.params().vth, 0.35);
  EXPECT_DOUBLE_EQ(m.params().lambda, 0.02);
  EXPECT_DOUBLE_EQ(m.params().width, 0.7e-6);
  EXPECT_DOUBLE_EQ(m.params().length, 0.35e-6);
  // Model defined after use works (two-pass parse) — and the circuit solves.
  EXPECT_TRUE(dc_operating_point(parsed.circuit).converged);
}

TEST(NetlistParser, ContinuationLinesAndComments) {
  auto parsed = parse_netlist(R"(*deck
V1 a 0
+ PULSE(0 1
+ 0 1n 1n 5n 10n)
* a comment between cards
R1 a 0 1k ; trailing comment
)");
  EXPECT_TRUE(parsed.circuit.has_device("V1"));
  EXPECT_TRUE(parsed.circuit.has_device("R1"));
}

TEST(NetlistParser, DcDirective) {
  auto parsed = parse_netlist(R"(*dc
V1 a 0 0
R1 a 0 1k
.dc V1 0 5 0.5
)");
  ASSERT_TRUE(parsed.dc.has_value());
  EXPECT_EQ(parsed.dc->source, "V1");
  EXPECT_DOUBLE_EQ(parsed.dc->start, 0.0);
  EXPECT_DOUBLE_EQ(parsed.dc->stop, 5.0);
  EXPECT_DOUBLE_EQ(parsed.dc->step, 0.5);
}

TEST(NetlistParser, CurrentSourceAndPwl) {
  auto parsed = parse_netlist(R"(*isrc
I1 0 a PWL(0 0 1u 1m 2u 0)
R1 a 0 1k
)");
  EXPECT_TRUE(parsed.circuit.has_device("I1"));
}

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("*t\nR1 a 0\n");
    FAIL() << "should have thrown";
  } catch (const ftl::Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistParser, RejectsBadCards) {
  EXPECT_THROW(parse_netlist("*t\nR1 a 0 nonsense\n"), ftl::Error);
  EXPECT_THROW(parse_netlist("*t\nM1 d g 0 0 NOPE\n"), ftl::Error);
  EXPECT_THROW(parse_netlist("*t\n.model X PMOS (KP=1u)\n"), ftl::Error);
  EXPECT_THROW(parse_netlist("*t\n.model X NMOS (LEVEL=2)\n"), ftl::Error);
  EXPECT_THROW(parse_netlist("*t\n.model X NMOS (LEVEL=1 THETA=0.1)\n"), ftl::Error);
  EXPECT_THROW(parse_netlist("*t\n.bogus 1 2\n"), ftl::Error);
  EXPECT_THROW(parse_netlist("*t\nV1 a 0 PULSE(0 1)\n"), ftl::Error);
  EXPECT_THROW(parse_netlist("+ continuation first\n"), ftl::Error);
}

TEST(NetlistParser, Level3ModelCard) {
  auto parsed = parse_netlist(R"(*lvl3
VD d 0 5
VG g 0 5
M1 d g 0 0 FT3 W=0.7u L=0.35u
.model FT3 NMOS (LEVEL=3 KP=30u VTO=0.35 LAMBDA=0.02 THETA=0.2 VC=3)
)");
  const auto& m = dynamic_cast<const Mosfet3&>(parsed.circuit.device("M1"));
  EXPECT_DOUBLE_EQ(m.params().kp, 30e-6);
  EXPECT_DOUBLE_EQ(m.params().theta, 0.2);
  EXPECT_DOUBLE_EQ(m.params().vc, 3.0);
  EXPECT_DOUBLE_EQ(m.params().length, 0.35e-6);
  const OpResult op = dc_operating_point(parsed.circuit);
  EXPECT_TRUE(op.converged);
}

TEST(NetlistParser, TitleLineIsOptional) {
  auto parsed = parse_netlist("V1 a 0 1\nR1 a 0 1k\n");
  EXPECT_TRUE(parsed.title.empty());
  EXPECT_TRUE(parsed.circuit.has_device("V1"));
}

TEST(NetlistParser, FourTerminalSwitchDeckRunsTransient) {
  // The documentation example: one switch transistor pulling against a
  // 500k pull-up, driven by a pulse.
  auto parsed = parse_netlist(R"(four-terminal switch demo
VDD vdd 0 1.2
RPU vdd out 500k
CL  out 0 10f
M1  out g 0 0 FTSW W=0.7u L=0.35u
VIN g 0 PULSE(0 1.2 10n 1n 1n 40n 100n)
.model FTSW NMOS (KP=30u VTO=0.35 LAMBDA=0.02)
.tran 0.2n 100n
.end
)");
  ASSERT_TRUE(parsed.tran.has_value());
  TransientOptions options = *parsed.tran;
  options.record_nodes = {"out"};
  const TransientResult result = transient(parsed.circuit, options);
  const auto& out = result.signal("out");
  double vmin = 1e9;
  double vmax = -1e9;
  for (double v : out) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  EXPECT_GT(vmax, 1.1);   // output reaches the rail while the switch is off
  EXPECT_LT(vmin, 0.25);  // and pulls low while it is on
}

}  // namespace
