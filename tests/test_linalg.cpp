// Tests for dense linear algebra: matrix kernels, LU factorization and
// solve, interpolation, and crossing detection.
#include <gtest/gtest.h>

#include <random>

#include "ftl/linalg/interp.hpp"
#include "ftl/linalg/lu.hpp"
#include "ftl/linalg/matrix.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::linalg::Matrix;
using ftl::linalg::Vector;

TEST(Matrix, BasicAccessAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), ftl::ContractViolation);
  EXPECT_THROW(m(0, 2), ftl::ContractViolation);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6; 15]
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  const Vector y = m.multiply({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, GramIsTransposeTimesSelf) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(5, 3);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = dist(rng);
  const Matrix g = m.gram();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double expected = 0.0;
      for (std::size_t r = 0; r < 5; ++r) expected += m(r, i) * m(r, j);
      EXPECT_NEAR(g(i, j), expected, 1e-14);
      EXPECT_NEAR(g(i, j), g(j, i), 1e-14);  // symmetric
    }
  }
}

TEST(VectorOps, NormsAndDot) {
  EXPECT_DOUBLE_EQ(ftl::linalg::norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(ftl::linalg::norm_inf({-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(ftl::linalg::dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_THROW(ftl::linalg::dot({1.0}, {1.0, 2.0}), ftl::ContractViolation);
}

TEST(VectorOps, Linspace) {
  const Vector v = ftl::linalg::linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  const Vector single = ftl::linalg::linspace(3.0, 9.0, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 3.0);
}

TEST(Lu, SolvesIdentity) {
  Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye(i, i) = 1.0;
  const Vector x = ftl::linalg::solve(eye, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial pivot position forces a row swap.
  Matrix m(2, 2);
  m(0, 0) = 0.0;
  m(0, 1) = 1.0;
  m(1, 0) = 2.0;
  m(1, 1) = 1.0;
  const Vector x = ftl::linalg::solve(m, {3.0, 5.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 4.0;
  EXPECT_THROW(ftl::linalg::solve(m, {1.0, 1.0}), ftl::Error);
}

TEST(Lu, Determinant) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 1.0;
  m(1, 0) = 4.0;
  m(1, 1) = 2.0;
  EXPECT_NEAR(ftl::linalg::LuFactorization(m).determinant(), 2.0, 1e-12);
}

class LuRandom : public ::testing::TestWithParam<int> {};

TEST_P(LuRandom, ReconstructsRandomSystems) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r) {
    for (std::size_t c = 0; c < static_cast<std::size_t>(n); ++c) {
      a(r, c) = dist(rng);
    }
    a(r, r) += static_cast<double>(n);  // diagonally dominant: solvable
  }
  Vector x_true(static_cast<std::size_t>(n));
  for (double& v : x_true) v = dist(rng);
  const Vector b = a.multiply(x_true);
  const Vector x = ftl::linalg::solve(a, b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandom,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60, 120));

TEST(Interp, EndpointsClampAndMidpointsInterpolate) {
  const Vector xs{0.0, 1.0, 2.0};
  const Vector ys{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(ftl::linalg::interp1(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(ftl::linalg::interp1(xs, ys, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ftl::linalg::interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(ftl::linalg::interp1(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(ftl::linalg::interp1(xs, ys, 1.0), 10.0);
}

TEST(Interp, FirstCrossingFindsLinearIntersection) {
  const Vector xs{0.0, 1.0, 2.0, 3.0};
  const Vector ys{0.0, 2.0, 2.0, 0.0};
  const auto up = ftl::linalg::first_crossing(xs, ys, 1.0, true);
  ASSERT_TRUE(up.has_value());
  EXPECT_DOUBLE_EQ(*up, 0.5);
  const auto down = ftl::linalg::first_crossing(xs, ys, 1.0, false);
  ASSERT_TRUE(down.has_value());
  EXPECT_DOUBLE_EQ(*down, 2.5);
  EXPECT_FALSE(ftl::linalg::first_crossing(xs, ys, 5.0, true).has_value());
}

}  // namespace
