# Runs the ftl_lint binary on one fixture and asserts its exit code.
# Inputs: LINT_BIN, LINT_ARGS (optional, ;-list), LINT_INPUT, EXPECT_EXIT.
if(NOT DEFINED LINT_BIN OR NOT DEFINED LINT_INPUT OR NOT DEFINED EXPECT_EXIT)
  message(FATAL_ERROR "run_lint_case.cmake needs LINT_BIN, LINT_INPUT, EXPECT_EXIT")
endif()

execute_process(
  COMMAND "${LINT_BIN}" ${LINT_ARGS} "${LINT_INPUT}"
  OUTPUT_VARIABLE lint_stdout
  ERROR_VARIABLE lint_stderr
  RESULT_VARIABLE lint_exit)

if(NOT lint_exit EQUAL EXPECT_EXIT)
  message(FATAL_ERROR
    "ftl_lint ${LINT_ARGS} ${LINT_INPUT} exited ${lint_exit}, expected ${EXPECT_EXIT}\n"
    "stdout:\n${lint_stdout}\nstderr:\n${lint_stderr}")
endif()
