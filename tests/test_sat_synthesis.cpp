// CEGAR SAT synthesis against the classical engines: encoding vs the
// connectivity kernel, engine-agreement property tests over every 3-var
// function, UNSAT agreement on infeasible shapes, the exhaustive-search
// budget satellite, determinism/seed reporting, the SAT equivalence
// backend, and the 5×5 / 8-variable headline the odometer cannot touch.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ftl/check/equivalence.hpp"
#include "ftl/lattice/connectivity.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/sat/encode.hpp"
#include "ftl/sat/solver.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::check::EquivalenceOptions;
using ftl::check::verify_equivalence;
using ftl::check::verify_equivalence_sat;
using ftl::lattice::CellValue;
using ftl::lattice::exhaustive_synthesis;
using ftl::lattice::Lattice;
using ftl::lattice::realizes;
using ftl::lattice::SatSynthesisOptions;
using ftl::lattice::SatSynthesisResult;
using ftl::lattice::search_candidate_values;
using ftl::lattice::SearchBoundExceeded;
using ftl::lattice::SearchOptions;
using ftl::lattice::synth_sat;
using ftl::lattice::top_bottom_connected_bits;
using ftl::logic::TruthTable;

TruthTable xor_n(int n) {
  return TruthTable::from_function(n, [](std::uint64_t m) {
    return (std::popcount(m) & 1) != 0;
  });
}

Lattice random_lattice(int rows, int cols, int num_vars, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> choice(0, 2 * num_vars - 1);
  Lattice lat(rows, cols, num_vars);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int pick = choice(rng);
      lat.set(r, c, CellValue::of(pick / 2, pick % 2 == 0));
    }
  }
  return lat;
}

// -- encoding vs the connectivity kernel ------------------------------------

TEST(SatSynthesis, PathEncodingAgreesWithConnectivityKernel) {
  // The kernel (top_bottom_connected_bits) is the trusted evaluator; the
  // two CNF encodings must partition every fixed pattern the same way.
  const int rows = 3;
  const int cols = 2;
  for (std::uint64_t pattern = 0; pattern < 64; ++pattern) {
    const bool connected = top_bottom_connected_bits(pattern, rows, cols);
    for (const bool exists : {true, false}) {
      ftl::sat::Solver solver;
      std::vector<ftl::sat::Lit> on;
      for (int i = 0; i < rows * cols; ++i) {
        on.push_back(ftl::sat::Lit::of(solver.new_var()));
      }
      for (int i = 0; i < rows * cols; ++i) {
        solver.add_clause({((pattern >> i) & 1) != 0
                               ? on[static_cast<std::size_t>(i)]
                               : ~on[static_cast<std::size_t>(i)]});
      }
      if (exists) {
        ftl::sat::encode_path_exists(solver, rows, cols, on);
      } else {
        ftl::sat::encode_path_absent(solver, rows, cols, on);
      }
      EXPECT_EQ(solver.solve() == ftl::sat::LBool::kTrue,
                exists ? connected : !connected)
          << "pattern " << pattern << " exists=" << exists;
    }
  }
}

// -- engine agreement -------------------------------------------------------

TEST(SatSynthesis, AgreesWithExhaustiveOnEveryThreeVarFunctionAt2x2) {
  // Property: for every 3-var target and the 2×2 shape, the two engines
  // agree on feasibility, and any lattice either returns is verified to
  // realize the identical truth table (realizes() is bitslice-backed).
  int feasible = 0;
  int infeasible = 0;
  for (std::uint64_t bits = 0; bits < 256; ++bits) {
    const TruthTable target = TruthTable::from_bits(3, bits);
    const auto classical = exhaustive_synthesis(target, 2, 2);
    const SatSynthesisResult via_sat = synth_sat(target, 2, 2);
    ASSERT_EQ(classical.has_value(), via_sat.lattice.has_value())
        << "target bits " << bits;
    if (classical.has_value()) {
      EXPECT_TRUE(realizes(*classical, target));
      EXPECT_TRUE(realizes(*via_sat.lattice, target));
      EXPECT_FALSE(via_sat.proven_infeasible);
      ++feasible;
    } else {
      EXPECT_TRUE(via_sat.proven_infeasible) << "target bits " << bits;
      EXPECT_FALSE(via_sat.budget_exhausted);
      ++infeasible;
    }
  }
  // The 2×2 shape genuinely splits the space, so both verdicts ran.
  EXPECT_GT(feasible, 0);
  EXPECT_GT(infeasible, 0);
}

TEST(SatSynthesis, AgreesWithExhaustiveOnRandomFourVarTargets) {
  std::mt19937_64 rng(0xfeed);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t bits = rng() & 0xffff;
    const TruthTable target = TruthTable::from_bits(4, bits);
    const auto classical = exhaustive_synthesis(target, 2, 3);
    const SatSynthesisResult via_sat = synth_sat(target, 2, 3);
    ASSERT_EQ(classical.has_value(), via_sat.lattice.has_value())
        << "target bits " << bits;
    if (classical.has_value()) {
      EXPECT_TRUE(realizes(*via_sat.lattice, target));
      EXPECT_EQ(ftl::lattice::realized_truth_table(*via_sat.lattice),
                ftl::lattice::realized_truth_table(*classical));
    } else {
      EXPECT_TRUE(via_sat.proven_infeasible);
    }
  }
}

TEST(SatSynthesis, UnsatAgreementOnInfeasibleXorShapes) {
  // The paper's benchmark fact: XOR3 needs a 3×3; smaller shapes must be
  // proven infeasible by both engines.
  const TruthTable xor3 = xor_n(3);
  for (const auto& shape : {std::pair{2, 2}, std::pair{2, 3}}) {
    const auto classical = exhaustive_synthesis(xor3, shape.first, shape.second);
    EXPECT_FALSE(classical.has_value());
    const SatSynthesisResult via_sat =
        synth_sat(xor3, shape.first, shape.second);
    EXPECT_FALSE(via_sat.lattice.has_value());
    EXPECT_TRUE(via_sat.proven_infeasible);
    EXPECT_FALSE(via_sat.budget_exhausted);
  }
}

TEST(SatSynthesis, FindsTheXor3MappingOn3x3) {
  const TruthTable xor3 = xor_n(3);
  const SatSynthesisResult result = synth_sat(xor3, 3, 3);
  ASSERT_TRUE(result.lattice.has_value());
  EXPECT_TRUE(realizes(*result.lattice, xor3));
  EXPECT_GT(result.cegar_rounds, 0);
  EXPECT_GT(result.care_minterms, 0);
  EXPECT_GT(result.solver.propagations, 0u);
}

// -- determinism and seed reporting -----------------------------------------

TEST(SatSynthesis, IsDeterministicAndReportsTheSeed) {
  const TruthTable xor3 = xor_n(3);
  SatSynthesisOptions options;
  options.seed = 42;
  const SatSynthesisResult a = synth_sat(xor3, 3, 3, options);
  const SatSynthesisResult b = synth_sat(xor3, 3, 3, options);
  ASSERT_TRUE(a.lattice.has_value());
  ASSERT_TRUE(b.lattice.has_value());
  EXPECT_EQ(a.seed, 42u);
  EXPECT_EQ(a.solver.seed, 42u);
  EXPECT_EQ(a.cegar_rounds, b.cegar_rounds);
  EXPECT_EQ(a.solver.conflicts, b.solver.conflicts);
  EXPECT_EQ(a.solver.decisions, b.solver.decisions);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(a.lattice->at(r, c).kind, b.lattice->at(r, c).kind);
      EXPECT_EQ(a.lattice->at(r, c).literal.var,
                b.lattice->at(r, c).literal.var);
      EXPECT_EQ(a.lattice->at(r, c).literal.positive,
                b.lattice->at(r, c).literal.positive);
    }
  }
  // A different seed still solves (possibly via a different lattice).
  options.seed = 7;
  const SatSynthesisResult c = synth_sat(xor3, 3, 3, options);
  ASSERT_TRUE(c.lattice.has_value());
  EXPECT_EQ(c.seed, 7u);
  EXPECT_TRUE(realizes(*c.lattice, xor3));
}

TEST(SatSynthesis, BudgetExhaustionIsReportedNotSilent) {
  SatSynthesisOptions options;
  options.max_conflicts = 0;
  const SatSynthesisResult result = synth_sat(xor_n(3), 3, 3, options);
  EXPECT_FALSE(result.lattice.has_value());
  EXPECT_FALSE(result.proven_infeasible);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_EQ(result.cegar_rounds, 0);

  SatSynthesisOptions rounds;
  rounds.max_rounds = 1;
  const SatSynthesisResult one_round = synth_sat(xor_n(3), 3, 3, rounds);
  EXPECT_LE(one_round.cegar_rounds, 1);
  if (!one_round.lattice.has_value()) {
    EXPECT_TRUE(one_round.budget_exhausted);
  }
}

TEST(SatSynthesis, RejectsContractViolations) {
  EXPECT_THROW(synth_sat(xor_n(3), 0, 3), ftl::ContractViolation);
  EXPECT_THROW(synth_sat(TruthTable(0), 2, 2), ftl::ContractViolation);
  EXPECT_THROW(synth_sat(xor_n(3), 9, 9), ftl::ContractViolation);
}

// -- exhaustive-search budget satellite -------------------------------------

TEST(SearchBudget, ExhaustiveRefusesOversizedCandidateSpaces) {
  // 4×5 at 6 vars: 14^20 ≈ 8e22 candidates — far past the 4e12 default.
  const TruthTable target = xor_n(6);
  try {
    exhaustive_synthesis(target, 4, 5);
    FAIL() << "expected SearchBoundExceeded";
  } catch (const SearchBoundExceeded& e) {
    EXPECT_GT(e.candidates(), e.budget());
    EXPECT_EQ(e.budget(), 4e12);
    EXPECT_NE(std::string(e.what()).find("synth_sat"), std::string::npos);
  }
}

TEST(SearchBudget, BudgetIsConfigurable) {
  SearchOptions options;
  options.max_candidates = 10;  // 6^4 = 1296 candidates > 10
  EXPECT_THROW(exhaustive_synthesis(xor_n(2), 2, 2, options),
               SearchBoundExceeded);
  // SearchBoundExceeded is an ftl::Error, so generic handlers catch it.
  EXPECT_THROW(exhaustive_synthesis(xor_n(2), 2, 2, options), ftl::Error);
  options.max_candidates = 1e300;
  EXPECT_TRUE(exhaustive_synthesis(xor_n(2), 2, 2, options).has_value());
}

TEST(SearchBudget, CandidateOrderIsSharedBetweenEngines) {
  const auto choices = search_candidate_values(2, true);
  ASSERT_EQ(choices.size(), 6u);
  for (int v = 0; v < 2; ++v) {
    for (const bool positive : {true, false}) {
      const int index = 2 * v + (positive ? 0 : 1);
      EXPECT_EQ(choices[static_cast<std::size_t>(index)].kind,
                CellValue::Kind::kLiteral);
      EXPECT_EQ(choices[static_cast<std::size_t>(index)].literal.var, v);
      EXPECT_EQ(choices[static_cast<std::size_t>(index)].literal.positive,
                positive);
      // The CNF selector index must mean the same thing.
      for (std::uint64_t m = 0; m < 4; ++m) {
        EXPECT_EQ(ftl::sat::LatticeSynthesisCnf::choice_on(index, 2, m),
                  choices[static_cast<std::size_t>(index)].evaluate(m));
      }
    }
  }
  EXPECT_EQ(choices[4].kind, CellValue::Kind::kConst1);
  EXPECT_EQ(choices[5].kind, CellValue::Kind::kConst0);
}

// -- SAT equivalence backend ------------------------------------------------

TEST(SatEquivalence, ConfirmsAndRefutesLikeTheBddBackend) {
  std::mt19937_64 rng(0x5eed);
  for (int trial = 0; trial < 24; ++trial) {
    const Lattice lat = random_lattice(3, 3, 4, 1000 + trial);
    TruthTable target = ftl::lattice::realized_truth_table(lat);
    const bool mutate = (trial % 2) == 1;
    if (mutate) {
      target.set(rng() & 0xf, !target.get(rng() & 0xf));
    }
    EquivalenceOptions bdd_options;
    bdd_options.backend = EquivalenceOptions::Backend::kBdd;
    EquivalenceOptions sat_options;
    sat_options.backend = EquivalenceOptions::Backend::kSat;
    const auto bdd = verify_equivalence(lat, target, bdd_options);
    const auto sat = verify_equivalence(lat, target, sat_options);
    ASSERT_EQ(bdd.realizes, sat.realizes) << "trial " << trial;
    if (!sat.realizes) {
      // The counterexample must be genuine, whatever minterm each backend
      // picked.
      ASSERT_TRUE(sat.counterexample.has_value());
      const std::uint64_t m = *sat.counterexample;
      EXPECT_EQ(lat.evaluate(m), sat.lattice_value);
      EXPECT_NE(lat.evaluate(m), target.get(m));
    }
  }
}

TEST(SatEquivalence, HandlesConstantTargets) {
  Lattice ones(2, 2, 3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) ones.set(r, c, CellValue::one());
  }
  EXPECT_TRUE(verify_equivalence_sat(ones, TruthTable::constant(3, true))
                  .realizes);
  const auto wrong =
      verify_equivalence_sat(ones, TruthTable::constant(3, false));
  EXPECT_FALSE(wrong.realizes);
  ASSERT_TRUE(wrong.counterexample.has_value());
  EXPECT_TRUE(wrong.lattice_value);
}

TEST(SatEquivalence, AutoBackendSwitchesOnVariableCount) {
  // With the threshold forced to 0, kAuto must route through the SAT miter
  // and still return the right verdict.
  const Lattice lat = random_lattice(3, 3, 4, 77);
  const TruthTable target = ftl::lattice::realized_truth_table(lat);
  EquivalenceOptions options;
  options.backend = EquivalenceOptions::Backend::kAuto;
  options.sat_fallback_vars = 0;
  EXPECT_TRUE(verify_equivalence(lat, target, options).realizes);
}

// -- symmetry breaking and certified infeasibility --------------------------

TEST(SatSynthesis, SymmetryBreakingPreservesEveryVerdict) {
  // The lex-leader constraints must never change feasibility — reflections
  // map solutions to solutions, so pruning to orbit representatives keeps
  // at least one model whenever any exists. Property-checked over every
  // 3-var function at 2×2, on vs off.
  for (std::uint64_t bits = 0; bits < 256; ++bits) {
    const TruthTable target = TruthTable::from_bits(3, bits);
    SatSynthesisOptions plain;
    plain.symmetry_break = false;
    const SatSynthesisResult off = synth_sat(target, 2, 2, plain);
    const SatSynthesisResult on = synth_sat(target, 2, 2);
    ASSERT_EQ(off.lattice.has_value(), on.lattice.has_value())
        << "target bits " << bits;
    EXPECT_EQ(off.proven_infeasible, on.proven_infeasible);
    if (on.lattice.has_value()) {
      EXPECT_TRUE(realizes(*on.lattice, target)) << "target bits " << bits;
    }
  }
}

TEST(SatSynthesis, CertifiedInfeasibilityChecksTheDratProof) {
  // XOR3 at 2×3 is the paper's infeasible shape; with certify the final
  // UNSAT must come back through the embedded DRAT checker accepted.
  SatSynthesisOptions options;
  options.certify = true;
  const SatSynthesisResult result = synth_sat(xor_n(3), 2, 3, options);
  EXPECT_TRUE(result.proven_infeasible);
  EXPECT_TRUE(result.proof_checked);
  EXPECT_TRUE(result.proof_valid);
  EXPECT_GE(result.proof_check_ms, 0.0);

  // A feasible run ends without an UNSAT, so there is nothing to certify —
  // the lattice itself is bitslice-verified instead.
  const SatSynthesisResult found = synth_sat(xor_n(3), 3, 3, options);
  ASSERT_TRUE(found.lattice.has_value());
  EXPECT_FALSE(found.proof_checked);
  EXPECT_FALSE(found.proof_valid);
}

// -- the headline: past the exhaustive wall ---------------------------------

TEST(SatSynthesis, SynthesizesAFiveByFiveEightVarLatticeExhaustiveCannot) {
  // Target: the function of a random 5×5 8-variable lattice — guaranteed
  // realizable at this shape, far outside both exhaustive contracts
  // (cells <= 20, vars <= 6). Seed 1 is a genuinely 8-dependent function
  // whose CEGAR run finishes in a couple of seconds.
  const Lattice secret = random_lattice(5, 5, 8, 1);
  const TruthTable target = ftl::lattice::realized_truth_table(secret);
  for (int v = 0; v < 8; ++v) {
    ASSERT_TRUE(target.depends_on(v)) << "variable " << v;
  }
  EXPECT_THROW(exhaustive_synthesis(target, 5, 5), ftl::ContractViolation);

  const SatSynthesisResult result = synth_sat(target, 5, 5);
  ASSERT_TRUE(result.lattice.has_value());
  EXPECT_TRUE(realizes(*result.lattice, target));
  EXPECT_EQ(result.lattice->rows(), 5);
  EXPECT_EQ(result.lattice->cols(), 5);
}

TEST(SatSynthesis, SynthesizesAStructuredEightVarFunctionOn5x5) {
  // f = x0x1 | x2x3 | x4x5 | x6x7: the kind of 8-variable target users
  // actually submit, and an easy CEGAR instance (subsecond).
  const TruthTable target =
      TruthTable::from_function(8, [](std::uint64_t m) {
        return ((m & 3) == 3) || (((m >> 2) & 3) == 3) ||
               (((m >> 4) & 3) == 3) || (((m >> 6) & 3) == 3);
      });
  const SatSynthesisResult result = synth_sat(target, 5, 5);
  ASSERT_TRUE(result.lattice.has_value());
  EXPECT_TRUE(realizes(*result.lattice, target));
}

}  // namespace
