// Lattice function derivation: the semantic (connectivity) route and the
// symbolic (path substitution + absorption) route must agree.
#include <gtest/gtest.h>

#include <random>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/logic/truth_table.hpp"

namespace {

using ftl::lattice::CellValue;
using ftl::lattice::Lattice;
using ftl::lattice::realized_sop;
using ftl::lattice::realized_truth_table;
using ftl::lattice::realizes;
using ftl::logic::TruthTable;

Lattice random_lattice(int rows, int cols, int num_vars, unsigned seed,
                       bool with_constants) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> choice(0, 2 * num_vars + (with_constants ? 1 : -1));
  Lattice lat(rows, cols, num_vars);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int pick = choice(rng);
      if (pick < 2 * num_vars) {
        lat.set(r, c, CellValue::of(pick / 2, pick % 2 == 0));
      } else if (pick == 2 * num_vars) {
        lat.set(r, c, CellValue::zero());
      } else {
        lat.set(r, c, CellValue::one());
      }
    }
  }
  return lat;
}

TEST(LatticeFunction, AndOfColumnCells) {
  Lattice lat(3, 1, 3, {"a", "b", "c"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(1, 0, CellValue::of(1));
  lat.set(2, 0, CellValue::of(2));
  const TruthTable expected = TruthTable::variable(3, 0) &
                              TruthTable::variable(3, 1) &
                              TruthTable::variable(3, 2);
  EXPECT_EQ(realized_truth_table(lat), expected);
  EXPECT_TRUE(realizes(lat, expected));
  EXPECT_FALSE(realizes(lat, ~expected));
}

TEST(LatticeFunction, ConstantZeroCellKillsPath) {
  Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(1, 0, CellValue::zero());
  EXPECT_TRUE(realized_truth_table(lat).is_zero());
  EXPECT_TRUE(realized_sop(lat).empty());
}

TEST(LatticeFunction, ConstantOneColumn) {
  Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, CellValue::one());
  lat.set(1, 0, CellValue::one());
  EXPECT_TRUE(realized_truth_table(lat).is_one());
  EXPECT_TRUE(realized_sop(lat).has_constant_one());
}

TEST(LatticeFunction, ContradictoryPathDropsOut) {
  // Column [a; a']: never conducts.
  Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, CellValue::of(0, true));
  lat.set(1, 0, CellValue::of(0, false));
  EXPECT_TRUE(realized_truth_table(lat).is_zero());
  EXPECT_TRUE(realized_sop(lat).empty());
}

TEST(LatticeFunction, RepeatedLiteralCollapsesInProduct) {
  // Column [a; a]: f = a (not a*a as two literals).
  Lattice lat(2, 1, 1, {"a"});
  lat.set(0, 0, CellValue::of(0));
  lat.set(1, 0, CellValue::of(0));
  const auto sop = realized_sop(lat);
  ASSERT_EQ(sop.size(), 1);
  EXPECT_EQ(sop.to_string({"a"}), "a");
}

struct RandomLatticeCase {
  int rows;
  int cols;
  int num_vars;
  unsigned seed;
  bool with_constants;
};

class LatticeFunctionRandom
    : public ::testing::TestWithParam<RandomLatticeCase> {};

TEST_P(LatticeFunctionRandom, SymbolicAgreesWithSemantic) {
  const auto p = GetParam();
  const Lattice lat =
      random_lattice(p.rows, p.cols, p.num_vars, p.seed, p.with_constants);
  const TruthTable semantic = realized_truth_table(lat);
  const TruthTable symbolic =
      TruthTable::from_sop(realized_sop(lat));
  EXPECT_EQ(symbolic, semantic) << lat.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    RandomLattices, LatticeFunctionRandom,
    ::testing::Values(RandomLatticeCase{2, 2, 2, 1, false},
                      RandomLatticeCase{2, 2, 2, 2, true},
                      RandomLatticeCase{3, 3, 3, 1, false},
                      RandomLatticeCase{3, 3, 3, 2, true},
                      RandomLatticeCase{3, 3, 3, 3, true},
                      RandomLatticeCase{3, 4, 3, 4, true},
                      RandomLatticeCase{4, 3, 3, 5, true},
                      RandomLatticeCase{4, 4, 4, 6, false},
                      RandomLatticeCase{4, 4, 4, 7, true},
                      RandomLatticeCase{2, 5, 3, 8, true},
                      RandomLatticeCase{5, 2, 3, 9, true},
                      RandomLatticeCase{4, 4, 2, 10, true}));

TEST(LatticeFunction, KnownXor3MappingsRealizeXor3) {
  const TruthTable xor3 = ftl::lattice::xor3_truth_table();
  EXPECT_TRUE(realizes(ftl::lattice::xor3_lattice_3x3(), xor3));
  EXPECT_TRUE(realizes(ftl::lattice::xor3_lattice_3x4(), xor3));
  // And via the symbolic route too.
  EXPECT_EQ(TruthTable::from_sop(realized_sop(ftl::lattice::xor3_lattice_3x3())),
            xor3);
}

TEST(LatticeFunction, Xor3MappingSizesMatchPaper) {
  const auto small = ftl::lattice::xor3_lattice_3x3();
  EXPECT_EQ(small.rows(), 3);
  EXPECT_EQ(small.cols(), 3);
  const auto large = ftl::lattice::xor3_lattice_3x4();
  EXPECT_EQ(large.rows(), 3);
  EXPECT_EQ(large.cols(), 4);
}

}  // namespace
