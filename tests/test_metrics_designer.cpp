// Tests for the §VI-A extensions: complementary lattice circuits, the
// gate-metrics engine, and the automated design explorer.
#include <gtest/gtest.h>

#include "ftl/bridge/metrics.hpp"
#include "ftl/designer/designer.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;

logic::TruthTable maj3() {
  return logic::parse_expression("a b + b c + a c").table;
}

class ComplementaryTruth : public ::testing::TestWithParam<int> {};

TEST_P(ComplementaryTruth, OutputSwingsRailToRail) {
  const int code = GetParam();
  const logic::TruthTable f = maj3();
  const lattice::Lattice pdn = lattice::altun_riedel_synthesis(f, {"a", "b", "c"});
  const lattice::Lattice pun = lattice::altun_riedel_synthesis(~f, {"a", "b", "c"});

  std::map<int, spice::Waveform> drives;
  for (int v = 0; v < 3; ++v) {
    drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
  }
  bridge::LatticeCircuit lc =
      bridge::build_complementary_lattice_circuit(pdn, pun, drives);
  const spice::OpResult op = spice::dc_operating_point(lc.circuit);
  ASSERT_TRUE(op.converged);
  const double out =
      op.solution[static_cast<std::size_t>(lc.circuit.find_node("out"))];
  if (f.get(static_cast<std::uint64_t>(code))) {
    // Pull-down active: a hard 0 (no resistive divider).
    EXPECT_LT(out, 0.05) << "code " << code;
  } else {
    // Pull-up active through n-type switches: VDD minus a threshold-ish drop.
    EXPECT_GT(out, 1.0) << "code " << code;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodes, ComplementaryTruth, ::testing::Range(0, 8));

TEST(Complementary, RejectsNonComplementaryPullup) {
  const logic::TruthTable f = maj3();
  const lattice::Lattice pdn = lattice::altun_riedel_synthesis(f);
  // Pull-up realizing f itself (not its complement) must be rejected.
  EXPECT_THROW(bridge::build_complementary_lattice_circuit(pdn, pdn, {}),
               ftl::Error);
}

TEST(Metrics, ResistorGateOnMaj3) {
  const logic::TruthTable f = maj3();
  const lattice::Lattice lat = lattice::altun_riedel_synthesis(f, {"a", "b", "c"});
  const bridge::GateMetrics m = bridge::measure_resistor_gate(lat, f);
  EXPECT_TRUE(m.functional);
  EXPECT_EQ(m.switch_count, lat.cell_count());
  // Resistor pull-up: static power when the lattice conducts is roughly
  // VDD^2 / Rpullup (on-resistance is small against 500k).
  EXPECT_NEAR(m.static_power_worst, 1.2 * 1.2 / 500e3, 1.0e-6);
  EXPECT_GT(m.rise_time, 0.0);
  EXPECT_GT(m.fall_time, 0.0);
  EXPECT_GT(m.rise_time, m.fall_time);  // the §V pull-up asymmetry
  EXPECT_GT(m.propagation_delay, 0.0);
  EXPECT_GT(m.max_frequency, 0.0);
  EXPECT_GT(m.energy_per_transition, 0.0);
  EXPECT_GT(m.output_high_min, 1.1);
  EXPECT_LT(m.output_low_max, 0.2);
}

TEST(Metrics, ComplementaryCutsStaticPower) {
  const logic::TruthTable f = maj3();
  const lattice::Lattice pdn = lattice::altun_riedel_synthesis(f, {"a", "b", "c"});
  const lattice::Lattice pun = lattice::altun_riedel_synthesis(~f, {"a", "b", "c"});
  const bridge::GateMetrics resistor = bridge::measure_resistor_gate(pdn, f);
  const bridge::GateMetrics comp =
      bridge::measure_complementary_gate(pdn, pun, f);
  EXPECT_TRUE(comp.functional);
  EXPECT_LT(comp.static_power_worst, 0.01 * resistor.static_power_worst);
  EXPECT_LT(comp.propagation_delay, resistor.propagation_delay);
  EXPECT_EQ(comp.switch_count, pdn.cell_count() + pun.cell_count());
}

TEST(Metrics, BrokenGateIsFlaggedNonFunctional) {
  // A lattice realizing the WRONG function must fail the functional check.
  const logic::TruthTable f = maj3();
  const lattice::Lattice wrong =
      lattice::altun_riedel_synthesis(~f, {"a", "b", "c"});
  const bridge::GateMetrics m = bridge::measure_resistor_gate(wrong, f);
  EXPECT_FALSE(m.functional);
}

TEST(Designer, ExploresXor3) {
  const auto xor3 = lattice::xor3_truth_table();
  const auto candidates = designer::explore_designs(xor3, {"a", "b", "c"});
  ASSERT_GE(candidates.size(), 2u);
  for (const auto& c : candidates) {
    EXPECT_TRUE(c.metrics.functional) << c.method;
    EXPECT_TRUE(lattice::realizes(c.pulldown, xor3)) << c.method;
    if (c.pullup) {
      EXPECT_TRUE(lattice::realizes(*c.pullup, ~xor3)) << c.method;
    }
  }
  // The baseline A-R candidate comes first.
  EXPECT_EQ(candidates.front().method, "altun-riedel");
  // The complementary candidate exists and is the only one with a pull-up.
  int complementary = 0;
  for (const auto& c : candidates) complementary += c.is_complementary() ? 1 : 0;
  EXPECT_EQ(complementary, 1);
}

TEST(Designer, AreaWeightPicksSmallest) {
  const auto f = maj3();
  const auto candidates = designer::explore_designs(f, {"a", "b", "c"});
  designer::DesignWeights area_only;
  area_only.area = 1.0;
  area_only.delay = 0.0;
  area_only.static_power = 0.0;
  area_only.energy = 0.0;
  const std::size_t best = designer::pick_best(candidates, area_only);
  for (const auto& c : candidates) {
    if (!c.metrics.functional) continue;
    EXPECT_LE(candidates[best].metrics.switch_count, c.metrics.switch_count);
  }
}

TEST(Designer, PowerWeightPicksComplementary) {
  const auto f = maj3();
  const auto candidates = designer::explore_designs(f, {"a", "b", "c"});
  designer::DesignWeights power_only;
  power_only.area = 0.0;
  power_only.delay = 0.0;
  power_only.static_power = 1.0;
  power_only.energy = 0.0;
  const std::size_t best = designer::pick_best(candidates, power_only);
  EXPECT_TRUE(candidates[best].is_complementary());
}

TEST(Designer, ReportListsEveryCandidate) {
  const auto candidates = designer::explore_designs(maj3(), {"a", "b", "c"});
  const std::string report = designer::render_report(candidates);
  for (const auto& c : candidates) {
    EXPECT_NE(report.find(c.method), std::string::npos);
  }
}

TEST(Designer, RejectsConstantsAndWideFunctions) {
  EXPECT_THROW(designer::explore_designs(logic::TruthTable::constant(2, true)),
               ftl::Error);
  EXPECT_THROW(designer::explore_designs(logic::TruthTable(7)), ftl::Error);
}

}  // namespace
