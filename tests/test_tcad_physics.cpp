// Materials and charge-sheet physics tests: the textbook quantities behind
// Table II and the §III-B threshold voltages.
#include <gtest/gtest.h>

#include "ftl/tcad/charge_sheet.hpp"
#include "ftl/tcad/device.hpp"
#include "ftl/tcad/materials.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::tcad;

TEST(Materials, DielectricConstants) {
  EXPECT_DOUBLE_EQ(dielectric_constant(GateDielectric::kSiO2), 3.9);
  EXPECT_DOUBLE_EQ(dielectric_constant(GateDielectric::kHfO2), 25.0);
  EXPECT_EQ(to_string(GateDielectric::kHfO2), "HfO2");
}

TEST(Materials, FermiPotentialOfTableIIDoping) {
  // Na = 1e17 cm^-3 -> phiF ≈ 0.407 V at 300 K.
  EXPECT_NEAR(fermi_potential(1e23), 0.407, 0.005);
  // Higher doping moves the Fermi level further.
  EXPECT_GT(fermi_potential(1e24), fermi_potential(1e23));
  EXPECT_THROW(fermi_potential(1e10), ftl::ContractViolation);
}

TEST(Materials, DepletionQuantities) {
  // Textbook values for Na = 1e17 cm^-3.
  EXPECT_NEAR(max_depletion_width(1e23), 103e-9, 5e-9);
  EXPECT_NEAR(depletion_charge(1e23), 1.64e-3, 0.05e-3);
}

TEST(Materials, OxideCapacitance) {
  // 30 nm HfO2: Cox = 25 * eps0 / 30 nm ≈ 7.38 mF/m^2.
  EXPECT_NEAR(oxide_capacitance(GateDielectric::kHfO2, 30e-9), 7.38e-3, 0.05e-3);
  EXPECT_NEAR(oxide_capacitance(GateDielectric::kSiO2, 30e-9), 1.15e-3, 0.02e-3);
  // HfO2 beats SiO2 by the ratio of dielectric constants.
  EXPECT_NEAR(oxide_capacitance(GateDielectric::kHfO2, 30e-9) /
                  oxide_capacitance(GateDielectric::kSiO2, 30e-9),
              25.0 / 3.9, 1e-9);
  EXPECT_THROW(oxide_capacitance(GateDielectric::kSiO2, 0.0),
               ftl::ContractViolation);
}

TEST(Device, TableIIGeometry) {
  const DeviceSpec sq = make_device(DeviceShape::kSquare, GateDielectric::kHfO2);
  EXPECT_DOUBLE_EQ(sq.footprint, 2400e-9);
  EXPECT_DOUBLE_EQ(sq.gate_extent, 1000e-9);
  EXPECT_DOUBLE_EQ(sq.oxide_thickness, 30e-9);
  EXPECT_DOUBLE_EQ(sq.substrate_acceptors, 1e23);
  EXPECT_FALSE(sq.is_depletion());

  const DeviceSpec cr = make_device(DeviceShape::kCross, GateDielectric::kSiO2);
  EXPECT_DOUBLE_EQ(cr.gate_extent, 200e-9);  // W:200 arm
  EXPECT_DOUBLE_EQ(cr.narrow_width, 200e-9);

  const DeviceSpec jl = make_device(DeviceShape::kJunctionless, GateDielectric::kHfO2);
  EXPECT_DOUBLE_EQ(jl.footprint, 24e-9);
  EXPECT_TRUE(jl.is_depletion());
  EXPECT_DOUBLE_EQ(jl.substrate_acceptors, 0.0);  // SiO2 substrate
}

struct VthCase {
  DeviceShape shape;
  GateDielectric dielectric;
  double paper_vth;
  double tolerance;
};

class ThresholdVoltages : public ::testing::TestWithParam<VthCase> {};

TEST_P(ThresholdVoltages, AnalyticVthTracksPaper) {
  const auto p = GetParam();
  const ChargeSheetModel model(make_device(p.shape, p.dielectric));
  EXPECT_NEAR(model.threshold_voltage(), p.paper_vth, p.tolerance)
      << to_string(p.shape) << "/" << to_string(p.dielectric);
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, ThresholdVoltages,
    ::testing::Values(
        // §III-B reports: square 0.16/1.36, cross 0.27/1.76, JL -0.57/-4.8.
        VthCase{DeviceShape::kSquare, GateDielectric::kHfO2, 0.16, 0.05},
        VthCase{DeviceShape::kSquare, GateDielectric::kSiO2, 1.36, 0.15},
        VthCase{DeviceShape::kCross, GateDielectric::kHfO2, 0.27, 0.06},
        VthCase{DeviceShape::kCross, GateDielectric::kSiO2, 1.76, 0.25},
        VthCase{DeviceShape::kJunctionless, GateDielectric::kHfO2, -0.57, 0.05},
        // Known divergence (DESIGN.md §7): same sign and magnitude class.
        VthCase{DeviceShape::kJunctionless, GateDielectric::kSiO2, -4.8, 2.1}));

TEST(ChargeSheet, VthOrderingAcrossDevices) {
  const auto vth = [](DeviceShape s, GateDielectric d) {
    return ChargeSheetModel(make_device(s, d)).threshold_voltage();
  };
  // HfO2 always below SiO2 (bigger Cox absorbs the depletion charge).
  EXPECT_LT(vth(DeviceShape::kSquare, GateDielectric::kHfO2),
            vth(DeviceShape::kSquare, GateDielectric::kSiO2));
  // The narrow cross arms raise Vth relative to the square gate.
  EXPECT_GT(vth(DeviceShape::kCross, GateDielectric::kHfO2),
            vth(DeviceShape::kSquare, GateDielectric::kHfO2));
  EXPECT_GT(vth(DeviceShape::kCross, GateDielectric::kSiO2),
            vth(DeviceShape::kSquare, GateDielectric::kSiO2));
  // Depletion device: negative threshold.
  EXPECT_LT(vth(DeviceShape::kJunctionless, GateDielectric::kHfO2), 0.0);
  EXPECT_LT(vth(DeviceShape::kJunctionless, GateDielectric::kSiO2),
            vth(DeviceShape::kJunctionless, GateDielectric::kHfO2));
}

TEST(ChargeSheet, MobileChargeMonotoneInGateVoltage) {
  const ChargeSheetModel model(
      make_device(DeviceShape::kSquare, GateDielectric::kHfO2));
  double prev = -1.0;
  for (double vg = -1.0; vg <= 5.0; vg += 0.25) {
    const double q = model.mobile_charge(vg, 0.0);
    EXPECT_GT(q, 0.0);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(ChargeSheet, MobileChargeDecreasesWithChannelPotential) {
  const ChargeSheetModel model(
      make_device(DeviceShape::kSquare, GateDielectric::kHfO2));
  double prev = 1e9;
  for (double v = 0.0; v <= 5.0; v += 0.5) {
    const double q = model.mobile_charge(5.0, v);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(ChargeSheet, StrongInversionChargeIsCoxTimesOverdrive) {
  const ChargeSheetModel model(
      make_device(DeviceShape::kSquare, GateDielectric::kHfO2));
  const double vth = model.threshold_voltage();
  const double q = model.mobile_charge(5.0, 0.0);
  EXPECT_NEAR(q, model.cox() * (5.0 - vth), 0.05 * q);
}

TEST(ChargeSheet, JunctionlessChargeSaturatesAtFullWire) {
  const auto spec = make_device(DeviceShape::kJunctionless, GateDielectric::kHfO2);
  const ChargeSheetModel model(spec);
  const double q_full = ftl::tcad::constants::kElementaryCharge *
                        spec.electrode_donors * spec.channel_thickness;
  EXPECT_LE(model.mobile_charge(20.0, 0.0), q_full * (1.0 + 1e-9));
  EXPECT_GT(model.mobile_charge(20.0, 0.0), 0.95 * q_full);
}

TEST(ChargeSheet, SheetConductanceByRegion) {
  const ChargeSheetModel model(
      make_device(DeviceShape::kSquare, GateDielectric::kHfO2));
  EXPECT_DOUBLE_EQ(model.sheet_conductance(Region::kOutside, 5.0, 0.0), 0.0);
  EXPECT_GT(model.sheet_conductance(Region::kConductor, 5.0, 0.0), 1e-3);
  const double on = model.sheet_conductance(Region::kGated, 5.0, 0.0);
  const double off = model.sheet_conductance(Region::kGated, -1.0, 0.0);
  EXPECT_GT(on / off, 1e6);  // gate control spans many decades
}

TEST(ChargeSheet, IdealityAboveOneForEnhancement) {
  const ChargeSheetModel hfo2(
      make_device(DeviceShape::kSquare, GateDielectric::kHfO2));
  const ChargeSheetModel sio2(
      make_device(DeviceShape::kSquare, GateDielectric::kSiO2));
  EXPECT_GT(hfo2.ideality(), 1.0);
  // The thinner the EOT (bigger Cox), the closer to ideal.
  EXPECT_LT(hfo2.ideality(), sio2.ideality());
}

}  // namespace
