// Boolean expression parser tests.
#include <gtest/gtest.h>

#include "ftl/logic/expr_parser.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::logic::parse_expression;
using ftl::logic::TruthTable;

TEST(ExprParser, SingleVariable) {
  const auto f = parse_expression("a");
  ASSERT_EQ(f.var_names.size(), 1u);
  EXPECT_EQ(f.var_names[0], "a");
  EXPECT_EQ(f.table, TruthTable::variable(1, 0));
}

TEST(ExprParser, AndOrPrecedence) {
  // a + b c  must parse as a + (b c).
  const auto f = parse_expression("a + b c");
  ASSERT_EQ(f.var_names.size(), 3u);
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable b = TruthTable::variable(3, 1);
  const TruthTable c = TruthTable::variable(3, 2);
  EXPECT_EQ(f.table, a | (b & c));
}

TEST(ExprParser, ExplicitOperatorsAndParens) {
  const auto f = parse_expression("(a | b) & !c");
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable b = TruthTable::variable(3, 1);
  const TruthTable c = TruthTable::variable(3, 2);
  EXPECT_EQ(f.table, (a | b) & ~c);
}

TEST(ExprParser, PostfixComplement) {
  const auto f = parse_expression("a b' + a' b");
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ(f.table, a ^ b);
}

TEST(ExprParser, DoubleComplementCancels) {
  const auto f = parse_expression("a''");
  EXPECT_EQ(f.table, TruthTable::variable(1, 0));
  const auto g = parse_expression("!!a");
  EXPECT_EQ(g.table, TruthTable::variable(1, 0));
}

TEST(ExprParser, Constants) {
  EXPECT_TRUE(parse_expression("0").table.is_zero());
  EXPECT_TRUE(parse_expression("1").table.is_one());
  const auto f = parse_expression("a + 1");
  EXPECT_TRUE(f.table.is_one());
}

TEST(ExprParser, StarAsAnd) {
  const auto f = parse_expression("x1*x2 + x3");
  ASSERT_EQ(f.var_names.size(), 3u);
  EXPECT_EQ(f.var_names[0], "x1");
  EXPECT_EQ(f.var_names[2], "x3");
}

TEST(ExprParser, Xor3Expression) {
  const auto f = parse_expression("a b c + a b' c' + a' b c' + a' b' c");
  const TruthTable xor3 = TruthTable::from_function(3, [](std::uint64_t m) {
    return (((m >> 0) ^ (m >> 1) ^ (m >> 2)) & 1) != 0;
  });
  EXPECT_EQ(f.table, xor3);
}

TEST(ExprParser, FixedVariableOrdering) {
  const auto f = parse_expression("b", {"a", "b"});
  EXPECT_EQ(f.table, TruthTable::variable(2, 1));
  EXPECT_THROW(parse_expression("c", {"a", "b"}), ftl::Error);
}

TEST(ExprParser, VariableOrderIsFirstAppearance) {
  const auto f = parse_expression("z + y + x");
  ASSERT_EQ(f.var_names.size(), 3u);
  EXPECT_EQ(f.var_names[0], "z");
  EXPECT_EQ(f.var_names[1], "y");
  EXPECT_EQ(f.var_names[2], "x");
}

TEST(ExprParser, SyntaxErrors) {
  EXPECT_THROW(parse_expression(""), ftl::Error);
  EXPECT_THROW(parse_expression("a +"), ftl::Error);
  EXPECT_THROW(parse_expression("(a"), ftl::Error);
  EXPECT_THROW(parse_expression("a ) b"), ftl::Error);
  EXPECT_THROW(parse_expression("a # b"), ftl::Error);
  EXPECT_THROW(parse_expression("+ a"), ftl::Error);
}

TEST(ExprParser, UnderscoreAndDigitsInNames) {
  const auto f = parse_expression("in_1 out2'");
  ASSERT_EQ(f.var_names.size(), 2u);
  EXPECT_EQ(f.var_names[0], "in_1");
  EXPECT_EQ(f.var_names[1], "out2");
}

}  // namespace
