// Levenberg–Marquardt tests: parameter recovery on known models, bounds,
// and degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ftl/linalg/levmar.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::linalg::LevMarOptions;
using ftl::linalg::levenberg_marquardt;
using ftl::linalg::Vector;

TEST(LevMar, FitsLineExactly) {
  // y = 2x + 1 on 10 points.
  const auto fn = [](const Vector& p, Vector& r) {
    for (int i = 0; i < 10; ++i) {
      const double x = i * 0.1;
      r[static_cast<std::size_t>(i)] = (p[0] * x + p[1]) - (2.0 * x + 1.0);
    }
  };
  const auto result = levenberg_marquardt(fn, {0.0, 0.0}, 10);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.parameters[0], 2.0, 1e-8);
  EXPECT_NEAR(result.parameters[1], 1.0, 1e-8);
  EXPECT_NEAR(result.rms, 0.0, 1e-8);
}

TEST(LevMar, FitsExponentialDecay) {
  // y = 3 exp(-1.7 x): nonlinear in the rate parameter.
  const auto fn = [](const Vector& p, Vector& r) {
    for (int i = 0; i < 20; ++i) {
      const double x = i * 0.15;
      r[static_cast<std::size_t>(i)] =
          p[0] * std::exp(-p[1] * x) - 3.0 * std::exp(-1.7 * x);
    }
  };
  const auto result = levenberg_marquardt(fn, {1.0, 0.5}, 20);
  EXPECT_NEAR(result.parameters[0], 3.0, 1e-5);
  EXPECT_NEAR(result.parameters[1], 1.7, 1e-5);
}

struct QuadraticCase {
  double a;
  double b;
  double c;
};

class LevMarQuadratic : public ::testing::TestWithParam<QuadraticCase> {};

TEST_P(LevMarQuadratic, RecoversCoefficients) {
  const auto target = GetParam();
  const auto fn = [&target](const Vector& p, Vector& r) {
    for (int i = 0; i < 15; ++i) {
      const double x = -1.0 + i * 0.15;
      const double y = target.a * x * x + target.b * x + target.c;
      r[static_cast<std::size_t>(i)] = (p[0] * x * x + p[1] * x + p[2]) - y;
    }
  };
  const auto result = levenberg_marquardt(fn, {0.1, 0.1, 0.1}, 15);
  EXPECT_NEAR(result.parameters[0], target.a, 1e-6);
  EXPECT_NEAR(result.parameters[1], target.b, 1e-6);
  EXPECT_NEAR(result.parameters[2], target.c, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Coefficients, LevMarQuadratic,
    ::testing::Values(QuadraticCase{1.0, 0.0, 0.0}, QuadraticCase{-2.0, 3.0, 1.0},
                      QuadraticCase{0.5, -0.5, 10.0}, QuadraticCase{4.0, 4.0, -4.0}));

TEST(LevMar, RespectsBounds) {
  // True minimum at p = 5, but the upper bound caps it at 2.
  const auto fn = [](const Vector& p, Vector& r) { r[0] = p[0] - 5.0; };
  LevMarOptions options;
  options.lower_bounds = {0.0};
  options.upper_bounds = {2.0};
  const auto result = levenberg_marquardt(fn, {1.0}, 1, options);
  EXPECT_LE(result.parameters[0], 2.0 + 1e-12);
  EXPECT_NEAR(result.parameters[0], 2.0, 1e-6);
}

TEST(LevMar, NoisyDataStillCloses) {
  std::mt19937 rng(11);
  std::normal_distribution<double> noise(0.0, 0.01);
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.05;
    ys.push_back(2.5 * x + 0.7 + noise(rng));
  }
  const auto fn = [&ys](const Vector& p, Vector& r) {
    for (int i = 0; i < 50; ++i) {
      const double x = i * 0.05;
      r[static_cast<std::size_t>(i)] = (p[0] * x + p[1]) - ys[static_cast<std::size_t>(i)];
    }
  };
  const auto result = levenberg_marquardt(fn, {0.0, 0.0}, 50);
  EXPECT_NEAR(result.parameters[0], 2.5, 0.05);
  EXPECT_NEAR(result.parameters[1], 0.7, 0.05);
  EXPECT_LT(result.rms, 0.05);
}

TEST(LevMar, BadBoundSizesThrow) {
  const auto fn = [](const Vector& p, Vector& r) { r[0] = p[0]; };
  LevMarOptions options;
  options.lower_bounds = {0.0, 0.0};  // two bounds for one parameter
  EXPECT_THROW(levenberg_marquardt(fn, {1.0}, 1, options), ftl::Error);
}

TEST(LevMar, RequiresEnoughResiduals) {
  const auto fn = [](const Vector&, Vector&) {};
  EXPECT_THROW(levenberg_marquardt(fn, {1.0, 2.0}, 1), ftl::ContractViolation);
}

}  // namespace
