// The embedded CDCL solver: literal packing, hand-built instances, clause
// learning on pigeonhole formulas, randomized cross-checks against the DPLL
// reference, determinism, assumptions, conflict budgets, and the path
// encodings against a scalar BFS ground truth.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "ftl/sat/dpll.hpp"
#include "ftl/sat/encode.hpp"
#include "ftl/sat/proof.hpp"
#include "ftl/sat/solver.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::sat::dpll_solve;
using ftl::sat::encode_path_absent;
using ftl::sat::encode_path_exists;
using ftl::sat::LatticeSynthesisCnf;
using ftl::sat::LBool;
using ftl::sat::Lit;
using ftl::sat::sat_counters;
using ftl::sat::Solver;
using ftl::sat::SolverOptions;
using ftl::sat::Var;

std::vector<Var> make_vars(Solver& solver, int n) {
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(solver.new_var());
  return vars;
}

TEST(SatLit, PackingRoundTrips) {
  const Lit a = Lit::of(3);
  EXPECT_EQ(a.var(), 3);
  EXPECT_TRUE(a.positive());
  EXPECT_TRUE(a.defined());
  const Lit na = ~a;
  EXPECT_EQ(na.var(), 3);
  EXPECT_FALSE(na.positive());
  EXPECT_EQ(~na, a);
  EXPECT_FALSE(Lit{}.defined());
  EXPECT_EQ(Lit::of(3, false), na);
}

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.solve(), LBool::kTrue);
}

TEST(SatSolver, UnitClausesPropagateIntoModel) {
  Solver solver;
  const auto v = make_vars(solver, 2);
  ASSERT_TRUE(solver.add_clause({Lit::of(v[0])}));
  ASSERT_TRUE(solver.add_clause({~Lit::of(v[1])}));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  EXPECT_EQ(solver.model_value(v[0]), LBool::kTrue);
  EXPECT_EQ(solver.model_value(v[1]), LBool::kFalse);
  EXPECT_EQ(solver.model_value(~Lit::of(v[1])), LBool::kTrue);
}

TEST(SatSolver, ContradictoryUnitsAreUnsatAtLevelZero) {
  Solver solver;
  const Var v = solver.new_var();
  ASSERT_TRUE(solver.add_clause({Lit::of(v)}));
  EXPECT_FALSE(solver.add_clause({~Lit::of(v)}));
  EXPECT_FALSE(solver.okay());
  EXPECT_EQ(solver.solve(), LBool::kFalse);
}

TEST(SatSolver, TautologyAndDuplicateLiteralsAreHandled) {
  Solver solver;
  const auto v = make_vars(solver, 2);
  // Tautology: dropped without constraining anything.
  ASSERT_TRUE(solver.add_clause({Lit::of(v[0]), ~Lit::of(v[0])}));
  EXPECT_EQ(solver.num_clauses(), 0u);
  // Duplicates merge to a unit.
  ASSERT_TRUE(solver.add_clause({Lit::of(v[1]), Lit::of(v[1])}));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  EXPECT_EQ(solver.model_value(v[1]), LBool::kTrue);
}

TEST(SatSolver, RejectsForeignLiterals) {
  Solver solver;
  EXPECT_THROW(solver.add_clause({Lit::of(0)}), ftl::ContractViolation);
  EXPECT_THROW(solver.add_clause({Lit{}}), ftl::ContractViolation);
}

TEST(SatSolver, TrueLitIsPinnedTrue) {
  Solver solver;
  const Lit t = solver.true_lit();
  EXPECT_EQ(t, solver.true_lit());  // lazily created once
  const Var v = solver.new_var();
  ASSERT_TRUE(solver.add_clause({~t, Lit::of(v)}));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  EXPECT_EQ(solver.model_value(t), LBool::kTrue);
  EXPECT_EQ(solver.model_value(v), LBool::kTrue);
}

/// Pigeonhole PHP(holes+1, holes): classically UNSAT and requires real
/// clause learning to refute at any speed.
void add_pigeonhole(Solver& solver, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)].push_back(solver.new_var());
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> somewhere;
    for (int h = 0; h < holes; ++h) {
      somewhere.push_back(Lit::of(in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    solver.add_clause(std::move(somewhere));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        solver.add_clause({~Lit::of(in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]),
                           ~Lit::of(in[static_cast<std::size_t>(q)][static_cast<std::size_t>(h)])});
      }
    }
  }
}

TEST(SatSolver, PigeonholeIsUnsatAndLearnsClauses) {
  Solver solver;
  add_pigeonhole(solver, 5);
  EXPECT_EQ(solver.solve(), LBool::kFalse);
  EXPECT_GT(solver.stats().conflicts, 0u);
  EXPECT_GT(solver.stats().learned_clauses, 0u);
}

TEST(SatSolver, MinimizationShortensPigeonholeLearntClauses) {
  // Pigeonhole refutations resolve over long all-different chains, so
  // recursive self-subsumption must find removable literals. The verdict
  // is untouched; the learnt clauses just get shorter.
  SolverOptions minimize;
  minimize.minimize_learnts = true;
  Solver with(minimize);
  add_pigeonhole(with, 5);
  EXPECT_EQ(with.solve(), LBool::kFalse);
  EXPECT_GT(with.stats().minimized_literals, 0u);

  SolverOptions raw = minimize;
  raw.minimize_learnts = false;
  Solver without(raw);
  add_pigeonhole(without, 5);
  EXPECT_EQ(without.solve(), LBool::kFalse);
  EXPECT_EQ(without.stats().minimized_literals, 0u);
}

TEST(SatSolver, MinimizedClausesStillCertifyUnderDrat) {
  // Dropping literals keeps each learnt clause RUP (it subsumes the raw
  // first-UIP clause), so the self-check must accept the minimized proof.
  SolverOptions options;
  options.minimize_learnts = true;
  options.certify = true;
  Solver solver(options);
  add_pigeonhole(solver, 4);
  EXPECT_EQ(solver.solve(), LBool::kFalse);
  EXPECT_GT(solver.stats().minimized_literals, 0u);
  const ftl::sat::DratCheckResult* check = solver.last_proof_check();
  ASSERT_NE(check, nullptr);
  EXPECT_TRUE(check->valid) << check->error;
  EXPECT_EQ(solver.proof_stats().failures, 0u);
  EXPECT_GE(solver.proof_stats().checks, 1u);
}

TEST(SatSolver, ConflictBudgetReturnsUndefAndCanBeRaised) {
  Solver solver;
  add_pigeonhole(solver, 7);
  solver.set_max_conflicts(1);
  EXPECT_EQ(solver.solve(), LBool::kUndef);
  EXPECT_TRUE(solver.okay());  // no verdict, solver still usable
  solver.set_max_conflicts(-1);
  EXPECT_EQ(solver.solve(), LBool::kFalse);
}

// -- randomized cross-check against the DPLL reference ----------------------

struct RandomCnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

RandomCnf random_3sat(int num_vars, int num_clauses, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  RandomCnf cnf;
  cnf.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit::of(var_dist(rng), sign_dist(rng) == 0));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

bool model_satisfies(const RandomCnf& cnf, const Solver& solver) {
  for (const std::vector<Lit>& clause : cnf.clauses) {
    bool satisfied = false;
    for (const Lit p : clause) {
      if (solver.model_value(p) == LBool::kTrue) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

TEST(SatSolver, MinimizationPreservesVerdictsOnRandomInstances) {
  // Differential check at the ~4.26 phase transition: minimize on vs off
  // must render the same verdict on every instance, and every model the
  // minimizing solver produces must actually satisfy the formula.
  std::uint64_t minimized_total = 0;
  int sat_seen = 0;
  int unsat_seen = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const int num_vars = 6 + static_cast<int>(seed % 7);
    const int num_clauses = static_cast<int>(4.3 * num_vars);
    const RandomCnf cnf = random_3sat(num_vars, num_clauses, 0x5eed + seed);

    SolverOptions on;
    on.minimize_learnts = true;
    Solver a(on);
    SolverOptions off;
    off.minimize_learnts = false;
    Solver b(off);
    make_vars(a, cnf.num_vars);
    make_vars(b, cnf.num_vars);
    for (const std::vector<Lit>& clause : cnf.clauses) {
      a.add_clause(clause);
      b.add_clause(clause);
    }
    const LBool va = a.solve();
    const LBool vb = b.solve();
    ASSERT_EQ(va, vb) << "seed " << seed;
    if (va == LBool::kTrue) {
      EXPECT_TRUE(model_satisfies(cnf, a)) << "seed " << seed;
      ++sat_seen;
    } else {
      ++unsat_seen;
    }
    minimized_total += a.stats().minimized_literals;
    EXPECT_EQ(b.stats().minimized_literals, 0u);
  }
  EXPECT_GT(sat_seen, 5);
  EXPECT_GT(unsat_seen, 5);
  EXPECT_GT(minimized_total, 0u);  // the batch must exercise the minimizer
}

TEST(SatSolver, AgreesWithDpllOnRandomInstances) {
  // Clause/variable ratios straddling the ~4.26 3-SAT phase transition, so
  // the batch mixes easy-SAT, hard, and UNSAT instances.
  int sat_seen = 0;
  int unsat_seen = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    const int num_vars = 6 + static_cast<int>(seed % 7);  // 6..12
    const double ratio = 2.0 + 0.05 * static_cast<double>(seed % 80);
    const int num_clauses = static_cast<int>(ratio * num_vars);
    const RandomCnf cnf = random_3sat(num_vars, num_clauses, 0xabc0 + seed);

    Solver solver;
    make_vars(solver, cnf.num_vars);
    for (const std::vector<Lit>& clause : cnf.clauses) {
      solver.add_clause(clause);
    }
    const LBool cdcl = solver.solve();
    const LBool reference = dpll_solve(cnf.num_vars, cnf.clauses);
    ASSERT_EQ(cdcl, reference) << "seed " << seed;
    if (cdcl == LBool::kTrue) {
      EXPECT_TRUE(model_satisfies(cnf, solver)) << "seed " << seed;
      ++sat_seen;
    } else {
      ++unsat_seen;
    }
  }
  // The batch must genuinely exercise both verdicts.
  EXPECT_GT(sat_seen, 10);
  EXPECT_GT(unsat_seen, 10);
}

TEST(SatSolver, IdenticalInputsGiveIdenticalTracesAndModels) {
  const RandomCnf cnf = random_3sat(12, 50, 0xdead);
  auto run = [&cnf](std::uint64_t seed) {
    SolverOptions options;
    options.seed = seed;
    auto solver = std::make_unique<Solver>(options);
    make_vars(*solver, cnf.num_vars);
    for (const std::vector<Lit>& clause : cnf.clauses) {
      solver->add_clause(clause);
    }
    EXPECT_EQ(solver->solve(), LBool::kTrue);
    return solver;
  };
  const auto a = run(1);
  const auto b = run(1);
  EXPECT_EQ(a->stats().conflicts, b->stats().conflicts);
  EXPECT_EQ(a->stats().decisions, b->stats().decisions);
  EXPECT_EQ(a->stats().propagations, b->stats().propagations);
  EXPECT_EQ(a->stats().seed, 1u);
  for (Var v = 0; v < a->num_vars(); ++v) {
    EXPECT_EQ(a->model_value(v), b->model_value(v));
  }
  // A different seed still reaches the same verdict (stats may differ).
  const auto c = run(7);
  EXPECT_EQ(c->stats().seed, 7u);
}

TEST(SatSolver, SolvesIncrementallyUnderAssumptions) {
  Solver solver;
  const auto v = make_vars(solver, 3);
  const Lit a = Lit::of(v[0]);
  const Lit b = Lit::of(v[1]);
  const Lit c = Lit::of(v[2]);
  ASSERT_TRUE(solver.add_clause({~a, b}));   // a -> b
  ASSERT_TRUE(solver.add_clause({~b, c}));   // b -> c

  ASSERT_EQ(solver.solve({a}), LBool::kTrue);
  EXPECT_EQ(solver.model_value(c), LBool::kTrue);

  // Assuming a and ~c is contradictory; the core names only assumptions.
  ASSERT_EQ(solver.solve({a, ~c}), LBool::kFalse);
  EXPECT_TRUE(solver.okay());  // conditionally unsat, not globally
  const std::vector<Lit>& failed = solver.failed_assumptions();
  EXPECT_FALSE(failed.empty());
  for (const Lit p : failed) {
    EXPECT_TRUE(p == ~a || p == c);
  }

  // The solver is reusable: clauses may be added and solving continues.
  ASSERT_TRUE(solver.add_clause({~c, a}));  // c -> a
  ASSERT_EQ(solver.solve({b}), LBool::kTrue);
  EXPECT_EQ(solver.model_value(a), LBool::kTrue);
  ASSERT_EQ(solver.solve({~a, b}), LBool::kFalse);
}

TEST(SatSolver, AssumptionContradictedAtLevelZeroFails) {
  Solver solver;
  const Var v = solver.new_var();
  ASSERT_TRUE(solver.add_clause({Lit::of(v)}));
  ASSERT_EQ(solver.solve({~Lit::of(v)}), LBool::kFalse);
  ASSERT_EQ(solver.failed_assumptions().size(), 1u);
  EXPECT_EQ(solver.failed_assumptions()[0], Lit::of(v));
  EXPECT_TRUE(solver.okay());
  EXPECT_EQ(solver.solve(), LBool::kTrue);
}

TEST(SatSolver, CountersAccumulateAcrossSolves) {
  const auto before = sat_counters();
  Solver solver;
  add_pigeonhole(solver, 4);
  EXPECT_EQ(solver.solve(), LBool::kFalse);
  const auto after = sat_counters();
  EXPECT_EQ(after.solves, before.solves + 1);
  EXPECT_EQ(after.unsat, before.unsat + 1);
  EXPECT_GE(after.conflicts, before.conflicts + solver.stats().conflicts);
  EXPECT_GT(after.propagations, before.propagations);
}

// -- path encodings vs scalar BFS -------------------------------------------

/// Ground truth: BFS over ON cells from the top row to the bottom row.
bool bfs_connected(int rows, int cols, std::uint64_t on_bits) {
  const int cells = rows * cols;
  std::vector<char> reached(static_cast<std::size_t>(cells), 0);
  std::vector<int> queue;
  for (int c = 0; c < cols; ++c) {
    if ((on_bits >> c) & 1) {
      reached[static_cast<std::size_t>(c)] = 1;
      queue.push_back(c);
    }
  }
  while (!queue.empty()) {
    const int i = queue.back();
    queue.pop_back();
    if (i >= (rows - 1) * cols) return true;
    const int r = i / cols;
    const int c = i % cols;
    const int neighbors[4] = {r > 0 ? i - cols : -1,
                              r + 1 < rows ? i + cols : -1,
                              c > 0 ? i - 1 : -1, c + 1 < cols ? i + 1 : -1};
    for (const int j : neighbors) {
      if (j < 0 || reached[static_cast<std::size_t>(j)] != 0) continue;
      if (((on_bits >> j) & 1) == 0) continue;
      reached[static_cast<std::size_t>(j)] = 1;
      queue.push_back(j);
    }
  }
  return false;
}

/// Pins each cell's on-literal to the bits of `on_bits` and reports
/// satisfiability of the chosen encoding.
LBool solve_fixed_pattern(int rows, int cols, std::uint64_t on_bits,
                          bool exists_encoding) {
  Solver solver;
  std::vector<Lit> on;
  for (int i = 0; i < rows * cols; ++i) {
    on.push_back(Lit::of(solver.new_var()));
  }
  for (int i = 0; i < rows * cols; ++i) {
    const bool is_on = ((on_bits >> i) & 1) != 0;
    solver.add_clause({is_on ? on[static_cast<std::size_t>(i)]
                             : ~on[static_cast<std::size_t>(i)]});
  }
  if (exists_encoding) {
    encode_path_exists(solver, rows, cols, on);
  } else {
    encode_path_absent(solver, rows, cols, on);
  }
  return solver.solve();
}

TEST(SatEncode, PathEncodingsMatchBfsOnAllSmallGrids) {
  const int shapes[][2] = {{1, 1}, {1, 3}, {2, 2}, {3, 1}, {2, 3}, {3, 3}};
  for (const auto& shape : shapes) {
    const int rows = shape[0];
    const int cols = shape[1];
    const int cells = rows * cols;
    for (std::uint64_t on_bits = 0; on_bits < (std::uint64_t{1} << cells);
         ++on_bits) {
      const bool connected = bfs_connected(rows, cols, on_bits);
      EXPECT_EQ(solve_fixed_pattern(rows, cols, on_bits, true),
                connected ? LBool::kTrue : LBool::kFalse)
          << rows << "x" << cols << " pattern " << on_bits;
      EXPECT_EQ(solve_fixed_pattern(rows, cols, on_bits, false),
                connected ? LBool::kFalse : LBool::kTrue)
          << rows << "x" << cols << " pattern " << on_bits;
    }
  }
}

/// Ground truth for encode_reach_exact: the set of ON cells BFS-reachable
/// from the seed boundary through ON 4-neighbors.
std::vector<char> bfs_reach_set(int rows, int cols, std::uint64_t on_bits,
                                bool from_top) {
  const int cells = rows * cols;
  std::vector<char> reached(static_cast<std::size_t>(cells), 0);
  std::vector<int> queue;
  const int seed_row = from_top ? 0 : rows - 1;
  for (int c = 0; c < cols; ++c) {
    const int i = seed_row * cols + c;
    if ((on_bits >> i) & 1) {
      reached[static_cast<std::size_t>(i)] = 1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const int i = queue.back();
    queue.pop_back();
    const int r = i / cols;
    const int c = i % cols;
    const int neighbors[4] = {r > 0 ? i - cols : -1,
                              r + 1 < rows ? i + cols : -1,
                              c > 0 ? i - 1 : -1, c + 1 < cols ? i + 1 : -1};
    for (const int j : neighbors) {
      if (j < 0 || reached[static_cast<std::size_t>(j)] != 0) continue;
      if (((on_bits >> j) & 1) == 0) continue;
      reached[static_cast<std::size_t>(j)] = 1;
      queue.push_back(j);
    }
  }
  return reached;
}

TEST(SatEncode, ExactReachabilityMatchesBfsOnAllSmallGrids) {
  using ftl::sat::encode_connected_exact;
  using ftl::sat::encode_reach_exact;
  const int shapes[][2] = {{1, 1}, {1, 3}, {2, 2}, {3, 1}, {2, 3}, {3, 3}};
  for (const auto& shape : shapes) {
    const int rows = shape[0];
    const int cols = shape[1];
    const int cells = rows * cols;
    for (std::uint64_t on_bits = 0; on_bits < (std::uint64_t{1} << cells);
         ++on_bits) {
      Solver solver;
      std::vector<Lit> on;
      for (int i = 0; i < cells; ++i) on.push_back(Lit::of(solver.new_var()));
      for (int i = 0; i < cells; ++i) {
        ASSERT_TRUE(solver.add_clause({((on_bits >> i) & 1) != 0
                                           ? on[static_cast<std::size_t>(i)]
                                           : ~on[static_cast<std::size_t>(i)]}));
      }
      const std::vector<Lit> top =
          encode_reach_exact(solver, rows, cols, on, /*from_top=*/true);
      const std::vector<Lit> bottom =
          encode_reach_exact(solver, rows, cols, on, /*from_top=*/false);
      const Lit connected = encode_connected_exact(solver, rows, cols, on);
      // Exact (iff) definitions: every pattern extends to exactly one model.
      ASSERT_EQ(solver.solve(), LBool::kTrue)
          << rows << "x" << cols << " pattern " << on_bits;
      const std::vector<char> want_top =
          bfs_reach_set(rows, cols, on_bits, true);
      const std::vector<char> want_bottom =
          bfs_reach_set(rows, cols, on_bits, false);
      for (int i = 0; i < cells; ++i) {
        EXPECT_EQ(solver.model_value(top[static_cast<std::size_t>(i)]) ==
                      LBool::kTrue,
                  want_top[static_cast<std::size_t>(i)] != 0)
            << rows << "x" << cols << " pattern " << on_bits << " cell " << i;
        EXPECT_EQ(solver.model_value(bottom[static_cast<std::size_t>(i)]) ==
                      LBool::kTrue,
                  want_bottom[static_cast<std::size_t>(i)] != 0)
            << rows << "x" << cols << " pattern " << on_bits << " cell " << i;
      }
      EXPECT_EQ(solver.model_value(connected) == LBool::kTrue,
                bfs_connected(rows, cols, on_bits))
          << rows << "x" << cols << " pattern " << on_bits;
    }
  }
}

TEST(SatEncode, ChoiceOnMatchesLiteralSemantics) {
  // Choice 2v is "variable v positive", 2v+1 its negation; then constants.
  const int nv = 3;
  for (std::uint64_t m = 0; m < 8; ++m) {
    for (int v = 0; v < nv; ++v) {
      const bool bit = ((m >> v) & 1) != 0;
      EXPECT_EQ(LatticeSynthesisCnf::choice_on(2 * v, nv, m), bit);
      EXPECT_EQ(LatticeSynthesisCnf::choice_on(2 * v + 1, nv, m), !bit);
    }
    EXPECT_TRUE(LatticeSynthesisCnf::choice_on(2 * nv, nv, m));
    EXPECT_FALSE(LatticeSynthesisCnf::choice_on(2 * nv + 1, nv, m));
  }
}

TEST(SatEncode, SelectorEncodingIsExactlyOne) {
  Solver solver;
  LatticeSynthesisCnf cnf(solver, 2, 2, 2, /*allow_constants=*/true);
  EXPECT_EQ(cnf.num_choices(), 6);
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  for (int cell = 0; cell < 4; ++cell) {
    int chosen = 0;
    for (int choice = 0; choice < cnf.num_choices(); ++choice) {
      if (solver.model_value(cnf.sel(cell, choice)) == LBool::kTrue) ++chosen;
    }
    EXPECT_EQ(chosen, 1);
  }
  const std::vector<int> pick = cnf.decode();
  ASSERT_EQ(pick.size(), 4u);
  for (const int p : pick) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, cnf.num_choices());
  }
}

TEST(SatEncode, DpllRejectsMalformedInput) {
  EXPECT_THROW(dpll_solve(1, {{Lit::of(1)}}), ftl::ContractViolation);
  EXPECT_EQ(dpll_solve(0, {}), LBool::kTrue);
  EXPECT_EQ(dpll_solve(0, {{}}), LBool::kFalse);
}

}  // namespace
