// Lattice synthesis tests: the Altun–Riedel construction must realize every
// function it is given; the search engines must find known realizations and
// prove small impossibilities.
#include <gtest/gtest.h>

#include <random>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::lattice::altun_riedel_synthesis;
using ftl::lattice::exhaustive_synthesis;
using ftl::lattice::Lattice;
using ftl::lattice::local_search_synthesis;
using ftl::lattice::realizes;
using ftl::lattice::SearchOptions;
using ftl::logic::TruthTable;

TEST(AltunRiedel, ConstantFunctions) {
  const Lattice zero = altun_riedel_synthesis(TruthTable::constant(2, false));
  EXPECT_EQ(zero.cell_count(), 1);
  EXPECT_TRUE(ftl::lattice::realized_truth_table(zero).is_zero());

  const Lattice one = altun_riedel_synthesis(TruthTable::constant(2, true));
  EXPECT_EQ(one.cell_count(), 1);
  EXPECT_TRUE(ftl::lattice::realized_truth_table(one).is_one());
}

TEST(AltunRiedel, SingleLiteral) {
  const Lattice lat = altun_riedel_synthesis(TruthTable::variable(2, 1));
  EXPECT_TRUE(realizes(lat, TruthTable::variable(2, 1)));
  EXPECT_EQ(lat.cell_count(), 1);  // x is self-dual: 1x1 lattice
}

TEST(AltunRiedel, Xor2GivesTwoByTwo) {
  const TruthTable xor2 = TruthTable::from_bits(2, 0b0110);
  const Lattice lat = altun_riedel_synthesis(xor2, {"a", "b"});
  EXPECT_EQ(lat.rows(), 2);
  EXPECT_EQ(lat.cols(), 2);
  EXPECT_TRUE(realizes(lat, xor2));
}

TEST(AltunRiedel, Xor3GivesFourByFour) {
  // XOR3 is self-dual with a 4-product ISOP: the A-R lattice is 4x4,
  // larger than the paper's optimal 3x3 (as §II notes, improved algorithms
  // beat the baseline construction).
  const TruthTable xor3 = ftl::lattice::xor3_truth_table();
  const Lattice lat = altun_riedel_synthesis(xor3, {"a", "b", "c"});
  EXPECT_EQ(lat.rows(), 4);
  EXPECT_EQ(lat.cols(), 4);
  EXPECT_TRUE(realizes(lat, xor3));
}

TEST(AltunRiedel, SizeIsDualProductsByProducts) {
  const auto f = ftl::logic::parse_expression("a b + c d").table;
  const Lattice lat = altun_riedel_synthesis(f);
  EXPECT_EQ(lat.cols(), ftl::logic::isop(f).size());
  EXPECT_EQ(lat.rows(), ftl::logic::isop_of_dual(f).size());
  EXPECT_TRUE(realizes(lat, f));
}

struct RandomFunctionCase {
  int num_vars;
  unsigned seed;
};

class AltunRiedelRandom : public ::testing::TestWithParam<RandomFunctionCase> {};

TEST_P(AltunRiedelRandom, RealizesRandomFunctions) {
  const auto p = GetParam();
  std::mt19937 rng(p.seed);
  std::uniform_int_distribution<int> bit(0, 1);
  TruthTable f(p.num_vars);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) f.set(m, bit(rng) == 1);
  const Lattice lat = altun_riedel_synthesis(f);
  EXPECT_TRUE(realizes(lat, f)) << "n=" << p.num_vars << " seed=" << p.seed
                                << "\n" << lat.to_string();
}

std::vector<RandomFunctionCase> random_cases() {
  std::vector<RandomFunctionCase> cases;
  for (int n = 1; n <= 4; ++n) {
    for (unsigned seed = 1; seed <= 8; ++seed) cases.push_back({n, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomFunctions, AltunRiedelRandom,
                         ::testing::ValuesIn(random_cases()));

TEST(ExhaustiveSynthesis, FindsXor2OnTwoByTwo) {
  const TruthTable xor2 = TruthTable::from_bits(2, 0b0110);
  const auto lat = exhaustive_synthesis(xor2, 2, 2);
  ASSERT_TRUE(lat.has_value());
  EXPECT_TRUE(realizes(*lat, xor2));
}

TEST(ExhaustiveSynthesis, ProvesXor2NeedsMoreThanOneCell) {
  const TruthTable xor2 = TruthTable::from_bits(2, 0b0110);
  EXPECT_FALSE(exhaustive_synthesis(xor2, 1, 1).has_value());
  EXPECT_FALSE(exhaustive_synthesis(xor2, 1, 2).has_value());
  EXPECT_FALSE(exhaustive_synthesis(xor2, 2, 1).has_value());
}

TEST(ExhaustiveSynthesis, AndOrNeedOnlyOneDimension) {
  const TruthTable both = TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  const auto lat_and = exhaustive_synthesis(both, 2, 1);
  ASSERT_TRUE(lat_and.has_value());
  EXPECT_TRUE(realizes(*lat_and, both));

  const TruthTable either = TruthTable::variable(2, 0) | TruthTable::variable(2, 1);
  const auto lat_or = exhaustive_synthesis(either, 1, 2);
  ASSERT_TRUE(lat_or.has_value());
  EXPECT_TRUE(realizes(*lat_or, either));
}

TEST(ExhaustiveSynthesis, LiteralsOnlyCannotRealizeXor3OnThreeByThree) {
  // The paper's minimum-size XOR3 lattice needs a constant cell: without
  // constants the exhaustive search over all 6^9 assignments fails.
  SearchOptions options;
  options.allow_constants = false;
  const auto lat = exhaustive_synthesis(ftl::lattice::xor3_truth_table(), 3, 3,
                                        options, {"a", "b", "c"});
  EXPECT_FALSE(lat.has_value());
}

TEST(ExhaustiveSynthesis, SymmetrySkipIsAnExactOptimization) {
  // The reflection-twin skip must not change any answer: same found/not
  // found, same cells, for 2D grids, single rows/columns, and an unrealizable
  // target. Includes 3x3 XOR3 with constants — the paper's minimum mapping.
  struct Case {
    TruthTable target;
    int rows, cols;
  };
  const std::vector<Case> cases = {
      {TruthTable::from_bits(2, 0b0110), 2, 2},
      {TruthTable::from_bits(2, 0b0110), 1, 2},  // unrealizable on a row
      {ftl::lattice::xor3_truth_table(), 3, 3},
      {ftl::logic::parse_expression("a b + b c + a c").table, 2, 3},
      {TruthTable::variable(2, 0) & TruthTable::variable(2, 1), 2, 1},
      {TruthTable::variable(2, 0) | TruthTable::variable(2, 1), 1, 3},
  };
  for (const auto& cs : cases) {
    SearchOptions skip_on;
    skip_on.symmetry_skip = true;
    SearchOptions skip_off;
    skip_off.symmetry_skip = false;
    const auto a = exhaustive_synthesis(cs.target, cs.rows, cs.cols, skip_on);
    const auto b = exhaustive_synthesis(cs.target, cs.rows, cs.cols, skip_off);
    ASSERT_EQ(a.has_value(), b.has_value())
        << cs.rows << "x" << cs.cols << " table " << cs.target.word(0);
    if (!a) continue;
    EXPECT_TRUE(realizes(*a, cs.target));
    for (int r = 0; r < cs.rows; ++r) {
      for (int c = 0; c < cs.cols; ++c) {
        EXPECT_EQ(a->at(r, c), b->at(r, c))
            << "cell (" << r << "," << c << ") differs for " << cs.rows << "x"
            << cs.cols;
      }
    }
  }
}

TEST(LocalSearch, FindsXor2Quickly) {
  const TruthTable xor2 = TruthTable::from_bits(2, 0b0110);
  SearchOptions options;
  options.seed = 99;
  const auto lat = local_search_synthesis(xor2, 2, 2, options);
  ASSERT_TRUE(lat.has_value());
  EXPECT_TRUE(realizes(*lat, xor2));
}

TEST(LocalSearch, FindsMajorityOnThreeByThree) {
  const auto maj = ftl::logic::parse_expression("a b + b c + a c").table;
  SearchOptions options;
  options.seed = 5;
  const auto lat = local_search_synthesis(maj, 3, 3, options, {"a", "b", "c"});
  ASSERT_TRUE(lat.has_value());
  EXPECT_TRUE(realizes(*lat, maj));
}

TEST(LocalSearch, IsDeterministicForAFixedSeed) {
  const TruthTable xor2 = TruthTable::from_bits(2, 0b0110);
  SearchOptions options;
  options.seed = 1234;
  const auto a = local_search_synthesis(xor2, 2, 2, options);
  const auto b = local_search_synthesis(xor2, 2, 2, options);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(a->at(r, c), b->at(r, c));
    }
  }
}

TEST(AltunRiedelBdd, AgreesWithTruthTableRouteOnSmallFunctions) {
  for (unsigned seed = 1; seed <= 6; ++seed) {
    std::mt19937 rng(seed * 31);
    std::uniform_int_distribution<int> bit(0, 1);
    TruthTable f(4);
    for (std::uint64_t m = 0; m < f.num_minterms(); ++m) f.set(m, bit(rng) == 1);

    ftl::logic::BddManager mgr(4);
    const Lattice via_bdd =
        altun_riedel_synthesis(mgr, mgr.from_truth_table(f));
    EXPECT_TRUE(realizes(via_bdd, f)) << "seed " << seed;
    // Same construction, same ISOPs, same lattice dimensions.
    const Lattice via_tt = altun_riedel_synthesis(f);
    EXPECT_EQ(via_bdd.rows(), via_tt.rows());
    EXPECT_EQ(via_bdd.cols(), via_tt.cols());
  }
}

TEST(AltunRiedelBdd, SynthesizesBeyondTheTruthTableCeiling) {
  // 30 variables: f = OR of 10 disjoint 3-literal products. The lattice
  // cells carry variables no truth table in this library can hold.
  const int n = 30;
  ftl::logic::BddManager mgr(n);
  ftl::logic::BddRef f = mgr.zero();
  for (int base = 0; base < n; base += 3) {
    ftl::logic::BddRef product = mgr.one();
    for (int v = base; v < base + 3; ++v) {
      product = mgr.land(product, mgr.variable(v));
    }
    f = mgr.lor(f, product);
  }
  // Construction self-verifies by sampling (FTL_ENSURES inside).
  const Lattice lat = altun_riedel_synthesis(mgr, f);
  EXPECT_EQ(lat.num_vars(), n);
  EXPECT_EQ(lat.cols(), 10);  // one column per product
  // Spot checks: one product fully on -> 1; nothing on -> 0.
  EXPECT_TRUE(lat.evaluate(0b111));
  EXPECT_FALSE(lat.evaluate(0b011));
  EXPECT_TRUE(lat.evaluate(std::uint64_t{0b111} << 27));
  EXPECT_FALSE(lat.evaluate(0));
}

TEST(AltunRiedelBdd, ConstantsDegenerate) {
  ftl::logic::BddManager mgr(3);
  const Lattice zero = altun_riedel_synthesis(mgr, mgr.zero());
  EXPECT_EQ(zero.cell_count(), 1);
  EXPECT_FALSE(zero.evaluate(0b111));
  const Lattice one = altun_riedel_synthesis(mgr, mgr.one());
  EXPECT_TRUE(one.evaluate(0));
}

TEST(SearchContracts, RejectOversizedProblems) {
  const TruthTable xor2 = TruthTable::from_bits(2, 0b0110);
  EXPECT_THROW(exhaustive_synthesis(xor2, 5, 5), ftl::ContractViolation);
  TruthTable big(7);
  EXPECT_THROW(exhaustive_synthesis(big, 2, 2), ftl::ContractViolation);
}

}  // namespace
