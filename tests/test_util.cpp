// Unit tests for ftl::util — engineering-number parsing, string helpers,
// CSV output, console tables, and the contract macros.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ftl/util/csv.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

namespace {

using ftl::util::parse_engineering;

TEST(Units, ParsesPlainNumbers) {
  EXPECT_DOUBLE_EQ(*parse_engineering("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse_engineering("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*parse_engineering("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(*parse_engineering("+0.25"), 0.25);
}

struct SuffixCase {
  const char* text;
  double expected;
};

class UnitsSuffix : public ::testing::TestWithParam<SuffixCase> {};

TEST_P(UnitsSuffix, ParsesSuffix) {
  const auto& p = GetParam();
  const auto v = parse_engineering(p.text);
  ASSERT_TRUE(v.has_value()) << p.text;
  EXPECT_DOUBLE_EQ(*v, p.expected) << p.text;
}

INSTANTIATE_TEST_SUITE_P(
    AllSuffixes, UnitsSuffix,
    ::testing::Values(
        SuffixCase{"1f", 1e-15}, SuffixCase{"2p", 2e-12},
        SuffixCase{"3n", 3e-9}, SuffixCase{"4u", 4e-6},
        SuffixCase{"5m", 5e-3}, SuffixCase{"6k", 6e3},
        SuffixCase{"7meg", 7e6}, SuffixCase{"8g", 8e9},
        SuffixCase{"9t", 9e12}, SuffixCase{"10a", 10e-18},
        SuffixCase{"1.5K", 1.5e3}, SuffixCase{"2MEG", 2e6},
        SuffixCase{"500kOhm", 500e3}, SuffixCase{"30ns", 30e-9},
        SuffixCase{"10fF", 10e-15}, SuffixCase{"1.2V", 1.2},
        SuffixCase{"0.35um", 0.35e-6}, SuffixCase{"-0.57V", -0.57}));

TEST(Units, RejectsMalformedInput) {
  EXPECT_FALSE(parse_engineering("").has_value());
  EXPECT_FALSE(parse_engineering("abc").has_value());
  EXPECT_FALSE(parse_engineering("1.2.3").has_value());
  EXPECT_FALSE(parse_engineering("3k9k").has_value());
  EXPECT_FALSE(parse_engineering("4u5").has_value());
}

TEST(Units, ThrowingVariant) {
  EXPECT_DOUBLE_EQ(ftl::util::parse_engineering_or_throw("2.5k"), 2500.0);
  EXPECT_THROW(ftl::util::parse_engineering_or_throw("zzz"), ftl::Error);
}

TEST(Units, FormatSiPicksBand) {
  EXPECT_EQ(ftl::util::format_si(11.3e-9, 3, "s"), "11.3ns");
  EXPECT_EQ(ftl::util::format_si(1.2e-3, 2, "A"), "1.2mA");
  EXPECT_EQ(ftl::util::format_si(500e3, 3), "500k");
  EXPECT_EQ(ftl::util::format_si(0.0, 3, "V"), "0V");
  EXPECT_EQ(ftl::util::format_si(-4.7e-9, 2, "s"), "-4.7ns");
}

TEST(Strings, Split) {
  const auto tokens = ftl::util::split("a  b\tc ", " \t");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
  EXPECT_TRUE(ftl::util::split("", " ").empty());
  EXPECT_TRUE(ftl::util::split("   ", " ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(ftl::util::trim("  x  "), "x");
  EXPECT_EQ(ftl::util::trim(""), "");
  EXPECT_EQ(ftl::util::trim(" \t\r\n"), "");
  EXPECT_EQ(ftl::util::trim("a b"), "a b");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(ftl::util::to_lower("AbC"), "abc");
  EXPECT_TRUE(ftl::util::istarts_with("PULSE(0 1)", "pulse"));
  EXPECT_FALSE(ftl::util::istarts_with("PU", "pulse"));
  EXPECT_TRUE(ftl::util::iequals("GND", "gnd"));
  EXPECT_FALSE(ftl::util::iequals("gnd", "gnd0"));
}

TEST(Csv, WritesRowsAndCountsThem) {
  const std::string path = ::testing::TempDir() + "/ftl_csv_test.csv";
  {
    ftl::util::CsvWriter csv(path);
    csv.write_header({"x", "y"});
    csv.write_row(std::vector<double>{1.0, 2.0});
    csv.write_row(std::vector<double>{3.0, 4.5});
    EXPECT_EQ(csv.rows(), 2);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,y");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(ftl::util::CsvWriter("/nonexistent-dir/x.csv"), ftl::Error);
}

TEST(Table, RendersAlignedColumns) {
  ftl::util::ConsoleTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  const std::string text = table.render();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(table.rows(), 2);
}

TEST(Table, PadsShortRows) {
  ftl::util::ConsoleTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NE(table.render().find("only"), std::string::npos);
}

TEST(Contracts, ExpectsThrowsWithContext) {
  try {
    FTL_EXPECTS_MSG(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const ftl::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Contracts, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(FTL_EXPECTS(2 + 2 == 4));
  EXPECT_NO_THROW(FTL_ENSURES(true));
}

TEST(ParseLong, AcceptsStrictBase10Integers) {
  EXPECT_EQ(*ftl::util::parse_long("0"), 0);
  EXPECT_EQ(*ftl::util::parse_long("42"), 42);
  EXPECT_EQ(*ftl::util::parse_long("-7"), -7);
  EXPECT_EQ(*ftl::util::parse_long("+13"), 13);
}

TEST(ParseLong, RejectsWhatAtoiSilentlyZeroes) {
  // The ftl_run regression: these all atoi() to 0 (or a junk prefix).
  EXPECT_FALSE(ftl::util::parse_long("banana"));
  EXPECT_FALSE(ftl::util::parse_long("0x"));
  EXPECT_FALSE(ftl::util::parse_long("12ab"));
  EXPECT_FALSE(ftl::util::parse_long(""));
  EXPECT_FALSE(ftl::util::parse_long(" 42"));
  EXPECT_FALSE(ftl::util::parse_long("42 "));
  EXPECT_FALSE(ftl::util::parse_long("4.5"));
  EXPECT_FALSE(ftl::util::parse_long("-"));
  EXPECT_FALSE(ftl::util::parse_long("99999999999999999999999999"));
  EXPECT_FALSE(ftl::util::parse_long(std::string_view("4\0002", 3)));
}

TEST(ParseLong, RangeRestriction) {
  EXPECT_EQ(*ftl::util::parse_long_in("8", 1, 16), 8);
  EXPECT_FALSE(ftl::util::parse_long_in("0", 1, 16));
  EXPECT_FALSE(ftl::util::parse_long_in("17", 1, 16));
  EXPECT_EQ(*ftl::util::parse_long_in("16", 1, 16), 16);
}

}  // namespace
