// Batched corner DC engine: bitwise agreement with standalone
// dc_operating_point across sparse and dense paths, chain_current_batch
// parity, per-lane failure reporting, warm starts, and the process-wide
// batch_core counters.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/spice/batch.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;

TEST(SpiceBatch, MatchesStandaloneDcopBitwiseOnXor3) {
  // One shared circuit, 8 lanes = the 8 input codes, each lane retuned by
  // waveform only. Lane k's solution must equal — bit for bit — a fresh
  // standalone build + dc_operating_point at code k: this is the engine's
  // determinism contract, and what licenses every consumer to batch.
  const auto lat = lattice::xor3_lattice_3x3();
  const double vdd = bridge::LatticeCircuitOptions{}.vdd;

  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, {});
  const int num_vars = static_cast<int>(lc.var_names.size());
  ASSERT_EQ(num_vars, 3);
  std::vector<spice::VoltageSource*> pos(lc.var_names.size(), nullptr);
  std::vector<spice::VoltageSource*> neg(lc.var_names.size(), nullptr);
  for (std::size_t v = 0; v < lc.var_names.size(); ++v) {
    const std::string base = "Vin_" + lc.var_names[v];
    if (lc.circuit.has_device(base)) {
      pos[v] = dynamic_cast<spice::VoltageSource*>(&lc.circuit.device(base));
    }
    if (lc.circuit.has_device(base + "_n")) {
      neg[v] =
          dynamic_cast<spice::VoltageSource*>(&lc.circuit.device(base + "_n"));
    }
  }

  const auto apply = [&](std::size_t lane) {
    for (std::size_t v = 0; v < lc.var_names.size(); ++v) {
      const bool bit = ((lane >> v) & 1u) != 0;
      const spice::Waveform w = spice::Waveform::dc(bit ? vdd : 0.0);
      if (pos[v] != nullptr) pos[v]->set_waveform(w);
      if (neg[v] != nullptr) neg[v]->set_waveform(w.complemented(vdd));
    }
  };
  const std::vector<spice::BatchCornerResult> batch =
      spice::dcop_batch(lc.circuit, 8, apply);
  ASSERT_EQ(batch.size(), 8u);

  for (std::uint64_t code = 0; code < 8; ++code) {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < num_vars; ++v) {
      drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? vdd : 0.0);
    }
    bridge::LatticeCircuit standalone =
        bridge::build_lattice_circuit(lat, drives);
    const spice::OpResult op = spice::dc_operating_point(standalone.circuit);

    const spice::BatchCornerResult& r = batch[code];
    ASSERT_FALSE(r.failed) << "code=" << code << ": " << r.error;
    ASSERT_TRUE(r.op.converged) << "code=" << code;
    EXPECT_EQ(r.op.iterations, op.iterations) << "code=" << code;
    EXPECT_EQ(r.op.gmin_used, op.gmin_used) << "code=" << code;
    ASSERT_EQ(r.op.solution.size(), op.solution.size());
    for (std::size_t i = 0; i < op.solution.size(); ++i) {
      EXPECT_EQ(r.op.solution[i], op.solution[i])
          << "code=" << code << " unknown=" << i;
    }
  }
}

TEST(SpiceBatch, ChainCurrentBatchMatchesPerPointBitwise) {
  // Fig. 12a sweeps, short chain (dense linear-solver path) and longer
  // chain (sparse path with lane-blocked LU): the batched sweep must hit
  // the per-point scalar API exactly.
  std::vector<double> volts;
  for (int i = 0; i < 8; ++i) volts.push_back(0.3 + 0.35 * i);
  for (const int count : {1, 4}) {
    const std::vector<double> batched =
        bridge::chain_current_batch(count, volts, volts);
    ASSERT_EQ(batched.size(), volts.size());
    for (std::size_t k = 0; k < volts.size(); ++k) {
      const double serial = bridge::chain_current(count, volts[k], volts[k]);
      EXPECT_EQ(batched[k], serial) << "count=" << count << " v=" << volts[k];
    }
  }
}

TEST(SpiceBatch, CountersAccumulatePerBatchAndLane) {
  const spice::BatchCounters before = spice::batch_counters();
  std::vector<double> volts{0.5, 1.0, 1.5, 2.0};
  // 8 switches put the MNA system above the dense cutover, so the lanes
  // exercise the lane-blocked sparse LU (the dense path never refactors).
  bridge::chain_current_batch(8, volts, volts);
  const spice::BatchCounters after = spice::batch_counters();
  EXPECT_EQ(after.batches, before.batches + 1);
  EXPECT_EQ(after.lanes, before.lanes + volts.size());
  EXPECT_GT(after.newton_iterations, before.newton_iterations);
  // Lane 0's first Newton iteration pays the one symbolic analysis; later
  // factorizations ride the recorded elimination.
  EXPECT_GT(after.symbolic_reuses, before.symbolic_reuses);
  EXPECT_GT(after.numeric_refactors, before.numeric_refactors);
}

TEST(SpiceBatch, WarmStartConvergesToTheSameOperatingPoints) {
  // warm_start trades bitwise identity for fewer iterations on smooth
  // sweeps; the operating points themselves must still agree to solver
  // tolerance.
  bridge::ChainCircuit chain = bridge::build_switch_chain(3, 1.2, 1.2);
  auto& supply = dynamic_cast<spice::VoltageSource&>(
      chain.circuit.device(chain.supply_source));
  auto& gate = dynamic_cast<spice::VoltageSource&>(
      chain.circuit.device(chain.gate_source));
  std::vector<double> volts{0.6, 0.8, 1.0, 1.2, 1.4};
  const auto apply = [&](std::size_t lane) {
    supply.set_waveform(spice::Waveform::dc(volts[lane]));
    gate.set_waveform(spice::Waveform::dc(volts[lane]));
  };

  const auto cold = spice::dcop_batch(chain.circuit, volts.size(), apply);
  spice::BatchOptions warm_options;
  warm_options.warm_start = true;
  const auto warm =
      spice::dcop_batch(chain.circuit, volts.size(), apply, warm_options);
  std::uint64_t cold_iters = 0;
  std::uint64_t warm_iters = 0;
  for (std::size_t lane = 0; lane < volts.size(); ++lane) {
    ASSERT_FALSE(cold[lane].failed);
    ASSERT_FALSE(warm[lane].failed);
    ASSERT_TRUE(cold[lane].op.converged);
    ASSERT_TRUE(warm[lane].op.converged);
    cold_iters += static_cast<std::uint64_t>(cold[lane].op.iterations);
    warm_iters += static_cast<std::uint64_t>(warm[lane].op.iterations);
    for (std::size_t i = 0; i < cold[lane].op.solution.size(); ++i) {
      EXPECT_NEAR(warm[lane].op.solution[i], cold[lane].op.solution[i], 1e-6)
          << "lane=" << lane << " unknown=" << i;
    }
  }
  // Adjacent sweep points are close, so seeding from the neighbour must not
  // cost iterations overall.
  EXPECT_LE(warm_iters, cold_iters);
}

TEST(SpiceBatch, PresolveRejectionFailsEveryLaneWithoutThrowing) {
  // The corners share one topology, so the static gate renders one verdict;
  // the batch API reports it per lane instead of throwing mid-batch.
  bridge::ChainCircuit chain = bridge::build_switch_chain(2, 1.2, 1.2);
  chain.circuit.set_presolve_hook(
      [](const spice::Circuit&) { throw ftl::Error("lint: gate rejected"); });
  const auto results =
      spice::dcop_batch(chain.circuit, 3, [](std::size_t) {});
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.failed);
    EXPECT_NE(r.error.find("gate rejected"), std::string::npos);
    EXPECT_FALSE(r.op.converged);
  }
}

}  // namespace
