// Irredundant-path enumeration tests — the engine behind Table I. The full
// sub-table for 2 <= m,n <= 6 is checked exactly against the paper, plus
// structural properties of every enumerated path.
#include <gtest/gtest.h>

#include <set>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::lattice::all_products;
using ftl::lattice::count_products;
using ftl::lattice::count_products_dfs;
using ftl::lattice::enumerate_products;

// Table I of the paper, rows m = 2..9, columns n = 2..9.
constexpr std::uint64_t kTable1[8][8] = {
    {2, 3, 4, 5, 6, 7, 8, 9},
    {4, 9, 16, 25, 36, 49, 64, 81},
    {6, 17, 36, 67, 118, 203, 344, 575},
    {10, 37, 94, 205, 436, 957, 2146, 4773},
    {16, 77, 236, 621, 1668, 4883, 14880, 44331},
    {26, 163, 602, 1905, 6562, 26317, 110838, 446595},
    {42, 343, 1528, 5835, 25686, 139231, 797048, 4288707},
    {68, 723, 3882, 17873, 100294, 723153, 5509834, 38930447},
};

struct GridSize {
  int rows;
  int cols;
};

class Table1Small : public ::testing::TestWithParam<GridSize> {};

TEST_P(Table1Small, MatchesPaperCount) {
  const auto g = GetParam();
  EXPECT_EQ(count_products(g.rows, g.cols),
            kTable1[g.rows - 2][g.cols - 2])
      << g.rows << "x" << g.cols;
}

std::vector<GridSize> small_grid_sizes() {
  std::vector<GridSize> sizes;
  for (int m = 2; m <= 6; ++m) {
    for (int n = 2; n <= 6; ++n) sizes.push_back({m, n});
  }
  return sizes;
}

INSTANTIATE_TEST_SUITE_P(UpTo6x6, Table1Small,
                         ::testing::ValuesIn(small_grid_sizes()));

TEST(Table1, SpotChecksOnLargerLattices) {
  // A few asymmetric entries from the larger rows/columns of Table I.
  EXPECT_EQ(count_products(2, 9), 9u);
  EXPECT_EQ(count_products(9, 2), 68u);
  EXPECT_EQ(count_products(7, 3), 163u);
  EXPECT_EQ(count_products(3, 7), 49u);
  EXPECT_EQ(count_products(8, 4), 1528u);
  EXPECT_EQ(count_products(4, 8), 344u);
  EXPECT_EQ(count_products(7, 7), 26317u);
}

TEST(Table1, PaperHighlightedComparisons) {
  // §II singles these out: f6x8 vs f7x7 and f6x6 vs f9x4.
  EXPECT_EQ(count_products(6, 8), 14880u);
  EXPECT_EQ(count_products(7, 7), 26317u);
  EXPECT_EQ(count_products(6, 6), 1668u);
  EXPECT_EQ(count_products(9, 4), 3882u);
}

TEST(Paths, ClosedFormRows) {
  // Structural identities visible in Table I, checked well past it — the
  // range deliberately crosses the DP/DFS dispatch boundary at cols = 16:
  // a 2-row lattice has exactly n straight columns...
  for (int n = 2; n <= 20; ++n) {
    EXPECT_EQ(count_products(2, n), static_cast<std::uint64_t>(n));
  }
  // ...and a 3-row lattice has exactly n^2 irredundant paths.
  for (int n = 2; n <= 20; ++n) {
    EXPECT_EQ(count_products(3, n), static_cast<std::uint64_t>(n) * n);
  }
}

TEST(Paths, TwoColumnLatticesFollowFibonacci) {
  // The n=2 column of Table I (2, 4, 6, 10, 16, 26, 42, 68) is twice the
  // Fibonacci numbers: count(m, 2) = 2 F(m) with F(2)=1, F(3)=2, ...
  // The frontier DP has no row bound, so this runs to m = 90 (2 F(90) is
  // the last value below the uint64 overflow line).
  std::uint64_t fib_prev = 1;  // F(2)
  std::uint64_t fib = 2;       // F(3)
  EXPECT_EQ(count_products(2, 2), 2u * fib_prev);
  for (int m = 3; m <= 90; ++m) {
    EXPECT_EQ(count_products(m, 2), 2u * fib) << "m=" << m;
    const std::uint64_t next = fib + fib_prev;
    fib_prev = fib;
    fib = next;
  }
}

TEST(Paths, DpMatchesDfsOnAllTable1Sizes) {
  // The frontier DP against the explicit path enumerator for the paper's
  // whole Table I range — two independent engines, one answer.
  for (int m = 2; m <= 9; ++m) {
    for (int n = 2; n <= 9; ++n) {
      EXPECT_EQ(count_products(m, n), count_products_dfs(m, n))
          << m << "x" << n;
    }
  }
}

TEST(Paths, DpMatchesDfsOnTallAndThinShapes) {
  // Shapes far from Table I's square-ish range, including tall/thin grids
  // where the old 9x9-validated code was never exercised.
  const GridSize shapes[] = {{20, 2}, {15, 3}, {10, 4}, {12, 5},
                             {2, 16}, {3, 14}, {4, 11}, {1, 40}};
  for (const auto g : shapes) {
    EXPECT_EQ(count_products(g.rows, g.cols),
              count_products_dfs(g.rows, g.cols))
        << g.rows << "x" << g.cols;
  }
}

TEST(Paths, DegenerateSizes) {
  EXPECT_EQ(count_products(1, 1), 1u);
  EXPECT_EQ(count_products(1, 5), 5u);  // each top=bottom cell is a path
  EXPECT_EQ(count_products(5, 1), 1u);  // the single column
  EXPECT_EQ(count_products(2, 2), 2u);
}

TEST(Paths, EnumerationAgreesWithCount) {
  for (int m = 1; m <= 5; ++m) {
    for (int n = 1; n <= 5; ++n) {
      std::uint64_t seen = 0;
      const std::uint64_t total = enumerate_products(
          m, n, [&seen](const std::vector<int>&) { ++seen; });
      EXPECT_EQ(total, count_products(m, n)) << m << "x" << n;
      EXPECT_EQ(seen, total);
    }
  }
}

TEST(Paths, MaxPathsLimitStopsEnumeration) {
  std::uint64_t seen = 0;
  const std::uint64_t total = enumerate_products(
      5, 5, [&seen](const std::vector<int>&) { ++seen; }, 10);
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(seen, 10u);
}

TEST(Paths, F3x3MatchesFig2c) {
  // Fig. 2c lists the nine products of f3x3 (x1..x9 are cells 0..8).
  const std::set<std::set<int>> expected = {
      {0, 3, 6}, {1, 4, 7}, {2, 5, 8},
      {0, 3, 4, 7}, {1, 4, 3, 6}, {1, 4, 5, 8}, {2, 5, 4, 7},
      {0, 3, 4, 5, 8}, {2, 5, 4, 3, 6},
  };
  std::set<std::set<int>> actual;
  for (const auto& path : all_products(3, 3)) {
    actual.insert(std::set<int>(path.begin(), path.end()));
  }
  EXPECT_EQ(actual, expected);
}

TEST(Paths, EveryPathIsAValidIrredundantPath) {
  for (const GridSize g : {GridSize{3, 4}, GridSize{4, 3}, GridSize{4, 4}}) {
    const int cols = g.cols;
    for (const auto& path : all_products(g.rows, g.cols)) {
      ASSERT_FALSE(path.empty());
      // Starts in the top row, ends in the bottom row.
      EXPECT_LT(path.front(), cols);
      EXPECT_GE(path.back(), (g.rows - 1) * cols);
      // Exactly one top-row and one bottom-row cell.
      int top_cells = 0;
      int bottom_cells = 0;
      for (int cell : path) {
        top_cells += (cell < cols) ? 1 : 0;
        bottom_cells += (cell >= (g.rows - 1) * cols) ? 1 : 0;
      }
      EXPECT_EQ(top_cells, 1);
      EXPECT_EQ(bottom_cells, 1);
      // Consecutive cells adjacent; no duplicates; chordless.
      const auto adjacent = [cols](int a, int b) {
        const int ra = a / cols, ca = a % cols;
        const int rb = b / cols, cb = b % cols;
        return std::abs(ra - rb) + std::abs(ca - cb) == 1;
      };
      std::set<int> unique(path.begin(), path.end());
      EXPECT_EQ(unique.size(), path.size());
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(adjacent(path[i], path[i + 1]));
      }
      for (std::size_t i = 0; i < path.size(); ++i) {
        for (std::size_t j = i + 2; j < path.size(); ++j) {
          EXPECT_FALSE(adjacent(path[i], path[j]))
              << "chord between positions " << i << " and " << j;
        }
      }
    }
  }
}

TEST(Paths, NoProductAbsorbsAnother) {
  // Irredundancy across the whole cover: no path's cell set contains
  // another's.
  for (const GridSize g : {GridSize{3, 3}, GridSize{3, 4}, GridSize{4, 4}}) {
    const auto paths = all_products(g.rows, g.cols);
    std::vector<std::set<int>> sets;
    sets.reserve(paths.size());
    for (const auto& p : paths) sets.emplace_back(p.begin(), p.end());
    for (std::size_t i = 0; i < sets.size(); ++i) {
      for (std::size_t j = 0; j < sets.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(std::includes(sets[j].begin(), sets[j].end(),
                                   sets[i].begin(), sets[i].end()))
            << "product " << i << " absorbs " << j;
      }
    }
  }
}

TEST(Paths, GridFunctionHasTableOneProducts) {
  const auto sop = ftl::lattice::grid_function(3, 3);
  EXPECT_EQ(sop.size(), 9);
  // The lattice function of the all-ON assignment evaluates to 1, of the
  // all-OFF assignment to 0.
  EXPECT_TRUE(sop.evaluate((1u << 9) - 1));
  EXPECT_FALSE(sop.evaluate(0));
}

TEST(Paths, CountContractCoversDpAndDfsRanges) {
  // cols <= 16: frontier DP, no row bound — 12x11 used to be rejected by
  // the 128-cell contract and now just counts.
  EXPECT_GT(count_products(12, 11), count_products(9, 9));
  EXPECT_GT(count_products(40, 2), 0u);
  // cols > 16 falls back to DFS, which keeps the 128-cell contract.
  EXPECT_EQ(count_products(2, 40), 40u);
  EXPECT_THROW(count_products(5, 30), ftl::ContractViolation);
  EXPECT_THROW(count_products_dfs(12, 11), ftl::ContractViolation);
  EXPECT_THROW(ftl::lattice::grid_function(9, 9), ftl::ContractViolation);
}

}  // namespace
