// Mesh construction and network-solver tests: geometry classification,
// Kirchhoff conservation, terminal symmetry, and bias-case behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/current_density.hpp"
#include "ftl/tcad/extract.hpp"
#include "ftl/tcad/mesh.hpp"
#include "ftl/tcad/network_solver.hpp"
#include "ftl/tcad/sweep.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl::tcad;

NetworkSolver make_solver(DeviceShape shape, GateDielectric diel,
                          int cells = 32) {
  const DeviceSpec spec = make_device(shape, diel);
  return NetworkSolver(build_mesh(spec, cells), ChargeSheetModel(spec));
}

TEST(Mesh, SquareDeviceHasAllFourElectrodesAndAGate) {
  const DeviceMesh mesh = build_mesh(
      make_device(DeviceShape::kSquare, GateDielectric::kHfO2), 48);
  std::array<int, 4> electrode_cells{};
  int gated = 0;
  for (int i = 0; i < mesh.cell_count(); ++i) {
    const int t = mesh.terminal[static_cast<std::size_t>(i)];
    if (t >= 0) ++electrode_cells[static_cast<std::size_t>(t)];
    if (mesh.region[static_cast<std::size_t>(i)] == Region::kGated) ++gated;
  }
  for (int t = 0; t < 4; ++t) EXPECT_GT(electrode_cells[static_cast<std::size_t>(t)], 0) << "T" << t + 1;
  EXPECT_GT(gated, 0);
  // Electrode counts are equal by symmetry.
  EXPECT_EQ(electrode_cells[0], electrode_cells[2]);
  EXPECT_EQ(electrode_cells[1], electrode_cells[3]);
}

TEST(Mesh, RegionsAreFourfoldSymmetric) {
  // A 90° rotation maps the region map onto itself for every device type.
  for (const DeviceShape shape :
       {DeviceShape::kSquare, DeviceShape::kCross, DeviceShape::kJunctionless}) {
    const DeviceMesh mesh =
        build_mesh(make_device(shape, GateDielectric::kHfO2), 40);
    const int n = mesh.cells_per_side;
    for (int iy = 0; iy < n; ++iy) {
      for (int ix = 0; ix < n; ++ix) {
        // (ix, iy) -> (n-1-iy, ix)
        EXPECT_EQ(mesh.region_at(ix, iy), mesh.region_at(n - 1 - iy, ix))
            << to_string(shape) << " at " << ix << "," << iy;
      }
    }
  }
}

TEST(Mesh, ActiveRegionConnectsOppositeElectrodes) {
  // Flood fill from T1 cells over non-outside cells must reach T3 cells.
  for (const DeviceShape shape :
       {DeviceShape::kSquare, DeviceShape::kCross, DeviceShape::kJunctionless}) {
    const DeviceMesh mesh =
        build_mesh(make_device(shape, GateDielectric::kHfO2), 48);
    const int n = mesh.cells_per_side;
    std::vector<bool> seen(static_cast<std::size_t>(mesh.cell_count()), false);
    std::vector<int> stack;
    for (int i = 0; i < mesh.cell_count(); ++i) {
      if (mesh.terminal[static_cast<std::size_t>(i)] == kT1North) {
        stack.push_back(i);
        seen[static_cast<std::size_t>(i)] = true;
      }
    }
    ASSERT_FALSE(stack.empty()) << to_string(shape);
    bool reached_t3 = false;
    while (!stack.empty()) {
      const int cell = stack.back();
      stack.pop_back();
      if (mesh.terminal[static_cast<std::size_t>(cell)] == kT3South) reached_t3 = true;
      const int ix = cell % n;
      const int iy = cell / n;
      const int nbrs[4] = {ix > 0 ? cell - 1 : -1, ix + 1 < n ? cell + 1 : -1,
                           iy > 0 ? cell - n : -1, iy + 1 < n ? cell + n : -1};
      for (int nb : nbrs) {
        if (nb < 0 || seen[static_cast<std::size_t>(nb)]) continue;
        if (mesh.region[static_cast<std::size_t>(nb)] == Region::kOutside) continue;
        seen[static_cast<std::size_t>(nb)] = true;
        stack.push_back(nb);
      }
    }
    EXPECT_TRUE(reached_t3) << to_string(shape);
  }
}

TEST(BiasCase, ParseAndRoles) {
  const BiasCase c = parse_bias_case("DSFF");
  EXPECT_EQ(c.roles[0], Role::kDrain);
  EXPECT_EQ(c.roles[1], Role::kSource);
  EXPECT_EQ(c.roles[2], Role::kFloat);
  EXPECT_EQ(c.drain_count(), 1);
  EXPECT_EQ(c.source_count(), 1);
  EXPECT_THROW(parse_bias_case("DSX"), ftl::Error);
  EXPECT_THROW(parse_bias_case("DSXF"), ftl::Error);
}

TEST(BiasCase, PaperListHasSixteenCases) {
  const auto& cases = paper_bias_cases();
  EXPECT_EQ(cases.size(), 16u);
  EXPECT_EQ(cases.front().name, "DSFF");
  // Composition: 2 + 4 + 6 + 4.
  int one_one = 0, one_three = 0, two_two = 0, three_one = 0;
  for (const auto& c : cases) {
    if (c.drain_count() == 1 && c.source_count() == 1) ++one_one;
    if (c.drain_count() == 1 && c.source_count() == 3) ++one_three;
    if (c.drain_count() == 2 && c.source_count() == 2) ++two_two;
    if (c.drain_count() == 3 && c.source_count() == 1) ++three_one;
  }
  EXPECT_EQ(one_one, 2);
  EXPECT_EQ(one_three, 4);
  EXPECT_EQ(two_two, 6);
  EXPECT_EQ(three_one, 4);
}

TEST(BiasCase, MaterializesBiasPoint) {
  const BiasPoint p = parse_bias_case("SDSS").at(3.0, 5.0);
  EXPECT_DOUBLE_EQ(p.gate, 3.0);
  EXPECT_DOUBLE_EQ(*p.terminal[0], 0.0);
  EXPECT_DOUBLE_EQ(*p.terminal[1], 5.0);
  EXPECT_DOUBLE_EQ(*p.terminal[2], 0.0);
}

TEST(Solver, ThrowsWhenNothingIsDriven) {
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2, 16);
  BiasPoint p;
  p.gate = 5.0;
  EXPECT_THROW(solver.solve(p), ftl::Error);
}

TEST(Solver, CurrentConservationAcrossTerminals) {
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const SolveResult r = solver.solve(parse_bias_case("DSSS").at(5.0, 5.0));
  ASSERT_TRUE(r.converged);
  // Kirchhoff: terminal currents sum to ~the (tiny) leakage imbalance.
  const double sum = r.terminal_current[0] + r.terminal_current[1] +
                     r.terminal_current[2] + r.terminal_current[3];
  const double scale = std::fabs(r.terminal_current[0]);
  // The drain leak current (G_leak * 5 V) is the only unbalanced term.
  EXPECT_LT(std::fabs(sum) - 5.0 * solver.model().terminal_leak_conductance(),
            1e-3 * scale + 1e-12);
}

TEST(Solver, DsssSourceCurrentsAreMirrorSymmetric) {
  // With T1 as drain, the east and west sources see mirror geometry.
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const SolveResult r = solver.solve(parse_bias_case("DSSS").at(5.0, 5.0));
  EXPECT_NEAR(r.terminal_current[kT2East], r.terminal_current[kT4West],
              1e-6 * std::fabs(r.terminal_current[kT2East]) + 1e-15);
}

TEST(Solver, RotatedBiasCasesGiveEqualCurrents) {
  // DSSS with drain at T1 vs SDSS with drain at T2: the square device is
  // rotation symmetric, so drain currents must match.
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const SolveResult a = solver.solve(parse_bias_case("DSSS").at(5.0, 5.0));
  const SolveResult b = solver.solve(parse_bias_case("SDSS").at(5.0, 5.0));
  EXPECT_NEAR(a.terminal_current[0], b.terminal_current[1],
              1e-6 * std::fabs(a.terminal_current[0]) + 1e-15);
}

TEST(Solver, GateControlsTheCurrent) {
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const auto dsss = parse_bias_case("DSSS");
  const double on = solver.solve(dsss.at(5.0, 5.0)).terminal_current[0];
  const double off = solver.solve(dsss.at(-0.5, 5.0)).terminal_current[0];
  EXPECT_GT(on, 1e-4);
  EXPECT_GT(on / off, 1e4);
}

TEST(Solver, FloatingTerminalsCarryNoCurrent) {
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const SolveResult r = solver.solve(parse_bias_case("DSFF").at(5.0, 5.0));
  EXPECT_DOUBLE_EQ(r.terminal_current[2], 0.0);
  EXPECT_DOUBLE_EQ(r.terminal_current[3], 0.0);
}

TEST(Solver, WarmStartReproducesTheSameAnswer) {
  const NetworkSolver solver = make_solver(DeviceShape::kCross, GateDielectric::kHfO2);
  const auto dsss = parse_bias_case("DSSS");
  const SolveResult cold = solver.solve(dsss.at(4.0, 5.0));
  const SolveResult warm = solver.solve(dsss.at(4.0, 5.0), &cold.node_voltage);
  EXPECT_NEAR(warm.terminal_current[0], cold.terminal_current[0],
              1e-5 * std::fabs(cold.terminal_current[0]));
  EXPECT_LE(warm.nonlinear_iterations, cold.nonlinear_iterations);
}

TEST(Sweep, GateSweepIsMonotone) {
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const auto dsss = parse_bias_case("DSSS");
  const IvCurve c = sweep_gate(solver, dsss, 5.0, 0.0, 5.0, 11);
  const auto id = c.drain_current(dsss);
  for (std::size_t i = 1; i < id.size(); ++i) {
    EXPECT_GE(id[i], id[i - 1] * 0.999) << "at " << c.sweep_values[i];
  }
}

TEST(Sweep, DrainSweepSaturates) {
  const NetworkSolver solver = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const auto dsss = parse_bias_case("DSSS");
  const IvCurve c = sweep_drain(solver, dsss, 5.0, 0.0, 5.0, 11);
  const auto id = c.drain_current(dsss);
  // Monotone rising...
  for (std::size_t i = 1; i < id.size(); ++i) EXPECT_GE(id[i], id[i - 1] * 0.999);
  // ...with a decreasing slope (saturation bending).
  const double early_slope = id[2] - id[1];
  const double late_slope = id[10] - id[9];
  EXPECT_LT(late_slope, 0.5 * early_slope);
}

TEST(Extract, MaxGmThresholdOnSyntheticData) {
  // Perfect level-1 linear-region data: Id = K (Vg - 1.0) Vds for Vg > 1.
  ftl::linalg::Vector vgs;
  ftl::linalg::Vector id;
  const double vds = 0.01;
  for (double vg = 0.0; vg <= 5.0; vg += 0.1) {
    vgs.push_back(vg);
    id.push_back(vg > 1.0 ? 1e-4 * (vg - 1.0) * vds : 0.0);
  }
  EXPECT_NEAR(threshold_voltage_max_gm(vgs, id, vds), 1.0, 0.06);
}

TEST(Extract, OnOffRatioInterpolates) {
  const ftl::linalg::Vector vgs{0.0, 2.5, 5.0};
  const ftl::linalg::Vector id{1e-9, 1e-6, 1e-3};
  EXPECT_NEAR(on_off_ratio(vgs, id, 5.0, 0.0), 1e6, 1e4);
}

TEST(Extract, CoefficientOfVariation) {
  EXPECT_NEAR(coefficient_of_variation({1.0, 1.0, 1.0}), 0.0, 1e-12);
  EXPECT_GT(coefficient_of_variation({1.0, 3.0}), 0.4);
}

TEST(CurrentDensity, CrossIsMoreUniformThanSquare) {
  // The Fig. 8 claim, quantified: current crowding (Gini over |J| in the
  // channel) is lower for the cross-shaped gate.
  const auto square = make_solver(DeviceShape::kSquare, GateDielectric::kHfO2);
  const auto cross = make_solver(DeviceShape::kCross, GateDielectric::kHfO2);
  const BiasPoint bias = parse_bias_case("DSSS").at(5.0, 5.0);
  const CrowdingMetrics ms = crowding_metrics(square, bias);
  const CrowdingMetrics mc = crowding_metrics(cross, bias);
  EXPECT_LT(mc.gini, ms.gini);
  EXPECT_LT(mc.peak_over_mean, ms.peak_over_mean);
}

TEST(CurrentDensity, FieldCoversActiveCellsOnly) {
  const auto solver = make_solver(DeviceShape::kJunctionless, GateDielectric::kHfO2, 24);
  const auto field = current_density_field(solver, parse_bias_case("DSSS").at(2.0, 1.0));
  int active = 0;
  for (int i = 0; i < solver.mesh().cell_count(); ++i) {
    if (solver.mesh().region[static_cast<std::size_t>(i)] != Region::kOutside) ++active;
  }
  EXPECT_EQ(static_cast<int>(field.size()), active);
}

TEST(Solver, SparseLuBackendMatchesCg) {
  // The direct backend (factor-once u-block, refactored V-block) must land
  // on the same fixed point as the default CG backend, terminal currents
  // included — that is what keeps it trustworthy as a differential check.
  const NetworkSolver solver = make_solver(DeviceShape::kSquare,
                                           GateDielectric::kHfO2, 24);
  SolverOptions cg_opts;
  cg_opts.backend = LinearBackend::kCg;
  SolverOptions lu_opts;
  lu_opts.backend = LinearBackend::kSparseLu;
  for (const char* name : {"DSSS", "DSDS", "DSFF"}) {
    const BiasPoint bias = parse_bias_case(name).at(5.0, 5.0);
    const SolveResult rc = solver.solve(bias, nullptr, cg_opts);
    const SolveResult rl = solver.solve(bias, nullptr, lu_opts);
    ASSERT_TRUE(rc.converged);
    ASSERT_TRUE(rl.converged);
    double vmax = 1e-30;
    double dmax = 0.0;
    for (std::size_t i = 0; i < rc.node_voltage.size(); ++i) {
      vmax = std::max(vmax, std::fabs(rc.node_voltage[i]));
      dmax = std::max(dmax, std::fabs(rc.node_voltage[i] - rl.node_voltage[i]));
    }
    EXPECT_LT(dmax / vmax, 1e-9) << name;
    for (std::size_t t = 0; t < 4; ++t) {
      EXPECT_NEAR(rl.terminal_current[t], rc.terminal_current[t],
                  1e-9 * std::max(std::fabs(rc.terminal_current[t]), 1e-12))
          << name << " T" << t + 1;
    }
  }
}

}  // namespace
