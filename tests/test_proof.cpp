// DRAT proof logging and the embedded checker: valid proofs from real
// solver runs (plain UNSAT, assumption UNSAT, CEGAR-style incremental use)
// are accepted; corrupted, truncated, deletion-broken, and bogus-derivation
// proofs are rejected; file round-trips preserve the checkable unit; and
// proof logging does not perturb the search.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ftl/sat/proof.hpp"
#include "ftl/sat/solver.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::sat::check_solver_proof;
using ftl::sat::DratChecker;
using ftl::sat::DratCheckResult;
using ftl::sat::FileProofSink;
using ftl::sat::LBool;
using ftl::sat::Lit;
using ftl::sat::MemoryProof;
using ftl::sat::parse_drat_file;
using ftl::sat::ProofRecord;
using ftl::sat::ProofStep;
using ftl::sat::Solver;
using ftl::sat::SolverOptions;
using ftl::sat::Var;

SolverOptions certify_options() {
  SolverOptions options;
  options.certify = true;
  return options;
}

/// Pigeonhole principle with `holes`+1 pigeons: UNSAT, and small instances
/// force genuine clause learning (no level-0 shortcut).
void add_pigeonhole(Solver& solver, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> in(static_cast<std::size_t>(pigeons));
  for (auto& row : in) {
    for (int h = 0; h < holes; ++h) row.push_back(solver.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> at_least_one;
    for (int h = 0; h < holes; ++h) {
      at_least_one.push_back(Lit::of(in[static_cast<std::size_t>(p)]
                                       [static_cast<std::size_t>(h)]));
    }
    ASSERT_TRUE(solver.add_clause(at_least_one));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p = 0; p < pigeons; ++p) {
      for (int q = p + 1; q < pigeons; ++q) {
        ASSERT_TRUE(solver.add_clause(
            {~Lit::of(in[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(h)]),
             ~Lit::of(in[static_cast<std::size_t>(q)]
                        [static_cast<std::size_t>(h)])}));
      }
    }
  }
}

TEST(Proof, PigeonholeUnsatProofChecks) {
  Solver solver(certify_options());
  add_pigeonhole(solver, 4);
  ASSERT_EQ(solver.solve(), LBool::kFalse);

  const DratCheckResult* result = solver.last_proof_check();
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->valid) << result->error;
  EXPECT_GT(result->checked, 0u);
  EXPECT_FALSE(result->core_inputs.empty());
  EXPECT_EQ(solver.proof_stats().checks, 1u);
  EXPECT_EQ(solver.proof_stats().failures, 0u);
  EXPECT_GT(solver.proof_stats().derived, 0u);

  // Re-running the check through the convenience wrapper agrees.
  const DratCheckResult again = check_solver_proof(solver);
  EXPECT_TRUE(again.valid) << again.error;
  EXPECT_EQ(again.core_inputs, result->core_inputs);
}

TEST(Proof, SatVerdictRunsNoCheck) {
  Solver solver(certify_options());
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  ASSERT_TRUE(solver.add_clause({Lit::of(a), Lit::of(b)}));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  EXPECT_EQ(solver.last_proof_check(), nullptr);
  EXPECT_EQ(solver.proof_stats().checks, 0u);
}

TEST(Proof, AssumptionUnsatCertifiesFailedAssumptionClause) {
  Solver solver(certify_options());
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  const Var c = solver.new_var();
  // a -> b, b -> ~c. Assuming a and c is UNSAT; the third assumption-free
  // variable is irrelevant.
  ASSERT_TRUE(solver.add_clause({~Lit::of(a), Lit::of(b)}));
  ASSERT_TRUE(solver.add_clause({~Lit::of(b), ~Lit::of(c)}));
  ASSERT_EQ(solver.solve({Lit::of(a), Lit::of(c)}), LBool::kFalse);
  ASSERT_FALSE(solver.failed_assumptions().empty());

  const DratCheckResult* result = solver.last_proof_check();
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->valid) << result->error;
  // The core names both implication inputs.
  EXPECT_EQ(result->core_inputs.size(), 2u);
}

TEST(Proof, Level0ConflictFromAddClauseIsTriviallyCertified) {
  Solver solver(certify_options());
  const Var a = solver.new_var();
  ASSERT_TRUE(solver.add_clause({Lit::of(a)}));
  EXPECT_FALSE(solver.add_clause({~Lit::of(a)}));  // empty after level-0 strip
  ASSERT_EQ(solver.solve(), LBool::kFalse);
  const DratCheckResult* result = solver.last_proof_check();
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->valid) << result->error;
}

TEST(Proof, IncrementalSolvesKeepTheProofCheckable) {
  Solver solver(certify_options());
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  ASSERT_TRUE(solver.add_clause({Lit::of(a), Lit::of(b)}));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  ASSERT_TRUE(solver.add_clause({~Lit::of(a)}));
  // Forcing ~b as well empties the first clause at level 0: add_clause
  // reports the formula unsatisfiable, and the proof must still certify it.
  EXPECT_FALSE(solver.add_clause({~Lit::of(b)}));
  ASSERT_EQ(solver.solve(), LBool::kFalse);
  const DratCheckResult* result = solver.last_proof_check();
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->valid) << result->error;
}

TEST(Proof, LoggingDoesNotPerturbTheSearch) {
  Solver plain;
  add_pigeonhole(plain, 4);
  ASSERT_EQ(plain.solve(), LBool::kFalse);

  Solver certified(certify_options());
  add_pigeonhole(certified, 4);
  ASSERT_EQ(certified.solve(), LBool::kFalse);

  EXPECT_EQ(plain.stats().conflicts, certified.stats().conflicts);
  EXPECT_EQ(plain.stats().decisions, certified.stats().decisions);
  EXPECT_EQ(plain.stats().propagations, certified.stats().propagations);
}

// -- adversarial inputs ------------------------------------------------------

/// A checked-valid UNSAT proof to corrupt, plus the final clause target.
MemoryProof pigeonhole_proof() {
  Solver solver(certify_options());
  add_pigeonhole(solver, 3);
  EXPECT_EQ(solver.solve(), LBool::kFalse);
  EXPECT_NE(solver.proof_log(), nullptr);
  return *solver.proof_log();  // copy of the log
}

TEST(ProofAdversarial, CorruptedDerivationIsRejected) {
  MemoryProof proof = pigeonhole_proof();
  DratChecker checker;
  ASSERT_TRUE(checker.check(proof).valid);

  // Flip a literal in every derived clause until one corruption lands in
  // the marked cone and the proof stops checking.
  bool rejected = false;
  for (std::size_t i = 0; i < proof.records().size() && !rejected; ++i) {
    ProofRecord& rec = proof.mutable_records()[i];
    if (rec.step != ProofStep::kDerive || rec.lits.empty()) continue;
    const Lit original = rec.lits[0];
    rec.lits[0] = ~original;
    const DratCheckResult result = checker.check(proof);
    if (!result.valid) {
      rejected = true;
      EXPECT_FALSE(result.error.empty());
    }
    rec.lits[0] = original;
  }
  EXPECT_TRUE(rejected);
}

TEST(ProofAdversarial, BogusFinalClauseIsRejected) {
  // A satisfiable formula whose "proof" claims the empty clause: the solver
  // analogue is mutated learning that fabricates an unsound conflict.
  std::vector<ProofRecord> records;
  records.push_back({ProofStep::kInput, {Lit::of(0), Lit::of(1)}});
  records.push_back({ProofStep::kInput, {~Lit::of(0), Lit::of(1)}});
  records.push_back({ProofStep::kDerive, {Lit::of(1)}});  // genuine RUP
  records.push_back({ProofStep::kDerive, {}});            // bogus
  const DratCheckResult result = DratChecker().check(records);
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.error.empty());
}

TEST(ProofAdversarial, DerivationFromDeletedClauseIsRejected) {
  // {a}, {~a, b}: delete the implication, then claim {b} — the deletion
  // removed the only clause that justifies it.
  std::vector<ProofRecord> records;
  records.push_back({ProofStep::kInput, {Lit::of(0)}});
  records.push_back({ProofStep::kInput, {~Lit::of(0), Lit::of(1)}});
  records.push_back({ProofStep::kDelete, {~Lit::of(0), Lit::of(1)}});
  records.push_back({ProofStep::kDerive, {Lit::of(1)}});
  const DratCheckResult result = DratChecker().check(records, {Lit::of(1)});
  EXPECT_FALSE(result.valid);

  // Without the deletion the same derivation checks.
  std::vector<ProofRecord> intact = {records[0], records[1], records[3]};
  EXPECT_TRUE(DratChecker().check(intact, {Lit::of(1)}).valid);
}

TEST(ProofAdversarial, DeletingAnUnknownClauseIsRejected) {
  std::vector<ProofRecord> records;
  records.push_back({ProofStep::kInput, {Lit::of(0)}});
  records.push_back({ProofStep::kDelete, {Lit::of(1), Lit::of(2)}});
  records.push_back({ProofStep::kDerive, {Lit::of(0)}});
  const DratCheckResult result = DratChecker().check(records, {Lit::of(0)});
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.error.find("deletion"), std::string::npos);
}

TEST(ProofAdversarial, FinalClauseMismatchIsRejected) {
  std::vector<ProofRecord> records;
  records.push_back({ProofStep::kInput, {Lit::of(0)}});
  records.push_back({ProofStep::kDerive, {Lit::of(0)}});
  // The claim being certified is {~x0}, but the proof ends with {x0}.
  const DratCheckResult result = DratChecker().check(records, {~Lit::of(0)});
  EXPECT_FALSE(result.valid);
}

TEST(ProofAdversarial, ProofWithNoDerivationIsRejected) {
  std::vector<ProofRecord> records;
  records.push_back({ProofStep::kInput, {Lit::of(0)}});
  const DratCheckResult result = DratChecker().check(records);
  EXPECT_FALSE(result.valid);
}

// -- file round-trip ---------------------------------------------------------

TEST(ProofFile, DratFileRoundTripsAndChecks) {
  const std::string path = testing::TempDir() + "ftl_proof_roundtrip.drat";
  Solver solver(certify_options());
  FileProofSink sink(path);
  solver.set_proof_sink(&sink);
  add_pigeonhole(solver, 3);
  ASSERT_EQ(solver.solve(), LBool::kFalse);
  sink.close();

  const std::vector<ProofRecord> records = parse_drat_file(path);
  const MemoryProof* log = solver.proof_log();
  ASSERT_NE(log, nullptr);
  ASSERT_EQ(records.size(), log->records().size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].step, log->records()[i].step);
    EXPECT_EQ(records[i].lits, log->records()[i].lits);
  }
  EXPECT_TRUE(DratChecker().check(records).valid);
  std::remove(path.c_str());
}

TEST(ProofFile, TruncatedFileIsRejected) {
  const std::string path = testing::TempDir() + "ftl_proof_truncated.drat";
  {
    std::ofstream out(path);
    out << "c i 1 0\nc i -1 2 0\n-2 1";  // missing the terminating 0
  }
  EXPECT_THROW(parse_drat_file(path), ftl::Error);
  std::remove(path.c_str());
}

TEST(ProofFile, GarbageTokenIsRejected) {
  const std::string path = testing::TempDir() + "ftl_proof_garbage.drat";
  {
    std::ofstream out(path);
    out << "1 two 0\n";
  }
  EXPECT_THROW(parse_drat_file(path), ftl::Error);
  std::remove(path.c_str());
}

TEST(ProofFile, MissingFileThrows) {
  EXPECT_THROW(parse_drat_file("/nonexistent/ftl.drat"), ftl::Error);
}

}  // namespace
