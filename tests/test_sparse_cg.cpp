// Sparse-matrix and conjugate-gradient tests, including agreement with the
// dense LU solver on random SPD systems and grid Laplacians (the exact
// workload of the TCAD network solver).
#include <gtest/gtest.h>

#include <random>

#include "ftl/linalg/cg.hpp"
#include "ftl/linalg/lu.hpp"
#include "ftl/linalg/sparse.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::linalg::conjugate_gradient;
using ftl::linalg::Matrix;
using ftl::linalg::SparseMatrix;
using ftl::linalg::TripletList;
using ftl::linalg::Vector;

TEST(Sparse, SumsDuplicatesAndDropsZeros) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(1, 1, 5.0);
  t.add(0, 1, 0.0);  // dropped
  t.add(1, 0, 3.0);
  t.add(1, 0, -3.0);  // cancels to zero -> dropped at build
  const SparseMatrix m(t);
  EXPECT_EQ(m.nonzeros(), 2u);
  const Vector y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
}

TEST(Sparse, DiagonalExtraction) {
  TripletList t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 2, 9.0);
  t.add(2, 2, 4.0);
  const Vector d = SparseMatrix(t).diagonal();
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 4.0);
}

TEST(Sparse, OutOfRangeTripletThrows) {
  TripletList t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), ftl::ContractViolation);
}

TEST(Cg, SolvesDiagonalSystemInstantly) {
  TripletList t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 1, 4.0);
  t.add(2, 2, 8.0);
  const auto r = conjugate_gradient(SparseMatrix(t), {2.0, 4.0, 8.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);
  EXPECT_NEAR(r.x[1], 1.0, 1e-10);
  EXPECT_NEAR(r.x[2], 1.0, 1e-10);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  TripletList t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  const auto r = conjugate_gradient(SparseMatrix(t), {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
}

class CgVsLu : public ::testing::TestWithParam<int> {};

TEST_P(CgVsLu, AgreesOnRandomSpdSystems) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) * 13 + 1);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);

  // SPD by construction: A = B^T B + n I.
  Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r)
    for (std::size_t c = 0; c < static_cast<std::size_t>(n); ++c) b(r, c) = dist(rng);
  Matrix a = b.gram();
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) a(i, i) += n;

  TripletList t(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r)
    for (std::size_t c = 0; c < static_cast<std::size_t>(n); ++c) t.add(r, c, a(r, c));

  Vector rhs(static_cast<std::size_t>(n));
  for (double& v : rhs) v = dist(rng);

  const auto cg = conjugate_gradient(SparseMatrix(t), rhs);
  const Vector lu = ftl::linalg::solve(a, rhs);
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < lu.size(); ++i) {
    EXPECT_NEAR(cg.x[i], lu[i], 1e-7) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgVsLu, ::testing::Values(2, 5, 10, 40, 100));

TEST(Cg, GridLaplacianDirichletProblem) {
  // 1-D chain of 50 unit conductances with the ends pinned at 0 and 1
  // (folded into the RHS): interior solution is linear in position.
  const int n = 49;  // interior nodes
  TripletList t(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  Vector rhs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    t.add(static_cast<std::size_t>(i), static_cast<std::size_t>(i), 2.0);
    if (i > 0) t.add(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1), -1.0);
    if (i + 1 < n) t.add(static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1), -1.0);
  }
  rhs[static_cast<std::size_t>(n - 1)] = 1.0;  // right boundary at 1 V
  const auto r = conjugate_gradient(SparseMatrix(t), rhs);
  ASSERT_TRUE(r.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.x[static_cast<std::size_t>(i)], (i + 1) / 50.0, 1e-8);
  }
}

TEST(Cg, WarmStartReducesIterations) {
  const int n = 60;
  TripletList t(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  Vector rhs(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    t.add(static_cast<std::size_t>(i), static_cast<std::size_t>(i), 2.1);
    if (i > 0) t.add(static_cast<std::size_t>(i), static_cast<std::size_t>(i - 1), -1.0);
    if (i + 1 < n) t.add(static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1), -1.0);
    rhs[static_cast<std::size_t>(i)] = 1.0;
  }
  const SparseMatrix a(t);
  const auto cold = conjugate_gradient(a, rhs);
  ASSERT_TRUE(cold.converged);
  const auto warm = conjugate_gradient(a, rhs, cold.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2);
}

}  // namespace
