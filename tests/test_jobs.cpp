// Job graph + scheduler: construction invariants, topological execution,
// failure-cone isolation, bounded retry, serial/parallel artifact identity,
// and the telemetry event stream.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "ftl/jobs/graph.hpp"
#include "ftl/jobs/scheduler.hpp"
#include "ftl/jobs/telemetry.hpp"
#include "ftl/util/error.hpp"

namespace {

using namespace ftl;

jobs::Artifact scalar_artifact(const std::string& name, double value) {
  jobs::Artifact a;
  a.scalars[name] = value;
  return a;
}

jobs::JobDesc make_job(const std::string& name, std::vector<jobs::JobId> deps,
                       std::function<jobs::Artifact(jobs::JobContext&)> fn) {
  jobs::JobDesc d;
  d.name = name;
  d.deps = std::move(deps);
  d.fn = std::move(fn);
  return d;
}

TEST(JobGraph, RejectsBadDeclarations) {
  jobs::JobGraph g;
  const auto noop = [](jobs::JobContext&) { return jobs::Artifact{}; };
  EXPECT_THROW(g.add(make_job("", {}, noop)), ftl::Error);   // empty name
  EXPECT_THROW(g.add(make_job("a", {0}, noop)), ftl::Error); // dep not added
  EXPECT_THROW(g.add(make_job("a", {}, nullptr)), ftl::Error);
  g.add(make_job("a", {}, noop));
  EXPECT_THROW(g.add(make_job("a", {}, noop)), ftl::Error);  // duplicate
}

TEST(JobGraph, ClosurePullsTransitiveDeps) {
  jobs::JobGraph g;
  const auto noop = [](jobs::JobContext&) { return jobs::Artifact{}; };
  const jobs::JobId a = g.add(make_job("a", {}, noop));
  const jobs::JobId b = g.add(make_job("b", {a}, noop));
  const jobs::JobId c = g.add(make_job("c", {b}, noop));
  const jobs::JobId d = g.add(make_job("d", {}, noop));
  const std::vector<char> mask = g.closure({c});
  EXPECT_TRUE(mask[static_cast<std::size_t>(a)]);
  EXPECT_TRUE(mask[static_cast<std::size_t>(b)]);
  EXPECT_TRUE(mask[static_cast<std::size_t>(c)]);
  EXPECT_FALSE(mask[static_cast<std::size_t>(d)]);
}

TEST(Scheduler, RunsDependenciesBeforeDependents) {
  jobs::JobGraph g;
  std::vector<std::string> order;
  std::mutex m;
  const auto record = [&](const std::string& name) {
    return [&, name](jobs::JobContext&) {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(name);
      return jobs::Artifact{};
    };
  };
  const jobs::JobId a = g.add(make_job("a", {}, record("a")));
  const jobs::JobId b = g.add(make_job("b", {a}, record("b")));
  g.add(make_job("c", {a, b}, record("c")));

  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{0}}) {
    order.clear();
    jobs::RunOptions options;
    options.jobs = parallelism;
    const jobs::RunResult result = jobs::run_graph(g, options);
    EXPECT_TRUE(result.ok());
    ASSERT_EQ(order.size(), 3u);
    const auto pos = [&](const std::string& n) {
      return std::find(order.begin(), order.end(), n) - order.begin();
    };
    EXPECT_LT(pos("a"), pos("b"));
    EXPECT_LT(pos("b"), pos("c"));
  }
}

TEST(Scheduler, DependencyArtifactsArriveInDeclarationOrder) {
  jobs::JobGraph g;
  const jobs::JobId a = g.add(make_job(
      "a", {}, [](jobs::JobContext&) { return scalar_artifact("v", 1.0); }));
  const jobs::JobId b = g.add(make_job(
      "b", {}, [](jobs::JobContext&) { return scalar_artifact("v", 2.0); }));
  g.add(make_job("sum", {b, a}, [](jobs::JobContext& ctx) {
    EXPECT_EQ(ctx.input_count(), 2u);
    // deps were declared {b, a}: input 0 is b's artifact.
    EXPECT_DOUBLE_EQ(ctx.input(0).scalar("v"), 2.0);
    EXPECT_DOUBLE_EQ(ctx.input(1).scalar("v"), 1.0);
    return scalar_artifact("sum",
                           ctx.input(0).scalar("v") + ctx.input(1).scalar("v"));
  }));
  const jobs::RunResult result = jobs::run_graph(g, {});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.reports.back().artifact->scalar("sum"), 3.0);
}

TEST(Scheduler, FailureCancelsOnlyDownstreamCone) {
  //      bad ──> mid ──> leaf        (all cancelled past bad)
  //      ok  ──> side                (must still run)
  jobs::JobGraph g;
  const jobs::JobId bad = g.add(make_job("bad", {}, [](jobs::JobContext&) {
    throw ftl::Error("intentional failure");
    return jobs::Artifact{};  // unreachable
  }));
  const jobs::JobId mid = g.add(make_job(
      "mid", {bad}, [](jobs::JobContext&) { return jobs::Artifact{}; }));
  const jobs::JobId leaf = g.add(make_job(
      "leaf", {mid}, [](jobs::JobContext&) { return jobs::Artifact{}; }));
  const jobs::JobId ok = g.add(make_job(
      "ok", {}, [](jobs::JobContext&) { return scalar_artifact("x", 1.0); }));
  const jobs::JobId side = g.add(make_job(
      "side", {ok}, [](jobs::JobContext&) { return scalar_artifact("y", 2.0); }));

  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{0}}) {
    jobs::CaptureSink sink;
    jobs::RunOptions options;
    options.jobs = parallelism;
    options.sink = &sink;
    const jobs::RunResult result = jobs::run_graph(g, options);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.failed, 1);
    EXPECT_EQ(result.cancelled, 2);
    EXPECT_EQ(result.succeeded, 2);
    const auto status = [&](jobs::JobId id) {
      return result.reports[static_cast<std::size_t>(id)].status;
    };
    EXPECT_EQ(status(bad), jobs::JobStatus::kFailed);
    EXPECT_EQ(status(mid), jobs::JobStatus::kCancelled);
    EXPECT_EQ(status(leaf), jobs::JobStatus::kCancelled);
    EXPECT_EQ(status(ok), jobs::JobStatus::kSucceeded);
    EXPECT_EQ(status(side), jobs::JobStatus::kSucceeded);
    // Cancellation blames the failed ancestor, deterministically.
    EXPECT_EQ(result.reports[static_cast<std::size_t>(mid)].error, "bad");
    EXPECT_EQ(result.reports[static_cast<std::size_t>(leaf)].error, "bad");
    EXPECT_EQ(sink.count("job_cancelled"), 2);
    EXPECT_EQ(sink.count("job_finish"), 3);  // bad, ok, side
  }
}

TEST(Scheduler, TransientJobsRetryUpToBound) {
  jobs::JobGraph g;
  std::atomic<int> calls{0};
  jobs::JobDesc flaky = make_job("flaky", {}, [&](jobs::JobContext& ctx) {
    ++calls;
    if (ctx.attempt() < 3) throw ftl::Error("transient glitch");
    return scalar_artifact("attempt", ctx.attempt());
  });
  flaky.transient = true;
  flaky.max_retries = 2;  // 3 attempts total
  g.add(std::move(flaky));

  jobs::CaptureSink sink;
  jobs::RunOptions options;
  options.sink = &sink;
  const jobs::RunResult result = jobs::run_graph(g, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(result.reports[0].attempts, 3);
  EXPECT_DOUBLE_EQ(result.reports[0].artifact->scalar("attempt"), 3.0);
  EXPECT_EQ(sink.count("retry"), 2);
}

TEST(Scheduler, TransientRetryBoundIsEnforced) {
  jobs::JobGraph g;
  std::atomic<int> calls{0};
  jobs::JobDesc flaky = make_job("hopeless", {}, [&](jobs::JobContext&) {
    ++calls;
    throw ftl::Error("always fails");
    return jobs::Artifact{};
  });
  flaky.transient = true;
  flaky.max_retries = 2;
  g.add(std::move(flaky));
  const jobs::RunResult result = jobs::run_graph(g, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(result.reports[0].status, jobs::JobStatus::kFailed);
  // Non-transient jobs never retry.
  jobs::JobGraph g2;
  std::atomic<int> calls2{0};
  g2.add(make_job("once", {}, [&](jobs::JobContext&) {
    ++calls2;
    throw ftl::Error("fatal");
    return jobs::Artifact{};
  }));
  jobs::run_graph(g2, {});
  EXPECT_EQ(calls2.load(), 1);
}

TEST(Scheduler, TargetsRestrictExecutionToClosure) {
  jobs::JobGraph g;
  const auto noop = [](jobs::JobContext&) { return jobs::Artifact{}; };
  const jobs::JobId a = g.add(make_job("a", {}, noop));
  const jobs::JobId b = g.add(make_job("b", {a}, noop));
  const jobs::JobId other = g.add(make_job("other", {}, noop));
  jobs::RunOptions options;
  options.targets = {b};
  const jobs::RunResult result = jobs::run_graph(g, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.succeeded, 2);
  EXPECT_EQ(result.reports[static_cast<std::size_t>(other)].status,
            jobs::JobStatus::kNotRun);
}

TEST(Scheduler, ParallelArtifactsBitIdenticalToSerial) {
  // A diamond whose payloads are real floating-point tables; serialized
  // bytes must match between --jobs 1 and the pooled run.
  const auto build = [] {
    jobs::JobGraph g;
    const jobs::JobId src = g.add(make_job("src", {}, [](jobs::JobContext&) {
      jobs::Artifact a;
      a.set_columns({"i", "x"});
      for (int i = 0; i < 50; ++i) {
        a.add_row({static_cast<double>(i), 0.1 * i * i - 3.7e-9 * i});
      }
      return a;
    }));
    const jobs::JobId left = g.add(make_job("left", {src}, [](jobs::JobContext& c) {
      jobs::Artifact a;
      a.set_columns({"sum"});
      double s = 0.0;
      for (const auto& row : c.input(0).rows) s += row[1];
      a.add_row({s});
      return a;
    }));
    const jobs::JobId right = g.add(make_job("right", {src}, [](jobs::JobContext& c) {
      jobs::Artifact a;
      double s = 0.0;
      for (const auto& row : c.input(0).rows) s += row[1] * row[1];
      a.scalars["ss"] = s;
      return a;
    }));
    g.add(make_job("join", {left, right}, [](jobs::JobContext& c) {
      jobs::Artifact a;
      a.scalars["combined"] =
          c.input(0).rows[0][0] + c.input(1).scalar("ss") / 3.0;
      return a;
    }));
    return g;
  };
  const jobs::JobGraph g = build();

  jobs::RunOptions serial;
  serial.jobs = 1;
  const jobs::RunResult r1 = jobs::run_graph(g, serial);
  jobs::RunOptions pooled;
  pooled.jobs = 0;
  const jobs::RunResult r2 = jobs::run_graph(g, pooled);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (std::size_t i = 0; i < r1.reports.size(); ++i) {
    ASSERT_TRUE(r1.reports[i].artifact && r2.reports[i].artifact);
    EXPECT_EQ(r1.reports[i].artifact->serialize(),
              r2.reports[i].artifact->serialize())
        << "job " << i;
    EXPECT_EQ(r1.reports[i].cache_key, r2.reports[i].cache_key);
  }
}

TEST(Scheduler, EmitsLifecycleEvents) {
  jobs::JobGraph g;
  const jobs::JobId a = g.add(make_job("a", {}, [](jobs::JobContext& ctx) {
    ctx.counter("widgets", 4);
    return jobs::Artifact{};
  }));
  g.add(make_job("b", {a}, [](jobs::JobContext&) { return jobs::Artifact{}; }));
  jobs::CaptureSink sink;
  jobs::RunOptions options;
  options.sink = &sink;
  const jobs::RunResult result = jobs::run_graph(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(sink.count("run_start"), 1);
  EXPECT_EQ(sink.count("run_finish"), 1);
  EXPECT_EQ(sink.count("job_start"), 2);
  EXPECT_EQ(sink.count("job_finish"), 2);
  bool saw_counter = false;
  for (const jobs::Event& e : sink.events()) {
    if (e.type == "job_finish" && e.job == "a") {
      saw_counter = e.counters.count("widgets") != 0u &&
                    e.counters.at("widgets") == 4.0;
      EXPECT_FALSE(e.cache_key.empty());
      EXPECT_GE(e.wall_ms, 0.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  // Counters also land on the report and in the summary table.
  EXPECT_DOUBLE_EQ(
      result.reports[static_cast<std::size_t>(a)].counters.at("widgets"), 4.0);
  const std::string table = result.summary_table(g);
  EXPECT_NE(table.find("widgets=4"), std::string::npos);
}

TEST(Telemetry, EventJsonIsWellFormed) {
  jobs::Event e;
  e.type = "job_finish";
  e.job = "tcad\"quote";
  e.detail = "line\nbreak";
  e.attempt = 2;
  e.t_ms = 12.5;
  e.counters["n"] = 3.0;
  const std::string json = jobs::to_json(e);
  EXPECT_NE(json.find("\"ev\":\"job_finish\""), std::string::npos);
  EXPECT_NE(json.find("tcad\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

}  // namespace
