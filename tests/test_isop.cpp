// Minato–Morreale ISOP tests: exact cover of the onset, containment within
// onset ∪ don't-care, irredundancy, and the product/dual-product shared-
// literal lemma that the Altun–Riedel synthesis rests on.
#include <gtest/gtest.h>

#include <random>

#include "ftl/logic/isop.hpp"
#include "ftl/util/error.hpp"

namespace {

using ftl::logic::Cube;
using ftl::logic::isop;
using ftl::logic::isop_of_dual;
using ftl::logic::Sop;
using ftl::logic::TruthTable;

TruthTable random_table(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> bit(0, 1);
  TruthTable f(n);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) f.set(m, bit(rng) == 1);
  return f;
}

TEST(Isop, ConstantFunctions) {
  EXPECT_TRUE(isop(TruthTable::constant(3, false)).empty());
  const Sop one = isop(TruthTable::constant(3, true));
  ASSERT_EQ(one.size(), 1);
  EXPECT_TRUE(one.has_constant_one());
}

TEST(Isop, SingleVariable) {
  const Sop s = isop(TruthTable::variable(4, 2));
  ASSERT_EQ(s.size(), 1);
  EXPECT_EQ(s.to_string(), "x2");
}

TEST(Isop, Xor2HasTwoProducts) {
  const Sop s = isop(TruthTable::from_bits(2, 0b0110));
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(TruthTable::from_sop(s), TruthTable::from_bits(2, 0b0110));
}

TEST(Isop, Xor3HasFourProducts) {
  const TruthTable xor3 = TruthTable::from_function(3, [](std::uint64_t m) {
    return (((m >> 0) ^ (m >> 1) ^ (m >> 2)) & 1) != 0;
  });
  const Sop s = isop(xor3);
  EXPECT_EQ(s.size(), 4);  // the minimal SOP of 3-input parity
  EXPECT_EQ(TruthTable::from_sop(s), xor3);
}

struct IsopCase {
  int num_vars;
  unsigned seed;
};

class IsopRandom : public ::testing::TestWithParam<IsopCase> {};

TEST_P(IsopRandom, CoverEqualsFunction) {
  const auto p = GetParam();
  const TruthTable f = random_table(p.num_vars, p.seed);
  const Sop cover = isop(f);
  EXPECT_EQ(TruthTable::from_sop(cover), f);
}

TEST_P(IsopRandom, EveryCubeIsAnImplicant) {
  const auto p = GetParam();
  const TruthTable f = random_table(p.num_vars, p.seed + 1000);
  const Sop cover = isop(f);
  for (const Cube& c : cover.cubes()) {
    Sop single(p.num_vars);
    single.add(c);
    EXPECT_TRUE(TruthTable::from_sop(single).implies(f));
  }
}

TEST_P(IsopRandom, CoverIsIrredundant) {
  const auto p = GetParam();
  const TruthTable f = random_table(p.num_vars, p.seed + 2000);
  const Sop cover = isop(f);
  // Dropping any single cube must uncover part of the onset.
  for (int skip = 0; skip < cover.size(); ++skip) {
    Sop reduced(p.num_vars);
    for (int i = 0; i < cover.size(); ++i) {
      if (i != skip) reduced.add(cover.cubes()[static_cast<std::size_t>(i)]);
    }
    EXPECT_NE(TruthTable::from_sop(reduced), f)
        << "cube " << skip << " is redundant";
  }
}

TEST_P(IsopRandom, DontCaresAreRespected) {
  const auto p = GetParam();
  const TruthTable on = random_table(p.num_vars, p.seed + 3000);
  const TruthTable dc_raw = random_table(p.num_vars, p.seed + 4000);
  const TruthTable dc = dc_raw & ~on;  // disjoint don't-care set
  const Sop cover = isop(on, dc);
  const TruthTable realized = TruthTable::from_sop(cover);
  EXPECT_TRUE(on.implies(realized));         // covers every onset minterm
  EXPECT_TRUE(realized.implies(on | dc));    // stays inside onset ∪ dc
}

TEST_P(IsopRandom, ProductAndDualProductShareALiteral) {
  // The Altun–Riedel construction requires every (product, dual product)
  // pair to intersect in a literal.
  const auto p = GetParam();
  TruthTable f = random_table(p.num_vars, p.seed + 5000);
  if (f.is_zero() || f.is_one()) return;
  const Sop products = isop(f);
  const Sop duals = isop_of_dual(f);
  for (const Cube& q : duals.cubes()) {
    for (const Cube& pr : products.cubes()) {
      EXPECT_FALSE(q.shared_literals(pr).empty())
          << "q=" << q.to_string() << " p=" << pr.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFunctions, IsopRandom,
    ::testing::Values(IsopCase{1, 1}, IsopCase{2, 1}, IsopCase{2, 2},
                      IsopCase{3, 1}, IsopCase{3, 2}, IsopCase{3, 3},
                      IsopCase{4, 1}, IsopCase{4, 2}, IsopCase{4, 3},
                      IsopCase{5, 1}, IsopCase{5, 2}, IsopCase{6, 1},
                      IsopCase{7, 1}, IsopCase{8, 1}));

TEST(Isop, DualOfDualCoverIsOriginalFunction) {
  for (unsigned seed = 10; seed < 15; ++seed) {
    const TruthTable f = random_table(4, seed);
    if (f.is_zero() || f.is_one()) continue;
    const Sop dual_cover = isop_of_dual(f);
    EXPECT_EQ(TruthTable::from_sop(dual_cover), f.dual());
  }
}

}  // namespace
