# Empty compiler generated dependencies file for ftl_fit.
# This may be replaced when dependencies are built.
