file(REMOVE_RECURSE
  "libftl_fit.a"
)
