file(REMOVE_RECURSE
  "CMakeFiles/ftl_fit.dir/ftl/fit/extract.cpp.o"
  "CMakeFiles/ftl_fit.dir/ftl/fit/extract.cpp.o.d"
  "libftl_fit.a"
  "libftl_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
