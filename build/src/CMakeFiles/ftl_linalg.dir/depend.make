# Empty dependencies file for ftl_linalg.
# This may be replaced when dependencies are built.
