file(REMOVE_RECURSE
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/cg.cpp.o"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/cg.cpp.o.d"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/interp.cpp.o"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/interp.cpp.o.d"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/levmar.cpp.o"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/levmar.cpp.o.d"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/lu.cpp.o"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/lu.cpp.o.d"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/matrix.cpp.o"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/matrix.cpp.o.d"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/sparse.cpp.o"
  "CMakeFiles/ftl_linalg.dir/ftl/linalg/sparse.cpp.o.d"
  "libftl_linalg.a"
  "libftl_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
