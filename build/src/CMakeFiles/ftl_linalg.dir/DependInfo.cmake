
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/linalg/cg.cpp" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/cg.cpp.o" "gcc" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/cg.cpp.o.d"
  "/root/repo/src/ftl/linalg/interp.cpp" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/interp.cpp.o" "gcc" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/interp.cpp.o.d"
  "/root/repo/src/ftl/linalg/levmar.cpp" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/levmar.cpp.o" "gcc" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/levmar.cpp.o.d"
  "/root/repo/src/ftl/linalg/lu.cpp" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/lu.cpp.o.d"
  "/root/repo/src/ftl/linalg/matrix.cpp" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/matrix.cpp.o.d"
  "/root/repo/src/ftl/linalg/sparse.cpp" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/sparse.cpp.o" "gcc" "src/CMakeFiles/ftl_linalg.dir/ftl/linalg/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
