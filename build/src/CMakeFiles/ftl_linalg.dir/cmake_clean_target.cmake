file(REMOVE_RECURSE
  "libftl_linalg.a"
)
