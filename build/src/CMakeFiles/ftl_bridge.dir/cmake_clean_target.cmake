file(REMOVE_RECURSE
  "libftl_bridge.a"
)
