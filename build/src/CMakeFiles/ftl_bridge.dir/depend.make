# Empty dependencies file for ftl_bridge.
# This may be replaced when dependencies are built.
