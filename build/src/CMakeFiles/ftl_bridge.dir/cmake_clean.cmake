file(REMOVE_RECURSE
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/chain_netlist.cpp.o"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/chain_netlist.cpp.o.d"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/lattice_netlist.cpp.o"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/lattice_netlist.cpp.o.d"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/metrics.cpp.o"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/metrics.cpp.o.d"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/switch_model.cpp.o"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/switch_model.cpp.o.d"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/variability.cpp.o"
  "CMakeFiles/ftl_bridge.dir/ftl/bridge/variability.cpp.o.d"
  "libftl_bridge.a"
  "libftl_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
