file(REMOVE_RECURSE
  "libftl_lattice.a"
)
