# Empty dependencies file for ftl_lattice.
# This may be replaced when dependencies are built.
