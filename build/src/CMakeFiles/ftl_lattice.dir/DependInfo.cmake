
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/lattice/connectivity.cpp" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/connectivity.cpp.o" "gcc" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/connectivity.cpp.o.d"
  "/root/repo/src/ftl/lattice/faults.cpp" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/faults.cpp.o" "gcc" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/faults.cpp.o.d"
  "/root/repo/src/ftl/lattice/function.cpp" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/function.cpp.o" "gcc" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/function.cpp.o.d"
  "/root/repo/src/ftl/lattice/known_mappings.cpp" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/known_mappings.cpp.o" "gcc" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/known_mappings.cpp.o.d"
  "/root/repo/src/ftl/lattice/lattice.cpp" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/lattice.cpp.o" "gcc" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/lattice.cpp.o.d"
  "/root/repo/src/ftl/lattice/paths.cpp" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/paths.cpp.o" "gcc" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/paths.cpp.o.d"
  "/root/repo/src/ftl/lattice/synthesis.cpp" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/synthesis.cpp.o" "gcc" "src/CMakeFiles/ftl_lattice.dir/ftl/lattice/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ftl_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
