file(REMOVE_RECURSE
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/connectivity.cpp.o"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/connectivity.cpp.o.d"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/faults.cpp.o"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/faults.cpp.o.d"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/function.cpp.o"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/function.cpp.o.d"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/known_mappings.cpp.o"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/known_mappings.cpp.o.d"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/lattice.cpp.o"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/lattice.cpp.o.d"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/paths.cpp.o"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/paths.cpp.o.d"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/synthesis.cpp.o"
  "CMakeFiles/ftl_lattice.dir/ftl/lattice/synthesis.cpp.o.d"
  "libftl_lattice.a"
  "libftl_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
