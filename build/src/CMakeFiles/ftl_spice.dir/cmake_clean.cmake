file(REMOVE_RECURSE
  "CMakeFiles/ftl_spice.dir/ftl/spice/circuit.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/circuit.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/dcop.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/dcop.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/dcsweep.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/dcsweep.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/devices.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/devices.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/measure.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/measure.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/mna.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/mna.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/mosfet.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/mosfet.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/mosfet3.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/mosfet3.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/netlist_parser.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/netlist_parser.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/sources.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/sources.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/transient.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/transient.cpp.o.d"
  "CMakeFiles/ftl_spice.dir/ftl/spice/waveform.cpp.o"
  "CMakeFiles/ftl_spice.dir/ftl/spice/waveform.cpp.o.d"
  "libftl_spice.a"
  "libftl_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
