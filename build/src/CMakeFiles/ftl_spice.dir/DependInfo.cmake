
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/spice/circuit.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/circuit.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/circuit.cpp.o.d"
  "/root/repo/src/ftl/spice/dcop.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/dcop.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/dcop.cpp.o.d"
  "/root/repo/src/ftl/spice/dcsweep.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/dcsweep.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/dcsweep.cpp.o.d"
  "/root/repo/src/ftl/spice/devices.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/devices.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/devices.cpp.o.d"
  "/root/repo/src/ftl/spice/measure.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/measure.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/measure.cpp.o.d"
  "/root/repo/src/ftl/spice/mna.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/mna.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/mna.cpp.o.d"
  "/root/repo/src/ftl/spice/mosfet.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/mosfet.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/mosfet.cpp.o.d"
  "/root/repo/src/ftl/spice/mosfet3.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/mosfet3.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/mosfet3.cpp.o.d"
  "/root/repo/src/ftl/spice/netlist_parser.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/netlist_parser.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/netlist_parser.cpp.o.d"
  "/root/repo/src/ftl/spice/sources.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/sources.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/sources.cpp.o.d"
  "/root/repo/src/ftl/spice/transient.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/transient.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/transient.cpp.o.d"
  "/root/repo/src/ftl/spice/waveform.cpp" "src/CMakeFiles/ftl_spice.dir/ftl/spice/waveform.cpp.o" "gcc" "src/CMakeFiles/ftl_spice.dir/ftl/spice/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ftl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_level1.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
