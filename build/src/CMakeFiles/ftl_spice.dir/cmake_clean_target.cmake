file(REMOVE_RECURSE
  "libftl_spice.a"
)
