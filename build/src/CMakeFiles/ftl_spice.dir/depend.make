# Empty dependencies file for ftl_spice.
# This may be replaced when dependencies are built.
