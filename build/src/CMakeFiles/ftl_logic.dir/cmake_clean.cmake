file(REMOVE_RECURSE
  "CMakeFiles/ftl_logic.dir/ftl/logic/bdd.cpp.o"
  "CMakeFiles/ftl_logic.dir/ftl/logic/bdd.cpp.o.d"
  "CMakeFiles/ftl_logic.dir/ftl/logic/cube.cpp.o"
  "CMakeFiles/ftl_logic.dir/ftl/logic/cube.cpp.o.d"
  "CMakeFiles/ftl_logic.dir/ftl/logic/expr_parser.cpp.o"
  "CMakeFiles/ftl_logic.dir/ftl/logic/expr_parser.cpp.o.d"
  "CMakeFiles/ftl_logic.dir/ftl/logic/isop.cpp.o"
  "CMakeFiles/ftl_logic.dir/ftl/logic/isop.cpp.o.d"
  "CMakeFiles/ftl_logic.dir/ftl/logic/sop.cpp.o"
  "CMakeFiles/ftl_logic.dir/ftl/logic/sop.cpp.o.d"
  "CMakeFiles/ftl_logic.dir/ftl/logic/truth_table.cpp.o"
  "CMakeFiles/ftl_logic.dir/ftl/logic/truth_table.cpp.o.d"
  "libftl_logic.a"
  "libftl_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
