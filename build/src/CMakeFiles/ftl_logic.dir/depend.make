# Empty dependencies file for ftl_logic.
# This may be replaced when dependencies are built.
