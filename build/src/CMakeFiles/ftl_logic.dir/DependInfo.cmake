
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/logic/bdd.cpp" "src/CMakeFiles/ftl_logic.dir/ftl/logic/bdd.cpp.o" "gcc" "src/CMakeFiles/ftl_logic.dir/ftl/logic/bdd.cpp.o.d"
  "/root/repo/src/ftl/logic/cube.cpp" "src/CMakeFiles/ftl_logic.dir/ftl/logic/cube.cpp.o" "gcc" "src/CMakeFiles/ftl_logic.dir/ftl/logic/cube.cpp.o.d"
  "/root/repo/src/ftl/logic/expr_parser.cpp" "src/CMakeFiles/ftl_logic.dir/ftl/logic/expr_parser.cpp.o" "gcc" "src/CMakeFiles/ftl_logic.dir/ftl/logic/expr_parser.cpp.o.d"
  "/root/repo/src/ftl/logic/isop.cpp" "src/CMakeFiles/ftl_logic.dir/ftl/logic/isop.cpp.o" "gcc" "src/CMakeFiles/ftl_logic.dir/ftl/logic/isop.cpp.o.d"
  "/root/repo/src/ftl/logic/sop.cpp" "src/CMakeFiles/ftl_logic.dir/ftl/logic/sop.cpp.o" "gcc" "src/CMakeFiles/ftl_logic.dir/ftl/logic/sop.cpp.o.d"
  "/root/repo/src/ftl/logic/truth_table.cpp" "src/CMakeFiles/ftl_logic.dir/ftl/logic/truth_table.cpp.o" "gcc" "src/CMakeFiles/ftl_logic.dir/ftl/logic/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
