file(REMOVE_RECURSE
  "libftl_logic.a"
)
