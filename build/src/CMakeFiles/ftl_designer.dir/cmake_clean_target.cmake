file(REMOVE_RECURSE
  "libftl_designer.a"
)
