# Empty compiler generated dependencies file for ftl_designer.
# This may be replaced when dependencies are built.
