file(REMOVE_RECURSE
  "CMakeFiles/ftl_designer.dir/ftl/designer/designer.cpp.o"
  "CMakeFiles/ftl_designer.dir/ftl/designer/designer.cpp.o.d"
  "libftl_designer.a"
  "libftl_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
