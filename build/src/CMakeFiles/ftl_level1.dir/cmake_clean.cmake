file(REMOVE_RECURSE
  "CMakeFiles/ftl_level1.dir/ftl/fit/mosfet_level1.cpp.o"
  "CMakeFiles/ftl_level1.dir/ftl/fit/mosfet_level1.cpp.o.d"
  "CMakeFiles/ftl_level1.dir/ftl/fit/mosfet_level3.cpp.o"
  "CMakeFiles/ftl_level1.dir/ftl/fit/mosfet_level3.cpp.o.d"
  "libftl_level1.a"
  "libftl_level1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_level1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
