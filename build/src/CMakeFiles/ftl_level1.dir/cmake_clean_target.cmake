file(REMOVE_RECURSE
  "libftl_level1.a"
)
