# Empty dependencies file for ftl_level1.
# This may be replaced when dependencies are built.
