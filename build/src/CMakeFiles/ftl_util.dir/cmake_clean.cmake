file(REMOVE_RECURSE
  "CMakeFiles/ftl_util.dir/ftl/util/csv.cpp.o"
  "CMakeFiles/ftl_util.dir/ftl/util/csv.cpp.o.d"
  "CMakeFiles/ftl_util.dir/ftl/util/error.cpp.o"
  "CMakeFiles/ftl_util.dir/ftl/util/error.cpp.o.d"
  "CMakeFiles/ftl_util.dir/ftl/util/strings.cpp.o"
  "CMakeFiles/ftl_util.dir/ftl/util/strings.cpp.o.d"
  "CMakeFiles/ftl_util.dir/ftl/util/table.cpp.o"
  "CMakeFiles/ftl_util.dir/ftl/util/table.cpp.o.d"
  "CMakeFiles/ftl_util.dir/ftl/util/units.cpp.o"
  "CMakeFiles/ftl_util.dir/ftl/util/units.cpp.o.d"
  "libftl_util.a"
  "libftl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
