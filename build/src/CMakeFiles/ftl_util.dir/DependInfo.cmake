
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/util/csv.cpp" "src/CMakeFiles/ftl_util.dir/ftl/util/csv.cpp.o" "gcc" "src/CMakeFiles/ftl_util.dir/ftl/util/csv.cpp.o.d"
  "/root/repo/src/ftl/util/error.cpp" "src/CMakeFiles/ftl_util.dir/ftl/util/error.cpp.o" "gcc" "src/CMakeFiles/ftl_util.dir/ftl/util/error.cpp.o.d"
  "/root/repo/src/ftl/util/strings.cpp" "src/CMakeFiles/ftl_util.dir/ftl/util/strings.cpp.o" "gcc" "src/CMakeFiles/ftl_util.dir/ftl/util/strings.cpp.o.d"
  "/root/repo/src/ftl/util/table.cpp" "src/CMakeFiles/ftl_util.dir/ftl/util/table.cpp.o" "gcc" "src/CMakeFiles/ftl_util.dir/ftl/util/table.cpp.o.d"
  "/root/repo/src/ftl/util/units.cpp" "src/CMakeFiles/ftl_util.dir/ftl/util/units.cpp.o" "gcc" "src/CMakeFiles/ftl_util.dir/ftl/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
