# Empty dependencies file for ftl_tcad.
# This may be replaced when dependencies are built.
