
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/tcad/bias.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/bias.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/bias.cpp.o.d"
  "/root/repo/src/ftl/tcad/charge_sheet.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/charge_sheet.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/charge_sheet.cpp.o.d"
  "/root/repo/src/ftl/tcad/current_density.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/current_density.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/current_density.cpp.o.d"
  "/root/repo/src/ftl/tcad/device.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/device.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/device.cpp.o.d"
  "/root/repo/src/ftl/tcad/extract.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/extract.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/extract.cpp.o.d"
  "/root/repo/src/ftl/tcad/materials.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/materials.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/materials.cpp.o.d"
  "/root/repo/src/ftl/tcad/mesh.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/mesh.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/mesh.cpp.o.d"
  "/root/repo/src/ftl/tcad/network_solver.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/network_solver.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/network_solver.cpp.o.d"
  "/root/repo/src/ftl/tcad/sweep.cpp" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/sweep.cpp.o" "gcc" "src/CMakeFiles/ftl_tcad.dir/ftl/tcad/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ftl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
