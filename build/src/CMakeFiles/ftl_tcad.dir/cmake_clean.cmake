file(REMOVE_RECURSE
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/bias.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/bias.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/charge_sheet.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/charge_sheet.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/current_density.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/current_density.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/device.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/device.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/extract.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/extract.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/materials.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/materials.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/mesh.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/mesh.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/network_solver.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/network_solver.cpp.o.d"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/sweep.cpp.o"
  "CMakeFiles/ftl_tcad.dir/ftl/tcad/sweep.cpp.o.d"
  "libftl_tcad.a"
  "libftl_tcad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_tcad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
