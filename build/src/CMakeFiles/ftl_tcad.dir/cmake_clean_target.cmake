file(REMOVE_RECURSE
  "libftl_tcad.a"
)
