# Empty compiler generated dependencies file for series_chain.
# This may be replaced when dependencies are built.
