
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/series_chain.cpp" "examples/CMakeFiles/series_chain.dir/series_chain.cpp.o" "gcc" "examples/CMakeFiles/series_chain.dir/series_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ftl_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_level1.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ftl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
