file(REMOVE_RECURSE
  "CMakeFiles/series_chain.dir/series_chain.cpp.o"
  "CMakeFiles/series_chain.dir/series_chain.cpp.o.d"
  "series_chain"
  "series_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/series_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
