# Empty dependencies file for xor3_transient.
# This may be replaced when dependencies are built.
