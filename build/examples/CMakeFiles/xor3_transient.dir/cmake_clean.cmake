file(REMOVE_RECURSE
  "CMakeFiles/xor3_transient.dir/xor3_transient.cpp.o"
  "CMakeFiles/xor3_transient.dir/xor3_transient.cpp.o.d"
  "xor3_transient"
  "xor3_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xor3_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
