file(REMOVE_RECURSE
  "CMakeFiles/wide_function.dir/wide_function.cpp.o"
  "CMakeFiles/wide_function.dir/wide_function.cpp.o.d"
  "wide_function"
  "wide_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
