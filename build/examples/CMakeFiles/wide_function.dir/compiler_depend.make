# Empty compiler generated dependencies file for wide_function.
# This may be replaced when dependencies are built.
