# Empty dependencies file for synthesize_function.
# This may be replaced when dependencies are built.
