file(REMOVE_RECURSE
  "CMakeFiles/synthesize_function.dir/synthesize_function.cpp.o"
  "CMakeFiles/synthesize_function.dir/synthesize_function.cpp.o.d"
  "synthesize_function"
  "synthesize_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
