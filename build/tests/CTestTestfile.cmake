# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_levmar[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_cg[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_isop[1]_include.cmake")
include("/root/repo/build/tests/test_expr_parser[1]_include.cmake")
include("/root/repo/build/tests/test_lattice_core[1]_include.cmake")
include("/root/repo/build/tests/test_paths[1]_include.cmake")
include("/root/repo/build/tests/test_lattice_function[1]_include.cmake")
include("/root/repo/build/tests/test_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_tcad_physics[1]_include.cmake")
include("/root/repo/build/tests/test_tcad_solver[1]_include.cmake")
include("/root/repo/build/tests/test_fit[1]_include.cmake")
include("/root/repo/build/tests/test_spice_linear[1]_include.cmake")
include("/root/repo/build/tests/test_spice_nonlinear[1]_include.cmake")
include("/root/repo/build/tests/test_spice_transient[1]_include.cmake")
include("/root/repo/build/tests/test_netlist_parser[1]_include.cmake")
include("/root/repo/build/tests/test_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_mosfet_level3[1]_include.cmake")
include("/root/repo/build/tests/test_metrics_designer[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_variability[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_spice_rescue[1]_include.cmake")
