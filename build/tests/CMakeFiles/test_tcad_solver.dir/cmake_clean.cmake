file(REMOVE_RECURSE
  "CMakeFiles/test_tcad_solver.dir/test_tcad_solver.cpp.o"
  "CMakeFiles/test_tcad_solver.dir/test_tcad_solver.cpp.o.d"
  "test_tcad_solver"
  "test_tcad_solver.pdb"
  "test_tcad_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcad_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
