# Empty dependencies file for test_tcad_solver.
# This may be replaced when dependencies are built.
