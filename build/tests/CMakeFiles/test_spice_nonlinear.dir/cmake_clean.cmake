file(REMOVE_RECURSE
  "CMakeFiles/test_spice_nonlinear.dir/test_spice_nonlinear.cpp.o"
  "CMakeFiles/test_spice_nonlinear.dir/test_spice_nonlinear.cpp.o.d"
  "test_spice_nonlinear"
  "test_spice_nonlinear.pdb"
  "test_spice_nonlinear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
