# Empty dependencies file for test_sparse_cg.
# This may be replaced when dependencies are built.
