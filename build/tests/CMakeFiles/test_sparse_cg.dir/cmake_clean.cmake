file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_cg.dir/test_sparse_cg.cpp.o"
  "CMakeFiles/test_sparse_cg.dir/test_sparse_cg.cpp.o.d"
  "test_sparse_cg"
  "test_sparse_cg.pdb"
  "test_sparse_cg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
