file(REMOVE_RECURSE
  "CMakeFiles/test_spice_rescue.dir/test_spice_rescue.cpp.o"
  "CMakeFiles/test_spice_rescue.dir/test_spice_rescue.cpp.o.d"
  "test_spice_rescue"
  "test_spice_rescue.pdb"
  "test_spice_rescue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
