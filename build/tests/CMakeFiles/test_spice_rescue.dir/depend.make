# Empty dependencies file for test_spice_rescue.
# This may be replaced when dependencies are built.
