file(REMOVE_RECURSE
  "CMakeFiles/test_levmar.dir/test_levmar.cpp.o"
  "CMakeFiles/test_levmar.dir/test_levmar.cpp.o.d"
  "test_levmar"
  "test_levmar.pdb"
  "test_levmar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_levmar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
