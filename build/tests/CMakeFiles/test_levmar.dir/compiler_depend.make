# Empty compiler generated dependencies file for test_levmar.
# This may be replaced when dependencies are built.
