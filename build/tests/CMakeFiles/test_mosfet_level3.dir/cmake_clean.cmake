file(REMOVE_RECURSE
  "CMakeFiles/test_mosfet_level3.dir/test_mosfet_level3.cpp.o"
  "CMakeFiles/test_mosfet_level3.dir/test_mosfet_level3.cpp.o.d"
  "test_mosfet_level3"
  "test_mosfet_level3.pdb"
  "test_mosfet_level3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mosfet_level3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
