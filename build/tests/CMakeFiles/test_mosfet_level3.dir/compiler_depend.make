# Empty compiler generated dependencies file for test_mosfet_level3.
# This may be replaced when dependencies are built.
