# Empty compiler generated dependencies file for test_lattice_function.
# This may be replaced when dependencies are built.
