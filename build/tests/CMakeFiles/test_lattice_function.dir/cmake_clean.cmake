file(REMOVE_RECURSE
  "CMakeFiles/test_lattice_function.dir/test_lattice_function.cpp.o"
  "CMakeFiles/test_lattice_function.dir/test_lattice_function.cpp.o.d"
  "test_lattice_function"
  "test_lattice_function.pdb"
  "test_lattice_function[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
