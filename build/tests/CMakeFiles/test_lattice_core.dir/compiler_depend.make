# Empty compiler generated dependencies file for test_lattice_core.
# This may be replaced when dependencies are built.
