file(REMOVE_RECURSE
  "CMakeFiles/test_lattice_core.dir/test_lattice_core.cpp.o"
  "CMakeFiles/test_lattice_core.dir/test_lattice_core.cpp.o.d"
  "test_lattice_core"
  "test_lattice_core.pdb"
  "test_lattice_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lattice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
