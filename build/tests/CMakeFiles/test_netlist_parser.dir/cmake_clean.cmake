file(REMOVE_RECURSE
  "CMakeFiles/test_netlist_parser.dir/test_netlist_parser.cpp.o"
  "CMakeFiles/test_netlist_parser.dir/test_netlist_parser.cpp.o.d"
  "test_netlist_parser"
  "test_netlist_parser.pdb"
  "test_netlist_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
