file(REMOVE_RECURSE
  "CMakeFiles/test_tcad_physics.dir/test_tcad_physics.cpp.o"
  "CMakeFiles/test_tcad_physics.dir/test_tcad_physics.cpp.o.d"
  "test_tcad_physics"
  "test_tcad_physics.pdb"
  "test_tcad_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcad_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
