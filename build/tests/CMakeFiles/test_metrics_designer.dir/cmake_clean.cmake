file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_designer.dir/test_metrics_designer.cpp.o"
  "CMakeFiles/test_metrics_designer.dir/test_metrics_designer.cpp.o.d"
  "test_metrics_designer"
  "test_metrics_designer.pdb"
  "test_metrics_designer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
