# Empty dependencies file for test_metrics_designer.
# This may be replaced when dependencies are built.
