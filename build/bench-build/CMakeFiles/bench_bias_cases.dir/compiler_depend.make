# Empty compiler generated dependencies file for bench_bias_cases.
# This may be replaced when dependencies are built.
