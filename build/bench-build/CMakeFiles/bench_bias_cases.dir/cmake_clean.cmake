file(REMOVE_RECURSE
  "../bench/bench_bias_cases"
  "../bench/bench_bias_cases.pdb"
  "CMakeFiles/bench_bias_cases.dir/bench_bias_cases.cpp.o"
  "CMakeFiles/bench_bias_cases.dir/bench_bias_cases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bias_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
