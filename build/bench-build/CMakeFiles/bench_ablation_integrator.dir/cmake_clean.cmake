file(REMOVE_RECURSE
  "../bench/bench_ablation_integrator"
  "../bench/bench_ablation_integrator.pdb"
  "CMakeFiles/bench_ablation_integrator.dir/bench_ablation_integrator.cpp.o"
  "CMakeFiles/bench_ablation_integrator.dir/bench_ablation_integrator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
