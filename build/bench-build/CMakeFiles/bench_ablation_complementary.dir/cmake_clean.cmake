file(REMOVE_RECURSE
  "../bench/bench_ablation_complementary"
  "../bench/bench_ablation_complementary.pdb"
  "CMakeFiles/bench_ablation_complementary.dir/bench_ablation_complementary.cpp.o"
  "CMakeFiles/bench_ablation_complementary.dir/bench_ablation_complementary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_complementary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
