# Empty dependencies file for bench_ablation_complementary.
# This may be replaced when dependencies are built.
