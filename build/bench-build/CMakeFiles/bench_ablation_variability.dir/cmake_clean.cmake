file(REMOVE_RECURSE
  "../bench/bench_ablation_variability"
  "../bench/bench_ablation_variability.pdb"
  "CMakeFiles/bench_ablation_variability.dir/bench_ablation_variability.cpp.o"
  "CMakeFiles/bench_ablation_variability.dir/bench_ablation_variability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
