# Empty compiler generated dependencies file for bench_fig6_cross_iv.
# This may be replaced when dependencies are built.
