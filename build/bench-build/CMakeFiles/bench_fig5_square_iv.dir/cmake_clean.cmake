file(REMOVE_RECURSE
  "../bench/bench_fig5_square_iv"
  "../bench/bench_fig5_square_iv.pdb"
  "CMakeFiles/bench_fig5_square_iv.dir/bench_fig5_square_iv.cpp.o"
  "CMakeFiles/bench_fig5_square_iv.dir/bench_fig5_square_iv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_square_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
