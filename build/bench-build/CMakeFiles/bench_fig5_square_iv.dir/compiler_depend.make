# Empty compiler generated dependencies file for bench_fig5_square_iv.
# This may be replaced when dependencies are built.
