# Empty compiler generated dependencies file for bench_fig7_junctionless_iv.
# This may be replaced when dependencies are built.
