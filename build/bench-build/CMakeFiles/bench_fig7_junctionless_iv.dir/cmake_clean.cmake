file(REMOVE_RECURSE
  "../bench/bench_fig7_junctionless_iv"
  "../bench/bench_fig7_junctionless_iv.pdb"
  "CMakeFiles/bench_fig7_junctionless_iv.dir/bench_fig7_junctionless_iv.cpp.o"
  "CMakeFiles/bench_fig7_junctionless_iv.dir/bench_fig7_junctionless_iv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_junctionless_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
