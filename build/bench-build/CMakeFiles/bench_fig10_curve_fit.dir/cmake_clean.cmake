file(REMOVE_RECURSE
  "../bench/bench_fig10_curve_fit"
  "../bench/bench_fig10_curve_fit.pdb"
  "CMakeFiles/bench_fig10_curve_fit.dir/bench_fig10_curve_fit.cpp.o"
  "CMakeFiles/bench_fig10_curve_fit.dir/bench_fig10_curve_fit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_curve_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
