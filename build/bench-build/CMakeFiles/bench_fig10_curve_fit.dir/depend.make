# Empty dependencies file for bench_fig10_curve_fit.
# This may be replaced when dependencies are built.
