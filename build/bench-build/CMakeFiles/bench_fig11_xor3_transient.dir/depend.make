# Empty dependencies file for bench_fig11_xor3_transient.
# This may be replaced when dependencies are built.
