file(REMOVE_RECURSE
  "../bench/bench_fig3_xor3_synthesis"
  "../bench/bench_fig3_xor3_synthesis.pdb"
  "CMakeFiles/bench_fig3_xor3_synthesis.dir/bench_fig3_xor3_synthesis.cpp.o"
  "CMakeFiles/bench_fig3_xor3_synthesis.dir/bench_fig3_xor3_synthesis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_xor3_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
