file(REMOVE_RECURSE
  "../bench/bench_fig12_series_chain"
  "../bench/bench_fig12_series_chain.pdb"
  "CMakeFiles/bench_fig12_series_chain.dir/bench_fig12_series_chain.cpp.o"
  "CMakeFiles/bench_fig12_series_chain.dir/bench_fig12_series_chain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_series_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
