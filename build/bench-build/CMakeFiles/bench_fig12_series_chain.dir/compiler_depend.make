# Empty compiler generated dependencies file for bench_fig12_series_chain.
# This may be replaced when dependencies are built.
