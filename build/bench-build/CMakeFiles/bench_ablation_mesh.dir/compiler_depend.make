# Empty compiler generated dependencies file for bench_ablation_mesh.
# This may be replaced when dependencies are built.
