file(REMOVE_RECURSE
  "../bench/bench_ablation_mesh"
  "../bench/bench_ablation_mesh.pdb"
  "CMakeFiles/bench_ablation_mesh.dir/bench_ablation_mesh.cpp.o"
  "CMakeFiles/bench_ablation_mesh.dir/bench_ablation_mesh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
