# Empty dependencies file for bench_fig8_current_density.
# This may be replaced when dependencies are built.
