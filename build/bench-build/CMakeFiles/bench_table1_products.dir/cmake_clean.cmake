file(REMOVE_RECURSE
  "../bench/bench_table1_products"
  "../bench/bench_table1_products.pdb"
  "CMakeFiles/bench_table1_products.dir/bench_table1_products.cpp.o"
  "CMakeFiles/bench_table1_products.dir/bench_table1_products.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
