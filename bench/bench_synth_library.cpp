// Cold-vs-warm cost of the NPN lattice library: how much a class hit saves
// over re-running the CEGAR SAT engine, and whether a permuted/negated
// request mix actually hits.
//
// Three sections, each with built-in correctness gates:
//  1. Cold — every base target is synthesized by the SAT engine with the
//     library disabled (both output phases, so the store ends up fully
//     covered); each result must realize its target.
//  2. Warm — a mix of random NPN transforms of the bases (input
//     permutations and negations plus output complement) is resolved
//     through the populated library, once untimed to let self-complementary
//     phase slots self-populate, then timed; EVERY timed request must come
//     back from_library with a verified lattice — one engine fallback fails
//     the run.
//  3. Headline — mean warm lookup must be at least 100x faster than the
//     mean cold SAT solve. The gate decides the exit code along with the
//     correctness checks.
//
//   bench_synth_library [out.json] [--quick]
//
// --quick shrinks the transform mix (CI smoke); the hit-rate and 100x
// gates still run and still decide the exit code.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/library/npn.hpp"
#include "ftl/library/store.hpp"
#include "ftl/library/synthesize.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/util/table.hpp"

namespace {

using ftl::logic::TruthTable;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

TruthTable parity(int n) {
  return TruthTable::from_function(n, [](std::uint64_t m) {
    return (__builtin_popcountll(m) & 1) != 0;
  });
}

TruthTable majority3() {
  return TruthTable::from_function(
      3, [](std::uint64_t m) { return __builtin_popcountll(m) >= 2; });
}

TruthTable pairwise_or(int n) {
  return TruthTable::from_function(n, [n](std::uint64_t m) {
    for (int v = 0; v + 1 < n; v += 2) {
      if (((m >> v) & 1) != 0 && ((m >> (v + 1)) & 1) != 0) return true;
    }
    return false;
  });
}

ftl::library::NpnTransform random_transform(int n, std::mt19937_64& rng) {
  ftl::library::NpnTransform t;
  t.num_vars = n;
  for (int j = n - 1; j > 0; --j) {
    std::swap(t.perm[j],
              t.perm[std::uniform_int_distribution<int>(0, j)(rng)]);
  }
  t.input_negations = static_cast<std::uint32_t>(rng() & ((1u << n) - 1u));
  t.output_negation = (rng() & 1u) != 0;
  return t;
}

struct ColdRow {
  std::string name;
  double direct_ms = 0.0;      ///< SAT solve of the target itself
  double complement_ms = 0.0;  ///< SAT solve of its negation
  bool ok = true;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr8.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  bool ok = true;
  ftl::library::LatticeLibrary lib;  // memory-only: timings stay disk-free

  const std::vector<std::pair<std::string, TruthTable>> bases = {
      {"and-or ab+cd", pairwise_or(4)},
      {"maj3", majority3()},
      {"xor3", parity(3)},
  };

  // --- 1. cold: SAT engine, library bypassed ------------------------------
  std::vector<ColdRow> cold;
  double cold_total_ms = 0.0;
  std::size_t cold_solves = 0;
  for (const auto& [name, base] : bases) {
    ColdRow row;
    row.name = name;
    // Both output phases, each at its own Altun-Riedel shape (guaranteed
    // feasible, so the SAT engine always terminates with a lattice).
    for (const bool complement : {false, true}) {
      const TruthTable target = complement ? ~base : base;
      const ftl::lattice::Lattice shape =
          ftl::lattice::altun_riedel_synthesis(target);
      ftl::library::SynthesisRequest request;
      request.engine = ftl::library::SynthesisRequest::Engine::kSat;
      request.rows = shape.rows();
      request.cols = shape.cols();
      request.use_library = false;  // cold: always pay for the solver...
      request.populate = true;      // ...but keep the result for phase 2
      const auto start = Clock::now();
      const ftl::library::SynthesisResult result =
          ftl::library::synthesize(target, request, &lib);
      const double elapsed = ms_since(start);
      (complement ? row.complement_ms : row.direct_ms) = elapsed;
      cold_total_ms += elapsed;
      ++cold_solves;
      if (!result.found || result.from_library ||
          !ftl::lattice::realizes(result.lattice, target)) {
        std::fprintf(stderr, "FAIL: cold %s (%s) did not SAT-solve\n",
                     name.c_str(), complement ? "complement" : "direct");
        row.ok = false;
      }
    }
    ok = ok && row.ok;
    cold.push_back(row);
  }
  const double cold_mean_ms = cold_total_ms / static_cast<double>(cold_solves);

  // --- 2. warm: permuted/negated mix through the library ------------------
  const int transforms_per_base = quick ? 8 : 64;
  std::mt19937_64 rng(42);
  std::vector<std::pair<std::string, TruthTable>> mix;
  for (const auto& [name, base] : bases) {
    for (int i = 0; i < transforms_per_base; ++i) {
      mix.emplace_back(name, ftl::library::apply_npn(
                                 base, random_transform(base.num_vars(), rng)));
    }
  }
  // Priming pass, untimed. The cold solves above covered both output phases,
  // but for self-complementary classes (maj3, xor3) the complement slot
  // stays empty — ~base canonicalizes back to the direct phase — so an
  // output-negated transform can still miss once. Running the mix once lets
  // those misses populate the slot through the fallback engine; the timed
  // pass below must then be 100% hits.
  for (const auto& [name, target] : mix) {
    ftl::library::SynthesisRequest request;  // kAuto: library, then engines
    (void)ftl::library::synthesize(target, request, &lib);
  }
  std::size_t warm_requests = 0, warm_hits = 0;
  double warm_total_ms = 0.0;
  for (const auto& [name, target] : mix) {
    ftl::library::SynthesisRequest request;
    const auto start = Clock::now();
    const ftl::library::SynthesisResult result =
        ftl::library::synthesize(target, request, &lib);
    warm_total_ms += ms_since(start);
    ++warm_requests;
    if (result.from_library) ++warm_hits;
    if (!result.found || !ftl::lattice::realizes(result.lattice, target)) {
      std::fprintf(stderr, "FAIL: warm %s request %zu wrong lattice\n",
                   name.c_str(), warm_requests);
      ok = false;
    }
  }
  const double warm_mean_ms =
      warm_total_ms / static_cast<double>(warm_requests);
  const double hit_rate =
      static_cast<double>(warm_hits) / static_cast<double>(warm_requests);
  if (warm_hits != warm_requests) {
    std::fprintf(stderr,
                 "FAIL: %zu of %zu warm requests fell back to an engine\n",
                 warm_requests - warm_hits, warm_requests);
    ok = false;
  }
  const ftl::library::LibraryStats stats = lib.stats();
  if (stats.verify_rejects != 0) {
    std::fprintf(stderr, "FAIL: %llu library hits failed verification\n",
                 static_cast<unsigned long long>(stats.verify_rejects));
    ok = false;
  }

  // --- 3. headline gate ----------------------------------------------------
  const double speedup = cold_mean_ms / warm_mean_ms;
  const bool gate_100x = speedup >= 100.0;
  if (!gate_100x) {
    std::fprintf(stderr, "FAIL: warm/cold speedup %.0fx is below 100x\n",
                 speedup);
    ok = false;
  }

  // --- report --------------------------------------------------------------
  const auto fmt = [](const char* spec, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, value);
    return std::string(buf);
  };
  ftl::util::ConsoleTable table({"base", "cold direct", "cold complement"});
  for (const ColdRow& row : cold) {
    table.add_row({row.name, fmt("%.2f ms", row.direct_ms),
                   fmt("%.2f ms", row.complement_ms)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "warm mix  %zu NPN-transformed requests, %zu library hits (%.0f%%)\n",
      warm_requests, warm_hits, hit_rate * 100.0);
  std::printf("cold mean %.3f ms/solve, warm mean %.4f ms/lookup -> %.0fx\n",
              cold_mean_ms, warm_mean_ms, speedup);

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << "{\"bench\":\"synth_library\",\"quick\":" << (quick ? "true" : "false")
       << ",\"cold\":[";
  for (std::size_t i = 0; i < cold.size(); ++i) {
    if (i != 0) file << ",";
    file << "{\"target\":\"" << cold[i].name << "\""
         << ",\"direct_ms\":" << cold[i].direct_ms
         << ",\"complement_ms\":" << cold[i].complement_ms << "}";
  }
  file << "],\"warm\":{\"requests\":" << warm_requests
       << ",\"hits\":" << warm_hits << ",\"hit_rate\":" << hit_rate
       << ",\"mean_ms\":" << warm_mean_ms << "}"
       << ",\"cold_mean_ms\":" << cold_mean_ms
       << ",\"speedup\":" << speedup
       << ",\"gate_100x\":" << (gate_100x ? "true" : "false")
       << ",\"library\":{\"classes\":" << stats.classes
       << ",\"entries\":" << stats.entries
       << ",\"class_hits\":" << stats.class_hits
       << ",\"verify_rejects\":" << stats.verify_rejects << "}"
       << ",\"ok\":" << (ok ? "true" : "false") << "}\n";

  std::printf("%s: %s\n", ok ? "PASS" : "FAIL", out_path.c_str());
  return ok ? 0 : 1;
}
