// Fig. 10 reproduction: fit the level-1 MOSFET equations to the square+HfO2
// TCAD data (§IV, the paper's two-scenario recipe on the terminal pair) and
// print the fitted curve next to the data, plus the extracted Kp / Vth /
// lambda — the values that seed the Fig. 9 switch model.
#include <cmath>
#include <cstdio>

#include "ftl/bridge/switch_model.hpp"
#include "ftl/fit/extract.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/table.hpp"

int main() {
  using namespace ftl;
  std::printf("== Fig. 10: level-1 curve fit to the square+HfO2 TCAD data"
              " ==\n\n");

  const auto spec = tcad::make_device(tcad::DeviceShape::kSquare,
                                      tcad::GateDielectric::kHfO2);
  const tcad::NetworkSolver solver(tcad::build_mesh(spec, 48),
                                   tcad::ChargeSheetModel(spec));

  // Type A fit: adjacent pair (DSFF), L = 0.35 um.
  const fit::FitResult type_a = fit::extract_from_device(
      solver, tcad::parse_bias_case("DSFF"), 0.7e-6, 0.35e-6);
  // Type B fit: opposite pair (SFDF), L = 0.5 um.
  const fit::FitResult type_b = fit::extract_from_device(
      solver, tcad::parse_bias_case("SFDF"), 0.7e-6, 0.5e-6);

  ftl::util::ConsoleTable params(
      {"transistor", "Kp [A/V^2]", "Vth [V]", "lambda [1/V]", "RMSE [A]", "converged"});
  const auto add = [&params](const char* name, const fit::FitResult& r) {
    char kp[32], vth[32], lam[32], rms[32];
    std::snprintf(kp, sizeof kp, "%.3e", r.params.kp);
    std::snprintf(vth, sizeof vth, "%.4f", r.params.vth);
    std::snprintf(lam, sizeof lam, "%.4f", r.params.lambda);
    std::snprintf(rms, sizeof rms, "%.3e", r.rms);
    params.add_row({name, kp, vth, lam, rms, r.converged ? "yes" : "no"});
  };
  add("Type A (adjacent, L=0.35um)", type_a);
  add("Type B (opposite, L=0.50um)", type_b);
  std::printf("%s\n", params.render().c_str());

  // The Fig. 10 overlay: Id-Vd data at Vgs = 5 V against the fitted curve.
  const auto dsff = tcad::parse_bias_case("DSFF");
  const tcad::IvCurve idvd = tcad::sweep_drain(solver, dsff, 5.0, 0.0, 5.0, 26);
  const auto data = idvd.terminal_magnitude(0);

  std::printf("Id-Vd at Vgs = 5 V: TCAD data vs fitted level-1 curve\n");
  ftl::util::ConsoleTable overlay({"Vds [V]", "TCAD [A]", "fit [A]", "error [%]"});
  double max_rel = 0.0;
  ftl::util::CsvWriter csv("fig10_curve_fit.csv");
  csv.write_header({"vds", "tcad", "fit"});
  for (std::size_t i = 0; i < idvd.sweep_values.size(); ++i) {
    const double vds = idvd.sweep_values[i];
    const double fit_i = fit::level1_ids(type_a.params, 5.0, vds);
    csv.write_row(std::vector<double>{vds, data[i], fit_i});
    if (i % 5 != 0 && i + 1 != idvd.sweep_values.size()) continue;
    const double rel = data[i] > 1e-12 ? 100.0 * std::fabs(fit_i - data[i]) / data[i] : 0.0;
    max_rel = std::max(max_rel, rel);
    char v[32], d[32], f[32], e[32];
    std::snprintf(v, sizeof v, "%.2f", vds);
    std::snprintf(d, sizeof d, "%.3e", data[i]);
    std::snprintf(f, sizeof f, "%.3e", fit_i);
    std::snprintf(e, sizeof e, "%.1f", rel);
    overlay.add_row({v, d, f, e});
  }
  std::printf("%s\n", overlay.render().c_str());

  const auto canonical = bridge::paper_switch_model();
  std::printf("canonical switch model card (bridge::paper_switch_model):"
              " Kp=%.3e Vth=%.3f lambda=%.3f\n",
              canonical.kp, canonical.vth, canonical.lambda);
  std::printf("fresh Type A fit agrees with the canonical card: %s\n",
              (std::fabs(type_a.params.kp - canonical.kp) < 0.15 * canonical.kp &&
               std::fabs(type_a.params.vth - canonical.vth) < 0.1)
                  ? "yes"
                  : "NO (re-run and update paper_switch_model)");
  return type_a.converged && type_b.converged ? 0 : 1;
}
