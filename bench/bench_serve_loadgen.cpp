// Serve-path throughput baseline: an in-process ftl::serve server on an
// ephemeral port, cache warmed, hammered by the loadgen over real sockets.
// Emits the loadgen report (throughput + latency percentiles) as JSON —
// BENCH_pr3.json by default — so the bench harness can diff regressions.
//
//   bench_serve_loadgen [out.json] [requests] [connections]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "ftl/serve/client.hpp"
#include "ftl/serve/json.hpp"
#include "ftl/serve/loadgen.hpp"
#include "ftl/serve/server.hpp"
#include "ftl/serve/service.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

int main(int argc, char** argv) {
  using ftl::serve::JsonValue;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pr3.json";
  std::size_t requests = 20000;
  std::size_t connections = 8;
  if (argc > 2) {
    requests = static_cast<std::size_t>(
        ftl::util::parse_long_in(argv[2], 1, 100000000).value_or(0));
  }
  if (argc > 3) {
    connections = static_cast<std::size_t>(
        ftl::util::parse_long_in(argv[3], 1, 1024).value_or(0));
  }
  if (requests == 0 || connections == 0) {
    std::fprintf(stderr, "usage: bench_serve_loadgen [out.json] [requests] [connections]\n");
    return 2;
  }

  try {
    ftl::serve::Service service({.workers = 4, .queue_depth = 512});
    ftl::serve::Server server(service, {.port = 0});
    server.start();

    ftl::serve::LoadgenOptions options;
    options.port = server.port();
    options.connections = connections;
    options.requests = requests;
    options.mix = {
        R"({"op":"eval","expr":"a b + b c + a c"})",
        R"({"op":"synth","expr":"a b + b c + a c"})",
        R"({"op":"eval","expr":"a b' + a' b"})",
        R"({"op":"paths","rows":4,"cols":4})",
    };

    // Warm pass: every mix entry computes once, so the measured run serves
    // from the response cache (the steady state a repeated client sees).
    {
      ftl::serve::Client client("127.0.0.1", server.port());
      for (const std::string& line : options.mix) {
        const JsonValue r = JsonValue::parse(client.call_line(line));
        if (!r.bool_or("ok", false)) {
          std::fprintf(stderr, "warmup request failed: %s\n", r.dump().c_str());
          return 1;
        }
      }
    }

    const ftl::serve::LoadgenReport report = ftl::serve::run_loadgen(options);
    std::printf("%s", report.to_string().c_str());

    JsonValue out = JsonValue::object();
    out.set("bench", JsonValue::str("serve_loadgen_cached"));
    out.set("workers", JsonValue::number(static_cast<double>(
                           service.options().workers)));
    out.set("report", report.to_json());
    std::ofstream file(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    file << out.dump() << '\n';
    std::printf("wrote %s\n", out_path.c_str());

    server.stop();
    if (report.errors != 0) return 1;
    if (report.throughput_rps < 1000.0) {
      std::fprintf(stderr, "throughput %.0f req/s below the 1000 req/s bar\n",
                   report.throughput_rps);
      return 1;
    }
    return 0;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "bench_serve_loadgen: %s\n", e.what());
    return 1;
  }
}
