// Serve-path throughput baseline: an in-process ftl::serve server on an
// ephemeral port, cache warmed, hammered by the pipelined loadgen over real
// sockets. Emits the loadgen report (throughput + latency percentiles +
// server-side hit rate) as JSON — BENCH_pr6.json by default — so the bench
// harness can diff regressions. PR 3's blocking transport measured ~57k
// cached req/s here; the epoll event-loop transport with pipelining targets
// >250k on the same mix.
//
//   bench_serve_loadgen [out.json] [--quick] [requests] [connections] [pipeline]
//
// --quick shrinks the run for CI smoke (same code path, ~1 s wall).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ftl/serve/client.hpp"
#include "ftl/serve/json.hpp"
#include "ftl/serve/loadgen.hpp"
#include "ftl/serve/server.hpp"
#include "ftl/serve/service.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

int main(int argc, char** argv) {
  using ftl::serve::JsonValue;

  std::string out_path = "BENCH_pr6.json";
  bool quick = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  std::size_t requests = quick ? 20000 : 200000;
  std::size_t connections = 4;
  std::size_t pipeline = 64;
  if (positional.size() > 0) out_path = positional[0];
  if (positional.size() > 1) {
    requests = static_cast<std::size_t>(
        ftl::util::parse_long_in(positional[1], 1, 100000000).value_or(0));
  }
  if (positional.size() > 2) {
    connections = static_cast<std::size_t>(
        ftl::util::parse_long_in(positional[2], 1, 1024).value_or(0));
  }
  if (positional.size() > 3) {
    pipeline = static_cast<std::size_t>(
        ftl::util::parse_long_in(positional[3], 1, 4096).value_or(0));
  }
  if (requests == 0 || connections == 0 || pipeline == 0) {
    std::fprintf(stderr,
                 "usage: bench_serve_loadgen [out.json] [--quick] [requests] "
                 "[connections] [pipeline]\n");
    return 2;
  }

  try {
    ftl::serve::Service service({.workers = 4, .queue_depth = 512});
    ftl::serve::Server server(service, {.port = 0, .event_loops = 2});
    server.start();

    ftl::serve::LoadgenOptions options;
    options.port = server.port();
    options.connections = connections;
    options.requests = requests;
    options.pipeline = pipeline;
    options.mix = {
        R"({"op":"eval","expr":"a b + b c + a c"})",
        R"({"op":"synth","expr":"a b + b c + a c"})",
        R"({"op":"eval","expr":"a b' + a' b"})",
        R"({"op":"paths","rows":4,"cols":4})",
    };

    // Warm pass: every mix entry computes once, so the measured run serves
    // from the response cache (the steady state a repeated client sees).
    {
      ftl::serve::Client client("127.0.0.1", server.port());
      for (const std::string& line : options.mix) {
        const JsonValue r = JsonValue::parse(client.call_line(line));
        if (!r.bool_or("ok", false)) {
          std::fprintf(stderr, "warmup request failed: %s\n", r.dump().c_str());
          return 1;
        }
      }
    }

    const ftl::serve::LoadgenReport report = ftl::serve::run_loadgen(options);
    std::printf("%s", report.to_string().c_str());

    JsonValue out = JsonValue::object();
    out.set("bench", JsonValue::str("serve_loadgen_cached"));
    out.set("workers", JsonValue::number(static_cast<double>(
                           service.options().workers)));
    out.set("event_loops", JsonValue::number(2));
    out.set("pipeline", JsonValue::number(static_cast<double>(pipeline)));
    out.set("report", report.to_json());
    std::ofstream file(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    file << out.dump() << '\n';
    std::printf("wrote %s\n", out_path.c_str());

    server.stop();
    if (report.errors != 0) return 1;
    // The quick run keeps PR 3's 1k floor (CI machines vary); the full run
    // must clear the PR 6 target with headroom over the ~57k baseline.
    const double floor_rps = quick ? 1000.0 : 100000.0;
    if (report.throughput_rps < floor_rps) {
      std::fprintf(stderr, "throughput %.0f req/s below the %.0f req/s bar\n",
                   report.throughput_rps, floor_rps);
      return 1;
    }
    return 0;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "bench_serve_loadgen: %s\n", e.what());
    return 1;
  }
}
