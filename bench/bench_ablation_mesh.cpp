// Ablation: mesh-resolution convergence of the TCAD network solver. The
// figures of merit consumed downstream (Ion, extracted Vth) must be stable
// against the discretization, or the whole substitution rests on a
// numerical artifact. Sweeps cells-per-side and reports drift vs the finest
// mesh.
#include <cmath>
#include <cstdio>

#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/extract.hpp"
#include "ftl/tcad/sweep.hpp"
#include "ftl/util/table.hpp"

int main() {
  using namespace ftl::tcad;
  std::printf("== Ablation: TCAD mesh-resolution convergence (square/HfO2,"
              " DSSS) ==\n\n");

  const DeviceSpec spec = make_device(DeviceShape::kSquare, GateDielectric::kHfO2);
  const BiasCase dsss = parse_bias_case("DSSS");
  const int resolutions[] = {16, 24, 32, 48, 64, 96};

  struct Sample {
    int cells;
    double ion;
    double vth;
  };
  std::vector<Sample> samples;
  for (int cells : resolutions) {
    const NetworkSolver solver(build_mesh(spec, cells), ChargeSheetModel(spec));
    const SolveResult on = solver.solve(dsss.at(5.0, 5.0));
    const IvCurve idvg = sweep_gate(solver, dsss, 0.010, 0.0, 5.0, 26);
    const double vth = threshold_voltage_max_gm(
        idvg.sweep_values, idvg.drain_current(dsss), 0.010);
    samples.push_back({cells, on.terminal_current[0], vth});
  }

  const Sample& finest = samples.back();
  ftl::util::ConsoleTable table(
      {"cells/side", "Ion [A]", "dIon vs finest", "Vth [V]", "dVth vs finest"});
  double worst_ion_drift = 0.0;
  for (const Sample& s : samples) {
    const double ion_drift = std::fabs(s.ion - finest.ion) / finest.ion;
    if (s.cells >= 48) worst_ion_drift = std::max(worst_ion_drift, ion_drift);
    char ion[24], di[24], vth[24], dv[24];
    std::snprintf(ion, sizeof ion, "%.4e", s.ion);
    std::snprintf(di, sizeof di, "%.1f%%", 100.0 * ion_drift);
    std::snprintf(vth, sizeof vth, "%.4f", s.vth);
    std::snprintf(dv, sizeof dv, "%+.1f mV", 1e3 * (s.vth - finest.vth));
    table.add_row({std::to_string(s.cells), ion, di, vth, dv});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Ion drift for meshes >= 48 cells/side: max %.1f%%; the"
              " extracted Vth is mesh-independent to <1 mV. The residual"
              " Ion wobble is electrode/gate boundary staircasing — well"
              " inside the one-decade shape criterion the reproduction"
              " targets.\n",
              100.0 * worst_ion_drift);
  return worst_ion_drift < 0.10 ? 0 : 1;
}
