// Performance microbenchmarks (google-benchmark) for the computational
// kernels: path counting (Table I engine), the dense LU behind each Newton
// step, the TCAD network solve, lattice evaluation, and a full XOR3
// operating point.
#include <benchmark/benchmark.h>

#include <random>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/linalg/lu.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/network_solver.hpp"

namespace {

void BM_CountProducts(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl::lattice::count_products(m, n));
  }
  state.SetLabel(std::to_string(m) + "x" + std::to_string(n));
}
BENCHMARK(BM_CountProducts)->Args({4, 4})->Args({6, 6})->Args({7, 7});

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  ftl::linalg::Matrix a(n, n);
  ftl::linalg::Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
    a(r, r) += static_cast<double>(n);
    b[r] = dist(rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl::linalg::solve(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(20)->Arg(60)->Arg(150);

void BM_LatticeEvaluate(benchmark::State& state) {
  const auto lat = ftl::lattice::xor3_lattice_3x3();
  std::uint64_t code = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lat.evaluate(code));
    code = (code + 1) & 7;
  }
}
BENCHMARK(BM_LatticeEvaluate);

void BM_TcadSolve(benchmark::State& state) {
  using namespace ftl::tcad;
  const auto spec = make_device(DeviceShape::kSquare, GateDielectric::kHfO2);
  const NetworkSolver solver(build_mesh(spec, static_cast<int>(state.range(0))),
                             ChargeSheetModel(spec));
  const BiasPoint bias = parse_bias_case("DSSS").at(5.0, 5.0);
  ftl::linalg::Vector warm;
  for (auto _ : state) {
    const SolveResult r = solver.solve(bias, warm.empty() ? nullptr : &warm);
    warm = r.node_voltage;
    benchmark::DoNotOptimize(r.terminal_current[0]);
  }
}
BENCHMARK(BM_TcadSolve)->Arg(24)->Arg(48);

void BM_Xor3OperatingPoint(benchmark::State& state) {
  using namespace ftl;
  const auto lat = lattice::xor3_lattice_3x3();
  std::map<int, spice::Waveform> drives;
  drives[0] = spice::Waveform::dc(1.2);
  for (auto _ : state) {
    bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
    benchmark::DoNotOptimize(spice::dc_operating_point(lc.circuit));
  }
}
BENCHMARK(BM_Xor3OperatingPoint);

}  // namespace

BENCHMARK_MAIN();
