// Performance microbenchmarks (google-benchmark) for the computational
// kernels: path counting (Table I engine), the dense LU behind each Newton
// step, the TCAD network solve, lattice evaluation, and a full XOR3
// operating point.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <random>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/jobs/pipeline.hpp"
#include "ftl/jobs/scheduler.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/linalg/lu.hpp"
#include "ftl/linalg/sparse_lu.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/network_solver.hpp"

namespace {

void BM_CountProducts(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl::lattice::count_products(m, n));
  }
  state.SetLabel(std::to_string(m) + "x" + std::to_string(n));
}
BENCHMARK(BM_CountProducts)->Args({4, 4})->Args({6, 6})->Args({7, 7});

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  ftl::linalg::Matrix a(n, n);
  ftl::linalg::Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = dist(rng);
    a(r, r) += static_cast<double>(n);
    b[r] = dist(rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl::linalg::solve(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(20)->Arg(60)->Arg(150);

void BM_LatticeEvaluate(benchmark::State& state) {
  const auto lat = ftl::lattice::xor3_lattice_3x3();
  std::uint64_t code = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lat.evaluate(code));
    code = (code + 1) & 7;
  }
}
BENCHMARK(BM_LatticeEvaluate);

void BM_TcadSolve(benchmark::State& state) {
  using namespace ftl::tcad;
  const auto spec = make_device(DeviceShape::kSquare, GateDielectric::kHfO2);
  const NetworkSolver solver(build_mesh(spec, static_cast<int>(state.range(0))),
                             ChargeSheetModel(spec));
  const BiasPoint bias = parse_bias_case("DSSS").at(5.0, 5.0);
  ftl::linalg::Vector warm;
  for (auto _ : state) {
    const SolveResult r = solver.solve(bias, warm.empty() ? nullptr : &warm);
    warm = r.node_voltage;
    benchmark::DoNotOptimize(r.terminal_current[0]);
  }
}
BENCHMARK(BM_TcadSolve)->Arg(24)->Arg(48);

void BM_Xor3OperatingPoint(benchmark::State& state) {
  using namespace ftl;
  const auto lat = lattice::xor3_lattice_3x3();
  std::map<int, spice::Waveform> drives;
  drives[0] = spice::Waveform::dc(1.2);
  for (auto _ : state) {
    bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
    benchmark::DoNotOptimize(spice::dc_operating_point(lc.circuit));
  }
}
BENCHMARK(BM_Xor3OperatingPoint);

// Dense-vs-sparse MNA backend on the same XOR3 operating point: the pair
// whose ratio is the headline assemble+factor+solve speedup. Circuit
// construction is hoisted out so the loop times the solver pipeline alone
// (the pattern cache and symbolic reuse persist inside the circuit).
void BM_Xor3NewtonBackend(benchmark::State& state) {
  using namespace ftl;
  const auto lat = lattice::xor3_lattice_3x3();
  std::map<int, spice::Waveform> drives;
  drives[0] = spice::Waveform::dc(1.2);
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
  spice::NewtonOptions options;
  options.matrix_mode = state.range(0) == 0 ? spice::MatrixMode::kDense
                                            : spice::MatrixMode::kSparse;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dc_operating_point(lc.circuit, options));
  }
  state.SetLabel(state.range(0) == 0 ? "dense" : "sparse");
}
BENCHMARK(BM_Xor3NewtonBackend)->Arg(0)->Arg(1);

// The assembly+factor+solve pipeline of ONE Newton iteration on the XOR3
// lattice MNA system (n = 35), isolated from device-model evaluation
// variance by holding the iterate fixed. This is the kernel the sparse
// path accelerates: dense pays an O(n^2) zero + copy and an O(n^3) factor
// every iteration; sparse rewrites cached-pattern values in place and
// replays the recorded elimination (numeric-only refactor).
void BM_Xor3MnaPipeline(benchmark::State& state) {
  using namespace ftl;
  const auto lat = lattice::xor3_lattice_3x3();
  std::map<int, spice::Waveform> drives;
  drives[0] = spice::Waveform::dc(1.2);
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
  const spice::OpResult op = spice::dc_operating_point(lc.circuit);

  const int n = lc.circuit.prepare_unknowns();
  spice::EvalContext ctx;
  ctx.solution = &op.solution;
  spice::MnaLinearSolver solver;
  solver.prepare(n, state.range(0) == 0 ? spice::MatrixMode::kDense
                                        : spice::MatrixMode::kSparse);
  linalg::Vector x;
  for (auto _ : state) {
    solver.solve_iteration(lc.circuit, ctx, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetLabel(state.range(0) == 0 ? "dense" : "sparse");
}
BENCHMARK(BM_Xor3MnaPipeline)->Arg(0)->Arg(1);

// Raw factorization kernels on a 2-D grid Laplacian (the sparsity family
// both the MNA and TCAD matrices belong to): full factor with symbolic
// analysis, numeric-only refactor, and the dense kernel for scale.
void grid_laplacian(std::size_t side, ftl::linalg::TripletList& trip) {
  const auto at = [side](std::size_t r, std::size_t c) { return r * side + c; };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      const std::size_t i = at(r, c);
      trip.add(i, i, 4.0 + 1e-3 * static_cast<double>(i % 7));
      if (c + 1 < side) { trip.add(i, at(r, c + 1), -1.0); trip.add(at(r, c + 1), i, -1.0); }
      if (r + 1 < side) { trip.add(i, at(r + 1, c), -1.0); trip.add(at(r + 1, c), i, -1.0); }
    }
  }
}

void BM_SparseLuFactor(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  ftl::linalg::TripletList trip(side * side, side * side);
  grid_laplacian(side, trip);
  const ftl::linalg::SparseMatrix a(trip);
  ftl::linalg::SparseLu lu;
  for (auto _ : state) {
    lu.factor(a);
    benchmark::DoNotOptimize(lu.factor_nonzeros());
  }
}
BENCHMARK(BM_SparseLuFactor)->Arg(6)->Arg(12)->Arg(24);

void BM_SparseLuRefactor(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  ftl::linalg::TripletList trip(side * side, side * side);
  grid_laplacian(side, trip);
  ftl::linalg::SparseMatrix a(trip);
  ftl::linalg::SparseLu lu;
  lu.factor(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.refactor(a));
  }
}
BENCHMARK(BM_SparseLuRefactor)->Arg(6)->Arg(12)->Arg(24);

// Scheduler overhead: a linear chain of empty jobs measures the per-job
// bookkeeping cost (graph state, telemetry hooks, digesting empty
// artifacts) with zero useful work — the floor every pipeline pays.
void BM_SchedulerEmptyJobThroughput(benchmark::State& state) {
  using namespace ftl;
  const int n = static_cast<int>(state.range(0));
  const bool serial = state.range(1) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    jobs::JobGraph g;
    jobs::JobId prev = -1;
    for (int i = 0; i < n; ++i) {
      jobs::JobDesc d;
      d.name = "j";  // incremental append: GCC 12 -Wrestrict FP (PR 105651)
      d.name += std::to_string(i);
      if (prev >= 0) d.deps = {prev};
      d.fn = [](jobs::JobContext&) { return jobs::Artifact{}; };
      prev = g.add(std::move(d));
    }
    state.ResumeTiming();
    jobs::RunOptions options;
    options.jobs = serial ? 1 : 0;
    benchmark::DoNotOptimize(jobs::run_graph(g, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(serial ? "serial" : "pool");
}
BENCHMARK(BM_SchedulerEmptyJobThroughput)
    ->Args({100, 1})
    ->Args({100, 0})
    ->Args({1000, 1});

// Cold-vs-warm paper pipeline at reduced size: the cold run computes every
// TCAD/fit/SPICE stage, the warm run serves them all from the content-
// addressed cache. The ratio is the cache's headline win.
void BM_PipelineColdVsWarm(benchmark::State& state) {
  using namespace ftl;
  const bool warm = state.range(0) != 0;
  jobs::PipelineOptions po;
  po.mesh = 12;
  po.sweep_points = 7;
  po.chain_max = 4;
  po.transient_dt = 1e-9;
  po.transient_periods = 2;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ftl_bench_pipeline_cache";
  if (warm) {
    // Prime once so every timed iteration is all-hits.
    const jobs::PaperPipeline p = jobs::build_paper_pipeline(po);
    jobs::RunOptions options;
    options.cache_dir = dir.string();
    jobs::run_graph(p.graph, options);
  }
  for (auto _ : state) {
    state.PauseTiming();
    if (!warm) std::filesystem::remove_all(dir);
    state.ResumeTiming();
    const jobs::PaperPipeline p = jobs::build_paper_pipeline(po);
    jobs::RunOptions options;
    options.cache_dir = dir.string();
    const jobs::RunResult r = jobs::run_graph(p.graph, options);
    if (!r.ok()) state.SkipWithError("pipeline run failed");
  }
  std::filesystem::remove_all(dir);
  state.SetLabel(warm ? "warm" : "cold");
}
BENCHMARK(BM_PipelineColdVsWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
