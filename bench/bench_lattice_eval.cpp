// Evaluation-core baseline for the bitsliced kernel and the frontier DP.
//
// Three measurements, each with a built-in correctness cross-check:
//  1. realized_truth_table on a seeded 4x4 / 6-variable lattice — scalar
//     BFS-per-assignment vs the bitsliced kernel (the PR's >= 10x bar).
//  2. A many-block case (18 variables => 4096 blocks) — serial vs sharded
//     parallel evaluation, verified bitwise identical.
//  3. count_products — frontier DP vs the DFS enumerator, including the
//     paper's Table I corner count(9,9) = 38,930,447 (DP must land well
//     under a second).
//
//   bench_lattice_eval [out.json] [--quick]
//
// --quick trims repetition counts and the DFS cross-check range so the CI
// smoke run finishes in seconds; correctness checks still run and still
// gate the exit code. The full run also gates on the 10x speedup bar.

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/util/table.hpp"

namespace {

using ftl::lattice::CellValue;
using ftl::lattice::Lattice;
using ftl::logic::TruthTable;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Lattice random_lattice(int rows, int cols, int num_vars, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> choice(0, 2 * num_vars + 1);
  Lattice lat(rows, cols, num_vars);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int pick = choice(rng);
      if (pick < 2 * num_vars) {
        lat.set(r, c, CellValue::of(pick / 2, pick % 2 == 0));
      } else if (pick == 2 * num_vars) {
        lat.set(r, c, CellValue::zero());
      } else {
        lat.set(r, c, CellValue::one());
      }
    }
  }
  return lat;
}

/// Best-of-three timing of `reps` calls to `fn`; returns seconds per call.
template <typename Fn>
double time_per_call(int reps, Fn&& fn) {
  double best = 1e30;
  for (int round = 0; round < 3; ++round) {
    const auto start = Clock::now();
    for (int i = 0; i < reps; ++i) fn();
    const double total = seconds_since(start);
    if (total / reps < best) best = total / reps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr5.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  bool ok = true;

  // --- 1. scalar vs bitsliced truth tables (4x4, 6 vars) ------------------
  const Lattice lat6 = random_lattice(4, 4, 6, 42);
  const TruthTable scalar_table = TruthTable::from_function(
      6, [&lat6](std::uint64_t m) { return lat6.evaluate(m); });
  if (ftl::lattice::realized_truth_table(lat6) != scalar_table) {
    std::fprintf(stderr, "FAIL: bitsliced table != scalar table (4x4/6var)\n");
    ok = false;
  }

  const int reps6 = quick ? 50 : 400;
  const double scalar_s = time_per_call(reps6, [&lat6]() {
    volatile bool sink = false;
    for (std::uint64_t m = 0; m < 64; ++m) sink = lat6.evaluate(m);
    (void)sink;
  });
  const double bitslice_s = time_per_call(reps6 * 10, [&lat6]() {
    (void)ftl::lattice::realized_truth_table(lat6, 1);
  });
  const double speedup = scalar_s / bitslice_s;

  // --- 2. serial vs parallel on a many-block lattice (18 vars) ------------
  const Lattice lat16 = random_lattice(8, 8, 18, 7);
  const int reps16 = quick ? 2 : 10;
  const TruthTable serial16 = ftl::lattice::realized_truth_table(lat16, 1);
  const TruthTable parallel16 = ftl::lattice::realized_truth_table(lat16);
  if (serial16 != parallel16) {
    std::fprintf(stderr, "FAIL: parallel truth table != serial (8x8/18var)\n");
    ok = false;
  }
  const double serial16_s = time_per_call(reps16, [&lat16]() {
    (void)ftl::lattice::realized_truth_table(lat16, 1);
  });
  const double parallel16_s = time_per_call(reps16, [&lat16]() {
    (void)ftl::lattice::realized_truth_table(lat16);
  });

  // --- 3. count_products: frontier DP vs DFS ------------------------------
  const auto dp_start = Clock::now();
  const std::uint64_t dp_9x9 = ftl::lattice::count_products(9, 9);
  const double dp_9x9_s = seconds_since(dp_start);
  if (dp_9x9 != 38930447ull) {
    std::fprintf(stderr, "FAIL: count_products(9,9) = %llu != 38930447\n",
                 static_cast<unsigned long long>(dp_9x9));
    ok = false;
  }
  if (dp_9x9_s >= 1.0) {
    std::fprintf(stderr, "FAIL: DP count(9,9) took %.3fs (bar: < 1s)\n",
                 dp_9x9_s);
    ok = false;
  }

  // DFS cross-check over Table I sizes. The full run covers all of
  // 2 <= m,n <= 9; --quick stops at 8 (the 9x9 DFS alone costs ~2s).
  const int dfs_max = quick ? 8 : 9;
  int dfs_checked = 0;
  int dfs_mismatches = 0;
  const auto dfs_start = Clock::now();
  for (int m = 2; m <= dfs_max; ++m) {
    for (int n = 2; n <= dfs_max; ++n) {
      ++dfs_checked;
      if (ftl::lattice::count_products(m, n) !=
          ftl::lattice::count_products_dfs(m, n)) {
        ++dfs_mismatches;
        std::fprintf(stderr, "FAIL: DP != DFS at %dx%d\n", m, n);
      }
    }
  }
  const double dfs_s = seconds_since(dfs_start);
  if (dfs_mismatches != 0) ok = false;

  const double dfs_9x9_s = quick ? 0.0 : [] {
    const auto start = Clock::now();
    (void)ftl::lattice::count_products_dfs(9, 9);
    return seconds_since(start);
  }();

  // --- report --------------------------------------------------------------
  const auto fmt = [](const char* spec, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, value);
    return std::string(buf);
  };
  ftl::util::ConsoleTable table({"measurement", "time", "note"});
  table.add_row({"scalar 64-assignment table (4x4/6var)",
                 fmt("%.1f us", scalar_s * 1e6), "BFS per minterm"});
  std::string note = "speedup ";
  note += fmt("%.1fx", speedup);
  table.add_row(
      {"bitsliced table (4x4/6var)", fmt("%.2f us", bitslice_s * 1e6), note});
  table.add_row({"serial table, 4096 blocks (8x8/18var)",
                 fmt("%.1f ms", serial16_s * 1e3), ""});
  note = "parallel ";
  note += fmt("%.2fx", serial16_s / parallel16_s);
  table.add_row({"parallel table, 4096 blocks (8x8/18var)",
                 fmt("%.1f ms", parallel16_s * 1e3), note});
  table.add_row({"frontier DP count(9,9)", fmt("%.2f ms", dp_9x9_s * 1e3),
                 "= 38,930,447"});
  if (!quick) {
    table.add_row({"DFS count(9,9)", fmt("%.2f s", dfs_9x9_s),
                   "reference engine"});
  }
  {
    char mm[64];
    std::snprintf(mm, sizeof mm, "mismatches %d / %d", dfs_mismatches,
                  dfs_checked);
    table.add_row({"DP vs DFS cross-check", fmt("%.2f s", dfs_s), mm});
  }
  std::printf("%s", table.render().c_str());

  if (!quick && speedup < 10.0) {
    std::fprintf(stderr, "FAIL: bitsliced speedup %.1fx below the 10x bar\n",
                 speedup);
    ok = false;
  }

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << "{\"bench\":\"lattice_eval\",\"quick\":" << (quick ? "true" : "false")
       << ",\"truth_table_4x4_6var\":{"
       << "\"scalar_us\":" << scalar_s * 1e6
       << ",\"bitslice_us\":" << bitslice_s * 1e6
       << ",\"speedup\":" << speedup << "}"
       << ",\"parallel_8x8_18var\":{"
       << "\"serial_ms\":" << serial16_s * 1e3
       << ",\"parallel_ms\":" << parallel16_s * 1e3
       << ",\"identical\":" << (serial16 == parallel16 ? "true" : "false")
       << "}"
       << ",\"count_products\":{"
       << "\"dp_9x9\":" << dp_9x9
       << ",\"dp_9x9_ms\":" << dp_9x9_s * 1e3;
  if (!quick) file << ",\"dfs_9x9_s\":" << dfs_9x9_s;
  file << ",\"dfs_checked\":" << dfs_checked
       << ",\"dfs_mismatches\":" << dfs_mismatches << "}}" << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  return ok ? 0 : 1;
}
