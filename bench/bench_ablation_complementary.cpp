// Ablation (§VI-A extension): resistor pull-up (§V bench) vs the
// complementary two-lattice structure, across several target functions.
// The paper predicts the complementary form makes static power "almost
// zero" and removes the rise-time dominance of the high pull-up resistor —
// this bench quantifies both claims with the gate-metrics engine.
#include <cstdio>

#include "ftl/bridge/metrics.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

int main() {
  using namespace ftl;
  std::printf("== Ablation: resistor pull-up vs complementary lattice"
              " (Section VI-A) ==\n\n");

  struct Case {
    const char* name;
    const char* expression;
  };
  const Case cases[] = {
      {"XOR3", "a b c + a b' c' + a' b c' + a' b' c"},
      {"MAJ3", "a b + b c + a c"},
      {"AND-OR", "a b + c"},
      {"MUX", "s a + s' b"},
  };

  util::ConsoleTable table({"function", "topology", "switches",
                            "P_static worst", "tpd", "rise", "E/transition",
                            "VOH"});
  bool power_claim = true;
  bool speed_claim = true;
  for (const Case& c : cases) {
    const auto parsed = logic::parse_expression(c.expression);
    const lattice::Lattice pdn =
        lattice::altun_riedel_synthesis(parsed.table, parsed.var_names);
    const lattice::Lattice pun =
        lattice::altun_riedel_synthesis(~parsed.table, pdn.var_names());

    const bridge::GateMetrics resistor =
        bridge::measure_resistor_gate(pdn, parsed.table);
    const bridge::GateMetrics complementary =
        bridge::measure_complementary_gate(pdn, pun, parsed.table);

    const auto add = [&](const char* topology, const bridge::GateMetrics& m) {
      char voh[16];
      std::snprintf(voh, sizeof voh, "%.3f", m.output_high_min);
      table.add_row({c.name, topology, std::to_string(m.switch_count),
                     util::format_si(m.static_power_worst, 3, "W"),
                     util::format_si(m.propagation_delay, 3, "s"),
                     util::format_si(m.rise_time, 3, "s"),
                     util::format_si(m.energy_per_transition, 3, "J"), voh});
    };
    add("resistor", resistor);
    add("complementary", complementary);

    power_claim = power_claim && complementary.functional &&
                  complementary.static_power_worst <
                      0.01 * resistor.static_power_worst;
    speed_claim = speed_claim &&
                  complementary.propagation_delay < resistor.propagation_delay;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper claim 1 — static power 'almost zero' (>100x lower):"
              " %s\n", power_claim ? "confirmed" : "NOT confirmed");
  std::printf("paper claim 2 — pull-up rise-time dominance eliminated"
              " (lower tpd): %s\n",
              speed_claim ? "confirmed" : "NOT confirmed");
  std::printf("note: VOH of the complementary form sits one n-type Vth drop"
              " below VDD, the classic pass-gate cost the paper's future"
              " p-type work would remove.\n");
  return power_claim && speed_claim ? 0 : 1;
}
