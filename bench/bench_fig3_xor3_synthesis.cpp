// Fig. 3 reproduction: XOR3 realized on a 3x4 lattice and on the
// minimum-size 3x3 lattice. The bench re-verifies the shipped mappings,
// re-derives the baseline Altun-Riedel lattice (4x4), and proves by
// exhaustive search that no lattice with fewer than 9 cells realizes XOR3 —
// establishing 3x3 as the minimum, as the paper states.
#include <cstdio>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"

int main() {
  using namespace ftl::lattice;
  const auto xor3 = xor3_truth_table();

  std::printf("== Fig. 3: XOR3 = a^b^c on switching lattices ==\n\n");

  const Lattice l34 = xor3_lattice_3x4();
  std::printf("Fig. 3a (3x4, 12 switches) — realizes XOR3: %s\n%s\n",
              realizes(l34, xor3) ? "yes" : "NO",
              l34.to_string().c_str());

  const Lattice l33 = xor3_lattice_3x3();
  std::printf("Fig. 3b (3x3, 9 switches, minimum) — realizes XOR3: %s\n%s\n",
              realizes(l33, xor3) ? "yes" : "NO",
              l33.to_string().c_str());

  const Lattice ar = altun_riedel_synthesis(xor3, {"a", "b", "c"});
  std::printf("Baseline Altun-Riedel construction: %dx%d (%d switches)"
              " — realizes XOR3: %s\n%s\n",
              ar.rows(), ar.cols(), ar.cell_count(),
              realizes(ar, xor3) ? "yes" : "NO", ar.to_string().c_str());

  std::printf("Minimality proof by exhaustive search (literals + constants"
              " per cell):\n");
  bool any_smaller = false;
  struct Size { int rows; int cols; };
  const Size sizes[] = {{1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6},
                        {1, 7}, {1, 8}, {2, 2}, {2, 3}, {3, 2}, {2, 4},
                        {4, 2}};
  for (const Size s : sizes) {
    const auto found = exhaustive_synthesis(xor3, s.rows, s.cols, {}, {"a", "b", "c"});
    std::printf("  %dx%d (%2d cells): %s\n", s.rows, s.cols, s.rows * s.cols,
                found ? "REALIZABLE (unexpected!)" : "impossible");
    any_smaller = any_smaller || found.has_value();
  }
  std::printf("  => 9 switches (3x3) is the minimum, matching the paper.\n");

  const bool ok = realizes(l34, xor3) && realizes(l33, xor3) &&
                  realizes(ar, xor3) && !any_smaller;
  return ok ? 0 : 1;
}
