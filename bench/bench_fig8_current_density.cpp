// Fig. 8 reproduction: current-density vector profiles of the three devices
// under the DSSS on-state bias. The paper's qualitative claim — the cross
// gate gives a uniform current profile, the square gate crowds current at
// the corners — is quantified with a Gini coefficient and peak/mean ratio
// over |J| in the gated channel. Full vector fields are dumped to CSV for
// plotting.
#include <cstdio>

#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/current_density.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/table.hpp"

int main() {
  using namespace ftl::tcad;
  std::printf("== Fig. 8: current-density vector profiles (DSSS, Vgs=Vds=5V)"
              " ==\n\n");

  ftl::util::ConsoleTable table(
      {"device", "peak/mean |J|", "Gini(|J|)", "paper expectation"});
  const BiasPoint bias = parse_bias_case("DSSS").at(5.0, 5.0);

  struct Entry {
    DeviceShape shape;
    const char* expectation;
  };
  const Entry entries[] = {
      {DeviceShape::kSquare, "corner crowding (least uniform)"},
      {DeviceShape::kCross, "uniform profile across terminals"},
      {DeviceShape::kJunctionless, "uniform wire conduction"},
  };

  double square_gini = 0.0;
  double cross_gini = 0.0;
  for (const Entry& e : entries) {
    const DeviceSpec spec = make_device(e.shape, GateDielectric::kHfO2);
    const NetworkSolver solver(build_mesh(spec, 48), ChargeSheetModel(spec));
    const CrowdingMetrics m = crowding_metrics(solver, bias);
    char peak[32], gini[32];
    std::snprintf(peak, sizeof peak, "%.2f", m.peak_over_mean);
    std::snprintf(gini, sizeof gini, "%.3f", m.gini);
    table.add_row({to_string(e.shape), peak, gini, e.expectation});
    if (e.shape == DeviceShape::kSquare) square_gini = m.gini;
    if (e.shape == DeviceShape::kCross) cross_gini = m.gini;

    // Vector-field dump for plotting (x, y, jx, jy).
    const auto field = current_density_field(solver, bias);
    ftl::util::CsvWriter csv("fig8_" + to_string(e.shape) + "_field.csv");
    csv.write_header({"x", "y", "jx", "jy"});
    for (const FieldSample& s : field) {
      csv.write_row(std::vector<double>{s.x, s.y, s.jx, s.jy});
    }
  }
  std::printf("%s\n", table.render().c_str());
  const bool ordered = cross_gini < square_gini;
  std::printf("cross more uniform than square (paper's observation): %s\n",
              ordered ? "yes" : "NO");
  return ordered ? 0 : 1;
}
