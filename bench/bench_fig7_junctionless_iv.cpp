// Fig. 7 reproduction: depletion-type junctionless device I-V
// characteristics (DSSS case), both dielectrics, with Vth and on/off
// extraction compared to the §III-B text (HfO2: -0.57 V / 1e8;
// SiO2: -4.8 V / 1e7).
#include "device_iv_common.hpp"

int main() {
  std::printf("== Fig. 7: junctionless device, DSSS case ==\n\n");
  const int out_of_band = bench::run_device_iv_bench(
      ftl::tcad::DeviceShape::kJunctionless,
      bench::PaperTargets{-0.57, -4.8, 1e8, 1e7}, -2.0, "fig7_junctionless");
  std::printf("summary: %d metric(s) outside the one-decade/35%% band"
              " (documented divergences live in EXPERIMENTS.md; the SiO2"
              " junctionless Vth is the known one)\n",
              out_of_band);
  return 0;
}
