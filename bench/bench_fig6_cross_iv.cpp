// Fig. 6 reproduction: enhancement cross-gate device I-V characteristics
// (DSSS case), both dielectrics, with Vth and on/off extraction compared to
// the §III-B text (HfO2: 0.27 V / 1e6; SiO2: 1.76 V / 1e4).
#include "device_iv_common.hpp"

int main() {
  std::printf("== Fig. 6: cross-shaped device, DSSS case ==\n\n");
  const int out_of_band = bench::run_device_iv_bench(
      ftl::tcad::DeviceShape::kCross,
      bench::PaperTargets{0.27, 1.76, 1e6, 1e4}, 0.0, "fig6_cross");
  std::printf("summary: %d metric(s) outside the one-decade/35%% band"
              " (documented divergences live in EXPERIMENTS.md)\n",
              out_of_band);
  return 0;
}
