// §III-B reproduction: the 16 drain/source/float terminal-role cases on the
// square+HfO2 device. The paper's claim — "results show good correlations
// between the symmetric simulations and the devices behave as a
// four-terminal switch under the given operating conditions" — is verified
// by grouping the cases into rotation/mirror symmetry classes and checking
// that total drain current matches within each class.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/network_solver.hpp"
#include "ftl/tcad/mesh.hpp"
#include "ftl/util/table.hpp"

int main() {
  using namespace ftl::tcad;
  std::printf("== All 16 terminal-role cases (square/HfO2, Vgs=Vds=5V) ==\n\n");

  const DeviceSpec spec = make_device(DeviceShape::kSquare, GateDielectric::kHfO2);
  const NetworkSolver solver(build_mesh(spec, 48), ChargeSheetModel(spec));

  // Symmetry classes of the square device (4-fold rotation + mirrors):
  // all 1D-3S cases are equivalent; 2D-2S splits into adjacent (DDSS-like)
  // and opposite (DSDS-like) pairs; 3D-1S cases are equivalent; the two
  // 1D-1S cases are distinct (adjacent vs opposite pair).
  const std::map<std::string, std::string> symmetry_class = {
      {"DSFF", "pair-adjacent"}, {"SFDF", "pair-opposite"},
      {"DSSS", "1D-3S"}, {"SDSS", "1D-3S"}, {"SSDS", "1D-3S"}, {"SSSD", "1D-3S"},
      {"DDSS", "2D-2S-adjacent"}, {"SDDS", "2D-2S-adjacent"},
      {"DSSD", "2D-2S-adjacent"}, {"SSDD", "2D-2S-adjacent"},
      {"DSDS", "2D-2S-opposite"}, {"SDSD", "2D-2S-opposite"},
      {"DDDS", "3D-1S"}, {"SDDD", "3D-1S"}, {"DDSD", "3D-1S"}, {"DSDD", "3D-1S"},
  };

  ftl::util::ConsoleTable table(
      {"case", "class", "I(T1) [A]", "I(T2) [A]", "I(T3) [A]", "I(T4) [A]",
       "total drain [A]"});
  std::map<std::string, std::vector<double>> class_currents;

  // The 16 cases are independent solves on the same const solver: fan them
  // across the thread pool, one result slot per case, then render in order.
  std::vector<SolveResult> results(paper_bias_cases().size());
  for_each_paper_bias_case(
      [&](std::size_t i, const BiasCase& bias) {
        results[i] = solver.solve(bias.at(5.0, 5.0));
      });

  for (std::size_t c = 0; c < paper_bias_cases().size(); ++c) {
    const BiasCase& bias = paper_bias_cases()[c];
    const SolveResult& r = results[c];
    double drain_total = 0.0;
    for (std::size_t t = 0; t < 4; ++t) {
      if (bias.roles[t] == Role::kDrain) drain_total += r.terminal_current[t];
    }
    class_currents[symmetry_class.at(bias.name)].push_back(drain_total);
    std::vector<std::string> row{bias.name, symmetry_class.at(bias.name)};
    for (std::size_t t = 0; t < 4; ++t) {
      char cell[24];
      std::snprintf(cell, sizeof cell, "%+.3e", r.terminal_current[t]);
      row.push_back(cell);
    }
    char total[24];
    std::snprintf(total, sizeof total, "%.3e", drain_total);
    row.push_back(total);
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  bool symmetric = true;
  std::printf("symmetry classes (max spread of total drain current):\n");
  for (const auto& [name, currents] : class_currents) {
    double lo = currents.front();
    double hi = currents.front();
    for (double c : currents) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    const double spread = (hi - lo) / std::max(std::fabs(hi), 1e-30);
    std::printf("  %-16s %zu case(s), spread %.2e\n", name.c_str(),
                currents.size(), spread);
    symmetric = symmetric && spread < 1e-3;
  }
  std::printf("\nall terminal pairs conduct and symmetric cases agree"
              " (the paper's four-terminal-switch criterion): %s\n",
              symmetric ? "yes" : "NO");
  return symmetric ? 0 : 1;
}
