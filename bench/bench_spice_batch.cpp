// Batched corner engine vs the per-trial baseline: the same Monte-Carlo
// yield sweeps run through both bridge::monte_carlo_yield engines, plus the
// Fig. 12a chain sweep through chain_current_batch vs per-point calls.
//
// Built-in gates decide the exit code:
//  - identity: for every row the two engines must agree EXACTLY — same
//    trials, passing count, worst_low and worst_high bit for bit (the
//    batched engine's contract is bitwise equality, not statistical
//    agreement), and the multi-threaded batched run must match the serial
//    batched run byte for byte;
//  - symbolic amortization (full runs only): the tentpole promise is "one
//    symbolic factorization, K numeric corners", so every MC row must show
//    the batched engine performing >= 3x fewer symbolic LU analyses per
//    solve than the per-trial path (measured from the engine counters; in
//    practice the factor is ~10-100x — one analysis per (chunk, code)
//    against one per (trial, code));
//  - wall clock (full runs only): aggregate MC wall-clock must stay >=
//    1.1x over the per-trial path. The wall gate is deliberately below
//    the amortization gate: the bitwise contract pins every Newton
//    iteration's assemble/refactor/solve to identical work in both
//    engines, and on these MOSFET lattices the iterations are ~75% of the
//    per-trial runtime (the level-1 model's hard cutoff parks floating
//    internal nodes on a pinch-off double root, so Newton converges
//    linearly at ratio 1/2 for tens of iterations). The batched engine
//    recovers essentially all of the remaining ~25% — netlist builds, node
//    numbering, sparsity-pattern discovery, symbolic analysis — which
//    measures 1.2-1.4x here, and more on the setup-heavier chain sweeps.
//    --quick rows are a few ms and timer jitter dominates, so the smoke
//    run keeps only the identity gates.
//
//   bench_spice_batch [out.json] [--quick]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/bridge/variability.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/spice/batch.hpp"
#include "ftl/spice/linear_solver.hpp"
#include "ftl/util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kAmortizationGate = 3.0;  // symbolic analyses, per MC row
constexpr double kWallClockGate = 1.10;    // aggregate MC wall-clock

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct McRow {
  std::string name;
  int trials = 0;
  double per_trial_s = 0.0;
  double batched_s = 0.0;
  double yield = 0.0;
  double speedup = 0.0;
  std::uint64_t sym_per_trial = 0;  // symbolic LU analyses, per-trial engine
  std::uint64_t sym_batched = 0;    // symbolic LU analyses, batched engine
  double amortization = 0.0;        // sym_per_trial / sym_batched
  bool ok = true;
};

McRow run_mc_row(const std::string& name, const ftl::lattice::Lattice& lat,
                 const ftl::logic::TruthTable& target, int trials,
                 double sigma_vth) {
  McRow row;
  row.name = name;
  row.trials = trials;

  ftl::bridge::VariabilityOptions base;
  base.sigma_vth = sigma_vth;
  base.sigma_kp_rel = 0.05;
  base.trials = trials;
  base.seed = 7;
  base.max_threads = 1;  // single-threaded on both sides: a fair engine race

  ftl::bridge::VariabilityOptions per_trial = base;
  per_trial.engine = ftl::bridge::VariabilityEngine::kPerTrial;
  ftl::spice::reset_spice_counters();
  auto start = Clock::now();
  const ftl::bridge::VariabilityResult a =
      ftl::bridge::monte_carlo_yield(lat, target, per_trial);
  row.per_trial_s = seconds_since(start);
  // Every fresh MnaLinearSolver's first factor() is a full symbolic
  // analysis — one per (trial, code) solve on the per-trial path.
  row.sym_per_trial = ftl::spice::spice_counters().factors;

  ftl::bridge::VariabilityOptions batched = base;
  batched.engine = ftl::bridge::VariabilityEngine::kBatched;
  ftl::spice::reset_batch_counters();
  start = Clock::now();
  const ftl::bridge::VariabilityResult b =
      ftl::bridge::monte_carlo_yield(lat, target, batched);
  row.batched_s = seconds_since(start);
  row.sym_batched = ftl::spice::batch_counters().symbolic_factors;

  row.yield = b.yield();
  row.speedup = row.batched_s > 0.0 ? row.per_trial_s / row.batched_s : 0.0;
  row.amortization =
      row.sym_batched > 0
          ? static_cast<double>(row.sym_per_trial) /
                static_cast<double>(row.sym_batched)
          : 0.0;

  if (a.trials != b.trials || a.passing != b.passing ||
      a.worst_low != b.worst_low || a.worst_high != b.worst_high) {
    std::fprintf(stderr,
                 "FAIL: %s: engines disagree (per-trial %d/%d low=%.17g "
                 "high=%.17g, batched %d/%d low=%.17g high=%.17g)\n",
                 name.c_str(), a.passing, a.trials, a.worst_low, a.worst_high,
                 b.passing, b.trials, b.worst_low, b.worst_high);
    row.ok = false;
  }

  // Thread-count invariance: contiguous chunks reduce in trial order, so a
  // 3-way split must reproduce the serial batched result byte for byte.
  ftl::bridge::VariabilityOptions threaded = batched;
  threaded.max_threads = 3;
  const ftl::bridge::VariabilityResult c =
      ftl::bridge::monte_carlo_yield(lat, target, threaded);
  if (c.passing != b.passing || c.worst_low != b.worst_low ||
      c.worst_high != b.worst_high) {
    std::fprintf(stderr, "FAIL: %s: 3-thread batched differs from serial\n",
                 name.c_str());
    row.ok = false;
  }
  return row;
}

struct ChainRow {
  std::string name;
  int points = 0;
  double per_point_s = 0.0;
  double batched_s = 0.0;
  double speedup = 0.0;
  bool ok = true;
};

ChainRow run_chain_row(int count, int points) {
  ChainRow row;
  row.name = "chain n=" + std::to_string(count);
  row.points = points;
  std::vector<double> volts;
  for (int i = 0; i < points; ++i) {
    volts.push_back(0.3 + 2.7 * static_cast<double>(i) /
                              static_cast<double>(points - 1));
  }

  auto start = Clock::now();
  std::vector<double> serial;
  for (const double v : volts) {
    serial.push_back(ftl::bridge::chain_current(count, v, v));
  }
  row.per_point_s = seconds_since(start);

  start = Clock::now();
  const std::vector<double> batched =
      ftl::bridge::chain_current_batch(count, volts, volts);
  row.batched_s = seconds_since(start);
  row.speedup = row.batched_s > 0.0 ? row.per_point_s / row.batched_s : 0.0;

  for (std::size_t k = 0; k < volts.size(); ++k) {
    if (batched[k] != serial[k]) {
      std::fprintf(stderr, "FAIL: %s: point %zu differs (%.17g vs %.17g)\n",
                   row.name.c_str(), k, batched[k], serial[k]);
      row.ok = false;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr10.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  const int mc_trials = quick ? 8 : 96;
  const auto xor3 = ftl::lattice::xor3_truth_table();
  const auto f_maj = ftl::logic::parse_expression("a b + b c + a c").table;

  std::vector<McRow> mc_rows;
  mc_rows.push_back(run_mc_row("xor3 3x3 tight", ftl::lattice::xor3_lattice_3x3(),
                               xor3, mc_trials, 0.05));
  mc_rows.push_back(run_mc_row("xor3 3x3 wide", ftl::lattice::xor3_lattice_3x3(),
                               xor3, mc_trials, 0.25));
  mc_rows.push_back(run_mc_row(
      "maj3 synth",
      ftl::lattice::altun_riedel_synthesis(f_maj, {"a", "b", "c"}), f_maj,
      mc_trials, 0.1));

  std::vector<ChainRow> chain_rows;
  chain_rows.push_back(run_chain_row(quick ? 3 : 5, quick ? 8 : 26));
  if (!quick) {
    chain_rows.push_back(run_chain_row(8, 26));
    chain_rows.push_back(run_chain_row(20, 40));
  }

  bool ok = true;
  double per_trial_total = 0.0;
  double batched_total = 0.0;
  for (const McRow& row : mc_rows) {
    ok = ok && row.ok;
    per_trial_total += row.per_trial_s;
    batched_total += row.batched_s;
    if (!quick && row.amortization < kAmortizationGate) {
      std::fprintf(stderr,
                   "FAIL: %s: symbolic amortization %.1fx below the %.1fx "
                   "gate (%llu vs %llu analyses)\n",
                   row.name.c_str(), row.amortization, kAmortizationGate,
                   static_cast<unsigned long long>(row.sym_per_trial),
                   static_cast<unsigned long long>(row.sym_batched));
      ok = false;
    }
  }
  for (const ChainRow& row : chain_rows) ok = ok && row.ok;

  const double mc_speedup =
      batched_total > 0.0 ? per_trial_total / batched_total : 0.0;
  if (!quick && mc_speedup < kWallClockGate) {
    std::fprintf(stderr,
                 "FAIL: aggregate MC wall-clock speedup %.2fx below the "
                 "%.2fx gate\n",
                 mc_speedup, kWallClockGate);
    ok = false;
  }

  const auto fmt = [](const char* spec, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, value);
    return std::string(buf);
  };
  ftl::util::ConsoleTable table(
      {"row", "per-trial", "batched", "speedup", "sym amort", "identity"});
  for (const McRow& row : mc_rows) {
    table.add_row({row.name, fmt("%.1f ms", row.per_trial_s * 1e3),
                   fmt("%.1f ms", row.batched_s * 1e3),
                   fmt("%.2fx", row.speedup), fmt("%.1fx", row.amortization),
                   row.ok ? "bitwise" : "BROKEN"});
  }
  for (const ChainRow& row : chain_rows) {
    table.add_row({row.name, fmt("%.1f ms", row.per_point_s * 1e3),
                   fmt("%.1f ms", row.batched_s * 1e3),
                   fmt("%.2fx", row.speedup), "-",
                   row.ok ? "bitwise" : "BROKEN"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "aggregate MC wall-clock speedup: %.2fx (gate %.2fx); symbolic "
      "amortization gate %.1fx per MC row (%s)\n",
      mc_speedup, kWallClockGate, kAmortizationGate,
      quick ? "not enforced under --quick" : "enforced");

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << "{\"bench\":\"spice_batch\",\"quick\":" << (quick ? "true" : "false")
       << ",\"wall_clock_gate\":" << kWallClockGate
       << ",\"amortization_gate\":" << kAmortizationGate
       << ",\"mc_speedup\":" << mc_speedup << ",\"mc_rows\":[";
  for (std::size_t i = 0; i < mc_rows.size(); ++i) {
    const McRow& row = mc_rows[i];
    if (i != 0) file << ",";
    file << "{\"row\":\"" << row.name << "\",\"trials\":" << row.trials
         << ",\"per_trial_ms\":" << row.per_trial_s * 1e3
         << ",\"batched_ms\":" << row.batched_s * 1e3
         << ",\"speedup\":" << row.speedup << ",\"yield\":" << row.yield
         << ",\"symbolic_per_trial\":" << row.sym_per_trial
         << ",\"symbolic_batched\":" << row.sym_batched
         << ",\"symbolic_amortization\":" << row.amortization
         << ",\"identical\":" << (row.ok ? "true" : "false") << "}";
  }
  file << "],\"chain_rows\":[";
  for (std::size_t i = 0; i < chain_rows.size(); ++i) {
    const ChainRow& row = chain_rows[i];
    if (i != 0) file << ",";
    file << "{\"row\":\"" << row.name << "\",\"points\":" << row.points
         << ",\"per_point_ms\":" << row.per_point_s * 1e3
         << ",\"batched_ms\":" << row.batched_s * 1e3
         << ",\"speedup\":" << row.speedup
         << ",\"identical\":" << (row.ok ? "true" : "false") << "}";
  }
  file << "]}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
