// Ablation (§VI-A extension): level-1 vs level-3 MOSFET model. The paper
// fits level-1 and plans "more specific equations, such as level-3" as
// future work; this bench quantifies what the upgrade buys — fit RMSE on
// the same TCAD data, and the spread of the two models' predictions on the
// Fig. 12 series-chain experiment.
#include <cmath>
#include <cstdio>
#include <memory>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/fit/extract.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/mosfet3.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

namespace {

/// Chain current with the level-3 model (mirror of bridge::chain_current,
/// which is level-1; built here to compare like for like).
double chain_current_level3(int count, double v, const ftl::fit::Level3Params& base) {
  using namespace ftl::spice;
  Circuit ckt;
  ckt.add(std::make_unique<VoltageSource>("Vs", ckt.node("n0"), Circuit::kGround,
                                          Waveform::dc(v)));
  ckt.add(std::make_unique<VoltageSource>("Vg", ckt.node("g"), Circuit::kGround,
                                          Waveform::dc(v)));
  ftl::fit::Level3Params type_a = base;
  type_a.width = 0.7e-6;
  type_a.length = 0.35e-6;
  ftl::fit::Level3Params type_b = type_a;
  type_b.length = 0.5e-6;
  // Built incrementally: `"n" + std::to_string(i)` trips GCC 12's
  // -Wrestrict false positive (PR 105651) under -O2.
  const auto numbered = [](const char* prefix, int i) {
    std::string name = prefix;
    name += std::to_string(i);
    return name;
  };
  for (int i = 0; i < count; ++i) {
    const std::string n = numbered("n", i);
    const std::string s = (i == count - 1) ? "0" : numbered("n", i + 1);
    const std::string de = numbered("de", i);
    const std::string dw = numbered("dw", i);
    const auto add = [&](const char* tag, const std::string& a,
                         const std::string& b, const ftl::fit::Level3Params& p) {
      ckt.add(std::make_unique<Mosfet3>(numbered("M", i) + tag,
                                        ckt.node(a), ckt.node("g"), ckt.node(b),
                                        Circuit::kGround, p));
    };
    add("ne", n, de, type_a);
    add("es", de, s, type_a);
    add("sw", s, dw, type_a);
    add("wn", dw, n, type_a);
    add("ns", n, s, type_b);
    add("ew", de, dw, type_b);
  }
  const OpResult op = dc_operating_point(ckt);
  const auto& src = dynamic_cast<const VoltageSource&>(ckt.device("Vs"));
  return -src.current(op.solution);
}

}  // namespace

int main() {
  using namespace ftl;
  std::printf("== Ablation: level-1 vs level-3 MOSFET model ==\n\n");

  const auto spec = tcad::make_device(tcad::DeviceShape::kSquare,
                                      tcad::GateDielectric::kHfO2);
  const tcad::NetworkSolver solver(tcad::build_mesh(spec, 48),
                                   tcad::ChargeSheetModel(spec));
  const auto dsff = tcad::parse_bias_case("DSFF");

  const fit::FitResult l1 = fit::extract_from_device(solver, dsff, 0.7e-6, 0.35e-6);
  const fit::Fit3Result l3 =
      fit::extract_level3_from_device(solver, dsff, 0.7e-6, 0.35e-6);

  util::ConsoleTable fits({"model", "Kp", "Vth", "lambda", "theta", "vc",
                           "RMSE [A]"});
  {
    char kp[24], vth[24], lam[24], rms[24];
    std::snprintf(kp, sizeof kp, "%.3e", l1.params.kp);
    std::snprintf(vth, sizeof vth, "%.3f", l1.params.vth);
    std::snprintf(lam, sizeof lam, "%.3f", l1.params.lambda);
    std::snprintf(rms, sizeof rms, "%.3e", l1.rms);
    fits.add_row({"level-1", kp, vth, lam, "-", "-", rms});
  }
  {
    char kp[24], vth[24], lam[24], th[24], vc[24], rms[24];
    std::snprintf(kp, sizeof kp, "%.3e", l3.params.kp);
    std::snprintf(vth, sizeof vth, "%.3f", l3.params.vth);
    std::snprintf(lam, sizeof lam, "%.3f", l3.params.lambda);
    std::snprintf(th, sizeof th, "%.3f", l3.params.theta);
    std::snprintf(vc, sizeof vc, "%.2f", l3.params.vc);
    std::snprintf(rms, sizeof rms, "%.3e", l3.rms);
    fits.add_row({"level-3", kp, vth, lam, th, vc, rms});
  }
  std::printf("%s\n", fits.render().c_str());
  const double improvement = l1.rms / std::max(l3.rms, 1e-30);
  std::printf("fit RMSE improvement from level-3: %.2fx\n\n", improvement);

  // How much do circuit-level predictions move? Fig. 12a with both models.
  std::printf("Fig. 12a chain currents predicted by each model"
              " (VDD = gate = 1.2 V):\n");
  util::ConsoleTable chain({"N", "level-1 [A]", "level-3 [A]", "spread"});
  const bridge::SwitchModelParams l1_model = bridge::switch_model_from_fit(l1);
  double max_spread = 0.0;
  for (int n : {1, 2, 5, 11, 21}) {
    const double i1 = bridge::chain_current(n, 1.2, 1.2, l1_model);
    const double i3 = chain_current_level3(n, 1.2, l3.params);
    const double spread = std::fabs(i1 - i3) / std::max(i1, i3);
    max_spread = std::max(max_spread, spread);
    char c1[24], c3[24], sp[24];
    std::snprintf(c1, sizeof c1, "%.3e", i1);
    std::snprintf(c3, sizeof c3, "%.3e", i3);
    std::snprintf(sp, sizeof sp, "%.0f%%", 100.0 * spread);
    chain.add_row({std::to_string(n), c1, c3, sp});
  }
  std::printf("%s\n", chain.render().c_str());
  std::printf("findings: level-3 fits the raw I-V data %.1fx better and"
              " recovers the physical threshold (%.3f V vs the device's"
              " ~0.16 V, where level-1 compromises at %.3f V); at the 1.2 V"
              " logic operating point the two models' circuit predictions"
              " agree within %.0f%% — the paper's level-1 choice is adequate"
              " for its Section V studies, and the level-3 upgrade matters"
              " for curve-accurate work.\n",
              improvement, l3.params.vth, l1.params.vth, 100.0 * max_spread);
  return l3.rms < l1.rms && max_spread < 0.25 ? 0 : 1;
}
