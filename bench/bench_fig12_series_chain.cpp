// Fig. 12 reproduction: drive capability of series-connected four-terminal
// switches.
//  (a) current at a constant 1.2 V supply vs the number of switches in
//      series (paper: 11.12 uA at 1 -> 2.2 uA at 5 -> 0.52 uA at 21, an
//      almost exact 1/N law);
//  (b) supply voltage required for a constant 5.5 uA (the two-switch
//      current) vs chain length (paper: near-linear growth to ~2.5 V at 21).
#include <cmath>
#include <cstdio>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

int main() {
  using namespace ftl;
  std::printf("== Fig. 12: four-terminal switches in series ==\n\n");

  // --- (a) current at constant 1.2 V --------------------------------------
  std::printf("(a) current at VDD = 1.2 V\n");
  // Paper series (1..21, from the Fig. 12a description).
  const struct {
    int n;
    double paper_current;
  } paper_points[] = {{1, 11.12e-6}, {5, 2.2e-6}, {21, 0.52e-6}};

  ftl::util::ConsoleTable ta({"N switches", "I measured [A]",
                              "I paper [A]", "I(1)/I(N) measured",
                              "I(1)/I(N) paper"});
  ftl::util::CsvWriter csv_a("fig12a_chain_current.csv");
  csv_a.write_header({"n", "current"});
  std::vector<double> currents(22, 0.0);
  for (int n = 1; n <= 21; ++n) {
    currents[static_cast<std::size_t>(n)] = bridge::chain_current(n, 1.2, 1.2);
    csv_a.write_row(std::vector<double>{static_cast<double>(n),
                                        currents[static_cast<std::size_t>(n)]});
  }
  for (const auto& p : paper_points) {
    char i_meas[32], i_pap[32], r_meas[32], r_pap[32];
    std::snprintf(i_meas, sizeof i_meas, "%.3e", currents[static_cast<std::size_t>(p.n)]);
    std::snprintf(i_pap, sizeof i_pap, "%.2e", p.paper_current);
    std::snprintf(r_meas, sizeof r_meas, "%.1f",
                  currents[1] / currents[static_cast<std::size_t>(p.n)]);
    std::snprintf(r_pap, sizeof r_pap, "%.1f", 11.12e-6 / p.paper_current);
    ta.add_row({std::to_string(p.n), i_meas, i_pap, r_meas, r_pap});
  }
  std::printf("%s\n", ta.render().c_str());
  const double decay_ratio = currents[1] / currents[21];
  std::printf("shape check: I(1)/I(21) = %.1f (paper: 21.4; ~1/N law %s)\n\n",
              decay_ratio,
              decay_ratio > 10.0 && decay_ratio < 45.0 ? "holds" : "BROKEN");

  // --- (b) voltage for the constant two-switch current --------------------
  const double target = bridge::chain_current(2, 1.2, 1.2);
  std::printf("(b) supply voltage for a constant %s (the 2-switch current;"
              " paper used 5.5 uA)\n",
              ftl::util::format_si(target, 3, "A").c_str());
  ftl::util::ConsoleTable tb({"N switches", "V measured [V]", "V paper [V]"});
  ftl::util::CsvWriter csv_b("fig12b_chain_voltage.csv");
  csv_b.write_header({"n", "voltage"});
  const struct {
    int n;
    const char* paper;
  } paper_v[] = {{2, "1.2"}, {5, "~1.5"}, {11, "~1.9"}, {21, "~2.5"}};
  std::vector<double> volts(22, 0.0);
  for (int n = 1; n <= 21; ++n) {
    volts[static_cast<std::size_t>(n)] = bridge::voltage_for_current(n, target);
    csv_b.write_row(std::vector<double>{static_cast<double>(n),
                                        volts[static_cast<std::size_t>(n)]});
  }
  for (const auto& p : paper_v) {
    char v[32];
    std::snprintf(v, sizeof v, "%.3f", volts[static_cast<std::size_t>(p.n)]);
    tb.add_row({std::to_string(p.n), v, p.paper});
  }
  std::printf("%s\n", tb.render().c_str());

  // Shape checks: monotone increase, sub-linear in N (the paper's
  // feasibility argument: voltage does NOT grow linearly with N).
  bool monotone = true;
  for (int n = 2; n <= 21; ++n) {
    monotone = monotone && volts[static_cast<std::size_t>(n)] >=
                               volts[static_cast<std::size_t>(n - 1)] - 1e-9;
  }
  const double growth = volts[21] / volts[2];
  std::printf("shape check: V monotone in N: %s; V(21)/V(2) = %.2f"
              " (21/2 = 10.5 would be linear-resistor behaviour; paper ~2.1)\n",
              monotone ? "yes" : "NO", growth);
  return monotone && growth < 6.0 ? 0 : 1;
}
