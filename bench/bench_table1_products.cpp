// Table I reproduction: the number of products in the m×n lattice function
// for 2 <= m,n <= 9, computed by irredundant top-bottom path enumeration,
// printed next to the paper's values. Also prints the f3x3 product list of
// Fig. 2c.
#include <cstdio>
#include <string>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/util/table.hpp"

namespace {

// Table I of the paper, rows m = 2..9, columns n = 2..9.
constexpr std::uint64_t kPaper[8][8] = {
    {2, 3, 4, 5, 6, 7, 8, 9},
    {4, 9, 16, 25, 36, 49, 64, 81},
    {6, 17, 36, 67, 118, 203, 344, 575},
    {10, 37, 94, 205, 436, 957, 2146, 4773},
    {16, 77, 236, 621, 1668, 4883, 14880, 44331},
    {26, 163, 602, 1905, 6562, 26317, 110838, 446595},
    {42, 343, 1528, 5835, 25686, 139231, 797048, 4288707},
    {68, 723, 3882, 17873, 100294, 723153, 5509834, 38930447},
};

}  // namespace

int main() {
  std::printf("== Table I: number of products in the m x n lattice function ==\n");
  std::printf("   (measured by irredundant-path enumeration; paper value in"
              " parentheses when it differs)\n\n");

  ftl::util::ConsoleTable table(
      {"m/n", "2", "3", "4", "5", "6", "7", "8", "9"});
  int mismatches = 0;
  for (int m = 2; m <= 9; ++m) {
    std::vector<std::string> row{std::to_string(m)};
    for (int n = 2; n <= 9; ++n) {
      const std::uint64_t measured = ftl::lattice::count_products(m, n);
      const std::uint64_t paper = kPaper[m - 2][n - 2];
      std::string cell = std::to_string(measured);
      if (measured != paper) {
        cell += " (" + std::to_string(paper) + ")";
        ++mismatches;
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("mismatches vs paper: %d / 64\n\n", mismatches);

  std::printf("== Fig. 2c: the %llu products of f3x3 ==\n",
              static_cast<unsigned long long>(ftl::lattice::count_products(3, 3)));
  const auto sop = ftl::lattice::grid_function(3, 3);
  std::vector<std::string> names;
  for (int i = 1; i <= 9; ++i) {
    // Incremental append: GCC 12 -Wrestrict FP (PR 105651).
    std::string name = "x";
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  std::printf("f3x3 = %s\n", sop.to_string(names).c_str());
  return mismatches == 0 ? 0 : 1;
}
