// Ablation: transient-integrator choice (backward Euler vs trapezoidal) and
// step-size sensitivity on the Fig. 11 XOR3 bench. Validates that the
// reported rise/fall figures are integration-converged numbers, not
// artifacts of dt or the method.
#include <cmath>
#include <cstdio>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/spice/measure.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

namespace {

struct RunResult {
  double rise = 0.0;
  double fall = 0.0;
  std::size_t points = 0;
};

RunResult run(ftl::spice::Integrator method, double dt) {
  using namespace ftl;
  const auto lat = lattice::xor3_lattice_3x3();
  const double period = 40e-9;
  std::map<int, spice::Waveform> drives;
  for (int v = 0; v < 3; ++v) {
    const double p = period * static_cast<double>(2 << v);
    drives[v] = spice::Waveform::pulse(0.0, 1.2, p / 2.0, 1e-9, 1e-9,
                                       p / 2.0 - 1e-9, p);
  }
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
  spice::TransientOptions topt;
  topt.tstop = 8 * period;
  topt.dt = dt;
  topt.integrator = method;
  topt.record_nodes = {"out"};
  const spice::TransientResult tr = spice::transient(lc.circuit, topt);
  RunResult r;
  r.points = tr.size();
  const auto rise = spice::rise_time(tr.time(), tr.signal("out"), 0.09, 1.2);
  const auto fall = spice::fall_time(tr.time(), tr.signal("out"), 0.09, 1.2);
  if (rise) r.rise = *rise;
  if (fall) r.fall = *fall;
  return r;
}

}  // namespace

int main() {
  using namespace ftl;
  std::printf("== Ablation: integrator and step size on the Fig. 11 bench"
              " ==\n\n");

  ftl::util::ConsoleTable table({"integrator", "dt", "rise", "fall", "points"});
  const auto reference = run(spice::Integrator::kTrapezoidal, 0.05e-9);
  double worst_rise_err = 0.0;
  for (const auto method : {spice::Integrator::kTrapezoidal,
                            spice::Integrator::kBackwardEuler}) {
    for (const double dt : {0.05e-9, 0.2e-9, 0.8e-9}) {
      const RunResult r = run(method, dt);
      table.add_row({method == spice::Integrator::kTrapezoidal ? "trapezoidal"
                                                               : "backward-euler",
                     util::format_si(dt, 2, "s"), util::format_si(r.rise, 3, "s"),
                     util::format_si(r.fall, 3, "s"), std::to_string(r.points)});
      if (dt <= 0.2e-9) {
        worst_rise_err = std::max(
            worst_rise_err, std::fabs(r.rise - reference.rise) / reference.rise);
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("rise-time spread across methods at dt <= 0.2 ns: %.1f%%"
              " (the Fig. 11 numbers are integration-converged)\n",
              100.0 * worst_rise_err);
  return worst_rise_err < 0.05 ? 0 : 1;
}
