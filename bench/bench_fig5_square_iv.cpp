// Fig. 5 reproduction: enhancement square-gate device I-V characteristics
// (DSSS case), both dielectrics, with Vth and on/off extraction compared to
// the §III-B text (HfO2: 0.16 V / 1e6; SiO2: 1.36 V / 1e5).
#include "device_iv_common.hpp"

int main() {
  std::printf("== Fig. 5: square-shaped device, DSSS case ==\n\n");
  const int out_of_band = bench::run_device_iv_bench(
      ftl::tcad::DeviceShape::kSquare,
      bench::PaperTargets{0.16, 1.36, 1e6, 1e5}, 0.0, "fig5_square");
  std::printf("summary: %d metric(s) outside the one-decade/35%% band"
              " (documented divergences live in EXPERIMENTS.md)\n",
              out_of_band);
  return 0;
}
