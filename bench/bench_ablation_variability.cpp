// Ablation: process-variation yield of the XOR3 lattice gate. Nanoscale
// four-terminal switches will scatter in Vth and Kp; this bench sweeps the
// Vth spread and reports the fraction of Monte-Carlo dies whose full truth
// table still meets VDD/3 - 2VDD/3 static margins — the feasibility
// question behind the paper's planned fabrication step.
#include <cstdio>

#include "ftl/bridge/variability.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/util/table.hpp"

int main() {
  using namespace ftl;
  std::printf("== Ablation: Monte-Carlo Vth/Kp variation vs yield (XOR3,"
              " 3x3 lattice) ==\n\n");

  const auto lat = lattice::xor3_lattice_3x3();
  const auto xor3 = lattice::xor3_truth_table();

  ftl::util::ConsoleTable table({"sigma Vth [mV]", "sigma Kp [%]", "trials",
                                 "yield", "worst VOL [V]", "worst VOH [V]"});
  const double sigmas_mv[] = {0.0, 25.0, 50.0, 100.0, 200.0, 300.0};
  double yield_at_zero = 0.0;
  double yield_at_max = 1.0;
  for (const double sigma_mv : sigmas_mv) {
    bridge::VariabilityOptions options;
    options.sigma_vth = sigma_mv * 1e-3;
    options.sigma_kp_rel = 0.10;  // 10% Kp spread throughout
    options.trials = 120;
    options.seed = 7;
    const bridge::VariabilityResult r =
        bridge::monte_carlo_yield(lat, xor3, options);
    if (sigma_mv == 0.0) yield_at_zero = r.yield();
    yield_at_max = r.yield();
    char y[16], lo[16], hi[16];
    std::snprintf(y, sizeof y, "%.0f%%", 100.0 * r.yield());
    std::snprintf(lo, sizeof lo, "%.3f", r.worst_low);
    std::snprintf(hi, sizeof hi, "%.3f", r.worst_high);
    char sv[16];
    std::snprintf(sv, sizeof sv, "%.0f", sigma_mv);
    table.add_row({sv, "10", std::to_string(r.trials), y, lo, hi});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: the gate holds full yield with Kp spread alone and"
              " degrades as the Vth spread approaches the gate overdrive —"
              " the margin budget a fabrication run would have to meet.\n");
  // Sanity: nominal process yields 100%; extreme spread must cost yield.
  return (yield_at_zero == 1.0 && yield_at_max <= yield_at_zero) ? 0 : 1;
}
