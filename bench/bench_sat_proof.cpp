// Cost of certification: the CEGAR synthesis family run twice — once plain,
// once with DRAT logging plus the embedded backward-RUP check on every
// infeasibility — so the proof machinery's overhead is a measured number,
// not a guess.
//
// Built-in gates decide the exit code:
//  - verdict parity: certification must never change feasible/infeasible;
//  - every UNSAT verdict under --certify must carry a proof that the
//    embedded checker accepts (proof_checked && proof_valid);
//  - overhead: per row, certified wall-clock <= 2x the plain run plus a
//    fixed slack (short runs are timer noise, the slack absorbs it).
//
//   bench_sat_proof [out.json] [--quick]
//
// --quick drops the slowest rows (6-variable wall, 8-variable headline) so
// the CI smoke finishes in seconds; every gate still runs on what remains.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/util/table.hpp"

namespace {

using ftl::lattice::SatSynthesisOptions;
using ftl::lattice::SatSynthesisResult;
using ftl::logic::TruthTable;
using Clock = std::chrono::steady_clock;

// Timer noise floor: sub-10ms rows can "double" on scheduler jitter alone.
constexpr double kOverheadFactor = 2.0;
constexpr double kOverheadSlackS = 0.25;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TruthTable parity(int num_vars) {
  return TruthTable::from_function(num_vars, [](std::uint64_t m) {
    return (__builtin_popcountll(m) & 1) != 0;
  });
}

TruthTable majority3() {
  return TruthTable::from_function(
      3, [](std::uint64_t m) { return __builtin_popcountll(m) >= 2; });
}

/// OR of adjacent-variable ANDs: x0 x1 + x2 x3 + ... over `num_vars` vars.
TruthTable pairwise_or(int num_vars) {
  return TruthTable::from_function(num_vars, [num_vars](std::uint64_t m) {
    for (int v = 0; v + 1 < num_vars; v += 2) {
      if (((m >> v) & 1) != 0 && ((m >> (v + 1)) & 1) != 0) return true;
    }
    return false;
  });
}

struct ProofRow {
  std::string name;
  double plain_s = 0.0;
  double certified_s = 0.0;
  double proof_check_ms = 0.0;
  std::uint64_t learned_clauses = 0;
  bool found = false;
  bool infeasible = false;
  bool proof_valid = false;
  bool ok = true;
};

ProofRow run_row(const std::string& name, const TruthTable& target, int rows,
                 int cols) {
  ProofRow row;
  row.name = name;

  auto start = Clock::now();
  const SatSynthesisResult plain =
      ftl::lattice::synth_sat(target, rows, cols);
  row.plain_s = seconds_since(start);

  SatSynthesisOptions options;
  options.certify = true;
  start = Clock::now();
  const SatSynthesisResult certified =
      ftl::lattice::synth_sat(target, rows, cols, options);
  row.certified_s = seconds_since(start);

  row.found = certified.lattice.has_value();
  row.infeasible = certified.proven_infeasible;
  row.proof_valid = certified.proof_valid;
  row.proof_check_ms = certified.proof_check_ms;
  row.learned_clauses = certified.solver.learned_clauses;

  if (plain.lattice.has_value() != certified.lattice.has_value() ||
      plain.proven_infeasible != certified.proven_infeasible) {
    std::fprintf(stderr, "FAIL: %s: certification changed the verdict\n",
                 name.c_str());
    row.ok = false;
  }
  if (certified.lattice &&
      !ftl::lattice::realizes(*certified.lattice, target)) {
    std::fprintf(stderr, "FAIL: %s: certified lattice does not realize\n",
                 name.c_str());
    row.ok = false;
  }
  if (certified.proven_infeasible &&
      !(certified.proof_checked && certified.proof_valid)) {
    std::fprintf(stderr, "FAIL: %s: UNSAT verdict without a valid proof\n",
                 name.c_str());
    row.ok = false;
  }
  if (row.certified_s >
      kOverheadFactor * row.plain_s + kOverheadSlackS) {
    std::fprintf(stderr,
                 "FAIL: %s: certified %.3fs exceeds %.0fx plain %.3fs + %.2fs\n",
                 name.c_str(), row.certified_s, kOverheadFactor, row.plain_s,
                 kOverheadSlackS);
    row.ok = false;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr9.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  // Feasible and infeasible rows in one family: the UNSAT rows are where
  // the checker actually runs (a found lattice is its own certificate).
  std::vector<ProofRow> rows;
  rows.push_back(run_row("maj3 2x2 (UNSAT)", majority3(), 2, 2));
  rows.push_back(run_row("xor3 2x2 (UNSAT)", parity(3), 2, 2));
  rows.push_back(run_row("xor3 2x3 (UNSAT)", parity(3), 2, 3));
  rows.push_back(run_row("maj3 2x3", majority3(), 2, 3));
  rows.push_back(run_row("xor3 3x3", parity(3), 3, 3));
  rows.push_back(run_row("2x2-or 2x3", pairwise_or(4), 2, 3));
  if (!quick) {
    rows.push_back(run_row("3x2x2-or 4x5 (6var)", pairwise_or(6), 4, 5));
    rows.push_back(run_row("4x2x2-or 5x5 (8var)", pairwise_or(8), 5, 5));
  }

  bool ok = true;
  for (const ProofRow& row : rows) ok = ok && row.ok;

  const auto fmt = [](const char* spec, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, value);
    return std::string(buf);
  };
  ftl::util::ConsoleTable table(
      {"target", "plain", "certified", "check", "verdict"});
  for (const ProofRow& row : rows) {
    table.add_row(
        {row.name, fmt("%.1f ms", row.plain_s * 1e3),
         fmt("%.1f ms", row.certified_s * 1e3),
         row.infeasible ? fmt("%.2f ms", row.proof_check_ms) : "-",
         row.found ? "found"
                   : (row.infeasible
                          ? (row.proof_valid ? "UNSAT (proof checked)"
                                             : "UNSAT (PROOF INVALID)")
                          : "?")});
  }
  std::printf("%s", table.render().c_str());

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << "{\"bench\":\"sat_proof\",\"quick\":" << (quick ? "true" : "false")
       << ",\"overhead_gate\":{\"factor\":" << kOverheadFactor
       << ",\"slack_s\":" << kOverheadSlackS << "},\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ProofRow& row = rows[i];
    if (i != 0) file << ",";
    file << "{\"target\":\"" << row.name << "\""
         << ",\"plain_ms\":" << row.plain_s * 1e3
         << ",\"certified_ms\":" << row.certified_s * 1e3
         << ",\"found\":" << (row.found ? "true" : "false")
         << ",\"infeasible\":" << (row.infeasible ? "true" : "false")
         << ",\"proof_valid\":" << (row.proof_valid ? "true" : "false")
         << ",\"proof_check_ms\":" << row.proof_check_ms
         << ",\"learned_clauses\":" << row.learned_clauses << "}";
  }
  file << "]}" << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  return ok ? 0 : 1;
}
