// Ablation: area vs inherent defect tolerance. §II observes that many
// lattice sizes can realize the same function; this bench quantifies what
// the extra area of the non-minimal realizations buys in single-fault
// masking — the testing dimension of the NANOxCOMP project the paper
// belongs to (ref [1]).
#include <cstdio>

#include "ftl/lattice/faults.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/util/table.hpp"

int main() {
  using namespace ftl::lattice;
  std::printf("== Ablation: lattice size vs single-fault masking (XOR3)"
              " ==\n\n");

  const auto xor3 = xor3_truth_table();
  struct Entry {
    const char* name;
    Lattice lattice;
  };
  const Entry entries[] = {
      {"3x3 (minimum, Fig. 3b)", xor3_lattice_3x3()},
      {"3x4 (Fig. 3a)", xor3_lattice_3x4()},
      {"4x4 (Altun-Riedel)", altun_riedel_synthesis(xor3, {"a", "b", "c"})},
  };

  ftl::util::ConsoleTable table({"lattice", "switches", "faults", "masked",
                                 "masking ratio", "test vectors"});
  double prev_ratio = -1.0;
  bool monotone = true;
  for (const Entry& e : entries) {
    const FaultAnalysis analysis = analyze_single_faults(e.lattice, xor3);
    const auto tests = greedy_test_set(e.lattice, xor3);
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.0f%%", 100.0 * analysis.masking_ratio());
    table.add_row({e.name, std::to_string(e.lattice.cell_count()),
                   std::to_string(analysis.total_faults),
                   std::to_string(analysis.masked.size()), ratio,
                   std::to_string(tests.size())});
    monotone = monotone && analysis.masking_ratio() >= prev_ratio;
    prev_ratio = analysis.masking_ratio();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: larger realizations of the same function carry more"
              " redundant paths, so more single switch defects are masked —"
              " the area/yield trade the project's testing work builds"
              " on.\n");
  return 0;
}
