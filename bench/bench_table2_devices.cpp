// Table II reproduction: the structural features of the three four-terminal
// devices, echoed from the DeviceSpec factory together with the physical
// quantities the charge-sheet model derives from them (Cox, phiF, depletion
// charge, predicted threshold voltage, subthreshold ideality).
#include <cstdio>

#include "ftl/tcad/charge_sheet.hpp"
#include "ftl/tcad/device.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

int main() {
  using namespace ftl::tcad;
  using ftl::util::format_si;

  std::printf("== Table II: structural features (inputs) and derived model"
              " quantities ==\n\n");

  ftl::util::ConsoleTable table({"quantity", "square", "cross", "junctionless"});
  const DeviceSpec sq = make_device(DeviceShape::kSquare, GateDielectric::kHfO2);
  const DeviceSpec cr = make_device(DeviceShape::kCross, GateDielectric::kHfO2);
  const DeviceSpec jl = make_device(DeviceShape::kJunctionless, GateDielectric::kHfO2);

  const auto row = [&](const std::string& name, auto get) {
    table.add_row({name, get(sq), get(cr), get(jl)});
  };
  row("device size", [](const DeviceSpec& s) {
    return format_si(s.footprint, 3, "m") + " sq.";
  });
  row("electrode W x D", [](const DeviceSpec& s) {
    return format_si(s.electrode_width, 3, "m") + " x " +
           format_si(s.electrode_depth, 3, "m");
  });
  row("gate extent", [](const DeviceSpec& s) {
    return format_si(s.gate_extent, 3, "m");
  });
  row("oxide thickness", [](const DeviceSpec& s) {
    return format_si(s.oxide_thickness, 3, "m");
  });
  row("substrate doping", [](const DeviceSpec& s) {
    return s.substrate_acceptors > 0.0
               ? format_si(s.substrate_acceptors * 1e-6, 3, "cm^-3 (B)")
               : std::string("SiO2 (none)");
  });
  row("electrode doping", [](const DeviceSpec& s) {
    return format_si(s.electrode_donors * 1e-6, 3, "cm^-3 (P)");
  });
  std::printf("%s\n", table.render().c_str());

  std::printf("Derived quantities per dielectric (paper Vth in brackets,"
              " from the Section III-B text):\n\n");
  ftl::util::ConsoleTable derived(
      {"device/dielectric", "Cox [F/m^2]", "n", "Vth model [V]", "Vth paper [V]"});
  struct Row {
    DeviceShape shape;
    GateDielectric diel;
    const char* paper_vth;
  };
  const Row rows[] = {
      {DeviceShape::kSquare, GateDielectric::kHfO2, "0.16"},
      {DeviceShape::kSquare, GateDielectric::kSiO2, "1.36"},
      {DeviceShape::kCross, GateDielectric::kHfO2, "0.27"},
      {DeviceShape::kCross, GateDielectric::kSiO2, "1.76"},
      {DeviceShape::kJunctionless, GateDielectric::kHfO2, "-0.57"},
      {DeviceShape::kJunctionless, GateDielectric::kSiO2, "-4.8"},
  };
  for (const Row& r : rows) {
    const ChargeSheetModel model(make_device(r.shape, r.diel));
    char cox[32], n[32], vth[32];
    std::snprintf(cox, sizeof cox, "%.3e", model.cox());
    std::snprintf(n, sizeof n, "%.3f", model.ideality());
    std::snprintf(vth, sizeof vth, "%+.3f", model.threshold_voltage());
    derived.add_row({to_string(r.shape) + "/" + to_string(r.diel), cox, n, vth,
                     r.paper_vth});
  }
  std::printf("%s\n", derived.render().c_str());
  return 0;
}
