#pragma once
// Shared harness for the Fig. 5/6/7 device I-V reproductions: runs the
// paper's three sweep set-ups in the DSSS case, prints per-terminal currents
// (the four curves of each subfigure), extracts Vth and on/off ratio, and
// compares them against the paper's reported values. Raw curves are dumped
// to CSV next to the binary.

#include <cmath>
#include <cstdio>
#include <string>

#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/extract.hpp"
#include "ftl/tcad/sweep.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/table.hpp"

namespace bench {

struct PaperTargets {
  double vth_hfo2;
  double vth_sio2;
  double ratio_hfo2;
  double ratio_sio2;
};

inline void print_curve(const ftl::tcad::IvCurve& curve, const char* title) {
  std::printf("%s\n", title);
  ftl::util::ConsoleTable table({curve.sweep_variable, "I(T1) [A]", "I(T2) [A]",
                                 "I(T3) [A]", "I(T4) [A]"});
  for (std::size_t i = 0; i < curve.sweep_values.size(); ++i) {
    if (i % 5 != 0 && i + 1 != curve.sweep_values.size()) continue;  // thin out
    char v[32];
    std::snprintf(v, sizeof v, "%.2f", curve.sweep_values[i]);
    std::vector<std::string> row{v};
    for (int t = 0; t < 4; ++t) {
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.3e",
                    std::fabs(curve.terminal_currents[i][static_cast<std::size_t>(t)]));
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

inline void dump_csv(const ftl::tcad::IvCurve& curve, const std::string& path) {
  ftl::util::CsvWriter csv(path);
  csv.write_header({curve.sweep_variable, "I_T1", "I_T2", "I_T3", "I_T4"});
  for (std::size_t i = 0; i < curve.sweep_values.size(); ++i) {
    csv.write_row(std::vector<double>{
        curve.sweep_values[i], curve.terminal_currents[i][0],
        curve.terminal_currents[i][1], curve.terminal_currents[i][2],
        curve.terminal_currents[i][3]});
  }
}

/// Returns the number of metric comparisons that land outside a decade of
/// the paper value (the shape criterion).
inline int run_device_iv_bench(ftl::tcad::DeviceShape shape,
                               const PaperTargets& paper, double vg_min,
                               const std::string& csv_prefix) {
  using namespace ftl::tcad;
  int out_of_band = 0;
  const BiasCase dsss = parse_bias_case("DSSS");

  for (const GateDielectric diel : {GateDielectric::kHfO2, GateDielectric::kSiO2}) {
    const DeviceSpec spec = make_device(shape, diel);
    const ChargeSheetModel model(spec);
    const NetworkSolver solver(build_mesh(spec, 48), model);
    // The SiO2 junctionless device needs a deeper negative sweep.
    const double lo = diel == GateDielectric::kSiO2 && spec.is_depletion()
                          ? vg_min * 3.0
                          : vg_min;
    const SweepSetups sweeps = run_paper_setups(solver, dsss, lo, 5.0, 26);

    std::printf("---- %s / %s ----\n\n", to_string(shape).c_str(),
                to_string(diel).c_str());
    print_curve(sweeps.idvg_low, "(a) Ids-Vgs at Vds = 10 mV");
    print_curve(sweeps.idvg_high, "(b) Ids-Vgs at Vds = 5 V");
    print_curve(sweeps.idvd, "(c) Ids-Vds at Vgs = 5 V");

    const auto id_low = sweeps.idvg_low.drain_current(dsss);
    const auto id_high = sweeps.idvg_high.drain_current(dsss);
    const double vth =
        threshold_voltage_max_gm(sweeps.idvg_low.sweep_values, id_low, 0.010);
    // Depletion devices are ON at Vgs = 0; their off-point is below Vth.
    const double vg_off =
        spec.is_depletion() ? model.threshold_voltage() - 1.0 : 0.0;
    const double ratio =
        on_off_ratio(sweeps.idvg_high.sweep_values, id_high, 5.0, vg_off);
    const double ion = id_high.back();

    const double paper_vth =
        diel == GateDielectric::kHfO2 ? paper.vth_hfo2 : paper.vth_sio2;
    const double paper_ratio =
        diel == GateDielectric::kHfO2 ? paper.ratio_hfo2 : paper.ratio_sio2;
    std::printf("extracted: Vth = %+.3f V (paper %+.2f), Ion = %.3e A,"
                " Ion/Ioff = %.2e (paper %.0e)\n\n",
                vth, paper_vth, ion, ratio, paper_ratio);
    if (std::fabs(vth - paper_vth) > std::max(0.35 * std::fabs(paper_vth), 0.15)) {
      ++out_of_band;
    }
    if (ratio / paper_ratio > 10.0 || paper_ratio / ratio > 10.0) ++out_of_band;

    const std::string tag = csv_prefix + "_" + to_string(diel);
    dump_csv(sweeps.idvg_low, tag + "_idvg_10mV.csv");
    dump_csv(sweeps.idvg_high, tag + "_idvg_5V.csv");
    dump_csv(sweeps.idvd, tag + "_idvd.csv");
  }
  return out_of_band;
}

}  // namespace bench
