// Exhaustive-vs-SAT synthesis crossover, plus the headline the SAT core
// exists for: 5x5 lattices for 8-variable functions, a size the exhaustive
// odometer refuses outright (its candidate space is ~1e31 against a 4e12
// budget).
//
// Three sections, each with built-in correctness gates:
//  1. Crossover table — targets solvable by both engines, timed head to
//     head; the engines must agree on feasibility, and every found lattice
//     must realize its target (bitslice-verified).
//  2. The exhaustive wall — a 6-variable target where exhaustive_synthesis
//     throws SearchBoundExceeded while synth_sat just solves it, and a
//     zero-budget CEGAR run that must report budget_exhausted rather than
//     pretend.
//  3. Headline — 8-variable functions on 5x5: a structured 4-way AND-OR
//     and (full mode) a random-lattice-derived function depending on all
//     8 variables.
//
//   bench_synth_sat [out.json] [--quick]
//
// --quick drops the slowest exhaustive rows and the random-function
// headline so the CI smoke finishes in seconds; every correctness gate
// still runs and still decides the exit code.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/table.hpp"

namespace {

using ftl::lattice::CellValue;
using ftl::lattice::Lattice;
using ftl::logic::TruthTable;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Lattice random_lattice(int rows, int cols, int num_vars, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> choice(0, 2 * num_vars - 1);
  Lattice lat(rows, cols, num_vars);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int pick = choice(rng);
      lat.set(r, c, CellValue::of(pick / 2, pick % 2 == 0));
    }
  }
  return lat;
}

TruthTable parity3() {
  return TruthTable::from_function(3, [](std::uint64_t m) {
    return (__builtin_popcountll(m) & 1) != 0;
  });
}

TruthTable majority3() {
  return TruthTable::from_function(
      3, [](std::uint64_t m) { return __builtin_popcountll(m) >= 2; });
}

/// OR of adjacent-variable ANDs: x0 x1 + x2 x3 + ... over `num_vars` vars.
TruthTable pairwise_or(int num_vars) {
  return TruthTable::from_function(num_vars, [num_vars](std::uint64_t m) {
    for (int v = 0; v + 1 < num_vars; v += 2) {
      if (((m >> v) & 1) != 0 && ((m >> (v + 1)) & 1) != 0) return true;
    }
    return false;
  });
}

struct CrossoverRow {
  std::string name;
  double exhaustive_s = 0.0;
  double sat_s = 0.0;
  bool exhaustive_found = false;
  bool sat_found = false;
  bool sat_infeasible = false;
  std::uint64_t sat_conflicts = 0;
  bool ok = true;
};

CrossoverRow run_crossover(const std::string& name, const TruthTable& target,
                           int rows, int cols) {
  CrossoverRow row;
  row.name = name;

  auto start = Clock::now();
  const std::optional<Lattice> exhaustive =
      ftl::lattice::exhaustive_synthesis(target, rows, cols);
  row.exhaustive_s = seconds_since(start);
  row.exhaustive_found = exhaustive.has_value();

  start = Clock::now();
  const ftl::lattice::SatSynthesisResult sat =
      ftl::lattice::synth_sat(target, rows, cols);
  row.sat_s = seconds_since(start);
  row.sat_found = sat.lattice.has_value();
  row.sat_infeasible = sat.proven_infeasible;
  row.sat_conflicts = sat.solver.conflicts;

  if (row.exhaustive_found != row.sat_found) {
    std::fprintf(stderr, "FAIL: %s: exhaustive found=%d but sat found=%d\n",
                 name.c_str(), row.exhaustive_found, row.sat_found);
    row.ok = false;
  }
  if (!row.exhaustive_found && !row.sat_infeasible) {
    std::fprintf(stderr, "FAIL: %s: no lattice but SAT did not prove UNSAT\n",
                 name.c_str());
    row.ok = false;
  }
  if (exhaustive && !ftl::lattice::realizes(*exhaustive, target)) {
    std::fprintf(stderr, "FAIL: %s: exhaustive lattice does not realize\n",
                 name.c_str());
    row.ok = false;
  }
  if (sat.lattice && !ftl::lattice::realizes(*sat.lattice, target)) {
    std::fprintf(stderr, "FAIL: %s: SAT lattice does not realize\n",
                 name.c_str());
    row.ok = false;
  }
  return row;
}

struct HeadlineRow {
  std::string name;
  double sat_s = 0.0;
  int cegar_rounds = 0;
  int care_minterms = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;
  bool wall_hit = false;  ///< exhaustive refused via SearchBoundExceeded
  bool ok = true;
};

HeadlineRow run_headline(const std::string& name, const TruthTable& target,
                         int rows, int cols) {
  HeadlineRow row;
  row.name = name;

  try {
    (void)ftl::lattice::exhaustive_synthesis(target, rows, cols);
    std::fprintf(stderr, "FAIL: %s: exhaustive did not hit its budget\n",
                 name.c_str());
    row.ok = false;
  } catch (const ftl::lattice::SearchBoundExceeded&) {
    row.wall_hit = true;
  } catch (const ftl::ContractViolation&) {
    // 25 cells trips the engine's own >=20-cell precondition before the
    // candidate budget is even consulted — a refusal either way.
    row.wall_hit = true;
  }

  const auto start = Clock::now();
  const ftl::lattice::SatSynthesisResult sat =
      ftl::lattice::synth_sat(target, rows, cols);
  row.sat_s = seconds_since(start);
  row.cegar_rounds = sat.cegar_rounds;
  row.care_minterms = sat.care_minterms;
  row.conflicts = sat.solver.conflicts;
  row.propagations = sat.solver.propagations;
  if (!sat.lattice) {
    std::fprintf(stderr, "FAIL: %s: synth_sat found no lattice\n",
                 name.c_str());
    row.ok = false;
  } else if (!ftl::lattice::realizes(*sat.lattice, target)) {
    std::fprintf(stderr, "FAIL: %s: SAT lattice does not realize\n",
                 name.c_str());
    row.ok = false;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr7.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      out_path = arg;
    }
  }

  bool ok = true;

  // --- 1. crossover: both engines on targets both can decide --------------
  std::vector<CrossoverRow> crossover;
  crossover.push_back(run_crossover("maj3 2x2 (UNSAT)", majority3(), 2, 2));
  crossover.push_back(run_crossover("maj3 2x3", majority3(), 2, 3));
  crossover.push_back(run_crossover("xor3 2x3 (UNSAT)", parity3(), 2, 3));
  crossover.push_back(run_crossover("2x2-or 2x3", pairwise_or(4), 2, 3));
  if (!quick) {
    // 8^9 = 134M candidates: the exhaustive engine's practical ceiling.
    crossover.push_back(run_crossover("xor3 3x3", parity3(), 3, 3));
  }
  for (const CrossoverRow& row : crossover) ok = ok && row.ok;

  // --- 2. the exhaustive wall ---------------------------------------------
  // 6 variables on 4x5: 14^20 ~ 8e22 candidates. The exhaustive engine must
  // refuse with the structured error; the SAT engine just solves it.
  const TruthTable six = pairwise_or(6);
  bool wall_refused = false;
  double wall_sat_s = 0.0;
  {
    try {
      (void)ftl::lattice::exhaustive_synthesis(six, 4, 5);
      std::fprintf(stderr, "FAIL: exhaustive 4x5/6var did not refuse\n");
      ok = false;
    } catch (const ftl::lattice::SearchBoundExceeded&) {
      wall_refused = true;
    }
    const auto start = Clock::now();
    const ftl::lattice::SatSynthesisResult sat =
        ftl::lattice::synth_sat(six, 4, 5);
    wall_sat_s = seconds_since(start);
    if (!sat.lattice || !ftl::lattice::realizes(*sat.lattice, six)) {
      std::fprintf(stderr, "FAIL: synth_sat 4x5/6var failed to solve\n");
      ok = false;
    }
  }
  // A zero conflict budget must surface as an explicit refusal.
  {
    ftl::lattice::SatSynthesisOptions options;
    options.max_conflicts = 0;
    const ftl::lattice::SatSynthesisResult starved =
        ftl::lattice::synth_sat(pairwise_or(4), 3, 3, options);
    if (!starved.budget_exhausted || starved.lattice) {
      std::fprintf(stderr, "FAIL: zero budget not reported as exhausted\n");
      ok = false;
    }
  }

  // --- 3. headline: 8 variables on 5x5 ------------------------------------
  std::vector<HeadlineRow> headline;
  headline.push_back(
      run_headline("5x5/8var structured", pairwise_or(8), 5, 5));
  if (!quick) {
    // A function drawn from a random 5x5 literal lattice: irregular
    // structure, all 8 variables live, and far harder for CEGAR than the
    // structured target (the care set grows past 100 minterms).
    const TruthTable random_target =
        ftl::lattice::realized_truth_table(random_lattice(5, 5, 8, 1));
    for (int v = 0; v < 8; ++v) {
      if (!random_target.depends_on(v)) {
        std::fprintf(stderr, "FAIL: random target independent of var %d\n", v);
        ok = false;
      }
    }
    headline.push_back(
        run_headline("5x5/8var random-lattice", random_target, 5, 5));
  }
  for (const HeadlineRow& row : headline) ok = ok && row.ok;

  // --- report --------------------------------------------------------------
  const auto fmt = [](const char* spec, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, spec, value);
    return std::string(buf);
  };
  ftl::util::ConsoleTable table(
      {"target", "exhaustive", "synth_sat", "outcome"});
  for (const CrossoverRow& row : crossover) {
    table.add_row({row.name, fmt("%.1f ms", row.exhaustive_s * 1e3),
                   fmt("%.1f ms", row.sat_s * 1e3),
                   row.sat_found ? "both found"
                                 : (row.sat_infeasible ? "both UNSAT" : "?")});
  }
  table.add_row({"2x2x2-or 4x5 (6var)", wall_refused ? "refused (1e22)" : "?",
                 fmt("%.1f ms", wall_sat_s * 1e3), "exhaustive wall"});
  for (const HeadlineRow& row : headline) {
    char note[96];
    std::snprintf(note, sizeof note, "%d rounds, %d minterms, %llu conflicts",
                  row.cegar_rounds, row.care_minterms,
                  static_cast<unsigned long long>(row.conflicts));
    table.add_row({row.name, row.wall_hit ? "refused (1e31)" : "?",
                   fmt("%.2f s", row.sat_s), note});
  }
  std::printf("%s", table.render().c_str());

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << "{\"bench\":\"synth_sat\",\"quick\":" << (quick ? "true" : "false")
       << ",\"crossover\":[";
  for (std::size_t i = 0; i < crossover.size(); ++i) {
    const CrossoverRow& row = crossover[i];
    if (i != 0) file << ",";
    file << "{\"target\":\"" << row.name << "\""
         << ",\"exhaustive_ms\":" << row.exhaustive_s * 1e3
         << ",\"sat_ms\":" << row.sat_s * 1e3
         << ",\"found\":" << (row.sat_found ? "true" : "false")
         << ",\"conflicts\":" << row.sat_conflicts << "}";
  }
  file << "],\"wall_4x5_6var\":{"
       << "\"exhaustive_refused\":" << (wall_refused ? "true" : "false")
       << ",\"sat_ms\":" << wall_sat_s * 1e3 << "}"
       << ",\"headline\":[";
  for (std::size_t i = 0; i < headline.size(); ++i) {
    const HeadlineRow& row = headline[i];
    if (i != 0) file << ",";
    file << "{\"target\":\"" << row.name << "\""
         << ",\"sat_s\":" << row.sat_s
         << ",\"cegar_rounds\":" << row.cegar_rounds
         << ",\"care_minterms\":" << row.care_minterms
         << ",\"conflicts\":" << row.conflicts
         << ",\"propagations\":" << row.propagations
         << ",\"exhaustive_refused\":" << (row.wall_hit ? "true" : "false")
         << "}";
  }
  file << "]}" << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  return ok ? 0 : 1;
}
