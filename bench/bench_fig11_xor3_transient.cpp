// Fig. 11 reproduction: SPICE transient analysis of the inverse of the XOR3
// gate — the 3x3 lattice of Fig. 3b as a pull-down network under a 500 kOhm
// pull-up at VDD = 1.2 V, 1 fF per switch terminal and a 10 fF output load.
// Reports the §V figures of merit: zero-state output voltage (paper 0.22 V),
// 10-90% rise time (paper ~11.3 ns) and fall time (paper ~4.7 ns), plus an
// electrical truth-table check across all eight input codes.
#include <cmath>
#include <cstdio>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/measure.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

int main() {
  using namespace ftl;
  using spice::Waveform;
  std::printf("== Fig. 11: transient analysis of the inverse XOR3 lattice"
              " ==\n\n");

  const auto lat = lattice::xor3_lattice_3x3();
  std::printf("lattice under test (Fig. 3b):\n%s\n", lat.to_string().c_str());

  // DC truth table first (circuit functionality).
  ftl::util::ConsoleTable truth({"a", "b", "c", "xor3", "Vout [V]", "logic ok"});
  bool all_ok = true;
  double zero_state = 0.0;
  for (int code = 0; code < 8; ++code) {
    std::map<int, Waveform> drives;
    for (int v = 0; v < 3; ++v) {
      drives[v] = Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
    }
    bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
    const spice::OpResult op = spice::dc_operating_point(lc.circuit);
    const double out =
        op.solution[static_cast<std::size_t>(lc.circuit.find_node("out"))];
    const bool xor3 = (((code >> 0) ^ (code >> 1) ^ (code >> 2)) & 1) != 0;
    const bool ok = xor3 ? out < 0.4 : out > 1.0;
    all_ok = all_ok && ok && op.converged;
    if (xor3) zero_state = std::max(zero_state, out);
    char vout[32];
    std::snprintf(vout, sizeof vout, "%.4f", out);
    truth.add_row({std::to_string(code & 1), std::to_string((code >> 1) & 1),
                   std::to_string((code >> 2) & 1), xor3 ? "1" : "0", vout,
                   ok ? "yes" : "NO"});
  }
  std::printf("%s\n", truth.render().c_str());

  // Transient: walk the inputs through all codes with binary-weighted
  // periods, as in the paper's stimulus.
  const double period = 40e-9;
  std::map<int, Waveform> drives;
  for (int v = 0; v < 3; ++v) {
    const double p = period * static_cast<double>(2 << v);
    drives[v] = Waveform::pulse(0.0, 1.2, p / 2.0, 1e-9, 1e-9, p / 2.0 - 1e-9, p);
  }
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
  spice::TransientOptions topt;
  topt.tstop = 8 * period;
  topt.dt = 0.2e-9;
  topt.record_nodes = {"out"};
  const spice::TransientResult tr = spice::transient(lc.circuit, topt);

  ftl::util::CsvWriter csv("fig11_xor3_transient.csv");
  csv.write_header({"t", "vout"});
  for (std::size_t i = 0; i < tr.time().size(); ++i) {
    csv.write_row(std::vector<double>{tr.time()[i], tr.signal("out")[i]});
  }

  const auto rise = spice::rise_time(tr.time(), tr.signal("out"), zero_state, 1.2);
  const auto fall = spice::fall_time(tr.time(), tr.signal("out"), zero_state, 1.2);

  ftl::util::ConsoleTable metrics({"metric", "paper", "measured"});
  metrics.add_row({"zero-state output", "0.22 V",
                   ftl::util::format_si(zero_state, 3, "V")});
  metrics.add_row({"rise time (10-90%)", "11.3 ns",
                   rise ? ftl::util::format_si(*rise, 3, "s") : "n/a"});
  metrics.add_row({"fall time (90-10%)", "4.7 ns",
                   fall ? ftl::util::format_si(*fall, 3, "s") : "n/a"});
  metrics.add_row({"truth table (8 codes)", "correct", all_ok ? "correct" : "BROKEN"});
  std::printf("%s\n", metrics.render().c_str());
  std::printf("waveform: %zu points dumped to fig11_xor3_transient.csv\n",
              tr.time().size());
  return all_ok && rise && fall ? 0 : 1;
}
