// A miniature SPICE front-end: read a netlist file (or the built-in demo),
// run its .tran or .dc directive, and print results — demonstrating that the
// simulator stands alone as a general tool.
//
// Usage: netlist_runner [file.sp] [node_to_print ...]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ftl/check/netlist.hpp"
#include "ftl/linalg/matrix.hpp"
#include "ftl/spice/dcsweep.hpp"
#include "ftl/spice/netlist_parser.hpp"
#include "ftl/util/error.hpp"
#include "ftl/spice/transient.hpp"

namespace {

constexpr const char* kDemoDeck = R"(four-terminal switch demo (built-in)
VDD vdd 0 1.2
RPU vdd out 500k
CL  out 0 10f
M1  out g 0 0 FTSW W=0.7u L=0.35u
VIN g 0 PULSE(0 1.2 20n 1n 1n 60n 160n)
.model FTSW NMOS (KP=25u VTO=0.045 LAMBDA=0.028)
.tran 0.5n 160n
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ftl::spice;

  std::string text = kDemoDeck;
  std::vector<std::string> nodes;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    for (int i = 2; i < argc; ++i) nodes.emplace_back(argv[i]);
  } else {
    nodes = {"out", "g"};
  }

  ParsedNetlist parsed;
  try {
    parsed = parse_netlist(text);
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  if (!parsed.title.empty()) std::printf("* %s\n", parsed.title.c_str());

  // Static checks run once before the first Newton solve; a deck with
  // errors (floating nodes, source loops, singular pattern) aborts with the
  // full diagnostic report instead of a Newton convergence failure.
  ftl::check::install_presolve_gate(parsed.circuit);

  try {
    if (parsed.tran) {
      TransientOptions options = *parsed.tran;
      options.record_nodes = nodes;
      const TransientResult tr = transient(parsed.circuit, options);
      std::printf("t");
      for (const auto& n : nodes) std::printf("\tV(%s)", n.c_str());
      std::printf("\n");
      const std::size_t stride = std::max<std::size_t>(tr.size() / 40, 1);
      for (std::size_t i = 0; i < tr.size(); i += stride) {
        std::printf("%.4e", tr.time()[i]);
        for (const auto& n : nodes) std::printf("\t%.5f", tr.signal(n)[i]);
        std::printf("\n");
      }
    } else if (parsed.dc) {
      ftl::linalg::Vector values;
      for (double v = parsed.dc->start; v <= parsed.dc->stop + 1e-12;
           v += parsed.dc->step) {
        values.push_back(v);
      }
      const DcSweepResult sweep = dc_sweep(parsed.circuit, parsed.dc->source, values);
      std::printf("%s", parsed.dc->source.c_str());
      for (const auto& n : nodes) std::printf("\tV(%s)", n.c_str());
      std::printf("\n");
      for (std::size_t i = 0; i < values.size(); ++i) {
        std::printf("%.4f", values[i]);
        for (const auto& n : nodes) {
          const int idx = parsed.circuit.find_node(n);
          std::printf("\t%.5f",
                      idx < 0 ? 0.0 : sweep.solutions[i][static_cast<std::size_t>(idx)]);
        }
        std::printf("\n");
      }
    } else {
      const OpResult op = dc_operating_point(parsed.circuit);
      std::printf("DC operating point (%d Newton iterations):\n", op.iterations);
      for (int i = 0; i < parsed.circuit.node_count(); ++i) {
        std::printf("  V(%s) = %.6f\n", parsed.circuit.node_name(i).c_str(),
                    op.solution[static_cast<std::size_t>(i)]);
      }
    }
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "simulation error: %s\n", e.what());
    return 1;
  }
  return 0;
}
