// ftl_lattice_lib — build, inspect, and query an on-disk NPN lattice
// library (the store behind the serve daemon's --library-dir flag).
//
//   ftl_lattice_lib build  LIB_DIR [--sat] [--no-curated] [--seed S]
//   ftl_lattice_lib stats  LIB_DIR
//   ftl_lattice_lib verify LIB_DIR [--certify] [--sample N] [--conflicts C]
//   ftl_lattice_lib lookup LIB_DIR "a b + c d" [--vars a,b,c,d]
//
// `build` precomputes every 4-variable NPN class (plus the curated 5-6
// variable set) through the synthesis engines; `verify` re-checks every
// stored lattice against its class table and exits non-zero on any
// mismatch, so a library directory can be audited after manual edits or
// partial writes. With --certify, each audited entry is additionally proven
// correct by a DRAT-checked SAT equivalence AND shape-minimal by walking
// the precompute ladder with certified infeasibility at every smaller
// shape; entries that pass get their `certified` bit stamped into the
// on-disk record. Budget exhaustion leaves an entry unproven (not an
// error); a rejected proof is an error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ftl/check/equivalence.hpp"
#include "ftl/jobs/digest.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/library/npn.hpp"
#include "ftl/library/precompute.hpp"
#include "ftl/library/store.hpp"
#include "ftl/library/synthesize.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: ftl_lattice_lib <command> LIB_DIR [options]\n"
      "  build  LIB_DIR [--sat] [--no-curated] [--seed S] [--threads N]\n"
      "         precompute NPN classes into the library (idempotent)\n"
      "  stats  LIB_DIR\n"
      "         class/entry counts and per-engine provenance\n"
      "  verify LIB_DIR [--certify] [--sample N] [--conflicts C]\n"
      "         re-verify every stored lattice; exit 1 on any mismatch.\n"
      "         --certify: prove correctness (DRAT-checked SAT equivalence)\n"
      "         and shape-minimality per entry, stamping the certified bit;\n"
      "         --sample N certifies only the first N entries (key order)\n"
      "  lookup LIB_DIR EXPR [--vars a,b,c]\n"
      "         resolve EXPR through the library (no engine fallback)\n");
}

int cmd_build(ftl::library::LatticeLibrary& lib, int argc, char** argv) {
  ftl::library::PrecomputeOptions options;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sat") == 0) {
      options.effort = ftl::library::PrecomputeOptions::Effort::kSat;
    } else if (std::strcmp(argv[i], "--no-curated") == 0) {
      options.curated = false;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.max_threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "ftl_lattice_lib: unknown build option %s\n", argv[i]);
      return 2;
    }
  }
  const ftl::library::PrecomputeReport report =
      ftl::library::precompute(lib, options);
  std::printf("targets    %zu\npopulated  %zu\nimproved   %zu\nfailures   %zu\n",
              report.targets, report.populated, report.improved,
              report.failures);
  std::printf("classes    %zu\nentries    %zu\nwall       %.1f ms\n",
              lib.num_classes(), lib.num_entries(), report.total_ms);
  return report.failures == 0 ? 0 : 1;
}

int cmd_stats(ftl::library::LatticeLibrary& lib) {
  lib.load_all();
  std::size_t by_vars[7] = {};
  std::size_t cells = 0, entries = 0;
  std::vector<std::pair<std::string, std::size_t>> by_engine;
  const auto count_engine = [&](const std::string& engine) {
    for (auto& [name, n] : by_engine) {
      if (name == engine) {
        ++n;
        return;
      }
    }
    by_engine.emplace_back(engine, 1);
  };
  for (const auto& [key, cls] : lib.snapshot()) {
    ++by_vars[cls.canonical.num_vars() <= 6 ? cls.canonical.num_vars() : 6];
    for (const auto* slot : {&cls.direct, &cls.complement}) {
      if (!slot->has_value()) continue;
      ++entries;
      cells += static_cast<std::size_t>((*slot)->lattice.cell_count());
      count_engine((*slot)->engine);
    }
  }
  std::printf("classes  %zu\nentries  %zu\n", lib.num_classes(), entries);
  for (int n = 0; n <= 6; ++n) {
    if (by_vars[n] != 0) std::printf("  %d-var classes  %zu\n", n, by_vars[n]);
  }
  for (const auto& [engine, n] : by_engine) {
    std::printf("  engine %-12s %zu\n", engine.c_str(), n);
  }
  if (entries != 0) {
    std::printf("mean cells per entry  %.2f\n",
                static_cast<double>(cells) / static_cast<double>(entries));
  }
  return 0;
}

/// One entry's --certify audit: DRAT-checked SAT equivalence, then the
/// precompute shape ladder with certified infeasibility at every strictly
/// smaller shape. Outcomes are disjoint; exactly one counter is bumped.
struct CertifyTally {
  std::size_t stamped = 0;      ///< proven correct + minimal, bit written
  std::size_t unproven = 0;     ///< a budget ran out somewhere; no stamp
  std::size_t improvable = 0;   ///< a smaller shape realizes the class
  std::size_t proof_failures = 0;  ///< some UNSAT failed the DRAT checker
};

void certify_entry(ftl::library::LatticeLibrary& lib, std::uint64_t key,
                   bool complement, const ftl::library::LibraryEntry& entry,
                   const ftl::logic::TruthTable& want, std::int64_t conflicts,
                   CertifyTally& tally) {
  const char* phase = complement ? "complement" : "direct";
  // Correctness: the SAT miter, with every UNSAT answer checker-approved.
  const ftl::check::EquivalenceVerdict equivalence =
      ftl::check::verify_equivalence_sat(entry.lattice, want,
                                         /*certify=*/true);
  if (!equivalence.realizes || !equivalence.certified) {
    std::printf("PROOF-FAIL %s (%s): equivalence %s\n",
                ftl::jobs::digest_hex(key).c_str(), phase,
                equivalence.realizes ? "proof rejected by the DRAT checker"
                                     : "refuted by the SAT miter");
    ++tally.proof_failures;
    return;
  }
  // Minimality: every shape with fewer cells must be proven infeasible,
  // walking the same ladder the precompute pass minimizes along.
  bool proven = true;
  for (int cells = 1; cells < entry.lattice.cell_count() && proven; ++cells) {
    for (const auto& [rows, cols] : ftl::library::shapes_with_cells(cells)) {
      ftl::lattice::SatSynthesisOptions sat;
      sat.certify = true;
      sat.max_conflicts = conflicts;
      const ftl::lattice::SatSynthesisResult result =
          ftl::lattice::synth_sat(want, rows, cols, sat);
      if (result.lattice.has_value()) {
        std::printf("IMPROVABLE %s (%s): a %dx%d lattice realizes the class\n",
                    ftl::jobs::digest_hex(key).c_str(), phase, rows, cols);
        ++tally.improvable;
        return;
      }
      if (result.proven_infeasible) {
        if (!result.proof_valid) {
          std::printf(
              "PROOF-FAIL %s (%s): %dx%d infeasibility rejected by the DRAT "
              "checker\n",
              ftl::jobs::digest_hex(key).c_str(), phase, rows, cols);
          ++tally.proof_failures;
          return;
        }
      } else {
        proven = false;  // budget exhausted: minimality stays open
        break;
      }
    }
  }
  if (!proven) {
    ++tally.unproven;
    return;
  }
  lib.stamp_certified(key, complement, true);
  ++tally.stamped;
}

int cmd_verify(ftl::library::LatticeLibrary& lib, int argc, char** argv) {
  bool certify = false;
  std::size_t sample = 0;
  std::int64_t conflicts = 50'000;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--certify") == 0) {
      certify = true;
    } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
      sample = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--conflicts") == 0 && i + 1 < argc) {
      conflicts = static_cast<std::int64_t>(
          std::strtoll(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "ftl_lattice_lib: unknown verify option %s\n",
                   argv[i]);
      return 2;
    }
  }
  lib.load_all();
  std::size_t checked = 0, bad = 0, audited = 0;
  CertifyTally tally;
  for (const auto& [key, cls] : lib.snapshot()) {
    if (ftl::library::npn_key(cls.canonical) != key) {
      std::printf("BAD %s: key does not match stored canonical table\n",
                  ftl::jobs::digest_hex(key).c_str());
      ++bad;
      continue;
    }
    for (const bool complement : {false, true}) {
      const auto& slot = complement ? cls.complement : cls.direct;
      if (!slot) continue;
      ++checked;
      const ftl::logic::TruthTable want =
          complement ? ~cls.canonical : cls.canonical;
      if (!ftl::lattice::realizes(slot->lattice, want)) {
        std::printf("BAD %s (%s): stored lattice does not realize the class\n",
                    ftl::jobs::digest_hex(key).c_str(),
                    complement ? "complement" : "direct");
        ++bad;
        continue;
      }
      if (!certify || cls.canonical.num_vars() < 1) continue;
      if (sample != 0 && audited >= sample) continue;
      ++audited;
      certify_entry(lib, key, complement, *slot, want, conflicts, tally);
    }
  }
  std::printf("verified %zu entries, %zu bad\n", checked, bad);
  if (certify) {
    std::printf(
        "certified %zu of %zu audited (%zu unproven by budget, %zu "
        "improvable, %zu proof failures)\n",
        tally.stamped, audited, tally.unproven, tally.improvable,
        tally.proof_failures);
  }
  return bad == 0 && tally.proof_failures == 0 ? 0 : 1;
}

int cmd_lookup(ftl::library::LatticeLibrary& lib, const std::string& expr,
               int argc, char** argv) {
  std::vector<std::string> vars;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vars") == 0 && i + 1 < argc) {
      vars = ftl::util::split(argv[++i], ",");
    } else {
      std::fprintf(stderr, "ftl_lattice_lib: unknown lookup option %s\n",
                   argv[i]);
      return 2;
    }
  }
  const ftl::logic::ParsedFunction parsed =
      ftl::logic::parse_expression(expr, vars);
  const ftl::library::NpnCanonical canon =
      ftl::library::canonicalize(parsed.table);
  std::printf("npn_class %s\n",
              ftl::jobs::digest_hex(ftl::library::npn_key(canon.canonical))
                  .c_str());
  const auto hit =
      ftl::library::lookup_only(lib, parsed.table, parsed.var_names);
  if (!hit) {
    std::printf("miss (class not in library)\n");
    return 1;
  }
  std::printf("hit: %dx%d\n%s", hit->rows(), hit->cols(),
              hit->to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    ftl::library::LatticeLibrary lib((std::string(argv[2])));
    if (command == "build") return cmd_build(lib, argc - 3, argv + 3);
    if (command == "stats") return cmd_stats(lib);
    if (command == "verify") return cmd_verify(lib, argc - 3, argv + 3);
    if (command == "lookup") {
      if (argc < 4) {
        std::fprintf(stderr, "ftl_lattice_lib: lookup needs an expression\n");
        return 2;
      }
      return cmd_lookup(lib, argv[3], argc - 4, argv + 4);
    }
    std::fprintf(stderr, "ftl_lattice_lib: unknown command '%s'\n",
                 command.c_str());
    print_usage();
    return 2;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "ftl_lattice_lib: %s\n", e.what());
    return 1;
  }
}
