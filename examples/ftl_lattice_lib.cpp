// ftl_lattice_lib — build, inspect, and query an on-disk NPN lattice
// library (the store behind the serve daemon's --library-dir flag).
//
//   ftl_lattice_lib build  LIB_DIR [--sat] [--no-curated] [--seed S]
//   ftl_lattice_lib stats  LIB_DIR
//   ftl_lattice_lib verify LIB_DIR
//   ftl_lattice_lib lookup LIB_DIR "a b + c d" [--vars a,b,c,d]
//
// `build` precomputes every 4-variable NPN class (plus the curated 5-6
// variable set) through the synthesis engines; `verify` re-checks every
// stored lattice against its class table and exits non-zero on any
// mismatch, so a library directory can be audited after manual edits or
// partial writes.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ftl/jobs/digest.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/library/npn.hpp"
#include "ftl/library/precompute.hpp"
#include "ftl/library/store.hpp"
#include "ftl/library/synthesize.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: ftl_lattice_lib <command> LIB_DIR [options]\n"
      "  build  LIB_DIR [--sat] [--no-curated] [--seed S] [--threads N]\n"
      "         precompute NPN classes into the library (idempotent)\n"
      "  stats  LIB_DIR\n"
      "         class/entry counts and per-engine provenance\n"
      "  verify LIB_DIR\n"
      "         re-verify every stored lattice; exit 1 on any mismatch\n"
      "  lookup LIB_DIR EXPR [--vars a,b,c]\n"
      "         resolve EXPR through the library (no engine fallback)\n");
}

int cmd_build(ftl::library::LatticeLibrary& lib, int argc, char** argv) {
  ftl::library::PrecomputeOptions options;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sat") == 0) {
      options.effort = ftl::library::PrecomputeOptions::Effort::kSat;
    } else if (std::strcmp(argv[i], "--no-curated") == 0) {
      options.curated = false;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.max_threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "ftl_lattice_lib: unknown build option %s\n", argv[i]);
      return 2;
    }
  }
  const ftl::library::PrecomputeReport report =
      ftl::library::precompute(lib, options);
  std::printf("targets    %zu\npopulated  %zu\nimproved   %zu\nfailures   %zu\n",
              report.targets, report.populated, report.improved,
              report.failures);
  std::printf("classes    %zu\nentries    %zu\nwall       %.1f ms\n",
              lib.num_classes(), lib.num_entries(), report.total_ms);
  return report.failures == 0 ? 0 : 1;
}

int cmd_stats(ftl::library::LatticeLibrary& lib) {
  lib.load_all();
  std::size_t by_vars[7] = {};
  std::size_t cells = 0, entries = 0;
  std::vector<std::pair<std::string, std::size_t>> by_engine;
  const auto count_engine = [&](const std::string& engine) {
    for (auto& [name, n] : by_engine) {
      if (name == engine) {
        ++n;
        return;
      }
    }
    by_engine.emplace_back(engine, 1);
  };
  for (const auto& [key, cls] : lib.snapshot()) {
    ++by_vars[cls.canonical.num_vars() <= 6 ? cls.canonical.num_vars() : 6];
    for (const auto* slot : {&cls.direct, &cls.complement}) {
      if (!slot->has_value()) continue;
      ++entries;
      cells += static_cast<std::size_t>((*slot)->lattice.cell_count());
      count_engine((*slot)->engine);
    }
  }
  std::printf("classes  %zu\nentries  %zu\n", lib.num_classes(), entries);
  for (int n = 0; n <= 6; ++n) {
    if (by_vars[n] != 0) std::printf("  %d-var classes  %zu\n", n, by_vars[n]);
  }
  for (const auto& [engine, n] : by_engine) {
    std::printf("  engine %-12s %zu\n", engine.c_str(), n);
  }
  if (entries != 0) {
    std::printf("mean cells per entry  %.2f\n",
                static_cast<double>(cells) / static_cast<double>(entries));
  }
  return 0;
}

int cmd_verify(ftl::library::LatticeLibrary& lib) {
  lib.load_all();
  std::size_t checked = 0, bad = 0;
  for (const auto& [key, cls] : lib.snapshot()) {
    if (ftl::library::npn_key(cls.canonical) != key) {
      std::printf("BAD %s: key does not match stored canonical table\n",
                  ftl::jobs::digest_hex(key).c_str());
      ++bad;
      continue;
    }
    for (const bool complement : {false, true}) {
      const auto& slot = complement ? cls.complement : cls.direct;
      if (!slot) continue;
      ++checked;
      const ftl::logic::TruthTable want =
          complement ? ~cls.canonical : cls.canonical;
      if (!ftl::lattice::realizes(slot->lattice, want)) {
        std::printf("BAD %s (%s): stored lattice does not realize the class\n",
                    ftl::jobs::digest_hex(key).c_str(),
                    complement ? "complement" : "direct");
        ++bad;
      }
    }
  }
  std::printf("verified %zu entries, %zu bad\n", checked, bad);
  return bad == 0 ? 0 : 1;
}

int cmd_lookup(ftl::library::LatticeLibrary& lib, const std::string& expr,
               int argc, char** argv) {
  std::vector<std::string> vars;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vars") == 0 && i + 1 < argc) {
      vars = ftl::util::split(argv[++i], ",");
    } else {
      std::fprintf(stderr, "ftl_lattice_lib: unknown lookup option %s\n",
                   argv[i]);
      return 2;
    }
  }
  const ftl::logic::ParsedFunction parsed =
      ftl::logic::parse_expression(expr, vars);
  const ftl::library::NpnCanonical canon =
      ftl::library::canonicalize(parsed.table);
  std::printf("npn_class %s\n",
              ftl::jobs::digest_hex(ftl::library::npn_key(canon.canonical))
                  .c_str());
  const auto hit =
      ftl::library::lookup_only(lib, parsed.table, parsed.var_names);
  if (!hit) {
    std::printf("miss (class not in library)\n");
    return 1;
  }
  std::printf("hit: %dx%d\n%s", hit->rows(), hit->cols(),
              hit->to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    ftl::library::LatticeLibrary lib((std::string(argv[2])));
    if (command == "build") return cmd_build(lib, argc - 3, argv + 3);
    if (command == "stats") return cmd_stats(lib);
    if (command == "verify") return cmd_verify(lib);
    if (command == "lookup") {
      if (argc < 4) {
        std::fprintf(stderr, "ftl_lattice_lib: lookup needs an expression\n");
        return 2;
      }
      return cmd_lookup(lib, argv[3], argc - 4, argv + 4);
    }
    std::fprintf(stderr, "ftl_lattice_lib: unknown command '%s'\n",
                 command.c_str());
    print_usage();
    return 2;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "ftl_lattice_lib: %s\n", e.what());
    return 1;
  }
}
