// Quickstart: the fourterm library in five steps.
//   1. Describe a Boolean function.
//   2. Synthesize it onto a four-terminal switching lattice.
//   3. Inspect the lattice function it realizes.
//   4. Generate the SPICE test bench of §V around it.
//   5. Check its electrical truth table with the built-in simulator.
#include <cstdio>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/spice/dcop.hpp"

int main() {
  using namespace ftl;

  // 1. A function: 2-of-3 majority.
  const auto parsed = logic::parse_expression("a b + b c + a c");
  std::printf("function: a b + b c + a c (%llu of 8 minterms)\n",
              static_cast<unsigned long long>(parsed.table.count_ones()));

  // 2. Dual-based Altun-Riedel synthesis.
  const lattice::Lattice lat =
      lattice::altun_riedel_synthesis(parsed.table, parsed.var_names);
  std::printf("\nsynthesized %dx%d lattice:\n%s\n", lat.rows(), lat.cols(),
              lat.to_string().c_str());

  // 3. Derive the realized function back symbolically and verify.
  const logic::Sop realized = lattice::realized_sop(lat);
  std::printf("realized function: %s\n", realized.to_string(lat.var_names()).c_str());
  std::printf("matches the target: %s\n\n",
              lattice::realizes(lat, parsed.table) ? "yes" : "NO");

  // 4 + 5. Electrical check: build the pull-up bench and test all codes.
  std::printf("electrical truth table (VDD=1.2V, 500k pull-up, inverted"
              " output):\n");
  for (std::uint64_t code = 0; code < parsed.table.num_minterms(); ++code) {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < parsed.table.num_vars(); ++v) {
      drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
    }
    bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);
    const spice::OpResult op = spice::dc_operating_point(lc.circuit);
    const double out =
        op.solution[static_cast<std::size_t>(lc.circuit.find_node("out"))];
    std::printf("  abc=%d%d%d  f=%d  Vout=%.3f V\n",
                static_cast<int>(code & 1), static_cast<int>((code >> 1) & 1),
                static_cast<int>((code >> 2) & 1),
                parsed.table.get(code) ? 1 : 0, out);
  }
  return 0;
}
