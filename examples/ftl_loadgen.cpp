// ftl_loadgen — concurrent load generator for a running ftl_serve.
//
//   ftl_loadgen --port 7440 --connections 8 --requests 10000
//   ftl_loadgen --port 7440 --mix eval --expr "a b + b c + a c" --json out.json
//   ftl_loadgen --endpoints 127.0.0.1:7440,127.0.0.1:7441 --pipeline 64
//
// Each connection keeps up to --pipeline requests in flight on one socket;
// with --endpoints, the mix is partitioned across serve processes by
// consistent hashing so each process keeps its cache slice warm. The tool
// reports aggregate throughput, exact latency percentiles, and the
// server-side cache hit rate, optionally as a JSON file for benchmark
// harnesses.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <string>

#include "ftl/library/npn.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/serve/json.hpp"
#include "ftl/serve/loadgen.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: ftl_loadgen [options]\n"
      "  --host H         server host (default 127.0.0.1)\n"
      "  --port P         server port (default 7440)\n"
      "  --endpoints L    comma-separated host:port list; requests are routed\n"
      "                   by consistent hashing (overrides --host/--port)\n"
      "  --connections N  concurrent connections (default 4)\n"
      "  --requests N     total requests (default 1000)\n"
      "  --pipeline D     max in-flight requests per connection (default 1)\n"
      "  --mix OPS        comma-separated ops to cycle: ping,eval,synth,paths\n"
      "                   (default eval,synth)\n"
      "  --expr E         target function for eval/synth requests\n"
      "                   (default \"a b + b c + a c\")\n"
      "  --npn N          append N NPN-transformed synth requests (random\n"
      "                   input permutations/negations of --expr, with the\n"
      "                   variable order pinned) — every one is a distinct\n"
      "                   request line, but all land in one NPN class, so a\n"
      "                   library-enabled server answers them without search\n"
      "  --seed S         RNG seed for --npn (default 1)\n"
      "  --json F         also write the report as JSON to F\n");
}

/// N distinct-looking synth requests that are all the same function up to
/// input permutation/negation and output negation. "vars" is pinned to the
/// base expression's order: the expression parser numbers variables by
/// first appearance, which would silently undo a permutation if the server
/// were left to infer the order from the transformed expression.
std::vector<std::string> npn_requests(const std::string& base_expr,
                                      std::size_t count, std::uint64_t seed) {
  using ftl::serve::JsonValue;
  const ftl::logic::ParsedFunction parsed =
      ftl::logic::parse_expression(base_expr);
  const int n = parsed.table.num_vars();
  std::mt19937_64 rng(seed);
  std::vector<std::string> out;
  for (std::size_t i = 0; i < count; ++i) {
    ftl::library::NpnTransform t;
    t.num_vars = n;
    for (int j = n - 1; j > 0; --j) {
      std::swap(t.perm[j],
                t.perm[std::uniform_int_distribution<int>(0, j)(rng)]);
    }
    t.input_negations =
        static_cast<std::uint32_t>(rng() & ((1u << n) - 1u));
    t.output_negation = (rng() & 1u) != 0;
    const ftl::logic::TruthTable transformed =
        ftl::library::apply_npn(parsed.table, t);
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::str("synth"));
    req.set("expr", JsonValue::str(
                        ftl::logic::isop(transformed).to_string(parsed.var_names)));
    JsonValue vars = JsonValue::array();
    for (const std::string& name : parsed.var_names) {
      vars.push(JsonValue::str(name));
    }
    req.set("vars", std::move(vars));
    out.push_back(req.dump());
  }
  return out;
}

long parse_flag(const char* flag, const char* value, long min_value,
                long max_value) {
  const std::optional<long> parsed =
      ftl::util::parse_long_in(value, min_value, max_value);
  if (!parsed) {
    std::fprintf(stderr,
                 "ftl_loadgen: %s needs an integer in [%ld, %ld], got '%s'\n",
                 flag, min_value, max_value, value);
    std::exit(2);
  }
  return *parsed;
}

std::string request_for(const std::string& op, const std::string& expr) {
  using ftl::serve::JsonValue;
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str(op));
  if (op == "eval" || op == "synth") {
    req.set("expr", JsonValue::str(expr));
  } else if (op == "paths") {
    req.set("rows", JsonValue::number(4));
    req.set("cols", JsonValue::number(4));
  }
  return req.dump();
}

}  // namespace

int main(int argc, char** argv) {
  ftl::serve::LoadgenOptions options;
  options.port = 7440;
  std::string mix = "eval,synth";
  std::string expr = "a b + b c + a c";
  std::string json_path;
  std::size_t npn_count = 0;
  std::uint64_t npn_seed = 1;

  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "ftl_loadgen: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage();
      return 0;
    } else if (std::strcmp(arg, "--host") == 0) {
      options.host = next_arg(i);
    } else if (std::strcmp(arg, "--port") == 0) {
      options.port =
          static_cast<int>(parse_flag("--port", next_arg(i), 1, 65535));
    } else if (std::strcmp(arg, "--endpoints") == 0) {
      for (const std::string& spec : ftl::util::split(next_arg(i), ",")) {
        options.endpoints.push_back(spec);
      }
    } else if (std::strcmp(arg, "--connections") == 0) {
      options.connections = static_cast<std::size_t>(
          parse_flag("--connections", next_arg(i), 1, 1024));
    } else if (std::strcmp(arg, "--requests") == 0) {
      options.requests = static_cast<std::size_t>(
          parse_flag("--requests", next_arg(i), 1, 100000000));
    } else if (std::strcmp(arg, "--pipeline") == 0) {
      options.pipeline = static_cast<std::size_t>(
          parse_flag("--pipeline", next_arg(i), 1, 4096));
    } else if (std::strcmp(arg, "--mix") == 0) {
      mix = next_arg(i);
    } else if (std::strcmp(arg, "--expr") == 0) {
      expr = next_arg(i);
    } else if (std::strcmp(arg, "--npn") == 0) {
      npn_count = static_cast<std::size_t>(
          parse_flag("--npn", next_arg(i), 1, 1000000));
    } else if (std::strcmp(arg, "--seed") == 0) {
      npn_seed = static_cast<std::uint64_t>(
          parse_flag("--seed", next_arg(i), 0, 1L << 62));
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = next_arg(i);
    } else {
      std::fprintf(stderr, "ftl_loadgen: unknown option %s\n", arg);
      print_usage();
      return 2;
    }
  }

  try {
    if (npn_count == 0) {
      for (const std::string& op : ftl::util::split(mix, ",")) {
        options.mix.push_back(request_for(op, expr));
      }
    } else {
      // --npn replaces the op mix: the whole run is permuted/negated synth
      // variants of --expr, the workload the server's NPN library turns
      // into pure relabeling hits.
      options.mix = npn_requests(expr, npn_count, npn_seed);
    }
    const ftl::serve::LoadgenReport report = ftl::serve::run_loadgen(options);
    std::printf("%s", report.to_string().c_str());
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "ftl_loadgen: cannot write %s\n", json_path.c_str());
        return 1;
      }
      out << report.to_json().dump() << '\n';
    }
    return report.errors == 0 ? 0 : 1;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "ftl_loadgen: %s\n", e.what());
    return 1;
  }
}
