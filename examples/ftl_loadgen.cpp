// ftl_loadgen — concurrent load generator for a running ftl_serve.
//
//   ftl_loadgen --port 7440 --connections 8 --requests 10000
//   ftl_loadgen --port 7440 --mix eval --expr "a b + b c + a c" --json out.json
//   ftl_loadgen --endpoints 127.0.0.1:7440,127.0.0.1:7441 --pipeline 64
//
// Each connection keeps up to --pipeline requests in flight on one socket;
// with --endpoints, the mix is partitioned across serve processes by
// consistent hashing so each process keeps its cache slice warm. The tool
// reports aggregate throughput, exact latency percentiles, and the
// server-side cache hit rate, optionally as a JSON file for benchmark
// harnesses.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "ftl/serve/json.hpp"
#include "ftl/serve/loadgen.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: ftl_loadgen [options]\n"
      "  --host H         server host (default 127.0.0.1)\n"
      "  --port P         server port (default 7440)\n"
      "  --endpoints L    comma-separated host:port list; requests are routed\n"
      "                   by consistent hashing (overrides --host/--port)\n"
      "  --connections N  concurrent connections (default 4)\n"
      "  --requests N     total requests (default 1000)\n"
      "  --pipeline D     max in-flight requests per connection (default 1)\n"
      "  --mix OPS        comma-separated ops to cycle: ping,eval,synth,paths\n"
      "                   (default eval,synth)\n"
      "  --expr E         target function for eval/synth requests\n"
      "                   (default \"a b + b c + a c\")\n"
      "  --json F         also write the report as JSON to F\n");
}

long parse_flag(const char* flag, const char* value, long min_value,
                long max_value) {
  const std::optional<long> parsed =
      ftl::util::parse_long_in(value, min_value, max_value);
  if (!parsed) {
    std::fprintf(stderr,
                 "ftl_loadgen: %s needs an integer in [%ld, %ld], got '%s'\n",
                 flag, min_value, max_value, value);
    std::exit(2);
  }
  return *parsed;
}

std::string request_for(const std::string& op, const std::string& expr) {
  using ftl::serve::JsonValue;
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str(op));
  if (op == "eval" || op == "synth") {
    req.set("expr", JsonValue::str(expr));
  } else if (op == "paths") {
    req.set("rows", JsonValue::number(4));
    req.set("cols", JsonValue::number(4));
  }
  return req.dump();
}

}  // namespace

int main(int argc, char** argv) {
  ftl::serve::LoadgenOptions options;
  options.port = 7440;
  std::string mix = "eval,synth";
  std::string expr = "a b + b c + a c";
  std::string json_path;

  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "ftl_loadgen: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage();
      return 0;
    } else if (std::strcmp(arg, "--host") == 0) {
      options.host = next_arg(i);
    } else if (std::strcmp(arg, "--port") == 0) {
      options.port =
          static_cast<int>(parse_flag("--port", next_arg(i), 1, 65535));
    } else if (std::strcmp(arg, "--endpoints") == 0) {
      for (const std::string& spec : ftl::util::split(next_arg(i), ",")) {
        options.endpoints.push_back(spec);
      }
    } else if (std::strcmp(arg, "--connections") == 0) {
      options.connections = static_cast<std::size_t>(
          parse_flag("--connections", next_arg(i), 1, 1024));
    } else if (std::strcmp(arg, "--requests") == 0) {
      options.requests = static_cast<std::size_t>(
          parse_flag("--requests", next_arg(i), 1, 100000000));
    } else if (std::strcmp(arg, "--pipeline") == 0) {
      options.pipeline = static_cast<std::size_t>(
          parse_flag("--pipeline", next_arg(i), 1, 4096));
    } else if (std::strcmp(arg, "--mix") == 0) {
      mix = next_arg(i);
    } else if (std::strcmp(arg, "--expr") == 0) {
      expr = next_arg(i);
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = next_arg(i);
    } else {
      std::fprintf(stderr, "ftl_loadgen: unknown option %s\n", arg);
      print_usage();
      return 2;
    }
  }

  for (const std::string& op : ftl::util::split(mix, ",")) {
    options.mix.push_back(request_for(op, expr));
  }

  try {
    const ftl::serve::LoadgenReport report = ftl::serve::run_loadgen(options);
    std::printf("%s", report.to_string().c_str());
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "ftl_loadgen: cannot write %s\n", json_path.c_str());
        return 1;
      }
      out << report.to_json().dump() << '\n';
    }
    return report.errors == 0 ? 0 : 1;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "ftl_loadgen: %s\n", e.what());
    return 1;
  }
}
