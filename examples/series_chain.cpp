// Drive-capability exploration (the Fig. 12 experiments, parameterized):
// sweep chain length and supply voltage from the command line.
//
// Usage: series_chain [max_switches] [vdd]
#include <cstdio>
#include <cstdlib>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/util/units.hpp"

int main(int argc, char** argv) {
  using namespace ftl;

  int max_switches = 21;
  double vdd = 1.2;
  if (argc > 1) max_switches = std::atoi(argv[1]);
  if (argc > 2) vdd = std::atof(argv[2]);
  if (max_switches < 1 || vdd <= 0.0) {
    std::fprintf(stderr, "usage: series_chain [max_switches>=1] [vdd>0]\n");
    return 1;
  }

  std::printf("chain current at VDD = %s (gates at VDD):\n",
              util::format_si(vdd, 3, "V").c_str());
  std::printf("  N    I [A]        N*I [A] (flat when I ~ 1/N)\n");
  double i1 = 0.0;
  for (int n = 1; n <= max_switches; ++n) {
    const double i = bridge::chain_current(n, vdd, vdd);
    if (n == 1) i1 = i;
    std::printf("  %-4d %-12.4e %-12.4e\n", n, i, n * i);
  }

  const double target = bridge::chain_current(2, vdd, vdd);
  std::printf("\nvoltage required for the 2-switch current (%s):\n",
              util::format_si(target, 3, "A").c_str());
  std::printf("  N    V [V]\n");
  for (int n = 1; n <= max_switches; n += (n < 5 ? 1 : 4)) {
    std::printf("  %-4d %.3f\n", n, bridge::voltage_for_current(n, target));
  }

  std::printf("\nsingle-switch ON resistance at this drive: %s\n",
              util::format_si(vdd / i1, 3, "Ohm").c_str());
  return 0;
}
