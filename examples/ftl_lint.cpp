// ftl_lint — static diagnostics for netlists and lattice mappings.
//
//   ftl_lint deck.cir                  lint SPICE decks (N/P rules)
//   ftl_lint --lattice mapping.json    lint a lattice spec (+ equivalence
//                                      when the spec carries a target)
//   ftl_lint --format json deck.cir    canonical single-line JSON per file
//   ftl_lint -                         read one netlist from stdin
//
// Exit code: 0 = clean, 1 = warnings only, 2 = errors. Notes never affect
// the exit code.
//
// Lattice spec files use the same JSON shape as the ftl_serve lattice ops:
//   {"rows":3,"cols":3,"vars":["a","b","c"],"cells":["a","b'",...],
//    "target":"a' b' c + a' b c' + a b' c' + a b c"}
// or {"expr":"a b + c d"} to synthesize-then-check (literals are
// space-separated: identifiers may be multi-character, so "ab" is one
// variable named ab, not a AND b).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ftl/check/equivalence.hpp"
#include "ftl/check/lattice.hpp"
#include "ftl/check/lattice_sat.hpp"
#include "ftl/check/netlist.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/serve/service.hpp"
#include "ftl/util/error.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: ftl_lint [options] <file|-> [more files...]\n"
      "  --lattice      inputs are lattice-spec JSON, not netlists\n"
      "  --equiv B      equivalence backend: 'auto' (default), 'bdd', 'sat'\n"
      "  --certify      (lattice mode) machine-check every UNSAT verdict\n"
      "                 with the embedded DRAT checker and run the certified\n"
      "                 SAT audits (FTL-L006/7/8); output gains a proof field\n"
      "  --format F     'text' (default) or 'json'\n"
      "  --quiet        suppress per-diagnostic output, keep exit code\n"
      "exit code: 0 clean, 1 warnings, 2 errors\n");
}

std::optional<std::string> read_input(const std::string& path) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ftl::check::Report lint_lattice_spec(const std::string& text,
                                     const ftl::check::EquivalenceOptions& equiv) {
  const ftl::serve::JsonValue spec = ftl::serve::JsonValue::parse(text);
  const ftl::serve::LatticeSpec parsed = ftl::serve::lattice_spec_from(spec);
  ftl::check::Report report = ftl::check::check_lattice(parsed.lat);
  if (equiv.certify) {
    ftl::check::LatticeSatAuditOptions audit;
    audit.certify = true;
    report.merge(ftl::check::audit_lattice_sat(parsed.lat, audit).report);
  }
  std::optional<ftl::logic::TruthTable> target = parsed.target;
  if (const ftl::serve::JsonValue* t = spec.find("target")) {
    target = ftl::logic::parse_expression(t->as_string(),
                                          parsed.lat.var_names())
                 .table;
  }
  if (target) {
    report.merge(ftl::check::check_equivalence(parsed.lat, *target, equiv));
  }
  return report;
}

bool has_rule(const ftl::check::Report& report, const char* rule) {
  for (const ftl::check::Diagnostic& d : report.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool lattice_mode = false;
  bool json_format = false;
  bool quiet = false;
  ftl::check::EquivalenceOptions equiv;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage();
      return 0;
    } else if (std::strcmp(arg, "--lattice") == 0) {
      lattice_mode = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--certify") == 0) {
      equiv.certify = true;
    } else if (std::strcmp(arg, "--equiv") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ftl_lint: --equiv needs a value\n");
        return 2;
      }
      const char* backend = argv[++i];
      if (std::strcmp(backend, "bdd") == 0) {
        equiv.backend = ftl::check::EquivalenceOptions::Backend::kBdd;
      } else if (std::strcmp(backend, "sat") == 0) {
        equiv.backend = ftl::check::EquivalenceOptions::Backend::kSat;
      } else if (std::strcmp(backend, "auto") != 0) {
        std::fprintf(stderr, "ftl_lint: unknown equiv backend '%s'\n", backend);
        return 2;
      }
    } else if (std::strcmp(arg, "--format") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ftl_lint: --format needs a value\n");
        return 2;
      }
      const char* fmt = argv[++i];
      if (std::strcmp(fmt, "json") == 0) {
        json_format = true;
      } else if (std::strcmp(fmt, "text") != 0) {
        std::fprintf(stderr, "ftl_lint: unknown format '%s'\n", fmt);
        return 2;
      }
    } else if (arg[0] == '-' && std::strcmp(arg, "-") != 0) {
      std::fprintf(stderr, "ftl_lint: unknown option %s\n", arg);
      print_usage();
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) {
    print_usage();
    return 2;
  }

  int exit_code = 0;
  for (const std::string& path : files) {
    const std::optional<std::string> text = read_input(path);
    if (!text) {
      std::fprintf(stderr, "ftl_lint: cannot open %s\n", path.c_str());
      return 2;
    }
    ftl::check::Report report;
    try {
      report = lattice_mode ? lint_lattice_spec(*text, equiv)
                            : ftl::check::lint_netlist(*text).report;
    } catch (const ftl::Error& e) {
      // Malformed spec JSON / expression — an input error, not a finding.
      std::fprintf(stderr, "ftl_lint: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    // Under --certify the output states the proof status explicitly: every
    // UNSAT behind the verdicts passed the embedded DRAT checker
    // ("checked") or at least one was rejected ("failed", FTL-E003).
    const bool proof_failed =
        equiv.certify && lattice_mode && has_rule(report, "FTL-E003");
    if (json_format) {
      std::string json = report.render_json();
      if (equiv.certify && lattice_mode) {
        json.insert(1, std::string("\"proof\":\"") +
                           (proof_failed ? "failed" : "checked") + "\",");
      }
      std::printf("%s\n", json.c_str());
    } else if (!quiet) {
      if (files.size() > 1) std::printf("== %s ==\n", path.c_str());
      std::printf("%s", report.render_text().c_str());
      if (equiv.certify && lattice_mode) {
        std::printf("proof: %s\n", proof_failed ? "failed" : "checked");
      }
    }
    if (!report.ok()) {
      exit_code = 2;
    } else if (!report.clean() && exit_code == 0) {
      exit_code = 1;
    }
  }
  return exit_code;
}
