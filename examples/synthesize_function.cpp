// Synthesize an arbitrary Boolean expression onto a switching lattice from
// the command line, optionally hunting for a smaller realization with the
// search engines.
//
// Usage: synthesize_function ["expression"] [--search] [--sat RxC]
//   expression  e.g. "a b' + c (a + b)"   (default: XOR3)
//   --search    also try exhaustive/local search for smaller lattices
//   --sat RxC   CEGAR SAT synthesis onto an RxC lattice (e.g. --sat 5x5),
//               the engine for sizes the exhaustive odometer cannot touch
//   --seed N    decision seed for the SAT search (default 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/util/error.hpp"

int main(int argc, char** argv) {
  using namespace ftl;

  std::string expression = "a b c + a b' c' + a' b c' + a' b' c";
  bool search = false;
  int sat_rows = 0;
  int sat_cols = 0;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--search") == 0) {
      search = true;
    } else if (std::strcmp(argv[i], "--sat") == 0 && i + 1 < argc) {
      if (std::sscanf(argv[++i], "%dx%d", &sat_rows, &sat_cols) != 2 ||
          sat_rows < 1 || sat_cols < 1 || sat_rows * sat_cols > 64) {
        std::fprintf(stderr, "error: --sat wants RxC with 1..64 cells\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      expression = argv[i];
    }
  }

  logic::ParsedFunction parsed;
  try {
    parsed = logic::parse_expression(expression);
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("expression: %s\n", expression.c_str());
  std::printf("ISOP: %s\n",
              logic::isop(parsed.table).to_string(parsed.var_names).c_str());
  std::printf("dual ISOP: %s\n\n",
              logic::isop_of_dual(parsed.table).to_string(parsed.var_names).c_str());

  if (sat_rows > 0) {
    lattice::SatSynthesisOptions options;
    options.seed = seed;
    const lattice::SatSynthesisResult result = lattice::synth_sat(
        parsed.table, sat_rows, sat_cols, options, parsed.var_names);
    if (result.lattice) {
      std::printf("SAT lattice (%dx%d, seed %llu):\n%s\n", sat_rows, sat_cols,
                  static_cast<unsigned long long>(result.seed),
                  result.lattice->to_string().c_str());
      std::printf("verified: %s\n",
                  lattice::realizes(*result.lattice, parsed.table) ? "yes"
                                                                   : "NO");
    } else if (result.proven_infeasible) {
      std::printf("UNSAT: no %dx%d lattice realizes this function.\n",
                  sat_rows, sat_cols);
    } else {
      std::printf("budget exhausted after %llu conflicts; raise it or "
                  "try another seed.\n",
                  static_cast<unsigned long long>(result.solver.conflicts));
    }
    std::printf(
        "CEGAR: %d rounds, %d care minterms; solver: %llu conflicts, "
        "%llu propagations, %llu restarts\n",
        result.cegar_rounds, result.care_minterms,
        static_cast<unsigned long long>(result.solver.conflicts),
        static_cast<unsigned long long>(result.solver.propagations),
        static_cast<unsigned long long>(result.solver.restarts));
    return result.lattice || result.proven_infeasible ? 0 : 1;
  }

  const lattice::Lattice lat =
      lattice::altun_riedel_synthesis(parsed.table, parsed.var_names);
  std::printf("Altun-Riedel lattice (%dx%d, %d switches):\n%s\n", lat.rows(),
              lat.cols(), lat.cell_count(), lat.to_string().c_str());
  std::printf("verified: %s\n",
              lattice::realizes(lat, parsed.table) ? "yes" : "NO");

  if (search && parsed.table.num_vars() <= 6) {
    std::printf("\nsearching for smaller lattices...\n");
    const int baseline = lat.cell_count();
    for (int cells = 1; cells < baseline; ++cells) {
      for (int rows = 1; rows <= cells; ++rows) {
        if (cells % rows != 0) continue;
        const int cols = cells / rows;
        std::optional<lattice::Lattice> found;
        lattice::SearchOptions options;
        if (cells <= 9) {
          found = lattice::exhaustive_synthesis(parsed.table, rows, cols,
                                                options, parsed.var_names);
        } else if (cells <= 20) {
          options.seed = 7;
          found = lattice::local_search_synthesis(parsed.table, rows, cols,
                                                  options, parsed.var_names);
        }
        if (found) {
          std::printf("found %dx%d (%d switches):\n%s\n", rows, cols, cells,
                      found->to_string().c_str());
          return 0;
        }
      }
    }
    std::printf("no smaller lattice found within the search budget.\n");
  }
  return 0;
}
