// Synthesize an arbitrary Boolean expression onto a switching lattice from
// the command line, optionally hunting for a smaller realization with the
// search engines.
//
// Usage: synthesize_function ["expression"] [--search]
//   expression  e.g. "a b' + c (a + b)"   (default: XOR3)
//   --search    also try exhaustive/local search for smaller lattices
#include <cstdio>
#include <cstring>
#include <string>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/util/error.hpp"

int main(int argc, char** argv) {
  using namespace ftl;

  std::string expression = "a b c + a b' c' + a' b c' + a' b' c";
  bool search = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--search") == 0) {
      search = true;
    } else {
      expression = argv[i];
    }
  }

  logic::ParsedFunction parsed;
  try {
    parsed = logic::parse_expression(expression);
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("expression: %s\n", expression.c_str());
  std::printf("ISOP: %s\n",
              logic::isop(parsed.table).to_string(parsed.var_names).c_str());
  std::printf("dual ISOP: %s\n\n",
              logic::isop_of_dual(parsed.table).to_string(parsed.var_names).c_str());

  const lattice::Lattice lat =
      lattice::altun_riedel_synthesis(parsed.table, parsed.var_names);
  std::printf("Altun-Riedel lattice (%dx%d, %d switches):\n%s\n", lat.rows(),
              lat.cols(), lat.cell_count(), lat.to_string().c_str());
  std::printf("verified: %s\n",
              lattice::realizes(lat, parsed.table) ? "yes" : "NO");

  if (search && parsed.table.num_vars() <= 6) {
    std::printf("\nsearching for smaller lattices...\n");
    const int baseline = lat.cell_count();
    for (int cells = 1; cells < baseline; ++cells) {
      for (int rows = 1; rows <= cells; ++rows) {
        if (cells % rows != 0) continue;
        const int cols = cells / rows;
        std::optional<lattice::Lattice> found;
        lattice::SearchOptions options;
        if (cells <= 9) {
          found = lattice::exhaustive_synthesis(parsed.table, rows, cols,
                                                options, parsed.var_names);
        } else if (cells <= 20) {
          options.seed = 7;
          found = lattice::local_search_synthesis(parsed.table, rows, cols,
                                                  options, parsed.var_names);
        }
        if (found) {
          std::printf("found %dx%d (%d switches):\n%s\n", rows, cols, cells,
                      found->to_string().c_str());
          return 0;
        }
      }
    }
    std::printf("no smaller lattice found within the search budget.\n");
  }
  return 0;
}
