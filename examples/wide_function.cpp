// Beyond the truth-table ceiling: synthesize a 32-variable function onto a
// lattice using the ROBDD engine — the workflow for functions no 2^n
// enumeration can touch — and show how the baseline construction's area
// scales with the function's OR-width.
#include <cmath>
#include <cstdio>

#include "ftl/lattice/synthesis.hpp"
#include "ftl/logic/bdd.hpp"

int main() {
  using namespace ftl;

  // f = "either half all-ones" over 32 inputs: two 16-literal products.
  // Its dual's ISOP has 16x16 = 256 products, so the Altun-Riedel lattice
  // is 256x2 — comfortably constructible even though no truth table of 32
  // variables can exist.
  const int n = 32;
  logic::BddManager mgr(n);
  logic::BddRef f = mgr.zero();
  for (int base = 0; base < n; base += 16) {
    logic::BddRef cluster = mgr.one();
    for (int v = base; v < base + 16; ++v) {
      cluster = mgr.land(cluster, mgr.variable(v));
    }
    f = mgr.lor(f, cluster);
  }
  std::printf("function: 32-variable either-half-all-ones detector\n");
  std::printf("BDD nodes: %zu, satisfying assignments: %.4g of 2^32\n",
              mgr.node_count(f), mgr.sat_count(f));

  const lattice::Lattice lat = lattice::altun_riedel_synthesis(mgr, f);
  std::printf("\nsynthesized lattice: %dx%d (%d four-terminal switches)\n",
              lat.rows(), lat.cols(), lat.cell_count());
  std::printf("(construction self-verified against the BDD on 4096 random"
              " assignments)\n");

  std::printf("\nspot checks:\n");
  std::printf("  all zeros     -> %d (expect 0)\n", lat.evaluate(0));
  std::printf("  low half 1s   -> %d (expect 1)\n", lat.evaluate(0xFFFFull));
  std::printf("  15 of 16 low  -> %d (expect 0)\n", lat.evaluate(0x7FFFull));
  std::printf("  high half 1s  -> %d (expect 1)\n",
              lat.evaluate(0xFFFF0000ull));
  std::printf("  all ones      -> %d (expect 1)\n", lat.evaluate(0xFFFFFFFFull));

  // Area scaling note: the baseline construction multiplies |ISOP(f)| by
  // |ISOP(f^D)|, which explodes for OR-rich functions — the reason the
  // paper's companion synthesis work ([2]-[4], [13]) hunts for smaller
  // realizations.
  std::printf("\nbaseline size if split into k all-ones clusters of 32/k"
              " inputs each:\n");
  for (int k : {2, 4, 8}) {
    const double dual_products = std::pow(32.0 / k, k);
    std::printf("  k=%d clusters -> %d x %.0f = %.0f switches\n", k, k,
                dual_products, k * dual_products);
  }
  return 0;
}
