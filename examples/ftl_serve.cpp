// ftl_serve — the lattice-evaluation daemon.
//
//   ftl_serve --port 7440 --workers 8 --queue-depth 128
//             --cache-dir .ftl-serve-cache --access-log access.jsonl
//
// Speaks one JSON object per line over TCP (see DESIGN.md §10):
//
//   echo '{"op":"synth","expr":"a b + b c + a c"}' | nc 127.0.0.1 7440
//
// SIGINT (or a client's {"op":"shutdown"}) triggers a graceful drain: stop
// accepting, finish in-flight requests, flush the access log, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <memory>
#include <optional>

#include "ftl/jobs/telemetry.hpp"
#include "ftl/serve/server.hpp"
#include "ftl/serve/service.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

namespace {

std::atomic<bool> g_interrupted{false};

void on_sigint(int) { g_interrupted.store(true); }

void print_usage() {
  std::printf(
      "usage: ftl_serve [options]\n"
      "  --port P        TCP port (default 7440; 0 = ephemeral, printed)\n"
      "  --event-loops N epoll event-loop threads (default 2)\n"
      "  --workers N     request worker threads (default 4)\n"
      "  --queue-depth N admission high-water mark (default 64)\n"
      "  --cache-dir D   on-disk response cache (default: memory only)\n"
      "  --library-dir D on-disk NPN lattice library (default: memory only)\n"
      "  --no-library    disable the NPN lattice library entirely\n"
      "  --access-log F  append per-request JSONL events to F\n");
}

long parse_flag(const char* flag, const char* value, long min_value,
                long max_value) {
  const std::optional<long> parsed =
      ftl::util::parse_long_in(value, min_value, max_value);
  if (!parsed) {
    std::fprintf(stderr,
                 "ftl_serve: %s needs an integer in [%ld, %ld], got '%s'\n",
                 flag, min_value, max_value, value);
    std::exit(2);
  }
  return *parsed;
}

}  // namespace

int main(int argc, char** argv) {
  ftl::serve::ServiceOptions service_options;
  ftl::serve::ServerOptions server_options;
  server_options.port = 7440;
  std::string access_log_path;

  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "ftl_serve: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage();
      return 0;
    } else if (std::strcmp(arg, "--port") == 0) {
      server_options.port =
          static_cast<int>(parse_flag("--port", next_arg(i), 0, 65535));
    } else if (std::strcmp(arg, "--event-loops") == 0) {
      server_options.event_loops = static_cast<std::size_t>(
          parse_flag("--event-loops", next_arg(i), 1, 64));
    } else if (std::strcmp(arg, "--workers") == 0) {
      service_options.workers = static_cast<std::size_t>(
          parse_flag("--workers", next_arg(i), 1, 1024));
    } else if (std::strcmp(arg, "--queue-depth") == 0) {
      service_options.queue_depth = static_cast<std::size_t>(
          parse_flag("--queue-depth", next_arg(i), 1, 1 << 20));
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      service_options.cache_dir = next_arg(i);
    } else if (std::strcmp(arg, "--library-dir") == 0) {
      service_options.library_dir = next_arg(i);
    } else if (std::strcmp(arg, "--no-library") == 0) {
      service_options.library = false;
    } else if (std::strcmp(arg, "--access-log") == 0) {
      access_log_path = next_arg(i);
    } else {
      std::fprintf(stderr, "ftl_serve: unknown option %s\n", arg);
      print_usage();
      return 2;
    }
  }

  try {
    std::unique_ptr<ftl::jobs::JsonlSink> access_log;
    if (!access_log_path.empty()) {
      access_log = std::make_unique<ftl::jobs::JsonlSink>(access_log_path);
      service_options.access_log = access_log.get();
    }

    ftl::serve::Service service(service_options);
    ftl::serve::Server server(service, server_options);

    struct sigaction sa{};
    sa.sa_handler = on_sigint;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    server.start();
    std::printf("ftl_serve: listening on 127.0.0.1:%d (%zu event loops, %zu workers, queue %zu%s%s)\n",
                server.port(), server_options.event_loops,
                service.options().workers, service.options().queue_depth,
                service_options.cache_dir.empty() ? "" : ", cache ",
                service_options.cache_dir.c_str());
    std::fflush(stdout);

    server.wait(&g_interrupted);
    std::printf("ftl_serve: draining (%zu in flight)\n", service.in_flight());
    server.stop();
    std::printf("ftl_serve: served %llu requests, bye\n",
                static_cast<unsigned long long>(service.stats().total_requests()));
    return 0;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "ftl_serve: %s\n", e.what());
    return 1;
  }
}
