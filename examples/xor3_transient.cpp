// The paper's §V experiment as a runnable example: simulate the inverse
// XOR3 lattice and print waveform metrics plus an ASCII oscillogram.
#include <algorithm>
#include <cstdio>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/spice/measure.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/units.hpp"

int main() {
  using namespace ftl;
  using spice::Waveform;

  const auto lat = lattice::xor3_lattice_3x3();
  std::printf("simulating the inverse XOR3 lattice (Fig. 11 bench):\n%s\n",
              lat.to_string().c_str());

  const double period = 40e-9;
  std::map<int, Waveform> drives;
  for (int v = 0; v < 3; ++v) {
    const double p = period * static_cast<double>(2 << v);
    drives[v] = Waveform::pulse(0.0, 1.2, p / 2.0, 1e-9, 1e-9, p / 2.0 - 1e-9, p);
  }
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives);

  spice::TransientOptions topt;
  topt.tstop = 8 * period;
  topt.dt = 0.2e-9;
  topt.record_nodes = {"out", "in_a", "in_b", "in_c"};
  const spice::TransientResult tr = spice::transient(lc.circuit, topt);

  // ASCII oscillogram of the output, 80 columns wide.
  const auto& t = tr.time();
  const auto& out = tr.signal("out");
  std::printf("Vout (0 .. 1.2 V), %s per column:\n",
              util::format_si(topt.tstop / 80.0, 3, "s").c_str());
  for (int level = 6; level >= 0; --level) {
    const double v_lo = 1.2 * level / 7.0;
    const double v_hi = 1.2 * (level + 1) / 7.0;
    std::string line(80, ' ');
    for (int col = 0; col < 80; ++col) {
      const double tc = topt.tstop * (col + 0.5) / 80.0;
      // nearest sample
      const auto it = std::lower_bound(t.begin(), t.end(), tc);
      const std::size_t i = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - t.begin(),
                                   static_cast<std::ptrdiff_t>(t.size() - 1)));
      if (out[i] >= v_lo && out[i] < v_hi) line[static_cast<std::size_t>(col)] = '#';
    }
    std::printf("%4.2fV |%s\n", v_hi, line.c_str());
  }

  const auto rise = spice::rise_time(t, out, 0.1, 1.2);
  const auto fall = spice::fall_time(t, out, 0.1, 1.2);
  double v_low = 1.2;
  for (std::size_t i = t.size() / 4; i < t.size(); ++i) v_low = std::min(v_low, out[i]);
  std::printf("\nzero-state output: %s (paper: 0.22 V)\n",
              util::format_si(v_low, 3, "V").c_str());
  if (rise) std::printf("rise time: %s (paper: ~11.3 ns)\n",
                        util::format_si(*rise, 3, "s").c_str());
  if (fall) std::printf("fall time: %s (paper: ~4.7 ns)\n",
                        util::format_si(*fall, 3, "s").c_str());

  util::CsvWriter csv("xor3_transient.csv");
  csv.write_header({"t", "vout", "a", "b", "c"});
  for (std::size_t i = 0; i < t.size(); ++i) {
    csv.write_row(std::vector<double>{t[i], out[i], tr.signal("in_a")[i],
                                      tr.signal("in_b")[i], tr.signal("in_c")[i]});
  }
  std::printf("full waveforms written to xor3_transient.csv (%zu points)\n",
              t.size());
  return 0;
}
