// Explore the TCAD substitute: pick a device shape, dielectric and bias
// case, run the paper's three sweep set-ups, and dump curves to CSV.
//
// Usage: device_playground [square|cross|junctionless] [hfo2|sio2] [CASE]
//   CASE is a 4-letter terminal-role string over D/S/F, e.g. DSSS or DSFF.
#include <cstdio>
#include <string>

#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/extract.hpp"
#include "ftl/tcad/sweep.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ftl::tcad;

  DeviceShape shape = DeviceShape::kSquare;
  GateDielectric diel = GateDielectric::kHfO2;
  std::string case_name = "DSSS";
  if (argc > 1) {
    const std::string s = ftl::util::to_lower(argv[1]);
    if (s == "cross") shape = DeviceShape::kCross;
    else if (s == "junctionless") shape = DeviceShape::kJunctionless;
    else if (s != "square") {
      std::fprintf(stderr, "unknown shape '%s'\n", argv[1]);
      return 1;
    }
  }
  if (argc > 2) {
    const std::string d = ftl::util::to_lower(argv[2]);
    if (d == "sio2") diel = GateDielectric::kSiO2;
    else if (d != "hfo2") {
      std::fprintf(stderr, "unknown dielectric '%s'\n", argv[2]);
      return 1;
    }
  }
  if (argc > 3) case_name = argv[3];

  BiasCase bias;
  try {
    bias = parse_bias_case(case_name);
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const DeviceSpec spec = make_device(shape, diel);
  const ChargeSheetModel model(spec);
  const NetworkSolver solver(build_mesh(spec, 48), model);

  std::printf("device: %s / %s, bias case %s\n", to_string(shape).c_str(),
              to_string(diel).c_str(), bias.name.c_str());
  std::printf("model: Vth = %+.3f V, Cox = %.3e F/m^2, n = %.3f\n\n",
              model.threshold_voltage(), model.cox(), model.ideality());

  const double vg_min = spec.is_depletion()
                            ? model.threshold_voltage() - 1.5
                            : 0.0;
  const SweepSetups sweeps = run_paper_setups(solver, bias, vg_min, 5.0, 26);

  const auto dump = [&](const ftl::tcad::IvCurve& curve, const std::string& name) {
    ftl::util::CsvWriter csv(name);
    csv.write_header({curve.sweep_variable, "I_T1", "I_T2", "I_T3", "I_T4"});
    for (std::size_t i = 0; i < curve.sweep_values.size(); ++i) {
      csv.write_row(std::vector<double>{
          curve.sweep_values[i], curve.terminal_currents[i][0],
          curve.terminal_currents[i][1], curve.terminal_currents[i][2],
          curve.terminal_currents[i][3]});
    }
    std::printf("wrote %s (%d rows)\n", name.c_str(), csv.rows());
  };
  const std::string prefix = "playground_" + to_string(shape) + "_" +
                             to_string(diel) + "_" + bias.name;
  dump(sweeps.idvg_low, prefix + "_idvg_10mV.csv");
  dump(sweeps.idvg_high, prefix + "_idvg_5V.csv");
  dump(sweeps.idvd, prefix + "_idvd.csv");

  const auto id_low = sweeps.idvg_low.drain_current(bias);
  const auto id_high = sweeps.idvg_high.drain_current(bias);
  std::printf("\nextracted Vth (max-gm): %+.3f V\n",
              threshold_voltage_max_gm(sweeps.idvg_low.sweep_values, id_low, 0.010));
  std::printf("Ion (Vgs=Vds=5V): %.3e A\n", id_high.back());
  return 0;
}
