// ftl_run — the paper's experiment pipeline as a cached job graph.
//
//   ftl_run --list                     show every job and its dependencies
//   ftl_run all                        run the full Figs. 5-12 + Table III DAG
//   ftl_run fig11 --jobs 4             one figure (plus its dependency cone)
//   ftl_run fig5 fig8 --cache-dir .ftl-cache --events run.jsonl
//
// A warm second run serves every TCAD sweep and fit from the content-
// addressed cache, so iterating on a SPICE-stage job never re-simulates the
// device physics upstream of it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ftl/check/equivalence.hpp"
#include "ftl/check/netlist.hpp"
#include "ftl/jobs/cache.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/jobs/pipeline.hpp"
#include "ftl/jobs/scheduler.hpp"
#include "ftl/jobs/telemetry.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

namespace {

// Numeric flag values go through util::parse_long so "--jobs banana" and
// "--mesh 0x" are rejected instead of silently becoming 0.
long parse_flag(const char* flag, const char* value, long min_value,
                long max_value) {
  const std::optional<long> parsed =
      ftl::util::parse_long_in(value, min_value, max_value);
  if (!parsed) {
    std::fprintf(stderr, "ftl_run: %s needs an integer in [%ld, %ld], got '%s'\n",
                 flag, min_value, max_value, value);
    std::exit(2);
  }
  return *parsed;
}

void print_usage() {
  std::printf(
      "usage: ftl_run [targets...] [options]\n"
      "  targets        job names or prefixes (fig5..fig12, table3,\n"
      "                 tcad_square_hfo2, ...); 'all' or none = whole DAG\n"
      "  --list         print the job graph and exit\n"
      "  --lint         run the ftl::check static passes over the\n"
      "                 pipeline-generated bench circuits, SAT-prove the\n"
      "                 pipeline's lattice mappings, and exit\n"
      "  --jobs N       parallelism (0 = pool default, 1 = serial)\n"
      "  --workers N    SPICE-stage thread cap for the Monte-Carlo jobs\n"
      "                 (0 = hardware concurrency); results are identical\n"
      "                 for every setting\n"
      "  --cache-dir D  content-addressed result cache (default .ftl-cache)\n"
      "  --no-cache     force a cold run (cache neither read nor written)\n"
      "  --events F     append JSON-lines telemetry events to F\n"
      "  --mesh N       TCAD mesh resolution (default 48)\n"
      "  --points N     I-V sweep points (default 26)\n"
      "  --quick        small preset (mesh 12, 9 points, short transient)\n");
}

void print_graph(const ftl::jobs::PaperPipeline& pipeline) {
  std::printf("%-18s %s\n", "job", "depends on");
  for (const ftl::jobs::JobId id : pipeline.all) {
    const ftl::jobs::JobDesc& job = pipeline.graph.job(id);
    std::string deps;
    for (const ftl::jobs::JobId dep : job.deps) {
      if (!deps.empty()) deps += ", ";
      deps += pipeline.graph.job(dep).name;
    }
    std::printf("%-18s %s\n", job.name.c_str(),
                deps.empty() ? "-" : deps.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> targets;
  ftl::jobs::PipelineOptions pipeline_options;
  ftl::jobs::RunOptions run_options;
  run_options.cache_dir = ".ftl-cache";
  std::string events_path;
  bool list_only = false;
  bool lint_only = false;

  const auto next_arg = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "ftl_run: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage();
      return 0;
    } else if (std::strcmp(arg, "--list") == 0) {
      list_only = true;
    } else if (std::strcmp(arg, "--lint") == 0) {
      lint_only = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      run_options.jobs =
          static_cast<std::size_t>(parse_flag("--jobs", next_arg(i), 0, 4096));
    } else if (std::strcmp(arg, "--workers") == 0) {
      // Forwarded to VariabilityOptions::max_threads so a CI runner running
      // --jobs J in parallel doesn't additionally fan every MC job out to
      // full hardware concurrency (J * cores threads).
      pipeline_options.workers =
          static_cast<int>(parse_flag("--workers", next_arg(i), 0, 4096));
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      run_options.cache_dir = next_arg(i);
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      run_options.use_cache = false;
    } else if (std::strcmp(arg, "--events") == 0) {
      events_path = next_arg(i);
    } else if (std::strcmp(arg, "--mesh") == 0) {
      pipeline_options.mesh =
          static_cast<int>(parse_flag("--mesh", next_arg(i), 12, 4096));
    } else if (std::strcmp(arg, "--points") == 0) {
      pipeline_options.sweep_points =
          static_cast<int>(parse_flag("--points", next_arg(i), 2, 100000));
    } else if (std::strcmp(arg, "--quick") == 0) {
      // Mesh 12 is the floor: coarser meshes lose the junctionless
      // device's terminal pads entirely.
      pipeline_options.mesh = 12;
      pipeline_options.sweep_points = 9;
      pipeline_options.chain_max = 5;
      pipeline_options.transient_dt = 1e-9;
      pipeline_options.transient_periods = 2;
      pipeline_options.mc_trials = 12;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "ftl_run: unknown option %s\n", arg);
      print_usage();
      return 2;
    } else {
      targets.emplace_back(arg);
    }
  }

  try {
    if (lint_only) {
      int exit_code = 0;
      for (const ftl::jobs::BenchCircuit& bench :
           ftl::jobs::pipeline_bench_circuits(pipeline_options)) {
        const ftl::check::Report report =
            ftl::check::check_circuit(bench.circuit);
        if (report.clean()) {
          std::printf("%s: clean\n", bench.name.c_str());
        } else {
          std::printf("%s:\n%s", bench.name.c_str(),
                      report.render_text().c_str());
        }
        if (!report.ok()) {
          exit_code = 1;
        }
      }
      // The transient stages build on the paper's XOR3 mappings; prove them
      // equivalent to their target with the CDCL miter before trusting any
      // simulation of them.
      ftl::check::EquivalenceOptions equiv;
      equiv.backend = ftl::check::EquivalenceOptions::Backend::kSat;
      const ftl::logic::TruthTable xor3 = ftl::lattice::xor3_truth_table();
      for (const auto& [name, lat] :
           {std::pair{"xor3_3x3", ftl::lattice::xor3_lattice_3x3()},
            std::pair{"xor3_3x4", ftl::lattice::xor3_lattice_3x4()}}) {
        const ftl::check::Report report =
            ftl::check::check_equivalence(lat, xor3, equiv);
        if (report.clean()) {
          std::printf("%s: equivalent (sat)\n", name);
        } else {
          std::printf("%s:\n%s", name, report.render_text().c_str());
          exit_code = 1;
        }
      }
      return exit_code;
    }
    const ftl::jobs::PaperPipeline pipeline =
        ftl::jobs::build_paper_pipeline(pipeline_options);
    if (list_only) {
      print_graph(pipeline);
      return 0;
    }
    run_options.targets = ftl::jobs::resolve_targets(pipeline, targets);

    std::unique_ptr<ftl::jobs::JsonlSink> events;
    if (!events_path.empty()) {
      events = std::make_unique<ftl::jobs::JsonlSink>(events_path);
      run_options.sink = events.get();
    }

    const ftl::jobs::RunResult result =
        ftl::jobs::run_graph(pipeline.graph, run_options);
    std::printf("%s", result.summary_table(pipeline.graph).c_str());
    std::printf(
        "%d computed, %d cache hits, %d failed, %d cancelled in %.0f ms\n",
        result.succeeded, result.cache_hits, result.failed, result.cancelled,
        result.wall_ms);
    return result.ok() ? 0 : 1;
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "ftl_run: %s\n", e.what());
    return 1;
  }
}
