// The §VI-A "automated design tool" as a command-line utility: give it a
// Boolean expression and optimization weights; it explores lattice
// implementations and prints the characterized candidates plus its pick.
//
// Usage: design_explorer ["expression"] [--area W] [--delay W] [--power W]
//                        [--energy W]
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>

#include "ftl/designer/designer.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/util/error.hpp"

int main(int argc, char** argv) {
  using namespace ftl;

  std::string expression = "a b c + a b' c' + a' b c' + a' b' c";  // XOR3
  designer::DesignWeights weights;
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name, double& slot) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        slot = std::atof(argv[++i]);
        return true;
      }
      return false;
    };
    if (flag("--area", weights.area) || flag("--delay", weights.delay) ||
        flag("--power", weights.static_power) || flag("--energy", weights.energy)) {
      continue;
    }
    expression = argv[i];
  }

  try {
    const auto parsed = logic::parse_expression(expression);
    std::printf("target: %s  (%d variables)\n\n", expression.c_str(),
                parsed.table.num_vars());
    const auto candidates =
        designer::explore_designs(parsed.table, parsed.var_names);
    std::printf("%s\n", designer::render_report(candidates).c_str());

    const std::size_t best = designer::pick_best(candidates, weights);
    std::printf("pick (weights area=%.1f delay=%.1f power=%.1f energy=%.1f):"
                " %s\n\n",
                weights.area, weights.delay, weights.static_power,
                weights.energy, candidates[best].method.c_str());
    std::printf("pull-down lattice:\n%s\n",
                candidates[best].pulldown.to_string().c_str());
    if (candidates[best].pullup) {
      std::printf("pull-up lattice (complement):\n%s\n",
                  candidates[best].pullup->to_string().c_str());
    }
  } catch (const ftl::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
