#include "ftl/designer/designer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/units.hpp"

namespace ftl::designer {
namespace {

/// Smallest lattice (by cell count) realizing `target` below `max_cells`,
/// using exhaustive search where affordable and hill climbing above that.
std::optional<lattice::Lattice> search_smaller(
    const logic::TruthTable& target, const std::vector<std::string>& names,
    int max_cells, const DesignOptions& options) {
  for (int cells = 1; cells < max_cells; ++cells) {
    if (cells > options.max_search_cells) break;
    for (int rows = 1; rows * rows <= cells; ++rows) {
      if (cells % rows != 0) continue;
      for (const int r : {rows, cells / rows}) {
        const int c = cells / r;
        lattice::SearchOptions search;
        search.seed = options.search_seed;
        search.max_threads = options.search_threads;
        std::optional<lattice::Lattice> found;
        if (cells <= 9) {
          try {
            found = lattice::exhaustive_synthesis(target, r, c, search, names);
          } catch (const lattice::SearchBoundExceeded&) {
            // Candidate-space budget tripped (possible only if the caller
            // tightened it): degrade to hill climbing rather than fail.
            found = lattice::local_search_synthesis(target, r, c, search, names);
          }
        } else {
          found = lattice::local_search_synthesis(target, r, c, search, names);
        }
        if (found) return found;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<CandidateDesign> explore_designs(const logic::TruthTable& target,
                                             std::vector<std::string> var_names,
                                             const DesignOptions& options) {
  if (target.is_zero() || target.is_one()) {
    throw ftl::Error("explore_designs: constant functions need no lattice");
  }
  if (target.num_vars() > 6) {
    throw ftl::Error("explore_designs: at most 6 variables supported");
  }

  std::vector<CandidateDesign> candidates;
  const auto measure_resistor = [&](lattice::Lattice lat, std::string method) {
    CandidateDesign cand{std::move(method), std::move(lat), std::nullopt, {}};
    cand.metrics =
        bridge::measure_resistor_gate(cand.pulldown, target, options.measure);
    candidates.push_back(std::move(cand));
  };

  // 1. The Altun-Riedel baseline.
  const lattice::Lattice baseline =
      lattice::altun_riedel_synthesis(target, var_names);
  if (!var_names.empty()) var_names = baseline.var_names();
  measure_resistor(baseline, "altun-riedel");

  // 2. Smaller lattices by search.
  if (options.try_smaller_lattices) {
    const auto smaller = search_smaller(target, baseline.var_names(),
                                        baseline.cell_count(), options);
    if (smaller) {
      measure_resistor(*smaller,
                       "search " + std::to_string(smaller->rows()) + "x" +
                           std::to_string(smaller->cols()));
    }
  }

  // 3. Externally supplied candidates (e.g. NPN-library hits relabeled to
  // this target). Verified before measuring: a hook bug must not leak a
  // non-realizing lattice into the scored set.
  if (options.extra_candidates) {
    for (auto& [method, lat] : options.extra_candidates(target)) {
      if (!lattice::realizes(lat, target)) continue;
      measure_resistor(std::move(lat), method);
    }
  }

  // 4. The complementary topology (§VI-A): pull-down realizes f, pull-up
  // realizes ¬f.
  if (options.include_complementary) {
    const lattice::Lattice pun =
        lattice::altun_riedel_synthesis(~target, baseline.var_names());
    CandidateDesign cand{"complementary", baseline, pun, {}};
    cand.metrics = bridge::measure_complementary_gate(baseline, pun, target,
                                                      options.measure);
    candidates.push_back(std::move(cand));
  }
  return candidates;
}

std::size_t pick_best(const std::vector<CandidateDesign>& candidates,
                      const DesignWeights& weights) {
  // Normalize each term by the best functional candidate's value.
  double best_area = std::numeric_limits<double>::max();
  double best_delay = best_area;
  double best_power = best_area;
  double best_energy = best_area;
  bool any = false;
  for (const CandidateDesign& c : candidates) {
    if (!c.metrics.functional) continue;
    any = true;
    best_area = std::min(best_area, static_cast<double>(c.metrics.switch_count));
    if (c.metrics.propagation_delay > 0.0) {
      best_delay = std::min(best_delay, c.metrics.propagation_delay);
    }
    if (c.metrics.static_power_mean > 0.0) {
      best_power = std::min(best_power, c.metrics.static_power_mean);
    }
    if (c.metrics.energy_per_transition > 0.0) {
      best_energy = std::min(best_energy, c.metrics.energy_per_transition);
    }
  }
  if (!any) throw ftl::Error("pick_best: no functional candidate");

  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const bridge::GateMetrics& m = candidates[i].metrics;
    if (!m.functional) continue;
    const auto norm = [](double value, double best_value) {
      return best_value > 0.0 && value > 0.0 ? value / best_value : 1.0;
    };
    const double score =
        weights.area * norm(m.switch_count, best_area) +
        weights.delay * norm(m.propagation_delay, best_delay) +
        weights.static_power * norm(m.static_power_mean, best_power) +
        weights.energy * norm(m.energy_per_transition, best_energy);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

std::string render_report(const std::vector<CandidateDesign>& candidates) {
  util::ConsoleTable table({"method", "switches", "ok", "VOL/VOH [V]",
                            "P_static mean/worst", "tpd", "rise/fall",
                            "E/transition"});
  for (const CandidateDesign& c : candidates) {
    const bridge::GateMetrics& m = c.metrics;
    char levels[48];
    std::snprintf(levels, sizeof levels, "%.3f / %.3f", m.output_low_max,
                  m.output_high_min);
    table.add_row({
        c.method,
        std::to_string(m.switch_count),
        m.functional ? "yes" : "NO",
        levels,
        util::format_si(m.static_power_mean, 3, "W") + " / " +
            util::format_si(m.static_power_worst, 3, "W"),
        util::format_si(m.propagation_delay, 3, "s"),
        util::format_si(m.rise_time, 3, "s") + " / " +
            util::format_si(m.fall_time, 3, "s"),
        util::format_si(m.energy_per_transition, 3, "J"),
    });
  }
  return table.render();
}

}  // namespace ftl::designer
