#pragma once
// Automated design-space exploration for switching lattices — §VI-A's
// planned "automated design tool ... with given area, power, delay, and
// energy specifications, the tool would come up with optimized solutions".
//
// Given a target function, the explorer generates candidate implementations
// (the Altun-Riedel baseline, smaller lattices found by exhaustive/local
// search, and the complementary two-lattice topology), characterizes each
// with the gate-metrics engine, and scores them against user weights.

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ftl/bridge/metrics.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::designer {

/// One evaluated implementation.
struct CandidateDesign {
  std::string method;  ///< how the lattice(s) were obtained
  lattice::Lattice pulldown;
  std::optional<lattice::Lattice> pullup;  ///< set for complementary designs
  bridge::GateMetrics metrics;

  bool is_complementary() const { return pullup.has_value(); }
};

/// Relative importance of each figure of merit (0 disables a term). The
/// score of a candidate is the weighted sum of its metrics normalized by
/// the best value among all functional candidates; lower is better.
struct DesignWeights {
  double area = 1.0;
  double delay = 1.0;
  double static_power = 1.0;
  double energy = 1.0;
};

struct DesignOptions {
  bool try_smaller_lattices = true;   ///< hunt below the A-R baseline size
  bool include_complementary = true;  ///< add the §VI-A two-lattice design
  int max_search_cells = 12;          ///< search budget ceiling
  std::uint64_t search_seed = 1;
  /// Thread cap for the sharded exhaustive search (0 = global pool). The
  /// shards join lowest-index-wins, so the found lattice is independent of
  /// the cap.
  std::size_t search_threads = 0;
  bridge::MeasureOptions measure;
  /// External candidate source, called once with the target: each returned
  /// (method, lattice) pair joins the candidate set as a single-lattice
  /// design — this is how the serve layer feeds NPN-library hits into
  /// exploration without the designer depending on the library. Lattices
  /// that do not realize the target are dropped silently.
  std::function<std::vector<std::pair<std::string, lattice::Lattice>>(
      const logic::TruthTable&)>
      extra_candidates;
};

/// Generates and characterizes the candidate set. Throws ftl::Error for
/// constant functions (no circuit to build) or more than 6 variables.
std::vector<CandidateDesign> explore_designs(
    const logic::TruthTable& target, std::vector<std::string> var_names = {},
    const DesignOptions& options = {});

/// Index of the best functional candidate under `weights`; throws ftl::Error
/// when no candidate is functional.
std::size_t pick_best(const std::vector<CandidateDesign>& candidates,
                      const DesignWeights& weights = {});

/// Renders the candidate table (area / levels / power / delay / energy).
std::string render_report(const std::vector<CandidateDesign>& candidates);

}  // namespace ftl::designer
