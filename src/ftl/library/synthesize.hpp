#pragma once
// Lookup-first lattice synthesis: canonicalize the target, consult the
// class library, and only fall back to a search engine on a miss — then
// populate the library with whatever the engine found, so the next request
// in the same NPN class is a relabeling instead of a search.
//
// Every library hit is un-applied (inverse transform rewrites the stored
// lattice's literals back into the request's variables) and bitslice-
// verified to realize the requested function before being returned; a
// verification failure demotes the hit to a miss instead of serving a
// wrong lattice.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ftl/lattice/synthesis.hpp"
#include "ftl/library/npn.hpp"
#include "ftl/library/store.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::library {

struct SynthesisRequest {
  enum class Engine {
    kAuto,         ///< library, then altun_riedel_synthesis (never fails)
    kAltun,        ///< library, then dual-based construction
    kExhaustive,   ///< library (dims permitting), then complete search
    kLocalSearch,  ///< library (dims permitting), then hill climbing
    kSat,          ///< library (dims permitting), then CEGAR SAT
  };

  Engine engine = Engine::kAuto;

  /// Target dimensions. Required (> 0) for the fixed-shape engines
  /// (exhaustive / local search / SAT); optional for auto/altun. When set,
  /// a library hit must fit inside rows×cols and is padded (constant-0
  /// columns, then constant-1 rows — function-preserving) to exactly that
  /// shape, so callers see the dimensions they asked for.
  int rows = 0;
  int cols = 0;

  lattice::SearchOptions search;     ///< exhaustive / local-search knobs
  lattice::SatSynthesisOptions sat;  ///< SAT engine knobs

  bool use_library = true;  ///< consult the library before any engine
  bool populate = true;     ///< offer engine results back to the library

  std::vector<std::string> var_names;
};

struct SynthesisResult {
  lattice::Lattice lattice;  ///< valid iff `found`
  bool found = false;
  bool from_library = false;  ///< answered by relabeling a stored lattice
  /// What produced the lattice: "library", "altun", "exhaustive",
  /// "search" or "sat" (the engine that *ran* when not from the library).
  std::string engine;
  std::uint64_t npn_key = 0;  ///< class key (0 when the library was skipped)
  bool populated = false;     ///< engine result was kept by the library
  bool proven_infeasible = false;  ///< SAT engine only
  bool budget_exhausted = false;   ///< SAT engine only
  /// Full SAT engine report when Engine::kSat ran (solver counters etc).
  std::optional<lattice::SatSynthesisResult> sat;
};

/// Lookup-first synthesis. `lib` may be null (pure engine dispatch); the
/// library is only consulted for targets of <= 6 variables. Propagates
/// lattice::SearchBoundExceeded from the exhaustive engine.
SynthesisResult synthesize(const logic::TruthTable& target,
                           const SynthesisRequest& request = {},
                           LatticeLibrary* lib = nullptr);

/// Library lookup with no engine fallback: returns the un-applied,
/// verified lattice for the target's class, or nullopt on a miss. With
/// rows/cols > 0 the stored lattice must fit and the result is padded to
/// exactly that shape.
std::optional<lattice::Lattice> lookup_only(
    LatticeLibrary& lib, const logic::TruthTable& target,
    std::vector<std::string> var_names = {}, int rows = 0, int cols = 0);

/// Embeds `lat` in the top-left of a rows×cols grid, filling new columns
/// (right) with constant-0 and new rows (bottom) with constant-1. This
/// preserves the realized function: when f = 0 the constant-1 rows are
/// unreachable from the top plate, and when f = 1 they extend the existing
/// path straight down to the new bottom plate. Requires
/// rows >= lat.rows() and cols >= lat.cols().
lattice::Lattice pad_lattice(const lattice::Lattice& lat, int rows, int cols);

}  // namespace ftl::library
