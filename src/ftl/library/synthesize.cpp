#include "ftl/library/synthesize.hpp"

#include <chrono>
#include <utility>

#include "ftl/lattice/function.hpp"
#include "ftl/util/error.hpp"

namespace ftl::library {
namespace {

void bump(std::atomic<std::uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

/// Shared hit path: find the class slot matching the transform's output
/// phase, un-apply the transform onto the stored lattice, pad to the
/// requested shape, and bitslice-verify. Any failure along the way counts
/// (and behaves) as a miss.
std::optional<lattice::Lattice> library_lookup(
    LatticeLibrary& lib, const logic::TruthTable& target,
    const NpnCanonical& canon, std::uint64_t key, int rows, int cols,
    const std::vector<std::string>& var_names) {
  LibraryCounters& counters = lib.counters();
  bump(counters.lookups);
  const bool phase = canon.transform.output_negation;
  const std::optional<LibraryEntry> entry = lib.find(key, phase);
  if (!entry ||
      (rows > 0 && cols > 0 &&
       (entry->lattice.rows() > rows || entry->lattice.cols() > cols))) {
    bump(counters.misses);
    return std::nullopt;
  }
  const NpnTransform un = inverse(canon.transform).without_output_negation();
  lattice::Lattice lat = relabel_lattice(entry->lattice, un, var_names);
  bump(counters.unapplies);
  if (phase) bump(counters.output_inversions);
  if (rows > 0 && cols > 0 && (lat.rows() != rows || lat.cols() != cols)) {
    lat = pad_lattice(lat, rows, cols);
  }
  if (!lattice::realizes(lat, target)) {
    bump(counters.verify_rejects);
    bump(counters.misses);
    return std::nullopt;
  }
  bump(counters.class_hits);
  return lat;
}

}  // namespace

SynthesisResult synthesize(const logic::TruthTable& target,
                           const SynthesisRequest& request,
                           LatticeLibrary* lib) {
  SynthesisResult out;
  const bool use_library =
      lib != nullptr && request.use_library && target.num_vars() <= 6;
  std::optional<NpnCanonical> canon;
  std::uint64_t key = 0;
  if (use_library) {
    canon = canonicalize(target);
    key = npn_key(canon->canonical);
    out.npn_key = key;
    if (std::optional<lattice::Lattice> hit =
            library_lookup(*lib, target, *canon, key, request.rows,
                           request.cols, request.var_names)) {
      out.lattice = std::move(*hit);
      out.found = true;
      out.from_library = true;
      out.engine = "library";
      return out;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::optional<lattice::Lattice> found;
  std::uint64_t seed = 0;
  switch (request.engine) {
    case SynthesisRequest::Engine::kAuto:
    case SynthesisRequest::Engine::kAltun:
      found = lattice::altun_riedel_synthesis(target, request.var_names);
      out.engine = "altun";
      break;
    case SynthesisRequest::Engine::kExhaustive:
      FTL_EXPECTS(request.rows > 0 && request.cols > 0);
      found = lattice::exhaustive_synthesis(target, request.rows, request.cols,
                                            request.search, request.var_names);
      out.engine = "exhaustive";
      seed = request.search.seed;
      break;
    case SynthesisRequest::Engine::kLocalSearch:
      FTL_EXPECTS(request.rows > 0 && request.cols > 0);
      found = lattice::local_search_synthesis(
          target, request.rows, request.cols, request.search,
          request.var_names);
      out.engine = "search";
      seed = request.search.seed;
      break;
    case SynthesisRequest::Engine::kSat: {
      FTL_EXPECTS(request.rows > 0 && request.cols > 0);
      lattice::SatSynthesisResult sat = lattice::synth_sat(
          target, request.rows, request.cols, request.sat, request.var_names);
      out.proven_infeasible = sat.proven_infeasible;
      out.budget_exhausted = sat.budget_exhausted;
      found = sat.lattice;
      out.sat = std::move(sat);
      out.engine = "sat";
      seed = request.sat.seed;
      break;
    }
  }
  const double cost_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  if (!found) return out;
  out.lattice = std::move(*found);
  out.found = true;

  if (use_library && request.populate) {
    // Relabel the engine result into canonical variables (default names —
    // the stored lattice is class-level, not request-level) and offer it to
    // the slot matching the transform's output phase.
    const bool phase = canon->transform.output_negation;
    lattice::Lattice canonical_lat = relabel_lattice(
        out.lattice, canon->transform.without_output_negation());
    const logic::TruthTable want =
        phase ? ~canon->canonical : canon->canonical;
    if (lattice::realizes(canonical_lat, want)) {
      LibraryEntry entry;
      entry.lattice = std::move(canonical_lat);
      entry.engine = out.engine;
      entry.seed = seed;
      entry.cost_ms = cost_ms;
      out.populated =
          lib->insert(key, canon->canonical, phase, std::move(entry));
    }
  }
  return out;
}

std::optional<lattice::Lattice> lookup_only(LatticeLibrary& lib,
                                            const logic::TruthTable& target,
                                            std::vector<std::string> var_names,
                                            int rows, int cols) {
  if (target.num_vars() > 6) return std::nullopt;
  const NpnCanonical canon = canonicalize(target);
  return library_lookup(lib, target, canon, npn_key(canon.canonical), rows,
                        cols, var_names);
}

lattice::Lattice pad_lattice(const lattice::Lattice& lat, int rows,
                             int cols) {
  FTL_EXPECTS(rows >= lat.rows() && cols >= lat.cols());
  if (rows == lat.rows() && cols == lat.cols()) return lat;
  lattice::Lattice out(rows, cols, lat.num_vars(), lat.var_names());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r >= lat.rows()) {
        out.set(r, c, lattice::CellValue::one());
      } else if (c >= lat.cols()) {
        out.set(r, c, lattice::CellValue::zero());
      } else {
        out.set(r, c, lat.at(r, c));
      }
    }
  }
  return out;
}

}  // namespace ftl::library
