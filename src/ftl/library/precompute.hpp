#pragma once
// Offline library construction: enumerate every NPN class worth storing and
// fill the library through the existing engines, in parallel.
//
// The 4-variable space is covered exhaustively — the 65,536 functions
// collapse into 222 NPN classes (the abc Npn4 count), and both output
// phases of each class get a lattice, so any permuted/negated 4-variable
// request afterwards is a pure library hit. 5-6 variables are covered by a
// curated set (paper functions, symmetric benchmarks, seeded randoms)
// rather than enumeration (>200k classes at 6 vars).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ftl/library/store.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::library {

/// Canonical representatives of all NPN classes of exactly `num_vars`
/// variables (num_vars <= 4), ascending by table word. Computed by orbit
/// sweep: walk the 2^2^n tables once, and for each unseen table mark its
/// whole 768-transform orbit seen — about 222 * 768 word transforms for
/// n = 4, well under a millisecond. For n = 4 the result has 222 entries.
std::vector<logic::TruthTable> npn_class_representatives(int num_vars);

/// Curated 5-6 variable targets: parity, majority, multiplexer, threshold
/// and product/sum structures from the lattice-synthesis literature, plus
/// `randoms_per_size` seeded random tables per variable count. Returned as
/// canonical representatives, deduplicated by class.
std::vector<logic::TruthTable> curated_targets(std::uint64_t seed,
                                               int randoms_per_size = 8);

/// All (rows, cols) shapes with exactly `cells` cells, rows ascending. Both
/// orientations are distinct candidates — top-bottom connectivity is not
/// transpose-symmetric, so a 2×3 answer says nothing about 3×2. Shared by
/// the precompute minimization ladder and the CLI's --certify minimality
/// audit, which must walk the identical ladder to certify its result.
std::vector<std::pair<int, int>> shapes_with_cells(int cells);

struct PrecomputeOptions {
  enum class Effort {
    kBaseline,  ///< altun_riedel per phase: fast, always succeeds
    kSat,       ///< baseline + CEGAR-SAT minimization ladder per slot
  };

  Effort effort = Effort::kBaseline;
  bool classes4 = true;       ///< enumerate all 4-var classes (and smaller)
  bool curated = true;        ///< include the curated 5-6 variable set
  std::uint64_t seed = 1;     ///< drives curated randoms and SAT decisions
  std::size_t max_threads = 0;  ///< parallel_for cap (0 = global pool)
  /// SAT-effort knobs: per-shape conflict budget and the largest cell count
  /// the minimization ladder will attempt (shapes are tried in ascending
  /// cell count, so the first success is the best the ladder can do).
  std::int64_t sat_conflicts_per_shape = 200'000;
  int sat_max_cells = 9;
};

struct PrecomputeReport {
  std::size_t targets = 0;    ///< distinct (class, phase) slots attempted
  std::size_t populated = 0;  ///< slots filled that were empty before
  std::size_t improved = 0;   ///< slots replaced with a smaller lattice
  std::size_t failures = 0;   ///< slots no engine could fill (SAT budget)
  double total_ms = 0;        ///< wall-clock of the whole run
};

/// Fills `lib` per the options. Idempotent: re-running against a populated
/// library only replaces entries when it finds strictly smaller lattices.
PrecomputeReport precompute(LatticeLibrary& lib,
                            const PrecomputeOptions& options = {});

}  // namespace ftl::library
