#pragma once
// NPN canonicalization for truth tables of up to 6 variables.
//
// Two functions are NPN-equivalent when one maps onto the other by
// permuting inputs (P), complementing inputs (N), and/or complementing the
// output (N). The 65,536 4-variable functions collapse into 222 NPN
// classes (abc's Npn4 machinery is the model), which is what makes a
// per-class lattice library (store.hpp) small enough to precompute
// exhaustively: synthesis requests that differ only by a relabeling all
// land on one stored lattice.
//
// Canonical form:
//  - num_vars <= 4: exact. All n! * 2^n * 2 transforms are enumerated and
//    the lexicographically smallest table (smallest word value, minterm 0
//    in the least-significant bit) wins.
//  - num_vars 5..6: semi-canonical. Output phase is fixed by the ones
//    count, per-input polarity by cofactor ones counts, and the input
//    order by sorting those counts; every tie branches, so the candidate
//    set — and therefore the minimum over it — is a class invariant even
//    though it is not always the full-group minimum. canonicalize(T) ==
//    canonicalize(apply_npn(T, any transform)) holds for every table.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::library {

/// One invertible NPN relabeling. Semantics (matching
/// logic::TruthTable::transformed): R = apply_npn(T, t) satisfies
///   R(x) = t.output_negation ^ T(y),  y[j] = x[t.perm[j]] ^ neg bit j,
/// i.e. input j of the source function is driven by variable perm[j] of
/// the result, complemented when bit j of input_negations is set.
struct NpnTransform {
  int num_vars = 0;
  std::array<std::uint8_t, 6> perm{{0, 1, 2, 3, 4, 5}};
  std::uint32_t input_negations = 0;
  bool output_negation = false;

  bool identity() const;

  /// Same relabeling with the output complement dropped (what
  /// relabel_lattice accepts).
  NpnTransform without_output_negation() const;
};

/// Applies `t` to `table` (word-level fast path over
/// TruthTable::transformed; both agree bit for bit).
logic::TruthTable apply_npn(const logic::TruthTable& table,
                            const NpnTransform& t);

/// The transform undoing `t`: apply_npn(apply_npn(T, t), inverse(t)) == T.
NpnTransform inverse(const NpnTransform& t);

struct NpnCanonical {
  logic::TruthTable canonical;
  /// canonical == apply_npn(input, transform).
  NpnTransform transform;
};

/// Canonical representative of the table's NPN class plus the transform
/// that maps the input onto it. Requires num_vars <= 6.
NpnCanonical canonicalize(const logic::TruthTable& table);

/// Content digest of a canonical table — the on-disk library key. Feed it
/// only tables returned by canonicalize(); two NPN-equivalent functions
/// then share one key.
std::uint64_t npn_key(const logic::TruthTable& canonical);

/// Rewrites each cell literal (var j, positive p) to
/// (var t.perm[j], positive p ^ neg bit j), leaving constants alone: when
/// `lat` realizes f, the result realizes apply_npn(f, t). Output
/// complement has no cell-level counterpart in this technology (the grid
/// duality pairs 4-connected ON paths with 8-connected OFF cuts, so
/// transpose-and-complement does not work); callers handle it by storing
/// one lattice per output phase. Requires !t.output_negation.
lattice::Lattice relabel_lattice(const lattice::Lattice& lat,
                                 const NpnTransform& t,
                                 std::vector<std::string> var_names = {});

}  // namespace ftl::library
