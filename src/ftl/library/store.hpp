#pragma once
// Content-addressed store of best-known lattices, one record per NPN class.
//
// The key is npn_key(canonical table); the value holds up to two lattices,
// one per output phase — the grid duality (4-connected ON paths vs
// 8-connected OFF cuts) means a stored lattice for f cannot be relabeled
// into one for ¬f, so the complement phase is its own slot even though ¬f
// canonicalizes to the same class. Each slot remembers which engine found
// the lattice, with what seed, and how long it took, so a library can be
// audited and selectively rebuilt.
//
// The in-memory index is sharded 16 ways behind jobs::mix64 (same routing
// as the serve cache). On disk each class is one jobs::ResultCache artifact
// under job name "npn_lattice" — atomic temp-file-plus-rename stores, and a
// corrupt or truncated file reads as a miss.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ftl/jobs/cache.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::library {

/// Best-known lattice for one output phase of one NPN class, plus the
/// provenance needed to audit or reproduce it.
struct LibraryEntry {
  lattice::Lattice lattice;
  std::string engine;     ///< "altun", "exhaustive", "search", "sat", ...
  std::uint64_t seed = 0;
  double cost_ms = 0;     ///< wall-clock cost of the search that found it
  /// Stamped by `ftl_lattice_lib verify --certify`: the entry passed a
  /// proof-checked SAT equivalence AND every smaller shape was proven
  /// infeasible with a checker-accepted DRAT proof (shape-minimality).
  /// Reset whenever a smaller lattice replaces the entry — the certificate
  /// belongs to the lattice, not the class.
  bool certified = false;
};

/// Everything stored for one NPN class. `direct` realizes the canonical
/// table, `complement` realizes its negation.
struct LibraryClass {
  logic::TruthTable canonical;
  std::optional<LibraryEntry> direct;
  std::optional<LibraryEntry> complement;
};

/// Monotonic library counters (relaxed atomics; exact totals are not worth
/// a contended cache line). The lookup-path counters are bumped by
/// library::synthesize, the mutation/disk counters by the store itself.
struct LibraryCounters {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> class_hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> unapplies{0};
  std::atomic<std::uint64_t> output_inversions{0};
  std::atomic<std::uint64_t> verify_rejects{0};
  std::atomic<std::uint64_t> populates{0};
  std::atomic<std::uint64_t> improvements{0};
  std::atomic<std::uint64_t> disk_loads{0};
  std::atomic<std::uint64_t> disk_stores{0};
};

/// Plain snapshot of LibraryCounters plus the index gauges, for `stats`.
struct LibraryStats {
  std::uint64_t lookups = 0;
  std::uint64_t class_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t unapplies = 0;
  std::uint64_t output_inversions = 0;
  std::uint64_t verify_rejects = 0;
  std::uint64_t populates = 0;
  std::uint64_t improvements = 0;
  std::uint64_t disk_loads = 0;
  std::uint64_t disk_stores = 0;
  std::uint64_t classes = 0;  ///< gauge: classes in the in-memory index
  std::uint64_t entries = 0;  ///< gauge: filled phase slots
};

class LatticeLibrary {
 public:
  /// Memory-only library (tests, throwaway precompute runs).
  LatticeLibrary();

  /// Disk-backed library rooted at `dir` (created when missing; throws
  /// ftl::Error when that fails). Memory is a write-through cache of disk:
  /// lookups fault classes in lazily, inserts persist the whole class.
  explicit LatticeLibrary(std::string dir);

  /// "" for a memory-only library.
  const std::string& dir() const { return dir_; }

  /// Best-known lattice for the class `key`, complement phase when
  /// `complement`. Faults in the on-disk record when memory has no entry
  /// for the requested slot.
  std::optional<LibraryEntry> find(std::uint64_t key, bool complement);

  /// Offers `entry` for one phase slot. It is kept when the slot is empty
  /// or the new lattice has strictly fewer cells (ties keep the incumbent),
  /// and the class record is rewritten to disk. Returns true when kept.
  /// `canonical` must be the canonicalize() representative whose key is
  /// `key`; callers are responsible for having verified the lattice.
  bool insert(std::uint64_t key, const logic::TruthTable& canonical,
              bool complement, LibraryEntry entry);

  /// Flips the certified bit on an existing phase slot and rewrites the
  /// class record to disk. Returns false when the slot is empty (nothing to
  /// stamp); a no-op stamp (bit already equal) skips the disk write.
  bool stamp_certified(std::uint64_t key, bool complement, bool certified);

  /// Loads every on-disk class record into memory (CLI inspection /
  /// verification). Returns the number of classes now indexed.
  std::size_t load_all();

  /// Copy of the whole in-memory index, key-sorted (CLI inspection).
  std::vector<std::pair<std::uint64_t, LibraryClass>> snapshot() const;

  std::size_t num_classes() const;
  std::size_t num_entries() const;

  LibraryCounters& counters() { return counters_; }
  LibraryStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, LibraryClass> classes;
  };

  static constexpr std::size_t kShards = 16;

  Shard& shard_of(std::uint64_t key);
  const Shard& shard_of(std::uint64_t key) const;

  /// Parses one on-disk record and merges it into memory (keeping whichever
  /// side has fewer cells per slot). Returns the merged class, or nullopt
  /// when there is no (readable) record.
  std::optional<LibraryClass> fault_in(std::uint64_t key);

  std::string dir_;
  std::optional<jobs::ResultCache> cache_;
  std::array<Shard, kShards> shards_;
  LibraryCounters counters_;
};

}  // namespace ftl::library
