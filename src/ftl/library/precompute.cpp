#include "ftl/library/precompute.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <numeric>
#include <unordered_set>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/library/npn.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::library {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// CEGAR-SAT minimization ladder for one phase slot: try every shape with
/// fewer cells than the incumbent, smallest first, and keep the first
/// realization found (ascending order makes it the ladder's best).
void minimize_slot(LatticeLibrary& lib, std::uint64_t key,
                   const logic::TruthTable& canonical, bool phase,
                   const logic::TruthTable& want,
                   const PrecomputeOptions& options,
                   std::atomic<std::size_t>& improved) {
  const std::optional<LibraryEntry> current = lib.find(key, phase);
  if (!current) return;
  const int limit =
      std::min(options.sat_max_cells, current->lattice.cell_count() - 1);
  for (int cells = 1; cells <= limit; ++cells) {
    bool done = false;
    for (const auto& [rows, cols] : shapes_with_cells(cells)) {
      lattice::SatSynthesisOptions sat;
      sat.seed = options.seed;
      sat.max_conflicts = options.sat_conflicts_per_shape;
      const auto start = std::chrono::steady_clock::now();
      const lattice::SatSynthesisResult result =
          lattice::synth_sat(want, rows, cols, sat);
      if (!result.lattice) continue;
      LibraryEntry entry;
      entry.lattice = *result.lattice;
      entry.engine = "sat";
      entry.seed = options.seed;
      entry.cost_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      if (lib.insert(key, canonical, phase, std::move(entry))) {
        improved.fetch_add(1, std::memory_order_relaxed);
      }
      done = true;
      break;
    }
    if (done) break;
  }
}

}  // namespace

std::vector<std::pair<int, int>> shapes_with_cells(int cells) {
  std::vector<std::pair<int, int>> out;
  for (int rows = 1; rows <= cells; ++rows) {
    if (cells % rows == 0) out.emplace_back(rows, cells / rows);
  }
  return out;
}

std::vector<logic::TruthTable> npn_class_representatives(int num_vars) {
  FTL_EXPECTS(num_vars >= 0 && num_vars <= 4);
  const int minterms = 1 << num_vars;
  const std::uint64_t mask_all = (std::uint64_t{1} << minterms) - 1;

  // Minterm maps of every (perm, input-negation) pair of the group.
  std::vector<std::array<std::uint8_t, 16>> maps;
  std::array<int, 4> p{};
  std::iota(p.begin(), p.begin() + num_vars, 0);
  do {
    for (std::uint32_t mask = 0; mask < (1u << num_vars); ++mask) {
      std::array<std::uint8_t, 16> map{};
      for (int x = 0; x < minterms; ++x) {
        int y = 0;
        for (int j = 0; j < num_vars; ++j) {
          y |= static_cast<int>(
                   ((static_cast<std::uint32_t>(x) >>
                     p[static_cast<std::size_t>(j)]) ^
                    (mask >> j)) &
                   1u)
               << j;
        }
        map[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(y);
      }
      maps.push_back(map);
    }
  } while (std::next_permutation(p.begin(), p.begin() + num_vars));

  // Orbit sweep in ascending table order: the first unseen table is its
  // orbit's minimum (anything smaller would already have marked it), so it
  // is the canonical representative; mark the whole orbit and move on.
  const std::uint64_t tables = std::uint64_t{1} << minterms;
  std::vector<bool> seen(tables, false);
  std::vector<logic::TruthTable> reps;
  for (std::uint64_t w = 0; w < tables; ++w) {
    if (seen[w]) continue;
    reps.push_back(logic::TruthTable::from_bits(num_vars, w));
    for (const auto& map : maps) {
      std::uint64_t r = 0;
      for (int x = 0; x < minterms; ++x) {
        r |= ((w >> map[static_cast<std::size_t>(x)]) & 1)
             << x;
      }
      seen[r] = true;
      seen[r ^ mask_all] = true;
    }
  }
  return reps;
}

std::vector<logic::TruthTable> curated_targets(std::uint64_t seed,
                                               int randoms_per_size) {
  using logic::TruthTable;
  const auto ones = [](std::uint64_t m) { return std::popcount(m); };
  std::vector<TruthTable> raw;

  // 5 variables: parity, majority, threshold, product-of-pairs structures.
  raw.push_back(TruthTable::from_function(
      5, [&](std::uint64_t m) { return (ones(m) & 1) != 0; }));
  raw.push_back(
      TruthTable::from_function(5, [&](std::uint64_t m) { return ones(m) >= 3; }));
  raw.push_back(
      TruthTable::from_function(5, [&](std::uint64_t m) { return ones(m) >= 2; }));
  raw.push_back(TruthTable::from_function(5, [](std::uint64_t m) {
    return ((m & 3) == 3) || ((m >> 2 & 3) == 3) || ((m >> 4 & 1) != 0);
  }));
  raw.push_back(TruthTable::from_function(5, [](std::uint64_t m) {
    return ((m & 3) == 3) || ((m >> 2 & 7) == 7);
  }));

  // 6 variables: parity, majority, threshold, 4:1 multiplexer
  // (x4, x5 select among x0..x3), sum of pairwise products.
  raw.push_back(TruthTable::from_function(
      6, [&](std::uint64_t m) { return (ones(m) & 1) != 0; }));
  raw.push_back(
      TruthTable::from_function(6, [&](std::uint64_t m) { return ones(m) >= 4; }));
  raw.push_back(
      TruthTable::from_function(6, [&](std::uint64_t m) { return ones(m) >= 3; }));
  raw.push_back(TruthTable::from_function(6, [](std::uint64_t m) {
    const std::uint64_t sel = (m >> 4) & 3;
    return ((m >> sel) & 1) != 0;
  }));
  raw.push_back(TruthTable::from_function(6, [](std::uint64_t m) {
    return ((m & 3) == 3) || ((m >> 2 & 3) == 3) || ((m >> 4 & 3) == 3);
  }));

  std::uint64_t state = seed;
  for (const int num_vars : {5, 6}) {
    const std::uint64_t mask_all =
        num_vars == 6 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (1 << num_vars)) - 1;
    for (int i = 0; i < randoms_per_size; ++i) {
      std::uint64_t w = splitmix64(state) & mask_all;
      if (w == 0 || w == mask_all) w = 0x96u;  // arbitrary non-constant
      raw.push_back(TruthTable::from_bits(num_vars, w));
    }
  }

  std::vector<logic::TruthTable> out;
  std::unordered_set<std::uint64_t> keys;
  for (const TruthTable& t : raw) {
    const logic::TruthTable canonical = canonicalize(t).canonical;
    if (keys.insert(npn_key(canonical)).second) out.push_back(canonical);
  }
  return out;
}

PrecomputeReport precompute(LatticeLibrary& lib,
                            const PrecomputeOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<logic::TruthTable> classes;
  if (options.classes4) {
    for (int n = 0; n <= 4; ++n) {
      const std::vector<logic::TruthTable> reps = npn_class_representatives(n);
      classes.insert(classes.end(), reps.begin(), reps.end());
    }
  }
  if (options.curated) {
    const std::vector<logic::TruthTable> extra = curated_targets(options.seed);
    classes.insert(classes.end(), extra.begin(), extra.end());
  }

  std::atomic<std::size_t> populated{0};
  std::atomic<std::size_t> improved{0};
  std::atomic<std::size_t> failures{0};
  util::parallel_for(
      classes.size(),
      [&](std::size_t i) {
        const logic::TruthTable& canonical = classes[i];
        const std::uint64_t key = npn_key(canonical);
        // Both phases are filled explicitly: relying on which output phase
        // canonicalize() happens to pick would leave the other slot cold
        // for self-complementary classes.
        for (const bool phase : {false, true}) {
          const logic::TruthTable want = phase ? ~canonical : canonical;
          if (!lib.find(key, phase)) {
            const auto t0 = std::chrono::steady_clock::now();
            lattice::Lattice lat = lattice::altun_riedel_synthesis(want);
            if (!lattice::realizes(lat, want)) {
              failures.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            LibraryEntry entry;
            entry.lattice = std::move(lat);
            entry.engine = "altun";
            entry.seed = 0;
            entry.cost_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            if (lib.insert(key, canonical, phase, std::move(entry))) {
              populated.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if (options.effort == PrecomputeOptions::Effort::kSat) {
            minimize_slot(lib, key, canonical, phase, want, options, improved);
          }
        }
      },
      options.max_threads);

  PrecomputeReport report;
  report.targets = classes.size() * 2;
  report.populated = populated.load();
  report.improved = improved.load();
  report.failures = failures.load();
  report.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return report;
}

}  // namespace ftl::library
