#include "ftl/library/store.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "ftl/jobs/digest.hpp"
#include "ftl/library/npn.hpp"
#include "ftl/util/error.hpp"

namespace ftl::library {
namespace {

constexpr const char* kJobName = "npn_lattice";

std::string cells_to_string(const lattice::Lattice& lat) {
  std::ostringstream os;
  for (int r = 0; r < lat.rows(); ++r) {
    for (int c = 0; c < lat.cols(); ++c) {
      if (r != 0 || c != 0) os << ' ';
      const lattice::CellValue& cell = lat.at(r, c);
      switch (cell.kind) {
        case lattice::CellValue::Kind::kConst0:
          os << '0';
          break;
        case lattice::CellValue::Kind::kConst1:
          os << '1';
          break;
        case lattice::CellValue::Kind::kLiteral:
          os << 'x' << cell.literal.var;
          if (!cell.literal.positive) os << '\'';
          break;
      }
    }
  }
  return os.str();
}

lattice::Lattice cells_from_string(const std::string& text, int rows, int cols,
                                   int num_vars) {
  lattice::Lattice lat(rows, cols, num_vars);
  std::istringstream is(text);
  std::string token;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (!(is >> token)) throw Error("npn_lattice record: too few cells");
      lattice::CellValue value;
      if (token == "0") {
        value = lattice::CellValue::zero();
      } else if (token == "1") {
        value = lattice::CellValue::one();
      } else if (token.size() >= 2 && token[0] == 'x') {
        const bool positive = token.back() != '\'';
        const std::string digits =
            token.substr(1, token.size() - (positive ? 1 : 2));
        const int var = std::stoi(digits);
        if (var < 0 || var >= num_vars) {
          throw Error("npn_lattice record: literal out of range");
        }
        value = lattice::CellValue::of(var, positive);
      } else {
        throw Error("npn_lattice record: bad cell token '" + token + "'");
      }
      lat.set(r, c, value);
    }
  }
  if (is >> token) throw Error("npn_lattice record: trailing cells");
  return lat;
}

void encode_entry(jobs::Artifact& a, const char* prefix, bool phase,
                  const LibraryEntry& entry) {
  const std::string p(prefix);
  a.notes[p + "_cells"] = cells_to_string(entry.lattice);
  a.notes[p + "_engine"] = entry.engine;
  a.notes[p + "_seed"] = jobs::digest_hex(entry.seed);
  a.scalars[p + "_rows"] = entry.lattice.rows();
  a.scalars[p + "_cols"] = entry.lattice.cols();
  a.scalars[p + "_cost_ms"] = entry.cost_ms;
  a.scalars[p + "_certified"] = entry.certified ? 1.0 : 0.0;
  a.add_row({phase ? 1.0 : 0.0, static_cast<double>(entry.lattice.rows()),
             static_cast<double>(entry.lattice.cols()),
             static_cast<double>(entry.lattice.cell_count())});
}

std::optional<LibraryEntry> decode_entry(const jobs::Artifact& a,
                                         const char* prefix, int num_vars) {
  const std::string p(prefix);
  const auto cells = a.notes.find(p + "_cells");
  if (cells == a.notes.end()) return std::nullopt;
  const int rows = static_cast<int>(a.scalar(p + "_rows"));
  const int cols = static_cast<int>(a.scalar(p + "_cols"));
  if (rows < 1 || cols < 1 || rows > 64 || cols > 64) {
    throw Error("npn_lattice record: bad dimensions");
  }
  LibraryEntry entry;
  entry.lattice = cells_from_string(cells->second, rows, cols, num_vars);
  entry.engine = a.note(p + "_engine");
  entry.seed = std::stoull(a.note(p + "_seed"), nullptr, 16);
  entry.cost_ms = a.scalar_or(p + "_cost_ms", 0.0);
  entry.certified = a.scalar_or(p + "_certified", 0.0) != 0.0;
  return entry;
}

jobs::Artifact class_to_artifact(const LibraryClass& cls) {
  jobs::Artifact a;
  a.set_columns({"phase", "rows", "cols", "cells"});
  a.scalars["num_vars"] = cls.canonical.num_vars();
  a.notes["table"] = jobs::digest_hex(cls.canonical.word(0));
  if (cls.direct) encode_entry(a, "d", false, *cls.direct);
  if (cls.complement) encode_entry(a, "c", true, *cls.complement);
  return a;
}

LibraryClass class_from_artifact(const jobs::Artifact& a) {
  const int num_vars = static_cast<int>(a.scalar("num_vars"));
  if (num_vars < 0 || num_vars > 6) {
    throw Error("npn_lattice record: bad num_vars");
  }
  LibraryClass cls;
  cls.canonical = logic::TruthTable::from_bits(
      num_vars, std::stoull(a.note("table"), nullptr, 16));
  cls.direct = decode_entry(a, "d", num_vars);
  cls.complement = decode_entry(a, "c", num_vars);
  return cls;
}

std::optional<LibraryEntry>& slot_of(LibraryClass& cls, bool complement) {
  return complement ? cls.complement : cls.direct;
}

/// Merge policy shared by insert() and disk fault-in: fewer cells wins,
/// ties keep the incumbent (so repeated runs are stable).
bool offer(std::optional<LibraryEntry>& slot, LibraryEntry entry) {
  if (slot && slot->lattice.cell_count() <= entry.lattice.cell_count()) {
    return false;
  }
  slot = std::move(entry);
  return true;
}

}  // namespace

LatticeLibrary::LatticeLibrary() = default;

LatticeLibrary::LatticeLibrary(std::string dir) : dir_(std::move(dir)) {
  FTL_EXPECTS(!dir_.empty());
  cache_.emplace(dir_);
}

LatticeLibrary::Shard& LatticeLibrary::shard_of(std::uint64_t key) {
  return shards_[jobs::mix64(key) >> 60];
}

const LatticeLibrary::Shard& LatticeLibrary::shard_of(
    std::uint64_t key) const {
  return shards_[jobs::mix64(key) >> 60];
}

std::optional<LibraryClass> LatticeLibrary::fault_in(std::uint64_t key) {
  if (!cache_) return std::nullopt;
  const std::optional<jobs::Artifact> artifact = cache_->load(kJobName, key);
  if (!artifact) return std::nullopt;
  LibraryClass loaded;
  try {
    loaded = class_from_artifact(*artifact);
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt record reads as a miss, like ResultCache
  }
  counters_.disk_loads.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.classes.try_emplace(key, loaded);
  if (!inserted) {
    if (loaded.direct) offer(it->second.direct, std::move(*loaded.direct));
    if (loaded.complement) {
      offer(it->second.complement, std::move(*loaded.complement));
    }
  }
  return it->second;
}

std::optional<LibraryEntry> LatticeLibrary::find(std::uint64_t key,
                                                 bool complement) {
  {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.classes.find(key);
    if (it != shard.classes.end()) {
      const std::optional<LibraryEntry>& slot =
          complement ? it->second.complement : it->second.direct;
      if (slot) return *slot;
    }
  }
  // The requested slot is not in memory; the on-disk record may still have
  // it (filled by an earlier process or a precompute run).
  if (std::optional<LibraryClass> cls = fault_in(key)) {
    const std::optional<LibraryEntry>& slot =
        complement ? cls->complement : cls->direct;
    if (slot) return *slot;
  }
  return std::nullopt;
}

bool LatticeLibrary::insert(std::uint64_t key,
                            const logic::TruthTable& canonical,
                            bool complement, LibraryEntry entry) {
  FTL_EXPECTS(npn_key(canonical) == key);
  FTL_EXPECTS(entry.lattice.num_vars() == canonical.num_vars() ||
              entry.lattice.num_vars() == 0 || canonical.num_vars() == 0);
  LibraryClass to_store;
  bool kept = false;
  bool was_filled = false;
  {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.classes.try_emplace(key);
    if (inserted) it->second.canonical = canonical;
    std::optional<LibraryEntry>& slot = slot_of(it->second, complement);
    was_filled = slot.has_value();
    kept = offer(slot, std::move(entry));
    if (kept) to_store = it->second;
  }
  if (!kept) return false;
  if (was_filled) {
    counters_.improvements.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.populates.fetch_add(1, std::memory_order_relaxed);
  }
  if (cache_) {
    cache_->store(kJobName, key, class_to_artifact(to_store));
    counters_.disk_stores.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool LatticeLibrary::stamp_certified(std::uint64_t key, bool complement,
                                     bool certified) {
  LibraryClass to_store;
  {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.classes.find(key);
    if (it == shard.classes.end()) return false;
    std::optional<LibraryEntry>& slot = slot_of(it->second, complement);
    if (!slot) return false;
    if (slot->certified == certified) return true;
    slot->certified = certified;
    to_store = it->second;
  }
  if (cache_) {
    cache_->store(kJobName, key, class_to_artifact(to_store));
    counters_.disk_stores.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::size_t LatticeLibrary::load_all() {
  if (cache_) {
    const std::string prefix = std::string(kJobName) + ".";
    std::error_code ec;
    for (const auto& dirent :
         std::filesystem::directory_iterator(dir_, ec)) {
      const std::string name = dirent.path().filename().string();
      if (name.size() != prefix.size() + 16 + 4 ||
          name.compare(0, prefix.size(), prefix) != 0 ||
          name.compare(name.size() - 4, 4, ".art") != 0) {
        continue;
      }
      const std::string hex = name.substr(prefix.size(), 16);
      std::uint64_t key = 0;
      try {
        key = std::stoull(hex, nullptr, 16);
      } catch (const std::exception&) {
        continue;
      }
      fault_in(key);
    }
  }
  return num_classes();
}

std::vector<std::pair<std::uint64_t, LibraryClass>> LatticeLibrary::snapshot()
    const {
  std::vector<std::pair<std::uint64_t, LibraryClass>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, cls] : shard.classes) out.emplace_back(key, cls);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t LatticeLibrary::num_classes() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.classes.size();
  }
  return n;
}

std::size_t LatticeLibrary::num_entries() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, cls] : shard.classes) {
      n += (cls.direct ? 1 : 0) + (cls.complement ? 1 : 0);
    }
  }
  return n;
}

LibraryStats LatticeLibrary::stats() const {
  LibraryStats s;
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.lookups = get(counters_.lookups);
  s.class_hits = get(counters_.class_hits);
  s.misses = get(counters_.misses);
  s.unapplies = get(counters_.unapplies);
  s.output_inversions = get(counters_.output_inversions);
  s.verify_rejects = get(counters_.verify_rejects);
  s.populates = get(counters_.populates);
  s.improvements = get(counters_.improvements);
  s.disk_loads = get(counters_.disk_loads);
  s.disk_stores = get(counters_.disk_stores);
  s.classes = num_classes();
  s.entries = num_entries();
  return s;
}

}  // namespace ftl::library
