#include "ftl/library/npn.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "ftl/jobs/digest.hpp"
#include "ftl/util/error.hpp"

namespace ftl::library {
namespace {

/// Minterm pattern of variable v: bit m is set iff m has bit v set. Anding
/// with a table word counts cofactor ones without materializing cofactors.
constexpr std::uint64_t kVarPattern[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};

std::uint64_t table_mask(int num_vars) {
  const std::uint64_t bits = std::uint64_t{1} << num_vars;
  return bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// map[x] = y with y_j = x_{perm[j]} ^ mask_j; applying a transform to a
/// word is then a 2^n-gather: result bit x = source bit map[x].
void build_map(int num_vars, const std::uint8_t* perm, std::uint32_t mask,
               std::uint8_t* map) {
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << num_vars); ++x) {
    std::uint64_t y = 0;
    for (int j = 0; j < num_vars; ++j) {
      y |= (((x >> perm[j]) ^ (mask >> j)) & 1) << j;
    }
    map[x] = static_cast<std::uint8_t>(y);
  }
}

std::uint64_t apply_map(std::uint64_t w, const std::uint8_t* map,
                        int num_vars) {
  std::uint64_t r = 0;
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << num_vars); ++x) {
    r |= ((w >> map[x]) & 1) << x;
  }
  return r;
}

/// One precomputed (perm, input-negation) pair of the exact group; the two
/// output phases are tried per application, so n! * 2^n entries cover the
/// full n! * 2^n * 2 transform group.
struct ExactEntry {
  std::array<std::uint8_t, 6> perm{{0, 1, 2, 3, 4, 5}};
  std::uint32_t mask = 0;
  std::array<std::uint8_t, 16> map{};
};

const std::vector<ExactEntry>& exact_entries(int num_vars) {
  static const std::array<std::vector<ExactEntry>, 5> all = [] {
    std::array<std::vector<ExactEntry>, 5> out;
    for (int n = 0; n <= 4; ++n) {
      std::array<int, 4> p{};
      std::iota(p.begin(), p.begin() + n, 0);
      do {
        for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
          ExactEntry e;
          for (int j = 0; j < n; ++j) {
            e.perm[static_cast<std::size_t>(j)] =
                static_cast<std::uint8_t>(p[static_cast<std::size_t>(j)]);
          }
          e.mask = mask;
          build_map(n, e.perm.data(), mask, e.map.data());
          out[static_cast<std::size_t>(n)].push_back(e);
        }
      } while (std::next_permutation(p.begin(), p.begin() + n));
    }
    return out;
  }();
  return all[static_cast<std::size_t>(num_vars)];
}

NpnCanonical canonicalize_exact(const logic::TruthTable& table) {
  const int n = table.num_vars();
  const std::uint64_t w = table.word(0);
  const std::uint64_t mask_all = table_mask(n);

  std::uint64_t best = ~std::uint64_t{0};
  NpnTransform best_t;
  best_t.num_vars = n;
  bool first = true;
  for (const ExactEntry& e : exact_entries(n)) {
    const std::uint64_t r = apply_map(w, e.map.data(), n);
    for (const bool out : {false, true}) {
      const std::uint64_t cand = out ? (r ^ mask_all) : r;
      if (first || cand < best) {
        first = false;
        best = cand;
        best_t.perm = e.perm;
        best_t.input_negations = e.mask;
        best_t.output_negation = out;
      }
    }
  }
  return {logic::TruthTable::from_bits(n, best), best_t};
}

// GCC 12 cannot see through the recursion that start/end stay within the
// 6-slot arrays and reports spurious -Warray-bounds from the inlined
// std::sort / std::next_permutation on the tie-block subranges.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"

/// Enumerates every permutation of `order` that keeps equal-key variables
/// within their (already sorted) tie block — the full set of orderings the
/// sort rule cannot distinguish.
template <typename Fn>
void tie_block_perms(std::array<int, 6>& order, const std::array<int, 6>& key,
                     int num_vars, int start, const Fn& fn) {
  if (start >= num_vars) {
    fn(order);
    return;
  }
  const int vars = std::min(num_vars, 6);  // bounds the recursion for -Warray
  if (start >= vars) {
    fn(order);
    return;
  }
  int end = start + 1;
  while (end < vars &&
         key[static_cast<std::size_t>(order[static_cast<std::size_t>(end)])] ==
             key[static_cast<std::size_t>(
                 order[static_cast<std::size_t>(start)])]) {
    ++end;
  }
  if (end - start == 1) {
    tie_block_perms(order, key, num_vars, end, fn);
    return;
  }
  const auto block_begin = order.begin() + start;
  const auto block_end = order.begin() + end;
  std::sort(block_begin, block_end);
  do {
    tie_block_perms(order, key, num_vars, end, fn);
  } while (std::next_permutation(block_begin, block_end));
  std::sort(block_begin, block_end);  // restore for the caller's loop
}

/// Semi-canonical search for 5-6 variables: every rule (output phase by
/// ones count, input polarity by cofactor ones, input order by sorted
/// cofactor ones) is intrinsic to the function and every tie branches, so
/// the candidate set is identical for all members of an NPN class and the
/// minimum over it is a class invariant. Worst case (fully symmetric,
/// balanced functions like parity) degenerates to the full group —
/// 2 * 2^6 * 6! = 92,160 candidates, still well under a millisecond.
NpnCanonical canonicalize_semi(const logic::TruthTable& table) {
  FTL_EXPECTS(table.num_vars() >= 5 && table.num_vars() <= 6);
  const int n = std::min(table.num_vars(), 6);  // clamp for -Warray-bounds
  const std::uint64_t w = table.word(0);
  const std::uint64_t mask_all = table_mask(n);
  const std::uint64_t minterms = std::uint64_t{1} << n;
  const int total = std::popcount(w & mask_all);
  const int half = static_cast<int>(minterms / 2);

  std::uint64_t best = ~std::uint64_t{0};
  NpnTransform best_t;
  best_t.num_vars = n;
  bool first = true;

  std::vector<bool> outs;
  if (total > half) {
    outs = {true};
  } else if (total < half) {
    outs = {false};
  } else {
    outs = {false, true};
  }

  for (const bool out : outs) {
    const std::uint64_t w0 = out ? (~w & mask_all) : w;
    // Per-variable polarity: require ones(x_v=1) <= ones(x_v=0); a strict
    // imbalance forces the choice, a tie branches both ways.
    std::vector<std::uint32_t> masks{0};
    for (int v = 0; v < n; ++v) {
      const int c1 = std::popcount(w0 & kVarPattern[v] & mask_all);
      const int c0 = std::popcount(w0 & ~kVarPattern[v] & mask_all);
      if (c1 > c0) {
        for (std::uint32_t& m : masks) m |= std::uint32_t{1} << v;
      } else if (c1 == c0) {
        const std::size_t size = masks.size();
        for (std::size_t i = 0; i < size; ++i) {
          masks.push_back(masks[i] | (std::uint32_t{1} << v));
        }
      }
    }
    for (const std::uint32_t m : masks) {
      // Polarity application is a pure minterm shuffle: w1[x] = w0[x ^ m].
      std::uint64_t w1 = 0;
      for (std::uint64_t x = 0; x < minterms; ++x) {
        w1 |= ((w0 >> (x ^ m)) & 1) << x;
      }
      std::array<int, 6> key{};
      for (int v = 0; v < n; ++v) {
        key[static_cast<std::size_t>(v)] =
            std::popcount(w1 & kVarPattern[v] & mask_all);
      }
      std::array<int, 6> order{{0, 1, 2, 3, 4, 5}};
      std::sort(order.begin(), order.begin() + n, [&](int a, int b) {
        const int ka = key[static_cast<std::size_t>(a)];
        const int kb = key[static_cast<std::size_t>(b)];
        return ka < kb || (ka == kb && a < b);
      });
      tie_block_perms(
          order, key, n, 0, [&](const std::array<int, 6>& ord) {
            // Final variable k must carry the k-th smallest key, i.e.
            // perm^-1(k) = ord[k], so perm[ord[k]] = k.
            std::array<std::uint8_t, 6> perm{{0, 1, 2, 3, 4, 5}};
            for (int k = 0; k < n; ++k) {
              perm[static_cast<std::size_t>(
                  ord[static_cast<std::size_t>(k)])] =
                  static_cast<std::uint8_t>(k);
            }
            std::uint64_t w2 = 0;
            for (std::uint64_t x = 0; x < minterms; ++x) {
              std::uint64_t y = 0;
              for (int j = 0; j < n; ++j) {
                y |= ((x >> perm[static_cast<std::size_t>(j)]) & 1) << j;
              }
              w2 |= ((w1 >> y) & 1) << x;
            }
            if (first || w2 < best) {
              first = false;
              best = w2;
              best_t.perm = perm;
              best_t.input_negations = m;
              best_t.output_negation = out;
            }
          });
    }
  }
  return {logic::TruthTable::from_bits(n, best), best_t};
}

#pragma GCC diagnostic pop

}  // namespace

bool NpnTransform::identity() const {
  if (input_negations != 0 || output_negation) return false;
  for (int j = 0; j < num_vars; ++j) {
    if (perm[static_cast<std::size_t>(j)] != j) return false;
  }
  return true;
}

NpnTransform NpnTransform::without_output_negation() const {
  NpnTransform out = *this;
  out.output_negation = false;
  return out;
}

logic::TruthTable apply_npn(const logic::TruthTable& table,
                            const NpnTransform& t) {
  FTL_EXPECTS(table.num_vars() == t.num_vars && t.num_vars <= 6);
  std::uint8_t map[64];
  build_map(t.num_vars, t.perm.data(), t.input_negations, map);
  std::uint64_t r = apply_map(table.word(0), map, t.num_vars);
  if (t.output_negation) r ^= table_mask(t.num_vars);
  return logic::TruthTable::from_bits(t.num_vars, r);
}

NpnTransform inverse(const NpnTransform& t) {
  NpnTransform out;
  out.num_vars = t.num_vars;
  out.output_negation = t.output_negation;
  for (int j = 0; j < t.num_vars; ++j) {
    const auto k = static_cast<std::size_t>(t.perm[static_cast<std::size_t>(j)]);
    out.perm[k] = static_cast<std::uint8_t>(j);
    out.input_negations |=
        ((t.input_negations >> j) & 1) << t.perm[static_cast<std::size_t>(j)];
  }
  return out;
}

NpnCanonical canonicalize(const logic::TruthTable& table) {
  FTL_EXPECTS(table.num_vars() <= 6);
  NpnCanonical out = table.num_vars() <= 4 ? canonicalize_exact(table)
                                           : canonicalize_semi(table);
  FTL_ENSURES(apply_npn(table, out.transform) == out.canonical);
  return out;
}

std::uint64_t npn_key(const logic::TruthTable& canonical) {
  FTL_EXPECTS(canonical.num_vars() <= 6);
  jobs::Digest d;
  d.str("ftl-npn-v1");
  d.u64(static_cast<std::uint64_t>(canonical.num_vars()));
  d.u64(canonical.word(0));
  return d.value();
}

lattice::Lattice relabel_lattice(const lattice::Lattice& lat,
                                 const NpnTransform& t,
                                 std::vector<std::string> var_names) {
  FTL_EXPECTS(!t.output_negation);
  FTL_EXPECTS(lat.num_vars() == t.num_vars);
  lattice::Lattice out(lat.rows(), lat.cols(), lat.num_vars(),
                       std::move(var_names));
  for (int r = 0; r < lat.rows(); ++r) {
    for (int c = 0; c < lat.cols(); ++c) {
      const lattice::CellValue& cell = lat.at(r, c);
      if (cell.kind != lattice::CellValue::Kind::kLiteral) {
        out.set(r, c, cell);
        continue;
      }
      const int j = cell.literal.var;
      const bool negate = ((t.input_negations >> j) & 1) != 0;
      out.set(r, c,
              lattice::CellValue::of(
                  t.perm[static_cast<std::size_t>(j)],
                  negate ? !cell.literal.positive : cell.literal.positive));
    }
  }
  return out;
}

}  // namespace ftl::library
