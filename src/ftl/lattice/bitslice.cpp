#include "ftl/lattice/bitslice.hpp"

#include "ftl/lattice/connectivity.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {
namespace {

/// kVarLanes[v] has bit k set exactly when bit v of k is set: the lane word
/// of positive literal x_v within any 64-aligned block.
constexpr std::uint64_t kVarLanes[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

}  // namespace

std::uint64_t cell_lane_word(const CellValue& value, std::uint64_t base) {
  switch (value.kind) {
    case CellValue::Kind::kConst0:
      return 0;
    case CellValue::Kind::kConst1:
      return ~std::uint64_t{0};
    case CellValue::Kind::kLiteral:
      break;
  }
  const int var = value.literal.var;
  std::uint64_t lanes;
  if (var < 6) {
    lanes = kVarLanes[var];
  } else {
    lanes = ((base >> var) & 1) != 0 ? ~std::uint64_t{0} : 0;
  }
  return value.literal.positive ? lanes : ~lanes;
}

std::uint64_t connected_lanes(const std::uint64_t* states, int rows, int cols,
                              std::uint64_t abort_zero_mask,
                              std::vector<std::uint64_t>& scratch) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  detail::count_block();

  const int n = rows * cols;
  scratch.assign(static_cast<std::size_t>(n), 0);
  std::uint64_t* reach = scratch.data();

  // Top-row cells that are ON touch the top plate by definition, and
  // R_i <= S_i everywhere, so row 0 is already at its fixpoint.
  for (int c = 0; c < cols; ++c) reach[c] = states[c];
  if (rows == 1) {
    std::uint64_t out = 0;
    for (int c = 0; c < cols; ++c) out |= reach[c];
    return out;
  }

  const int bottom = (rows - 1) * cols;
  bool changed = true;
  std::uint64_t out = 0;
  while (changed) {
    changed = false;
    // Forward sweep: carries reachability down and left-to-right in one
    // pass (Gauss–Seidel: updated neighbours are visible immediately).
    for (int i = cols; i < n; ++i) {
      const int c = i % cols;
      std::uint64_t acc = reach[i] | reach[i - cols];
      if (c > 0) acc |= reach[i - 1];
      if (c + 1 < cols) acc |= reach[i + 1];
      if (i + cols < n) acc |= reach[i + cols];
      acc &= states[i];
      if (acc != reach[i]) {
        reach[i] = acc;
        changed = true;
      }
    }
    out = 0;
    for (int c = 0; c < cols; ++c) out |= reach[bottom + c];
    if ((out & abort_zero_mask) != 0) return out;
    if (!changed) break;
    // Backward sweep: carries reachability up and right-to-left, so a
    // snaking path costs one forward+backward pair per direction reversal.
    changed = false;
    for (int i = n - 1; i >= cols; --i) {
      const int c = i % cols;
      std::uint64_t acc = reach[i] | reach[i - cols];
      if (c > 0) acc |= reach[i - 1];
      if (c + 1 < cols) acc |= reach[i + 1];
      if (i + cols < n) acc |= reach[i + cols];
      acc &= states[i];
      if (acc != reach[i]) {
        reach[i] = acc;
        changed = true;
      }
    }
    out = 0;
    for (int c = 0; c < cols; ++c) out |= reach[bottom + c];
    if ((out & abort_zero_mask) != 0) return out;
  }
  return out;
}

std::uint64_t connected_lanes(const std::uint64_t* states, int rows,
                              int cols) {
  std::vector<std::uint64_t> scratch;
  return connected_lanes(states, rows, cols, 0, scratch);
}

BitsliceEvaluator::BitsliceEvaluator(const Lattice& lattice)
    : rows_(lattice.rows()), cols_(lattice.cols()) {
  FTL_EXPECTS(rows_ >= 1 && cols_ >= 1);
  cells_.reserve(static_cast<std::size_t>(lattice.cell_count()));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) cells_.push_back(lattice.at(r, c));
  }
}

std::uint64_t BitsliceEvaluator::evaluate_block(
    std::uint64_t base, std::vector<std::uint64_t>& states_scratch,
    std::vector<std::uint64_t>& fix_scratch) const {
  FTL_EXPECTS((base & 63) == 0);
  states_scratch.resize(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    states_scratch[i] = cell_lane_word(cells_[i], base);
  }
  return connected_lanes(states_scratch.data(), rows_, cols_, 0, fix_scratch);
}

std::uint64_t BitsliceEvaluator::evaluate_block(std::uint64_t base) const {
  std::vector<std::uint64_t> states_scratch;
  std::vector<std::uint64_t> fix_scratch;
  return evaluate_block(base, states_scratch, fix_scratch);
}

}  // namespace ftl::lattice
