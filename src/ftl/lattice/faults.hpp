#pragma once
// Switch-fault analysis for lattices. The parent project of the paper
// (NANOxCOMP, ref [1]) pairs synthesis with *testing* of switching
// nano-crossbar arrays; this module quantifies a lattice's inherent defect
// tolerance: which single stuck-open (switch never conducts) or
// stuck-closed (always conducts) faults change the realized function, and
// which are masked by path redundancy.

#include <string>
#include <vector>

#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::lattice {

enum class FaultType {
  kStuckOpen,    ///< the switch never conducts (control stuck at 0)
  kStuckClosed,  ///< the switch always conducts (control stuck at 1)
};

std::string to_string(FaultType type);

/// One single-switch fault site.
struct Fault {
  int row = 0;
  int col = 0;
  FaultType type = FaultType::kStuckOpen;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Copy of `lattice` with the fault injected (the cell forced to a
/// constant, regardless of its control value).
Lattice inject_fault(const Lattice& lattice, const Fault& fault);

/// Result of exhaustive single-fault simulation against a target function.
struct FaultAnalysis {
  int total_faults = 0;          ///< 2 faults per cell
  std::vector<Fault> critical;   ///< faults that change the function
  std::vector<Fault> masked;     ///< faults absorbed by path redundancy

  /// Fraction of single faults the lattice tolerates ("inherent
  /// redundancy"). 0 when every fault is critical.
  double masking_ratio() const {
    return total_faults > 0
               ? static_cast<double>(masked.size()) / total_faults
               : 0.0;
  }
};

/// Simulates every single stuck-open/stuck-closed fault and classifies it
/// by whether the faulty lattice still realizes `target`.
/// Requires target.num_vars() == lattice.num_vars() (<= 26 variables).
FaultAnalysis analyze_single_faults(const Lattice& lattice,
                                    const logic::TruthTable& target);

/// Minimal test set: input assignments that together detect every critical
/// fault (greedy set cover over the fault/assignment detection matrix).
/// A fault is detected by an assignment when the faulty lattice's output
/// differs from the fault-free one there.
std::vector<std::uint64_t> greedy_test_set(const Lattice& lattice,
                                           const logic::TruthTable& target);

}  // namespace ftl::lattice
