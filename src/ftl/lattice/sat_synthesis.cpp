// CEGAR lattice synthesis: the CDCL solver proposes cell assignments that
// realize the target on a small care set of minterms; the bitslice kernel
// (the fast, trusted evaluator) checks each proposal on ALL minterms and
// feeds back mismatches as new care constraints. The loop ends in one of
// three ways, all explicit in SatSynthesisResult:
//   - a candidate survives the full bitslice scan (verified realization;
//     FTL_ENSURES(realizes(...)) re-checks before handing it out),
//   - the solver reports UNSAT — since the care-set encoding is a
//     relaxation of full realization, UNSAT on any subset proves no
//     rows×cols lattice realizes the target at all,
//   - the conflict/round budget runs out (no verdict either way).
// Termination without a budget: every round adds at least one minterm the
// previous candidate got wrong, and there are only 2^num_vars of them.

#include <bit>

#include "ftl/lattice/bitslice.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/sat/encode.hpp"
#include "ftl/sat/proof.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {

SatSynthesisResult synth_sat(const logic::TruthTable& target, int rows,
                             int cols, const SatSynthesisOptions& options,
                             std::vector<std::string> var_names) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 64);
  FTL_EXPECTS(target.num_vars() >= 1);
  FTL_EXPECTS(options.counterexamples_per_round >= 1);
  const int nv = target.num_vars();

  SatSynthesisResult result;
  result.seed = options.seed;

  sat::SolverOptions solver_options;
  solver_options.seed = options.seed;
  solver_options.certify = options.certify;
  sat::Solver solver(solver_options);
  sat::LatticeSynthesisCnf cnf(solver, rows, cols, nv,
                               options.allow_constants);
  if (options.symmetry_break) cnf.add_symmetry_breaking();
  const std::vector<CellValue> choices =
      search_candidate_values(nv, options.allow_constants);

  const std::size_t words = logic::TruthTable::word_count(nv);
  const std::uint64_t last_word_mask =
      nv >= 6 ? ~std::uint64_t{0}
              : (std::uint64_t{1} << target.num_minterms()) - 1;

  std::vector<std::uint64_t> states_scratch, fix_scratch;
  for (;;) {
    if (options.max_rounds > 0 && result.cegar_rounds >= options.max_rounds) {
      result.budget_exhausted = true;
      break;
    }
    if (options.max_conflicts >= 0) {
      const std::int64_t remaining =
          options.max_conflicts -
          static_cast<std::int64_t>(solver.stats().conflicts);
      if (remaining <= 0) {
        result.budget_exhausted = true;
        break;
      }
      solver.set_max_conflicts(remaining);
    }

    const sat::LBool verdict = solver.solve();
    ++result.cegar_rounds;
    sat::detail::count_cegar_round();
    if (verdict == sat::LBool::kFalse) {
      result.proven_infeasible = true;
      // The solver auto-checked its DRAT proof on the UNSAT exit (certify);
      // surface the outcome so callers can distinguish "proved infeasible"
      // from "proved infeasible, and the proof was machine-checked".
      if (options.certify) {
        const sat::DratCheckResult* check = solver.last_proof_check();
        result.proof_checked = check != nullptr;
        result.proof_valid = check != nullptr && check->valid;
        if (check != nullptr) result.proof_check_ms = check->check_ms;
      }
      break;
    }
    if (verdict == sat::LBool::kUndef) {
      result.budget_exhausted = true;
      break;
    }

    // Materialize the model and scan it against the target, 64 assignments
    // per fixpoint, collecting the first few mismatching minterms.
    Lattice candidate(rows, cols, nv, var_names);
    const std::vector<int> pick = cnf.decode();
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        candidate.set(
            r, c,
            choices[static_cast<std::size_t>(
                pick[static_cast<std::size_t>(r * cols + c)])]);
      }
    }
    const BitsliceEvaluator evaluator(candidate);
    std::vector<std::uint64_t> counterexamples;
    for (std::size_t w = 0;
         w < words && counterexamples.size() <
                          static_cast<std::size_t>(
                              options.counterexamples_per_round);
         ++w) {
      const std::uint64_t got =
          evaluator.evaluate_block(64 * w, states_scratch, fix_scratch);
      std::uint64_t diff = (got ^ target.word(w)) & last_word_mask;
      while (diff != 0 &&
             counterexamples.size() <
                 static_cast<std::size_t>(options.counterexamples_per_round)) {
        const int k = std::countr_zero(diff);
        diff &= diff - 1;
        counterexamples.push_back(64 * w + static_cast<std::uint64_t>(k));
      }
    }
    if (counterexamples.empty()) {
      FTL_ENSURES(realizes(candidate, target));
      result.lattice = std::move(candidate);
      break;
    }
    for (const std::uint64_t m : counterexamples) {
      cnf.add_care_minterm(m, target.get(m));
      ++result.care_minterms;
    }
  }

  result.solver = solver.stats();
  return result;
}

}  // namespace ftl::lattice
