#pragma once
// The switching lattice of §II: an m×n grid of four-terminal switches, each
// connected to its horizontal and vertical neighbours. Every switch carries
// a control value — a literal of the target function or a constant — and the
// lattice computes 1 when the ON switches connect the top plate to the
// bottom plate.

#include <cstdint>
#include <string>
#include <vector>

#include "ftl/logic/cube.hpp"

namespace ftl::lattice {

/// Control value placed on one lattice cell.
struct CellValue {
  enum class Kind { kConst0, kConst1, kLiteral };

  Kind kind = Kind::kConst0;
  logic::Literal literal;  ///< valid when kind == kLiteral

  static CellValue zero() { return {Kind::kConst0, {}}; }
  static CellValue one() { return {Kind::kConst1, {}}; }
  static CellValue of(int var, bool positive = true) {
    return {Kind::kLiteral, {var, positive}};
  }

  /// Switch state under `assignment` (bit v = value of variable v).
  bool evaluate(std::uint64_t assignment) const;

  std::string to_string(const std::vector<std::string>& names = {}) const;

  friend bool operator==(const CellValue&, const CellValue&) = default;
};

/// An m×n switching lattice over `num_vars` control variables.
class Lattice {
 public:
  Lattice() = default;

  /// All cells initialized to constant 0.
  Lattice(int rows, int cols, int num_vars,
          std::vector<std::string> var_names = {});

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_vars() const { return num_vars_; }
  int cell_count() const { return rows_ * cols_; }
  const std::vector<std::string>& var_names() const { return var_names_; }

  const CellValue& at(int row, int col) const;
  void set(int row, int col, CellValue value);

  /// Switch states for one input assignment, row-major.
  std::vector<bool> switch_states(std::uint64_t assignment) const;

  /// Lattice output for one input assignment: top-bottom connectivity of the
  /// ON switches.
  bool evaluate(std::uint64_t assignment) const;

  /// Multi-line rendering, one row of cells per line.
  std::string to_string() const;

 private:
  int index(int row, int col) const;

  int rows_ = 0;
  int cols_ = 0;
  int num_vars_ = 0;
  std::vector<CellValue> cells_;
  std::vector<std::string> var_names_;
};

}  // namespace ftl::lattice
