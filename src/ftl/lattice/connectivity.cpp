#include "ftl/lattice/connectivity.hpp"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "ftl/util/error.hpp"

namespace ftl::lattice {

namespace detail {
namespace {

std::atomic<std::uint64_t> g_assignments{0};
std::atomic<std::uint64_t> g_blocks{0};
std::atomic<std::uint64_t> g_lut_hits{0};
std::atomic<std::uint64_t> g_lut_builds{0};

}  // namespace

void count_block() {
  g_blocks.fetch_add(1, std::memory_order_relaxed);
  g_assignments.fetch_add(64, std::memory_order_relaxed);
}

void count_lut(bool hit) {
  (hit ? g_lut_hits : g_lut_builds).fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

EvalCounters eval_counters() {
  EvalCounters c;
  c.assignments = detail::g_assignments.load(std::memory_order_relaxed);
  c.blocks = detail::g_blocks.load(std::memory_order_relaxed);
  c.lut_hits = detail::g_lut_hits.load(std::memory_order_relaxed);
  c.lut_builds = detail::g_lut_builds.load(std::memory_order_relaxed);
  return c;
}

void reset_eval_counters() {
  detail::g_assignments.store(0, std::memory_order_relaxed);
  detail::g_blocks.store(0, std::memory_order_relaxed);
  detail::g_lut_hits.store(0, std::memory_order_relaxed);
  detail::g_lut_builds.store(0, std::memory_order_relaxed);
}

namespace {

/// Shared BFS over a generic "is cell ON" predicate.
template <typename StateFn>
bool connected_impl(StateFn on, int rows, int cols) {
  const int n = rows * cols;
  std::vector<int> stack;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  stack.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < cols; ++c) {
    if (on(c)) {
      seen[static_cast<std::size_t>(c)] = true;
      stack.push_back(c);
    }
  }
  while (!stack.empty()) {
    const int cell = stack.back();
    stack.pop_back();
    const int r = cell / cols;
    if (r == rows - 1) return true;
    const int c = cell % cols;
    const int nbrs[4] = {
        r > 0 ? cell - cols : -1,
        cell + cols,  // r+1 always < rows here because r != rows-1 was handled
        c > 0 ? cell - 1 : -1,
        c + 1 < cols ? cell + 1 : -1,
    };
    for (int nb : nbrs) {
      if (nb < 0 || nb >= n) continue;
      if (seen[static_cast<std::size_t>(nb)] || !on(nb)) continue;
      seen[static_cast<std::size_t>(nb)] = true;
      stack.push_back(nb);
    }
  }
  return false;
}

}  // namespace

bool top_bottom_connected(const std::vector<bool>& states, int rows, int cols) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  FTL_EXPECTS(states.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  return connected_impl([&states](int i) { return states[static_cast<std::size_t>(i)]; },
                        rows, cols);
}

bool top_bottom_connected_bits(std::uint64_t pattern, int rows, int cols) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 64);
  return connected_impl([pattern](int i) { return ((pattern >> i) & 1) != 0; },
                        rows, cols);
}

std::vector<bool> connectivity_lut(int rows, int cols) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 20);
  const std::uint64_t count = std::uint64_t{1} << (rows * cols);
  std::vector<bool> lut(static_cast<std::size_t>(count));
  for (std::uint64_t p = 0; p < count; ++p) {
    lut[static_cast<std::size_t>(p)] = top_bottom_connected_bits(p, rows, cols);
  }
  return lut;
}

const std::vector<bool>& connectivity_lut_cached(int rows, int cols) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 20);
  // unique_ptr values keep the table address stable across rehashes and map
  // growth, so returned references survive later insertions.
  static std::mutex mutex;
  static std::map<std::pair<int, int>, std::unique_ptr<const std::vector<bool>>>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = cache[{rows, cols}];
  const bool hit = slot != nullptr;
  if (!hit) {
    slot = std::make_unique<const std::vector<bool>>(
        connectivity_lut(rows, cols));
  }
  detail::count_lut(hit);
  return *slot;
}

}  // namespace ftl::lattice
