#include "ftl/lattice/lattice.hpp"

#include <sstream>

#include "ftl/lattice/connectivity.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {

bool CellValue::evaluate(std::uint64_t assignment) const {
  switch (kind) {
    case Kind::kConst0: return false;
    case Kind::kConst1: return true;
    case Kind::kLiteral: {
      const bool v = ((assignment >> literal.var) & 1) != 0;
      return literal.positive ? v : !v;
    }
  }
  return false;
}

std::string CellValue::to_string(const std::vector<std::string>& names) const {
  switch (kind) {
    case Kind::kConst0: return "0";
    case Kind::kConst1: return "1";
    case Kind::kLiteral: {
      std::string out;
      if (static_cast<std::size_t>(literal.var) < names.size()) {
        out = names[static_cast<std::size_t>(literal.var)];
      } else {
        out = 'x' + std::to_string(literal.var);
      }
      if (!literal.positive) out += '\'';
      return out;
    }
  }
  return "?";
}

Lattice::Lattice(int rows, int cols, int num_vars,
                 std::vector<std::string> var_names)
    : rows_(rows),
      cols_(cols),
      num_vars_(num_vars),
      cells_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)),
      var_names_(std::move(var_names)) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  FTL_EXPECTS(num_vars >= 0 && num_vars <= logic::Cube::kMaxVars);
  if (var_names_.empty()) {
    for (int v = 0; v < num_vars; ++v) var_names_.push_back('x' + std::to_string(v));
  }
  FTL_EXPECTS(static_cast<int>(var_names_.size()) == num_vars);
}

int Lattice::index(int row, int col) const {
  FTL_EXPECTS(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  return row * cols_ + col;
}

const CellValue& Lattice::at(int row, int col) const {
  return cells_[static_cast<std::size_t>(index(row, col))];
}

void Lattice::set(int row, int col, CellValue value) {
  if (value.kind == CellValue::Kind::kLiteral) {
    FTL_EXPECTS_MSG(value.literal.var >= 0 && value.literal.var < num_vars_,
                    "cell literal variable out of range");
  }
  cells_[static_cast<std::size_t>(index(row, col))] = value;
}

std::vector<bool> Lattice::switch_states(std::uint64_t assignment) const {
  std::vector<bool> states(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    states[i] = cells_[i].evaluate(assignment);
  }
  return states;
}

bool Lattice::evaluate(std::uint64_t assignment) const {
  return top_bottom_connected(switch_states(assignment), rows_, cols_);
}

std::string Lattice::to_string() const {
  // Fixed-width cells for alignment.
  std::size_t width = 1;
  for (const CellValue& c : cells_) {
    width = std::max(width, c.to_string(var_names_).size());
  }
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const std::string s = at(r, c).to_string(var_names_);
      os << s << std::string(width - s.size() + 1, ' ');
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ftl::lattice
