#pragma once
// Irredundant top-to-bottom path enumeration for m×n lattices.
//
// The lattice function (§II) is the OR over all *irredundant* paths of the
// AND of their switch variables: a path is redundant when its switch set
// contains the switch set of another path. A set of cells is a minimal
// top-bottom connector exactly when it is an induced (chordless) path of the
// grid graph whose first vertex is its only top-row cell and whose last
// vertex is its only bottom-row cell; this module enumerates and counts
// those. The counts reproduce Table I of the paper for 2 <= m,n <= 9.

#include <cstdint>
#include <functional>
#include <vector>

namespace ftl::lattice {

/// Number of products in the m×n lattice function — the number of
/// irredundant top-bottom paths.
///
/// Counting is enumeration-free: a frontier (simpath-style) dynamic program
/// memoizes per-column connection profiles while sweeping the grid row by
/// row, so Table I's 9×9 entry (38,930,447) is computed in milliseconds
/// without visiting the 38.9M paths. Supported range: cols <= 16 with
/// unbounded rows (counts are exact while they fit in uint64 — e.g. m×2
/// overflows beyond m = 92); wider grids fall back to the DFS enumerator,
/// which requires rows*cols <= 128. Anything else throws ContractViolation.
std::uint64_t count_products(int rows, int cols);

/// Reference counter: explicit DFS path enumeration (the engine behind
/// enumerate_products). Requires rows*cols <= 128. Kept as an independent
/// cross-check and benchmark baseline for the DP above.
std::uint64_t count_products_dfs(int rows, int cols);

/// Invokes `visit` with the row-major cell indices of every irredundant
/// path, in DFS order. Returns the number of paths visited. When
/// `max_paths` > 0, enumeration stops (and the function returns) after that
/// many paths. Requires rows*cols <= 128.
std::uint64_t enumerate_products(
    int rows, int cols,
    const std::function<void(const std::vector<int>&)>& visit,
    std::uint64_t max_paths = 0);

/// All irredundant paths as cell-index lists (use only for small lattices).
std::vector<std::vector<int>> all_products(int rows, int cols);

}  // namespace ftl::lattice
