#include "ftl/lattice/paths.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <utility>

#include "ftl/util/error.hpp"

namespace ftl::lattice {
namespace {

__extension__ using Mask = unsigned __int128;  // 81 cells for 9x9 > 64 bits

constexpr Mask bit(int i) { return Mask{1} << i; }

struct PathEnumerator {
  int rows;
  int cols;
  std::uint64_t limit;  // 0 = unlimited
  const std::function<void(const std::vector<int>&)>* visit;  // may be null

  std::vector<Mask> neighbor_mask;              // all 4-neighbours of a cell
  std::vector<std::array<int, 4>> neighbors;    // -1 padded
  std::uint64_t count = 0;
  std::vector<int> path;
  bool stopped = false;

  PathEnumerator(int r, int c) : rows(r), cols(c), limit(0), visit(nullptr) {
    const int n = rows * cols;
    neighbor_mask.assign(static_cast<std::size_t>(n), Mask{0});
    neighbors.assign(static_cast<std::size_t>(n), {-1, -1, -1, -1});
    for (int i = 0; i < n; ++i) {
      const int row = i / cols;
      const int col = i % cols;
      int k = 0;
      const auto add = [&](int j) {
        neighbors[static_cast<std::size_t>(i)][static_cast<std::size_t>(k++)] = j;
        neighbor_mask[static_cast<std::size_t>(i)] |= bit(j);
      };
      if (row + 1 < rows) add(i + cols);  // prefer downward extension first
      if (col + 1 < cols) add(i + 1);
      if (col > 0) add(i - 1);
      if (row > 0) add(i - cols);
    }
  }

  void emit() {
    ++count;
    if (visit != nullptr) (*visit)(path);
    if (limit != 0 && count >= limit) stopped = true;
  }

  /// Extends the induced path whose head is `head`. `forbidden` contains the
  /// top row, every path cell, and every neighbour of every interior (non-
  /// head) path cell, so any candidate outside it keeps the path chordless.
  void extend(int head, Mask forbidden) {
    const Mask next_forbidden =
        forbidden | neighbor_mask[static_cast<std::size_t>(head)];
    for (int nb : neighbors[static_cast<std::size_t>(head)]) {
      if (nb < 0 || stopped) break;  // -1 padding terminates the list
      if ((forbidden & bit(nb)) != 0) continue;
      path.push_back(nb);
      if (nb >= (rows - 1) * cols) {
        emit();  // reached the bottom row: complete, do not extend further
      } else {
        extend(nb, next_forbidden | bit(nb));
      }
      path.pop_back();
      if (stopped) return;
    }
  }

  std::uint64_t run() {
    // Top row mask: paths may contain exactly one top-row cell (their start).
    Mask top = 0;
    for (int c = 0; c < cols; ++c) top |= bit(c);
    if (rows == 1) {
      // Degenerate lattice: every single top-row cell touches both plates.
      for (int c = 0; c < cols && !stopped; ++c) {
        path.assign(1, c);
        emit();
      }
      path.clear();
      return count;
    }
    for (int c = 0; c < cols && !stopped; ++c) {
      path.assign(1, c);
      extend(c, top | bit(c));
    }
    path.clear();
    return count;
  }
};

// ---------------------------------------------------------------------------
// Frontier DP ("simpath"-style profile memoization).
//
// An irredundant product is an induced top-bottom path: a set of cells whose
// grid-induced subgraph is a simple path, whose only top-row cell is one
// endpoint and whose only bottom-row cell is the other. Because the subgraph
// is induced, *every* adjacency between chosen cells is an edge — so a
// row-major sweep can account for each cell's final degree exactly when its
// right and below neighbours are decided.
//
// The DP state is a profile of `cols` symbols describing, for each column,
// the frontier cell (the most recently decided cell in that column):
//   E  not chosen
//   B  chosen but saturated (interior cell, or the completed bottom cell)
//   S  chosen singleton: both path-ends, may take up to two more edges
//   L,R chosen end of a two-ended path component; components never cross in
//       a planar grid, so matching L/R like brackets pairs the two ends
//   T  chosen end of the component containing the (unique) top-row cell —
//      such a component has exactly one free end, since the top cell itself
//      is a final path endpoint and takes no further edges
// plus two flags: "a top-row cell was chosen" and "the path was completed"
// (a bottom-row cell connected to the T component).
//
// Any end symbol that leaves the frontier without connecting downward would
// be a dangling interior endpoint, which no completion can repair, so that
// branch dies immediately; so do forced edges into saturated cells and
// edges that would close a cycle. The state space is tiny (a few thousand
// profiles for 9×9), which is what turns Table I's 38.9M-path entry into a
// sub-millisecond count.
// ---------------------------------------------------------------------------

constexpr int kMaxDpCols = 16;  // 3 bits/column + 2 flags fit in 64 bits

enum : std::uint64_t { kE = 0, kB = 1, kS = 2, kL = 3, kR = 4, kT = 5 };

constexpr std::uint64_t kTopUsed = std::uint64_t{1} << 48;
constexpr std::uint64_t kDone = std::uint64_t{1} << 49;

std::uint64_t get_mark(std::uint64_t s, int c) { return (s >> (3 * c)) & 7; }

std::uint64_t set_mark(std::uint64_t s, int c, std::uint64_t m) {
  return (s & ~(std::uint64_t{7} << (3 * c))) | (m << (3 * c));
}

/// Bracket-matching partner of the L or R end at column `c`.
int partner_of(std::uint64_t s, int c, int cols) {
  int depth = 0;
  if (get_mark(s, c) == kL) {
    for (int j = c + 1; j < cols; ++j) {
      const std::uint64_t m = get_mark(s, j);
      if (m == kL) ++depth;
      if (m == kR && depth-- == 0) return j;
    }
  } else {
    for (int j = c - 1; j >= 0; --j) {
      const std::uint64_t m = get_mark(s, j);
      if (m == kR) ++depth;
      if (m == kL && depth-- == 0) return j;
    }
  }
  FTL_ENSURES(false && "unbalanced frontier profile");
  return -1;
}

bool is_end(std::uint64_t m) { return m == kS || m == kL || m == kR || m == kT; }

std::uint64_t count_products_dp(int rows, int cols) {
  std::unordered_map<std::uint64_t, std::uint64_t> cur, next;
  cur.emplace(0, 1);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      next.clear();
      for (const auto& [s, n] : cur) {
        const std::uint64_t u = get_mark(s, c);  // mark of cell (r-1, c)

        // Option A: leave (r, c) out of the path. The cell above leaves the
        // frontier; if it is still a connectable end it dangles — dead.
        if (u == kE || u == kB) next[set_mark(s, c, kE)] += n;

        // Option B: put (r, c) in the path. Adjacent chosen cells force
        // edges (induced subgraph).
        do {
          if (r == 0) {
            if ((s & kTopUsed) != 0) break;  // a second top-row cell
            next[set_mark(s, c, kT) | kTopUsed] += n;
            break;
          }
          // An up-neighbour singleton would exit with exactly one edge — a
          // dangling interior endpoint either way.
          if (u == kB || u == kS) break;
          if (r == rows - 1) {
            // The unique bottom-row cell: must finish the top component.
            if ((s & kDone) != 0 || u != kT) break;
            next[set_mark(s, c, kB) | kDone] += n;
            break;
          }
          const std::uint64_t left = (c > 0) ? get_mark(s, c - 1) : kE;
          if (left == kB) break;
          const bool conn_left = is_end(left);
          const bool conn_up = is_end(u);
          std::uint64_t ns = s;
          if (!conn_left && !conn_up) {
            ns = set_mark(ns, c, kS);
          } else if (conn_left != conn_up) {
            if (conn_up) {
              // The end at column c moves one row down; its role (and any
              // bracket partner, which is in another column) is unchanged.
              ns = set_mark(ns, c, u);
            } else if (left == kS) {
              // The singleton becomes the left end of a two-ended pair.
              ns = set_mark(set_mark(ns, c - 1, kL), c, kR);
            } else {
              // The left end saturates; this cell is the component's new
              // end, one column right — bracket order is preserved.
              ns = set_mark(set_mark(ns, c - 1, kB), c, left);
            }
          } else {
            // Both neighbours connect: this cell saturates immediately and
            // merges their components.
            if (left == kT && u == kT) break;  // two tops — impossible
            if (left == kL && u == kR && partner_of(s, c - 1, cols) == c) {
              break;  // the two ends of one component — a cycle
            }
            if (left == kS) {
              // {left, this} splices onto u's component; `left` becomes the
              // merged component's end and inherits u's role: T stays T,
              // and an L/R partner keeps its side of column c-1.
              ns = set_mark(set_mark(ns, c - 1, u), c, kB);
            } else {
              const int pl = (left == kT) ? -1 : partner_of(s, c - 1, cols);
              const int pu = (u == kT) ? -1 : partner_of(s, c, cols);
              ns = set_mark(set_mark(ns, c - 1, kB), c, kB);
              if (pl < 0) {
                ns = set_mark(ns, pu, kT);
              } else if (pu < 0) {
                ns = set_mark(ns, pl, kT);
              } else {
                ns = set_mark(ns, std::min(pl, pu), kL);
                ns = set_mark(ns, std::max(pl, pu), kR);
              }
            }
          }
          next[ns] += n;
        } while (false);
      }
      std::swap(cur, next);
    }
  }
  std::uint64_t total = 0;
  for (const auto& [s, n] : cur) {
    if ((s & kDone) != 0) total += n;
  }
  return total;
}

}  // namespace

std::uint64_t count_products(int rows, int cols) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  if (rows == 1) return cols;  // every top-row cell touches both plates
  if (cols <= kMaxDpCols) return count_products_dp(rows, cols);
  FTL_EXPECTS_MSG(rows * cols <= 128,
                  "count_products supports cols <= 16 (frontier DP) or "
                  "rows*cols <= 128 (DFS fallback)");
  return count_products_dfs(rows, cols);
}

std::uint64_t count_products_dfs(int rows, int cols) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 128);
  PathEnumerator e(rows, cols);
  return e.run();
}

std::uint64_t enumerate_products(
    int rows, int cols,
    const std::function<void(const std::vector<int>&)>& visit,
    std::uint64_t max_paths) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 128);
  PathEnumerator e(rows, cols);
  e.visit = &visit;
  e.limit = max_paths;
  return e.run();
}

std::vector<std::vector<int>> all_products(int rows, int cols) {
  std::vector<std::vector<int>> out;
  enumerate_products(rows, cols,
                     [&out](const std::vector<int>& p) { out.push_back(p); });
  return out;
}

}  // namespace ftl::lattice
