#include "ftl/lattice/paths.hpp"

#include <array>

#include "ftl/util/error.hpp"

namespace ftl::lattice {
namespace {

__extension__ using Mask = unsigned __int128;  // 81 cells for 9x9 > 64 bits

constexpr Mask bit(int i) { return Mask{1} << i; }

struct PathEnumerator {
  int rows;
  int cols;
  std::uint64_t limit;  // 0 = unlimited
  const std::function<void(const std::vector<int>&)>* visit;  // may be null

  std::vector<Mask> neighbor_mask;              // all 4-neighbours of a cell
  std::vector<std::array<int, 4>> neighbors;    // -1 padded
  std::uint64_t count = 0;
  std::vector<int> path;
  bool stopped = false;

  PathEnumerator(int r, int c) : rows(r), cols(c), limit(0), visit(nullptr) {
    const int n = rows * cols;
    neighbor_mask.assign(static_cast<std::size_t>(n), Mask{0});
    neighbors.assign(static_cast<std::size_t>(n), {-1, -1, -1, -1});
    for (int i = 0; i < n; ++i) {
      const int row = i / cols;
      const int col = i % cols;
      int k = 0;
      const auto add = [&](int j) {
        neighbors[static_cast<std::size_t>(i)][static_cast<std::size_t>(k++)] = j;
        neighbor_mask[static_cast<std::size_t>(i)] |= bit(j);
      };
      if (row + 1 < rows) add(i + cols);  // prefer downward extension first
      if (col + 1 < cols) add(i + 1);
      if (col > 0) add(i - 1);
      if (row > 0) add(i - cols);
    }
  }

  void emit() {
    ++count;
    if (visit != nullptr) (*visit)(path);
    if (limit != 0 && count >= limit) stopped = true;
  }

  /// Extends the induced path whose head is `head`. `forbidden` contains the
  /// top row, every path cell, and every neighbour of every interior (non-
  /// head) path cell, so any candidate outside it keeps the path chordless.
  void extend(int head, Mask forbidden) {
    const Mask next_forbidden =
        forbidden | neighbor_mask[static_cast<std::size_t>(head)];
    for (int nb : neighbors[static_cast<std::size_t>(head)]) {
      if (nb < 0 || stopped) break;  // -1 padding terminates the list
      if ((forbidden & bit(nb)) != 0) continue;
      path.push_back(nb);
      if (nb >= (rows - 1) * cols) {
        emit();  // reached the bottom row: complete, do not extend further
      } else {
        extend(nb, next_forbidden | bit(nb));
      }
      path.pop_back();
      if (stopped) return;
    }
  }

  std::uint64_t run() {
    // Top row mask: paths may contain exactly one top-row cell (their start).
    Mask top = 0;
    for (int c = 0; c < cols; ++c) top |= bit(c);
    if (rows == 1) {
      // Degenerate lattice: every single top-row cell touches both plates.
      for (int c = 0; c < cols && !stopped; ++c) {
        path.assign(1, c);
        emit();
      }
      path.clear();
      return count;
    }
    for (int c = 0; c < cols && !stopped; ++c) {
      path.assign(1, c);
      extend(c, top | bit(c));
    }
    path.clear();
    return count;
  }
};

}  // namespace

std::uint64_t count_products(int rows, int cols) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 128);
  PathEnumerator e(rows, cols);
  return e.run();
}

std::uint64_t enumerate_products(
    int rows, int cols,
    const std::function<void(const std::vector<int>&)>& visit,
    std::uint64_t max_paths) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 128);
  PathEnumerator e(rows, cols);
  e.visit = &visit;
  e.limit = max_paths;
  return e.run();
}

std::vector<std::vector<int>> all_products(int rows, int cols) {
  std::vector<std::vector<int>> out;
  enumerate_products(rows, cols,
                     [&out](const std::vector<int>& p) { out.push_back(p); });
  return out;
}

}  // namespace ftl::lattice
