#pragma once
// Derivation of the Boolean function a lattice computes.
//
// Two routes are provided and cross-checked in the tests:
//  1. semantic — evaluate top-bottom connectivity for every input assignment
//     (always available);
//  2. symbolic — substitute cell values into the irredundant path products of
//     the m×n grid function and simplify by absorption (small lattices).

#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/sop.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::lattice {

/// The m×n lattice function f_{m×n} over the rows*cols switch variables
/// (row-major x0..x_{mn-1}), as in Fig. 2c. Requires rows*cols <= 64.
logic::Sop grid_function(int rows, int cols);

/// Truth table of the function the lattice realizes. Requires
/// num_vars <= 26. Evaluation is bitsliced — 64 assignments per
/// connectivity fixpoint — and large tables (>= 16 blocks, i.e. 10+
/// variables) shard their blocks across util::parallel_for. Each block
/// writes its own output word, so the result is bit-identical regardless
/// of thread count; `max_threads` caps the parallelism (0 = global pool,
/// 1 = serial on the calling thread).
logic::TruthTable realized_truth_table(const Lattice& lattice,
                                       std::size_t max_threads = 0);

/// Reference implementation over the memoized connectivity LUT: assembles
/// the packed switch pattern per assignment and looks connectivity up.
/// Requires cell_count <= 20 (first use per shape builds a 2^cells table —
/// cheap up to ~12 cells, increasingly not beyond). Used by the checkers
/// and tests as an engine independent of the bitsliced kernel.
logic::TruthTable realized_truth_table_lut(const Lattice& lattice);

/// True when the lattice realizes exactly `target`. Compares bitsliced
/// 64-assignment blocks against the target words and stops at the first
/// mismatching block.
bool realizes(const Lattice& lattice, const logic::TruthTable& target);

/// Symbolic derivation: substitutes the cell values into every irredundant
/// path product and simplifies with absorption. Constant-0 cells kill their
/// paths; constant-1 cells vanish from products; contradictory products
/// (x·x') are dropped. Requires num_vars <= 64 and a small lattice.
logic::Sop realized_sop(const Lattice& lattice);

}  // namespace ftl::lattice
