#include "ftl/lattice/known_mappings.hpp"

#include "ftl/lattice/function.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {
namespace {

constexpr int kA = 0;
constexpr int kB = 1;
constexpr int kC = 2;

Lattice build(int rows, int cols, const std::vector<CellValue>& cells) {
  Lattice lat(rows, cols, 3, {"a", "b", "c"});
  FTL_EXPECTS(static_cast<int>(cells.size()) == rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      lat.set(r, c, cells[static_cast<std::size_t>(r * cols + c)]);
    }
  }
  return lat;
}

}  // namespace

logic::TruthTable xor3_truth_table() {
  return logic::TruthTable::from_function(3, [](std::uint64_t m) {
    return (((m >> 0) ^ (m >> 1) ^ (m >> 2)) & 1) != 0;
  });
}

Lattice xor3_lattice_3x3() {
  const auto a = [](bool pos) { return CellValue::of(kA, pos); };
  const auto b = [](bool pos) { return CellValue::of(kB, pos); };
  const auto c = [](bool pos) { return CellValue::of(kC, pos); };
  // Found by exhaustive_synthesis (no 3×3 mapping exists without a constant
  // cell — the constant-1 here mirrors the constant visible in the paper's
  // Fig. 3); re-verified against xor3_truth_table() in the test suite.
  return build(3, 3,
               {
                   a(true), b(false), a(false),        // row 0
                   c(true), CellValue::one(), c(false), // row 1
                   a(false), b(true), a(true),         // row 2
               });
}

Lattice xor3_lattice_3x4() {
  const auto a = [](bool pos) { return CellValue::of(kA, pos); };
  const auto b = [](bool pos) { return CellValue::of(kB, pos); };
  const auto c = [](bool pos) { return CellValue::of(kC, pos); };
  // Found by local_search_synthesis; verified in the test suite.
  return build(3, 4,
               {
                   c(true), b(true), a(false), c(false),
                   a(false), CellValue::one(), a(true), b(false),
                   c(false), b(false), c(true), a(true),
               });
}

}  // namespace ftl::lattice
