#pragma once
// Lattice synthesis: mapping a target Boolean function onto the control
// inputs of an m×n switching lattice (§II, Fig. 3).
//
// Three engines, in increasing cost:
//  - altun_riedel_synthesis: the dual-based construction of [Altun & Riedel,
//    IEEE TC 2012] (ref [9] of the paper). Produces a |ISOP(f^D)| ×
//    |ISOP(f)| lattice; fast, never fails, rarely minimal.
//  - exhaustive_synthesis: complete search over all cell assignments of a
//    fixed rows×cols lattice. Proves (non-)existence for tiny lattices; this
//    is how the paper's "3×3 is the minimum size for XOR3" claim is checked.
//  - local_search_synthesis: randomized hill climbing with restarts, for
//    sizes where exhaustive search is too expensive but a mapping is
//    believed to exist (e.g. the paper's 3×4 XOR3).

#include <cstdint>
#include <optional>

#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/bdd.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::lattice {

/// Dual-based synthesis; the returned lattice always realizes `target`.
/// Variable names are attached to the lattice when provided.
Lattice altun_riedel_synthesis(const logic::TruthTable& target,
                               std::vector<std::string> var_names = {});

/// BDD-backed variant of the same construction, for functions beyond the
/// 26-variable truth-table ceiling (cells can carry up to 64 variables).
/// The result is verified against `target` exhaustively up to 20 variables
/// and by dense random sampling above that.
Lattice altun_riedel_synthesis(logic::BddManager& manager,
                               logic::BddRef target,
                               std::vector<std::string> var_names = {});

struct SearchOptions {
  bool allow_constants = true;  ///< permit constant-0/1 cells
  std::uint64_t seed = 1;       ///< local search RNG seed
  int max_restarts = 200;       ///< local search restarts
  int max_iterations = 20000;   ///< moves per restart
  /// Thread cap for the sharded exhaustive search (0 = global pool,
  /// 1 = serial). The result is identical either way — shards join with
  /// lowest-index-wins, which reproduces the serial visit order.
  std::size_t max_threads = 0;
};

/// Complete enumeration over all assignments of a rows×cols lattice.
/// Returns the first realization found, or nullopt when none exists.
/// Requires rows*cols <= 20 and target.num_vars() <= 6; intended for the
/// small sizes where the search space (2*vars+2)^(rows*cols) is tractable.
///
/// Candidates are scored through the bitsliced connectivity kernel (all
/// 2^num_vars assignments in one fixpoint, aborting as soon as a
/// known-zero lane lights up), and the candidate space is sharded over
/// util::parallel_for by the slowest odometer digit. The first find of the
/// lowest-index shard is exactly the serial first find, so parallel and
/// serial runs return the same lattice.
std::optional<Lattice> exhaustive_synthesis(const logic::TruthTable& target,
                                            int rows, int cols,
                                            const SearchOptions& options = {},
                                            std::vector<std::string> var_names = {});

/// Randomized hill climbing with restarts. Returns a realization or nullopt
/// when the budget is exhausted (which does not prove non-existence).
std::optional<Lattice> local_search_synthesis(const logic::TruthTable& target,
                                              int rows, int cols,
                                              const SearchOptions& options = {},
                                              std::vector<std::string> var_names = {});

}  // namespace ftl::lattice
