#pragma once
// Lattice synthesis: mapping a target Boolean function onto the control
// inputs of an m×n switching lattice (§II, Fig. 3).
//
// Three engines, in increasing cost:
//  - altun_riedel_synthesis: the dual-based construction of [Altun & Riedel,
//    IEEE TC 2012] (ref [9] of the paper). Produces a |ISOP(f^D)| ×
//    |ISOP(f)| lattice; fast, never fails, rarely minimal.
//  - exhaustive_synthesis: complete search over all cell assignments of a
//    fixed rows×cols lattice. Proves (non-)existence for tiny lattices; this
//    is how the paper's "3×3 is the minimum size for XOR3" claim is checked.
//  - local_search_synthesis: randomized hill climbing with restarts, for
//    sizes where exhaustive search is too expensive but a mapping is
//    believed to exist (e.g. the paper's 3×4 XOR3).
//  - synth_sat: CDCL + CEGAR (lattice/sat_synthesis.cpp) for the sizes the
//    odometer cannot touch — 5×5+ lattices, 7+ variable targets.

#include <cstdint>
#include <optional>

#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/bdd.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/sat/solver.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {

/// Dual-based synthesis; the returned lattice always realizes `target`.
/// Variable names are attached to the lattice when provided.
Lattice altun_riedel_synthesis(const logic::TruthTable& target,
                               std::vector<std::string> var_names = {});

/// BDD-backed variant of the same construction, for functions beyond the
/// 26-variable truth-table ceiling (cells can carry up to 64 variables).
/// The result is verified against `target` exhaustively up to 20 variables
/// and by dense random sampling above that.
Lattice altun_riedel_synthesis(logic::BddManager& manager,
                               logic::BddRef target,
                               std::vector<std::string> var_names = {});

/// Candidate cell values in the order shared by every search engine: for
/// each variable v its positive then negative literal (indices 2v, 2v+1),
/// then constant-1 and constant-0 when allowed. sat::LatticeSynthesisCnf
/// mirrors these indices, which is what lets a decoded SAT model feed
/// straight into a Lattice and lets tests compare engines cell by cell.
std::vector<CellValue> search_candidate_values(int num_vars,
                                               bool allow_constants);

/// Thrown by exhaustive_synthesis when the candidate space
/// (num_choices ^ cells) exceeds SearchOptions::max_candidates — a typed
/// refusal instead of a silent multi-day grind. Sizes are doubles because
/// the spaces in question overflow 64 bits long before they get tractable.
class SearchBoundExceeded : public ftl::Error {
 public:
  SearchBoundExceeded(double candidates, double budget);
  double candidates() const { return candidates_; }
  double budget() const { return budget_; }

 private:
  double candidates_ = 0;
  double budget_ = 0;
};

struct SearchOptions {
  bool allow_constants = true;  ///< permit constant-0/1 cells
  /// Decision seed: drives the local-search RNG and is echoed by callers
  /// into results/logs so a reported lattice names the run that found it.
  std::uint64_t seed = 1;
  int max_restarts = 200;       ///< local search restarts
  int max_iterations = 20000;   ///< moves per restart
  /// Thread cap for the sharded exhaustive search (0 = global pool,
  /// 1 = serial). The result is identical either way — shards join with
  /// lowest-index-wins, which reproduces the serial visit order.
  std::size_t max_threads = 0;
  /// Candidate-space budget for exhaustive_synthesis: when
  /// num_choices ^ cells exceeds this, SearchBoundExceeded is thrown.
  /// The default admits every historical call site (largest: 14^9 ≈ 2e10)
  /// with headroom, while refusing 5×5 grids (14^25 ≈ 4e28) instantly.
  double max_candidates = 4e12;
  /// Exhaustive search only: skip candidates that are a row-reflection,
  /// column-reflection, or 180° rotation of an earlier candidate. The
  /// reflections preserve top-to-bottom connectivity, hence the realized
  /// function, so the earlier twin already covered the candidate — the
  /// first lattice found is bit-identical with the flag on or off, the
  /// fixpoint just runs on up to ~4x fewer candidates.
  bool symmetry_skip = true;
};

/// Complete enumeration over all assignments of a rows×cols lattice.
/// Returns the first realization found, or nullopt when none exists.
/// Requires rows*cols <= 20 and target.num_vars() <= 6; intended for the
/// small sizes where the search space (2*vars+2)^(rows*cols) is tractable.
///
/// Candidates are scored through the bitsliced connectivity kernel (all
/// 2^num_vars assignments in one fixpoint, aborting as soon as a
/// known-zero lane lights up), and the candidate space is sharded over
/// util::parallel_for by the slowest odometer digit. The first find of the
/// lowest-index shard is exactly the serial first find, so parallel and
/// serial runs return the same lattice.
std::optional<Lattice> exhaustive_synthesis(const logic::TruthTable& target,
                                            int rows, int cols,
                                            const SearchOptions& options = {},
                                            std::vector<std::string> var_names = {});

/// Randomized hill climbing with restarts. Returns a realization or nullopt
/// when the budget is exhausted (which does not prove non-existence).
std::optional<Lattice> local_search_synthesis(const logic::TruthTable& target,
                                              int rows, int cols,
                                              const SearchOptions& options = {},
                                              std::vector<std::string> var_names = {});

struct SatSynthesisOptions {
  bool allow_constants = true;  ///< permit constant-0/1 cells
  /// Decision seed for the CDCL variable order; echoed in the result.
  std::uint64_t seed = 1;
  /// Total CDCL conflict budget across all CEGAR rounds (-1 = unlimited).
  /// When it runs out the result reports budget_exhausted instead of an
  /// answer — synth_sat never silently grinds.
  std::int64_t max_conflicts = 2'000'000;
  /// Cap on CEGAR refinement rounds (0 = unlimited; the loop is bounded by
  /// 2^num_vars regardless, since every round adds a fresh care minterm).
  int max_rounds = 0;
  /// Counterexample minterms added per refinement round. More per round
  /// means fewer rounds but larger formulas; 4 is a good middle.
  int counterexamples_per_round = 4;
  /// Lex-leader symmetry breaking over the lattice's row/column reflection
  /// automorphisms, inside the CNF (the selector-layer analogue of
  /// SearchOptions::symmetry_skip; see
  /// LatticeSynthesisCnf::add_symmetry_breaking). Sound for any target —
  /// reflections preserve the realized function — and on by default.
  bool symmetry_break = true;
  /// Log a DRAT proof and validate any infeasibility verdict with the
  /// embedded checker; the outcome lands in proof_checked / proof_valid.
  bool certify = false;
};

struct SatSynthesisResult {
  /// The synthesized lattice; engaged iff the search succeeded, and always
  /// bitslice-verified to realize the target before being handed out.
  std::optional<Lattice> lattice;
  /// True when the SAT core proved no rows×cols lattice realizes the
  /// target (UNSAT of a relaxation is UNSAT of the full problem).
  bool proven_infeasible = false;
  /// True when the conflict or round budget ran out first (no verdict).
  bool budget_exhausted = false;
  int cegar_rounds = 0;    ///< refinement rounds executed
  int care_minterms = 0;   ///< minterms constrained when the loop stopped
  std::uint64_t seed = 1;  ///< decision seed used (from the options)
  sat::SolveStats solver;  ///< conflicts/decisions/propagations/restarts

  /// Certification of the infeasibility verdict (certify only): the final
  /// UNSAT's DRAT proof was run through the embedded checker, and whether
  /// it was accepted. A found lattice needs no proof — it is re-verified
  /// against the target by the bitslice kernel before being handed out.
  bool proof_checked = false;
  bool proof_valid = false;
  double proof_check_ms = 0.0;  ///< checker wall-clock
};

/// CEGAR lattice synthesis on the embedded CDCL solver: encode realization
/// on a growing care set of minterms (sat::LatticeSynthesisCnf), verify
/// candidate models with the bitslice kernel, and feed mismatching minterms
/// back as refinement constraints until the kernel confirms
/// realizes(target), UNSAT proves infeasibility, or the budget runs out.
/// Deterministic for fixed (target, rows, cols, options).
///
/// Requires num_vars in [1, 26] and rows*cols <= 64 — this is the engine
/// for the sizes exhaustive_synthesis refuses (5×5 grids, 7+ variables).
SatSynthesisResult synth_sat(const logic::TruthTable& target, int rows,
                             int cols, const SatSynthesisOptions& options = {},
                             std::vector<std::string> var_names = {});

}  // namespace ftl::lattice
