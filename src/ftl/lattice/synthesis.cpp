#include "ftl/lattice/synthesis.hpp"

#include <atomic>
#include <bit>
#include <optional>
#include <random>
#include <string>

#include "ftl/lattice/bitslice.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::lattice {

std::vector<CellValue> search_candidate_values(int num_vars,
                                               bool allow_constants) {
  std::vector<CellValue> out;
  for (int v = 0; v < num_vars; ++v) {
    out.push_back(CellValue::of(v, true));
    out.push_back(CellValue::of(v, false));
  }
  if (allow_constants) {
    out.push_back(CellValue::one());
    out.push_back(CellValue::zero());
  }
  return out;
}

SearchBoundExceeded::SearchBoundExceeded(double candidates, double budget)
    : ftl::Error("exhaustive_synthesis: candidate space " +
                 std::to_string(candidates) + " exceeds budget " +
                 std::to_string(budget) +
                 " (raise SearchOptions::max_candidates or use synth_sat)"),
      candidates_(candidates),
      budget_(budget) {}

namespace {

/// Per-choice truth vector: bit m = value of the choice under assignment m.
std::uint64_t choice_bits(const CellValue& value, std::uint64_t num_minterms) {
  std::uint64_t bits = 0;
  for (std::uint64_t m = 0; m < num_minterms; ++m) {
    if (value.evaluate(m)) bits |= std::uint64_t{1} << m;
  }
  return bits;
}

Lattice materialize(const logic::TruthTable& target, int rows, int cols,
                    const std::vector<CellValue>& choices,
                    const std::vector<int>& pick,
                    std::vector<std::string> var_names) {
  Lattice lat(rows, cols, target.num_vars(), std::move(var_names));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      lat.set(r, c, choices[static_cast<std::size_t>(pick[static_cast<std::size_t>(r * cols + c)])]);
    }
  }
  return lat;
}

/// Output lanes of one candidate: cell i's lane word is the truth vector of
/// its picked value (bit m = value under assignment m — with num_vars <= 6
/// that is exactly the bitslice lane layout), so one connectivity fixpoint
/// scores all 2^num_vars assignments at once. `abort_zero_mask` lanes (where
/// the target is 0) cut the fixpoint short on the first mismatch.
std::uint64_t candidate_lanes(const std::vector<std::uint64_t>& bits,
                              const std::vector<int>& pick, int rows, int cols,
                              std::uint64_t abort_zero_mask,
                              std::vector<std::uint64_t>& states,
                              std::vector<std::uint64_t>& scratch) {
  const std::size_t cells = pick.size();
  states.resize(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    states[i] = bits[static_cast<std::size_t>(pick[i])];
  }
  return connected_lanes(states.data(), rows, cols, abort_zero_mask, scratch);
}

}  // namespace

Lattice altun_riedel_synthesis(const logic::TruthTable& target,
                               std::vector<std::string> var_names) {
  const int nv = target.num_vars();
  if (target.is_zero() || target.is_one()) {
    Lattice lat(1, 1, nv, std::move(var_names));
    lat.set(0, 0, target.is_one() ? CellValue::one() : CellValue::zero());
    return lat;
  }

  const logic::Sop products = logic::isop(target);
  const logic::Sop duals = logic::isop_of_dual(target);
  FTL_ENSURES(!products.empty() && !duals.empty());

  const int rows = duals.size();
  const int cols = products.size();
  Lattice lat(rows, cols, nv, std::move(var_names));
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const auto shared =
          duals.cubes()[static_cast<std::size_t>(i)].shared_literals(
              products.cubes()[static_cast<std::size_t>(j)]);
      if (shared.empty()) {
        // Cannot happen for implicants of f and f^D (they always share a
        // literal); reaching this means the ISOPs are inconsistent.
        throw ftl::Error("altun_riedel_synthesis: product/dual pair shares no literal");
      }
      lat.set(i, j, CellValue{CellValue::Kind::kLiteral, shared.front()});
    }
  }
  FTL_ENSURES(realizes(lat, target));
  return lat;
}

Lattice altun_riedel_synthesis(logic::BddManager& manager,
                               logic::BddRef target,
                               std::vector<std::string> var_names) {
  const int nv = manager.num_vars();
  if (manager.is_zero(target) || manager.is_one(target)) {
    Lattice lat(1, 1, nv, std::move(var_names));
    lat.set(0, 0, manager.is_one(target) ? CellValue::one() : CellValue::zero());
    return lat;
  }

  const logic::Sop products = manager.isop(target);
  const logic::Sop duals = manager.isop(manager.dual(target));
  FTL_ENSURES(!products.empty() && !duals.empty());

  const int rows = duals.size();
  const int cols = products.size();
  Lattice lat(rows, cols, nv, std::move(var_names));
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const auto shared =
          duals.cubes()[static_cast<std::size_t>(i)].shared_literals(
              products.cubes()[static_cast<std::size_t>(j)]);
      if (shared.empty()) {
        throw ftl::Error("altun_riedel_synthesis(bdd): product/dual pair shares no literal");
      }
      lat.set(i, j, CellValue{CellValue::Kind::kLiteral, shared.front()});
    }
  }

  // Verification: exhaustive while affordable, dense sampling beyond.
  if (nv <= 20) {
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << nv); ++m) {
      FTL_ENSURES(lat.evaluate(m) == manager.evaluate(target, m));
    }
  } else {
    std::mt19937_64 rng(0x4c415454u);  // fixed seed: deterministic check
    for (int trial = 0; trial < 4096; ++trial) {
      const std::uint64_t m =
          rng() & ((nv >= 64) ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << nv) - 1));
      FTL_ENSURES(lat.evaluate(m) == manager.evaluate(target, m));
    }
  }
  return lat;
}

std::optional<Lattice> exhaustive_synthesis(const logic::TruthTable& target,
                                            int rows, int cols,
                                            const SearchOptions& options,
                                            std::vector<std::string> var_names) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 20);
  FTL_EXPECTS(target.num_vars() <= 6);
  const int cells = rows * cols;
  const std::uint64_t num_minterms = target.num_minterms();

  const std::vector<CellValue> choices =
      search_candidate_values(target.num_vars(), options.allow_constants);
  const int nc = static_cast<int>(choices.size());
  double candidate_space = 1.0;
  for (int i = 0; i < cells; ++i) candidate_space *= nc;
  if (candidate_space > options.max_candidates) {
    throw SearchBoundExceeded(candidate_space, options.max_candidates);
  }
  std::vector<std::uint64_t> bits(choices.size());
  for (std::size_t i = 0; i < choices.size(); ++i) {
    bits[i] = choice_bits(choices[i], num_minterms);
  }

  const std::uint64_t lane_mask =
      num_minterms >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << num_minterms) - 1;
  const std::uint64_t target_bits = target.word(0);
  const std::uint64_t zero_mask = ~target_bits & lane_mask;

  // Reflection twins: flipping the rows (top-bottom), the columns
  // (left-right), or both maps any top-to-bottom path onto a top-to-bottom
  // path of the reflected lattice, so a candidate and its reflections all
  // realize the same function. Each map sends cell index i to the index its
  // value came from; degenerate maps (identity when rows==1 / cols==1) are
  // dropped. Transposition is NOT a twin — it swaps the path direction and
  // generally changes the function.
  std::vector<std::vector<int>> twins;
  if (options.symmetry_skip) {
    const auto add_twin = [&](bool flip_rows, bool flip_cols) {
      std::vector<int> map(static_cast<std::size_t>(cells));
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          const int rr = flip_rows ? rows - 1 - r : r;
          const int cc = flip_cols ? cols - 1 - c : c;
          map[static_cast<std::size_t>(r * cols + c)] = rr * cols + cc;
        }
      }
      twins.push_back(std::move(map));
    };
    if (rows > 1) add_twin(true, false);
    if (cols > 1) add_twin(false, true);
    if (rows > 1 && cols > 1) add_twin(true, true);
  }
  // A candidate whose twin precedes it in the serial visit order (compare
  // digits slowest-first, i.e. d = cells-1 downto 0) can be skipped: the
  // twin realizes the same function and was (or will be, in a lower shard)
  // visited first, so the serial-first find — which by definition has no
  // earlier twin — is never skipped and parity with the unskipped search
  // holds exactly.
  const auto twin_precedes = [&](const std::vector<int>& pick) {
    for (const auto& map : twins) {
      for (int d = cells - 1; d >= 0; --d) {
        const int tv = pick[static_cast<std::size_t>(
            map[static_cast<std::size_t>(d)])];
        const int sv = pick[static_cast<std::size_t>(d)];
        if (tv != sv) {
          if (tv < sv) return true;
          break;  // this twin comes later; try the next one
        }
      }
    }
    return false;
  };

  // The serial odometer steps pick[0] fastest and pick[cells-1] slowest, so
  // fixing the slowest digit partitions the space into `nc` shards that
  // cover the serial order in shard-index order. Each shard records its own
  // first find; taking the lowest-index shard's find reproduces the serial
  // result exactly. `best` lets shards that can no longer win stop early.
  const int shards = nc;
  std::vector<std::optional<std::vector<int>>> found(
      static_cast<std::size_t>(shards));
  std::atomic<int> best{shards};
  util::parallel_for(
      static_cast<std::size_t>(shards),
      [&](std::size_t shard) {
        if (best.load(std::memory_order_relaxed) < static_cast<int>(shard)) {
          return;
        }
        std::vector<int> pick(static_cast<std::size_t>(cells), 0);
        pick[static_cast<std::size_t>(cells - 1)] = static_cast<int>(shard);
        std::vector<std::uint64_t> states, scratch;
        std::uint64_t steps = 0;
        for (;;) {
          if ((++steps & 1023) == 0 &&
              best.load(std::memory_order_relaxed) < static_cast<int>(shard)) {
            return;
          }
          if (!twin_precedes(pick)) {
            const std::uint64_t lanes = candidate_lanes(
                bits, pick, rows, cols, zero_mask, states, scratch);
            if ((lanes & lane_mask) == target_bits) {
              found[shard] = pick;
              int cur = best.load();
              while (static_cast<int>(shard) < cur &&
                     !best.compare_exchange_weak(cur, static_cast<int>(shard))) {
              }
              return;
            }
          }
          // Odometer over the shard's digits (all but the fixed slowest).
          int i = 0;
          while (i < cells - 1) {
            if (++pick[static_cast<std::size_t>(i)] < nc) break;
            pick[static_cast<std::size_t>(i)] = 0;
            ++i;
          }
          if (i == cells - 1) return;  // shard exhausted
        }
      },
      options.max_threads);
  for (std::size_t shard = 0; shard < found.size(); ++shard) {
    if (!found[shard]) continue;
    Lattice lat =
        materialize(target, rows, cols, choices, *found[shard], std::move(var_names));
    // Cross-check the bitsliced kernel's verdict against the independent
    // memoized-LUT engine before handing the lattice out.
    FTL_ENSURES(realized_truth_table_lut(lat) == target);
    return lat;
  }
  return std::nullopt;
}

std::optional<Lattice> local_search_synthesis(const logic::TruthTable& target,
                                              int rows, int cols,
                                              const SearchOptions& options,
                                              std::vector<std::string> var_names) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 20);
  FTL_EXPECTS(target.num_vars() <= 6);
  const int cells = rows * cols;
  const std::uint64_t num_minterms = target.num_minterms();

  const std::vector<CellValue> choices =
      search_candidate_values(target.num_vars(), options.allow_constants);
  const int nc = static_cast<int>(choices.size());
  std::vector<std::uint64_t> bits(choices.size());
  for (std::size_t i = 0; i < choices.size(); ++i) {
    bits[i] = choice_bits(choices[i], num_minterms);
  }
  const std::uint64_t lane_mask =
      num_minterms >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << num_minterms) - 1;
  const std::uint64_t target_bits = target.word(0);

  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> cell_dist(0, cells - 1);
  std::uniform_int_distribution<int> choice_dist(0, nc - 1);

  std::vector<std::uint64_t> states, scratch;
  const auto cost = [&](const std::vector<int>& pick) {
    // Hill climbing needs the exact mismatch count, so no abort mask here:
    // the fixpoint runs to completion and the XOR popcount is the cost.
    const std::uint64_t lanes =
        candidate_lanes(bits, pick, rows, cols, 0, states, scratch);
    return std::popcount((lanes & lane_mask) ^ target_bits);
  };

  for (int restart = 0; restart < options.max_restarts; ++restart) {
    std::vector<int> pick(static_cast<std::size_t>(cells));
    for (int& p : pick) p = choice_dist(rng);
    int current = cost(pick);
    for (int iter = 0; iter < options.max_iterations && current > 0; ++iter) {
      const int cell = cell_dist(rng);
      const int old_choice = pick[static_cast<std::size_t>(cell)];
      const int new_choice = choice_dist(rng);
      if (new_choice == old_choice) continue;
      pick[static_cast<std::size_t>(cell)] = new_choice;
      const int next = cost(pick);
      if (next <= current) {
        current = next;  // greedy with sideways moves to escape plateaus
      } else {
        pick[static_cast<std::size_t>(cell)] = old_choice;
      }
    }
    if (current == 0) {
      Lattice lat =
          materialize(target, rows, cols, choices, pick, std::move(var_names));
      // Same independent cross-check as the exhaustive engine.
      FTL_ENSURES(realized_truth_table_lut(lat) == target);
      return lat;
    }
  }
  return std::nullopt;
}

}  // namespace ftl::lattice
