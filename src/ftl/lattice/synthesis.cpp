#include "ftl/lattice/synthesis.hpp"

#include <random>
#include <string>

#include "ftl/lattice/connectivity.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {
namespace {

/// Candidate cell values for search engines: all literals, plus constants.
std::vector<CellValue> candidate_values(int num_vars, bool allow_constants) {
  std::vector<CellValue> out;
  for (int v = 0; v < num_vars; ++v) {
    out.push_back(CellValue::of(v, true));
    out.push_back(CellValue::of(v, false));
  }
  if (allow_constants) {
    out.push_back(CellValue::one());
    out.push_back(CellValue::zero());
  }
  return out;
}

/// Per-choice truth vector: bit m = value of the choice under assignment m.
std::uint64_t choice_bits(const CellValue& value, std::uint64_t num_minterms) {
  std::uint64_t bits = 0;
  for (std::uint64_t m = 0; m < num_minterms; ++m) {
    if (value.evaluate(m)) bits |= std::uint64_t{1} << m;
  }
  return bits;
}

Lattice materialize(const logic::TruthTable& target, int rows, int cols,
                    const std::vector<CellValue>& choices,
                    const std::vector<int>& pick,
                    std::vector<std::string> var_names) {
  Lattice lat(rows, cols, target.num_vars(), std::move(var_names));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      lat.set(r, c, choices[static_cast<std::size_t>(pick[static_cast<std::size_t>(r * cols + c)])]);
    }
  }
  return lat;
}

}  // namespace

Lattice altun_riedel_synthesis(const logic::TruthTable& target,
                               std::vector<std::string> var_names) {
  const int nv = target.num_vars();
  if (target.is_zero() || target.is_one()) {
    Lattice lat(1, 1, nv, std::move(var_names));
    lat.set(0, 0, target.is_one() ? CellValue::one() : CellValue::zero());
    return lat;
  }

  const logic::Sop products = logic::isop(target);
  const logic::Sop duals = logic::isop_of_dual(target);
  FTL_ENSURES(!products.empty() && !duals.empty());

  const int rows = duals.size();
  const int cols = products.size();
  Lattice lat(rows, cols, nv, std::move(var_names));
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const auto shared =
          duals.cubes()[static_cast<std::size_t>(i)].shared_literals(
              products.cubes()[static_cast<std::size_t>(j)]);
      if (shared.empty()) {
        // Cannot happen for implicants of f and f^D (they always share a
        // literal); reaching this means the ISOPs are inconsistent.
        throw ftl::Error("altun_riedel_synthesis: product/dual pair shares no literal");
      }
      lat.set(i, j, CellValue{CellValue::Kind::kLiteral, shared.front()});
    }
  }
  FTL_ENSURES(realizes(lat, target));
  return lat;
}

Lattice altun_riedel_synthesis(logic::BddManager& manager,
                               logic::BddRef target,
                               std::vector<std::string> var_names) {
  const int nv = manager.num_vars();
  if (manager.is_zero(target) || manager.is_one(target)) {
    Lattice lat(1, 1, nv, std::move(var_names));
    lat.set(0, 0, manager.is_one(target) ? CellValue::one() : CellValue::zero());
    return lat;
  }

  const logic::Sop products = manager.isop(target);
  const logic::Sop duals = manager.isop(manager.dual(target));
  FTL_ENSURES(!products.empty() && !duals.empty());

  const int rows = duals.size();
  const int cols = products.size();
  Lattice lat(rows, cols, nv, std::move(var_names));
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const auto shared =
          duals.cubes()[static_cast<std::size_t>(i)].shared_literals(
              products.cubes()[static_cast<std::size_t>(j)]);
      if (shared.empty()) {
        throw ftl::Error("altun_riedel_synthesis(bdd): product/dual pair shares no literal");
      }
      lat.set(i, j, CellValue{CellValue::Kind::kLiteral, shared.front()});
    }
  }

  // Verification: exhaustive while affordable, dense sampling beyond.
  if (nv <= 20) {
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << nv); ++m) {
      FTL_ENSURES(lat.evaluate(m) == manager.evaluate(target, m));
    }
  } else {
    std::mt19937_64 rng(0x4c415454u);  // fixed seed: deterministic check
    for (int trial = 0; trial < 4096; ++trial) {
      const std::uint64_t m =
          rng() & ((nv >= 64) ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << nv) - 1));
      FTL_ENSURES(lat.evaluate(m) == manager.evaluate(target, m));
    }
  }
  return lat;
}

std::optional<Lattice> exhaustive_synthesis(const logic::TruthTable& target,
                                            int rows, int cols,
                                            const SearchOptions& options,
                                            std::vector<std::string> var_names) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 20);
  FTL_EXPECTS(target.num_vars() <= 6);
  const int cells = rows * cols;
  const std::uint64_t num_minterms = target.num_minterms();

  const std::vector<CellValue> choices =
      candidate_values(target.num_vars(), options.allow_constants);
  const int nc = static_cast<int>(choices.size());
  std::vector<std::uint64_t> bits(choices.size());
  for (std::size_t i = 0; i < choices.size(); ++i) {
    bits[i] = choice_bits(choices[i], num_minterms);
  }

  const std::vector<bool> lut = connectivity_lut(rows, cols);

  std::vector<int> pick(static_cast<std::size_t>(cells), 0);
  for (;;) {
    // Evaluate the candidate on every input assignment; early exit on the
    // first mismatch.
    bool ok = true;
    for (std::uint64_t m = 0; m < num_minterms && ok; ++m) {
      std::uint64_t pattern = 0;
      for (int i = 0; i < cells; ++i) {
        pattern |= ((bits[static_cast<std::size_t>(pick[static_cast<std::size_t>(i)])] >> m) & 1)
                   << i;
      }
      ok = (lut[static_cast<std::size_t>(pattern)] == target.get(m));
    }
    if (ok) {
      return materialize(target, rows, cols, choices, pick, std::move(var_names));
    }
    // Odometer increment.
    int i = 0;
    while (i < cells) {
      if (++pick[static_cast<std::size_t>(i)] < nc) break;
      pick[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == cells) return std::nullopt;
  }
}

std::optional<Lattice> local_search_synthesis(const logic::TruthTable& target,
                                              int rows, int cols,
                                              const SearchOptions& options,
                                              std::vector<std::string> var_names) {
  FTL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols <= 20);
  FTL_EXPECTS(target.num_vars() <= 6);
  const int cells = rows * cols;
  const std::uint64_t num_minterms = target.num_minterms();

  const std::vector<CellValue> choices =
      candidate_values(target.num_vars(), options.allow_constants);
  const int nc = static_cast<int>(choices.size());
  std::vector<std::uint64_t> bits(choices.size());
  for (std::size_t i = 0; i < choices.size(); ++i) {
    bits[i] = choice_bits(choices[i], num_minterms);
  }
  const std::vector<bool> lut = connectivity_lut(rows, cols);

  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> cell_dist(0, cells - 1);
  std::uniform_int_distribution<int> choice_dist(0, nc - 1);

  const auto cost = [&](const std::vector<int>& pick) {
    int mismatches = 0;
    for (std::uint64_t m = 0; m < num_minterms; ++m) {
      std::uint64_t pattern = 0;
      for (int i = 0; i < cells; ++i) {
        pattern |= ((bits[static_cast<std::size_t>(pick[static_cast<std::size_t>(i)])] >> m) & 1)
                   << i;
      }
      if (lut[static_cast<std::size_t>(pattern)] != target.get(m)) ++mismatches;
    }
    return mismatches;
  };

  for (int restart = 0; restart < options.max_restarts; ++restart) {
    std::vector<int> pick(static_cast<std::size_t>(cells));
    for (int& p : pick) p = choice_dist(rng);
    int current = cost(pick);
    for (int iter = 0; iter < options.max_iterations && current > 0; ++iter) {
      const int cell = cell_dist(rng);
      const int old_choice = pick[static_cast<std::size_t>(cell)];
      const int new_choice = choice_dist(rng);
      if (new_choice == old_choice) continue;
      pick[static_cast<std::size_t>(cell)] = new_choice;
      const int next = cost(pick);
      if (next <= current) {
        current = next;  // greedy with sideways moves to escape plateaus
      } else {
        pick[static_cast<std::size_t>(cell)] = old_choice;
      }
    }
    if (current == 0) {
      return materialize(target, rows, cols, choices, pick, std::move(var_names));
    }
  }
  return std::nullopt;
}

}  // namespace ftl::lattice
