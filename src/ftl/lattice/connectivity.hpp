#pragma once
// Top-plate to bottom-plate connectivity over a grid of switch states — the
// semantic core of the four-terminal switching model. A lattice evaluates to
// 1 exactly when the ON switches form a connected path from any top-row cell
// to any bottom-row cell (4-neighbour adjacency).

#include <cstdint>
#include <vector>

namespace ftl::lattice {

/// BFS connectivity query on an explicit state grid (row-major, rows*cols).
bool top_bottom_connected(const std::vector<bool>& states, int rows, int cols);

/// Connectivity where the states are packed into the low rows*cols bits of
/// `pattern` (row-major). Requires rows*cols <= 64.
bool top_bottom_connected_bits(std::uint64_t pattern, int rows, int cols);

/// Precomputed connectivity for every ON/OFF pattern of a small grid
/// (rows*cols <= 20). Index = packed row-major pattern. Used by the
/// exhaustive lattice search.
std::vector<bool> connectivity_lut(int rows, int cols);

/// Memoized connectivity_lut: one table per (rows, cols) shape, built on
/// first use under a mutex and shared for the process lifetime. Safe to call
/// concurrently; the returned reference is never invalidated. Serve and
/// designer workloads hit the same few shapes repeatedly, so the 2^cells
/// rebuild cost is paid once per shape instead of once per call.
const std::vector<bool>& connectivity_lut_cached(int rows, int cols);

/// Evaluation-core counters, accumulated process-wide across every engine
/// (bitsliced blocks, cached-LUT lookups). Monotonic; surfaced by the serve
/// `stats` op so throughput regressions are observable in production.
struct EvalCounters {
  std::uint64_t assignments = 0;  ///< input assignments evaluated (64/block)
  std::uint64_t blocks = 0;       ///< 64-wide bitsliced blocks propagated
  std::uint64_t lut_hits = 0;     ///< connectivity_lut_cached served from memo
  std::uint64_t lut_builds = 0;   ///< connectivity_lut_cached tables built
};

/// Snapshot of the process-wide counters (relaxed atomics: values are
/// individually exact but not mutually synchronized).
EvalCounters eval_counters();

/// Resets all counters to zero (test support).
void reset_eval_counters();

namespace detail {
/// Accounting hooks for the kernels (relaxed atomic increments).
void count_block();
void count_lut(bool hit);
}  // namespace detail

}  // namespace ftl::lattice
