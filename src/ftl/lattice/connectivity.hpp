#pragma once
// Top-plate to bottom-plate connectivity over a grid of switch states — the
// semantic core of the four-terminal switching model. A lattice evaluates to
// 1 exactly when the ON switches form a connected path from any top-row cell
// to any bottom-row cell (4-neighbour adjacency).

#include <cstdint>
#include <vector>

namespace ftl::lattice {

/// BFS connectivity query on an explicit state grid (row-major, rows*cols).
bool top_bottom_connected(const std::vector<bool>& states, int rows, int cols);

/// Connectivity where the states are packed into the low rows*cols bits of
/// `pattern` (row-major). Requires rows*cols <= 64.
bool top_bottom_connected_bits(std::uint64_t pattern, int rows, int cols);

/// Precomputed connectivity for every ON/OFF pattern of a small grid
/// (rows*cols <= 20). Index = packed row-major pattern. Used by the
/// exhaustive lattice search.
std::vector<bool> connectivity_lut(int rows, int cols);

}  // namespace ftl::lattice
