#pragma once
// Concrete lattice mappings referenced by the paper.
//
// Fig. 3 shows XOR3 = a⊕b⊕c realized on a 3×4 lattice and on the
// minimum-size 3×3 lattice. The exact per-cell assignment is not legible in
// the paper text, so the mappings here were produced by this library's own
// search engines (and are verified against the XOR3 truth table in the test
// suite); the sizes match the paper's.

#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::lattice {

/// Truth table of out = a ⊕ b ⊕ c over variables {a, b, c} (vars 0, 1, 2).
logic::TruthTable xor3_truth_table();

/// The paper's Fig. 3b: XOR3 on the minimum-size 3×3 lattice.
Lattice xor3_lattice_3x3();

/// The paper's Fig. 3a: XOR3 on a 3×4 lattice.
Lattice xor3_lattice_3x4();

}  // namespace ftl::lattice
