#pragma once
// Bitsliced (word-parallel) lattice evaluation: 64 input assignments at a
// time. Each cell's ON/OFF state across a block of 64 consecutive
// assignments is one 64-bit lane word (bit k = state under assignment
// base + k), and top-plate reachability is propagated over the whole block
// with AND/OR fixpoint sweeps instead of one BFS per assignment. A block's
// output word drops directly into a logic::TruthTable word — the layouts
// are identical by construction.

#include <cstdint>
#include <vector>

#include "ftl/lattice/lattice.hpp"

namespace ftl::lattice {

/// Word-parallel top-bottom connectivity over explicit lane words. Bit k of
/// `states[i]` is cell i's ON/OFF state in lane k (row-major cells). Returns
/// the output lanes: bit k set when the ON cells of lane k connect the top
/// row to the bottom row.
///
/// Reachability R starts as the ON states of the top row and grows
/// monotonically under R_i = S_i & (R_i | OR of 4-neighbour R) until a
/// fixpoint; alternating forward/backward sweeps keep the iteration count
/// proportional to the number of direction reversals of the longest path,
/// not the cell count.
///
/// `abort_zero_mask` enables the search engines' abort-on-first-mismatch:
/// lanes the caller knows must evaluate to 0. Because R only grows, a bottom
/// output bit, once set, stays set — so as soon as any masked lane lights
/// up the candidate is refuted and the fixpoint returns early (the partial
/// result still has the offending bit set). Pass 0 for an exact result.
///
/// `scratch` is reused storage for the reachability words (resized as
/// needed); hot callers keep one buffer per thread to avoid reallocation.
std::uint64_t connected_lanes(const std::uint64_t* states, int rows, int cols,
                              std::uint64_t abort_zero_mask,
                              std::vector<std::uint64_t>& scratch);

/// Convenience overload with private scratch and no abort mask.
std::uint64_t connected_lanes(const std::uint64_t* states, int rows, int cols);

/// Evaluates a fixed lattice on 64-assignment blocks. The constructor
/// flattens the cell values once; evaluate_block() then builds the per-cell
/// lane words for a block and runs connected_lanes. Stateless per call and
/// therefore safe to share across threads.
class BitsliceEvaluator {
 public:
  explicit BitsliceEvaluator(const Lattice& lattice);

  /// Output lanes for assignments base .. base+63 (bit k = f(base + k)).
  /// `base` must be a multiple of 64. For lattices with fewer than 6
  /// variables the lanes beyond 2^num_vars are evaluated under don't-care
  /// high bits; callers mask them off (TruthTable::from_words does).
  std::uint64_t evaluate_block(std::uint64_t base,
                               std::vector<std::uint64_t>& states_scratch,
                               std::vector<std::uint64_t>& fix_scratch) const;

  /// Convenience overload with private scratch buffers.
  std::uint64_t evaluate_block(std::uint64_t base) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<CellValue> cells_;  // row-major
};

/// Lane word of one cell value for the 64 assignments base .. base+63.
/// Variables 0..5 select within the block (periodic masks); variables >= 6
/// are constant across it (decided by the matching bit of `base`).
std::uint64_t cell_lane_word(const CellValue& value, std::uint64_t base);

}  // namespace ftl::lattice
