#include "ftl/lattice/function.hpp"

#include "ftl/lattice/bitslice.hpp"
#include "ftl/lattice/connectivity.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::lattice {
namespace {

/// Blocks at or above this count are worth fanning across the pool; below
/// it the dispatch overhead exceeds the fixpoint work.
constexpr std::size_t kParallelBlockThreshold = 16;

}  // namespace

logic::Sop grid_function(int rows, int cols) {
  FTL_EXPECTS(rows * cols <= logic::Cube::kMaxVars);
  logic::Sop sop(rows * cols);
  enumerate_products(rows, cols, [&sop](const std::vector<int>& path) {
    logic::Cube cube;
    for (int cell : path) cube.add({cell, true});
    sop.add(std::move(cube));
  });
  return sop;
}

logic::TruthTable realized_truth_table(const Lattice& lattice,
                                       std::size_t max_threads) {
  const int nv = lattice.num_vars();
  FTL_EXPECTS(nv <= logic::TruthTable::kMaxVars);
  const BitsliceEvaluator eval(lattice);
  std::vector<std::uint64_t> words(logic::TruthTable::word_count(nv));
  if (words.size() >= kParallelBlockThreshold && max_threads != 1) {
    // Slot-per-block writes: parallel is bitwise-identical to serial.
    util::parallel_for(
        words.size(),
        [&](std::size_t b) { words[b] = eval.evaluate_block(b << 6); },
        max_threads);
  } else {
    std::vector<std::uint64_t> states_scratch, fix_scratch;
    for (std::size_t b = 0; b < words.size(); ++b) {
      words[b] = eval.evaluate_block(b << 6, states_scratch, fix_scratch);
    }
  }
  return logic::TruthTable::from_words(nv, std::move(words));
}

logic::TruthTable realized_truth_table_lut(const Lattice& lattice) {
  const int nv = lattice.num_vars();
  FTL_EXPECTS(nv <= logic::TruthTable::kMaxVars);
  FTL_EXPECTS(lattice.cell_count() <= 20);
  const std::vector<bool>& lut =
      connectivity_lut_cached(lattice.rows(), lattice.cols());
  std::vector<CellValue> cells;
  cells.reserve(static_cast<std::size_t>(lattice.cell_count()));
  for (int r = 0; r < lattice.rows(); ++r) {
    for (int c = 0; c < lattice.cols(); ++c) cells.push_back(lattice.at(r, c));
  }
  return logic::TruthTable::from_function(nv, [&](std::uint64_t m) {
    std::uint64_t pattern = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].evaluate(m)) pattern |= std::uint64_t{1} << i;
    }
    return static_cast<bool>(lut[static_cast<std::size_t>(pattern)]);
  });
}

bool realizes(const Lattice& lattice, const logic::TruthTable& target) {
  FTL_EXPECTS(lattice.num_vars() == target.num_vars());
  const BitsliceEvaluator eval(lattice);
  const std::size_t nwords =
      logic::TruthTable::word_count(target.num_vars());
  const std::uint64_t lane_mask =
      target.num_vars() >= 6
          ? ~std::uint64_t{0}
          : (std::uint64_t{1} << target.num_minterms()) - 1;
  std::vector<std::uint64_t> states_scratch, fix_scratch;
  for (std::size_t b = 0; b < nwords; ++b) {
    const std::uint64_t lanes =
        eval.evaluate_block(b << 6, states_scratch, fix_scratch);
    if ((lanes & lane_mask) != target.word(b)) return false;
  }
  return true;
}

logic::Sop realized_sop(const Lattice& lattice) {
  logic::Sop out(lattice.num_vars());
  enumerate_products(
      lattice.rows(), lattice.cols(), [&](const std::vector<int>& path) {
        logic::Cube cube;
        for (int cell : path) {
          const CellValue& v = lattice.at(cell / lattice.cols(), cell % lattice.cols());
          switch (v.kind) {
            case CellValue::Kind::kConst0:
              return;  // this path can never conduct
            case CellValue::Kind::kConst1:
              break;  // always-ON switch contributes no literal
            case CellValue::Kind::kLiteral: {
              const auto pol = cube.polarity(v.literal.var);
              if (pol.has_value() && *pol != v.literal.positive) {
                return;  // x·x' — contradictory product
              }
              if (!pol.has_value()) cube.add(v.literal);
              break;
            }
          }
        }
        out.add(std::move(cube));
      });
  out.absorb();
  out.canonicalize();
  return out;
}

}  // namespace ftl::lattice
