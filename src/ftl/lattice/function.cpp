#include "ftl/lattice/function.hpp"

#include "ftl/lattice/paths.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {

logic::Sop grid_function(int rows, int cols) {
  FTL_EXPECTS(rows * cols <= logic::Cube::kMaxVars);
  logic::Sop sop(rows * cols);
  enumerate_products(rows, cols, [&sop](const std::vector<int>& path) {
    logic::Cube cube;
    for (int cell : path) cube.add({cell, true});
    sop.add(std::move(cube));
  });
  return sop;
}

logic::TruthTable realized_truth_table(const Lattice& lattice) {
  FTL_EXPECTS(lattice.num_vars() <= logic::TruthTable::kMaxVars);
  return logic::TruthTable::from_function(
      lattice.num_vars(),
      [&lattice](std::uint64_t m) { return lattice.evaluate(m); });
}

bool realizes(const Lattice& lattice, const logic::TruthTable& target) {
  FTL_EXPECTS(lattice.num_vars() == target.num_vars());
  for (std::uint64_t m = 0; m < target.num_minterms(); ++m) {
    if (lattice.evaluate(m) != target.get(m)) return false;
  }
  return true;
}

logic::Sop realized_sop(const Lattice& lattice) {
  logic::Sop out(lattice.num_vars());
  enumerate_products(
      lattice.rows(), lattice.cols(), [&](const std::vector<int>& path) {
        logic::Cube cube;
        for (int cell : path) {
          const CellValue& v = lattice.at(cell / lattice.cols(), cell % lattice.cols());
          switch (v.kind) {
            case CellValue::Kind::kConst0:
              return;  // this path can never conduct
            case CellValue::Kind::kConst1:
              break;  // always-ON switch contributes no literal
            case CellValue::Kind::kLiteral: {
              const auto pol = cube.polarity(v.literal.var);
              if (pol.has_value() && *pol != v.literal.positive) {
                return;  // x·x' — contradictory product
              }
              if (!pol.has_value()) cube.add(v.literal);
              break;
            }
          }
        }
        out.add(std::move(cube));
      });
  out.absorb();
  out.canonicalize();
  return out;
}

}  // namespace ftl::lattice
