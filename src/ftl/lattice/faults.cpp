#include "ftl/lattice/faults.hpp"

#include <algorithm>

#include "ftl/lattice/function.hpp"
#include "ftl/util/error.hpp"

namespace ftl::lattice {

std::string to_string(FaultType type) {
  switch (type) {
    case FaultType::kStuckOpen: return "stuck-open";
    case FaultType::kStuckClosed: return "stuck-closed";
  }
  return "?";
}

Lattice inject_fault(const Lattice& lattice, const Fault& fault) {
  Lattice faulty = lattice;
  faulty.set(fault.row, fault.col,
             fault.type == FaultType::kStuckOpen ? CellValue::zero()
                                                 : CellValue::one());
  return faulty;
}

FaultAnalysis analyze_single_faults(const Lattice& lattice,
                                    const logic::TruthTable& target) {
  FTL_EXPECTS(lattice.num_vars() == target.num_vars());
  FaultAnalysis analysis;
  for (int r = 0; r < lattice.rows(); ++r) {
    for (int c = 0; c < lattice.cols(); ++c) {
      for (const FaultType type :
           {FaultType::kStuckOpen, FaultType::kStuckClosed}) {
        const Fault fault{r, c, type};
        ++analysis.total_faults;
        if (realizes(inject_fault(lattice, fault), target)) {
          analysis.masked.push_back(fault);
        } else {
          analysis.critical.push_back(fault);
        }
      }
    }
  }
  return analysis;
}

std::vector<std::uint64_t> greedy_test_set(const Lattice& lattice,
                                           const logic::TruthTable& target) {
  FTL_EXPECTS(lattice.num_vars() == target.num_vars());
  const FaultAnalysis analysis = analyze_single_faults(lattice, target);
  const std::uint64_t num_codes = target.num_minterms();

  // Detection matrix: which assignments expose each critical fault.
  struct Pending {
    Fault fault;
    std::vector<std::uint64_t> detecting;
  };
  std::vector<Pending> pending;
  for (const Fault& fault : analysis.critical) {
    Pending p{fault, {}};
    const Lattice faulty = inject_fault(lattice, fault);
    for (std::uint64_t m = 0; m < num_codes; ++m) {
      if (faulty.evaluate(m) != target.get(m)) p.detecting.push_back(m);
    }
    FTL_ENSURES(!p.detecting.empty());  // critical means some code differs
    pending.push_back(std::move(p));
  }

  // Greedy set cover: repeatedly take the assignment detecting the most
  // still-undetected faults.
  std::vector<std::uint64_t> tests;
  while (!pending.empty()) {
    std::vector<int> gain(static_cast<std::size_t>(num_codes), 0);
    for (const Pending& p : pending) {
      for (std::uint64_t m : p.detecting) ++gain[static_cast<std::size_t>(m)];
    }
    const auto best = std::max_element(gain.begin(), gain.end());
    const std::uint64_t chosen =
        static_cast<std::uint64_t>(best - gain.begin());
    tests.push_back(chosen);
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [chosen](const Pending& p) {
                                   return std::find(p.detecting.begin(),
                                                    p.detecting.end(),
                                                    chosen) != p.detecting.end();
                                 }),
                  pending.end());
  }
  return tests;
}

}  // namespace ftl::lattice
