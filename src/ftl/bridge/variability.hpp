#pragma once
// Monte-Carlo process-variation analysis of lattice gates. Nanoscale
// four-terminal switches will spread in Vth and Kp from die to die; this
// module perturbs every switch instance independently and asks how often
// the gate still computes its function at static noise margins — the yield
// question a feasibility study like the paper's ultimately feeds.

#include <cstdint>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::bridge {

/// Which solver path the Monte-Carlo sweep runs. Both produce bitwise
/// identical results — the batched engine's accepted LU replays are exact
/// reproductions of the standalone factorizations — so the per-trial path
/// survives only as the differential baseline the tests and the
/// bench_spice_batch gate compare against.
enum class VariabilityEngine {
  /// One shared circuit per worker chunk, retuned in place per trial, all
  /// trials of a chunk solved through one spice::BatchSolver per input code
  /// (one symbolic LU analysis amortized across the population).
  kBatched,
  /// The PR 1 path: a fresh netlist build and standalone
  /// dc_operating_point per (trial, code).
  kPerTrial,
};

struct VariabilityOptions {
  double sigma_vth = 0.0;     ///< std-dev of the per-switch Vth shift, V
  double sigma_kp_rel = 0.0;  ///< relative std-dev of per-switch Kp
  int trials = 200;
  std::uint64_t seed = 1;
  /// Thread fan-out across trials: 0 = hardware concurrency, 1 = serial.
  /// The result is identical for every setting — each trial derives its own
  /// RNG stream from (seed, trial index) and results reduce in trial order.
  /// The batched engine splits trials into one contiguous chunk per thread
  /// (threads split the batch, never a trial).
  int max_threads = 0;
  VariabilityEngine engine = VariabilityEngine::kBatched;
  LatticeCircuitOptions circuit;
  /// Logic thresholds as fractions of VDD for the pass/fail decision.
  double low_fraction = 1.0 / 3.0;
  double high_fraction = 2.0 / 3.0;
};

struct VariabilityResult {
  int trials = 0;
  int passing = 0;            ///< trials whose full truth table is correct
  double worst_low = 0.0;     ///< highest low-state output seen, V
  double worst_high = 0.0;    ///< lowest high-state output seen, V

  double yield() const {
    return trials > 0 ? static_cast<double>(passing) / trials : 0.0;
  }
};

/// Runs `options.trials` Monte-Carlo instances of the §V resistor-pull-up
/// bench for `lattice`, each with every switch's Vth and Kp independently
/// perturbed (Gaussian), and checks the full DC truth table against
/// `target`. Deterministic for a fixed seed.
VariabilityResult monte_carlo_yield(const lattice::Lattice& lattice,
                                    const logic::TruthTable& target,
                                    const VariabilityOptions& options);

}  // namespace ftl::bridge
