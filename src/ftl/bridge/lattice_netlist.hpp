#pragma once
// Lattice -> SPICE netlist generation.
//
// Two bench topologies are provided:
//  - build_lattice_circuit: the §V test bench — the lattice is the pull-down
//    network between the output ("top plate") and ground ("bottom plate"),
//    with a pull-up resistor to VDD and a load capacitor. The output is the
//    *negation* of the lattice function.
//  - build_complementary_lattice_circuit: the §VI-A extension — a second
//    lattice realizing the complement function replaces the pull-up
//    resistor, giving the CMOS-like complementary structure whose static
//    power the paper expects to be "almost zero".
//
// Control inputs drive the switch gates at VDD levels; complemented literals
// get exact complementary drivers.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ftl/bridge/switch_model.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/spice/sources.hpp"

namespace ftl::bridge {

struct LatticeCircuitOptions {
  double vdd = 1.2;          ///< supply, V (§V: 1.2 V)
  double pullup = 500e3;     ///< pull-up resistor, Ohm (§V: 500 kOhm)
  double output_cap = 10e-15;  ///< output load, F (§V: 10 fF)
  SwitchModelParams switch_model = paper_switch_model();
  /// Optional per-switch parameter override (row, col, nominal) — the hook
  /// the Monte-Carlo variability analysis uses to scatter Vth/Kp per
  /// instance. Rows/cols of a complementary pull-up lattice are passed with
  /// the row offset by the pull-down's row count.
  std::function<SwitchModelParams(int row, int col, const SwitchModelParams&)>
      switch_param_fn;
};

struct LatticeCircuit {
  spice::Circuit circuit;
  std::string output_node;              ///< the lattice top plate ("out")
  std::string vdd_source;               ///< supply source name
  std::vector<std::string> input_sources;  ///< one per variable (true phase)
  /// Variable names in index order — the driver of variable v, when it
  /// exists, is "Vin_<var_names[v]>" (true phase) / "..._n" (complement).
  /// Lets consumers retune the input drives of a built circuit in place
  /// instead of rebuilding the netlist per input code.
  std::vector<std::string> var_names;
};

/// Builds the §V bench around `lattice`. `drives[var]` is the gate waveform
/// of variable `var` (missing entries default to DC 0); complementary
/// drivers for negated literals are generated automatically.
LatticeCircuit build_lattice_circuit(const lattice::Lattice& lattice,
                                     const std::map<int, spice::Waveform>& drives,
                                     const LatticeCircuitOptions& options = {});

/// Builds the complementary topology: `pulldown` (realizing f) between the
/// output and ground, `pullup` (which must realize ¬f over the same
/// variables) between VDD and the output. Throws ftl::Error when the two
/// lattices do not realize complementary functions.
LatticeCircuit build_complementary_lattice_circuit(
    const lattice::Lattice& pulldown, const lattice::Lattice& pullup,
    const std::map<int, spice::Waveform>& drives,
    const LatticeCircuitOptions& options = {});

}  // namespace ftl::bridge
