#pragma once
// Series chains of four-terminal switches for the Fig. 12 drive-capability
// experiments: N switches in series (through their opposite N-S terminals)
// between the supply and ground, all gates held at the gate voltage.

#include <string>
#include <vector>

#include "ftl/bridge/switch_model.hpp"
#include "ftl/spice/circuit.hpp"

namespace ftl::bridge {

struct ChainCircuit {
  spice::Circuit circuit;
  std::string supply_source;  ///< name of the chain supply (measure I here)
  std::string gate_source;
};

/// Builds `count` switches in series. The supply drives the first switch's
/// N terminal; the last switch's S terminal is grounded. E/W terminals
/// dangle, as in a 1-wide lattice column.
ChainCircuit build_switch_chain(int count, double supply_voltage,
                                double gate_voltage,
                                const SwitchModelParams& params = paper_switch_model());

/// DC current drawn from the chain supply at the given voltages (Fig. 12a
/// points). Positive for current flowing out of the supply into the chain.
double chain_current(int count, double supply_voltage, double gate_voltage,
                     const SwitchModelParams& params = paper_switch_model());

/// All Fig. 12a points of one chain length in a single shot: one circuit,
/// one symbolic LU analysis, lane k solved at (supply_voltages[k],
/// gate_voltages[k]) through spice::BatchSolver. Bitwise identical to
/// calling chain_current per point; throws (like chain_current) if any
/// point fails to converge. The two vectors must have equal, nonzero size.
std::vector<double> chain_current_batch(
    int count, const std::vector<double>& supply_voltages,
    const std::vector<double>& gate_voltages,
    const SwitchModelParams& params = paper_switch_model());

/// Supply voltage needed to push `target_current` through the chain
/// (Fig. 12b points), found by bisection on [0, v_max]. The gate rail
/// tracks the supply (as it must for the upper switches to stay on once the
/// supply exceeds the 1.2 V logic level).
double voltage_for_current(int count, double target_current,
                           double v_max = 10.0,
                           const SwitchModelParams& params = paper_switch_model());

}  // namespace ftl::bridge
