#include "ftl/bridge/variability.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ftl/spice/batch.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/mosfet.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::bridge {
namespace {

/// splitmix64: decorrelates the per-trial seeds derived from (seed, trial).
/// Seeding mt19937_64 with `seed + trial` directly would hand adjacent
/// trials nearly identical initial states.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t trial) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct TrialOutcome {
  bool pass = false;
  double worst_low = 0.0;
  double worst_high = 0.0;
};

/// One fixed perturbation per switch site for one trial — its own RNG
/// stream, per-cell Vth draw then Kp draw. Shared by both engines so their
/// dice are literally the same.
void trial_perturbations(const lattice::Lattice& lattice,
                         const VariabilityOptions& options, std::size_t trial,
                         std::vector<double>& dvth, std::vector<double>& dkp) {
  std::mt19937_64 rng(mix_seed(options.seed, trial));
  std::normal_distribution<double> gauss(0.0, 1.0);
  dvth.resize(static_cast<std::size_t>(lattice.cell_count()));
  dkp.resize(static_cast<std::size_t>(lattice.cell_count()));
  for (int i = 0; i < lattice.cell_count(); ++i) {
    dvth[static_cast<std::size_t>(i)] = options.sigma_vth * gauss(rng);
    dkp[static_cast<std::size_t>(i)] =
        std::max(1.0 + options.sigma_kp_rel * gauss(rng), 0.05);
  }
}

/// The PR 1 engine: fresh netlist + standalone solve per (trial, code).
void run_per_trial(const lattice::Lattice& lattice,
                   const logic::TruthTable& target,
                   const VariabilityOptions& options,
                   std::vector<TrialOutcome>& outcomes) {
  const double vdd = options.circuit.vdd;
  const double v_low_limit = options.low_fraction * vdd;
  const double v_high_limit = options.high_fraction * vdd;

  // Each trial is an independent die: its own RNG stream (derived from the
  // global seed and the trial index, NOT a shared sequential stream) and its
  // own result slot. That makes the outcome a pure function of (options,
  // lattice, target) — identical whether the trials run serially or fanned
  // across the thread pool in any schedule.
  util::parallel_for(
      static_cast<std::size_t>(options.trials),
      [&](std::size_t trial) {
        std::vector<double> dvth, dkp;
        trial_perturbations(lattice, options, trial, dvth, dkp);

        LatticeCircuitOptions circuit_options = options.circuit;
        circuit_options.switch_param_fn =
            [&](int row, int col, const SwitchModelParams& nominal) {
              SwitchModelParams p = nominal;
              const std::size_t i =
                  static_cast<std::size_t>(row * lattice.cols() + col);
              p.vth = nominal.vth + dvth[i];
              p.kp = nominal.kp * dkp[i];
              return p;
            };

        TrialOutcome& outcome = outcomes[trial];
        outcome.pass = true;
        outcome.worst_low = 0.0;
        outcome.worst_high = vdd;
        for (std::uint64_t code = 0;
             code < target.num_minterms() && outcome.pass; ++code) {
          std::map<int, spice::Waveform> drives;
          for (int v = 0; v < target.num_vars(); ++v) {
            drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? vdd : 0.0);
          }
          LatticeCircuit lc =
              build_lattice_circuit(lattice, drives, circuit_options);
          spice::OpResult op;
          try {
            op = spice::dc_operating_point(lc.circuit);
          } catch (const ftl::Error&) {
            // A die whose operating point cannot be found is a failing die.
            outcome.pass = false;
            break;
          }
          const double out = op.solution[static_cast<std::size_t>(
              lc.circuit.find_node(lc.output_node))];
          if (target.get(code)) {
            outcome.worst_low = std::max(outcome.worst_low, out);
            outcome.pass = op.converged && out < v_low_limit;
          } else {
            outcome.worst_high = std::min(outcome.worst_high, out);
            outcome.pass = op.converged && out > v_high_limit;
          }
        }
      },
      static_cast<std::size_t>(options.max_threads));
}

/// One worker's contiguous trial chunk through the batched engine: ONE
/// netlist build for the whole chunk, retuned in place per trial, with all
/// still-passing trials of the chunk solved as lanes of one
/// spice::BatchSolver per input code — one symbolic LU analysis amortized
/// across the population instead of one per (trial, code, Newton rebuild).
void run_batched_chunk(const lattice::Lattice& lattice,
                       const logic::TruthTable& target,
                       const VariabilityOptions& options, int trial_begin,
                       int trial_end, std::vector<TrialOutcome>& outcomes) {
  const double vdd = options.circuit.vdd;
  const double v_low_limit = options.low_fraction * vdd;
  const double v_high_limit = options.high_fraction * vdd;
  const std::size_t cells = static_cast<std::size_t>(lattice.cell_count());

  // The same dice as the per-trial engine, drawn up front for the chunk.
  const std::size_t chunk = static_cast<std::size_t>(trial_end - trial_begin);
  std::vector<std::vector<double>> dvth(chunk), dkp(chunk);
  for (std::size_t k = 0; k < chunk; ++k) {
    trial_perturbations(lattice, options,
                        static_cast<std::size_t>(trial_begin) + k, dvth[k],
                        dkp[k]);
  }

  // One shared circuit. monte_carlo_yield owns the per-switch parameters
  // (it replaces any caller hook in the per-trial engine too), so the
  // nominal build drops the hook and every lane mutates from nominal.
  LatticeCircuitOptions circuit_options = options.circuit;
  circuit_options.switch_param_fn = nullptr;
  LatticeCircuit lc = build_lattice_circuit(lattice, {}, circuit_options);

  // Mutation handles: the six transistors of every switch site (kPairs
  // order — four adjacent Type A, then ns/ew Type B)...
  static constexpr const char* kTags[6] = {"ne", "es", "sw", "wn", "ns", "ew"};
  std::vector<std::array<spice::Mosfet*, 6>> fets(cells);
  for (int r = 0; r < lattice.rows(); ++r) {
    for (int c = 0; c < lattice.cols(); ++c) {
      const std::size_t i = static_cast<std::size_t>(r * lattice.cols() + c);
      const std::string base =
          "Msw" + std::to_string(r) + "_" + std::to_string(c) + "_";
      for (std::size_t f = 0; f < 6; ++f) {
        fets[i][f] = dynamic_cast<spice::Mosfet*>(&lc.circuit.device(base + kTags[f]));
        FTL_EXPECTS(fets[i][f] != nullptr);
      }
    }
  }
  // ...and the input drivers (either phase of a variable may be absent).
  const int num_vars = target.num_vars();
  std::vector<spice::VoltageSource*> pos(static_cast<std::size_t>(num_vars),
                                         nullptr);
  std::vector<spice::VoltageSource*> neg(static_cast<std::size_t>(num_vars),
                                         nullptr);
  for (int v = 0; v < num_vars; ++v) {
    const std::string& name =
        lattice.var_names()[static_cast<std::size_t>(v)];
    if (lc.circuit.has_device("Vin_" + name)) {
      pos[static_cast<std::size_t>(v)] = dynamic_cast<spice::VoltageSource*>(
          &lc.circuit.device("Vin_" + name));
    }
    if (lc.circuit.has_device("Vin_" + name + "_n")) {
      neg[static_cast<std::size_t>(v)] = dynamic_cast<spice::VoltageSource*>(
          &lc.circuit.device("Vin_" + name + "_n"));
    }
  }
  const std::size_t out_index =
      static_cast<std::size_t>(lc.circuit.find_node(lc.output_node));
  const SwitchModelParams& nominal = options.circuit.switch_model;

  std::vector<int> active;
  for (int t = trial_begin; t < trial_end; ++t) {
    TrialOutcome& outcome = outcomes[static_cast<std::size_t>(t)];
    outcome.pass = true;
    outcome.worst_low = 0.0;
    outcome.worst_high = vdd;
    active.push_back(t);
  }

  for (std::uint64_t code = 0; code < target.num_minterms() && !active.empty();
       ++code) {
    // Retune the drivers to this input code — the same Waveform
    // construction build_lattice_circuit would have baked in.
    for (int v = 0; v < num_vars; ++v) {
      const spice::Waveform w =
          spice::Waveform::dc(((code >> v) & 1) != 0 ? vdd : 0.0);
      if (pos[static_cast<std::size_t>(v)] != nullptr) {
        pos[static_cast<std::size_t>(v)]->set_waveform(w);
      }
      if (neg[static_cast<std::size_t>(v)] != nullptr) {
        neg[static_cast<std::size_t>(v)]->set_waveform(w.complemented(vdd));
      }
    }

    const auto apply = [&](std::size_t lane) {
      const std::size_t k =
          static_cast<std::size_t>(active[lane] - trial_begin);
      for (std::size_t i = 0; i < cells; ++i) {
        SwitchModelParams p = nominal;
        p.vth = nominal.vth + dvth[k][i];
        p.kp = nominal.kp * dkp[k][i];
        const fit::Level1Params type_a = switch_level1_params(p, true);
        const fit::Level1Params type_b = switch_level1_params(p, false);
        for (std::size_t f = 0; f < 4; ++f) fets[i][f]->set_params(type_a);
        fets[i][4]->set_params(type_b);
        fets[i][5]->set_params(type_b);
      }
    };
    const std::vector<spice::BatchCornerResult> results =
        spice::dcop_batch(lc.circuit, active.size(), apply);

    std::vector<int> still;
    for (std::size_t lane = 0; lane < active.size(); ++lane) {
      TrialOutcome& outcome =
          outcomes[static_cast<std::size_t>(active[lane])];
      const spice::BatchCornerResult& r = results[lane];
      if (r.failed) {
        // A die whose operating point cannot be found is a failing die.
        outcome.pass = false;
        continue;
      }
      const double out = r.op.solution[out_index];
      if (target.get(code)) {
        outcome.worst_low = std::max(outcome.worst_low, out);
        outcome.pass = r.op.converged && out < v_low_limit;
      } else {
        outcome.worst_high = std::min(outcome.worst_high, out);
        outcome.pass = r.op.converged && out > v_high_limit;
      }
      if (outcome.pass) still.push_back(active[lane]);
    }
    active.swap(still);
  }
}

void run_batched(const lattice::Lattice& lattice,
                 const logic::TruthTable& target,
                 const VariabilityOptions& options,
                 std::vector<TrialOutcome>& outcomes) {
  // Threads split the batch, never a trial: one contiguous chunk of trials
  // per worker, each chunk with its own shared circuit and BatchSolver.
  // Chunk boundaries cannot affect results — every trial's outcome is a
  // pure function of its own matrices — so any worker count reduces to the
  // same answer, exactly like the per-trial engine's schedule independence.
  std::size_t workers =
      options.max_threads > 0
          ? static_cast<std::size_t>(options.max_threads)
          : static_cast<std::size_t>(std::thread::hardware_concurrency());
  if (workers == 0) workers = 1;
  workers = std::min(workers, static_cast<std::size_t>(options.trials));
  const std::size_t trials = static_cast<std::size_t>(options.trials);
  util::parallel_for(
      workers,
      [&](std::size_t w) {
        const int begin = static_cast<int>(trials * w / workers);
        const int end = static_cast<int>(trials * (w + 1) / workers);
        if (begin < end) {
          run_batched_chunk(lattice, target, options, begin, end, outcomes);
        }
      },
      workers);
}

}  // namespace

VariabilityResult monte_carlo_yield(const lattice::Lattice& lattice,
                                    const logic::TruthTable& target,
                                    const VariabilityOptions& options) {
  FTL_EXPECTS(lattice.num_vars() == target.num_vars());
  FTL_EXPECTS(options.trials >= 1);
  FTL_EXPECTS(options.sigma_vth >= 0.0 && options.sigma_kp_rel >= 0.0);
  FTL_EXPECTS(options.max_threads >= 0);

  std::vector<TrialOutcome> outcomes(static_cast<std::size_t>(options.trials));
  if (options.engine == VariabilityEngine::kBatched) {
    run_batched(lattice, target, options, outcomes);
  } else {
    run_per_trial(lattice, target, options, outcomes);
  }

  VariabilityResult result;
  result.trials = options.trials;
  result.worst_low = 0.0;
  result.worst_high = options.circuit.vdd;
  for (const TrialOutcome& outcome : outcomes) {
    if (outcome.pass) ++result.passing;
    result.worst_low = std::max(result.worst_low, outcome.worst_low);
    result.worst_high = std::min(result.worst_high, outcome.worst_high);
  }
  return result;
}

}  // namespace ftl::bridge
