#include "ftl/bridge/variability.hpp"

#include <algorithm>
#include <random>
#include <vector>

#include "ftl/spice/dcop.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::bridge {
namespace {

/// splitmix64: decorrelates the per-trial seeds derived from (seed, trial).
/// Seeding mt19937_64 with `seed + trial` directly would hand adjacent
/// trials nearly identical initial states.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t trial) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct TrialOutcome {
  bool pass = false;
  double worst_low = 0.0;
  double worst_high = 0.0;
};

}  // namespace

VariabilityResult monte_carlo_yield(const lattice::Lattice& lattice,
                                    const logic::TruthTable& target,
                                    const VariabilityOptions& options) {
  FTL_EXPECTS(lattice.num_vars() == target.num_vars());
  FTL_EXPECTS(options.trials >= 1);
  FTL_EXPECTS(options.sigma_vth >= 0.0 && options.sigma_kp_rel >= 0.0);
  FTL_EXPECTS(options.max_threads >= 0);

  const double vdd = options.circuit.vdd;
  const double v_low_limit = options.low_fraction * vdd;
  const double v_high_limit = options.high_fraction * vdd;

  // Each trial is an independent die: its own RNG stream (derived from the
  // global seed and the trial index, NOT a shared sequential stream) and its
  // own result slot. That makes the outcome a pure function of (options,
  // lattice, target) — identical whether the trials run serially or fanned
  // across the thread pool in any schedule.
  std::vector<TrialOutcome> outcomes(static_cast<std::size_t>(options.trials));
  util::parallel_for(
      static_cast<std::size_t>(options.trials),
      [&](std::size_t trial) {
        std::mt19937_64 rng(mix_seed(options.seed, trial));
        std::normal_distribution<double> gauss(0.0, 1.0);

        // One fixed perturbation per switch site for this trial; the same
        // die is then evaluated on every input code.
        std::vector<double> dvth(static_cast<std::size_t>(lattice.cell_count()));
        std::vector<double> dkp(static_cast<std::size_t>(lattice.cell_count()));
        for (int i = 0; i < lattice.cell_count(); ++i) {
          dvth[static_cast<std::size_t>(i)] = options.sigma_vth * gauss(rng);
          dkp[static_cast<std::size_t>(i)] =
              std::max(1.0 + options.sigma_kp_rel * gauss(rng), 0.05);
        }

        LatticeCircuitOptions circuit_options = options.circuit;
        circuit_options.switch_param_fn =
            [&](int row, int col, const SwitchModelParams& nominal) {
              SwitchModelParams p = nominal;
              const std::size_t i =
                  static_cast<std::size_t>(row * lattice.cols() + col);
              p.vth = nominal.vth + dvth[i];
              p.kp = nominal.kp * dkp[i];
              return p;
            };

        TrialOutcome& outcome = outcomes[trial];
        outcome.pass = true;
        outcome.worst_low = 0.0;
        outcome.worst_high = vdd;
        for (std::uint64_t code = 0;
             code < target.num_minterms() && outcome.pass; ++code) {
          std::map<int, spice::Waveform> drives;
          for (int v = 0; v < target.num_vars(); ++v) {
            drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? vdd : 0.0);
          }
          LatticeCircuit lc =
              build_lattice_circuit(lattice, drives, circuit_options);
          spice::OpResult op;
          try {
            op = spice::dc_operating_point(lc.circuit);
          } catch (const ftl::Error&) {
            // A die whose operating point cannot be found is a failing die.
            outcome.pass = false;
            break;
          }
          const double out = op.solution[static_cast<std::size_t>(
              lc.circuit.find_node(lc.output_node))];
          if (target.get(code)) {
            outcome.worst_low = std::max(outcome.worst_low, out);
            outcome.pass = op.converged && out < v_low_limit;
          } else {
            outcome.worst_high = std::min(outcome.worst_high, out);
            outcome.pass = op.converged && out > v_high_limit;
          }
        }
      },
      static_cast<std::size_t>(options.max_threads));

  VariabilityResult result;
  result.trials = options.trials;
  result.worst_low = 0.0;
  result.worst_high = vdd;
  for (const TrialOutcome& outcome : outcomes) {
    if (outcome.pass) ++result.passing;
    result.worst_low = std::max(result.worst_low, outcome.worst_low);
    result.worst_high = std::min(result.worst_high, outcome.worst_high);
  }
  return result;
}

}  // namespace ftl::bridge
