#include "ftl/bridge/variability.hpp"

#include <algorithm>
#include <random>

#include "ftl/spice/dcop.hpp"
#include "ftl/util/error.hpp"

namespace ftl::bridge {

VariabilityResult monte_carlo_yield(const lattice::Lattice& lattice,
                                    const logic::TruthTable& target,
                                    const VariabilityOptions& options) {
  FTL_EXPECTS(lattice.num_vars() == target.num_vars());
  FTL_EXPECTS(options.trials >= 1);
  FTL_EXPECTS(options.sigma_vth >= 0.0 && options.sigma_kp_rel >= 0.0);

  const double vdd = options.circuit.vdd;
  const double v_low_limit = options.low_fraction * vdd;
  const double v_high_limit = options.high_fraction * vdd;

  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  VariabilityResult result;
  result.trials = options.trials;
  result.worst_low = 0.0;
  result.worst_high = vdd;

  for (int trial = 0; trial < options.trials; ++trial) {
    // One fixed perturbation per switch site for this trial; the same die
    // is then evaluated on every input code.
    std::vector<double> dvth(static_cast<std::size_t>(lattice.cell_count()));
    std::vector<double> dkp(static_cast<std::size_t>(lattice.cell_count()));
    for (int i = 0; i < lattice.cell_count(); ++i) {
      dvth[static_cast<std::size_t>(i)] = options.sigma_vth * gauss(rng);
      dkp[static_cast<std::size_t>(i)] =
          std::max(1.0 + options.sigma_kp_rel * gauss(rng), 0.05);
    }

    LatticeCircuitOptions circuit_options = options.circuit;
    circuit_options.switch_param_fn =
        [&](int row, int col, const SwitchModelParams& nominal) {
          SwitchModelParams p = nominal;
          const std::size_t i =
              static_cast<std::size_t>(row * lattice.cols() + col);
          p.vth = nominal.vth + dvth[i];
          p.kp = nominal.kp * dkp[i];
          return p;
        };

    bool pass = true;
    for (std::uint64_t code = 0; code < target.num_minterms() && pass; ++code) {
      std::map<int, spice::Waveform> drives;
      for (int v = 0; v < target.num_vars(); ++v) {
        drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? vdd : 0.0);
      }
      LatticeCircuit lc = build_lattice_circuit(lattice, drives, circuit_options);
      spice::OpResult op;
      try {
        op = spice::dc_operating_point(lc.circuit);
      } catch (const ftl::Error&) {
        // A die whose operating point cannot be found is a failing die.
        pass = false;
        break;
      }
      const double out = op.solution[static_cast<std::size_t>(
          lc.circuit.find_node(lc.output_node))];
      if (target.get(code)) {
        result.worst_low = std::max(result.worst_low, out);
        pass = op.converged && out < v_low_limit;
      } else {
        result.worst_high = std::min(result.worst_high, out);
        pass = op.converged && out > v_high_limit;
      }
    }
    if (pass) ++result.passing;
  }
  return result;
}

}  // namespace ftl::bridge
