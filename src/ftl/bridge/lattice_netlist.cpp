#include "ftl/bridge/lattice_netlist.hpp"

#include <memory>

#include "ftl/lattice/function.hpp"
#include "ftl/spice/devices.hpp"
#include "ftl/util/error.hpp"

namespace ftl::bridge {
namespace {

/// Node naming for one lattice fabric instance:
///  - every top-row N terminal is the `top` node,
///  - every bottom-row S terminal is the `bottom` node,
///  - vertical links <prefix>v<r>_<c> join S of (r,c) to N of (r+1,c),
///  - horizontal links <prefix>h<r>_<c> join E of (r,c) to W of (r,c+1),
///  - edge-of-lattice E/W terminals dangle on their own nodes.
struct NodeNamer {
  const lattice::Lattice& lat;
  std::string prefix;
  std::string top;
  std::string bottom;

  std::string north(int r, int c) const {
    return r == 0 ? top
                  : prefix + "v" + std::to_string(r - 1) + "_" + std::to_string(c);
  }
  std::string south(int r, int c) const {
    return r == lat.rows() - 1
               ? bottom
               : prefix + "v" + std::to_string(r) + "_" + std::to_string(c);
  }
  std::string west(int r, int c) const {
    return c == 0 ? prefix + "dw" + std::to_string(r)
                  : prefix + "h" + std::to_string(r) + "_" + std::to_string(c - 1);
  }
  std::string east(int r, int c) const {
    return c == lat.cols() - 1
               ? prefix + "de" + std::to_string(r)
               : prefix + "h" + std::to_string(r) + "_" + std::to_string(c);
  }
};

std::string input_node(const lattice::Lattice& lat, int var, bool positive) {
  const std::string& name = lat.var_names()[static_cast<std::size_t>(var)];
  return "in_" + name + (positive ? "" : "_n");
}

/// Creates the shared input-phase drivers needed by `lattices`, plus the
/// gate-high rail when any cell is a constant 1. Returns the true-phase
/// source names.
std::vector<std::string> add_input_drivers(
    spice::Circuit& ckt, const std::vector<const lattice::Lattice*>& lattices,
    const std::map<int, spice::Waveform>& drives, double vdd) {
  FTL_EXPECTS(!lattices.empty());
  const lattice::Lattice& first = *lattices.front();
  const int num_vars = first.num_vars();

  std::vector<bool> need_true(static_cast<std::size_t>(num_vars), false);
  std::vector<bool> need_comp(static_cast<std::size_t>(num_vars), false);
  bool need_gate_high = false;
  for (const lattice::Lattice* lat : lattices) {
    FTL_EXPECTS_MSG(lat->num_vars() == num_vars,
                    "all lattices must share the variable set");
    for (int r = 0; r < lat->rows(); ++r) {
      for (int c = 0; c < lat->cols(); ++c) {
        const lattice::CellValue& v = lat->at(r, c);
        if (v.kind == lattice::CellValue::Kind::kLiteral) {
          (v.literal.positive ? need_true : need_comp)[static_cast<std::size_t>(
              v.literal.var)] = true;
        } else if (v.kind == lattice::CellValue::Kind::kConst1) {
          need_gate_high = true;
        }
      }
    }
  }

  const auto drive_of = [&drives](int var) {
    const auto it = drives.find(var);
    return it != drives.end() ? it->second : spice::Waveform::dc(0.0);
  };
  std::vector<std::string> sources;
  for (int var = 0; var < num_vars; ++var) {
    const std::string& name = first.var_names()[static_cast<std::size_t>(var)];
    if (need_true[static_cast<std::size_t>(var)]) {
      ckt.add(std::make_unique<spice::VoltageSource>(
          "Vin_" + name, ckt.node(input_node(first, var, true)),
          spice::Circuit::kGround, drive_of(var)));
      sources.push_back("Vin_" + name);
    }
    if (need_comp[static_cast<std::size_t>(var)]) {
      ckt.add(std::make_unique<spice::VoltageSource>(
          "Vin_" + name + "_n", ckt.node(input_node(first, var, false)),
          spice::Circuit::kGround, drive_of(var).complemented(vdd)));
    }
  }
  if (need_gate_high) {
    // Always-ON switches gate at VDD through a dedicated rail so the supply
    // current measurement is not polluted.
    ckt.add(std::make_unique<spice::VoltageSource>(
        "Vgate_high", ckt.node("gate_high"), spice::Circuit::kGround,
        spice::Waveform::dc(vdd)));
  }
  return sources;
}

/// Instantiates one lattice's switch fabric between `top` and `bottom`.
/// `row_offset` disambiguates the per-switch override coordinates when two
/// lattices share one circuit (complementary topology).
void add_lattice_network(spice::Circuit& ckt, const lattice::Lattice& lat,
                         const std::string& prefix, const std::string& top,
                         const std::string& bottom,
                         const LatticeCircuitOptions& options,
                         int row_offset = 0) {
  const SwitchModelParams& model = options.switch_model;
  const NodeNamer nodes{lat, prefix, top, bottom};
  for (int r = 0; r < lat.rows(); ++r) {
    for (int c = 0; c < lat.cols(); ++c) {
      const lattice::CellValue& v = lat.at(r, c);
      std::string gate;
      switch (v.kind) {
        case lattice::CellValue::Kind::kConst0:
          gate = "0";  // grounded gate: switch permanently OFF
          break;
        case lattice::CellValue::Kind::kConst1:
          gate = "gate_high";
          break;
        case lattice::CellValue::Kind::kLiteral:
          gate = input_node(lat, v.literal.var, v.literal.positive);
          break;
      }
      const SwitchModelParams params =
          options.switch_param_fn
              ? options.switch_param_fn(r + row_offset, c, model)
              : model;
      add_four_terminal_switch(
          ckt, prefix + "sw" + std::to_string(r) + "_" + std::to_string(c),
          {nodes.north(r, c), nodes.east(r, c), nodes.south(r, c),
           nodes.west(r, c)},
          gate, params);
    }
  }
}

LatticeCircuit begin_circuit(const LatticeCircuitOptions& options) {
  LatticeCircuit out;
  out.output_node = "out";
  out.vdd_source = "Vvdd";
  out.circuit.add(std::make_unique<spice::VoltageSource>(
      out.vdd_source, out.circuit.node("vdd"), spice::Circuit::kGround,
      spice::Waveform::dc(options.vdd)));
  out.circuit.add(std::make_unique<spice::Capacitor>(
      "Cout", out.circuit.node(out.output_node), spice::Circuit::kGround,
      options.output_cap));
  return out;
}

}  // namespace

LatticeCircuit build_lattice_circuit(const lattice::Lattice& lattice,
                                     const std::map<int, spice::Waveform>& drives,
                                     const LatticeCircuitOptions& options) {
  LatticeCircuit out = begin_circuit(options);
  out.circuit.add(std::make_unique<spice::Resistor>(
      "Rpullup", out.circuit.node("vdd"), out.circuit.node(out.output_node),
      options.pullup));
  out.input_sources =
      add_input_drivers(out.circuit, {&lattice}, drives, options.vdd);
  out.var_names = lattice.var_names();
  add_lattice_network(out.circuit, lattice, "", out.output_node, "0", options);
  return out;
}

LatticeCircuit build_complementary_lattice_circuit(
    const lattice::Lattice& pulldown, const lattice::Lattice& pullup,
    const std::map<int, spice::Waveform>& drives,
    const LatticeCircuitOptions& options) {
  // The pull-up must conduct exactly when the pull-down does not.
  const logic::TruthTable f = lattice::realized_truth_table(pulldown);
  const logic::TruthTable g = lattice::realized_truth_table(pullup);
  if (!(g == ~f)) {
    throw ftl::Error(
        "complementary circuit: pull-up lattice does not realize the "
        "complement of the pull-down lattice");
  }
  LatticeCircuit out = begin_circuit(options);
  out.input_sources = add_input_drivers(out.circuit, {&pulldown, &pullup},
                                        drives, options.vdd);
  out.var_names = pulldown.var_names();
  add_lattice_network(out.circuit, pulldown, "pd_", out.output_node, "0",
                      options);
  add_lattice_network(out.circuit, pullup, "pu_", "vdd", out.output_node,
                      options, pulldown.rows());
  return out;
}

}  // namespace ftl::bridge
