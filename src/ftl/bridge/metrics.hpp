#pragma once
// Gate characterization — the §VI-A analysis plan (power consumption, delay,
// energy, area) implemented over the lattice test benches. Works for both
// the resistor-pull-up topology of §V and the complementary topology of
// §VI-A, so the two can be compared quantitatively.

#include <functional>
#include <map>

#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::bridge {

/// Figures of merit of one lattice gate implementation.
struct GateMetrics {
  int switch_count = 0;        ///< area proxy: four-terminal switches used
  bool functional = false;     ///< every input code lands on the right rail

  double output_low_max = 0.0;   ///< V_OL: worst (highest) low output, V
  double output_high_min = 0.0;  ///< V_OH: worst (lowest) high output, V

  double static_power_worst = 0.0;  ///< max over input codes, W
  double static_power_mean = 0.0;   ///< average over input codes, W

  double rise_time = 0.0;   ///< worst 10-90% rise over the code walk, s
  double fall_time = 0.0;   ///< worst 90-10% fall, s
  double propagation_delay = 0.0;  ///< worst input-edge to Vdd/2 crossing, s
  double max_frequency = 0.0;      ///< 1 / (rise + fall), Hz

  double energy_per_transition = 0.0;  ///< dynamic energy per output flip, J
};

struct MeasureOptions {
  LatticeCircuitOptions circuit;
  double phase_time = 40e-9;  ///< dwell per input code in the transient walk
  double dt = 0.2e-9;
};

/// A builder produces the circuit under test for a given set of input
/// drives (so the same measurement runs on any bench topology).
using GateBuilder =
    std::function<LatticeCircuit(const std::map<int, spice::Waveform>&)>;

/// Characterizes the gate `build` implements against the target function
/// `f` (the *non-inverted* lattice function; both topologies here produce
/// the inverted output, which the measurement accounts for).
/// `switch_count` is the area the caller attributes to the implementation.
GateMetrics measure_gate(const GateBuilder& build, const logic::TruthTable& f,
                         int switch_count, const MeasureOptions& options = {});

/// Convenience wrappers for the two standard topologies.
GateMetrics measure_resistor_gate(const lattice::Lattice& lattice,
                                  const logic::TruthTable& f,
                                  const MeasureOptions& options = {});

GateMetrics measure_complementary_gate(const lattice::Lattice& pulldown,
                                       const lattice::Lattice& pullup,
                                       const logic::TruthTable& f,
                                       const MeasureOptions& options = {});

}  // namespace ftl::bridge
