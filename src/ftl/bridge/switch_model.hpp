#pragma once
// The paper's Fig. 9 circuit model of the square four-terminal switch: six
// level-1 NMOS transistors, one per terminal pair C(4,2), all sharing the
// control gate. Adjacent pairs (N-E, E-S, S-W, W-N) are Type A transistors
// (L = 0.35 um); opposite pairs (N-S, E-W) are Type B (L = 0.5 um); all have
// W = 0.7 um. A 1 fF grounded capacitor loads every terminal (§V).

#include <array>
#include <string>

#include "ftl/fit/extract.hpp"
#include "ftl/spice/circuit.hpp"

namespace ftl::bridge {

/// Terminal ordering used throughout the bridge: N, E, S, W.
enum SwitchTerminal : int { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };

struct SwitchModelParams {
  double kp = 0.0;        ///< level-1 Kp, A/V^2 (from the TCAD fit)
  double vth = 0.0;       ///< V
  double lambda = 0.0;    ///< 1/V
  double width = 0.7e-6;  ///< all six transistors, m
  double length_adjacent = 0.35e-6;  ///< Type A, m
  double length_opposite = 0.50e-6;  ///< Type B, m
  double terminal_cap = 1e-15;       ///< grounded cap per terminal, F
};

/// The paper's model card for the square + HfO2 device, i.e. the output of
/// this library's own TCAD -> level-1 extraction pipeline (bench_fig10
/// regenerates it; test_bridge cross-checks it against a fresh fit).
SwitchModelParams paper_switch_model();

/// Builds the switch-model parameters from a completed level-1 fit.
SwitchModelParams switch_model_from_fit(const fit::FitResult& fit);

/// Same, from a bare level-1 parameter set — the entry point the jobs
/// pipeline uses when the fit arrives as a cached artifact rather than a
/// live FitResult.
SwitchModelParams switch_model_from_level1(const fit::Level1Params& params);

/// Level-1 parameter set of one of the switch's six transistors, exactly as
/// add_four_terminal_switch instantiates them: `adjacent` selects the
/// Type A (adjacent-pair, L = 0.35 um) geometry, otherwise Type B. The
/// batched variability engine uses this to retune Mosfets of a shared
/// circuit in place with bit-identical parameters to a fresh netlist build.
fit::Level1Params switch_level1_params(const SwitchModelParams& params,
                                       bool adjacent);

/// Instantiates one four-terminal switch into `circuit`.
/// `terminals` are the N/E/S/W node names; `gate` the control node.
/// Device names are derived from `prefix` (must be unique per switch).
void add_four_terminal_switch(spice::Circuit& circuit,
                              const std::string& prefix,
                              const std::array<std::string, 4>& terminals,
                              const std::string& gate,
                              const SwitchModelParams& params);

}  // namespace ftl::bridge
