#include "ftl/bridge/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/spice/batch.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/measure.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/error.hpp"

namespace ftl::bridge {
namespace {

/// Gray code walk: consecutive phases differ in one input, so every output
/// transition is attributable to a single input edge.
std::uint64_t gray(std::uint64_t i) { return i ^ (i >> 1); }

}  // namespace

GateMetrics measure_gate(const GateBuilder& build, const logic::TruthTable& f,
                         int switch_count, const MeasureOptions& options) {
  FTL_EXPECTS(f.num_vars() >= 1 && f.num_vars() <= 6);
  const double vdd = options.circuit.vdd;
  const int num_vars = f.num_vars();
  const std::uint64_t num_codes = f.num_minterms();

  GateMetrics m;
  m.switch_count = switch_count;

  // ---- Static characterization: one DC operating point per code ----------
  // All 2^n bias cases run as lanes of one BatchSolver over a single built
  // circuit: one symbolic LU analysis, retuned input drives per lane —
  // bitwise identical to building and solving each code standalone.
  m.functional = true;
  m.output_low_max = 0.0;
  m.output_high_min = vdd;
  double power_sum = 0.0;
  std::vector<double> static_power(static_cast<std::size_t>(num_codes), 0.0);
  {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < num_vars; ++v) {
      drives[v] = spice::Waveform::dc(0.0);
    }
    LatticeCircuit lc = build(drives);
    std::vector<spice::VoltageSource*> pos(static_cast<std::size_t>(num_vars),
                                           nullptr);
    std::vector<spice::VoltageSource*> neg(static_cast<std::size_t>(num_vars),
                                           nullptr);
    for (int v = 0; v < num_vars; ++v) {
      const std::string& name = lc.var_names[static_cast<std::size_t>(v)];
      if (lc.circuit.has_device("Vin_" + name)) {
        pos[static_cast<std::size_t>(v)] = dynamic_cast<spice::VoltageSource*>(
            &lc.circuit.device("Vin_" + name));
      }
      if (lc.circuit.has_device("Vin_" + name + "_n")) {
        neg[static_cast<std::size_t>(v)] = dynamic_cast<spice::VoltageSource*>(
            &lc.circuit.device("Vin_" + name + "_n"));
      }
    }
    const auto& supply = dynamic_cast<const spice::VoltageSource&>(
        lc.circuit.device(lc.vdd_source));
    const std::size_t out_index =
        static_cast<std::size_t>(lc.circuit.find_node(lc.output_node));

    const auto results = spice::dcop_batch(
        lc.circuit, static_cast<std::size_t>(num_codes), [&](std::size_t lane) {
          const std::uint64_t code = static_cast<std::uint64_t>(lane);
          for (int v = 0; v < num_vars; ++v) {
            const spice::Waveform w =
                spice::Waveform::dc(((code >> v) & 1) != 0 ? vdd : 0.0);
            if (pos[static_cast<std::size_t>(v)] != nullptr) {
              pos[static_cast<std::size_t>(v)]->set_waveform(w);
            }
            if (neg[static_cast<std::size_t>(v)] != nullptr) {
              neg[static_cast<std::size_t>(v)]->set_waveform(
                  w.complemented(vdd));
            }
          }
        });
    for (std::uint64_t code = 0; code < num_codes; ++code) {
      const spice::BatchCornerResult& r =
          results[static_cast<std::size_t>(code)];
      if (r.failed) throw ftl::Error(r.error);
      const spice::OpResult& op = r.op;
      const double out = op.solution[out_index];
      const double power = vdd * std::fabs(supply.current(op.solution));
      static_power[static_cast<std::size_t>(code)] = power;
      power_sum += power;
      m.static_power_worst = std::max(m.static_power_worst, power);

      // Both topologies invert: f = 1 pulls the output low.
      if (f.get(code)) {
        m.output_low_max = std::max(m.output_low_max, out);
        m.functional = m.functional && op.converged && out < vdd / 3.0;
      } else {
        m.output_high_min = std::min(m.output_high_min, out);
        m.functional = m.functional && op.converged && out > 2.0 * vdd / 3.0;
      }
    }
  }
  m.static_power_mean = power_sum / static_cast<double>(num_codes);

  // A non-functional gate has no meaningful timing (its "low" and "high"
  // rails may even be inverted); report the static findings and stop.
  if (!m.functional || m.output_high_min <= m.output_low_max) {
    m.functional = false;
    return m;
  }

  // ---- Transient walk over all codes in Gray order ------------------------
  const double phase = options.phase_time;
  std::vector<std::uint64_t> sequence;
  for (std::uint64_t i = 0; i <= num_codes; ++i) {
    sequence.push_back(gray(i % num_codes));  // wrap to return to the start
  }
  std::map<int, spice::Waveform> drives;
  for (int v = 0; v < num_vars; ++v) {
    std::vector<std::pair<double, double>> points;
    points.emplace_back(0.0, ((sequence[0] >> v) & 1) != 0 ? vdd : 0.0);
    for (std::size_t k = 1; k < sequence.size(); ++k) {
      const double prev = ((sequence[k - 1] >> v) & 1) != 0 ? vdd : 0.0;
      const double next = ((sequence[k] >> v) & 1) != 0 ? vdd : 0.0;
      if (prev != next) {
        points.emplace_back(k * phase, prev);
        points.emplace_back(k * phase + 1e-9, next);
      }
    }
    points.emplace_back(sequence.size() * phase,
                        ((sequence.back() >> v) & 1) != 0 ? vdd : 0.0);
    drives[v] = spice::Waveform::pwl(std::move(points));
  }

  LatticeCircuit lc = build(drives);
  spice::TransientOptions topt;
  topt.tstop = sequence.size() * phase;
  topt.dt = options.dt;
  topt.record_nodes = {lc.output_node};
  topt.record_source_currents = {lc.vdd_source};
  const spice::TransientResult tr = spice::transient(lc.circuit, topt);
  const auto& t = tr.time();
  const auto& out = tr.signal(lc.output_node);
  const auto& i_vdd = tr.signal("I(" + lc.vdd_source + ")");

  // Worst rise/fall between the measured static rails; worst propagation
  // delay from the phase boundary to the Vdd/2 crossing.
  const double v_lo = m.output_low_max;
  const double v_hi = m.output_high_min;
  int transitions = 0;
  for (std::size_t k = 1; k < sequence.size(); ++k) {
    const bool before = f.get(sequence[k - 1]);
    const bool after = f.get(sequence[k]);
    if (before == after) continue;
    ++transitions;
    const double edge = k * phase;
    if (after) {
      // Output falls (f became 1).
      const auto fall = spice::fall_time(t, out, v_lo, v_hi, edge);
      if (fall) m.fall_time = std::max(m.fall_time, *fall);
    } else {
      const auto rise = spice::rise_time(t, out, v_lo, v_hi, edge);
      if (rise) m.rise_time = std::max(m.rise_time, *rise);
    }
    const auto cross = spice::crossing_time(t, out, vdd / 2.0, !after, edge);
    if (cross) {
      m.propagation_delay = std::max(m.propagation_delay, *cross - edge);
    }
  }
  if (m.rise_time > 0.0 && m.fall_time > 0.0) {
    m.max_frequency = 1.0 / (m.rise_time + m.fall_time);
  }

  // Energy: total supply energy minus the per-phase static dissipation.
  double supply_energy = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double p0 = vdd * std::fabs(i_vdd[i - 1]);
    const double p1 = vdd * std::fabs(i_vdd[i]);
    supply_energy += 0.5 * (p0 + p1) * (t[i] - t[i - 1]);
  }
  double static_energy = 0.0;
  for (std::size_t k = 0; k < sequence.size(); ++k) {
    static_energy += static_power[static_cast<std::size_t>(sequence[k])] * phase;
  }
  if (transitions > 0) {
    m.energy_per_transition =
        std::max(supply_energy - static_energy, 0.0) / transitions;
  }
  return m;
}

GateMetrics measure_resistor_gate(const lattice::Lattice& lattice,
                                  const logic::TruthTable& f,
                                  const MeasureOptions& options) {
  return measure_gate(
      [&](const std::map<int, spice::Waveform>& drives) {
        return build_lattice_circuit(lattice, drives, options.circuit);
      },
      f, lattice.cell_count(), options);
}

GateMetrics measure_complementary_gate(const lattice::Lattice& pulldown,
                                       const lattice::Lattice& pullup,
                                       const logic::TruthTable& f,
                                       const MeasureOptions& options) {
  return measure_gate(
      [&](const std::map<int, spice::Waveform>& drives) {
        return build_complementary_lattice_circuit(pulldown, pullup, drives,
                                                   options.circuit);
      },
      f, pulldown.cell_count() + pullup.cell_count(), options);
}

}  // namespace ftl::bridge
