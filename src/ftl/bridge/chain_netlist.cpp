#include "ftl/bridge/chain_netlist.hpp"

#include <memory>

#include "ftl/spice/dcop.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"

namespace ftl::bridge {

ChainCircuit build_switch_chain(int count, double supply_voltage,
                                double gate_voltage,
                                const SwitchModelParams& params) {
  FTL_EXPECTS(count >= 1);
  ChainCircuit out;
  out.supply_source = "Vsupply";
  out.gate_source = "Vgate";
  spice::Circuit& ckt = out.circuit;

  ckt.add(std::make_unique<spice::VoltageSource>(
      out.supply_source, ckt.node("n0"), spice::Circuit::kGround,
      spice::Waveform::dc(supply_voltage)));
  ckt.add(std::make_unique<spice::VoltageSource>(
      out.gate_source, ckt.node("g"), spice::Circuit::kGround,
      spice::Waveform::dc(gate_voltage)));

  // Strings are built incrementally; `"n" + std::to_string(i)` trips GCC 12's
  // -Wrestrict false positive (PR 105651) under -O2.
  const auto numbered = [](const char* prefix, int i) {
    std::string name = prefix;
    name += std::to_string(i);
    return name;
  };
  for (int i = 0; i < count; ++i) {
    const std::string north = numbered("n", i);
    const std::string south = (i == count - 1) ? "0" : numbered("n", i + 1);
    add_four_terminal_switch(ckt, numbered("ch", i),
                             {north, numbered("de", i), south, numbered("dw", i)},
                             "g", params);
  }
  return out;
}

double chain_current(int count, double supply_voltage, double gate_voltage,
                     const SwitchModelParams& params) {
  ChainCircuit chain = build_switch_chain(count, supply_voltage, gate_voltage, params);
  const spice::OpResult op = spice::dc_operating_point(chain.circuit);
  if (!op.converged) throw ftl::Error("chain_current: DC did not converge");
  const auto& supply = dynamic_cast<const spice::VoltageSource&>(
      chain.circuit.device(chain.supply_source));
  // The MNA branch current flows from + through the source; the current
  // delivered into the chain is its negative.
  return -supply.current(op.solution);
}

double voltage_for_current(int count, double target_current, double v_max,
                           const SwitchModelParams& params) {
  FTL_EXPECTS(target_current > 0.0 && v_max > 0.0);
  double lo = 0.0;
  double hi = v_max;
  if (chain_current(count, hi, hi, params) < target_current) {
    throw ftl::Error("voltage_for_current: target unreachable below v_max");
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (chain_current(count, mid, mid, params) < target_current) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ftl::bridge
