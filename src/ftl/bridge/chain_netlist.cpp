#include "ftl/bridge/chain_netlist.hpp"

#include <memory>

#include "ftl/spice/batch.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"

namespace ftl::bridge {

ChainCircuit build_switch_chain(int count, double supply_voltage,
                                double gate_voltage,
                                const SwitchModelParams& params) {
  FTL_EXPECTS(count >= 1);
  ChainCircuit out;
  out.supply_source = "Vsupply";
  out.gate_source = "Vgate";
  spice::Circuit& ckt = out.circuit;

  ckt.add(std::make_unique<spice::VoltageSource>(
      out.supply_source, ckt.node("n0"), spice::Circuit::kGround,
      spice::Waveform::dc(supply_voltage)));
  ckt.add(std::make_unique<spice::VoltageSource>(
      out.gate_source, ckt.node("g"), spice::Circuit::kGround,
      spice::Waveform::dc(gate_voltage)));

  // Strings are built incrementally; `"n" + std::to_string(i)` trips GCC 12's
  // -Wrestrict false positive (PR 105651) under -O2.
  const auto numbered = [](const char* prefix, int i) {
    std::string name = prefix;
    name += std::to_string(i);
    return name;
  };
  for (int i = 0; i < count; ++i) {
    const std::string north = numbered("n", i);
    const std::string south = (i == count - 1) ? "0" : numbered("n", i + 1);
    add_four_terminal_switch(ckt, numbered("ch", i),
                             {north, numbered("de", i), south, numbered("dw", i)},
                             "g", params);
  }
  return out;
}

double chain_current(int count, double supply_voltage, double gate_voltage,
                     const SwitchModelParams& params) {
  ChainCircuit chain = build_switch_chain(count, supply_voltage, gate_voltage, params);
  const spice::OpResult op = spice::dc_operating_point(chain.circuit);
  if (!op.converged) throw ftl::Error("chain_current: DC did not converge");
  const auto& supply = dynamic_cast<const spice::VoltageSource&>(
      chain.circuit.device(chain.supply_source));
  // The MNA branch current flows from + through the source; the current
  // delivered into the chain is its negative.
  return -supply.current(op.solution);
}

std::vector<double> chain_current_batch(int count,
                                        const std::vector<double>& supply_voltages,
                                        const std::vector<double>& gate_voltages,
                                        const SwitchModelParams& params) {
  FTL_EXPECTS(!supply_voltages.empty());
  FTL_EXPECTS(supply_voltages.size() == gate_voltages.size());
  ChainCircuit chain =
      build_switch_chain(count, supply_voltages[0], gate_voltages[0], params);
  auto& supply = dynamic_cast<spice::VoltageSource&>(
      chain.circuit.device(chain.supply_source));
  auto& gate = dynamic_cast<spice::VoltageSource&>(
      chain.circuit.device(chain.gate_source));
  const auto results = spice::dcop_batch(
      chain.circuit, supply_voltages.size(), [&](std::size_t lane) {
        supply.set_waveform(spice::Waveform::dc(supply_voltages[lane]));
        gate.set_waveform(spice::Waveform::dc(gate_voltages[lane]));
      });
  std::vector<double> currents(results.size());
  for (std::size_t lane = 0; lane < results.size(); ++lane) {
    const spice::BatchCornerResult& r = results[lane];
    if (r.failed) throw ftl::Error(r.error);
    if (!r.op.converged) {
      throw ftl::Error("chain_current: DC did not converge");
    }
    currents[lane] = -supply.current(r.op.solution);
  }
  return currents;
}

double voltage_for_current(int count, double target_current, double v_max,
                           const SwitchModelParams& params) {
  FTL_EXPECTS(target_current > 0.0 && v_max > 0.0);
  // The bisection is inherently sequential (each probe depends on the last
  // bracket), so it can't batch across lanes — but one circuit serves all
  // probes: retune the two sources in place and let the circuit's solver
  // reuse its cached pattern and symbolic analysis across the 61 solves.
  // Fresh-build and retuned circuits assemble bitwise-identical matrices,
  // so the bracket sequence matches the per-point path exactly.
  ChainCircuit chain = build_switch_chain(count, v_max, v_max, params);
  auto& supply = dynamic_cast<spice::VoltageSource&>(
      chain.circuit.device(chain.supply_source));
  auto& gate = dynamic_cast<spice::VoltageSource&>(
      chain.circuit.device(chain.gate_source));
  const auto current_at = [&](double volts) {
    supply.set_waveform(spice::Waveform::dc(volts));
    gate.set_waveform(spice::Waveform::dc(volts));
    const spice::OpResult op = spice::dc_operating_point(chain.circuit);
    if (!op.converged) throw ftl::Error("chain_current: DC did not converge");
    return -supply.current(op.solution);
  };
  double lo = 0.0;
  double hi = v_max;
  if (current_at(hi) < target_current) {
    throw ftl::Error("voltage_for_current: target unreachable below v_max");
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (current_at(mid) < target_current) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ftl::bridge
