#pragma once
// FNV-1a 64-bit content digest used for job cache keys and artifact content
// addresses. The hash is a pure function of the bytes fed in, so a cache key
// built from (job name, parameter digest, calibration digest, dependency
// content digests) is stable across runs, processes and thread schedules.

#include <cstdint>
#include <string>
#include <string_view>

namespace ftl::jobs {

/// Incremental FNV-1a 64-bit hasher.
class Digest {
 public:
  Digest& bytes(const void* data, std::size_t size);
  Digest& str(std::string_view s);  ///< hashes length then bytes
  Digest& u64(std::uint64_t v);
  Digest& i64(std::int64_t v);
  Digest& f64(double v);  ///< bit pattern, so -0.0 != +0.0 but NaNs are stable

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;  // FNV offset basis
};

/// One-shot convenience over a string.
std::uint64_t fnv1a64(std::string_view s);

/// Finalizing bit mixer (splitmix64). FNV-1a of short, similar inputs leaves
/// most of the entropy in the low bits — consumers that route on the high
/// bits of a digest (cache shard selection, consistent-hash rings) must mix
/// first or the routing degenerates.
std::uint64_t mix64(std::uint64_t v);

/// Fixed-width lowercase hex rendering of a digest (16 chars).
std::string digest_hex(std::uint64_t v);

}  // namespace ftl::jobs
