#include "ftl/jobs/artifact.hpp"

#include <cstdio>
#include <cstdlib>

#include "ftl/jobs/digest.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/error.hpp"

namespace ftl::jobs {

namespace {

constexpr const char* kMagic = "ftl-artifact";
constexpr const char* kVersion = "1";

// %.17g: max_digits10 for double — strtod recovers the exact bit pattern.
std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_value(const std::string& cell, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    throw Error(std::string("artifact: malformed ") + what + ": '" + cell + "'");
  }
  return v;
}

void check_clean(const std::string& text, const char* what) {
  if (text.find(',') != std::string::npos ||
      text.find('\n') != std::string::npos) {
    throw Error(std::string("artifact: ") + what +
                " must not contain commas or newlines: '" + text + "'");
  }
}

}  // namespace

void Artifact::set_columns(std::vector<std::string> names) {
  for (const std::string& n : names) check_clean(n, "column name");
  if (!rows.empty() && names.size() != columns.size()) {
    throw Error("artifact: cannot change column count under existing rows");
  }
  columns = std::move(names);
}

void Artifact::add_row(std::vector<double> row) {
  if (row.size() != columns.size()) {
    throw Error("artifact: row width " + std::to_string(row.size()) +
                " does not match " + std::to_string(columns.size()) +
                " columns");
  }
  rows.push_back(std::move(row));
}

double Artifact::scalar(const std::string& name) const {
  const auto it = scalars.find(name);
  if (it == scalars.end()) throw Error("artifact: no scalar '" + name + "'");
  return it->second;
}

double Artifact::scalar_or(const std::string& name, double fallback) const {
  const auto it = scalars.find(name);
  return it == scalars.end() ? fallback : it->second;
}

const std::string& Artifact::note(const std::string& name) const {
  const auto it = notes.find(name);
  if (it == notes.end()) throw Error("artifact: no note '" + name + "'");
  return it->second;
}

std::vector<double> Artifact::column(const std::string& name) const {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == name) {
      std::vector<double> out;
      out.reserve(rows.size());
      for (const std::vector<double>& row : rows) out.push_back(row[c]);
      return out;
    }
  }
  throw Error("artifact: no column '" + name + "'");
}

std::string Artifact::serialize() const {
  std::string out;
  out += kMagic;
  out += ',';
  out += kVersion;
  out += '\n';
  for (const auto& [name, value] : scalars) {
    check_clean(name, "scalar name");
    out += "s,";
    out += name;
    out += ',';
    out += format_value(value);
    out += '\n';
  }
  for (const auto& [name, text] : notes) {
    check_clean(name, "note name");
    check_clean(text, "note text");
    out += "n,";
    out += name;
    out += ',';
    out += text;
    out += '\n';
  }
  if (!columns.empty()) {
    out += 'c';
    for (const std::string& name : columns) {
      out += ',';
      out += name;
    }
    out += '\n';
    for (const std::vector<double>& row : rows) {
      out += 'r';
      for (const double v : row) {
        out += ',';
        out += format_value(v);
      }
      out += '\n';
    }
  }
  return out;
}

Artifact Artifact::deserialize(std::string_view text) {
  const std::vector<std::vector<std::string>> lines = util::parse_csv(text);
  if (lines.empty() || lines[0].size() != 2 || lines[0][0] != kMagic) {
    throw Error("artifact: missing header");
  }
  if (lines[0][1] != kVersion) {
    throw Error("artifact: unsupported version '" + lines[0][1] + "'");
  }
  Artifact out;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string>& cells = lines[i];
    if (cells.empty() || cells[0].size() != 1) {
      throw Error("artifact: malformed line " + std::to_string(i + 1));
    }
    switch (cells[0][0]) {
      case 's':
        if (cells.size() != 3) throw Error("artifact: malformed scalar line");
        out.scalars[cells[1]] = parse_value(cells[2], "scalar");
        break;
      case 'n':
        if (cells.size() != 3) throw Error("artifact: malformed note line");
        out.notes[cells[1]] = cells[2];
        break;
      case 'c':
        out.columns.assign(cells.begin() + 1, cells.end());
        break;
      case 'r': {
        if (cells.size() != out.columns.size() + 1) {
          throw Error("artifact: row width does not match columns");
        }
        std::vector<double> row;
        row.reserve(cells.size() - 1);
        for (std::size_t c = 1; c < cells.size(); ++c) {
          row.push_back(parse_value(cells[c], "row value"));
        }
        out.rows.push_back(std::move(row));
        break;
      }
      default:
        throw Error("artifact: unknown record type '" + cells[0] + "'");
    }
  }
  return out;
}

std::uint64_t Artifact::content_digest() const { return fnv1a64(serialize()); }

}  // namespace ftl::jobs
