#include "ftl/jobs/pipeline.hpp"

#include <cctype>
#include <cmath>
#include <map>

#include "ftl/bridge/chain_netlist.hpp"
#include "ftl/bridge/lattice_netlist.hpp"
#include "ftl/bridge/variability.hpp"
#include "ftl/fit/extract.hpp"
#include "ftl/jobs/digest.hpp"
#include "ftl/lattice/known_mappings.hpp"
#include "ftl/spice/batch.hpp"
#include "ftl/spice/dcop.hpp"
#include "ftl/spice/measure.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/calibration.hpp"
#include "ftl/tcad/current_density.hpp"
#include "ftl/tcad/extract.hpp"
#include "ftl/tcad/sweep.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::jobs {

namespace {

// Gate-sweep floor per device shape (the depletion wire must be driven
// below Vth to turn off; the SiO2 variant needs the 3x deeper sweep).
double sweep_vg_min(tcad::DeviceShape shape, tcad::GateDielectric diel) {
  if (shape != tcad::DeviceShape::kJunctionless) return 0.0;
  return diel == tcad::GateDielectric::kSiO2 ? -6.0 : -2.0;
}

tcad::NetworkSolver make_solver(tcad::DeviceShape shape,
                                tcad::GateDielectric diel, int mesh) {
  const tcad::DeviceSpec spec = tcad::make_device(shape, diel);
  return tcad::NetworkSolver(tcad::build_mesh(spec, mesh),
                             tcad::ChargeSheetModel(spec));
}

// ---- TCAD sweep jobs ------------------------------------------------------

// Artifact layout shared by all six device jobs: one row per sweep point,
// tagged with the set-up index (0 = Id-Vg @ 10 mV, 1 = Id-Vg @ 5 V,
// 2 = Id-Vd @ Vgs 5 V).
void append_curve(Artifact& artifact, int setup, const tcad::IvCurve& curve) {
  for (std::size_t i = 0; i < curve.sweep_values.size(); ++i) {
    artifact.add_row({static_cast<double>(setup), curve.sweep_values[i],
                      curve.terminal_currents[i][0], curve.terminal_currents[i][1],
                      curve.terminal_currents[i][2], curve.terminal_currents[i][3]});
  }
}

Artifact tcad_sweep_job(tcad::DeviceShape shape, tcad::GateDielectric diel,
                        const PipelineOptions& options, JobContext& ctx) {
  const tcad::NetworkSolver solver = make_solver(shape, diel, options.mesh);
  const tcad::BiasCase dsss = tcad::parse_bias_case("DSSS");
  const tcad::SweepSetups sweeps = tcad::run_paper_setups(
      solver, dsss, sweep_vg_min(shape, diel), 5.0, options.sweep_points);
  Artifact out;
  out.set_columns({"setup", "v", "i_t1", "i_t2", "i_t3", "i_t4"});
  append_curve(out, 0, sweeps.idvg_low);
  append_curve(out, 1, sweeps.idvg_high);
  append_curve(out, 2, sweeps.idvd);
  out.notes["shape"] = tcad::to_string(shape);
  out.notes["dielectric"] = tcad::to_string(diel);
  ctx.counter("solver_passes", sweeps.idvg_low.solver_passes +
                                   sweeps.idvg_high.solver_passes +
                                   sweeps.idvd.solver_passes);
  return out;
}

// Rebuilds (sweep values, DSSS drain current) of one set-up from the table.
void curve_from_artifact(const Artifact& artifact, int setup,
                         const tcad::BiasCase& bias, linalg::Vector& v,
                         linalg::Vector& id) {
  std::vector<double> vs;
  std::vector<double> is;
  for (const std::vector<double>& row : artifact.rows) {
    if (static_cast<int>(row[0]) != setup) continue;
    vs.push_back(row[1]);
    double drain = 0.0;
    for (std::size_t t = 0; t < 4; ++t) {
      if (bias.roles[t] == tcad::Role::kDrain) drain += row[2 + t];
    }
    is.push_back(drain);
  }
  v = linalg::Vector(vs.size());
  id = linalg::Vector(is.size());
  for (std::size_t i = 0; i < vs.size(); ++i) {
    v[i] = vs[i];
    id[i] = std::fabs(is[i]);
  }
}

struct FigureTargets {
  double vth_hfo2, vth_sio2, ratio_hfo2, ratio_sio2;
};

// Figs. 5-7 metrics: Vth (max-gm) and on/off ratio per dielectric, compared
// against the §III-B text exactly like the standalone benches.
Artifact device_metrics_job(tcad::DeviceShape shape,
                            const FigureTargets& paper, JobContext& ctx) {
  const tcad::BiasCase dsss = tcad::parse_bias_case("DSSS");
  Artifact out;
  out.set_columns({"dielectric", "vth", "ratio", "ion"});
  int out_of_band = 0;
  const tcad::GateDielectric diels[] = {tcad::GateDielectric::kHfO2,
                                        tcad::GateDielectric::kSiO2};
  for (std::size_t d = 0; d < 2; ++d) {
    const Artifact& sweep = ctx.input(d);
    linalg::Vector v_low, id_low, v_high, id_high;
    curve_from_artifact(sweep, 0, dsss, v_low, id_low);
    curve_from_artifact(sweep, 1, dsss, v_high, id_high);
    const double vth =
        tcad::threshold_voltage_max_gm(v_low, id_low, 0.010);
    // Depletion devices are ON at Vgs = 0; their off-point is below Vth.
    const tcad::DeviceSpec spec = tcad::make_device(shape, diels[d]);
    const double vg_off =
        spec.is_depletion()
            ? tcad::ChargeSheetModel(spec).threshold_voltage() - 1.0
            : 0.0;
    const double ratio = tcad::on_off_ratio(v_high, id_high, 5.0, vg_off);
    const double ion = id_high[id_high.size() - 1];
    const bool hfo2 = diels[d] == tcad::GateDielectric::kHfO2;
    const double paper_vth = hfo2 ? paper.vth_hfo2 : paper.vth_sio2;
    const double paper_ratio = hfo2 ? paper.ratio_hfo2 : paper.ratio_sio2;
    if (std::fabs(vth - paper_vth) >
        std::max(0.35 * std::fabs(paper_vth), 0.15)) {
      ++out_of_band;
    }
    if (ratio / paper_ratio > 10.0 || paper_ratio / ratio > 10.0) ++out_of_band;
    const std::string tag = hfo2 ? "hfo2" : "sio2";
    out.scalars["vth_" + tag] = vth;
    out.scalars["ratio_" + tag] = ratio;
    out.add_row({static_cast<double>(d), vth, ratio, ion});
  }
  out.scalars["out_of_band"] = out_of_band;
  out.notes["shape"] = tcad::to_string(shape);
  return out;
}

// Fig. 8: current-crowding metrics of the three devices at the DSSS
// on-state point (cross < square Gini is the paper's qualitative claim).
Artifact fig8_job(const PipelineOptions& options, JobContext& ctx) {
  const tcad::BiasPoint bias = tcad::parse_bias_case("DSSS").at(5.0, 5.0);
  const tcad::DeviceShape shapes[] = {tcad::DeviceShape::kSquare,
                                      tcad::DeviceShape::kCross,
                                      tcad::DeviceShape::kJunctionless};
  Artifact out;
  out.set_columns({"shape", "peak_over_mean", "gini"});
  for (std::size_t s = 0; s < 3; ++s) {
    const tcad::NetworkSolver solver =
        make_solver(shapes[s], tcad::GateDielectric::kHfO2, options.mesh);
    const tcad::CrowdingMetrics m = tcad::crowding_metrics(solver, bias);
    out.add_row({static_cast<double>(s), m.peak_over_mean, m.gini});
    out.scalars["gini_" + tcad::to_string(shapes[s])] = m.gini;
  }
  out.scalars["cross_more_uniform"] =
      out.scalar("gini_cross") < out.scalar("gini_square") ? 1.0 : 0.0;
  ctx.counter("devices", 3);
  return out;
}

// ---- §IV extraction jobs --------------------------------------------------

// Sweep-data artifact of the two-scenario fit recipe: leg 0 = Id-Vg at
// Vds 5 V, leg 1 = Id-Vd at Vgs 5 V; currents are |I(drain)|.
Artifact fit_sweep_job(const std::string& bias_name,
                       const PipelineOptions& options, JobContext& ctx) {
  const tcad::NetworkSolver solver = make_solver(
      tcad::DeviceShape::kSquare, tcad::GateDielectric::kHfO2, options.mesh);
  const tcad::BiasCase bias = tcad::parse_bias_case(bias_name);
  const fit::FitSweepData data =
      fit::paper_fit_sweeps(solver, bias, options.sweep_points);
  Artifact out;
  out.set_columns({"leg", "vgs", "vds", "ids"});
  const linalg::Vector ig = data.idvg.terminal_magnitude(data.drain);
  for (std::size_t i = 0; i < data.idvg.sweep_values.size(); ++i) {
    out.add_row({0.0, data.idvg.sweep_values[i], 5.0, ig[i]});
  }
  const linalg::Vector id = data.idvd.terminal_magnitude(data.drain);
  for (std::size_t i = 0; i < data.idvd.sweep_values.size(); ++i) {
    out.add_row({1.0, 5.0, data.idvd.sweep_values[i], id[i]});
  }
  out.notes["bias"] = bias_name;
  ctx.counter("solver_passes",
              data.idvg.solver_passes + data.idvd.solver_passes);
  return out;
}

std::vector<fit::IvSample> samples_from_artifact(const Artifact& artifact) {
  std::vector<fit::IvSample> samples;
  samples.reserve(artifact.row_count());
  for (const std::vector<double>& row : artifact.rows) {
    samples.push_back({row[1], row[2], row[3]});
  }
  return samples;
}

// Level-1 fit (Fig. 10 / Table III): consumes the cached sweep artifact, so
// a fit-stage change re-fits without re-simulating the TCAD stage.
Artifact fit_job(double width, double length, JobContext& ctx) {
  const std::vector<fit::IvSample> samples =
      samples_from_artifact(ctx.input(0));
  const fit::FitResult fit = fit::fit_level1_paper(samples, width, length);
  if (!fit.converged) {
    throw Error("level-1 fit did not converge (rms " +
                util::format_double(fit.rms) + " A)");
  }
  Artifact out;
  out.scalars["kp"] = fit.params.kp;
  out.scalars["vth"] = fit.params.vth;
  out.scalars["lambda"] = fit.params.lambda;
  out.scalars["width"] = fit.params.width;
  out.scalars["length"] = fit.params.length;
  out.scalars["rms"] = fit.rms;
  out.scalars["iterations"] = fit.iterations;
  ctx.counter("levmar_iterations", fit.iterations);
  ctx.counter("samples", static_cast<double>(samples.size()));
  return out;
}

fit::Level1Params level1_from_artifact(const Artifact& artifact) {
  fit::Level1Params p;
  p.kp = artifact.scalar("kp");
  p.vth = artifact.scalar("vth");
  p.lambda = artifact.scalar("lambda");
  p.width = artifact.scalar("width");
  p.length = artifact.scalar("length");
  return p;
}

// Fig. 10 overlay: Id-Vd TCAD data (leg 1 of the DSFF sweep artifact)
// against the fitted level-1 curve.
Artifact fig10_job(JobContext& ctx) {
  const fit::Level1Params params = level1_from_artifact(ctx.input(0));
  const Artifact& sweep = ctx.input(1);
  Artifact out;
  out.set_columns({"vds", "tcad", "fit"});
  double max_rel = 0.0;
  for (const std::vector<double>& row : sweep.rows) {
    if (static_cast<int>(row[0]) != 1) continue;  // Id-Vd leg only
    const double vds = row[2];
    const double data = row[3];
    const double fitted = fit::level1_ids(params, 5.0, vds);
    out.add_row({vds, data, fitted});
    if (data > 1e-12) {
      max_rel = std::max(max_rel, std::fabs(fitted - data) / data);
    }
  }
  out.scalars["max_rel_err"] = max_rel;
  return out;
}

// Table III: the fitted Type A / Type B parameter sets side by side.
Artifact table3_job(JobContext& ctx) {
  Artifact out;
  out.set_columns({"type", "kp", "vth", "lambda", "rms"});
  const char* tags[] = {"a", "b"};
  for (std::size_t i = 0; i < 2; ++i) {
    const Artifact& fit = ctx.input(i);
    out.add_row({static_cast<double>(i), fit.scalar("kp"), fit.scalar("vth"),
                 fit.scalar("lambda"), fit.scalar("rms")});
    const std::string tag = tags[i];
    out.scalars["kp_" + tag] = fit.scalar("kp");
    out.scalars["vth_" + tag] = fit.scalar("vth");
    out.scalars["lambda_" + tag] = fit.scalar("lambda");
  }
  out.notes["type_a"] = "adjacent pair (L = 0.35 um)";
  out.notes["type_b"] = "opposite pair (L = 0.50 um)";
  return out;
}

// ---- §V circuit jobs ------------------------------------------------------

bridge::LatticeCircuitOptions lattice_options_from_fit(const Artifact& fit) {
  bridge::LatticeCircuitOptions options;
  options.switch_model = bridge::switch_model_from_level1(level1_from_artifact(fit));
  return options;
}

// Fig. 11, DC half: the electrical truth table of the inverse-XOR3 lattice.
Artifact fig11_dc_job(JobContext& ctx) {
  const bridge::LatticeCircuitOptions options =
      lattice_options_from_fit(ctx.input(0));
  const lattice::Lattice lat = lattice::xor3_lattice_3x3();
  Artifact out;
  out.set_columns({"code", "xor3", "vout", "ok"});
  bool all_ok = true;
  double zero_state = 0.0;
  for (int code = 0; code < 8; ++code) {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < 3; ++v) {
      drives[v] = spice::Waveform::dc(((code >> v) & 1) != 0 ? 1.2 : 0.0);
    }
    bridge::LatticeCircuit lc =
        bridge::build_lattice_circuit(lat, drives, options);
    const spice::OpResult op = spice::dc_operating_point(lc.circuit);
    ctx.counter("newton_iterations", op.iterations);
    const double vout =
        op.solution[static_cast<std::size_t>(lc.circuit.find_node("out"))];
    const bool xor3 = (((code >> 0) ^ (code >> 1) ^ (code >> 2)) & 1) != 0;
    const bool ok = op.converged && (xor3 ? vout < 0.4 : vout > 1.0);
    all_ok = all_ok && ok;
    if (xor3) zero_state = std::max(zero_state, vout);
    out.add_row({static_cast<double>(code), xor3 ? 1.0 : 0.0, vout,
                 ok ? 1.0 : 0.0});
  }
  out.scalars["zero_state"] = zero_state;
  out.scalars["all_ok"] = all_ok ? 1.0 : 0.0;
  return out;
}

// Fig. 11, transient half: the binary-weighted input walk and the §V
// figures of merit (10-90% rise, 90-10% fall).
Artifact fig11_transient_job(const PipelineOptions& pipeline_options,
                             JobContext& ctx) {
  const bridge::LatticeCircuitOptions options =
      lattice_options_from_fit(ctx.input(0));
  const double zero_state = ctx.input(1).scalar("zero_state");
  const lattice::Lattice lat = lattice::xor3_lattice_3x3();
  const double period = 40e-9;
  std::map<int, spice::Waveform> drives;
  for (int v = 0; v < 3; ++v) {
    const double p = period * static_cast<double>(2 << v);
    drives[v] =
        spice::Waveform::pulse(0.0, 1.2, p / 2.0, 1e-9, 1e-9, p / 2.0 - 1e-9, p);
  }
  bridge::LatticeCircuit lc = bridge::build_lattice_circuit(lat, drives, options);
  spice::TransientOptions topt;
  topt.tstop = pipeline_options.transient_periods * period;
  topt.dt = pipeline_options.transient_dt;
  topt.record_nodes = {"out"};
  const spice::TransientResult tr = spice::transient(lc.circuit, topt);

  Artifact out;
  out.set_columns({"t", "vout"});
  for (std::size_t i = 0; i < tr.time().size(); ++i) {
    out.add_row({tr.time()[i], tr.signal("out")[i]});
  }
  const auto rise = spice::rise_time(tr.time(), tr.signal("out"), zero_state, 1.2);
  const auto fall = spice::fall_time(tr.time(), tr.signal("out"), zero_state, 1.2);
  out.scalars["rise_s"] = rise ? *rise : -1.0;
  out.scalars["fall_s"] = fall ? *fall : -1.0;
  out.scalars["zero_state"] = zero_state;
  ctx.counter("steps", static_cast<double>(tr.size()));
  ctx.counter("newton_iterations", tr.newton_iterations());
  return out;
}

// Fig. 12a: chain current at constant 1.2 V supply, N = 1..chain_max. The
// chains are independent, so they fan across the pool; each N writes its
// own slot, keeping the artifact bit-identical to a serial run.
Artifact fig12a_job(const PipelineOptions& pipeline_options, JobContext& ctx) {
  const bridge::SwitchModelParams model =
      bridge::switch_model_from_level1(level1_from_artifact(ctx.input(0)));
  const int n_max = pipeline_options.chain_max;
  std::vector<double> currents(static_cast<std::size_t>(n_max) + 1, 0.0);
  util::parallel_for(static_cast<std::size_t>(n_max), [&](std::size_t i) {
    const int n = static_cast<int>(i) + 1;
    currents[static_cast<std::size_t>(n)] =
        bridge::chain_current(n, 1.2, 1.2, model);
  });
  Artifact out;
  out.set_columns({"n", "current"});
  for (int n = 1; n <= n_max; ++n) {
    out.add_row({static_cast<double>(n), currents[static_cast<std::size_t>(n)]});
  }
  out.scalars["i1"] = currents[1];
  out.scalars["target_current"] =
      currents[static_cast<std::size_t>(std::min(2, n_max))];
  out.scalars["decay_ratio"] =
      currents[1] / currents[static_cast<std::size_t>(n_max)];
  ctx.counter("chains", n_max);
  return out;
}

// Fig. 12b: supply voltage for the constant two-switch current.
Artifact fig12b_job(const PipelineOptions& pipeline_options, JobContext& ctx) {
  const bridge::SwitchModelParams model =
      bridge::switch_model_from_level1(level1_from_artifact(ctx.input(0)));
  const double target = ctx.input(1).scalar("target_current");
  const int n_max = pipeline_options.chain_max;
  std::vector<double> volts(static_cast<std::size_t>(n_max) + 1, 0.0);
  util::parallel_for(static_cast<std::size_t>(n_max), [&](std::size_t i) {
    const int n = static_cast<int>(i) + 1;
    volts[static_cast<std::size_t>(n)] =
        bridge::voltage_for_current(n, target, 10.0, model);
  });
  Artifact out;
  out.set_columns({"n", "voltage"});
  bool monotone = true;
  for (int n = 1; n <= n_max; ++n) {
    out.add_row({static_cast<double>(n), volts[static_cast<std::size_t>(n)]});
    if (n > 1) {
      monotone = monotone && volts[static_cast<std::size_t>(n)] >=
                                 volts[static_cast<std::size_t>(n - 1)] - 1e-9;
    }
  }
  const int base = std::min(2, n_max);
  out.scalars["monotone"] = monotone ? 1.0 : 0.0;
  out.scalars["growth"] = volts[static_cast<std::size_t>(n_max)] /
                          volts[static_cast<std::size_t>(base)];
  ctx.counter("chains", n_max);
  return out;
}

// sweep_batch: the batched-corner engine as a pipeline stage. Runs the §V
// Monte-Carlo yield of the XOR3 bench (all trials of a worker chunk solved
// as lanes of one BatchSolver per input code) plus a Fig. 12 chain supply
// sweep through chain_current_batch, and folds the engine's batch_core
// counter deltas into the job telemetry.
Artifact sweep_batch_job(const PipelineOptions& pipeline_options,
                         JobContext& ctx) {
  const bridge::SwitchModelParams model =
      bridge::switch_model_from_level1(level1_from_artifact(ctx.input(0)));
  const spice::BatchCounters before = spice::batch_counters();

  bridge::VariabilityOptions vo;
  vo.sigma_vth = 0.01;
  vo.sigma_kp_rel = 0.05;
  vo.trials = pipeline_options.mc_trials;
  vo.max_threads = pipeline_options.workers;
  vo.circuit.switch_model = model;
  const bridge::VariabilityResult mc = bridge::monte_carlo_yield(
      lattice::xor3_lattice_3x3(), lattice::xor3_truth_table(), vo);

  // Fig. 12 drive sweep: one chain topology, all supply corners as lanes
  // of a single symbolic analysis (gate rail tracking the supply).
  const int chain_n = std::min(5, pipeline_options.chain_max);
  std::vector<double> volts;
  for (int i = 0; i <= 10; ++i) volts.push_back(0.3 + 0.27 * i);
  const std::vector<double> currents =
      bridge::chain_current_batch(chain_n, volts, volts, model);

  Artifact out;
  out.set_columns({"v", "current"});
  for (std::size_t i = 0; i < volts.size(); ++i) {
    out.add_row({volts[i], currents[i]});
  }
  out.scalars["trials"] = static_cast<double>(mc.trials);
  out.scalars["yield"] = mc.yield();
  out.scalars["worst_low"] = mc.worst_low;
  out.scalars["worst_high"] = mc.worst_high;
  out.scalars["chain_n"] = static_cast<double>(chain_n);

  // batch_core deltas — the process-wide counters are safe to difference
  // here because no other pipeline job routes through the batch engine.
  const spice::BatchCounters after = spice::batch_counters();
  ctx.counter("batches", static_cast<double>(after.batches - before.batches));
  ctx.counter("lanes", static_cast<double>(after.lanes - before.lanes));
  ctx.counter("symbolic_reuses", static_cast<double>(after.symbolic_reuses -
                                                     before.symbolic_reuses));
  ctx.counter("numeric_refactors", static_cast<double>(
                                       after.numeric_refactors -
                                       before.numeric_refactors));
  ctx.counter("lane_fallbacks", static_cast<double>(after.lane_fallbacks -
                                                    before.lane_fallbacks));
  ctx.counter("newton_iterations", static_cast<double>(
                                       after.newton_iterations -
                                       before.newton_iterations));
  return out;
}

std::uint64_t base_digest(const PipelineOptions& options, const char* recipe) {
  Digest d;
  d.str(recipe);
  d.u64(calibration_digest());
  d.i64(options.mesh);
  d.i64(options.sweep_points);
  return d.value();
}

}  // namespace

std::uint64_t calibration_digest() {
  namespace cal = tcad::calibration;
  Digest d;
  d.str("tcad-calibration");
  d.f64(cal::kFlatBandEnhancement);
  d.f64(cal::kFlatBandJunctionless);
  d.f64(cal::kNarrowWidth);
  d.f64(cal::kChannelMobility);
  d.f64(cal::kMobilityTheta);
  d.f64(cal::kElectrodeMobility);
  d.f64(cal::kJunctionlessDonors);
  d.f64(cal::kJunctionlessThickness);
  d.f64(cal::kJunctionlessMobility);
  d.f64(cal::kJunctionLeakage);
  d.f64(cal::kGateLeakageHfO2);
  d.f64(cal::kGateLeakageSiO2);
  d.f64(cal::kMinSheetConductance);
  return d.value();
}

PaperPipeline build_paper_pipeline(const PipelineOptions& options) {
  PaperPipeline pipeline;
  JobGraph& g = pipeline.graph;
  const auto add = [&pipeline, &g](JobDesc desc) {
    const JobId id = g.add(std::move(desc));
    pipeline.all.push_back(id);
    return id;
  };

  // ---- TCAD device sweeps (Figs. 5-7 inputs) -----------------------------
  const tcad::DeviceShape shapes[] = {tcad::DeviceShape::kSquare,
                                      tcad::DeviceShape::kCross,
                                      tcad::DeviceShape::kJunctionless};
  std::map<std::string, JobId> sweep_ids;
  for (const tcad::DeviceShape shape : shapes) {
    for (const tcad::GateDielectric diel :
         {tcad::GateDielectric::kHfO2, tcad::GateDielectric::kSiO2}) {
      const std::string name = "tcad_" + tcad::to_string(shape) + "_" +
                               util::to_lower(tcad::to_string(diel));
      Digest d;
      d.u64(base_digest(options, "tcad-sweep-v1"));
      d.str(tcad::to_string(shape));
      d.str(tcad::to_string(diel));
      d.f64(sweep_vg_min(shape, diel));
      JobDesc desc;
      desc.name = name;
      desc.param_digest = d.value();
      desc.fn = [shape, diel, options](JobContext& ctx) {
        return tcad_sweep_job(shape, diel, options, ctx);
      };
      sweep_ids[name] = add(std::move(desc));
    }
  }

  // ---- Figs. 5-7 metrics --------------------------------------------------
  const struct {
    const char* name;
    tcad::DeviceShape shape;
    FigureTargets targets;
  } figures[] = {
      {"fig5", tcad::DeviceShape::kSquare, {0.16, 1.36, 1e6, 1e5}},
      {"fig6", tcad::DeviceShape::kCross, {0.27, 1.76, 1e6, 1e4}},
      {"fig7", tcad::DeviceShape::kJunctionless, {-0.57, -4.8, 1e8, 1e7}},
  };
  for (const auto& fig : figures) {
    const std::string shape_name = tcad::to_string(fig.shape);
    JobDesc desc;
    desc.name = fig.name;
    Digest d;
    d.u64(base_digest(options, "device-metrics-v1"));
    d.str(shape_name);
    desc.param_digest = d.value();
    desc.deps = {sweep_ids.at("tcad_" + shape_name + "_hfo2"),
                 sweep_ids.at("tcad_" + shape_name + "_sio2")};
    const tcad::DeviceShape shape = fig.shape;
    const FigureTargets targets = fig.targets;
    desc.fn = [shape, targets](JobContext& ctx) {
      return device_metrics_job(shape, targets, ctx);
    };
    add(std::move(desc));
  }

  // ---- Fig. 8 (independent branch) ---------------------------------------
  {
    JobDesc desc;
    desc.name = "fig8";
    desc.param_digest = base_digest(options, "fig8-crowding-v1");
    desc.fn = [options](JobContext& ctx) { return fig8_job(options, ctx); };
    add(std::move(desc));
  }

  // ---- §IV extraction -----------------------------------------------------
  const JobId dsff = add([&] {
    JobDesc desc;
    desc.name = "tcad_fit_dsff";
    Digest d;
    d.u64(base_digest(options, "fit-sweep-v1"));
    d.str("DSFF");
    desc.param_digest = d.value();
    desc.fn = [options](JobContext& ctx) {
      return fit_sweep_job("DSFF", options, ctx);
    };
    return desc;
  }());
  const JobId sfdf = add([&] {
    JobDesc desc;
    desc.name = "tcad_fit_sfdf";
    Digest d;
    d.u64(base_digest(options, "fit-sweep-v1"));
    d.str("SFDF");
    desc.param_digest = d.value();
    desc.fn = [options](JobContext& ctx) {
      return fit_sweep_job("SFDF", options, ctx);
    };
    return desc;
  }());

  const auto add_fit = [&](const char* name, JobId sweep, double length) {
    JobDesc desc;
    desc.name = name;
    Digest d;
    d.u64(base_digest(options, "fit-level1-v1"));
    d.f64(0.7e-6);
    d.f64(length);
    desc.param_digest = d.value();
    desc.deps = {sweep};
    desc.fn = [length](JobContext& ctx) {
      return fit_job(0.7e-6, length, ctx);
    };
    return add(std::move(desc));
  };
  const JobId fit_a = add_fit("fit_type_a", dsff, 0.35e-6);
  const JobId fit_b = add_fit("fit_type_b", sfdf, 0.50e-6);

  {
    JobDesc desc;
    desc.name = "fig10";
    desc.param_digest = base_digest(options, "fig10-overlay-v1");
    desc.deps = {fit_a, dsff};
    desc.fn = [](JobContext& ctx) { return fig10_job(ctx); };
    add(std::move(desc));
  }
  {
    JobDesc desc;
    desc.name = "table3";
    desc.param_digest = base_digest(options, "table3-v1");
    desc.deps = {fit_a, fit_b};
    desc.fn = [](JobContext& ctx) { return table3_job(ctx); };
    add(std::move(desc));
  }

  // ---- §V circuit experiments --------------------------------------------
  const JobId fig11_dc = add([&] {
    JobDesc desc;
    desc.name = "fig11_dc";
    desc.param_digest = base_digest(options, "fig11-dc-v1");
    desc.deps = {fit_a};
    desc.fn = [](JobContext& ctx) { return fig11_dc_job(ctx); };
    return desc;
  }());
  {
    JobDesc desc;
    desc.name = "fig11_transient";
    Digest d;
    d.u64(base_digest(options, "fig11-transient-v1"));
    d.f64(options.transient_dt);
    d.i64(options.transient_periods);
    desc.param_digest = d.value();
    desc.deps = {fit_a, fig11_dc};
    desc.fn = [options](JobContext& ctx) {
      return fig11_transient_job(options, ctx);
    };
    add(std::move(desc));
  }
  const JobId fig12a = add([&] {
    JobDesc desc;
    desc.name = "fig12a";
    Digest d;
    d.u64(base_digest(options, "fig12a-v1"));
    d.i64(options.chain_max);
    desc.param_digest = d.value();
    desc.deps = {fit_a};
    desc.fn = [options](JobContext& ctx) { return fig12a_job(options, ctx); };
    return desc;
  }());
  {
    JobDesc desc;
    desc.name = "fig12b";
    Digest d;
    d.u64(base_digest(options, "fig12b-v1"));
    d.i64(options.chain_max);
    desc.param_digest = d.value();
    desc.deps = {fit_a, fig12a};
    desc.fn = [options](JobContext& ctx) { return fig12b_job(options, ctx); };
    add(std::move(desc));
  }
  {
    JobDesc desc;
    desc.name = "sweep_batch";
    Digest d;
    d.u64(base_digest(options, "sweep-batch-v1"));
    d.i64(options.mc_trials);
    d.i64(options.chain_max);
    // options.workers stays out of the digest: the batched engine is
    // bitwise-deterministic across thread counts.
    desc.param_digest = d.value();
    desc.deps = {fit_a};
    desc.fn = [options](JobContext& ctx) {
      return sweep_batch_job(options, ctx);
    };
    add(std::move(desc));
  }

  return pipeline;
}

std::vector<BenchCircuit> pipeline_bench_circuits(
    const PipelineOptions& options) {
  std::vector<BenchCircuit> benches;
  const lattice::Lattice lat = lattice::xor3_lattice_3x3();

  // Fig. 11 DC bench: the all-zero input code (the other codes differ only
  // in source values, not topology).
  {
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < 3; ++v) drives[v] = spice::Waveform::dc(0.0);
    benches.push_back(
        {"fig11_dc", bridge::build_lattice_circuit(lat, drives).circuit});
  }

  // Fig. 11 transient bench: the binary-weighted pulse walk.
  {
    const double period = 40e-9;
    std::map<int, spice::Waveform> drives;
    for (int v = 0; v < 3; ++v) {
      const double p = period * static_cast<double>(2 << v);
      drives[v] = spice::Waveform::pulse(0.0, 1.2, p / 2.0, 1e-9, 1e-9,
                                         p / 2.0 - 1e-9, p);
    }
    benches.push_back(
        {"fig11_transient", bridge::build_lattice_circuit(lat, drives).circuit});
  }

  // Fig. 12 chains: shortest and longest.
  benches.push_back(
      {"fig12_chain_1", bridge::build_switch_chain(1, 1.2, 1.2).circuit});
  {
    std::string name = "fig12_chain_";
    name += std::to_string(options.chain_max);
    benches.push_back({std::move(name),
                       bridge::build_switch_chain(options.chain_max, 1.2, 1.2)
                           .circuit});
  }
  return benches;
}

std::vector<JobId> resolve_targets(const PaperPipeline& pipeline,
                                   const std::vector<std::string>& names) {
  std::vector<JobId> targets;
  for (const std::string& name : names) {
    if (name == "all") return {};
    const JobId exact = pipeline.graph.find(name);
    if (exact >= 0) {
      targets.push_back(exact);
      continue;
    }
    bool matched = false;
    for (const JobId id : pipeline.all) {
      const std::string& job_name = pipeline.graph.job(id).name;
      if (job_name.rfind(name, 0) != 0) continue;
      // Group matches: "fig11" -> fig11_dc/fig11_transient (underscore
      // stage suffix) and "fig12" -> fig12a/fig12b (subfigure letter).
      const std::string rest = job_name.substr(name.size());
      if (rest[0] == '_' ||
          (rest.size() == 1 && std::isalpha(static_cast<unsigned char>(rest[0])))) {
        targets.push_back(id);
        matched = true;
      }
    }
    if (!matched) {
      throw Error("unknown job '" + name + "' (try --list)");
    }
  }
  return targets;
}

}  // namespace ftl::jobs
