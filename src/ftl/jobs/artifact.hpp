#pragma once
// The typed result a job produces and its dependents consume: one numeric
// table plus named scalars and string notes. An artifact has exactly one
// canonical serialization (CSV rows, doubles printed with %.17g so they
// round-trip bit-exactly), which makes "bit-identical" a meaningful property
// across serial/parallel runs and is what the content digest is taken over.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ftl::jobs {

struct Artifact {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;     ///< each row matches `columns`
  std::map<std::string, double> scalars;     ///< named figures of merit
  std::map<std::string, std::string> notes;  ///< small string metadata

  /// Sets the table header. Column names must be comma/newline-free.
  void set_columns(std::vector<std::string> names);

  /// Appends a row; throws ftl::Error when the width does not match.
  void add_row(std::vector<double> row);

  /// Named scalar; throws ftl::Error when absent.
  double scalar(const std::string& name) const;
  double scalar_or(const std::string& name, double fallback) const;

  /// Named note; throws ftl::Error when absent.
  const std::string& note(const std::string& name) const;

  /// One table column by name; throws ftl::Error when unknown.
  std::vector<double> column(const std::string& name) const;

  std::size_t row_count() const { return rows.size(); }

  /// Canonical byte representation (see file comment). Deterministic:
  /// scalars and notes serialize in sorted (std::map) order.
  std::string serialize() const;

  /// Inverse of serialize(); throws ftl::Error on malformed input.
  static Artifact deserialize(std::string_view text);

  /// FNV-1a digest of serialize() — the artifact's content address.
  std::uint64_t content_digest() const;

  bool operator==(const Artifact& other) const = default;
};

}  // namespace ftl::jobs
