#pragma once
// DAG execution over util::ThreadPool. Ready jobs fan out across the pool
// via submit(); each job runs once all its dependencies succeeded. Failure
// is isolated: a failed job cancels exactly its downstream cone, while
// independent branches keep running, and the resulting per-job statuses are
// deterministic (they depend only on the graph, never on thread timing).
// Artifacts are likewise bit-identical between serial and parallel runs.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ftl/jobs/graph.hpp"
#include "ftl/jobs/telemetry.hpp"

namespace ftl::jobs {

enum class JobStatus {
  kNotRun,     ///< outside the requested target closure
  kSucceeded,  ///< computed this run
  kCacheHit,   ///< loaded from the result cache
  kFailed,     ///< threw on every permitted attempt
  kCancelled,  ///< a (transitive) dependency failed
};

const char* to_string(JobStatus status);

struct JobReport {
  JobStatus status = JobStatus::kNotRun;
  int attempts = 0;
  double wall_ms = 0.0;
  std::uint64_t cache_key = 0;
  std::string error;  ///< failure text, or failed ancestor for kCancelled
  std::map<std::string, double> counters;
  std::shared_ptr<const Artifact> artifact;  ///< null unless succeeded/hit
};

struct RunOptions {
  /// Parallelism: 0 = use the global pool as-is, 1 = serial on the calling
  /// thread in ascending-id (topological) order, N > 1 = cap the fan-out.
  std::size_t jobs = 0;
  /// On-disk cache directory; empty disables the cache entirely.
  std::string cache_dir;
  /// When false, the cache is neither probed nor written (forced cold run).
  bool use_cache = true;
  /// Telemetry destination; may be null.
  EventSink* sink = nullptr;
  /// Jobs to run (plus their transitive dependencies); empty = all.
  std::vector<JobId> targets;
};

struct RunResult {
  std::vector<JobReport> reports;  ///< indexed by JobId
  int succeeded = 0;
  int cache_hits = 0;
  int failed = 0;
  int cancelled = 0;
  double wall_ms = 0.0;

  bool ok() const { return failed == 0 && cancelled == 0; }

  /// End-of-run summary: one row per scheduled job (status, wall time,
  /// attempts, counters), rendered with util::ConsoleTable.
  std::string summary_table(const JobGraph& graph) const;
};

/// Executes the graph (or the target closure) and returns per-job reports.
RunResult run_graph(const JobGraph& graph, const RunOptions& options = {});

}  // namespace ftl::jobs
