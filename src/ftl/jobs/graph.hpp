#pragma once
// Dependency-graph job declarations. A job names its inputs (dependency job
// ids), a parameter digest (everything that should invalidate its cached
// result besides its inputs), and a function from dependency artifacts to
// its own artifact. Jobs must be added dependencies-first, so a dependency
// id is always smaller than the id of any job that consumes it — ascending
// id order is a topological order by construction.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ftl/jobs/artifact.hpp"

namespace ftl::jobs {

using JobId = int;

/// Execution-time view a job function receives: its dependency artifacts
/// (in declaration order) plus a counter channel surfaced into telemetry.
class JobContext {
 public:
  const Artifact& input(std::size_t i) const;
  std::size_t input_count() const { return inputs_.size(); }

  /// 1-based attempt number (> 1 only on retries of transient jobs).
  int attempt() const { return attempt_; }

  /// Adds `value` to the named per-job counter (e.g. solver iterations);
  /// counters ride on the job_finish telemetry event and the summary.
  void counter(const std::string& name, double value);
  const std::map<std::string, double>& counters() const { return counters_; }

 private:
  friend class Scheduler;
  std::vector<std::shared_ptr<const Artifact>> inputs_;
  std::map<std::string, double> counters_;
  int attempt_ = 1;
};

struct JobDesc {
  std::string name;  ///< unique within a graph
  /// Digest of the job's parameter struct and any constants its output
  /// depends on (the paper pipeline folds the calibration digest in here).
  std::uint64_t param_digest = 0;
  std::vector<JobId> deps;
  std::function<Artifact(JobContext&)> fn;
  /// Transient jobs are retried on failure (up to `max_retries` extra
  /// attempts); non-transient jobs fail on the first exception.
  bool transient = false;
  int max_retries = 2;
  /// Non-cacheable jobs always recompute (e.g. report-only jobs).
  bool cacheable = true;
};

class JobGraph {
 public:
  /// Registers a job. Throws ftl::Error on an empty/duplicate name, a
  /// missing function, or a dependency id that has not been added yet.
  JobId add(JobDesc desc);

  std::size_t size() const { return jobs_.size(); }
  const JobDesc& job(JobId id) const;

  /// Job id by name; -1 when absent.
  JobId find(const std::string& name) const;

  /// Reverse adjacency: for each job, the jobs that depend on it.
  std::vector<std::vector<JobId>> reverse_edges() const;

  /// The given targets plus all their transitive dependencies, as a
  /// per-job inclusion mask. Empty `targets` selects every job.
  std::vector<char> closure(const std::vector<JobId>& targets) const;

 private:
  std::vector<JobDesc> jobs_;
  std::map<std::string, JobId> by_name_;
};

}  // namespace ftl::jobs
