#pragma once
// Structured run telemetry: the scheduler emits one Event per lifecycle
// transition (run/job start and finish, cache hit, retry, cancellation) and
// sinks render them. JsonlSink writes one JSON object per line — grep-able,
// tail-able, and trivially ingested by any log pipeline; CaptureSink keeps
// events in memory for tests and for the end-of-run summary.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ftl::jobs {

struct Event {
  std::string type;  ///< run_start, run_finish, job_start, job_finish,
                     ///< cache_hit, retry, job_cancelled
  std::string job;     ///< job name; empty for run_* events
  std::string detail;  ///< status ("succeeded"/"failed"), error text, or the
                       ///< name of the failed ancestor for job_cancelled
  int attempt = 0;     ///< 1-based attempt number (job_* and retry events)
  double t_ms = 0.0;   ///< milliseconds since run start
  double wall_ms = 0.0;        ///< job duration (finish/cache_hit events)
  std::uint64_t thread = 0;    ///< hashed std::thread::id of the executor
  std::string cache_key;       ///< hex cache key (job_finish/cache_hit)
  std::map<std::string, double> counters;  ///< per-job solver counters
};

/// Renders an event as a single-line JSON object (no trailing newline).
std::string to_json(const Event& event);

class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Must be safe to call from multiple scheduler threads.
  virtual void emit(const Event& event) = 0;
};

/// Appends JSON-lines to a file. Throws ftl::Error when the file cannot be
/// opened; emit() is internally locked.
class JsonlSink : public EventSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;
  void emit(const Event& event) override;

 private:
  struct Impl;
  Impl* impl_;
};

/// Collects events in memory (tests, summaries); internally locked.
class CaptureSink : public EventSink {
 public:
  void emit(const Event& event) override;
  std::vector<Event> events() const;
  int count(const std::string& type) const;

 private:
  mutable std::mutex m_;
  std::vector<Event> events_;
};

/// Broadcasts to several sinks (e.g. JSONL file + in-memory summary).
class TeeSink : public EventSink {
 public:
  void add(EventSink* sink);  ///< not owned; ignored when null
  void emit(const Event& event) override;

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace ftl::jobs
