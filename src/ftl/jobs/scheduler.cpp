#include "ftl/jobs/scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "ftl/jobs/cache.hpp"
#include "ftl/jobs/digest.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/table.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::jobs {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kNotRun: return "not-run";
    case JobStatus::kSucceeded: return "ok";
    case JobStatus::kCacheHit: return "cache-hit";
    case JobStatus::kFailed: return "FAILED";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

// Executes one graph run. Lifetime: one run() call; shared state is guarded
// by m_ (worker threads only touch it inside finish_job / the ready queue).
class Scheduler {
 public:
  Scheduler(const JobGraph& graph, const RunOptions& options)
      : graph_(graph), options_(options) {}

  RunResult run();

 private:
  void emit(Event event) {
    if (options_.sink == nullptr) return;
    event.t_ms = ms_between(start_, Clock::now());
    options_.sink->emit(event);
  }

  /// Runs one job end-to-end (cache probe, attempts, cache store) and
  /// records its terminal state. Called with all dependencies terminal-good.
  void run_job(JobId id);

  /// Under m_: records a terminal state, updates successor bookkeeping and
  /// cancels the downstream cone on failure.
  void finish_job(JobId id, JobStatus status);

  void run_serial();
  void run_parallel();
  void assign_cancellation_causes(RunResult& result);

  enum class NodeState : char {
    kUnscheduled, kPending, kSucceeded, kCacheHit, kFailed, kCancelled,
  };
  static bool terminal_good(NodeState s) {
    return s == NodeState::kSucceeded || s == NodeState::kCacheHit;
  }

  const JobGraph& graph_;
  const RunOptions& options_;
  std::optional<ResultCache> cache_;
  Clock::time_point start_;

  std::vector<NodeState> state_;
  std::vector<int> waiting_;  ///< unmet scheduled-dependency count
  std::vector<std::vector<JobId>> reverse_;
  std::vector<JobReport> reports_;
  std::vector<std::uint64_t> content_;  ///< artifact content digest per job

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<JobId> ready_;
  int outstanding_ = 0;  ///< scheduled jobs not yet terminal
  std::size_t in_flight_ = 0;
};

void Scheduler::run_job(JobId id) {
  const JobDesc& desc = graph_.job(id);
  JobReport& report = reports_[static_cast<std::size_t>(id)];
  const Clock::time_point job_start = Clock::now();

  // Dependency artifacts and the content-addressed cache key. Dependency
  // reports were finalized before this job became ready (and the handoff
  // went through m_), so reading them here is race-free.
  JobContext ctx;
  std::vector<std::uint64_t> dep_digests;
  dep_digests.reserve(desc.deps.size());
  for (const JobId dep : desc.deps) {
    ctx.inputs_.push_back(reports_[static_cast<std::size_t>(dep)].artifact);
    dep_digests.push_back(content_[static_cast<std::size_t>(dep)]);
  }
  const std::uint64_t key = cache_key(desc.name, desc.param_digest, dep_digests);
  report.cache_key = key;

  const bool cache_enabled = cache_.has_value() && options_.use_cache && desc.cacheable;
  if (cache_enabled) {
    if (std::optional<Artifact> hit = cache_->load(desc.name, key)) {
      report.artifact = std::make_shared<const Artifact>(*std::move(hit));
      content_[static_cast<std::size_t>(id)] = report.artifact->content_digest();
      report.wall_ms = ms_between(job_start, Clock::now());
      Event e;
      e.type = "cache_hit";
      e.job = desc.name;
      e.wall_ms = report.wall_ms;
      e.thread = this_thread_id();
      e.cache_key = digest_hex(key);
      emit(std::move(e));
      finish_job(id, JobStatus::kCacheHit);
      return;
    }
  }

  const int max_attempts = desc.transient ? 1 + std::max(0, desc.max_retries) : 1;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ctx.attempt_ = attempt;
    ++report.attempts;
    {
      Event e;
      e.type = "job_start";
      e.job = desc.name;
      e.attempt = attempt;
      e.thread = this_thread_id();
      emit(std::move(e));
    }
    try {
      Artifact artifact = desc.fn(ctx);
      report.artifact = std::make_shared<const Artifact>(std::move(artifact));
      content_[static_cast<std::size_t>(id)] = report.artifact->content_digest();
      report.counters = ctx.counters();
      report.wall_ms = ms_between(job_start, Clock::now());
      if (cache_enabled) {
        try {
          cache_->store(desc.name, key, *report.artifact);
        } catch (const Error&) {
          // A full/read-only cache disk must not fail the computation.
        }
      }
      Event e;
      e.type = "job_finish";
      e.job = desc.name;
      e.detail = "succeeded";
      e.attempt = attempt;
      e.wall_ms = report.wall_ms;
      e.thread = this_thread_id();
      e.cache_key = digest_hex(key);
      e.counters = report.counters;
      emit(std::move(e));
      finish_job(id, JobStatus::kSucceeded);
      return;
    } catch (const std::exception& ex) {
      report.error = ex.what();
    } catch (...) {
      report.error = "unknown exception";
    }
    if (attempt < max_attempts) {
      Event e;
      e.type = "retry";
      e.job = desc.name;
      e.detail = report.error;
      e.attempt = attempt;
      e.thread = this_thread_id();
      emit(std::move(e));
    }
  }

  report.counters = ctx.counters();
  report.wall_ms = ms_between(job_start, Clock::now());
  Event e;
  e.type = "job_finish";
  e.job = desc.name;
  e.detail = "failed: " + report.error;
  e.attempt = report.attempts;
  e.wall_ms = report.wall_ms;
  e.thread = this_thread_id();
  emit(std::move(e));
  finish_job(id, JobStatus::kFailed);
}

void Scheduler::finish_job(JobId id, JobStatus status) {
  std::lock_guard<std::mutex> lock(m_);
  NodeState& node = state_[static_cast<std::size_t>(id)];
  node = status == JobStatus::kSucceeded ? NodeState::kSucceeded
         : status == JobStatus::kCacheHit ? NodeState::kCacheHit
                                          : NodeState::kFailed;
  reports_[static_cast<std::size_t>(id)].status = status;
  --outstanding_;
  if (in_flight_ > 0) --in_flight_;

  if (terminal_good(node)) {
    for (const JobId next : reverse_[static_cast<std::size_t>(id)]) {
      if (state_[static_cast<std::size_t>(next)] != NodeState::kPending) continue;
      if (--waiting_[static_cast<std::size_t>(next)] == 0) {
        ready_.push_back(next);
      }
    }
  } else {
    // Failure isolation: cancel exactly the downstream cone. Every node in
    // it is still pending (none of them can have run without this job).
    std::vector<JobId> stack(reverse_[static_cast<std::size_t>(id)]);
    while (!stack.empty()) {
      const JobId down = stack.back();
      stack.pop_back();
      NodeState& ds = state_[static_cast<std::size_t>(down)];
      if (ds != NodeState::kPending) continue;
      ds = NodeState::kCancelled;
      reports_[static_cast<std::size_t>(down)].status = JobStatus::kCancelled;
      --outstanding_;
      for (const JobId next : reverse_[static_cast<std::size_t>(down)]) {
        stack.push_back(next);
      }
    }
  }
  cv_.notify_all();
}

void Scheduler::run_serial() {
  // Ascending id is a topological order (the graph enforces deps-first
  // insertion), so this is the canonical deterministic schedule.
  for (std::size_t id = 0; id < graph_.size(); ++id) {
    if (state_[id] != NodeState::kPending) continue;
    bool deps_good = true;
    for (const JobId dep : graph_.job(static_cast<JobId>(id)).deps) {
      deps_good = deps_good && terminal_good(state_[static_cast<std::size_t>(dep)]);
    }
    if (deps_good) run_job(static_cast<JobId>(id));
    // On failure, finish_job already cancelled the cone.
  }
}

void Scheduler::run_parallel() {
  util::ThreadPool& pool = util::ThreadPool::global();
  const std::size_t cap = options_.jobs;  // 0 = uncapped
  std::vector<std::future<void>> futures;
  std::unique_lock<std::mutex> lock(m_);
  for (std::size_t id = 0; id < graph_.size(); ++id) {
    if (state_[id] == NodeState::kPending && waiting_[id] == 0) {
      ready_.push_back(static_cast<JobId>(id));
    }
  }
  for (;;) {
    cv_.wait(lock, [&] {
      return outstanding_ == 0 ||
             (!ready_.empty() && (cap == 0 || in_flight_ < cap));
    });
    if (outstanding_ == 0) break;
    while (!ready_.empty() && (cap == 0 || in_flight_ < cap)) {
      const JobId id = ready_.front();
      ready_.pop_front();
      ++in_flight_;
      lock.unlock();
      // With no pool workers, submit runs the job inline right here; with
      // workers, the driver only enqueues and the pool does the running.
      futures.push_back(pool.submit([this, id] { run_job(id); }));
      lock.lock();
    }
  }
  lock.unlock();
  for (std::future<void>& f : futures) f.get();
}

void Scheduler::assign_cancellation_causes(RunResult& result) {
  // Deterministic attribution, independent of which failure raced first:
  // walk ids ascending (deps first) and blame the first bad dependency in
  // declaration order, propagating the original failed ancestor's name.
  for (std::size_t id = 0; id < graph_.size(); ++id) {
    JobReport& report = result.reports[id];
    if (report.status != JobStatus::kCancelled) continue;
    for (const JobId dep : graph_.job(static_cast<JobId>(id)).deps) {
      const JobReport& dep_report = result.reports[static_cast<std::size_t>(dep)];
      if (dep_report.status == JobStatus::kFailed) {
        report.error = graph_.job(dep).name;
        break;
      }
      if (dep_report.status == JobStatus::kCancelled) {
        report.error = dep_report.error;  // already the root ancestor
        break;
      }
    }
    Event e;
    e.type = "job_cancelled";
    e.job = graph_.job(static_cast<JobId>(id)).name;
    e.detail = report.error;
    emit(std::move(e));
  }
}

RunResult Scheduler::run() {
  start_ = Clock::now();
  if (!options_.cache_dir.empty() && options_.use_cache) {
    cache_.emplace(options_.cache_dir);
  }

  const std::vector<char> scheduled = graph_.closure(options_.targets);
  reverse_ = graph_.reverse_edges();
  state_.assign(graph_.size(), NodeState::kUnscheduled);
  waiting_.assign(graph_.size(), 0);
  reports_.assign(graph_.size(), JobReport{});
  content_.assign(graph_.size(), 0);
  outstanding_ = 0;
  for (std::size_t id = 0; id < graph_.size(); ++id) {
    if (!scheduled[id]) continue;
    state_[id] = NodeState::kPending;
    waiting_[id] = static_cast<int>(graph_.job(static_cast<JobId>(id)).deps.size());
    ++outstanding_;
  }

  {
    Event e;
    e.type = "run_start";
    e.detail = std::to_string(outstanding_) + " job(s)";
    emit(std::move(e));
  }

  if (options_.jobs == 1) {
    run_serial();
  } else {
    run_parallel();
  }

  RunResult result;
  result.reports = std::move(reports_);
  assign_cancellation_causes(result);
  for (const JobReport& report : result.reports) {
    switch (report.status) {
      case JobStatus::kSucceeded: ++result.succeeded; break;
      case JobStatus::kCacheHit: ++result.cache_hits; break;
      case JobStatus::kFailed: ++result.failed; break;
      case JobStatus::kCancelled: ++result.cancelled; break;
      case JobStatus::kNotRun: break;
    }
  }
  result.wall_ms = ms_between(start_, Clock::now());

  Event e;
  e.type = "run_finish";
  char detail[128];
  std::snprintf(detail, sizeof detail,
                "ok=%d cache_hits=%d failed=%d cancelled=%d",
                result.succeeded, result.cache_hits, result.failed,
                result.cancelled);
  e.detail = detail;
  e.wall_ms = result.wall_ms;
  emit(std::move(e));
  return result;
}

std::string RunResult::summary_table(const JobGraph& graph) const {
  util::ConsoleTable table(
      {"job", "status", "wall [ms]", "attempts", "counters"});
  for (std::size_t id = 0; id < reports.size(); ++id) {
    const JobReport& report = reports[id];
    if (report.status == JobStatus::kNotRun) continue;
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.1f", report.wall_ms);
    std::string counters;
    for (const auto& [name, value] : report.counters) {
      if (!counters.empty()) counters += ' ';
      char cell[64];
      std::snprintf(cell, sizeof cell, "%s=%g", name.c_str(), value);
      counters += cell;
    }
    if (report.status == JobStatus::kFailed && !report.error.empty()) {
      counters = report.error.substr(0, 48);
    }
    table.add_row({graph.job(static_cast<JobId>(id)).name,
                   to_string(report.status), wall,
                   std::to_string(report.attempts), counters});
  }
  return table.render();
}

RunResult run_graph(const JobGraph& graph, const RunOptions& options) {
  Scheduler scheduler(graph, options);
  return scheduler.run();
}

}  // namespace ftl::jobs
