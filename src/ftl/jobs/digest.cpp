#include "ftl/jobs/digest.hpp"

#include <cstring>

namespace ftl::jobs {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}

Digest& Digest::bytes(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h_ ^= p[i];
    h_ *= kFnvPrime;
  }
  return *this;
}

Digest& Digest::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

Digest& Digest::u64(std::uint64_t v) { return bytes(&v, sizeof v); }

Digest& Digest::i64(std::int64_t v) { return bytes(&v, sizeof v); }

Digest& Digest::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return u64(bits);
}

std::uint64_t fnv1a64(std::string_view s) {
  Digest d;
  d.bytes(s.data(), s.size());
  return d.value();
}

std::uint64_t mix64(std::uint64_t v) {
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ull;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebull;
  v ^= v >> 31;
  return v;
}

std::string digest_hex(std::uint64_t v) {
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace ftl::jobs
