#include "ftl/jobs/cache.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

#include "ftl/jobs/digest.hpp"
#include "ftl/util/csv.hpp"
#include "ftl/util/error.hpp"

namespace ftl::jobs {

namespace fs = std::filesystem;

std::uint64_t cache_key(const std::string& job_name, std::uint64_t param_digest,
                        const std::vector<std::uint64_t>& dep_digests) {
  Digest d;
  d.str("ftl-cache-v1");
  d.str(job_name);
  d.u64(param_digest);
  d.u64(dep_digests.size());
  for (const std::uint64_t dep : dep_digests) d.u64(dep);
  return d.value();
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw Error("cannot create cache directory: " + dir_);
  }
}

std::string ResultCache::path_for(const std::string& job_name,
                                  std::uint64_t key) const {
  return (fs::path(dir_) / (job_name + "." + digest_hex(key) + ".art"))
      .string();
}

std::optional<Artifact> ResultCache::load(const std::string& job_name,
                                          std::uint64_t key) const {
  const std::string path = path_for(job_name, key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  try {
    return Artifact::deserialize(util::read_text_file(path));
  } catch (const Error&) {
    return std::nullopt;  // corrupt entry: recompute and overwrite
  }
}

void ResultCache::store(const std::string& job_name, std::uint64_t key,
                        const Artifact& artifact) const {
  const std::string path = path_for(job_name, key);
  // Thread-unique temp name: two runs racing on the same entry each rename
  // their own complete file; last writer wins with identical bytes anyway.
  const std::string tmp =
      path + ".tmp" +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc | std::ios::binary);
    if (!out) throw Error("cannot write cache entry: " + tmp);
    out << artifact.serialize();
    if (!out.flush()) throw Error("cannot write cache entry: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("cannot publish cache entry: " + path);
  }
}

}  // namespace ftl::jobs
