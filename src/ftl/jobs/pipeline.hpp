#pragma once
// The paper's experiment DAG as a job graph. The real dependency structure
// of §III-§V, made explicit:
//
//   tcad_<shape>_<diel>  (6x, DSSS sweep set-ups) ──> fig5/fig6/fig7 metrics
//   fig8 (current-density crowding, 3 devices)        [independent branch]
//   tcad_fit_dsff / tcad_fit_sfdf (§IV sweep recipe)
//        └─> fit_type_a / fit_type_b (level-1 LM fit, Fig. 10 / Table III)
//              ├─> fig10 (data-vs-fit overlay)
//              ├─> table3 (fitted parameter table)
//              ├─> fig11_dc ──> fig11_transient (§V XOR3 bench)
//              └─> fig12a ──> fig12b (series-chain drive capability)
//
// Every job's parameter digest folds in the calibration-constant digest, so
// touching a physical knob invalidates exactly the simulation results that
// depend on it, while an untouched TCAD stage is served from cache.

#include <cstdint>
#include <string>
#include <vector>

#include "ftl/jobs/graph.hpp"
#include "ftl/spice/circuit.hpp"

namespace ftl::jobs {

struct PipelineOptions {
  int mesh = 48;          ///< TCAD mesh resolution (paper figures: 48)
  int sweep_points = 26;  ///< points per I-V sweep (paper figures: 26)
  int chain_max = 21;     ///< Fig. 12 longest series chain
  double transient_dt = 0.2e-9;  ///< Fig. 11 transient step, s
  int transient_periods = 8;     ///< Fig. 11 stimulus periods of 40 ns
  int mc_trials = 64;     ///< sweep_batch Monte-Carlo trials
  /// SPICE-stage thread cap (0 = hardware concurrency), forwarded to
  /// VariabilityOptions::max_threads by the sweep_batch job so CI runners
  /// can pin their fan-out. Results are identical for every setting, so
  /// this is deliberately NOT part of any cache digest.
  int workers = 0;
};

struct PaperPipeline {
  JobGraph graph;
  std::vector<JobId> all;  ///< every registered job id, insertion order
};

/// Digest over every tcad::calibration constant — part of each TCAD-derived
/// job's cache key, so editing a calibration value is a cache miss.
std::uint64_t calibration_digest();

/// Builds the Figs. 5-12 + Table III job graph.
PaperPipeline build_paper_pipeline(const PipelineOptions& options = {});

/// One §V bench circuit as the pipeline's SPICE-stage jobs construct it,
/// exposed so ftl_run --lint (and the tests) can run the ftl::check static
/// passes over exactly the topologies the experiments simulate.
struct BenchCircuit {
  std::string name;
  spice::Circuit circuit;
};

/// Builds the pipeline's generated bench circuits with the paper's default
/// switch model: the Fig. 11 XOR3 lattice bench (DC and transient drive
/// variants) and the shortest/longest Fig. 12 series chains.
std::vector<BenchCircuit> pipeline_bench_circuits(
    const PipelineOptions& options = {});

/// Resolves CLI target names against the pipeline: exact job name, or a
/// prefix group ("fig11" selects fig11_dc and fig11_transient, "all" selects
/// everything). Throws ftl::Error on an unknown name.
std::vector<JobId> resolve_targets(const PaperPipeline& pipeline,
                                   const std::vector<std::string>& names);

}  // namespace ftl::jobs
