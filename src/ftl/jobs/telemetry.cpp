#include "ftl/jobs/telemetry.hpp"

#include <cstdio>
#include <fstream>

#include "ftl/util/error.hpp"

namespace ftl::jobs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string to_json(const Event& event) {
  std::string out = "{\"ev\":";
  append_json_string(out, event.type);
  if (!event.job.empty()) {
    out += ",\"job\":";
    append_json_string(out, event.job);
  }
  if (!event.detail.empty()) {
    out += ",\"detail\":";
    append_json_string(out, event.detail);
  }
  if (event.attempt > 0) {
    out += ",\"attempt\":" + std::to_string(event.attempt);
  }
  out += ",\"t_ms\":";
  append_number(out, event.t_ms);
  if (event.wall_ms > 0.0) {
    out += ",\"wall_ms\":";
    append_number(out, event.wall_ms);
  }
  if (event.thread != 0) {
    out += ",\"thread\":" + std::to_string(event.thread);
  }
  if (!event.cache_key.empty()) {
    out += ",\"key\":";
    append_json_string(out, event.cache_key);
  }
  if (!event.counters.empty()) {
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : event.counters) {
      if (!first) out += ',';
      first = false;
      append_json_string(out, name);
      out += ':';
      append_number(out, value);
    }
    out += '}';
  }
  out += '}';
  return out;
}

struct JsonlSink::Impl {
  std::ofstream out;
  std::mutex m;
};

JsonlSink::JsonlSink(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw Error("cannot open telemetry file for writing: " + path);
  }
}

JsonlSink::~JsonlSink() { delete impl_; }

void JsonlSink::emit(const Event& event) {
  const std::string line = to_json(event);
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->out << line << '\n';
  impl_->out.flush();  // events must survive a crash mid-run
}

void CaptureSink::emit(const Event& event) {
  std::lock_guard<std::mutex> lock(m_);
  events_.push_back(event);
}

std::vector<Event> CaptureSink::events() const {
  std::lock_guard<std::mutex> lock(m_);
  return events_;
}

int CaptureSink::count(const std::string& type) const {
  std::lock_guard<std::mutex> lock(m_);
  int n = 0;
  for (const Event& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

void TeeSink::add(EventSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void TeeSink::emit(const Event& event) {
  for (EventSink* sink : sinks_) sink->emit(event);
}

}  // namespace ftl::jobs
