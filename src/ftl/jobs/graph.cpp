#include "ftl/jobs/graph.hpp"

#include "ftl/util/error.hpp"

namespace ftl::jobs {

const Artifact& JobContext::input(std::size_t i) const {
  if (i >= inputs_.size()) {
    throw Error("job context: input index " + std::to_string(i) +
                " out of range (" + std::to_string(inputs_.size()) +
                " dependencies)");
  }
  return *inputs_[i];
}

void JobContext::counter(const std::string& name, double value) {
  counters_[name] += value;
}

JobId JobGraph::add(JobDesc desc) {
  if (desc.name.empty()) throw Error("job graph: job name must not be empty");
  if (by_name_.count(desc.name) != 0) {
    throw Error("job graph: duplicate job name '" + desc.name + "'");
  }
  if (!desc.fn) throw Error("job graph: job '" + desc.name + "' has no function");
  const JobId id = static_cast<JobId>(jobs_.size());
  for (const JobId dep : desc.deps) {
    if (dep < 0 || dep >= id) {
      throw Error("job graph: job '" + desc.name +
                  "' depends on unknown job id " + std::to_string(dep) +
                  " (dependencies must be added first)");
    }
  }
  by_name_[desc.name] = id;
  jobs_.push_back(std::move(desc));
  return id;
}

const JobDesc& JobGraph::job(JobId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) {
    throw Error("job graph: unknown job id " + std::to_string(id));
  }
  return jobs_[static_cast<std::size_t>(id)];
}

JobId JobGraph::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

std::vector<std::vector<JobId>> JobGraph::reverse_edges() const {
  std::vector<std::vector<JobId>> out(jobs_.size());
  for (std::size_t id = 0; id < jobs_.size(); ++id) {
    for (const JobId dep : jobs_[id].deps) {
      out[static_cast<std::size_t>(dep)].push_back(static_cast<JobId>(id));
    }
  }
  return out;
}

std::vector<char> JobGraph::closure(const std::vector<JobId>& targets) const {
  std::vector<char> in(jobs_.size(), 0);
  if (targets.empty()) {
    for (char& f : in) f = 1;
    return in;
  }
  std::vector<JobId> stack;
  for (const JobId t : targets) {
    job(t);  // validates the id
    stack.push_back(t);
  }
  while (!stack.empty()) {
    const JobId id = stack.back();
    stack.pop_back();
    char& flag = in[static_cast<std::size_t>(id)];
    if (flag) continue;
    flag = 1;
    for (const JobId dep : jobs_[static_cast<std::size_t>(id)].deps) {
      stack.push_back(dep);
    }
  }
  return in;
}

}  // namespace ftl::jobs
