#pragma once
// Content-addressed on-disk result cache. A job's cache key is the FNV
// digest of its name, parameter digest (which the pipeline seeds with the
// calibration-constant digest) and the *content* digests of its dependency
// artifacts — so an upstream edit only invalidates a job when it actually
// changed the bytes that job consumes, and re-running the pipeline after
// touching only the SPICE stage skips every TCAD sweep.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ftl/jobs/artifact.hpp"

namespace ftl::jobs {

/// Cache key recipe (see DESIGN.md §9): format version, job name, the job's
/// parameter digest, and each dependency's artifact content digest in
/// declaration order.
std::uint64_t cache_key(const std::string& job_name, std::uint64_t param_digest,
                        const std::vector<std::uint64_t>& dep_digests);

class ResultCache {
 public:
  /// Creates `dir` (and parents) when missing; throws ftl::Error when the
  /// directory cannot be created.
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Cache file path for a (job, key) pair; the job name is in the filename
  /// purely for human browsability — the key alone addresses the entry.
  std::string path_for(const std::string& job_name, std::uint64_t key) const;

  /// Loads a cached artifact; disengaged on miss. A corrupt entry is
  /// treated as a miss (the job recomputes and overwrites it).
  std::optional<Artifact> load(const std::string& job_name,
                               std::uint64_t key) const;

  /// Stores an artifact atomically (temp file + rename), so a crashed or
  /// concurrent run never leaves a torn entry behind.
  void store(const std::string& job_name, std::uint64_t key,
             const Artifact& artifact) const;

 private:
  std::string dir_;
};

}  // namespace ftl::jobs
