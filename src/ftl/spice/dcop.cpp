#include "ftl/spice/dcop.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::spice {

OpResult newton_solve(Circuit& circuit, const linalg::Vector& initial,
                      EvalContext ctx, const NewtonOptions& options) {
  // Every analysis funnels through here, so one gate covers dcop, dcsweep
  // and transient; the hook runs once per topology and throws to abort.
  circuit.run_presolve_gate();
  const int n = circuit.prepare_unknowns();
  OpResult result;
  result.solution = initial.size() == static_cast<std::size_t>(n)
                        ? initial
                        : linalg::Vector(static_cast<std::size_t>(n), 0.0);
  result.gmin_used = ctx.gmin;

  const int node_count = circuit.node_count();
  // Step clamping is a nonlinear-convergence aid; a linear system's first
  // solve is already exact and must not be truncated.
  const bool nonlinear = circuit.has_nonlinear_devices();
  const bool clamp_steps = nonlinear;

  // The circuit-held pipeline keeps the assembly buffers, the cached MNA
  // sparsity pattern, and the factorization workspaces alive across
  // iterations AND across the sweep/transient steps that call back in here.
  MnaLinearSolver& solver = circuit.linear_solver();
  solver.prepare(n, options.matrix_mode);

  linalg::Vector next;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    ctx.solution = &result.solution;
    try {
      solver.solve_iteration(circuit, ctx, next);
    } catch (const ftl::Error& e) {
      throw ftl::Error(std::string("DC solve failed (") + e.what() +
                       "); check for floating nodes");
    }

    // Clamp the Newton step on node voltages to aid convergence.
    bool converged = true;
    for (int i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      double delta = next[ui] - result.solution[ui];
      if (clamp_steps && i < node_count) {
        delta = std::clamp(delta, -options.max_step, options.max_step);
      }
      const double updated = result.solution[ui] + delta;
      const double tol =
          options.abstol + options.reltol * std::max(std::fabs(updated),
                                                     std::fabs(result.solution[ui]));
      if (std::fabs(delta) > tol) converged = false;
      result.solution[ui] = updated;
    }
    // A linear system's first solve is exact: accept it at iter 0 instead
    // of burning a second assemble+factor+solve to "confirm" convergence.
    // Nonlinear systems still require one confirming iteration.
    if (converged && (iter > 0 || !nonlinear)) {
      result.converged = true;
      return result;
    }
    if (!nonlinear && iter == 0) {
      // Linear circuits land in one solve even when the update was large.
      result.converged = true;
      result.iterations = 1;
      return result;
    }
  }
  return result;
}

OpResult dc_operating_point(Circuit& circuit, const NewtonOptions& options) {
  EvalContext ctx;
  ctx.is_transient = false;
  ctx.gmin = options.gmin;

  // Plain Newton from a zero start; the shared rescue ladders otherwise.
  OpResult direct = newton_solve(circuit, {}, ctx, options);
  if (direct.converged) return direct;
  return detail::dcop_rescue(
      ctx, options,
      [&](const linalg::Vector& initial, const EvalContext& step_ctx) {
        return newton_solve(circuit, initial, step_ctx, options);
      });
}

}  // namespace ftl::spice
