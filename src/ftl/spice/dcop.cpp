#include "ftl/spice/dcop.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::spice {

OpResult newton_solve(Circuit& circuit, const linalg::Vector& initial,
                      EvalContext ctx, const NewtonOptions& options) {
  // Every analysis funnels through here, so one gate covers dcop, dcsweep
  // and transient; the hook runs once per topology and throws to abort.
  circuit.run_presolve_gate();
  const int n = circuit.prepare_unknowns();
  OpResult result;
  result.solution = initial.size() == static_cast<std::size_t>(n)
                        ? initial
                        : linalg::Vector(static_cast<std::size_t>(n), 0.0);
  result.gmin_used = ctx.gmin;

  const int node_count = circuit.node_count();
  // Step clamping is a nonlinear-convergence aid; a linear system's first
  // solve is already exact and must not be truncated.
  const bool nonlinear = circuit.has_nonlinear_devices();
  const bool clamp_steps = nonlinear;

  // The circuit-held pipeline keeps the assembly buffers, the cached MNA
  // sparsity pattern, and the factorization workspaces alive across
  // iterations AND across the sweep/transient steps that call back in here.
  MnaLinearSolver& solver = circuit.linear_solver();
  solver.prepare(n, options.matrix_mode);

  linalg::Vector next;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    ctx.solution = &result.solution;
    try {
      solver.solve_iteration(circuit, ctx, next);
    } catch (const ftl::Error& e) {
      throw ftl::Error(std::string("DC solve failed (") + e.what() +
                       "); check for floating nodes");
    }

    // Clamp the Newton step on node voltages to aid convergence.
    bool converged = true;
    for (int i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      double delta = next[ui] - result.solution[ui];
      if (clamp_steps && i < node_count) {
        delta = std::clamp(delta, -options.max_step, options.max_step);
      }
      const double updated = result.solution[ui] + delta;
      const double tol =
          options.abstol + options.reltol * std::max(std::fabs(updated),
                                                     std::fabs(result.solution[ui]));
      if (std::fabs(delta) > tol) converged = false;
      result.solution[ui] = updated;
    }
    // A linear system's first solve is exact: accept it at iter 0 instead
    // of burning a second assemble+factor+solve to "confirm" convergence.
    // Nonlinear systems still require one confirming iteration.
    if (converged && (iter > 0 || !nonlinear)) {
      result.converged = true;
      return result;
    }
    if (!nonlinear && iter == 0) {
      // Linear circuits land in one solve even when the update was large.
      result.converged = true;
      result.iterations = 1;
      return result;
    }
  }
  return result;
}

OpResult dc_operating_point(Circuit& circuit, const NewtonOptions& options) {
  EvalContext ctx;
  ctx.is_transient = false;
  ctx.gmin = options.gmin;

  // Plain Newton from a zero start.
  OpResult direct = newton_solve(circuit, {}, ctx, options);
  if (direct.converged) return direct;

  // gmin stepping: solve an easier (leakier) circuit, then tighten.
  linalg::Vector guess;
  bool have_guess = false;
  for (double gmin = 1e-2; gmin >= options.gmin; gmin /= 10.0) {
    EvalContext step_ctx = ctx;
    step_ctx.gmin = gmin;
    OpResult r = newton_solve(circuit, have_guess ? guess : linalg::Vector{},
                              step_ctx, options);
    if (!r.converged) break;
    guess = r.solution;
    have_guess = true;
    if (gmin <= options.gmin * 10.0) {
      EvalContext final_ctx = ctx;
      OpResult final = newton_solve(circuit, guess, final_ctx, options);
      if (final.converged) return final;
      break;
    }
  }

  // Source stepping from whatever the gmin ladder produced, with an
  // adaptive step: a failed rung halves the increment and retries from the
  // last good solution.
  double scale = 0.0;
  double step = 0.1;
  while (scale < 1.0) {
    const double attempt_scale = std::min(scale + step, 1.0);
    EvalContext step_ctx = ctx;
    step_ctx.source_scale = attempt_scale;
    OpResult r = newton_solve(circuit, have_guess ? guess : linalg::Vector{},
                              step_ctx, options);
    if (r.converged) {
      scale = attempt_scale;
      guess = r.solution;
      have_guess = true;
      step = std::min(step * 2.0, 0.25);
      if (scale >= 1.0) return r;
    } else {
      step /= 2.0;
      if (step < 1e-4) {
        throw ftl::Error(
            "DC operating point: source stepping stalled at scale " +
            std::to_string(scale));
      }
    }
  }
  throw ftl::Error("DC operating point: convergence failed");
}

}  // namespace ftl::spice
