#pragma once
// Level-3 NMOS device for the circuit simulator — the §VI-A "more accurate
// model" extension. Same grounded-body conventions as the level-1 Mosfet.

#include "ftl/fit/mosfet_level3.hpp"
#include "ftl/spice/circuit.hpp"

namespace ftl::spice {

class Mosfet3 : public Device {
 public:
  Mosfet3(std::string name, int drain, int gate, int source, int bulk,
          fit::Level3Params params);

  void stamp(Stamper& stamper, const EvalContext& ctx) const override;
  bool is_nonlinear() const override { return true; }
  DeviceView view() const override;

  const fit::Level3Params& params() const { return params_; }

  /// Drain current at a given solution (positive into the drain).
  double drain_current(const linalg::Vector& solution) const;

 private:
  int drain_;
  int gate_;
  int source_;
  int bulk_;  // accepted, unused (grounded-body model)
  fit::Level3Params params_;
};

}  // namespace ftl::spice
