#include "ftl/spice/measure.hpp"

#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::spice {
namespace {

std::optional<double> crossing_after(const linalg::Vector& time,
                                     const linalg::Vector& value, double level,
                                     bool rising, double after) {
  for (std::size_t i = 1; i < time.size(); ++i) {
    if (time[i] <= after) continue;
    const double a = value[i - 1];
    const double b = value[i];
    const bool crosses = rising ? (a < level && b >= level)
                                : (a > level && b <= level);
    if (!crosses) continue;
    const double f = (level - a) / (b - a);
    const double t = time[i - 1] + f * (time[i] - time[i - 1]);
    if (t > after) return t;
  }
  return std::nullopt;
}

}  // namespace

std::optional<double> rise_time(const linalg::Vector& time,
                                const linalg::Vector& value, double v_low,
                                double v_high, double after) {
  FTL_EXPECTS(time.size() == value.size() && v_high > v_low);
  const double swing = v_high - v_low;
  const auto t10 = crossing_after(time, value, v_low + 0.1 * swing, true, after);
  if (!t10) return std::nullopt;
  const auto t90 = crossing_after(time, value, v_low + 0.9 * swing, true, *t10);
  if (!t90) return std::nullopt;
  return *t90 - *t10;
}

std::optional<double> fall_time(const linalg::Vector& time,
                                const linalg::Vector& value, double v_low,
                                double v_high, double after) {
  FTL_EXPECTS(time.size() == value.size() && v_high > v_low);
  const double swing = v_high - v_low;
  const auto t90 = crossing_after(time, value, v_low + 0.9 * swing, false, after);
  if (!t90) return std::nullopt;
  const auto t10 = crossing_after(time, value, v_low + 0.1 * swing, false, *t90);
  if (!t10) return std::nullopt;
  return *t10 - *t90;
}

double settled_value(const linalg::Vector& time, const linalg::Vector& value,
                     double t0, double t1) {
  FTL_EXPECTS(time.size() == value.size() && time.size() >= 2 && t1 > t0);
  double area = 0.0;
  double span = 0.0;
  for (std::size_t i = 1; i < time.size(); ++i) {
    const double a = std::max(time[i - 1], t0);
    const double b = std::min(time[i], t1);
    if (b <= a) continue;
    const double dt_seg = time[i] - time[i - 1];
    const auto interp = [&](double t) {
      const double f = dt_seg > 0.0 ? (t - time[i - 1]) / dt_seg : 0.0;
      return value[i - 1] + f * (value[i] - value[i - 1]);
    };
    area += 0.5 * (interp(a) + interp(b)) * (b - a);
    span += b - a;
  }
  FTL_EXPECTS_MSG(span > 0.0, "settled_value window outside waveform");
  return area / span;
}

std::optional<double> crossing_time(const linalg::Vector& time,
                                    const linalg::Vector& value, double level,
                                    bool rising, double after) {
  FTL_EXPECTS(time.size() == value.size());
  return crossing_after(time, value, level, rising, after);
}

}  // namespace ftl::spice
