#pragma once
// Waveform measurements used by the §V experiments: 10-90% rise and fall
// times, settled levels, and threshold-crossing instants.

#include <optional>

#include "ftl/linalg/matrix.hpp"

namespace ftl::spice {

/// 10%-90% rise time of the first low-to-high transition after `after`,
/// between the given levels. Returns nullopt when no full transition exists.
std::optional<double> rise_time(const linalg::Vector& time,
                                const linalg::Vector& value, double v_low,
                                double v_high, double after = 0.0);

/// 90%-10% fall time of the first high-to-low transition after `after`.
std::optional<double> fall_time(const linalg::Vector& time,
                                const linalg::Vector& value, double v_low,
                                double v_high, double after = 0.0);

/// Mean value over the window [t0, t1] (trapezoidal average).
double settled_value(const linalg::Vector& time, const linalg::Vector& value,
                     double t0, double t1);

/// First instant after `after` at which the signal crosses `level` in the
/// requested direction.
std::optional<double> crossing_time(const linalg::Vector& time,
                                    const linalg::Vector& value, double level,
                                    bool rising, double after = 0.0);

}  // namespace ftl::spice
