#pragma once
// SPICE-like netlist text parser for flat decks, so examples and tests can
// describe circuits the way the paper's authors would have:
//
//   * four-terminal switch demo
//   VDD vdd 0 1.2
//   RPU vdd out 500k
//   CL  out 0 10f
//   M1  out g 0 0 FTSW W=0.7u L=0.35u
//   VIN g 0 PULSE(0 1.2 10n 1n 1n 40n 100n)
//   .model FTSW NMOS (KP=30u VTO=0.35 LAMBDA=0.02)
//   .tran 0.1n 100n
//   .end
//
// Supported cards: R, C, V, I, M elements; .model <name> NMOS (...);
// .tran <dt> <tstop>; .dc <source> <start> <stop> <step>; .end; comments
// (*, ;), and + continuation lines. Engineering suffixes everywhere.

#include <optional>
#include <string>
#include <unordered_map>

#include "ftl/spice/circuit.hpp"
#include "ftl/spice/transient.hpp"
#include "ftl/util/source_loc.hpp"

namespace ftl::spice {

struct DcDirective {
  std::string source;
  double start = 0.0;
  double stop = 0.0;
  double step = 0.0;
};

struct ParsedNetlist {
  Circuit circuit;
  std::string title;
  std::optional<TransientOptions> tran;  ///< from .tran (dt, tstop)
  std::optional<DcDirective> dc;         ///< from .dc
  /// Source location of each element card, keyed by device name exactly as
  /// written in the deck (continuation cards keep the first line). The
  /// ftl::check diagnostics use these to point reports at deck lines.
  std::unordered_map<std::string, util::SourceLoc> device_locations;
};

/// Parses a netlist. Throws ftl::Error with a line/column reference on any
/// malformed card, including node names that differ only in letter case
/// from an earlier spelling ("Out" after "out"), which older versions
/// silently accepted as two distinct nodes.
ParsedNetlist parse_netlist(const std::string& text);

}  // namespace ftl::spice
