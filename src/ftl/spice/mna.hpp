#pragma once
// Modified nodal analysis plumbing: the stamp interface every device writes
// through, and the evaluation context handed to devices at each Newton
// iteration. Node index -1 is ground; branch unknowns (voltage-source
// currents) live after the node unknowns.

#include "ftl/linalg/matrix.hpp"

namespace ftl::spice {

/// Integration method for reactive companion models.
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// State handed to Device::stamp at one Newton iteration.
struct EvalContext {
  /// Current iterate: node voltages then branch currents.
  const linalg::Vector* solution = nullptr;
  double time = 0.0;       ///< transient time of the step being solved
  double dt = 0.0;         ///< step size (0 during DC analyses)
  bool is_transient = false;
  Integrator integrator = Integrator::kTrapezoidal;
  double gmin = 1e-12;     ///< conductance to ground at nonlinear terminals
  double source_scale = 1.0;  ///< source-stepping homotopy factor

  /// Voltage of a node (ground reads 0).
  double voltage(int node) const {
    return node < 0 ? 0.0 : (*solution)[static_cast<std::size_t>(node)];
  }
};

/// Ground-aware writer into the MNA matrix A and right-hand side z of
/// A x = z.
class Stamper {
 public:
  Stamper(linalg::Matrix& a, linalg::Vector& z) : a_(a), z_(z) {}

  /// Conductance g between nodes a and b (either may be ground).
  void conductance(int a, int b, double g);

  /// Current `i` injected INTO node (from the device).
  void current_into(int node, double i);

  /// Raw matrix entry; both indices must be non-ground unknowns.
  void entry(int row, int col, double value);

  /// Raw RHS entry.
  void rhs(int row, double value);

 private:
  linalg::Matrix& a_;
  linalg::Vector& z_;
};

}  // namespace ftl::spice
