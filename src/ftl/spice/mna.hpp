#pragma once
// Modified nodal analysis plumbing: the stamp interface every device writes
// through, the evaluation context handed to devices at each Newton
// iteration, and the assembly backends the stamps land in (dense matrix or
// pattern-cached sparse CSR). Node index -1 is ground; branch unknowns
// (voltage-source currents) live after the node unknowns.

#include <cstddef>
#include <vector>

#include "ftl/linalg/matrix.hpp"
#include "ftl/linalg/sparse.hpp"

namespace ftl::spice {

/// Integration method for reactive companion models.
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// State handed to Device::stamp at one Newton iteration.
struct EvalContext {
  /// Current iterate: node voltages then branch currents.
  const linalg::Vector* solution = nullptr;
  double time = 0.0;       ///< transient time of the step being solved
  double dt = 0.0;         ///< step size (0 during DC analyses)
  bool is_transient = false;
  Integrator integrator = Integrator::kTrapezoidal;
  double gmin = 1e-12;     ///< conductance to ground at nonlinear terminals
  double source_scale = 1.0;  ///< source-stepping homotopy factor

  /// Voltage of a node (ground reads 0).
  double voltage(int node) const {
    return node < 0 ? 0.0 : (*solution)[static_cast<std::size_t>(node)];
  }
};

/// Destination of device stamps for one assembly pass: matrix entries of A
/// and RHS entries of z in A x = z. Indices are non-ground unknowns.
class MnaAssembly {
 public:
  virtual ~MnaAssembly() = default;
  virtual void add(std::size_t row, std::size_t col, double value) = 0;
  virtual void add_rhs(std::size_t row, double value) = 0;
};

/// Dense backend: the classic n x n matrix, reused across iterations.
class DenseAssembly final : public MnaAssembly {
 public:
  /// Sizes (first call) or zeroes (later calls) the reused buffers.
  void reset(std::size_t n);

  /// Non-virtual fast path used by Stamper's typed constructor.
  void add_fast(std::size_t row, std::size_t col, double value) {
    a_(row, col) += value;
  }
  void add_rhs_fast(std::size_t row, double value) { z_[row] += value; }

  void add(std::size_t row, std::size_t col, double value) override {
    add_fast(row, col, value);
  }
  void add_rhs(std::size_t row, double value) override {
    add_rhs_fast(row, value);
  }

  const linalg::Matrix& matrix() const { return a_; }
  const linalg::Vector& rhs() const { return z_; }

 private:
  linalg::Matrix a_;
  linalg::Vector z_;
};

/// Sparse backend with pattern caching. The first assembly records every
/// stamped position (structural zeros included) and freezes a CSR pattern;
/// later assemblies rewrite values in place with zero allocation. A stamp
/// landing outside the cached pattern is absorbed into a pending list and
/// merged at finalize(), which reports the pattern change so downstream
/// symbolic reuse (SparseLu) can reset.
class SparseAssembly final : public MnaAssembly {
 public:
  /// Starts an assembly pass for an n-unknown system. Changing n drops the
  /// cached pattern.
  void reset(std::size_t n);

  /// Non-virtual fast path. Device stamps replay in (nearly) the same order
  /// every pass, so the previous pass's (row, col) -> slot sequence is a
  /// memoized search: one position compare in the common case. A mismatch
  /// (e.g. a MOSFET's voltage-dependent drain/source stamp-order swap)
  /// falls back to binary search and self-heals the recorded sequence —
  /// the cache is only ever a hint, never a correctness dependency.
  void add_fast(std::size_t row, std::size_t col, double value) {
    if (seq_cursor_ < seq_.size()) {
      const SeqEntry& e = seq_[seq_cursor_];
      if (e.row == row && e.col == col) {
        values_[e.slot] += value;
        ++seq_cursor_;
        return;
      }
    }
    add_slow(row, col, value);
  }
  void add_rhs_fast(std::size_t row, double value) { z_[row] += value; }

  void add(std::size_t row, std::size_t col, double value) override {
    add_fast(row, col, value);
  }
  void add_rhs(std::size_t row, double value) override {
    add_rhs_fast(row, value);
  }

  /// Ends the pass, merging any out-of-pattern stamps. Returns true when
  /// the sparsity pattern changed (first pass or new positions).
  bool finalize();

  std::size_t size() const { return n_; }
  linalg::CsrView matrix() const;
  const linalg::Vector& rhs() const { return z_; }

 private:
  void add_slow(std::size_t row, std::size_t col, double value);

  std::size_t n_ = 0;
  bool has_pattern_ = false;
  std::vector<std::size_t> row_start_;
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
  linalg::Vector z_;
  /// First pass: every stamp. Cached passes: pattern misses only.
  std::vector<linalg::TripletList::Entry> pending_;
  /// Memoized add sequence of the previous pass (see add_fast).
  struct SeqEntry {
    std::size_t row, col, slot;
  };
  std::vector<SeqEntry> seq_;
  std::size_t seq_cursor_ = 0;
};

/// Ground-aware writer used by Device::stamp; forwards to the assembly
/// backend after dropping ground rows/columns. The typed constructors
/// bypass the virtual MnaAssembly dispatch — stamps are the hot inner loop
/// of every Newton iteration, and a predictable branch beats an indirect
/// call there. The MnaAssembly& constructor remains for tests and custom
/// sinks.
class Stamper {
 public:
  explicit Stamper(MnaAssembly& assembly) : generic_(&assembly) {}
  explicit Stamper(DenseAssembly& dense) : dense_(&dense) {}
  explicit Stamper(SparseAssembly& sparse) : sparse_(&sparse) {}

  /// Conductance g between nodes a and b (either may be ground).
  void conductance(int a, int b, double g) {
    if (a >= 0) add(static_cast<std::size_t>(a), static_cast<std::size_t>(a), g);
    if (b >= 0) add(static_cast<std::size_t>(b), static_cast<std::size_t>(b), g);
    if (a >= 0 && b >= 0) {
      add(static_cast<std::size_t>(a), static_cast<std::size_t>(b), -g);
      add(static_cast<std::size_t>(b), static_cast<std::size_t>(a), -g);
    }
  }

  /// Current `i` injected INTO node (from the device).
  void current_into(int node, double i) {
    if (node >= 0) add_rhs(static_cast<std::size_t>(node), i);
  }

  /// Raw matrix entry; both indices must be non-ground unknowns.
  void entry(int row, int col, double value);

  /// Raw RHS entry.
  void rhs(int row, double value);

 private:
  void add(std::size_t row, std::size_t col, double value) {
    if (dense_ != nullptr) {
      dense_->add_fast(row, col, value);
    } else if (sparse_ != nullptr) {
      sparse_->add_fast(row, col, value);
    } else {
      generic_->add(row, col, value);
    }
  }
  void add_rhs(std::size_t row, double value) {
    if (dense_ != nullptr) {
      dense_->add_rhs_fast(row, value);
    } else if (sparse_ != nullptr) {
      sparse_->add_rhs_fast(row, value);
    } else {
      generic_->add_rhs(row, value);
    }
  }

  DenseAssembly* dense_ = nullptr;
  SparseAssembly* sparse_ = nullptr;
  MnaAssembly* generic_ = nullptr;
};

}  // namespace ftl::spice
