#pragma once
// Transient analysis: DC operating point for the initial condition, then
// fixed-step integration (trapezoidal by default, backward Euler available)
// with a Newton solve per step and automatic step halving when Newton fails.

#include <string>
#include <vector>

#include "ftl/spice/dcop.hpp"
#include "ftl/spice/waveform.hpp"

namespace ftl::spice {

struct TransientOptions {
  double tstop = 0.0;   ///< end time, s (required, > 0)
  double dt = 0.0;      ///< nominal step, s (required, > 0)
  Integrator integrator = Integrator::kTrapezoidal;
  NewtonOptions newton;
  int max_step_halvings = 12;  ///< rescue budget per step
  /// Node names to record; empty = every node. Source branch currents are
  /// recorded as "I(<source name>)" for the names listed here.
  std::vector<std::string> record_nodes;
  std::vector<std::string> record_source_currents;
};

/// Runs a transient; throws ftl::Error when a step cannot be completed.
TransientResult transient(Circuit& circuit, const TransientOptions& options);

}  // namespace ftl::spice
