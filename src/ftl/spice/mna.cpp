#include "ftl/spice/mna.hpp"

#include <algorithm>

#include "ftl/util/error.hpp"

namespace ftl::spice {

void DenseAssembly::reset(std::size_t n) {
  if (a_.rows() != n || a_.cols() != n) {
    a_.assign(n, n);
    z_.assign(n, 0.0);
  } else {
    a_.fill(0.0);
    std::fill(z_.begin(), z_.end(), 0.0);
  }
}

void SparseAssembly::reset(std::size_t n) {
  if (n != n_) {
    n_ = n;
    has_pattern_ = false;
    row_start_.clear();
    col_index_.clear();
    values_.clear();
    seq_.clear();
    z_.assign(n, 0.0);
  } else {
    std::fill(values_.begin(), values_.end(), 0.0);
    std::fill(z_.begin(), z_.end(), 0.0);
  }
  seq_cursor_ = 0;
  pending_.clear();
}

void SparseAssembly::add_slow(std::size_t row, std::size_t col, double value) {
  FTL_EXPECTS(row < n_ && col < n_);
  if (has_pattern_) {
    // Binary search inside the row's (sorted) column segment; MNA rows hold
    // only a handful of entries, so this is a couple of comparisons.
    const std::size_t* first = col_index_.data() + row_start_[row];
    const std::size_t* last = col_index_.data() + row_start_[row + 1];
    const std::size_t* it = std::lower_bound(first, last, col);
    if (it != last && *it == col) {
      const std::size_t slot = static_cast<std::size_t>(it - col_index_.data());
      values_[slot] += value;
      // Re-record the sequence from this point on; the rest of the pass
      // keeps correcting entries so the NEXT pass replays on the fast path.
      if (seq_cursor_ < seq_.size()) {
        seq_[seq_cursor_] = {row, col, slot};
      } else {
        seq_.push_back({row, col, slot});
      }
      ++seq_cursor_;
      return;
    }
  }
  pending_.push_back({row, col, value});
}

bool SparseAssembly::finalize() {
  if (has_pattern_ && pending_.empty()) return false;

  // Merge the cached pattern's current values with the pending stamps and
  // rebuild the CSR arrays (positions deduplicated, structural zeros kept).
  linalg::TripletList triplets(n_, n_);
  if (has_pattern_) {
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
        triplets.add(r, col_index_[k], values_[k]);
      }
    }
  }
  for (const auto& e : pending_) triplets.add(e.row, e.col, e.value);
  pending_.clear();

  const linalg::SparseMatrix merged(triplets,
                                    linalg::SparseMatrix::ZeroPolicy::kKeep);
  row_start_ = merged.row_start();
  col_index_ = merged.col_index();
  values_ = merged.values();
  has_pattern_ = true;
  seq_.clear();  // slots moved: the memoized add sequence is stale
  seq_cursor_ = 0;
  return true;
}

linalg::CsrView SparseAssembly::matrix() const {
  FTL_EXPECTS(has_pattern_);
  linalg::CsrView v;
  v.n = n_;
  v.row_start = row_start_.data();
  v.col_index = col_index_.data();
  v.values = values_.data();
  return v;
}

void Stamper::entry(int row, int col, double value) {
  FTL_EXPECTS(row >= 0 && col >= 0);
  add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), value);
}

void Stamper::rhs(int row, double value) {
  FTL_EXPECTS(row >= 0);
  add_rhs(static_cast<std::size_t>(row), value);
}

}  // namespace ftl::spice
