#include "ftl/spice/mna.hpp"

#include "ftl/util/error.hpp"

namespace ftl::spice {

void Stamper::conductance(int a, int b, double g) {
  if (a >= 0) a_(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) += g;
  if (b >= 0) a_(static_cast<std::size_t>(b), static_cast<std::size_t>(b)) += g;
  if (a >= 0 && b >= 0) {
    a_(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) -= g;
    a_(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) -= g;
  }
}

void Stamper::current_into(int node, double i) {
  if (node >= 0) z_[static_cast<std::size_t>(node)] += i;
}

void Stamper::entry(int row, int col, double value) {
  FTL_EXPECTS(row >= 0 && col >= 0);
  a_(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += value;
}

void Stamper::rhs(int row, double value) {
  FTL_EXPECTS(row >= 0);
  z_[static_cast<std::size_t>(row)] += value;
}

}  // namespace ftl::spice
