#include "ftl/spice/circuit.hpp"

#include "ftl/spice/linear_solver.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"

namespace ftl::spice {
namespace {

bool is_ground_name(const std::string& name) {
  return name == "0" || util::iequals(name, "gnd");
}

}  // namespace

Circuit::Circuit() : linear_solver_(std::make_unique<MnaLinearSolver>()) {}

Circuit::~Circuit() = default;

Circuit::Circuit(Circuit&&) noexcept = default;
Circuit& Circuit::operator=(Circuit&&) noexcept = default;

MnaLinearSolver& Circuit::linear_solver() {
  // Re-created lazily so a moved-from circuit stays usable.
  if (!linear_solver_) linear_solver_ = std::make_unique<MnaLinearSolver>();
  return *linear_solver_;
}

int Circuit::node(const std::string& name) {
  if (is_ground_name(name)) return kGround;
  const auto it = node_index_.find(name);
  if (it != node_index_.end()) return it->second;
  const int index = static_cast<int>(node_names_.size());
  node_index_.emplace(name, index);
  node_names_.push_back(name);
  return index;
}

int Circuit::find_node(const std::string& name) const {
  if (is_ground_name(name)) return kGround;
  const auto it = node_index_.find(name);
  if (it == node_index_.end()) throw ftl::Error("unknown node: " + name);
  return it->second;
}

const std::string& Circuit::node_name(int index) const {
  static const std::string ground = "0";
  if (index == kGround) return ground;
  FTL_EXPECTS(index >= 0 && index < node_count());
  return node_names_[static_cast<std::size_t>(index)];
}

Device& Circuit::add(std::unique_ptr<Device> device) {
  FTL_EXPECTS(device != nullptr);
  if (has_device(device->name())) {
    throw ftl::Error("duplicate device name: " + device->name());
  }
  devices_.push_back(std::move(device));
  if (linear_solver_) linear_solver_->invalidate();  // MNA structure changed
  presolve_checked_ = false;                         // topology changed
  return *devices_.back();
}

void Circuit::set_presolve_hook(PresolveHook hook) {
  presolve_hook_ = std::move(hook);
  presolve_checked_ = false;
}

void Circuit::run_presolve_gate() {
  if (presolve_checked_ || !presolve_hook_) return;
  presolve_hook_(*this);
  presolve_checked_ = true;  // only after a clean pass; a throw re-checks
}

Device& Circuit::device(const std::string& name) const {
  for (const auto& d : devices_) {
    if (d->name() == name) return *d;
  }
  throw ftl::Error("unknown device: " + name);
}

bool Circuit::has_device(const std::string& name) const {
  for (const auto& d : devices_) {
    if (d->name() == name) return true;
  }
  return false;
}

int Circuit::prepare_unknowns() {
  int next = node_count();
  for (const auto& d : devices_) {
    if (d->branch_count() > 0) {
      d->set_branch_offset(next);
      next += d->branch_count();
    }
  }
  return next;
}

bool Circuit::has_nonlinear_devices() const {
  for (const auto& d : devices_) {
    if (d->is_nonlinear()) return true;
  }
  return false;
}

}  // namespace ftl::spice
