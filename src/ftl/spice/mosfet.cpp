#include "ftl/spice/mosfet.hpp"

#include <algorithm>

#include "ftl/util/error.hpp"

namespace ftl::spice {

Mosfet::Mosfet(std::string name, int drain, int gate, int source, int bulk,
               fit::Level1Params params)
    : Device(std::move(name)), drain_(drain), gate_(gate), source_(source),
      bulk_(bulk), params_(params) {
  FTL_EXPECTS(params.width > 0.0 && params.length > 0.0);
  (void)bulk_;
}

void Mosfet::set_params(const fit::Level1Params& params) {
  FTL_EXPECTS(params.width > 0.0 && params.length > 0.0);
  params_ = params;
}

void Mosfet::stamp(Stamper& stamper, const EvalContext& ctx) const {
  double vd = ctx.voltage(drain_);
  double vg = ctx.voltage(gate_);
  double vs = ctx.voltage(source_);

  // The level-1 channel is symmetric: operate on the terminal pair with the
  // internal drain being the higher-potential side.
  int d = drain_;
  int s = source_;
  if (vd < vs) {
    std::swap(vd, vs);
    std::swap(d, s);
  }
  const fit::Level1Derivatives lin =
      fit::level1_derivatives(params_, vg - vs, vd - vs);

  // Newton companion: Id ≈ Id0 + gm (vgs - vgs0) + gds (vds - vds0).
  const double gm = lin.gm;
  const double gds = lin.gds + ctx.gmin;
  const double i_eq = lin.ids - gm * (vg - vs) - gds * (vd - vs);

  // Row d: current Id leaves node d into the channel.
  if (d >= 0) {
    stamper.entry(d, d, gds);
    if (gate_ >= 0) stamper.entry(d, gate_, gm);
    if (s >= 0) stamper.entry(d, s, -(gm + gds));
    stamper.rhs(d, -i_eq);
  }
  if (s >= 0) {
    stamper.entry(s, s, gm + gds);
    if (gate_ >= 0) stamper.entry(s, gate_, -gm);
    if (d >= 0) stamper.entry(s, d, -gds);
    stamper.rhs(s, i_eq);
  }
  // gmin ties the channel terminals weakly to ground for convergence.
  stamper.conductance(d, -1, ctx.gmin);
  stamper.conductance(s, -1, ctx.gmin);
}

double Mosfet::drain_current(const linalg::Vector& solution) const {
  const auto v = [&solution](int n) {
    return n < 0 ? 0.0 : solution[static_cast<std::size_t>(n)];
  };
  double vd = v(drain_);
  const double vg = v(gate_);
  double vs = v(source_);
  double sign = 1.0;
  if (vd < vs) {
    std::swap(vd, vs);
    sign = -1.0;
  }
  return sign * fit::level1_ids(params_, vg - vs, vd - vs);
}

DeviceView Mosfet::view() const {
  DeviceView v;
  v.kind = DeviceView::Kind::kMosfet;
  v.nodes = {drain_, gate_, source_, bulk_};
  v.dc_couples = {{drain_, source_}};  // channel; the gate is insulated
  v.gate_couples = {{drain_, gate_}, {source_, gate_}};
  v.width = params_.width;
  v.length = params_.length;
  return v;
}

}  // namespace ftl::spice
