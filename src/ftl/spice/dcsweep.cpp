#include "ftl/spice/dcsweep.hpp"

#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"

namespace ftl::spice {

DcSweepResult dc_sweep(Circuit& circuit, const std::string& source_name,
                       const linalg::Vector& values,
                       const NewtonOptions& options) {
  auto& source = dynamic_cast<VoltageSource&>(circuit.device(source_name));
  const Waveform saved = source.waveform();

  DcSweepResult result;
  result.sweep_values = values;
  result.converged = true;

  linalg::Vector guess;
  for (double v : values) {
    source.set_waveform(Waveform::dc(v));
    EvalContext ctx;
    ctx.gmin = options.gmin;
    OpResult op = newton_solve(circuit, guess, ctx, options);
    if (!op.converged) {
      // Fall back to the full rescue ladder for this point.
      try {
        op = dc_operating_point(circuit, options);
      } catch (const ftl::Error&) {
        result.converged = false;
      }
    }
    guess = op.solution;
    result.solutions.push_back(std::move(op.solution));
    result.converged = result.converged && op.converged;
  }

  source.set_waveform(saved);
  return result;
}

}  // namespace ftl::spice
