#pragma once
// DC sweep: repeatedly solves the operating point while stepping one voltage
// source, warm-starting each point from the previous solution (continuation).

#include <string>

#include "ftl/spice/dcop.hpp"

namespace ftl::spice {

struct DcSweepResult {
  linalg::Vector sweep_values;
  std::vector<linalg::Vector> solutions;  ///< one full solution per point
  bool converged = false;                 ///< all points converged
};

/// Sweeps the DC value of voltage source `source_name` over `values`.
/// The source's waveform is restored afterwards.
DcSweepResult dc_sweep(Circuit& circuit, const std::string& source_name,
                       const linalg::Vector& values,
                       const NewtonOptions& options = {});

}  // namespace ftl::spice
