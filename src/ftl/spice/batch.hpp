#pragma once
// Batched corner/variability DC engine: one circuit topology, K parameter
// corners, ONE symbolic sparse-LU analysis. The caller supplies a mutator
// that retunes the shared circuit to lane i's corner (device parameters,
// source waveforms — anything that moves values without moving MNA stamp
// positions); each lane then runs the full dc_operating_point ladder (plain
// Newton, gmin stepping, source stepping) with its factorizations served by
// linalg::SparseLuBatch, so after the first lane every Newton iteration is
// a numeric replay of the recorded elimination instead of a fresh symbolic
// factorization.
//
// Determinism contract: with warm_start off (the default), lane i's result
// is bitwise identical to building a standalone circuit at corner i and
// calling dc_operating_point on it. That holds because an accepted
// SparseLu replay is bitwise identical to a full factor of the same matrix,
// rejected replays fall back to exactly that full factor, and the Newton
// driver below mirrors newton_solve step for step. Consequently threads may
// split a batch into contiguous lane chunks (threads split the batch,
// never a lane) without perturbing any result.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ftl/linalg/sparse_lu.hpp"
#include "ftl/spice/dcop.hpp"

namespace ftl::spice {

/// Process-wide batch-engine counters (relaxed atomics, monotonic),
/// surfaced by the serve `stats` op as `batch_core` next to `spice_core`.
struct BatchCounters {
  std::uint64_t batches = 0;            ///< dcop_batch / BatchSolver::solve calls
  std::uint64_t lanes = 0;              ///< corners solved across all batches
  std::uint64_t symbolic_factors = 0;   ///< full analyses (first lane + rescues)
  std::uint64_t symbolic_reuses = 0;    ///< lane factors replayed off the record
  std::uint64_t numeric_refactors = 0;  ///< accepted numeric-only replays
  std::uint64_t lane_fallbacks = 0;     ///< replays rejected -> per-lane factor
  std::uint64_t newton_iterations = 0;  ///< batched Newton iterations
};

/// Snapshot of the process-wide counters.
BatchCounters batch_counters();

/// Resets all counters to zero (test support).
void reset_batch_counters();

struct BatchOptions {
  NewtonOptions newton;
  /// Seed each lane's Newton iteration from the previous lane's solution
  /// instead of zero. Converges faster on smooth corner sweeps, but changes
  /// the iterates, so results are no longer bitwise identical to standalone
  /// dc_operating_point runs — off by default.
  bool warm_start = false;
};

/// Outcome of one lane. `failed` mirrors dc_operating_point throwing for
/// that corner (singular system, stalled rescue): `error` then carries the
/// exception text and `op` is meaningless. Callers that would have caught
/// the per-trial ftl::Error treat failed lanes the same way.
struct BatchCornerResult {
  OpResult op;
  bool failed = false;
  std::string error;
};

/// The batched engine. One instance owns the shared assembly buffers and
/// the lane-blocked LU; it is single-threaded (one instance per thread when
/// splitting a batch).
class BatchSolver {
 public:
  /// `apply(lane)` mutates `circuit` to lane's corner; it runs once per
  /// lane per solve() call, before that lane's first assembly. `circuit`
  /// must outlive the solver.
  BatchSolver(Circuit& circuit, std::size_t lanes);

  std::size_t lanes() const { return lanes_; }

  /// Runs the full DC-operating-point ladder for every lane, in lane order.
  /// Never throws for per-lane numeric failures (reported per corner); a
  /// presolve-gate rejection fails every lane with the same error.
  std::vector<BatchCornerResult> solve(
      const std::function<void(std::size_t)>& apply,
      const BatchOptions& options = BatchOptions());

  /// LU-level counters of the most recent solve() call.
  const linalg::SparseLuBatchCounters& lu_counters() const {
    return lu_.counters();
  }

 private:
  OpResult run_lane(std::size_t lane, const linalg::Vector& initial,
                    EvalContext ctx, const NewtonOptions& options);
  void solve_lane_iteration(std::size_t lane, const EvalContext& ctx,
                            linalg::Vector& x);

  Circuit* circuit_;
  std::size_t lanes_;
  int n_ = 0;
  int node_count_ = 0;
  bool nonlinear_ = false;
  bool sparse_active_ = false;
  std::uint64_t newton_iterations_ = 0;

  SparseAssembly sparse_;
  linalg::SparseLuBatch lu_;
  DenseAssembly dense_;
  linalg::LuFactorization dense_lu_;
};

/// Convenience wrapper: K corners of `circuit` through one BatchSolver.
std::vector<BatchCornerResult> dcop_batch(
    Circuit& circuit, std::size_t lanes,
    const std::function<void(std::size_t)>& apply,
    const BatchOptions& options = BatchOptions());

}  // namespace ftl::spice
