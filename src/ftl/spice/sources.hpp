#pragma once
// Independent sources: waveform descriptions (DC / PULSE / PWL / SIN) and
// the voltage- and current-source devices. Voltage sources carry one branch
// unknown (their current), as in standard MNA.

#include <vector>

#include "ftl/spice/circuit.hpp"

namespace ftl::spice {

/// Time-dependent source value description.
class Waveform {
 public:
  /// Constant value.
  static Waveform dc(double value);

  /// SPICE PULSE(v1 v2 delay rise fall width period). period <= 0 disables
  /// repetition.
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period = 0.0);

  /// Piecewise linear (time, value) points; times strictly increasing.
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  /// SIN(offset amplitude frequency [delay] [damping]).
  static Waveform sin(double offset, double amplitude, double frequency,
                      double delay = 0.0, double damping = 0.0);

  /// Value at time t (DC analyses pass t = 0).
  double value(double t) const;

  /// Value used for the DC operating point (initial value).
  double dc_value() const { return value(0.0); }

  /// The logic complement at supply `vdd`: a waveform equal to vdd - value(t)
  /// for all t. Exact for every waveform kind.
  Waveform complemented(double vdd) const;

  /// Appends the slope discontinuities in (0, tstop) — PULSE corners and PWL
  /// vertices. The transient engine lands a step on each and restarts the
  /// integrator there, the standard SPICE breakpoint treatment.
  void add_breakpoints(double tstop, std::vector<double>& out) const;

 private:
  enum class Kind { kDc, kPulse, kPwl, kSin };
  Kind kind_ = Kind::kDc;
  // kDc / kPulse / kSin parameter block
  double p_[7] = {0, 0, 0, 0, 0, 0, 0};
  std::vector<std::pair<double, double>> points_;
};

/// Independent voltage source between nodes plus/minus.
class VoltageSource : public Device {
 public:
  VoltageSource(std::string name, int node_plus, int node_minus, Waveform wave)
      : Device(std::move(name)), plus_(node_plus), minus_(node_minus),
        wave_(std::move(wave)) {}

  int branch_count() const override { return 1; }
  void stamp(Stamper& stamper, const EvalContext& ctx) const override;
  DeviceView view() const override;
  void add_breakpoints(double tstop, std::vector<double>& out) const override {
    wave_.add_breakpoints(tstop, out);
  }

  /// Branch current of the last computed solution (positive out of the +
  /// node through the external circuit... SPICE convention: current flowing
  /// from + through the source to -).
  double current(const linalg::Vector& solution) const;

  const Waveform& waveform() const { return wave_; }
  void set_waveform(Waveform w) { wave_ = std::move(w); }

 private:
  int plus_;
  int minus_;
  Waveform wave_;
};

/// Independent current source; positive current flows from plus through the
/// source to minus (i.e. it is pushed into the minus-side network).
class CurrentSource : public Device {
 public:
  CurrentSource(std::string name, int node_plus, int node_minus, Waveform wave)
      : Device(std::move(name)), plus_(node_plus), minus_(node_minus),
        wave_(std::move(wave)) {}

  void stamp(Stamper& stamper, const EvalContext& ctx) const override;
  DeviceView view() const override;
  void set_waveform(Waveform w) { wave_ = std::move(w); }
  void add_breakpoints(double tstop, std::vector<double>& out) const override {
    wave_.add_breakpoints(tstop, out);
  }

 private:
  int plus_;
  int minus_;
  Waveform wave_;
};

}  // namespace ftl::spice
