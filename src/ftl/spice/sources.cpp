#include "ftl/spice/sources.hpp"

#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::spice {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.p_[0] = value;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period) {
  FTL_EXPECTS(rise >= 0.0 && fall >= 0.0 && width >= 0.0);
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.p_[0] = v1;
  w.p_[1] = v2;
  w.p_[2] = delay;
  w.p_[3] = rise;
  w.p_[4] = fall;
  w.p_[5] = width;
  w.p_[6] = period;
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  FTL_EXPECTS(!points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    FTL_EXPECTS_MSG(points[i].first > points[i - 1].first,
                    "PWL times must be strictly increasing");
  }
  Waveform w;
  w.kind_ = Kind::kPwl;
  w.points_ = std::move(points);
  return w;
}

Waveform Waveform::sin(double offset, double amplitude, double frequency,
                       double delay, double damping) {
  FTL_EXPECTS(frequency > 0.0);
  Waveform w;
  w.kind_ = Kind::kSin;
  w.p_[0] = offset;
  w.p_[1] = amplitude;
  w.p_[2] = frequency;
  w.p_[3] = delay;
  w.p_[4] = damping;
  return w;
}

double Waveform::value(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return p_[0];
    case Kind::kPulse: {
      const double v1 = p_[0];
      const double v2 = p_[1];
      const double delay = p_[2];
      const double rise = p_[3];
      const double fall = p_[4];
      const double width = p_[5];
      const double period = p_[6];
      double local = t - delay;
      if (local < 0.0) return v1;
      if (period > 0.0) local = std::fmod(local, period);
      if (local < rise) {
        return rise == 0.0 ? v2 : v1 + (v2 - v1) * local / rise;
      }
      local -= rise;
      if (local < width) return v2;
      local -= width;
      if (local < fall) {
        return fall == 0.0 ? v1 : v2 + (v1 - v2) * local / fall;
      }
      return v1;
    }
    case Kind::kPwl: {
      if (t <= points_.front().first) return points_.front().second;
      if (t >= points_.back().first) return points_.back().second;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].first) {
          const double t0 = points_[i - 1].first;
          const double t1 = points_[i].first;
          const double f = (t - t0) / (t1 - t0);
          return points_[i - 1].second +
                 f * (points_[i].second - points_[i - 1].second);
        }
      }
      return points_.back().second;
    }
    case Kind::kSin: {
      const double offset = p_[0];
      const double ampl = p_[1];
      const double freq = p_[2];
      const double delay = p_[3];
      const double damping = p_[4];
      if (t < delay) return offset;
      const double local = t - delay;
      constexpr double kTwoPi = 6.283185307179586;
      return offset + ampl * std::exp(-damping * local) *
                          std::sin(kTwoPi * freq * local);
    }
  }
  return 0.0;
}

Waveform Waveform::complemented(double vdd) const {
  Waveform w = *this;
  switch (kind_) {
    case Kind::kDc:
      w.p_[0] = vdd - p_[0];
      break;
    case Kind::kPulse:
      w.p_[0] = vdd - p_[0];
      w.p_[1] = vdd - p_[1];
      break;
    case Kind::kPwl:
      for (auto& [t, v] : w.points_) v = vdd - v;
      break;
    case Kind::kSin:
      w.p_[0] = vdd - p_[0];  // offset
      w.p_[1] = -p_[1];       // amplitude
      break;
  }
  return w;
}

void Waveform::add_breakpoints(double tstop, std::vector<double>& out) const {
  const auto push = [&out, tstop](double t) {
    if (t > 0.0 && t < tstop) out.push_back(t);
  };
  switch (kind_) {
    case Kind::kDc:
    case Kind::kSin:
      break;  // no slope discontinuities (SIN's delay corner is benign)
    case Kind::kPulse: {
      const double delay = p_[2];
      const double rise = p_[3];
      const double fall = p_[4];
      const double width = p_[5];
      const double period = p_[6];
      for (double base = delay;; base += period) {
        push(base);
        push(base + rise);
        push(base + rise + width);
        push(base + rise + width + fall);
        if (period <= 0.0 || base >= tstop) break;
      }
      break;
    }
    case Kind::kPwl:
      for (const auto& [t, v] : points_) push(t);
      break;
  }
}

void VoltageSource::stamp(Stamper& stamper, const EvalContext& ctx) const {
  const int branch = branch_offset();
  FTL_EXPECTS(branch >= 0);
  // Branch current flows from + to - through the source.
  if (plus_ >= 0) {
    stamper.entry(plus_, branch, 1.0);
    stamper.entry(branch, plus_, 1.0);
  }
  if (minus_ >= 0) {
    stamper.entry(minus_, branch, -1.0);
    stamper.entry(branch, minus_, -1.0);
  }
  const double t = ctx.is_transient ? ctx.time : 0.0;
  stamper.rhs(branch, ctx.source_scale * wave_.value(t));
}

double VoltageSource::current(const linalg::Vector& solution) const {
  FTL_EXPECTS(branch_offset() >= 0);
  return solution[static_cast<std::size_t>(branch_offset())];
}

void CurrentSource::stamp(Stamper& stamper, const EvalContext& ctx) const {
  const double t = ctx.is_transient ? ctx.time : 0.0;
  const double i = ctx.source_scale * wave_.value(t);
  stamper.current_into(plus_, -i);
  stamper.current_into(minus_, i);
}

DeviceView VoltageSource::view() const {
  DeviceView v;
  v.kind = DeviceView::Kind::kVoltageSource;
  v.nodes = {plus_, minus_};
  // The branch equation pins v(plus) - v(minus), which is a DC connection
  // for reachability purposes.
  v.dc_couples = {{plus_, minus_}};
  v.value = wave_.dc_value();
  return v;
}

DeviceView CurrentSource::view() const {
  DeviceView v;
  v.kind = DeviceView::Kind::kCurrentSource;
  v.nodes = {plus_, minus_};
  // No dc_couples: an ideal current source has infinite output impedance
  // and contributes only RHS entries.
  v.value = wave_.dc_value();
  return v;
}

}  // namespace ftl::spice
