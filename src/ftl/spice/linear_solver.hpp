#pragma once
// Assemble -> factor -> solve pipeline for one Newton iteration, owning the
// reused assembly buffers and factorization workspaces. A Circuit carries
// one of these across Newton iterations, sweep points, and transient steps,
// so the sparsity pattern is computed once per circuit and the sparse LU
// reuses its symbolic analysis whenever the pattern holds still.

#include "ftl/linalg/lu.hpp"
#include "ftl/linalg/sparse_lu.hpp"
#include "ftl/spice/mna.hpp"

namespace ftl::spice {

class Circuit;

/// Which matrix backend newton_solve uses. kAuto picks dense for small
/// systems (below MnaLinearSolver::kDenseCutover unknowns) and sparse above;
/// the explicit modes exist for differential testing and benchmarks.
enum class MatrixMode { kAuto, kDense, kSparse };

class MnaLinearSolver {
 public:
  /// Unknown count at which kAuto switches from dense LU to sparse LU. A
  /// lattice MNA matrix is >95% zeros by 3x3 (n ~ 35), where Gilbert-
  /// Peierls already wins; below this the dense kernel's locality does.
  static constexpr int kDenseCutover = 24;

  /// Readies the pipeline for an n-unknown system under `mode`; drops
  /// cached state when n or the effective backend changed.
  void prepare(int n, MatrixMode mode);

  /// Structure changed (devices added): drop the cached pattern/factors.
  void invalidate();

  /// One Newton iteration: zeroes the buffers, stamps every device of
  /// `circuit` at `ctx`, factors (reusing symbolic analysis when possible),
  /// and solves into `x`. Throws ftl::Error on a singular system. A sparse
  /// factorization failure falls back to dense once before giving up, so
  /// near-singular systems degrade instead of dying.
  void solve_iteration(const Circuit& circuit, const EvalContext& ctx,
                       linalg::Vector& x);

  bool using_sparse() const { return sparse_active_; }

 private:
  int n_ = -1;
  MatrixMode mode_ = MatrixMode::kAuto;
  bool sparse_active_ = false;

  DenseAssembly dense_;
  linalg::LuFactorization dense_lu_;

  SparseAssembly sparse_;
  linalg::SparseLu sparse_lu_;
  bool have_symbolic_ = false;
};

}  // namespace ftl::spice
